(* Ext-11: chain-break fraction vs chain strength on embedded hardware.

   The chain penalty is the one free parameter a QPU submission must get
   right: too weak and chains break (majority-vote garbage), too strong
   and it drowns the logical energy scale (ground-state probability
   collapses). This bench sweeps the strength at fixed topology over the
   densest Table-1 constraint (Includes — a complete interaction graph,
   hence the longest chains) and records the trade-off curve, plus what
   the adaptive escalation loop picks when left to its own devices.

   Run with:
     dune exec bench/chain_break.exe                full run, writes BENCH_3.json
     QSMT_BENCH_FAST=1 dune exec ...               reduced (CI smoke) run *)

module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Hardware = Qsmt_anneal.Hardware
module Topology = Qsmt_anneal.Topology
module Sampleset = Qsmt_anneal.Sampleset
module Sa = Qsmt_anneal.Sa
module Qubo = Qsmt_qubo.Qubo

let fast = Sys.getenv_opt "QSMT_BENCH_FAST" <> None
let reads = if fast then 16 else 64
let sweeps = if fast then 300 else 1000

type point = {
  strength : float;
  breaks : float;
  ground_p : float;
  verified : bool;
}

type row = {
  name : string;
  topology : string;
  logical_vars : int;
  qubits_used : int;
  max_chain : int;
  points : point list;
  (* what the adaptive loop settles on, starting from the default guess *)
  adaptive_strength : float;
  adaptive_breaks : float;
  adaptive_escalations : int;
  adaptive_degraded : bool;
}

let instances =
  [
    ("includes-k7", Constr.Includes { haystack = "hello world"; needle = "world" });
    ("includes-k7-dense", Constr.Includes { haystack = "abcabcabc"; needle = "abc" });
    ("palindrome-6", Constr.Palindrome { length = 6 });
  ]

let strengths = if fast then [ 0.25; 1.0; 8.0 ] else [ 0.125; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ]

let run_instance (name, constr) =
  let qubo = Compile.to_qubo constr in
  let topology = Hardware.auto_topology ~seed:5 ~kind:`Chimera qubo in
  let base =
    { (Hardware.default_params topology) with
      Hardware.embed_tries = 64;
      anneal = { Sa.default with Sa.seed = 5; reads; sweeps }
    }
  in
  Format.printf "@.%s: %s on %s@." name (Constr.describe constr) (Topology.name topology);
  Format.printf "%10s %8s %9s %9s@." "strength" "breaks" "groundP" "verified";
  let measure params =
    let r = Hardware.sample ~params qubo in
    let s = r.Hardware.stats in
    let verified =
      Constr.verify constr (Compile.decode constr (Sampleset.best r.Hardware.samples).Sampleset.bits)
    in
    (s, Sampleset.ground_probability r.Hardware.samples ~tol:1e-9, verified)
  in
  let points =
    List.map
      (fun strength ->
        (* pinned strength: escalation off, we want the raw curve *)
        let s, ground_p, verified =
          measure
            { base with Hardware.chain_strength = Some strength; max_escalations = 0 }
        in
        Format.printf "%10.3f %7.1f%% %8.1f%% %9s@." strength
          (100. *. s.Hardware.mean_chain_break_fraction)
          (100. *. ground_p)
          (if verified then "yes" else "no");
        { strength; breaks = s.Hardware.mean_chain_break_fraction; ground_p; verified })
      strengths
  in
  let s, _, _ = measure base in
  Format.printf "adaptive: strength %g after %d escalations, breaks %.1f%%%s@."
    s.Hardware.chain_strength s.Hardware.escalations
    (100. *. s.Hardware.mean_chain_break_fraction)
    (if s.Hardware.degraded <> None then " DEGRADED" else "");
  {
    name;
    topology = s.Hardware.topology;
    logical_vars = Qubo.num_vars qubo;
    qubits_used = s.Hardware.qubits_used;
    max_chain = s.Hardware.max_chain_length;
    points;
    adaptive_strength = s.Hardware.chain_strength;
    adaptive_breaks = s.Hardware.mean_chain_break_fraction;
    adaptive_escalations = s.Hardware.escalations;
    adaptive_degraded = s.Hardware.degraded <> None;
  }

let json_out rows path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"chain_break\",\n";
  p "  \"pr\": 3,\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"reads\": %d,\n" reads;
  p "  \"sweeps\": %d,\n" sweeps;
  p "  \"instances\": [\n";
  List.iteri
    (fun k r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"topology\": \"%s\",\n" r.topology;
      p "      \"logical_vars\": %d,\n" r.logical_vars;
      p "      \"qubits_used\": %d,\n" r.qubits_used;
      p "      \"max_chain\": %d,\n" r.max_chain;
      p "      \"sweep\": [\n";
      List.iteri
        (fun j pt ->
          p
            "        { \"strength\": %g, \"break_fraction\": %.4f, \"ground_p\": %.4f, \
             \"verified\": %b }%s\n"
            pt.strength pt.breaks pt.ground_p pt.verified
            (if j = List.length r.points - 1 then "" else ","))
        r.points;
      p "      ],\n";
      p "      \"adaptive\": { \"strength\": %g, \"break_fraction\": %.4f, \"escalations\": %d, \
         \"degraded\": %b }\n"
        r.adaptive_strength r.adaptive_breaks r.adaptive_escalations r.adaptive_degraded;
      p "    }%s\n" (if k = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

let () =
  Format.printf "chain-break benchmark%s (reads=%d, sweeps=%d, seeds fixed)@."
    (if fast then " [FAST]" else "")
    reads sweeps;
  let rows = List.map run_instance instances in
  json_out rows "BENCH_3.json";
  Format.printf "@.wrote BENCH_3.json@."
