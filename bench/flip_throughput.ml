(* Flip-throughput microbenchmark: the incremental local-field kernel
   (Qsmt_qubo.Fields) against the seed implementation's from-scratch
   CSR-row rescans, on the two landscape shapes that matter:

     - sparse Chimera-like spin glass (hardware-native, degree <= 6)
     - dense random QUBOs (>= 50% coupler density, the regime where an
       O(degree) rescan per proposal hurts most)

   Section A times the raw Metropolis proposal kernel (spin-flips/sec,
   naive vs Fields, same seed, same schedule). Section B times one read
   of every sampler: an inline replica of the seed inner loop vs the
   rewired library code. Section C times the bit-parallel multi-replica
   kernel (Qsmt_qubo.Multispin, 64 packed replicas) against 64 scalar
   Fields states, both at a fixed equilibrium beta (replica-sweeps/sec,
   the kernel-level number like Section A) and through the full
   annealing-schedule samplers (Sa.run_packed vs Sa.sample).

   Everything is fixed-seed; Sections A/B land in BENCH_2.json and
   Section C in BENCH_8.json so later PRs have a perf trajectory to
   regress against. When bench/baselines/BENCH_2.json (a committed full
   run) is present, the kernel speedups are gated against the recorded
   trajectory — machine-robust ratios, not absolute throughput — and
   Section C always gates packed >= scalar on the dense instances.

     dune exec bench/flip_throughput.exe          full run
     QSMT_BENCH_FAST=1 dune exec ...              reduced (CI smoke) run *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Fields = Qsmt_qubo.Fields
module Multispin = Qsmt_qubo.Multispin
module Schedule = Qsmt_anneal.Schedule
module Topology = Qsmt_anneal.Topology
module Spinglass = Qsmt_anneal.Spinglass
module Sa = Qsmt_anneal.Sa
module Pt = Qsmt_anneal.Pt
module Sqa = Qsmt_anneal.Sqa
module Tabu = Qsmt_anneal.Tabu
module Greedy = Qsmt_anneal.Greedy

let fast = Sys.getenv_opt "QSMT_BENCH_FAST" <> None
let kernel_sweeps = if fast then 60 else 250
let reps = 3
let seed = 9
(* Monotonic (never steps backwards with wall-clock adjustments). *)
let now = Qsmt_util.Mclock.now

(* ------------------------------------------------------------------ *)
(* Instances *)

let dense_qubo ~seed ~n ~density =
  let rng = Prng.create seed in
  let b = Qubo.builder () in
  for i = 0 to n - 1 do
    Qubo.set b i i (float_of_int (Prng.int rng 7 - 3));
    for j = i + 1 to n - 1 do
      if Prng.float rng < density then
        Qubo.set b i j (float_of_int (1 + Prng.int rng 3) *. if Prng.bool rng then 1. else -1.)
    done
  done;
  Qubo.freeze ~num_vars:n b

let instances =
  let chimera =
    let rng = Prng.create 42 in
    ( "chimera_m4_sparse",
      Spinglass.random_on_graph ~rng ~field:0.5 (Topology.graph (Topology.chimera ~m:4 ())) )
  in
  let dense128 = ("dense_p50_n128", dense_qubo ~seed:43 ~n:128 ~density:0.5) in
  let dense192 = ("dense_p75_n192", dense_qubo ~seed:44 ~n:192 ~density:0.75) in
  if fast then [ chimera; dense128 ] else [ chimera; dense128; dense192 ]

(* ------------------------------------------------------------------ *)
(* Section A: raw proposal kernel *)

(* The seed SA inner loop: flip_delta rescans the CSR row per proposal. *)
let naive_kernel ~rng ~schedule ising spins =
  let n = Ising.num_spins ising in
  for k = 0 to Schedule.sweeps schedule - 1 do
    let beta = Schedule.beta schedule k in
    for i = 0 to n - 1 do
      let delta = Ising.flip_delta ising spins i in
      if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then Bitvec.flip spins i
    done
  done

(* The same loop through the incremental state: O(1) per proposal. *)
let fields_kernel ~rng ~schedule fields =
  let n = Fields.num_spins fields in
  for k = 0 to Schedule.sweeps schedule - 1 do
    let beta = Schedule.beta schedule k in
    for i = 0 to n - 1 do
      let delta = Fields.delta fields i in
      if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then Fields.flip fields i
    done
  done

let best_of f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    f ();
    best := Float.min !best (now () -. t0)
  done;
  !best

let kernel_throughput ising =
  let n = Ising.num_spins ising in
  let schedule = Schedule.auto ~sweeps:kernel_sweeps ising in
  let proposals = float_of_int (kernel_sweeps * n) in
  let naive_t =
    best_of (fun () ->
        let rng = Prng.stream ~seed 0 in
        naive_kernel ~rng ~schedule ising (Bitvec.random rng n))
  in
  let fields_t =
    best_of (fun () ->
        let rng = Prng.stream ~seed 0 in
        fields_kernel ~rng ~schedule (Fields.create ising (Bitvec.random rng n)))
  in
  (proposals /. naive_t, proposals /. fields_t)

(* ------------------------------------------------------------------ *)
(* Section B: one read per sampler, seed-replica vs library.

   Each naive replica is the pre-rewire inner loop verbatim: every delta
   is a fresh CSR-row (or P-row) rescan, energies are re-derived instead
   of carried. The "new" side calls the library entry point, so its time
   includes the (once-per-read) Fields construction and, for sample-based
   entry points, the QUBO->Ising conversion and sampleset assembly the
   naive side skips — the comparison is biased against the new code. *)

(* Seed Sa.descend / Greedy: rescan all n rows to pick the steepest flip. *)
let naive_descend q x =
  let n = Qubo.num_vars q in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_i = ref (-1) and best_delta = ref (-1e-12) in
    for i = 0 to n - 1 do
      let d = Qubo.flip_delta q x i in
      if d < !best_delta then begin
        best_delta := d;
        best_i := i
      end
    done;
    if !best_i >= 0 then begin
      Bitvec.flip x !best_i;
      improved := true
    end
  done

(* Seed Tabu.search: Qubo-space flip_delta, full rescan per iteration. *)
let naive_tabu q ~rng ~iterations ~tenure =
  let n = Qubo.num_vars q in
  let x = Bitvec.random rng n in
  let energy = ref (Qubo.energy q x) in
  let best_energy = ref !energy in
  let tabu_until = Array.make n 0 in
  for it = 0 to iterations - 1 do
    let chosen = ref (-1) and chosen_delta = ref infinity in
    for i = 0 to n - 1 do
      let delta = Qubo.flip_delta q x i in
      let admissible = tabu_until.(i) <= it || !energy +. delta < !best_energy -. 1e-12 in
      if admissible && delta < !chosen_delta then begin
        chosen := i;
        chosen_delta := delta
      end
    done;
    let i = if !chosen >= 0 then !chosen else Prng.int rng n in
    let delta = if !chosen >= 0 then !chosen_delta else Qubo.flip_delta q x i in
    Bitvec.flip x i;
    energy := !energy +. delta;
    tabu_until.(i) <- it + 1 + tenure;
    if !energy < !best_energy then best_energy := !energy
  done

(* Seed Pt.run_read: per-replica spins+energy arrays, rescan per move,
   energy doubles swapped alongside configurations. *)
let naive_pt ising ~rng ~sweeps ~betas ~exchange_interval =
  let n = Ising.num_spins ising in
  let k = Array.length betas in
  let spins = Array.init k (fun _ -> Bitvec.random rng n) in
  let energy = Array.map (Ising.energy ising) spins in
  let best = ref (Bitvec.copy spins.(k - 1)) in
  let best_e = ref energy.(k - 1) in
  for sweep = 1 to sweeps do
    for r = 0 to k - 1 do
      let beta = betas.(r) in
      let s = spins.(r) in
      for i = 0 to n - 1 do
        let delta = Ising.flip_delta ising s i in
        if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then begin
          Bitvec.flip s i;
          energy.(r) <- energy.(r) +. delta
        end
      done;
      if energy.(r) < !best_e then begin
        best_e := energy.(r);
        best := Bitvec.copy s
      end
    done;
    if sweep mod exchange_interval = 0 then begin
      let parity = sweep / exchange_interval mod 2 in
      let r = ref parity in
      while !r + 1 < k do
        let a = !r and b = !r + 1 in
        let log_ratio = (betas.(a) -. betas.(b)) *. (energy.(a) -. energy.(b)) in
        if log_ratio >= 0. || Prng.float rng < Float.exp log_ratio then begin
          let tmp = spins.(a) in
          spins.(a) <- spins.(b);
          spins.(b) <- tmp;
          let te = energy.(a) in
          energy.(a) <- energy.(b);
          energy.(b) <- te
        end;
        r := !r + 2
      done
    end
  done;
  ignore !best

(* Seed Sqa.run_read: flip_delta rescans in both the local and the
   world-line move (the latter rescans all P slices per variable). *)
let naive_sqa ising ~rng ~sweeps ~trotter ~beta ~gamma_hot ~gamma_cold =
  let spin_sign slice i = if Bitvec.get slice i then 1. else -1. in
  let j_perp ~beta_slice gamma =
    let t = Float.max (Float.tanh (beta_slice *. gamma)) 1e-300 in
    -0.5 /. beta_slice *. Float.log t
  in
  let n = Ising.num_spins ising in
  let p = trotter in
  let pf = float_of_int p in
  let beta_slice = beta /. pf in
  let slices = Array.init p (fun _ -> Bitvec.random rng n) in
  let ratio =
    if sweeps <= 1 then 1. else (gamma_cold /. gamma_hot) ** (1. /. float_of_int (sweeps - 1))
  in
  let gamma = ref gamma_hot in
  for _ = 1 to sweeps do
    let jp = j_perp ~beta_slice !gamma in
    for k = 0 to p - 1 do
      let up = slices.((k + 1) mod p) and down = slices.((k + p - 1) mod p) in
      let slice = slices.(k) in
      for i = 0 to n - 1 do
        let d_classical = Ising.flip_delta ising slice i /. pf in
        let s = spin_sign slice i in
        let d_perp = 2. *. jp *. s *. (spin_sign up i +. spin_sign down i) in
        let delta = d_classical +. d_perp in
        if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then Bitvec.flip slice i
      done
    done;
    for i = 0 to n - 1 do
      let delta = ref 0. in
      Array.iter (fun slice -> delta := !delta +. (Ising.flip_delta ising slice i /. pf)) slices;
      if !delta <= 0. || Prng.float rng < Float.exp (-.beta *. !delta) then
        Array.iter (fun slice -> Bitvec.flip slice i) slices
    done;
    gamma := !gamma *. ratio
  done;
  let best = ref slices.(0) and best_e = ref (Ising.energy ising slices.(0)) in
  Array.iter
    (fun slice ->
      let e = Ising.energy ising slice in
      if e < !best_e then begin
        best_e := e;
        best := slice
      end)
    slices;
  ignore !best

let sampler_times q ising =
  let n = Qubo.num_vars q in
  let sweeps = kernel_sweeps in
  let schedule = Schedule.auto ~sweeps ising in
  let seeded f () = f (Prng.stream ~seed 0) in
  let pair name naive current = (name, best_of (seeded naive), best_of (seeded current)) in
  let beta_hot, beta_cold = Schedule.default_beta_range ising in
  let k_replicas = 8 in
  let ratio = (beta_cold /. beta_hot) ** (1. /. float_of_int (k_replicas - 1)) in
  let betas = Array.init k_replicas (fun r -> beta_hot *. (ratio ** float_of_int r)) in
  let sqa_sweeps = max 10 (sweeps / 4) in
  let gamma_hot = Float.max 1. (3. *. Ising.max_abs_field ising) in
  let tenure = min ((n / 4) + 1) 20 in
  [
    pair "sa"
      (fun rng -> naive_kernel ~rng ~schedule ising (Bitvec.random rng n))
      (fun rng -> ignore (Sa.anneal_ising ~rng ~schedule ising));
    pair "pt"
      (fun rng -> naive_pt ising ~rng ~sweeps ~betas ~exchange_interval:10)
      (fun _ ->
        ignore
          (Pt.sample ~params:{ Pt.default with reads = 1; sweeps; replicas = k_replicas; seed } q));
    pair "sqa"
      (fun rng ->
        naive_sqa ising ~rng ~sweeps:sqa_sweeps ~trotter:8 ~beta:beta_cold ~gamma_hot
          ~gamma_cold:1e-2)
      (fun _ ->
        ignore (Sqa.sample ~params:{ Sqa.default with reads = 1; sweeps = sqa_sweeps; seed } q));
    pair "tabu"
      (fun rng -> naive_tabu q ~rng ~iterations:(4 * sweeps) ~tenure)
      (fun _ ->
        ignore
          (Tabu.sample ~params:{ Tabu.default with restarts = 1; iterations = 4 * sweeps; seed } q));
    pair "greedy"
      (fun rng -> naive_descend q (Bitvec.random rng n))
      (fun rng -> ignore (Greedy.descend q (Bitvec.random rng n)));
  ]

(* ------------------------------------------------------------------ *)
(* Section C: bit-parallel multi-replica kernel (multi-spin coding).

   The scalar side is 64 independent Fields states driven by the plain
   Metropolis loop; the packed side is one Multispin state whose fused
   sweep advances all 64 lanes per CSR pass. Both are measured at a
   fixed equilibrium beta (the cold end of the instance's default
   schedule) — like Section A, this isolates the kernel: at equilibrium
   the accept rate is low and the packed side's amortized proposal loop,
   bulk PRNG and shared exp calls dominate; in the hot phase both sides
   are bound by the identical per-accepted-flip field updates, which the
   full-schedule sampler comparison below captures. *)

let replica_lanes = Multispin.max_lanes
let packed_sweeps = if fast then 40 else 150

(* Both sides are warmed into equilibrium (state construction plus a
   burn-in from the random starts) before the timer starts: the
   equilibrium regime is what this measurement isolates, and the hot
   burn-in transient — where both kernels are bound by the same
   per-accepted-flip field updates — is the sampler comparison's job. *)
let multispin_kernel_throughput ising =
  let n = Ising.num_spins ising in
  let beta = snd (Schedule.default_beta_range ising) in
  let warmup = packed_sweeps / 2 in
  let starts rng = Array.init replica_lanes (fun _ -> Bitvec.random rng n) in
  let timed build sweep =
    let best = ref infinity in
    for _ = 1 to reps do
      let rng = Prng.stream ~seed 1 in
      let state = build rng in
      for _ = 1 to warmup do
        sweep rng state
      done;
      let t0 = now () in
      for _ = 1 to packed_sweeps do
        sweep rng state
      done;
      best := Float.min !best (now () -. t0)
    done;
    !best
  in
  let scalar_t =
    timed
      (fun rng -> Array.map (fun s -> Fields.create ising (Bitvec.copy s)) (starts rng))
      (fun rng fields ->
        Array.iter
          (fun f ->
            for i = 0 to n - 1 do
              let d = Fields.delta f i in
              if d <= 0. || Prng.float rng < Float.exp (-.beta *. d) then Fields.flip f i
            done)
          fields)
  in
  let packed_t =
    timed
      (fun rng ->
        let ms = Multispin.create ising (starts rng) in
        (ms, Multispin.draws rng))
      (fun _ (ms, dr) -> ignore (Multispin.metropolis_sweep ms ~draws:dr ~beta))
  in
  let rsweeps = float_of_int (packed_sweeps * replica_lanes) in
  (beta, rsweeps /. scalar_t, rsweeps /. packed_t)

(* Full annealing schedule, 64 reads: Sa.sample (one read at a time)
   against Sa.run_packed (one packed group). Also checks both decode the
   same best energy ballpark — run_packed's Bucketed mode draws
   differently, so only the times are compared, not the bits. *)
let multispin_sampler_times q =
  let params = { Sa.default with Sa.reads = replica_lanes; sweeps = packed_sweeps * 2; seed } in
  let scalar_t = best_of (fun () -> ignore (Sa.sample ~params q)) in
  let packed_t = best_of (fun () -> ignore (Sa.run_packed ~params q)) in
  (scalar_t, packed_t)

type packed_row = {
  p_name : string;
  p_n : int;
  p_nnz : int;
  beta : float;
  scalar_rs : float;  (* replica-sweeps/sec, 64 scalar Fields states *)
  packed_rs : float;  (* replica-sweeps/sec, one Multispin state *)
  sampler_scalar_s : float;
  sampler_packed_s : float;
  p_minor_words : float; (* GC pressure over the whole instance measurement *)
  p_major_collections : int;
}

let packed_json_out rows path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"multispin_throughput\",\n";
  p "  \"pr\": 8,\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"lanes\": %d,\n" replica_lanes;
  p "  \"fixed_beta_sweeps\": %d,\n" packed_sweeps;
  p "  \"instances\": [\n";
  List.iteri
    (fun k r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.p_name;
      p "      \"n\": %d,\n" r.p_n;
      p "      \"couplers\": %d,\n" r.p_nnz;
      p "      \"kernel\": {\n";
      p "        \"beta\": %.4f,\n" r.beta;
      p "        \"scalar_replica_sweeps_per_sec\": %.0f,\n" r.scalar_rs;
      p "        \"packed_replica_sweeps_per_sec\": %.0f,\n" r.packed_rs;
      p "        \"speedup\": %.2f\n" (r.packed_rs /. r.scalar_rs);
      p "      },\n";
      p "      \"sampler\": {\n";
      p "        \"scalar_64_reads_s\": %.6f,\n" r.sampler_scalar_s;
      p "        \"packed_64_reads_s\": %.6f,\n" r.sampler_packed_s;
      p "        \"speedup\": %.2f\n" (r.sampler_scalar_s /. r.sampler_packed_s);
      p "      },\n";
      p "      \"gc\": { \"minor_words\": %.0f, \"major_collections\": %d }\n" r.p_minor_words
        r.p_major_collections;
      p "    }%s\n" (if k = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Baseline-trajectory gate: compare this run's kernel speedups against
   the committed full-run baseline. Absolute throughput is
   machine-specific, so the gate is on speedup ratios with a generous
   0.4x tolerance — it catches "the incremental kernel stopped paying
   off", not scheduler jitter. *)

let baseline_path = "bench/baselines/BENCH_2.json"

let jfield k = function Telemetry.J_obj kvs -> List.assoc_opt k kvs | _ -> None
let jnum = function Some (Telemetry.J_num f) -> Some f | _ -> None
let jstr = function Some (Telemetry.J_str s) -> Some s | _ -> None

let baseline_kernel_speedups () =
  match In_channel.with_open_text baseline_path In_channel.input_all with
  | exception Sys_error _ -> None
  | text -> (
    match Telemetry.parse_json text with
    | Error _ -> None
    | Ok doc ->
      (match jfield "instances" doc with
      | Some (Telemetry.J_list insts) ->
        Some
          (List.filter_map
             (fun inst ->
               match (jstr (jfield "name" inst), jfield "kernel" inst) with
               | Some name, Some kernel -> (
                 match jnum (jfield "speedup" kernel) with
                 | Some s -> Some (name, s)
                 | None -> None)
               | _ -> None)
             insts)
      | _ -> None))

type row = {
  name : string;
  n : int;
  nnz : int;
  density : float;
  naive_ps : float;
  fields_ps : float;
  samplers : (string * float * float) list;
  minor_words : float; (* GC pressure over the whole instance measurement *)
  major_collections : int;
}

let json_out rows path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"flip_throughput\",\n";
  p "  \"pr\": 2,\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"kernel_sweeps\": %d,\n" kernel_sweeps;
  p "  \"instances\": [\n";
  List.iteri
    (fun k r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"n\": %d,\n" r.n;
      p "      \"couplers\": %d,\n" r.nnz;
      p "      \"density\": %.4f,\n" r.density;
      p "      \"kernel\": {\n";
      p "        \"naive_proposals_per_sec\": %.0f,\n" r.naive_ps;
      p "        \"fields_proposals_per_sec\": %.0f,\n" r.fields_ps;
      p "        \"speedup\": %.2f\n" (r.fields_ps /. r.naive_ps);
      p "      },\n";
      p "      \"samplers\": {\n";
      List.iteri
        (fun j (s, naive_t, new_t) ->
          p "        \"%s\": { \"naive_read_s\": %.6f, \"new_read_s\": %.6f, \"speedup\": %.2f }%s\n"
            s naive_t new_t (naive_t /. new_t)
            (if j = List.length r.samplers - 1 then "" else ","))
        r.samplers;
      p "      },\n";
      p "      \"gc\": { \"minor_words\": %.0f, \"major_collections\": %d }\n" r.minor_words
        r.major_collections;
      p "    }%s\n" (if k = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

let () =
  Format.printf "flip-throughput benchmark%s (kernel_sweeps=%d, reps=%d, seeds fixed)@."
    (if fast then " [FAST]" else "")
    kernel_sweeps reps;
  let rows =
    List.map
      (fun (name, q) ->
        let ising = Ising.of_qubo q in
        let n = Qubo.num_vars q in
        let nnz = Qubo.num_interactions q in
        let density = float_of_int nnz /. (float_of_int (n * (n - 1)) /. 2.) in
        Format.printf "@.instance %s: n=%d couplers=%d density=%.1f%%@." name n nnz
          (100. *. density);
        (* GC pressure across the whole instance measurement; quick_stat
           is domain-local, which is exact here (single-domain bench). *)
        let g0 = Gc.quick_stat () in
        let naive_ps, fields_ps = kernel_throughput ising in
        Format.printf "  kernel: naive %.2fM props/s, fields %.2fM props/s, speedup %.2fx@."
          (naive_ps /. 1e6) (fields_ps /. 1e6) (fields_ps /. naive_ps);
        let samplers = sampler_times q ising in
        let g1 = Gc.quick_stat () in
        let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
        let major_collections = g1.Gc.major_collections - g0.Gc.major_collections in
        List.iter
          (fun (s, naive_t, new_t) ->
            Format.printf "  %-7s naive %8.2fms  new %8.2fms  speedup %5.2fx@." s (1e3 *. naive_t)
              (1e3 *. new_t) (naive_t /. new_t))
          samplers;
        Format.printf "  gc: %.1fM minor words, %d major collections@." (minor_words /. 1e6)
          major_collections;
        { name; n; nnz; density; naive_ps; fields_ps; samplers; minor_words; major_collections })
      instances
  in
  json_out rows "BENCH_2.json";
  Format.printf "@.wrote BENCH_2.json@.";
  let failures = ref [] in
  (* Trajectory gate against the committed baseline. *)
  (match baseline_kernel_speedups () with
  | None -> Format.printf "@.no baseline at %s; skipping trajectory gate@." baseline_path
  | Some baseline ->
    Format.printf "@.trajectory gate vs %s:@." baseline_path;
    List.iter
      (fun r ->
        match List.assoc_opt r.name baseline with
        | None -> Format.printf "  %-18s no baseline entry, skipped@." r.name
        | Some want ->
          let got = r.fields_ps /. r.naive_ps in
          let ok = got >= 0.4 *. want in
          Format.printf "  %-18s kernel speedup %.2fx (recorded %.2fx) %s@." r.name got want
            (if ok then "ok" else "REGRESSED");
          if not ok then
            failures :=
              Printf.sprintf "%s: kernel speedup %.2fx fell below 0.4x of recorded %.2fx" r.name
                got want
              :: !failures)
      rows);
  (* Section C: packed multi-replica kernel. *)
  Format.printf "@.multi-spin kernel (%d lanes, fixed-beta sweeps=%d)@." replica_lanes
    packed_sweeps;
  let packed_rows =
    List.map
      (fun (name, q) ->
        let ising = Ising.of_qubo q in
        let g0 = Gc.quick_stat () in
        let beta, scalar_rs, packed_rs = multispin_kernel_throughput ising in
        let sampler_scalar_s, sampler_packed_s = multispin_sampler_times q in
        let g1 = Gc.quick_stat () in
        Format.printf
          "  %-18s beta=%-6.2f scalar %7.0f rsweeps/s  packed %7.0f rsweeps/s  speedup %5.2fx  \
           (sampler %.2fx)@."
          name beta scalar_rs packed_rs (packed_rs /. scalar_rs)
          (sampler_scalar_s /. sampler_packed_s);
        {
          p_name = name;
          p_n = Qubo.num_vars q;
          p_nnz = Qubo.num_interactions q;
          beta;
          scalar_rs;
          packed_rs;
          sampler_scalar_s;
          sampler_packed_s;
          p_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
          p_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
        })
      instances
  in
  packed_json_out packed_rows "BENCH_8.json";
  Format.printf "wrote BENCH_8.json@.";
  (* The dense instances are where multi-spin coding must win: one CSR
     pass is amortized over 64 lanes of real work. Sparse rows are too
     short to amortize, so chimera is reported but not gated. *)
  List.iter
    (fun r ->
      if String.length r.p_name >= 5 && String.sub r.p_name 0 5 = "dense" && r.packed_rs < r.scalar_rs
      then
        failures :=
          Printf.sprintf "%s: packed kernel slower than scalar (%.0f < %.0f rsweeps/s)" r.p_name
            r.packed_rs r.scalar_rs
          :: !failures)
    packed_rows;
  match !failures with
  | [] -> ()
  | fs ->
    Format.printf "@.BENCH GATE FAILURES:@.";
    List.iter (fun f -> Format.printf "  %s@." f) fs;
    exit 1
