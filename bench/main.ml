(* Benchmark and reproduction harness.

   Regenerates every table and figure of the paper's evaluation, then
   the extension experiments DESIGN.md commits to, then Bechamel micro
   timings (one Test.make per table/figure). Everything is seeded, so
   the output is reproducible run to run.

     dune exec bench/main.exe              full run
     QSMT_BENCH_FAST=1 dune exec ...       reduced sizes (CI smoke run)

   Sections:
     [Table 1]  the paper's six sample constraints: encoding, matrix,
                solver output, classical verification
     [Figure 1] pipeline stage trace (inputs -> vars -> QUBO -> anneal
                -> decode), with wall-clock per stage
     [Ext-1]    scaling: success probability and time vs string length
     [Ext-2]    sampler ablation (SA / SQA / tabu / greedy / exact) and
                encoding ablations (overwrite-vs-sum, class width)
     [Ext-3]    classical baselines: CDCL bit-blasting and brute force
     [Ext-4]    hardware model: chain strength and control noise
     [Ext-5]    joint (merged-QUBO) conjunctions vs the paper's pipelines
     [Ext-6]    QUBO preprocessing (Lewis-Glover fixing, paper ref [37])
     [Ext-7]    time-to-solution, convergence, frustrated spin glasses
     [Ext-8]    random-workload throughput, annealer vs CDCL
     [Ext-9]    portfolio racing (concurrent samplers, early exit) vs the
                sequential sampler sweep; batched multi-constraint solving
     [Timing]   Bechamel micro-benchmarks *)

module Bitvec = Qsmt_util.Bitvec
module Ascii7 = Qsmt_util.Ascii7
module Stats = Qsmt_util.Stats
module Qubo = Qsmt_qubo.Qubo
module Qubo_print = Qsmt_qubo.Qubo_print
module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa
module Sqa = Qsmt_anneal.Sqa
module Tabu = Qsmt_anneal.Tabu
module Greedy = Qsmt_anneal.Greedy
module Exact = Qsmt_anneal.Exact
module Pt = Qsmt_anneal.Pt
module Portfolio = Qsmt_anneal.Portfolio
module Metrics = Qsmt_anneal.Metrics
module Spinglass = Qsmt_anneal.Spinglass
module Convergence = Qsmt_anneal.Convergence
module Topology = Qsmt_anneal.Topology
module Hardware = Qsmt_anneal.Hardware
module Constr = Qsmt_strtheory.Constr
module Params = Qsmt_strtheory.Params
module Compile = Qsmt_strtheory.Compile
module Solver = Qsmt_strtheory.Solver
module Pipeline = Qsmt_strtheory.Pipeline
module Semantics = Qsmt_strtheory.Semantics
module Op_substring = Qsmt_strtheory.Op_substring
module Op_regex = Qsmt_strtheory.Op_regex
module Joint = Qsmt_strtheory.Joint
module Preprocess = Qsmt_qubo.Preprocess
module Qgraph = Qsmt_qubo.Qgraph
module Encode = Qsmt_strtheory.Encode
module Strsolver = Qsmt_classical.Strsolver
module Workload = Qsmt_strtheory.Workload
module Brute = Qsmt_classical.Brute
module Rparser = Qsmt_regex.Parser
module Telemetry = Qsmt_util.Telemetry

let fast = Sys.getenv_opt "QSMT_BENCH_FAST" <> None

(* QSMT_BENCH_TRACE=path streams the instrumented sections (Figure 1,
   Ext-7) through the same JSONL sink the CLI's --trace uses, so bench
   traces and CLI traces are byte-compatible and `qsmt trace` validates
   both. Unset: the null handle, which costs one pointer compare. *)
let trace_path = Sys.getenv_opt "QSMT_BENCH_TRACE"

let telemetry, close_trace =
  match trace_path with
  | None -> (Telemetry.null, fun () -> ())
  | Some path ->
    let oc = open_out path in
    let t = Telemetry.jsonl oc in
    ( t,
      fun () ->
        Telemetry.flush t;
        close_out oc )
let reads = if fast then 8 else 32
let sweeps = if fast then 200 else 1000
(* Monotonic (never steps backwards with wall-clock adjustments). *)
let now = Qsmt_util.Mclock.now

let header title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let subheader title = Format.printf "@.-- %s --@." title

let show_string s = String.map Ascii7.clamp_printable s

let pp_val ppf = function
  | Constr.Str s -> Format.fprintf ppf "%S" (show_string s)
  | Constr.Pos (Some i) -> Format.fprintf ppf "position %d" i
  | Constr.Pos None -> Format.fprintf ppf "no position"

let sa_sampler ~seed =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed; reads; sweeps } ()

(* Fraction of reads whose decode verifies the constraint. *)
let success_fraction constr samples =
  let total = ref 0 and good = ref 0 in
  List.iter
    (fun e ->
      total := !total + e.Sampleset.occurrences;
      if Constr.verify constr (Compile.decode constr e.Sampleset.bits) then
        good := !good + e.Sampleset.occurrences)
    (Sampleset.entries samples);
  if !total = 0 then 0. else float_of_int !good /. float_of_int !total

let time_it f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

(* Wall-clock plus GC-pressure columns: minor words allocated and major
   collections forced while [f] ran. [Gc.quick_stat] is domain-local on
   OCaml 5, so for multi-domain sections the numbers are the
   coordinating domain's share — a pressure signal, not a full ledger. *)
let time_gc_it f =
  let g0 = Gc.quick_stat () in
  let result, dt = time_it f in
  let g1 = Gc.quick_stat () in
  ( result,
    dt,
    g1.Gc.minor_words -. g0.Gc.minor_words,
    g1.Gc.major_collections - g0.Gc.major_collections )

(* ================================================================== *)
(* Table 1 *)

type table1_row = {
  label : string;
  run : int -> Constr.value * bool * Qubo.t; (* seed -> output, verified, last-stage qubo *)
  expected : string option; (* classically forced result, if any *)
  paper_output : string;
}

let run_single constr seed =
  let outcome = Solver.solve ~sampler:(sa_sampler ~seed) constr in
  (outcome.Solver.value, outcome.Solver.satisfied, outcome.Solver.qubo)

let run_pipeline pipeline seed =
  (* Benchmark pipelines are all string-valued, so a positional block is
     a bug worth failing loudly on, not a case to report. *)
  let outcomes =
    match Solver.solve_pipeline ~sampler:(sa_sampler ~seed) pipeline with
    | Ok outcomes -> outcomes
    | Error { Solver.stage_index; _ } ->
      failwith (Printf.sprintf "pipeline blocked on a positional decode at stage %d" stage_index)
  in
  let all_ok = List.for_all (fun o -> o.Solver.satisfied) outcomes in
  match List.rev outcomes with
  | last :: _ -> (last.Solver.value, all_ok, last.Solver.qubo)
  | [] -> assert false

let table1_rows =
  [
    {
      label = "Reverse 'hello' and replace 'e' with 'a'";
      run =
        run_pipeline
          { Pipeline.initial = Constr.Reverse "hello";
            Pipeline.stages = [ Pipeline.Replace_all { find = 'e'; replace = 'a' } ] };
      expected = Some "ollah";
      paper_output = "ollah";
    };
    {
      label = "Generate a palindrome with length 6";
      run = run_single (Constr.Palindrome { length = 6 });
      expected = None;
      paper_output = "OnFFnO (any palindrome)";
    };
    {
      label = "Generate the regex a[bc]+ with length 5";
      run = run_single (Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 });
      expected = None;
      paper_output = "abcbb (any match)";
    };
    {
      label = "Concatenate 'hello' and 'world', and replace all 'l' with 'x'";
      run =
        run_pipeline
          { Pipeline.initial = Constr.Concat [ "hello"; " "; "world" ];
            Pipeline.stages = [ Pipeline.Replace_all { find = 'l'; replace = 'x' } ] };
      expected = Some "hexxo worxd";
      paper_output = "hexxo worxd";
    };
    {
      label = "Generate a string of length 6 that contains the substring 'hi' at index 2";
      run = run_single (Constr.Index_of { length = 6; substring = "hi"; index = 2 });
      expected = None;
      paper_output = "qphiqp (hi forced at 2, rest free)";
    };
    {
      label = "Find the position of 'world' within 'hello world' (string includes)";
      run = run_single (Constr.Includes { haystack = "hello world"; needle = "world" });
      expected = Some "position 6";
      paper_output = "(operation from Sec. 4.4)";
    };
  ]

let table1 () =
  header "Table 1: sample string constraints (paper's evaluation)";
  List.iteri
    (fun i row ->
      let (value, ok, qubo), dt = time_it (fun () -> row.run 1) in
      Format.printf "@.row %d: %s@." (i + 1) row.label;
      Format.printf "  matrix (abbreviated):@.";
      Format.printf "    %s@."
        (String.concat "\n    "
           (String.split_on_char '\n' (Qubo_print.dense_string ~max_dim:6 qubo)));
      Format.printf "  paper output : %s@." row.paper_output;
      Format.printf "  our output   : %a  [%s, %.0f ms]@." pp_val value
        (if ok then "verified" else "NOT SATISFIED")
        (1e3 *. dt);
      match row.expected with
      | Some want ->
        let got =
          match value with Constr.Str s -> show_string s | _ -> Format.asprintf "%a" pp_val value
        in
        Format.printf "  deterministic check: expected %S, got %S -> %s@." want got
          (if want = got then "MATCH" else "MISMATCH")
      | None -> ())
    table1_rows

(* ================================================================== *)
(* Figure 1 *)

let figure1 () =
  header "Figure 1: approach pipeline (inputs -> binary vars -> QUBO -> annealer -> decode)";
  let cases =
    [
      Constr.Reverse "hello";
      Constr.Palindrome { length = 6 };
      Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 };
      Constr.Includes { haystack = "hello world"; needle = "world" };
    ]
  in
  Format.printf "%-55s %6s %10s %10s %10s %9s %6s  %s@." "constraint" "vars" "encode" "anneal"
    "decode" "alloc" "majgc" "output";
  List.iter
    (fun constr ->
      let (outcome, timing), _, minor_words, major_gcs =
        time_gc_it (fun () -> Solver.solve_timed ~sampler:(sa_sampler ~seed:1) ~telemetry constr)
      in
      Format.printf "%-55s %6d %8.1fus %8.1fms %8.1fus %7.1fMw %6d  %a@."
        (Constr.describe constr)
        (Qubo.num_vars outcome.Solver.qubo)
        (1e6 *. timing.Solver.encode_s)
        (1e3 *. timing.Solver.sample_s)
        (1e6 *. timing.Solver.decode_s)
        (minor_words /. 1e6) major_gcs pp_val outcome.Solver.value)
    cases

(* ================================================================== *)
(* Ext-1: scaling *)

let ext1 () =
  header "Ext-1: scaling with string length (success probability per read, time per solve)";
  let lengths = if fast then [ 2; 4; 8 ] else [ 2; 4; 6; 8; 12; 16 ] in
  let make_cases n =
    [
      ("equality", Constr.Equals (String.init n (fun i -> Char.chr (97 + (i mod 26)))));
      ("palindrome", Constr.Palindrome { length = n });
      ("regex a[bc]+", Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = n });
    ]
  in
  Format.printf "%-14s %4s %6s %14s %10s@." "constraint" "len" "vars" "success/read" "time";
  List.iter
    (fun n ->
      List.iter
        (fun (name, constr) ->
          match Constr.validate constr with
          | Error _ -> ()
          | Ok () ->
            let qubo = Compile.to_qubo constr in
            let samples, dt =
              time_it (fun () ->
                  Sa.sample ~params:{ Sa.default with Sa.seed = n; reads; sweeps } qubo)
            in
            Format.printf "%-14s %4d %6d %13.0f%% %8.1fms@." name n (Qubo.num_vars qubo)
              (100. *. success_fraction constr samples)
              (1e3 *. dt))
        (make_cases n))
    lengths

(* ================================================================== *)
(* Ext-2: sampler ablation + encoding ablations *)

let ext2_samplers () =
  subheader "Ext-2a: sampler ablation (same constraints, same seed)";
  let suite =
    [
      Constr.Equals "quantum";
      Constr.Palindrome { length = 8 };
      Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 8 };
      Constr.Includes { haystack = "abcabcabcabc"; needle = "cab" };
    ]
  in
  let samplers =
    [
      ("sa", Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed = 3; reads; sweeps } ());
      ( "sqa",
        Sampler.simulated_quantum_annealing
          ~params:
            { Sqa.default with
              Sqa.seed = 3;
              reads = max 4 (reads / 2);
              sweeps = max 100 (sweeps / 2)
            }
          () );
      ( "pt",
        Sampler.parallel_tempering
          ~params:{ Pt.default with Pt.seed = 3; reads = max 4 (reads / 4); sweeps = max 100 (sweeps / 2) } () );
      ( "tabu",
        Sampler.tabu
          ~params:{ Tabu.default with Tabu.seed = 3; restarts = reads; iterations = sweeps }
          () );
      ("greedy", Sampler.greedy ~params:{ Greedy.restarts = reads; seed = 3; domains = 1 } ());
    ]
  in
  Format.printf "%-50s %-8s %10s %9s %10s@." "constraint" "sampler" "bestE" "success" "time";
  List.iter
    (fun constr ->
      List.iter
        (fun (name, sampler) ->
          let outcome, dt = time_it (fun () -> Solver.solve ~sampler constr) in
          Format.printf "%-50s %-8s %10.2f %8.0f%% %8.1fms@." (Constr.describe constr) name
            (Sampleset.lowest_energy outcome.Solver.samples)
            (100. *. success_fraction constr outcome.Solver.samples)
            (1e3 *. dt))
        samplers;
      (* exact oracle where the problem is small enough *)
      if Constr.num_vars constr <= Exact.max_vars then begin
        let qubo = Compile.to_qubo constr in
        let (_, ground), dt = time_it (fun () -> Exact.ground_states qubo) in
        Format.printf "%-50s %-8s %10.2f %9s %8.1fms@." "" "exact" ground "-" (1e3 *. dt)
      end)
    suite

let ext2_overwrite_vs_sum () =
  subheader "Ext-2b: substring matching, paper overwrite vs additive (Sum) encoding";
  let lengths = if fast then [ 4; 6 ] else [ 4; 6; 8; 10 ] in
  Format.printf "%4s  %-10s %14s %14s@." "len" "substring" "overwrite" "sum";
  List.iter
    (fun length ->
      let substring = "cat" in
      let constr = Constr.Contains { length; substring } in
      let frac combine =
        let qubo = Op_substring.encode ~combine ~length ~substring () in
        let samples = Sa.sample ~params:{ Sa.default with Sa.seed = length; reads; sweeps } qubo in
        success_fraction constr samples
      in
      Format.printf "%4d  %-10s %13.0f%% %13.0f%%@." length substring
        (100. *. frac Encode.Overwrite)
        (100. *. frac Encode.Sum))
    lengths

let ext2_class_width () =
  subheader "Ext-2c: regex class width vs shared-preference encoding fidelity (Sec 4.11)";
  let classes = [ "[bc]"; "[b-e]"; "[b-i]"; "[b-q]"; "[b-z]" ] in
  Format.printf "%-8s %6s %22s@." "class" "|cls|" "reads decoding to member";
  List.iter
    (fun cls ->
      let pattern = Rparser.parse_exn ("a" ^ cls ^ "+") in
      let length = 6 in
      let constr = Constr.Regex { pattern; length } in
      let qubo = Op_regex.encode_exn ~pattern ~length () in
      let samples = Sa.sample ~params:{ Sa.default with Sa.seed = 9; reads; sweeps } qubo in
      let width =
        match Qsmt_regex.Unroll.to_position_sets pattern ~len:length with
        | Ok sets -> Qsmt_regex.Charset.cardinal sets.(1)
        | Error _ -> 0
      in
      Format.printf "%-8s %6d %21.0f%%@." cls width (100. *. success_fraction constr samples))
    classes

(* ================================================================== *)
(* Ext-3: classical baselines *)

let ext3 () =
  header "Ext-3: annealer vs classical baselines (CDCL bit-blast, brute force)";
  let lengths = if fast then [ 2; 4 ] else [ 2; 3; 4; 6; 8 ] in
  Format.printf "%-28s %12s %12s %12s@." "constraint" "SA" "CDCL" "brute(a-z)";
  let lowercase = List.init 26 (fun i -> Char.chr (97 + i)) in
  List.iter
    (fun n ->
      let target = String.init n (fun i -> Char.chr (97 + ((i * 7) mod 26))) in
      let constr = Constr.Equals target in
      let _, sa_t = time_it (fun () -> Solver.solve ~sampler:(sa_sampler ~seed:n) constr) in
      let _, cdcl_t = time_it (fun () -> Strsolver.solve constr) in
      let brute =
        if n <= 4 then begin
          let r, t =
            time_it (fun () -> Brute.solve ~alphabet:lowercase ~limit:2_000_000 constr)
          in
          match r with Some _ -> Format.asprintf "%8.1fms" (1e3 *. t) | None -> "miss"
        end
        else ">1e6 cands"
      in
      Format.printf "%-28s %10.1fms %10.1fms %12s@."
        (Printf.sprintf "equality len %d" n)
        (1e3 *. sa_t) (1e3 *. cdcl_t) brute)
    lengths;
  subheader "constraints where completeness matters";
  (* CDCL proves unsat; the annealer cannot *)
  let absent = Constr.Includes { haystack = "aaaaaaa"; needle = "xyz" } in
  let o, dt = time_it (fun () -> Strsolver.solve absent) in
  Format.printf "%-46s CDCL: %s in %.1fms (annealer: cannot prove unsat)@."
    (Constr.describe absent)
    (match o.Strsolver.result with `Unsat -> "unsat" | `Sat -> "sat" | `Unknown -> "unknown")
    (1e3 *. dt);
  (* alternation regex outside the QUBO product-form fragment *)
  let alt = Constr.Regex { pattern = Rparser.parse_exn "cat|dog"; length = 3 } in
  let o, dt = time_it (fun () -> Strsolver.solve alt) in
  Format.printf "%-46s CDCL: %s %s in %.1fms (QUBO encoder: unsupported)@."
    (Constr.describe alt)
    (match o.Strsolver.result with `Sat -> "sat" | `Unsat -> "unsat" | `Unknown -> "unknown")
    (match o.Strsolver.value with Some v -> Format.asprintf "%a" pp_val v | None -> "")
    (1e3 *. dt)

(* ================================================================== *)
(* Ext-4: hardware model *)

let ext4 () =
  header "Ext-4: hardware model (minor embedding on Chimera, chains, control noise)";
  let constr = Constr.Includes { haystack = "abcabcabc"; needle = "abc" } in
  let qubo = Compile.to_qubo constr in
  let topology = Topology.chimera ~m:3 () in
  Format.printf "problem: %s (%d logical vars, K%d interactions) on %s@."
    (Constr.describe constr) (Qubo.num_vars qubo) (Qubo.num_vars qubo) (Topology.name topology);
  subheader "chain strength sweep (noise 0)";
  Format.printf "%8s %10s %12s %14s@." "strength" "breaks" "groundP" "logical bestE";
  List.iter
    (fun chain_strength ->
      let params =
        (* Pin the strength: the sweep measures break behaviour at each
           value, so the adaptive escalation loop must stay off. *)
        { (Hardware.default_params topology) with
          Hardware.chain_strength = Some chain_strength;
          Hardware.embed_tries = 64;
          Hardware.max_escalations = 0;
          Hardware.anneal = { Sa.default with Sa.seed = 5; reads; sweeps }
        }
      in
      match Hardware.sample ~params qubo with
      | r ->
        Format.printf "%8.2f %9.1f%% %11.0f%% %14.2f@." chain_strength
          (100. *. r.Hardware.stats.Hardware.mean_chain_break_fraction)
          (100. *. Sampleset.ground_probability r.Hardware.samples ~tol:1e-9)
          (Sampleset.lowest_energy r.Hardware.samples)
      | exception Hardware.Embedding_failed msg -> Format.printf "embedding failed: %s@." msg)
    (if fast then [ 1.0; 8.0 ] else [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ]);
  subheader "control-noise sweep (auto chain strength)";
  Format.printf "%8s %10s %12s %10s@." "sigma" "breaks" "groundP" "verified";
  List.iter
    (fun noise_sigma ->
      let params =
        { (Hardware.default_params topology) with
          Hardware.noise_sigma;
          Hardware.embed_tries = 64;
          Hardware.anneal = { Sa.default with Sa.seed = 5; reads; sweeps }
        }
      in
      match Hardware.sample ~params qubo with
      | r ->
        let ok =
          Constr.verify constr
            (Compile.decode constr (Sampleset.best r.Hardware.samples).Sampleset.bits)
        in
        Format.printf "%8.2f %9.1f%% %11.0f%% %10s@." noise_sigma
          (100. *. r.Hardware.stats.Hardware.mean_chain_break_fraction)
          (100. *. Sampleset.ground_probability r.Hardware.samples ~tol:1e-9)
          (if ok then "yes" else "no")
      | exception Hardware.Embedding_failed msg -> Format.printf "embedding failed: %s@." msg)
    (if fast then [ 0.0; 0.1 ] else [ 0.0; 0.02; 0.05; 0.1; 0.2 ])


(* ================================================================== *)
(* Ext-5: joint conjunctions vs what the paper can express *)

let ext5 () =
  header "Ext-5: joint (merged-QUBO) conjunctions — beyond the paper's sequential pipelines";
  let cases =
    [
      ( "palindrome(4) AND 'ab' at 0",
        [
          Constr.Palindrome { length = 4 };
          Constr.Index_of { length = 4; substring = "ab"; index = 0 };
        ] );
      ( "palindrome(6) AND regex [ab]+",
        [
          Constr.Palindrome { length = 6 };
          Constr.Regex { pattern = Rparser.parse_exn "[ab]+"; length = 6 };
        ] );
      ( "regex a[bc]+ AND contains 'cb'",
        [
          Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 6 };
          Constr.Contains { length = 6; substring = "cb" };
        ] );
      ( "contradiction: = 'ab' AND = 'cd'",
        [ Constr.Equals "ab"; Constr.Equals "cd" ] );
    ]
  in
  Format.printf "%-38s %-12s %9s %10s@." "conjunction" "value" "joint-ok" "time";
  List.iter
    (fun (label, conjuncts) ->
      match time_it (fun () -> Joint.solve ~sampler:(sa_sampler ~seed:4) conjuncts) with
      | Ok o, dt ->
        Format.printf "%-38s %-12S %9s %8.1fms@." label (show_string o.Joint.value)
          (if o.Joint.satisfied then "yes" else "NO")
          (1e3 *. dt)
      | Error e, _ -> Format.printf "%-38s error: %s@." label e)
    cases

(* ================================================================== *)
(* Ext-6: QUBO preprocessing (Lewis-Glover variable fixing) *)

let ext6 () =
  header "Ext-6: preprocessing (paper ref [37]) — variables fixed per operation";
  Format.printf "%-50s %6s %7s %10s@." "constraint" "vars" "fixed" "residual";
  List.iter
    (fun constr ->
      let q = Compile.to_qubo constr in
      let t = Preprocess.reduce q in
      Format.printf "%-50s %6d %7d %10d@." (Constr.describe constr) (Qubo.num_vars q)
        (Preprocess.num_fixed t) (Preprocess.num_free t))
    [
      Constr.Equals "hello world";
      Constr.Replace_all { source = "hello"; find = 'l'; replace = 'x' };
      Constr.Contains { length = 6; substring = "cat" };
      Constr.Index_of { length = 6; substring = "hi"; index = 2 };
      Constr.Palindrome { length = 6 };
      Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 6 };
      Constr.Includes { haystack = "abcabcabc"; needle = "abc" };
    ];
  Format.printf
    "@.(diagonal-only encodings collapse entirely: preprocessing alone solves them;@.\
     \ coupled encodings — palindrome, includes — keep their interaction structure)@."

(* ================================================================== *)
(* Ext-7: time-to-solution, convergence, and frustrated instances *)

let ext7 () =
  header "Ext-7: time-to-solution and convergence";
  subheader "TTS(99%) per sampler on a frustrated planted spin glass (king 4x4, 16 vars)";
  let rng = Qsmt_util.Prng.create 13 in
  let graph = Topology.graph (Topology.king ~rows:4 ~cols:4) in
  let q, _target, ground = Spinglass.planted ~rng ~coupling:Spinglass.Gaussian graph in
  Format.printf "%-8s %10s %10s %12s %14s@." "sampler" "p_succ" "t/read" "TTS(99%)" "residual E";
  List.iter
    (fun sampler ->
      let samples, dt = time_it (fun () -> Sampler.run ~telemetry sampler q) in
      let n_reads = Sampleset.total_reads samples in
      let time_per_read = dt /. float_of_int (max 1 n_reads) in
      let p = Metrics.success_probability samples ~ground_energy:ground () in
      let tts = if p > 0. then Metrics.time_to_solution ~time_per_read ~p_success:p () else None in
      Format.printf "%-8s %9.0f%% %8.2fms %12s %14s@." (Sampler.name sampler) (100. *. p)
        (1e3 *. time_per_read)
        (Format.asprintf "%a" Metrics.pp_tts tts)
        (match Metrics.residual_energy samples ~ground_energy:ground with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "n/a"))
    (Sampler.default_suite ~seed:21);
  subheader "SA convergence (mean best energy vs sweep) on the same instance";
  let t = Convergence.sa_trajectory ~reads:(max 8 (reads / 2)) ~sweeps:(max 100 (sweeps / 2)) ~seed:2 q in
  Format.printf "%a@." Convergence.pp t;
  (match Convergence.sweeps_to_reach t ~target:ground ~tol:1e-6 () with
  | Some k -> Format.printf "mean trajectory reaches the planted ground after %d sweeps@." k
  | None ->
    Format.printf "mean trajectory does not reach the planted ground (best %.3f vs %.3f)@."
      t.Convergence.final_best ground)


(* ================================================================== *)
(* Ext-8: workload throughput *)

let ext8 () =
  header "Ext-8: random-workload throughput (constraints solved per second, verified)";
  let count = if fast then 10 else 40 in
  let kinds =
    [
      ("equality-ish", [ Workload.K_equals; Workload.K_reverse; Workload.K_replace_all ]);
      ("substring", [ Workload.K_contains; Workload.K_index_of ]);
      ("includes", [ Workload.K_includes ]);
      ("generative", [ Workload.K_palindrome; Workload.K_regex ]);
    ]
  in
  Format.printf "%-14s %8s %10s %12s | %10s %12s@." "kind" "solved" "SA rate" "SA thru"
    "CDCL rate" "CDCL thru";
  List.iter
    (fun (label, ks) ->
      let suite = Workload.suite ~seed:77 ~kinds:ks ~max_length:5 ~count () in
      let sa_ok = ref 0 in
      let _, sa_t =
        time_it (fun () ->
            List.iter
              (fun c ->
                let o = Solver.solve ~sampler:(sa_sampler ~seed:7) c in
                if o.Solver.satisfied then incr sa_ok)
              suite)
      in
      let cdcl_ok = ref 0 in
      let _, cdcl_t =
        time_it (fun () ->
            List.iter
              (fun c ->
                let o = Strsolver.solve c in
                if o.Strsolver.satisfied then incr cdcl_ok)
              suite)
      in
      Format.printf "%-14s %5d/%2d %9.0f%% %10.1f/s | %9.0f%% %10.1f/s@." label !sa_ok count
        (100. *. float_of_int !sa_ok /. float_of_int count)
        (float_of_int count /. sa_t)
        (100. *. float_of_int !cdcl_ok /. float_of_int count)
        (float_of_int count /. cdcl_t))
    kinds

(* ================================================================== *)
(* Ext-9: portfolio racing and batched solving *)

let ext9 () =
  header "Ext-9: portfolio racing vs sequential sampler sweep (Table-1 workload)";
  Format.printf "pool: %d worker domains (+ the caller)@."
    (Qsmt_util.Parallel.Pool.size (Qsmt_util.Parallel.Pool.global ()));
  let workload =
    [
      ("reverse hello", Constr.Reverse "hello");
      ("palindrome 6", Constr.Palindrome { length = 6 });
      ("regex a[bc]+ 5", Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 });
      ("concat hello world", Constr.Concat [ "hello"; " "; "world" ]);
      ("indexof hi@2 len6", Constr.Index_of { length = 6; substring = "hi"; index = 2 });
      ("includes world", Constr.Includes { haystack = "hello world"; needle = "world" });
    ]
  in
  let seed = 5 in
  subheader
    "sequential sweep = every default-suite sampler to completion; portfolio = same members \
     raced concurrently, first verified read cancels the rest";
  Format.printf "%-20s %12s %12s %8s %9s %11s@." "constraint" "sweep" "portfolio" "speedup"
    "winner" "cancelled";
  let total_seq = ref 0. and total_port = ref 0. in
  List.iter
    (fun (label, constr) ->
      let qubo = Compile.to_qubo constr in
      let verify bits = Constr.verify constr (Compile.decode constr bits) in
      let _, seq_t =
        time_it (fun () ->
            List.iter (fun s -> ignore (Sampler.run s qubo)) (Sampler.default_suite ~seed))
      in
      let result, port_t =
        time_it (fun () ->
            Portfolio.run
              ~params:
                { Portfolio.members = Portfolio.default_members ~seed; jobs = 0; budget = Some 30. }
              ~verify qubo)
      in
      let cancelled =
        List.length (List.filter (fun r -> r.Portfolio.cancelled) result.Portfolio.reports)
      in
      total_seq := !total_seq +. seq_t;
      total_port := !total_port +. port_t;
      Format.printf "%-20s %10.1fms %10.1fms %7.1fx %9s %8d/%d@." label (1e3 *. seq_t)
        (1e3 *. port_t)
        (seq_t /. port_t)
        (match result.Portfolio.winner with Some (name, _) -> name | None -> "-")
        cancelled
        (List.length result.Portfolio.reports))
    workload;
  Format.printf "%-20s %10.1fms %10.1fms %7.1fx@." "TOTAL" (1e3 *. !total_seq)
    (1e3 *. !total_port)
    (!total_seq /. !total_port);
  subheader "solve_batch: the same six constraints, one solver call, pooled domains";
  let constrs = List.map snd workload in
  let sampler = sa_sampler ~seed in
  let _, one_by_one_t =
    time_it (fun () -> List.iter (fun c -> ignore (Solver.solve ~sampler c)) constrs)
  in
  let batched, batch_t = time_it (fun () -> Solver.solve_batch ~sampler constrs) in
  List.iter2
    (fun (label, _) (outcome, timing) ->
      Format.printf "  %-20s %s  sample %.1fms@." label
        (if outcome.Solver.satisfied then "ok " else "MISS")
        (1e3 *. timing.Solver.sample_s))
    workload batched;
  Format.printf "one-by-one %.1fms  batched %.1fms  speedup %.1fx@." (1e3 *. one_by_one_t)
    (1e3 *. batch_t)
    (one_by_one_t /. batch_t)

(* ================================================================== *)
(* Bechamel micro timings *)

let bechamel_section () =
  header "Timing (Bechamel, OLS estimate per solve)";
  let open Bechamel in
  let open Toolkit in
  let quick_params = { Sa.default with Sa.reads = 4; sweeps = 200; seed = 1 } in
  let quick = Sampler.simulated_annealing ~params:quick_params () in
  let solve constr () = ignore (Solver.solve ~sampler:quick constr) in
  let tests =
    [
      (* one per Table 1 row *)
      Test.make ~name:"table1/row1-reverse+replace"
        (Staged.stage (fun () ->
             ignore
               (Solver.solve_pipeline ~sampler:quick
                  { Pipeline.initial = Constr.Reverse "hello";
                    Pipeline.stages = [ Pipeline.Replace_all { find = 'e'; replace = 'a' } ]
                  })));
      Test.make ~name:"table1/row2-palindrome6"
        (Staged.stage (solve (Constr.Palindrome { length = 6 })));
      Test.make ~name:"table1/row3-regex"
        (Staged.stage (solve (Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 })));
      Test.make ~name:"table1/row4-concat+replaceAll"
        (Staged.stage (fun () ->
             ignore
               (Solver.solve_pipeline ~sampler:quick
                  { Pipeline.initial = Constr.Concat [ "hello"; " "; "world" ];
                    Pipeline.stages = [ Pipeline.Replace_all { find = 'l'; replace = 'x' } ]
                  })));
      Test.make ~name:"table1/row5-indexof"
        (Staged.stage (solve (Constr.Index_of { length = 6; substring = "hi"; index = 2 })));
      Test.make ~name:"table1/row6-includes"
        (Staged.stage (solve (Constr.Includes { haystack = "hello world"; needle = "world" })));
      (* figure 1 stages in isolation *)
      Test.make ~name:"fig1/encode-only"
        (Staged.stage (fun () -> ignore (Compile.to_qubo (Constr.Reverse "hello world"))));
      Test.make ~name:"fig1/anneal-only"
        (let qubo = Compile.to_qubo (Constr.Reverse "hello world") in
         Staged.stage (fun () -> ignore (Sa.sample ~params:quick_params qubo)));
      Test.make ~name:"fig1/decode-only"
        (let constr = Constr.Reverse "hello world" in
         let bits = Ascii7.encode "dlrow olleh" in
         Staged.stage (fun () -> ignore (Compile.decode constr bits)));
      (* extensions *)
      Test.make ~name:"ext1/equality-len16"
        (Staged.stage (solve (Constr.Equals "abcdefghijklmnop")));
      Test.make ~name:"ext2/sqa-palindrome6"
        (let qubo = Compile.to_qubo (Constr.Palindrome { length = 6 }) in
         Staged.stage (fun () ->
             ignore (Sqa.sample ~params:{ Sqa.default with Sqa.reads = 2; sweeps = 100 } qubo)));
      Test.make ~name:"ext3/cdcl-contains"
        (Staged.stage (fun () ->
             ignore (Strsolver.solve (Constr.Contains { length = 8; substring = "cat" }))));
      Test.make ~name:"ext4/embed-includes-K5"
        (let qubo = Compile.to_qubo (Constr.Includes { haystack = "abcabca"; needle = "abc" }) in
         let problem = Qsmt_qubo.Qgraph.of_qubo qubo in
         let hardware = Topology.graph (Topology.chimera ~m:2 ()) in
         Staged.stage (fun () ->
             ignore (Qsmt_anneal.Embedding.find ~tries:8 ~problem ~hardware ())));
    ]
  in
  let grouped = Test.make_grouped ~name:"qsmt" tests in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second (if fast then 0.1 else 0.5)) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort compare rows in
  Format.printf "%-40s %14s %8s@." "benchmark" "per solve" "r^2";
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] ->
        let pretty =
          if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        in
        Format.printf "%-40s %14s %8s@." name pretty
          (match Analyze.OLS.r_square r with
          | Some r2 -> Printf.sprintf "%.3f" r2
          | None -> "-")
      | Some _ | None -> Format.printf "%-40s %14s@." name "n/a")
    rows

(* ================================================================== *)

let () =
  let t0 = now () in
  Format.printf "qsmt benchmark harness%s (reads=%d, sweeps=%d, seeds fixed)@."
    (if fast then " [FAST]" else "")
    reads sweeps;
  table1 ();
  figure1 ();
  ext1 ();
  header "Ext-2: encoding and sampler ablations";
  ext2_samplers ();
  ext2_overwrite_vs_sum ();
  ext2_class_width ();
  ext3 ();
  ext4 ();
  ext5 ();
  ext6 ();
  ext7 ();
  ext8 ();
  ext9 ();
  bechamel_section ();
  close_trace ();
  (match trace_path with
  | Some path -> Format.printf "@.telemetry trace written to %s@." path
  | None -> ());
  Format.printf "@.total wall clock: %.1f s@." (now () -. t0)
