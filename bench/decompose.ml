(* Ext-16: decomposition scaling past one embedding.

   Every earlier bench stops where one sampler call stops — the largest
   Table-1 instance (palindrome-6, 42 logical variables). This bench
   scales the palindrome family to 4x that size, solving each instance
   two ways with the same SA budget: whole-problem (one sampler call
   over all variables) and decomposed (qbsolv-style shards of at most 42
   variables, solved concurrently over the domain pool, boundaries
   iterated to convergence).

   Recorded per instance: variables, shard/round/accept counts from the
   decomp telemetry, both best energies, whether the decoded value
   verifies, whether the stitched energy re-prices bit-exactly, and both
   wall times. Gates (exit non-zero):
     - every decomposed run must stitch bit-exactly (the string
       encodings' coefficients are dyadic; a mismatch means the
       incremental pricing broke);
     - the 4x instance (palindrome-24, 168 vars) must decode to a
       verified palindrome through the decomposed path;
     - trajectory vs the committed bench/baselines/BENCH_7.json: any
       instance the baseline solved (verified) must still verify, and
       the decomposed/whole wall-time ratio must stay within 2.5x of the
       baseline's ratio (ratios are machine-robust where absolute times
       are not — same tolerance philosophy as the BENCH_2 gate).

   Run with:
     dune exec bench/decompose.exe                  full run, writes BENCH_7.json
     QSMT_BENCH_FAST=1 dune exec ...                reduced (CI smoke) run *)

module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Decompose = Qsmt_qubo.Decompose
module Sa = Qsmt_anneal.Sa
module Sampler = Qsmt_anneal.Sampler
module Sampleset = Qsmt_anneal.Sampleset
module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Mclock = Qsmt_util.Mclock

let fast = Sys.getenv_opt "QSMT_BENCH_FAST" <> None
let reads = if fast then 8 else 32
let sweeps = if fast then 300 else 1000
let subsize = 42 (* the largest single embedding the Table-1 suite uses *)

let instances =
  [
    (* fits one shard: the decomposed path must fall back (identical work) *)
    ("palindrome-6", Constr.Palindrome { length = 6 });
    ("palindrome-12", Constr.Palindrome { length = 12 });
    ("palindrome-18", Constr.Palindrome { length = 18 });
    (* the acceptance instance: 4x the largest single embedding *)
    ("palindrome-24", Constr.Palindrome { length = 24 });
  ]

type row = {
  name : string;
  vars : int;
  shards : int;
  rounds : int;
  accepted : int;
  fallback : bool;
  whole_energy : float;
  whole_s : float;
  decomp_energy : float;
  decomp_s : float;
  verified : bool;
  bit_exact : bool;
}

let sa_sampler () =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed = 5; reads; sweeps } ()

let counter t name = Option.value ~default:0 (Telemetry.find_counter t name)

let run_instance (name, constr) =
  let qubo = Compile.to_qubo constr in
  let n = Qubo.num_vars qubo in
  let whole_s, whole = Mclock.elapsed (fun () -> Sampler.run (sa_sampler ()) qubo) in
  let whole_energy = Sampleset.lowest_energy whole in
  let t = Telemetry.aggregate_only () in
  let decomposed =
    Sampler.decomposed
      ~params:{ Decompose.default with Decompose.subsize; seed = 5 }
      (sa_sampler ())
  in
  let decomp_s, samples = Mclock.elapsed (fun () -> Sampler.run ~telemetry:t decomposed qubo) in
  let best = Sampleset.best samples in
  let verified = Constr.verify constr (Compile.decode constr best.Sampleset.bits) in
  let fallback = counter t "decomp.fallback" > 0 in
  let row =
    {
      name;
      vars = n;
      shards = counter t "decomp.shards";
      rounds = counter t "decomp.rounds";
      accepted = counter t "decomp.accepted";
      fallback;
      whole_energy;
      whole_s;
      decomp_energy = best.Sampleset.energy;
      decomp_s;
      verified;
      (* the reprice_mismatch counter fires exactly when stitching was
         not bit-exact; fallback runs never stitch *)
      bit_exact = counter t "decomp.reprice_mismatch" = 0;
    }
  in
  Format.printf
    "%-14s %4d vars %2d shards %2d rounds  whole %8.1f (%6.1fms)  decomp %8.1f (%6.1fms) %s%s@."
    row.name row.vars row.shards row.rounds row.whole_energy (1e3 *. row.whole_s)
    row.decomp_energy (1e3 *. row.decomp_s)
    (if row.verified then "verified" else "NOT-VERIFIED")
    (if row.fallback then " [fallback]" else "");
  row

(* ------------------------------------------------------------------ *)
(* baseline trajectory *)

let baseline_path = "bench/baselines/BENCH_7.json"

let jfield k = function Telemetry.J_obj kvs -> List.assoc_opt k kvs | _ -> None
let jnum = function Some (Telemetry.J_num f) -> Some f | _ -> None
let jstr = function Some (Telemetry.J_str s) -> Some s | _ -> None
let jbool = function Some (Telemetry.J_bool b) -> Some b | _ -> None

(* (name, verified, decomp_s / whole_s) per baseline instance *)
let baseline_rows () =
  match In_channel.with_open_text baseline_path In_channel.input_all with
  | exception Sys_error _ -> None
  | text -> (
    match Telemetry.parse_json text with
    | Error _ -> None
    | Ok doc ->
      (match jfield "instances" doc with
      | Some (Telemetry.J_list insts) ->
        Some
          (List.filter_map
             (fun inst ->
               match
                 ( jstr (jfield "name" inst),
                   jbool (jfield "verified" inst),
                   jnum (jfield "whole_s" inst),
                   jnum (jfield "decomp_s" inst) )
               with
               | Some name, Some verified, Some ws, Some ds when ws > 0. ->
                 Some (name, verified, ds /. ws)
               | _ -> None)
             insts)
      | _ -> None))

let gate rows =
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun r ->
      if not r.bit_exact then fail "%s: stitched energy did not re-price bit-exactly" r.name)
    rows;
  (match List.find_opt (fun r -> r.name = "palindrome-24") rows with
  | Some r ->
    if r.fallback then fail "palindrome-24: expected decomposition, got fallback";
    if not r.verified then fail "palindrome-24: decomposed solve did not verify"
  | None -> fail "palindrome-24 missing from the run");
  (match baseline_rows () with
  | None -> Format.printf "no baseline at %s; trajectory gate skipped@." baseline_path
  | Some base ->
    List.iter
      (fun (bname, bverified, bratio) ->
        match List.find_opt (fun r -> r.name = bname) rows with
        | None -> ()
        | Some r ->
          if bverified && not r.verified then
            fail "%s: baseline verified, this run did not" bname;
          if r.whole_s > 0. then begin
            let ratio = r.decomp_s /. r.whole_s in
            (* generous: catches "stitching became pathologically slower
               than whole-problem solving", not scheduler jitter *)
            if ratio > 2.5 *. bratio && ratio > 1.5 then
              fail "%s: decomp/whole time ratio %.2f vs baseline %.2f (>2.5x drift)" bname
                ratio bratio
          end)
      base);
  List.rev !failures

(* ------------------------------------------------------------------ *)

let json_out rows path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"decompose\",\n";
  p "  \"pr\": 7,\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"reads\": %d,\n" reads;
  p "  \"sweeps\": %d,\n" sweeps;
  p "  \"subsize\": %d,\n" subsize;
  p "  \"instances\": [\n";
  List.iteri
    (fun k r ->
      p "    {\n";
      p "      \"name\": \"%s\",\n" r.name;
      p "      \"vars\": %d,\n" r.vars;
      p "      \"shards\": %d,\n" r.shards;
      p "      \"rounds\": %d,\n" r.rounds;
      p "      \"accepted\": %d,\n" r.accepted;
      p "      \"fallback\": %b,\n" r.fallback;
      p "      \"whole_energy\": %g,\n" r.whole_energy;
      p "      \"whole_s\": %.6f,\n" r.whole_s;
      p "      \"decomp_energy\": %g,\n" r.decomp_energy;
      p "      \"decomp_s\": %.6f,\n" r.decomp_s;
      p "      \"verified\": %b,\n" r.verified;
      p "      \"bit_exact\": %b\n" r.bit_exact;
      p "    }%s\n" (if k = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

let () =
  Format.printf "decomposition scaling benchmark%s (reads=%d, sweeps=%d, subsize=%d, seeds fixed)@."
    (if fast then " [FAST]" else "")
    reads sweeps subsize;
  let rows = List.map run_instance instances in
  json_out rows "BENCH_7.json";
  Format.printf "@.wrote BENCH_7.json@.";
  match gate rows with
  | [] -> Format.printf "gate: ok@."
  | failures ->
    List.iter (fun m -> Format.printf "gate FAILED: %s@." m) failures;
    exit 1
