(* Ext-17: pre-encode abstract interpretation — static decisions and
   encoding shrinking over the Table 1 corpus.

   For every instance the bench compares the annealed search space with
   and without the absint pass:

   - statically decided instances (verdict sat/unsat) anneal zero
     variables — the whole QUBO evaporates;
   - undecided instances anneal only the residual left after clamping
     the statically-forced codec bits ({!Qsmt_qubo.Preprocess.clamp});
   - every solve still goes through the classical verifier, and each
     fixed-seed row must come back satisfied, so the shrink never costs
     an answer.

   The headline is the aggregate logical-variable reduction across the
   corpus (sum of annealed variables, absint on vs off); the bench
   fails under 15%, the CI shrink gate.

   Run with:
     dune exec bench/absint.exe          full run, writes BENCH_10.json
     QSMT_BENCH_FAST=1 dune exec ...     reduced (CI smoke) run *)

module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Absint = Qsmt_strtheory.Absint
module Solver = Qsmt_strtheory.Solver
module Workload = Qsmt_strtheory.Workload
module Preprocess = Qsmt_qubo.Preprocess
module Qubo = Qsmt_qubo.Qubo
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa
module Rparser = Qsmt_regex.Parser

let fast = Sys.getenv_opt "QSMT_BENCH_FAST" <> None
let reads = if fast then 8 else 32
let sweeps = if fast then 200 else 1000
let trials = if fast then 2 else 5

let sampler =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.reads; sweeps; seed = 0 } ()

let table1 =
  [
    Constr.Reverse "hello";
    Constr.Palindrome { length = 6 };
    Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 };
    Constr.Concat [ "hello"; " "; "world" ];
    Constr.Index_of { length = 6; substring = "hi"; index = 2 };
    Constr.Includes { haystack = "hello world"; needle = "world" };
  ]

let corpus = table1 @ Workload.suite ~seed:7 ~max_length:6 ~count:4 ()

type row = {
  name : string;
  verdict : string;
  vars : int;  (** logical variables of the full encoding *)
  annealed : int;  (** variables the sampler actually explores with absint on *)
  off_s : float;
  on_s : float;
  sat : bool;  (** satisfied (or proven unsat) with absint on *)
}

let time f =
  let t0 = Qsmt_util.Mclock.now () in
  let r = f () in
  (Qsmt_util.Mclock.now () -. t0, r)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let run_instance c =
  let name = Constr.describe c in
  let vars = Constr.num_vars c in
  let analysis =
    match Absint.analyze [ c ] with
    | Ok a -> Some a
    | Error _ -> None
  in
  let verdict, annealed =
    match analysis with
    | Some { Absint.verdict = Absint.V_sat _; _ } -> ("sat", 0)
    | Some { Absint.verdict = Absint.V_unsat _; _ } -> ("unsat", 0)
    | Some ({ Absint.verdict = Absint.V_undecided; _ } as a) -> begin
      match Absint.forced_bits a with
      | [] -> ("undecided", vars)
      | forced ->
        let red = Preprocess.clamp (Compile.to_qubo c) forced in
        ("undecided", Preprocess.num_free red)
    end
    | None -> ("n/a", vars)
  in
  let solve absint = Solver.solve ~sampler ~absint c in
  let off_s = mean (List.init trials (fun _ -> fst (time (fun () -> solve `Off)))) in
  let on_s, outcome =
    let samples = List.init trials (fun _ -> time (fun () -> solve `On)) in
    (mean (List.map fst samples), snd (List.hd samples))
  in
  (* a static unsat is a correct answer too: the row only fails when the
     solver neither satisfied the constraint nor proved it unsatisfiable *)
  let sat =
    outcome.Solver.satisfied
    ||
    match outcome.Solver.decided with
    | Some { Absint.verdict = Absint.V_unsat _; _ } -> true
    | _ -> false
  in
  let r = { name; verdict; vars; annealed; off_s; on_s; sat } in
  Format.printf "%-44s %-9s vars %3d -> %3d | off %7.2fms on %7.2fms%s@." r.name r.verdict
    r.vars r.annealed (1e3 *. r.off_s) (1e3 *. r.on_s)
    (if r.sat then "" else " [NOT SAT]");
  r

let json_out rows ~reduction path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"absint\",\n";
  p "  \"pr\": 10,\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"reads\": %d,\n" reads;
  p "  \"sweeps\": %d,\n" sweeps;
  p "  \"trials\": %d,\n" trials;
  p "  \"rows\": [\n";
  List.iteri
    (fun k r ->
      p "    { \"name\": %S, \"verdict\": \"%s\", \"vars\": %d, \"annealed\": %d,\n" r.name
        r.verdict r.vars r.annealed;
      p "      \"off_s\": %.6f, \"on_s\": %.6f, \"sat\": %b }%s\n" r.off_s r.on_s r.sat
        (if k = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"headline_var_reduction\": %.4f\n" reduction;
  p "}\n";
  close_out oc

let () =
  Format.printf "absint shrink benchmark%s (reads=%d, sweeps=%d, trials=%d)@."
    (if fast then " [FAST]" else "")
    reads sweeps trials;
  let rows = List.map run_instance corpus in
  let full = List.fold_left (fun acc r -> acc + r.vars) 0 rows in
  let annealed = List.fold_left (fun acc r -> acc + r.annealed) 0 rows in
  let reduction = 1. -. (float_of_int annealed /. float_of_int (max full 1)) in
  json_out rows ~reduction "BENCH_10.json";
  Format.printf "@.logical variables annealed: %d of %d (%.1f%% reduction) — wrote BENCH_10.json@."
    annealed full (100. *. reduction);
  let unsat_rows = List.filter (fun r -> not r.sat) rows in
  List.iter
    (fun r -> Printf.eprintf "absint bench: row not satisfied: %s\n" r.name)
    unsat_rows;
  if reduction < 0.15 then begin
    prerr_endline "absint bench: aggregate variable reduction below the 15% gate";
    exit 1
  end;
  if unsat_rows <> [] then exit 1
