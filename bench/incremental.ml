(* Ext-14: incremental re-solving, cold vs warm.

   The push/pop workload re-checks near-identical queries. This bench
   measures the three tiers a session can answer from, against solving
   the same query from scratch each time:

   - cold      : fresh session, full encode + merge + anneal
   - warm push : extend a solved conjunction (delta-patched QUBO,
                 anneal warm-started from the previous best sample with
                 verified-read early exit)
   - warm pop  : retract back to a solved prefix (the cached model still
                 verifies, so no sampling happens at all)

   The pop tier is the headline: it must be at least 5x faster than the
   cold solve of the same prefix, and the bench fails if it is not.

   Run with:
     dune exec bench/incremental.exe               full run, writes BENCH_6.json
     QSMT_BENCH_FAST=1 dune exec ...               reduced (CI smoke) run *)

module Constr = Qsmt_strtheory.Constr
module Incremental = Qsmt_strtheory.Incremental
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa
module Rparser = Qsmt_regex.Parser

let fast = Sys.getenv_opt "QSMT_BENCH_FAST" <> None
let reads = if fast then 8 else 32
let sweeps = if fast then 200 else 800
let trials = if fast then 3 else 10

let sampler =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.reads; sweeps; seed = 11 } ()

(* prefix conjunction, then the conjunct push adds *)
let scenarios =
  [
    ( "equals-contains-6",
      [ Constr.Equals "banana" ],
      [ Constr.Contains { length = 6; substring = "an" } ] );
    ( "palindrome-contains-6",
      [ Constr.Palindrome { length = 6 } ],
      [ Constr.Contains { length = 6; substring = "ab" } ] );
    ( "regex-contains-6",
      [ Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 6 } ],
      [ Constr.Contains { length = 6; substring = "cb" } ] );
  ]

type row = {
  name : string;
  cold_prefix_s : float;
  cold_full_s : float;
  warm_push_s : float;
  push_speedup : float;
  warm_pop_s : float;
  pop_speedup : float;
  pop_sat : bool;
}

let time f =
  let t0 = Qsmt_util.Mclock.now () in
  let r = f () in
  (Qsmt_util.Mclock.now () -. t0, r)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let speedup ~cold ~warm = cold /. Float.max warm 1e-9

let run_scenario (name, prefix, ext) =
  let full = prefix @ ext in
  let fresh () = Incremental.create ~sampler () in
  let solve s cs =
    match Incremental.solve_joint s cs with
    | Ok o -> o
    | Error e -> failwith (name ^ ": " ^ e)
  in
  let cold cs = mean (List.init trials (fun _ -> fst (time (fun () -> solve (fresh ()) cs)))) in
  let cold_prefix_s = cold prefix in
  let cold_full_s = cold full in
  let warm_push_s =
    mean
      (List.init trials (fun _ ->
           let s = fresh () in
           ignore (solve s prefix);
           fst (time (fun () -> solve s full))))
  in
  let pop_sat = ref false in
  let warm_pop_s =
    mean
      (List.init trials (fun _ ->
           let s = fresh () in
           ignore (solve s full);
           let dt, o = time (fun () -> solve s prefix) in
           pop_sat := o.Qsmt_strtheory.Joint.satisfied;
           dt))
  in
  let r =
    {
      name;
      cold_prefix_s;
      cold_full_s;
      warm_push_s;
      push_speedup = speedup ~cold:cold_full_s ~warm:warm_push_s;
      warm_pop_s;
      pop_speedup = speedup ~cold:cold_prefix_s ~warm:warm_pop_s;
      pop_sat = !pop_sat;
    }
  in
  Format.printf "%-24s cold %8.2fms | push %8.2fms (%5.1fx) | pop %8.3fms (%5.1fx)%s@." r.name
    (1e3 *. r.cold_full_s) (1e3 *. r.warm_push_s) r.push_speedup (1e3 *. r.warm_pop_s)
    r.pop_speedup
    (if r.pop_sat then "" else " [pop not sat]");
  r

let json_out rows headline path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"bench\": \"incremental\",\n";
  p "  \"pr\": 6,\n";
  p "  \"fast\": %b,\n" fast;
  p "  \"reads\": %d,\n" reads;
  p "  \"sweeps\": %d,\n" sweeps;
  p "  \"trials\": %d,\n" trials;
  p "  \"scenarios\": [\n";
  List.iteri
    (fun k r ->
      p "    { \"name\": \"%s\", \"cold_prefix_s\": %.6f, \"cold_full_s\": %.6f,\n" r.name
        r.cold_prefix_s r.cold_full_s;
      p "      \"warm_push_s\": %.6f, \"push_speedup\": %.2f,\n" r.warm_push_s r.push_speedup;
      p "      \"warm_pop_s\": %.6f, \"pop_speedup\": %.2f, \"pop_sat\": %b }%s\n" r.warm_pop_s
        r.pop_speedup r.pop_sat
        (if k = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p "  \"headline_pop_speedup\": %.2f\n" headline;
  p "}\n";
  close_out oc

let () =
  Format.printf "incremental re-solve benchmark%s (reads=%d, sweeps=%d, trials=%d)@."
    (if fast then " [FAST]" else "")
    reads sweeps trials;
  let rows = List.map run_scenario scenarios in
  let headline = List.fold_left (fun acc r -> Float.max acc r.pop_speedup) 0. rows in
  json_out rows headline "BENCH_6.json";
  Format.printf "@.headline pop speedup: %.1fx — wrote BENCH_6.json@." headline;
  if headline < 5. then begin
    prerr_endline "incremental bench: pop re-solve is not >=5x faster than cold";
    exit 1
  end
