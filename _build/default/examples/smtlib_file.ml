(* SMT-LIB front end: solve scripts through the standard surface syntax.

   Run with:  dune exec examples/smtlib_file.exe [file.smt2]

   Without an argument, runs three embedded scripts covering the
   generative fragment: equality with ground folding, regex membership,
   and the paper's replaceAll extension. With a file argument, runs that
   script instead. *)

module Interp = Qsmt_smtlib.Interp

let embedded =
  [
    ( "fold + equality",
      {|(set-logic QF_S)
        (declare-const x String)
        (assert (= x (str.replace_all "hello world" "l" "x")))
        (check-sat)
        (get-value (x))|} );
    ( "regex membership",
      {|(set-logic QF_S)
        (declare-const x String)
        (assert (str.in_re x (re.++ (str.to_re "a")
                                    (re.+ (re.union (str.to_re "b") (str.to_re "c"))))))
        (assert (= (str.len x) 5))
        (check-sat)
        (get-model)|} );
    ( "indexOf as a position search",
      {|(set-logic QF_SLIA)
        (declare-const i Int)
        (assert (= i (str.indexof "find the needle in here" "needle" 0)))
        (check-sat)
        (get-value (i))|} );
  ]

let run_source name source =
  Format.printf "== %s ==@." name;
  (match Interp.run_string source with
  | Ok lines -> List.iter print_endline lines
  | Error msg -> Format.printf "error: %s@." msg);
  Format.printf "@."

let () =
  match Sys.argv with
  | [| _ |] -> List.iter (fun (name, src) -> run_source name src) embedded
  | [| _; path |] ->
    let source = In_channel.with_open_text path In_channel.input_all in
    run_source path source
  | _ ->
    prerr_endline "usage: smtlib_file [script.smt2]";
    exit 2
