(* Quickstart: the Figure 1 pipeline on a handful of constraints.

   Run with:  dune exec examples/quickstart.exe

   Each constraint is compiled to a QUBO, annealed (simulated annealing,
   fixed seed), decoded back to a value, and verified classically — the
   exact flow of the paper's Table 1, including the abbreviated matrix
   print-outs. *)

module Constr = Qsmt_strtheory.Constr
module Solver = Qsmt_strtheory.Solver
module Qubo = Qsmt_qubo.Qubo
module Qubo_print = Qsmt_qubo.Qubo_print

let () =
  let sampler = Solver.default_sampler ~seed:42 in
  let constraints =
    [
      Constr.Equals "hi";
      Constr.Reverse "hello";
      Constr.Replace_all { source = "hello"; find = 'l'; replace = 'x' };
      Constr.Palindrome { length = 6 };
      Constr.Regex { pattern = Qsmt_regex.Parser.parse_exn "a[bc]+"; length = 5 };
      Constr.Includes { haystack = "hello world"; needle = "world" };
    ]
  in
  List.iter
    (fun c ->
      let outcome, timing = Solver.solve_timed ~sampler c in
      Format.printf "@.constraint : %s@." (Constr.describe c);
      Format.printf "qubo       : %a@." Qubo.pp outcome.Solver.qubo;
      Format.printf "matrix     :@.%a@."
        (fun ppf q -> Qubo_print.pp_dense ~max_dim:8 ppf q)
        outcome.Solver.qubo;
      Format.printf "output     : %a  (energy %g, %s)@." Constr.pp_value outcome.Solver.value
        outcome.Solver.energy
        (if outcome.Solver.satisfied then "verified" else "NOT satisfied");
      Format.printf "timing     : encode %.1f us | anneal %.1f ms | decode %.1f us@."
        (1e6 *. timing.Solver.encode_s)
        (1e3 *. timing.Solver.sample_s)
        (1e6 *. timing.Solver.decode_s))
    constraints
