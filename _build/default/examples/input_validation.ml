(* Input-validation test generation — the symbolic-execution workload the
   paper's introduction motivates.

   Run with:  dune exec examples/input_validation.exe

   A web form validates usernames with string checks (the kind of branch
   conditions a symbolic executor collects along a path). To cover the
   "accepted" path we need a concrete input satisfying all of them; the
   annealing solver generates one per seed, and the classical CDCL
   baseline cross-checks. *)

module Constr = Qsmt_strtheory.Constr
module Solver = Qsmt_strtheory.Solver
module Semantics = Qsmt_strtheory.Semantics
module Strsolver = Qsmt_classical.Strsolver
module Dfa = Qsmt_regex.Dfa

(* The validator under test: the path condition for acceptance. *)
let username_ok s =
  String.length s = 8
  && Dfa.matches (Dfa.of_syntax (Qsmt_regex.Parser.parse_exn "[a-z]+")) s
  && Semantics.contains s ~sub:"dev"

let () =
  Format.printf "Path condition: length = 8  AND  matches /[a-z]+/  AND  contains \"dev\"@.@.";
  (* The conjunction compiles to an Index_of-style generation: we use the
     Contains constraint for the substring and rely on the regex unroll
     for the lowercase alphabet. Conjunctions of this shape are what the
     SMT-LIB front-end builds; here we drive the solver API directly with
     the strongest single constraint and then filter on the validator. *)
  let pattern = Qsmt_regex.Parser.parse_exn "[a-z]+" in
  ignore pattern;
  let constr = Constr.Index_of { length = 8; substring = "dev"; index = 2 } in
  let attempts = List.init 8 (fun seed -> seed) in
  let hits =
    List.filter_map
      (fun seed ->
        let sampler = Solver.default_sampler ~seed in
        let outcome = Solver.solve ~sampler constr in
        match outcome.Solver.value with
        | Constr.Str s when outcome.Solver.satisfied ->
          let accepted = username_ok s in
          Format.printf "seed %d -> %S  constraint ok, validator %s@." seed s
            (if accepted then "ACCEPTS" else "rejects (free chars not lowercase)");
          if accepted then Some s else None
        | _ ->
          Format.printf "seed %d -> annealer failed to satisfy the constraint@." seed;
          None)
      attempts
  in
  Format.printf "@.%d/%d generated inputs drive the validator's accept path.@."
    (List.length hits) (List.length attempts);
  (* Classical cross-check: CDCL proves the path is reachable at all. *)
  let o = Strsolver.solve constr in
  Format.printf "@.CDCL baseline: %s (%d vars, %d clauses, %a)@."
    (match o.Strsolver.result with `Sat -> "sat" | `Unsat -> "unsat" | `Unknown -> "unknown")
    o.Strsolver.cnf_vars o.Strsolver.cnf_clauses Qsmt_classical.Cdcl.pp_stats
    o.Strsolver.sat_stats;
  match o.Strsolver.value with
  | Some (Constr.Str s) -> Format.printf "CDCL witness: %S@." s
  | _ -> ()
