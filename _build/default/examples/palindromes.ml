(* Palindrome generation (§4.10) — the constraint the paper highlights as
   beyond z3's vocabulary.

   Run with:  dune exec examples/palindromes.exe

   The palindrome QUBO has an exponentially degenerate ground state
   (every mirrored bit pattern), so each read returns a different
   palindrome — the paper notes a real annealer "would produce a
   different string every time, while still obeying the given
   constraints". We show that spread across reads, the printable-bias
   extension, and the same constraint on three different samplers. *)

module Constr = Qsmt_strtheory.Constr
module Solver = Qsmt_strtheory.Solver
module Compile = Qsmt_strtheory.Compile
module Op_palindrome = Qsmt_strtheory.Op_palindrome
module Semantics = Qsmt_strtheory.Semantics
module Ascii7 = Qsmt_util.Ascii7
module Sampler = Qsmt_anneal.Sampler
module Sampleset = Qsmt_anneal.Sampleset
module Sa = Qsmt_anneal.Sa

let show s = String.map Ascii7.clamp_printable s

let () =
  let length = 6 in
  let constr = Constr.Palindrome { length } in

  Format.printf "== %s ==@.@." (Constr.describe constr);
  Format.printf "Distinct palindromes across one 32-read anneal:@.";
  let qubo = Compile.to_qubo constr in
  let samples = Sa.sample ~params:{ Sa.default with Sa.seed = 7 } qubo in
  let distinct =
    List.filter_map
      (fun e ->
        match Compile.decode constr e.Sampleset.bits with
        | Constr.Str s when Semantics.is_palindrome s -> Some (show s)
        | _ -> None)
      (Sampleset.entries samples)
    |> List.sort_uniq compare
  in
  List.iteri (fun i s -> Format.printf "  %2d. %S@." (i + 1) s) distinct;
  Format.printf "  (%d distinct palindromes out of %d reads)@.@." (List.length distinct)
    (Sampleset.total_reads samples);

  Format.printf "Printable-bias extension (weak pull into the lowercase range):@.";
  let biased = Op_palindrome.encode ~printable_bias:0.1 ~length () in
  let samples = Sa.sample ~params:{ Sa.default with Sa.seed = 7 } biased in
  List.iteri
    (fun i e ->
      if i < 5 then begin
        let s = Ascii7.decode e.Sampleset.bits in
        Format.printf "  %S  palindrome=%b printable=%b@." (show s) (Semantics.is_palindrome s)
          (String.for_all Ascii7.is_printable s)
      end)
    (Sampleset.entries samples);

  Format.printf "@.Same constraint across the sampler suite:@.";
  List.iter
    (fun sampler ->
      let outcome = Solver.solve ~sampler constr in
      Format.printf "  %-8s -> %a  %s@." (Sampler.name sampler) Constr.pp_value
        outcome.Solver.value
        (if outcome.Solver.satisfied then "(palindrome)" else "(failed)"))
    (Sampler.default_suite ~seed:3)
