(* Annealing lab: the instrumentation a practitioner would reach for
   before trusting an annealer with real constraints.

   Run with:  dune exec examples/annealing_lab.exe

   Three experiments on one planted spin glass (ground truth known by
   construction): (1) time-to-solution per sampler, the annealing
   literature's figure of merit; (2) SA convergence — is the default
   schedule longer than the instance needs?; (3) preprocessing — does
   the instance even need a sampler? *)

module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Preprocess = Qsmt_qubo.Preprocess
module Sampler = Qsmt_anneal.Sampler
module Sampleset = Qsmt_anneal.Sampleset
module Metrics = Qsmt_anneal.Metrics
module Spinglass = Qsmt_anneal.Spinglass
module Convergence = Qsmt_anneal.Convergence
module Topology = Qsmt_anneal.Topology

let () =
  let rng = Prng.create 99 in
  let graph = Topology.graph (Topology.king ~rows:4 ~cols:5) in
  let q, _target, ground = Spinglass.planted ~rng ~coupling:Spinglass.Gaussian graph in
  Format.printf "instance: planted Gaussian spin glass, %d vars, %d couplers, ground %.3f@.@."
    (Qubo.num_vars q) (Qubo.num_interactions q) ground;

  Format.printf "== 1. time-to-solution per sampler (99%% confidence) ==@.";
  List.iter
    (fun sampler ->
      let t0 = Unix.gettimeofday () in
      let samples = Sampler.run sampler q in
      let dt = Unix.gettimeofday () -. t0 in
      let reads = max 1 (Sampleset.total_reads samples) in
      let p = Metrics.success_probability samples ~ground_energy:ground () in
      let tts =
        if p > 0. then
          Metrics.time_to_solution ~time_per_read:(dt /. float_of_int reads) ~p_success:p ()
        else None
      in
      Format.printf "  %-8s p=%3.0f%%  TTS=%a@." (Sampler.name sampler) (100. *. p)
        Metrics.pp_tts tts)
    (Sampler.default_suite ~seed:17);

  Format.printf "@.== 2. does SA need its full schedule? ==@.";
  let t = Convergence.sa_trajectory ~reads:16 ~sweeps:500 ~seed:4 q in
  Format.printf "  %a@." Convergence.pp t;
  (match Convergence.sweeps_to_reach t ~target:ground ~tol:1e-6 () with
  | Some k -> Format.printf "  mean best reaches the plant after %d/500 sweeps@." k
  | None -> Format.printf "  mean best never reaches the plant (%.3f short)@."
              (t.Convergence.final_best -. ground));

  Format.printf "@.== 3. does it even need a sampler? ==@.";
  let red = Preprocess.reduce q in
  Format.printf "  %a@." Preprocess.pp red;
  Format.printf
    "  (a frustrated instance keeps its variables; compare a string-equality@.\
    \   encoding, which preprocessing solves outright — see EXPERIMENTS.md Ext-6)@."
