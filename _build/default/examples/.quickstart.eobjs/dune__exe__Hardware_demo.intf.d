examples/hardware_demo.mli:
