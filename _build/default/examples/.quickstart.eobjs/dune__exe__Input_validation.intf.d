examples/input_validation.mli:
