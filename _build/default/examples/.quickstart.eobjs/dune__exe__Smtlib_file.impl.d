examples/smtlib_file.ml: Format In_channel List Qsmt_smtlib Sys
