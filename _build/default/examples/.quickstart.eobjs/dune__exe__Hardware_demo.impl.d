examples/hardware_demo.ml: Format List Qsmt_anneal Qsmt_qubo Qsmt_strtheory String
