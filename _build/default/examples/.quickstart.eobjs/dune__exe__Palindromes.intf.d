examples/palindromes.mli:
