examples/quickstart.ml: Format List Qsmt_qubo Qsmt_regex Qsmt_strtheory
