examples/conjunctions.mli:
