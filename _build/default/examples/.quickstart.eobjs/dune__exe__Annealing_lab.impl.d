examples/annealing_lab.ml: Format List Qsmt_anneal Qsmt_qubo Qsmt_util Unix
