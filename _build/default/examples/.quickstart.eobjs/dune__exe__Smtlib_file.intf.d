examples/smtlib_file.mli:
