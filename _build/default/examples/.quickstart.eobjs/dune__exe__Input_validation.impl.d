examples/input_validation.ml: Format List Qsmt_classical Qsmt_regex Qsmt_strtheory String
