examples/palindromes.ml: Format List Qsmt_anneal Qsmt_strtheory Qsmt_util String
