examples/quickstart.mli:
