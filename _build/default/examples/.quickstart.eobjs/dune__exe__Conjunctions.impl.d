examples/conjunctions.ml: Format List Qsmt_qubo Qsmt_regex Qsmt_smtlib Qsmt_strtheory Qsmt_util String
