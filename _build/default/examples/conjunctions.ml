(* Conjunctions: beyond the paper's sequential pipelines.

   Run with:  dune exec examples/conjunctions.exe

   Section 4.12 of the paper chains operations sequentially — each stage
   transforms the previous output. That cannot pose a *conjunction*
   ("one string satisfying all of these at once"). The joint encoding
   merges the per-constraint QUBOs over the same variables and anneals
   once; the same conjunctions also flow through the SMT-LIB front end.
   Finally, Lewis-Glover preprocessing (the paper's reference [37]) shows
   which conjunctions are secretly easy: if variable fixing solves the
   merged QUBO outright, no annealer was needed. *)

module Constr = Qsmt_strtheory.Constr
module Joint = Qsmt_strtheory.Joint
module Preprocess = Qsmt_qubo.Preprocess
module Solver = Qsmt_strtheory.Solver
module Interp = Qsmt_smtlib.Interp
module Rparser = Qsmt_regex.Parser

let () =
  let sampler = Solver.default_sampler ~seed:5 in

  Format.printf "== joint conjunctions over one merged QUBO ==@.@.";
  List.iter
    (fun (label, conjuncts) ->
      match Joint.solve ~sampler conjuncts with
      | Error e -> Format.printf "%-42s error: %s@." label e
      | Ok o ->
        Format.printf "%-42s -> %S %s@." label
          (String.map Qsmt_util.Ascii7.clamp_printable o.Joint.value)
          (if o.Joint.satisfied then "(all conjuncts verified)" else "(FAILED)");
        if not o.Joint.satisfied then
          List.iter
            (fun (c, ok) ->
              Format.printf "      %-38s %s@." (Constr.describe c) (if ok then "ok" else "violated"))
            o.Joint.per_constraint)
    [
      ( "palindrome(4) and 'ab' at index 0",
        [
          Constr.Palindrome { length = 4 };
          Constr.Index_of { length = 4; substring = "ab"; index = 0 };
        ] );
      ( "palindrome(6) over alphabet [ab]",
        [
          Constr.Palindrome { length = 6 };
          Constr.Regex { pattern = Rparser.parse_exn "[ab]+"; length = 6 };
        ] );
      ( "x = 'ab' and x = 'cd' (contradiction)",
        [ Constr.Equals "ab"; Constr.Equals "cd" ] );
    ];

  Format.printf "@.== the same conjunction through SMT-LIB ==@.@.";
  let script =
    {|(declare-const x String)
      (assert (str.palindrome x))
      (assert (= (str.indexof x "ab" 0) 0))
      (assert (= (str.len x) 4))
      (check-sat)
      (get-value (x))|}
  in
  print_endline script;
  (match Interp.run_string ~sampler script with
  | Ok lines -> List.iter (fun l -> print_endline ("  => " ^ l)) lines
  | Error e -> Format.printf "error: %s@." e);

  Format.printf "@.== which conjunctions even need an annealer? (preprocessing) ==@.@.";
  List.iter
    (fun (label, conjuncts) ->
      match Joint.encode conjuncts with
      | Error e -> Format.printf "%-42s error: %s@." label e
      | Ok (q, _) ->
        let t = Preprocess.reduce q in
        Format.printf "%-42s %d vars -> %d free after fixing%s@." label
          (Qsmt_qubo.Qubo.num_vars q) (Preprocess.num_free t)
          (if Preprocess.num_free t = 0 then "  (solved classically!)" else ""))
    [
      ("equality alone", [ Constr.Equals "abcd" ]);
      ( "palindrome + forced prefix",
        [
          Constr.Palindrome { length = 4 };
          Constr.Index_of { length = 4; substring = "ab"; index = 0 };
        ] );
      ("palindrome alone", [ Constr.Palindrome { length = 4 } ]);
    ]
