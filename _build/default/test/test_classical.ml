(* Tests for qsmt_classical: CNF plumbing, the CDCL solver (against a
   brute-force truth-table oracle on random formulas), bit-blasting of
   every constraint, the classical string solver end to end, and the
   brute-force enumerator. *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Cnf = Qsmt_classical.Cnf
module Cdcl = Qsmt_classical.Cdcl
module Bitblast = Qsmt_classical.Bitblast
module Strsolver = Qsmt_classical.Strsolver
module Brute = Qsmt_classical.Brute
module Dimacs = Qsmt_classical.Dimacs
module Constr = Qsmt_strtheory.Constr
module Semantics = Qsmt_strtheory.Semantics
module Pipeline = Qsmt_strtheory.Pipeline
module Rparser = Qsmt_regex.Parser

let check = Alcotest.check

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Cnf *)

let test_literals () =
  check Alcotest.int "pos" 6 (Cnf.pos 3);
  check Alcotest.int "neg" 7 (Cnf.neg 3);
  check Alcotest.int "var" 3 (Cnf.var_of (Cnf.neg 3));
  check Alcotest.bool "polarity" true (Cnf.is_pos (Cnf.pos 3));
  check Alcotest.int "negate" (Cnf.neg 3) (Cnf.negate (Cnf.pos 3));
  check Alcotest.int "double negate" (Cnf.pos 3) (Cnf.negate (Cnf.negate (Cnf.pos 3)))

let test_cnf_eval () =
  let f = Cnf.create ~num_vars:2 [ [ Cnf.pos 0; Cnf.pos 1 ]; [ Cnf.neg 0; Cnf.neg 1 ] ] in
  check Alcotest.bool "10 sat" true (Cnf.eval f (Bitvec.of_string "10"));
  check Alcotest.bool "11 unsat" false (Cnf.eval f (Bitvec.of_string "11"));
  check Alcotest.bool "00 unsat" false (Cnf.eval f (Bitvec.of_string "00"))

let test_cnf_create_checks () =
  Alcotest.check_raises "empty clause" (Invalid_argument "Cnf.create: empty clause") (fun () ->
      ignore (Cnf.create ~num_vars:1 [ [] ]));
  check Alcotest.bool "oob literal" true
    (try
       ignore (Cnf.create ~num_vars:1 [ [ Cnf.pos 5 ] ]);
       false
     with Invalid_argument _ -> true)

let test_gadgets () =
  (* exactly_one over 3 vars: 1 ALO + 3 AMO clauses *)
  let clauses = Cnf.exactly_one [ 0; 1; 2 ] in
  let f = Cnf.create ~num_vars:3 clauses in
  let count = ref 0 in
  for v = 0 to 7 do
    let bits = Bitvec.init 3 (fun i -> v land (1 lsl i) <> 0) in
    if Cnf.eval f bits then incr count
  done;
  check Alcotest.int "exactly 3 models" 3 !count;
  let iff = Cnf.create ~num_vars:2 (Cnf.iff 0 1) in
  check Alcotest.bool "iff 11" true (Cnf.eval iff (Bitvec.of_string "11"));
  check Alcotest.bool "iff 10" false (Cnf.eval iff (Bitvec.of_string "10"))

(* ------------------------------------------------------------------ *)
(* Cdcl against a truth-table oracle *)

let brute_force_sat (f : Cnf.t) =
  let n = f.Cnf.num_vars in
  let rec go v =
    if v >= 1 lsl n then false
    else begin
      let bits = Bitvec.init n (fun i -> v land (1 lsl i) <> 0) in
      Cnf.eval f bits || go (v + 1)
    end
  in
  if n = 0 then f.Cnf.clauses = [] else go 0

let gen_cnf =
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* clauses =
    list_size (int_range 1 25)
      (list_size (int_range 1 4)
         (map2 (fun v p -> if p then Cnf.pos v else Cnf.neg v) (int_range 0 (n - 1)) bool))
  in
  return (Cnf.create ~num_vars:n clauses)

let prop_cdcl_matches_brute_force =
  qtest "CDCL agrees with truth table" gen_cnf (fun f ->
      let result, _ = Cdcl.solve f in
      match result with
      | Cdcl.Sat model -> Cnf.eval f model
      | Cdcl.Unsat -> not (brute_force_sat f)
      | Cdcl.Unknown -> false)

let test_cdcl_simple_sat () =
  let f = Cnf.create ~num_vars:2 [ [ Cnf.pos 0 ]; [ Cnf.neg 0; Cnf.pos 1 ] ] in
  match Cdcl.solve f with
  | Cdcl.Sat model, _ ->
    check Alcotest.bool "x0" true (Bitvec.get model 0);
    check Alcotest.bool "x1" true (Bitvec.get model 1)
  | _ -> Alcotest.fail "expected sat"

let test_cdcl_simple_unsat () =
  let f = Cnf.create ~num_vars:1 [ [ Cnf.pos 0 ]; [ Cnf.neg 0 ] ] in
  match Cdcl.solve f with
  | Cdcl.Unsat, _ -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_cdcl_unsat_needs_learning () =
  (* pigeonhole PHP(3,2): 3 pigeons, 2 holes — classic small unsat *)
  let var p h = (p * 2) + h in
  let clauses =
    List.concat_map (fun p -> [ [ Cnf.pos (var p 0); Cnf.pos (var p 1) ] ]) [ 0; 1; 2 ]
    @ List.concat_map
        (fun h ->
          [
            [ Cnf.neg (var 0 h); Cnf.neg (var 1 h) ];
            [ Cnf.neg (var 0 h); Cnf.neg (var 2 h) ];
            [ Cnf.neg (var 1 h); Cnf.neg (var 2 h) ];
          ])
        [ 0; 1 ]
  in
  match Cdcl.solve (Cnf.create ~num_vars:6 clauses) with
  | Cdcl.Unsat, stats -> check Alcotest.bool "had conflicts" true (stats.Cdcl.conflicts > 0)
  | _ -> Alcotest.fail "PHP(3,2) must be unsat"

let test_cdcl_empty_formula () =
  match Cdcl.solve (Cnf.create ~num_vars:3 []) with
  | Cdcl.Sat _, _ -> ()
  | _ -> Alcotest.fail "empty formula is sat"

let test_cdcl_budget () =
  (* larger pigeonhole with a tiny budget should give Unknown or finish *)
  let n_p = 6 and n_h = 5 in
  let var p h = (p * n_h) + h in
  let pigeons = List.init n_p Fun.id and holes = List.init n_h Fun.id in
  let clauses =
    List.map (fun p -> List.map (fun h -> Cnf.pos (var p h)) holes) pigeons
    @ List.concat_map
        (fun h ->
          List.concat_map
            (fun p1 ->
              List.filter_map
                (fun p2 ->
                  if p1 < p2 then Some [ Cnf.neg (var p1 h); Cnf.neg (var p2 h) ] else None)
                pigeons)
            pigeons)
        holes
  in
  match Cdcl.solve ~conflict_budget:3 (Cnf.create ~num_vars:(n_p * n_h) clauses) with
  | Cdcl.Unknown, stats -> check Alcotest.bool "stopped early" true (stats.Cdcl.conflicts <= 4)
  | Cdcl.Unsat, _ -> () (* acceptable if it proves it fast *)
  | Cdcl.Sat _, _ -> Alcotest.fail "PHP(6,5) cannot be sat"

(* ------------------------------------------------------------------ *)
(* Bitblast *)

let solve_constr c =
  let cnf = Bitblast.encode c in
  match Cdcl.solve cnf with
  | Cdcl.Sat model, _ -> Some (Bitblast.decode c model)
  | _ -> None

let test_blast_equals () =
  match solve_constr (Constr.Equals "hi!") with
  | Some v -> check Alcotest.bool "verifies" true (Constr.verify (Constr.Equals "hi!") v)
  | None -> Alcotest.fail "expected sat"

let test_blast_contains_is_sound () =
  let c = Constr.Contains { length = 4; substring = "cat" } in
  match solve_constr c with
  | Some (Constr.Str s) ->
    check Alcotest.bool "contains" true (Semantics.contains s ~sub:"cat");
    check Alcotest.int "length" 4 (String.length s)
  | _ -> Alcotest.fail "expected sat string"

let test_blast_includes_position () =
  let c = Constr.Includes { haystack = "xxcatx"; needle = "cat" } in
  match solve_constr c with
  | Some (Constr.Pos (Some 2)) -> ()
  | Some v -> Alcotest.failf "wrong position: %s" (Format.asprintf "%a" Constr.pp_value v)
  | None -> Alcotest.fail "expected sat"

let test_blast_includes_absent_unsat () =
  let c = Constr.Includes { haystack = "xxxxx"; needle = "cat" } in
  let cnf = Bitblast.encode c in
  match Cdcl.solve cnf with
  | Cdcl.Unsat, _ -> ()
  | _ -> Alcotest.fail "no occurrence must be unsat"

let test_blast_palindrome () =
  let c = Constr.Palindrome { length = 5 } in
  match solve_constr c with
  | Some (Constr.Str s) -> check Alcotest.bool "palindrome" true (Semantics.is_palindrome s)
  | _ -> Alcotest.fail "expected sat"

let test_blast_indexof () =
  let c = Constr.Index_of { length = 6; substring = "hi"; index = 2 } in
  match solve_constr c with
  | Some (Constr.Str s) -> check Alcotest.string "hi at 2" "hi" (String.sub s 2 2)
  | _ -> Alcotest.fail "expected sat"

let test_blast_regex_exact_dfa () =
  (* unlike the QUBO encoder, alternation is supported *)
  let pattern = Rparser.parse_exn "cat|dog" in
  let c = Constr.Regex { pattern; length = 3 } in
  match solve_constr c with
  | Some (Constr.Str s) -> check Alcotest.bool "matched" true (s = "cat" || s = "dog")
  | _ -> Alcotest.fail "expected sat"

let test_blast_regex_paper_example () =
  let pattern = Rparser.parse_exn "a[bc]+" in
  let c = Constr.Regex { pattern; length = 5 } in
  match solve_constr c with
  | Some v -> check Alcotest.bool "verifies" true (Constr.verify c v)
  | None -> Alcotest.fail "expected sat"

let test_blast_regex_infeasible_unsat () =
  let pattern = Rparser.parse_exn "abc" in
  let c = Constr.Regex { pattern; length = 2 } in
  match Cdcl.solve (Bitblast.encode c) with
  | Cdcl.Unsat, _ -> ()
  | _ -> Alcotest.fail "wrong length must be unsat"

let test_blast_has_length () =
  let c = Constr.Has_length { num_chars = 2; target_length = 1 } in
  match solve_constr c with
  | Some v -> check Alcotest.bool "verifies" true (Constr.verify c v)
  | None -> Alcotest.fail "expected sat"

let all_ops =
  [
    Constr.Equals "ab";
    Constr.Concat [ "a"; "bc" ];
    Constr.Contains { length = 4; substring = "cat" };
    Constr.Includes { haystack = "abcabc"; needle = "bc" };
    Constr.Index_of { length = 5; substring = "hi"; index = 1 };
    Constr.Has_length { num_chars = 3; target_length = 2 };
    Constr.Replace_all { source = "hello"; find = 'l'; replace = 'x' };
    Constr.Replace_first { source = "hello"; find = 'l'; replace = 'x' };
    Constr.Reverse "abc";
    Constr.Palindrome { length = 4 };
    Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 4 };
  ]

let test_blast_all_ops_verify () =
  List.iter
    (fun c ->
      match solve_constr c with
      | Some v ->
        if not (Constr.verify c v) then
          Alcotest.failf "%s: model does not verify" (Constr.describe c)
      | None -> Alcotest.failf "%s: expected sat" (Constr.describe c))
    all_ops

(* ------------------------------------------------------------------ *)
(* Strsolver *)

let test_strsolver_outcome () =
  let o = Strsolver.solve (Constr.Equals "hello") in
  check Alcotest.bool "sat" true (o.Strsolver.result = `Sat);
  check Alcotest.bool "satisfied" true o.Strsolver.satisfied;
  check Alcotest.bool "value" true (o.Strsolver.value = Some (Constr.Str "hello"));
  check Alcotest.bool "cnf sizes recorded" true
    (o.Strsolver.cnf_vars > 0 && o.Strsolver.cnf_clauses > 0)

let test_strsolver_unsat () =
  let o = Strsolver.solve (Constr.Includes { haystack = "aaa"; needle = "b" }) in
  check Alcotest.bool "unsat" true (o.Strsolver.result = `Unsat);
  check Alcotest.bool "no value" true (o.Strsolver.value = None)

let test_strsolver_pipeline () =
  let p =
    { Pipeline.initial = Constr.Reverse "hello";
      Pipeline.stages = [ Pipeline.Replace_all { find = 'e'; replace = 'a' } ] }
  in
  let outcomes = Strsolver.solve_pipeline p in
  check Alcotest.int "two stages" 2 (List.length outcomes);
  match List.rev outcomes with
  | last :: _ -> check Alcotest.bool "ollah" true (last.Strsolver.value = Some (Constr.Str "ollah"))
  | [] -> Alcotest.fail "no outcomes"

(* ------------------------------------------------------------------ *)
(* Brute *)

let lowercase = List.init 26 (fun i -> Char.chr (Char.code 'a' + i))

let test_brute_equals () =
  match Brute.solve ~alphabet:[ 'h'; 'i' ] (Constr.Equals "hi") with
  | Some (Constr.Str "hi") -> ()
  | _ -> Alcotest.fail "expected hi"

let test_brute_contains () =
  let c = Constr.Contains { length = 3; substring = "ab" } in
  match Brute.solve ~alphabet:[ 'a'; 'b' ] c with
  | Some v -> check Alcotest.bool "verifies" true (Constr.verify c v)
  | None -> Alcotest.fail "expected a solution"

let test_brute_includes () =
  match Brute.solve ~alphabet:lowercase (Constr.Includes { haystack = "xxhix"; needle = "hi" }) with
  | Some (Constr.Pos (Some 2)) -> ()
  | _ -> Alcotest.fail "expected position 2"

let test_brute_limit () =
  (* target outside the alphabet: exhausts and returns None *)
  check Alcotest.bool "no solution" true
    (Brute.solve ~alphabet:[ 'a' ] ~limit:100 (Constr.Equals "zz") = None)

let test_brute_palindrome () =
  let c = Constr.Palindrome { length = 3 } in
  match Brute.solve ~alphabet:[ 'a'; 'b' ] c with
  | Some v -> check Alcotest.bool "verifies" true (Constr.verify c v)
  | None -> Alcotest.fail "expected a palindrome"

let test_brute_agrees_with_cdcl () =
  List.iter
    (fun c ->
      let brute = Brute.solve ~alphabet:lowercase c in
      let sat = solve_constr c in
      match (brute, sat) with
      | Some bv, Some sv ->
        check Alcotest.bool "both verify" true (Constr.verify c bv && Constr.verify c sv)
      | None, None -> ()
      | Some _, None -> Alcotest.failf "%s: brute found, CDCL missed" (Constr.describe c)
      | None, Some sv ->
        (* brute may miss solutions outside its alphabet; but the SAT
           model must still verify *)
        check Alcotest.bool "sat verifies" true (Constr.verify c sv))
    [
      Constr.Contains { length = 3; substring = "ab" };
      Constr.Includes { haystack = "abab"; needle = "ba" };
      Constr.Palindrome { length = 2 };
    ]


(* ------------------------------------------------------------------ *)
(* Dimacs *)

let test_dimacs_export () =
  let f = Cnf.create ~num_vars:3 [ [ Cnf.pos 0; Cnf.neg 1 ]; [ Cnf.pos 2 ] ] in
  check Alcotest.string "format" "p cnf 3 2\n1 -2 0\n3 0\n" (Dimacs.to_string f)

let test_dimacs_roundtrip () =
  let f = Cnf.create ~num_vars:4 [ [ Cnf.pos 0; Cnf.neg 3 ]; [ Cnf.neg 0; Cnf.pos 1; Cnf.pos 2 ] ] in
  match Dimacs.of_string (Dimacs.to_string f) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok f' ->
    check Alcotest.int "vars" f.Cnf.num_vars f'.Cnf.num_vars;
    check Alcotest.bool "clauses" true (f.Cnf.clauses = f'.Cnf.clauses)

let prop_dimacs_roundtrip =
  qtest ~count:100 "DIMACS roundtrip" gen_cnf (fun f ->
      match Dimacs.of_string (Dimacs.to_string f) with
      | Error _ -> false
      | Ok f' -> f.Cnf.num_vars = f'.Cnf.num_vars && f.Cnf.clauses = f'.Cnf.clauses)

let test_dimacs_comments_and_multiline () =
  let text = "c header comment\np cnf 3 2\nc mid comment\n1 -2\n3 0\n2 0\n" in
  match Dimacs.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok f ->
    check Alcotest.int "two clauses" 2 (Cnf.num_clauses f);
    (* first clause spans two lines: 1 -2 3 0 *)
    check Alcotest.bool "multiline clause" true
      (List.hd f.Cnf.clauses = [ Cnf.pos 0; Cnf.neg 1; Cnf.pos 2 ])

let test_dimacs_errors () =
  let fails s = match Dimacs.of_string s with Error _ -> true | Ok _ -> false in
  check Alcotest.bool "no header" true (fails "1 2 0\n");
  check Alcotest.bool "bad count" true (fails "p cnf 2 5\n1 0\n");
  check Alcotest.bool "bad literal" true (fails "p cnf 2 1\n1 x 0\n");
  check Alcotest.bool "unterminated" true (fails "p cnf 2 1\n1 2\n");
  check Alcotest.bool "duplicate header" true (fails "p cnf 1 0\np cnf 1 0\n");
  check Alcotest.bool "oob var" true (fails "p cnf 1 1\n5 0\n")

let test_dimacs_file_roundtrip () =
  let f = Cnf.create ~num_vars:2 [ [ Cnf.pos 0 ]; [ Cnf.neg 0; Cnf.pos 1 ] ] in
  let path = Filename.temp_file "qsmt" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path f;
      match Dimacs.read_file path with
      | Error e -> Alcotest.failf "read failed: %s" e
      | Ok f' -> check Alcotest.bool "equal" true (f.Cnf.clauses = f'.Cnf.clauses))

let test_dimacs_solve_imported () =
  (* import a tiny instance and solve it *)
  let text = "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n" in
  let f = Dimacs.of_string_exn text in
  match Cdcl.solve f with
  | Cdcl.Sat model, _ -> check Alcotest.bool "model satisfies" true (Cnf.eval f model)
  | _ -> Alcotest.fail "expected sat"

let () =
  Alcotest.run "qsmt_classical"
    [
      ( "cnf",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "eval" `Quick test_cnf_eval;
          Alcotest.test_case "create checks" `Quick test_cnf_create_checks;
          Alcotest.test_case "gadgets" `Quick test_gadgets;
        ] );
      ( "cdcl",
        [
          Alcotest.test_case "simple sat" `Quick test_cdcl_simple_sat;
          Alcotest.test_case "simple unsat" `Quick test_cdcl_simple_unsat;
          Alcotest.test_case "pigeonhole unsat" `Quick test_cdcl_unsat_needs_learning;
          Alcotest.test_case "empty formula" `Quick test_cdcl_empty_formula;
          Alcotest.test_case "budget" `Quick test_cdcl_budget;
          prop_cdcl_matches_brute_force;
        ] );
      ( "bitblast",
        [
          Alcotest.test_case "equals" `Quick test_blast_equals;
          Alcotest.test_case "contains sound" `Quick test_blast_contains_is_sound;
          Alcotest.test_case "includes position" `Quick test_blast_includes_position;
          Alcotest.test_case "includes absent unsat" `Quick test_blast_includes_absent_unsat;
          Alcotest.test_case "palindrome" `Quick test_blast_palindrome;
          Alcotest.test_case "indexof" `Quick test_blast_indexof;
          Alcotest.test_case "regex via DFA (alternation)" `Quick test_blast_regex_exact_dfa;
          Alcotest.test_case "regex paper example" `Quick test_blast_regex_paper_example;
          Alcotest.test_case "regex infeasible unsat" `Quick test_blast_regex_infeasible_unsat;
          Alcotest.test_case "has_length" `Quick test_blast_has_length;
          Alcotest.test_case "all ops verify" `Quick test_blast_all_ops_verify;
        ] );
      ( "strsolver",
        [
          Alcotest.test_case "outcome" `Quick test_strsolver_outcome;
          Alcotest.test_case "unsat" `Quick test_strsolver_unsat;
          Alcotest.test_case "pipeline" `Quick test_strsolver_pipeline;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "export" `Quick test_dimacs_export;
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "comments/multiline" `Quick test_dimacs_comments_and_multiline;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
          Alcotest.test_case "file roundtrip" `Quick test_dimacs_file_roundtrip;
          Alcotest.test_case "solve imported" `Quick test_dimacs_solve_imported;
          prop_dimacs_roundtrip;
        ] );
      ( "brute",
        [
          Alcotest.test_case "equals" `Quick test_brute_equals;
          Alcotest.test_case "contains" `Quick test_brute_contains;
          Alcotest.test_case "includes" `Quick test_brute_includes;
          Alcotest.test_case "limit" `Quick test_brute_limit;
          Alcotest.test_case "palindrome" `Quick test_brute_palindrome;
          Alcotest.test_case "agrees with cdcl" `Quick test_brute_agrees_with_cdcl;
        ] );
    ]
