(* Cross-cutting property tests: algebraic laws that span libraries and
   catch representation drift that unit tests scoped to one module would
   miss — charset boolean algebra, QUBO/Ising scaling laws, sample-set
   aggregation laws, regex print/parse and semantics identities, chain
   embedding round trips on random problems, and solver cross-checks. *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Qgraph = Qsmt_qubo.Qgraph
module Preprocess = Qsmt_qubo.Preprocess
module Charset = Qsmt_regex.Charset
module Syntax = Qsmt_regex.Syntax
module Rparser = Qsmt_regex.Parser
module Dfa = Qsmt_regex.Dfa
module Nfa = Qsmt_regex.Nfa
module Minimize = Qsmt_regex.Minimize
module Sampleset = Qsmt_anneal.Sampleset
module Sa = Qsmt_anneal.Sa
module Exact = Qsmt_anneal.Exact
module Topology = Qsmt_anneal.Topology
module Embedding = Qsmt_anneal.Embedding
module Chain = Qsmt_anneal.Chain
module Spinglass = Qsmt_anneal.Spinglass
module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Semantics = Qsmt_strtheory.Semantics
module Workload = Qsmt_strtheory.Workload
module Brute = Qsmt_classical.Brute
module Strsolver = Qsmt_classical.Strsolver

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* generators *)

let gen_charset =
  QCheck2.Gen.(
    map (fun chars -> Charset.of_list chars) (list_size (int_range 0 20) (map Char.chr (int_range 0 127))))

let gen_qubo =
  let open QCheck2.Gen in
  let* n = int_range 1 10 in
  let* entries =
    list_size (int_range 0 (3 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (map float_of_int (int_range (-6) 6)))
  in
  return
    (let b = Qubo.builder () in
     List.iter (fun (i, j, v) -> Qubo.add b i j v) entries;
     Qubo.freeze ~num_vars:n b)

let gen_qubo_bits =
  let open QCheck2.Gen in
  let* q = gen_qubo in
  let* seed = int_range 0 9999 in
  return (q, Bitvec.random (Prng.create seed) (Qubo.num_vars q))

(* random syntax trees (not via the parser, to exercise printing) *)
let gen_syntax =
  let open QCheck2.Gen in
  let atom =
    oneof
      [
        map Syntax.literal (map Char.chr (int_range 97 122));
        map Syntax.char_class (list_size (int_range 1 4) (map Char.chr (int_range 97 122)));
      ]
  in
  let wrap r =
    oneof
      [
        return r;
        return (Syntax.Star r);
        return (Syntax.Plus r);
        return (Syntax.Opt r);
        map (fun lo -> Syntax.Rep (r, lo, Some (lo + 2))) (int_range 0 2);
      ]
  in
  let* atoms = list_size (int_range 1 4) atom in
  let* pieces =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let* p = wrap a in
        return (p :: acc))
      (return []) atoms
  in
  let* alt = bool in
  return (if alt && List.length pieces > 1 then Syntax.Alt pieces else Syntax.Concat pieces)

(* ------------------------------------------------------------------ *)
(* charset algebra *)

let charset_props =
  [
    qtest "union commutative" QCheck2.Gen.(pair gen_charset gen_charset) (fun (a, b) ->
        Charset.equal (Charset.union a b) (Charset.union b a));
    qtest "intersection distributes over union"
      QCheck2.Gen.(triple gen_charset gen_charset gen_charset)
      (fun (a, b, c) ->
        Charset.equal
          (Charset.inter a (Charset.union b c))
          (Charset.union (Charset.inter a b) (Charset.inter a c)));
    qtest "de morgan" QCheck2.Gen.(pair gen_charset gen_charset) (fun (a, b) ->
        Charset.equal
          (Charset.complement (Charset.union a b))
          (Charset.inter (Charset.complement a) (Charset.complement b)));
    qtest "double complement" gen_charset (fun a ->
        Charset.equal a (Charset.complement (Charset.complement a)));
    qtest "diff = inter complement" QCheck2.Gen.(pair gen_charset gen_charset) (fun (a, b) ->
        Charset.equal (Charset.diff a b) (Charset.inter a (Charset.complement b)));
    qtest "cardinal of union" QCheck2.Gen.(pair gen_charset gen_charset) (fun (a, b) ->
        Charset.cardinal (Charset.union a b)
        = Charset.cardinal a + Charset.cardinal b - Charset.cardinal (Charset.inter a b));
  ]

(* ------------------------------------------------------------------ *)
(* QUBO / Ising laws *)

let qubo_props =
  [
    qtest "scaling scales energy" QCheck2.Gen.(pair gen_qubo_bits (int_range (-3) 3))
      (fun ((q, x), c) ->
        let c = float_of_int c in
        Float.abs (Qubo.energy (Qubo.scale q c) x -. (c *. Qubo.energy q x)) < 1e-9);
    qtest "relabel by reversal preserves spectrum" gen_qubo_bits (fun (q, x) ->
        let n = Qubo.num_vars q in
        let r = Qubo.relabel q (fun i -> n - 1 - i) ~num_vars:n in
        let x' = Bitvec.init n (fun i -> Bitvec.get x (n - 1 - i)) in
        Float.abs (Qubo.energy q x -. Qubo.energy r x') < 1e-9);
    qtest "ising offset equals mean energy" gen_qubo (fun q ->
        (* sum of H over all spin configs = 2^n * offset for couplers and
           fields canceling; check via direct averaging on small n *)
        let n = Qubo.num_vars q in
        n > 12
        ||
        let ising = Ising.of_qubo q in
        let total = ref 0. in
        for v = 0 to (1 lsl n) - 1 do
          total := !total +. Ising.energy ising (Bitvec.init n (fun i -> v land (1 lsl i) <> 0))
        done;
        Float.abs ((!total /. float_of_int (1 lsl n)) -. Ising.offset ising) < 1e-6);
    qtest "preprocess idempotent on residual" gen_qubo (fun q ->
        let t = Preprocess.reduce q in
        let t2 = Preprocess.reduce (Preprocess.residual t) in
        (* the rules already ran to fixpoint, so nothing further fixes *)
        Preprocess.num_fixed t2 = 0);
  ]

(* ------------------------------------------------------------------ *)
(* sample set laws *)

let gen_entries =
  QCheck2.Gen.(
    list_size (int_range 0 12)
      (map
         (fun (bits, e, occ) ->
           {
             Sampleset.bits = Bitvec.of_bool_array (Array.of_list bits);
             energy = float_of_int e;
             occurrences = 1 + occ;
           })
         (triple (list_size (return 4) bool) (int_range (-5) 5) (int_range 0 3))))

(* duplicate assignments must carry one energy; rebuild consistently *)
let normalize entries =
  List.map
    (fun e ->
      { e with Sampleset.energy = float_of_int (Bitvec.popcount e.Sampleset.bits) })
    entries

let sampleset_props =
  [
    qtest "total reads preserved by aggregation" gen_entries (fun entries ->
        let entries = normalize entries in
        let s = Sampleset.of_entries entries in
        Sampleset.total_reads s
        = List.fold_left (fun acc e -> acc + e.Sampleset.occurrences) 0 entries);
    qtest "merge = of_entries of concatenation" QCheck2.Gen.(pair gen_entries gen_entries)
      (fun (a, b) ->
        let a = normalize a and b = normalize b in
        let merged = Sampleset.merge (Sampleset.of_entries a) (Sampleset.of_entries b) in
        let direct = Sampleset.of_entries (a @ b) in
        Sampleset.entries merged = Sampleset.entries direct);
    qtest "energies ascending" gen_entries (fun entries ->
        let s = Sampleset.of_entries (normalize entries) in
        let es = Sampleset.energies s in
        let ok = ref true in
        for i = 1 to Array.length es - 1 do
          if es.(i) < es.(i - 1) then ok := false
        done;
        !ok);
  ]

(* ------------------------------------------------------------------ *)
(* regex identities *)

let regex_props =
  [
    qtest ~count:100 "print/parse identity on generated trees" gen_syntax (fun r ->
        match Rparser.parse (Syntax.to_string r) with
        | Error _ -> false
        | Ok r' ->
          Minimize.equivalent (Dfa.of_syntax r) (Dfa.of_syntax r'));
    qtest ~count:100 "minimize preserves count_matching" gen_syntax (fun r ->
        let dfa = Dfa.of_syntax r in
        let min = Minimize.minimize dfa in
        List.for_all (fun len -> Dfa.count_matching dfa ~len = Dfa.count_matching min ~len)
          [ 0; 1; 2; 3 ]);
    qtest ~count:60 "sampled strings always match" QCheck2.Gen.(pair gen_syntax (int_range 0 6))
      (fun (r, len) ->
        let dfa = Dfa.of_syntax r in
        let rng = Prng.create (len * 7) in
        match Dfa.sample dfa ~len ~rng with
        | None -> Dfa.count_matching dfa ~len = 0
        | Some s -> String.length s = len && Dfa.matches dfa s);
    qtest ~count:100 "nullable agrees with matching epsilon" gen_syntax (fun r ->
        Syntax.nullable r = Nfa.matches (Nfa.of_syntax r) "");
    qtest ~count:100 "min_length agrees with the DFA" gen_syntax (fun r ->
        let dfa = Dfa.of_syntax r in
        let reported = Syntax.min_length r in
        (* no shorter string matches, and some string of that length does
           (search a window above in case of saturation) *)
        let shorter_ok =
          List.for_all
            (fun len -> len >= reported || Dfa.count_matching dfa ~len = 0)
            [ 0; 1; 2; 3; 4; 5 ]
        in
        shorter_ok && (reported > 5 || Dfa.count_matching dfa ~len:reported > 0));
  ]

(* ------------------------------------------------------------------ *)
(* embedding / chain round trips on random problems *)

let chain_props =
  [
    qtest ~count:25 "embedded ground state projects onto logical ground" gen_qubo (fun q ->
        let n = Qubo.num_vars q in
        n > 6
        ||
        let problem = Qgraph.of_qubo q in
        let hardware = Topology.graph (Topology.chimera ~m:2 ()) in
        match Embedding.find ~tries:16 ~problem ~hardware () with
        | None -> false (* <=6 logical vars always embed into C2 *)
        | Some e ->
          let e = Embedding.trim ~problem ~hardware e in
          let strength = Chain.default_strength q +. 1. in
          let physical = Chain.embed_qubo q ~embedding:e ~hardware ~chain_strength:strength in
          let samples =
            Sa.sample ~params:{ Sa.default with Sa.reads = 24; sweeps = 500; seed = 3 } physical
          in
          let logical = Chain.unembed ~embedding:e (Sampleset.best samples).Sampleset.bits in
          Float.abs (Qubo.energy q logical -. Exact.minimum_energy q) < 1e-6);
    qtest ~count:50 "unembed inverts a faithful embedding" QCheck2.Gen.(int_range 0 9999)
      (fun seed ->
        (* embed a planted problem, write the target through the chains,
           and read it back *)
        let rng = Prng.create seed in
        let graph = Qgraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
        let q, target, _ = Spinglass.planted ~rng graph in
        let problem = Qgraph.of_qubo q in
        let hardware = Topology.graph (Topology.chimera ~m:1 ()) in
        match Embedding.find ~tries:8 ~problem ~hardware () with
        | None -> false
        | Some e ->
          let n_phys = Qgraph.num_vertices hardware in
          let physical_bits =
            Bitvec.init n_phys (fun qb ->
                let rec owner v = if v >= 4 then false
                  else if List.mem qb (Embedding.chain e v) then Bitvec.get target v
                  else owner (v + 1)
                in
                owner 0)
          in
          Bitvec.equal (Chain.unembed ~embedding:e physical_bits) target);
  ]

(* ------------------------------------------------------------------ *)
(* solver cross-checks on workload constraints *)

let solver_props =
  [
    qtest ~count:25 "brute and CDCL agree on tiny constraints"
      QCheck2.Gen.(int_range 0 9999)
      (fun seed ->
        let rng = Prng.create seed in
        let c =
          Workload.generate_satisfiable ~rng
            ~kinds:[ Workload.K_includes; Workload.K_palindrome; Workload.K_contains ]
            ~max_length:3 ()
        in
        let cdcl = Strsolver.solve c in
        let lowercase = List.init 26 (fun i -> Char.chr (97 + i)) in
        let brute = Brute.solve ~alphabet:lowercase ~limit:500_000 c in
        (* workloads are satisfiable: CDCL must prove it; brute may only
           miss when the witness needs characters outside a-z, which
           these kinds never do *)
        cdcl.Strsolver.result = `Sat
        && (match brute with Some v -> Constr.verify c v | None -> false));
    qtest ~count:20 "exact ground of encodings verifies" QCheck2.Gen.(int_range 0 9999)
      (fun seed ->
        let rng = Prng.create seed in
        let c =
          Workload.generate_satisfiable ~rng
            ~kinds:[ Workload.K_equals; Workload.K_reverse; Workload.K_replace_all ]
            ~max_length:3 ()
        in
        let q = Compile.to_qubo c in
        Qubo.num_vars q > Exact.max_vars
        ||
        let states, _ = Exact.ground_states q in
        List.for_all (fun s -> Constr.verify c (Compile.decode c s)) states);
  ]

let () =
  Alcotest.run "qsmt_props"
    [
      ("charset-algebra", charset_props);
      ("qubo-laws", qubo_props);
      ("sampleset-laws", sampleset_props);
      ("regex-identities", regex_props);
      ("chain-roundtrips", chain_props);
      ("solver-crosschecks", solver_props);
    ]
