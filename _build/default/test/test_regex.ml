(* Tests for qsmt_regex: character sets, parser, NFA/DFA equivalence,
   counting/sampling/enumeration, and fixed-length unrolling. *)

module Charset = Qsmt_regex.Charset
module Syntax = Qsmt_regex.Syntax
module Parser = Qsmt_regex.Parser
module Nfa = Qsmt_regex.Nfa
module Dfa = Qsmt_regex.Dfa
module Unroll = Qsmt_regex.Unroll
module Minimize = Qsmt_regex.Minimize
module Prng = Qsmt_util.Prng

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let parse s = Parser.parse_exn s

(* ------------------------------------------------------------------ *)
(* Charset *)

let test_charset_basics () =
  let s = Charset.of_list [ 'a'; 'c'; 'z' ] in
  check Alcotest.bool "mem a" true (Charset.mem 'a' s);
  check Alcotest.bool "not mem b" false (Charset.mem 'b' s);
  check Alcotest.int "cardinal" 3 (Charset.cardinal s);
  check (Alcotest.list Alcotest.char) "to_list ascending" [ 'a'; 'c'; 'z' ] (Charset.to_list s)

let test_charset_set_ops () =
  let a = Charset.of_string "abc" and b = Charset.of_string "bcd" in
  check (Alcotest.list Alcotest.char) "union" [ 'a'; 'b'; 'c'; 'd' ]
    (Charset.to_list (Charset.union a b));
  check (Alcotest.list Alcotest.char) "inter" [ 'b'; 'c' ] (Charset.to_list (Charset.inter a b));
  check (Alcotest.list Alcotest.char) "diff" [ 'a' ] (Charset.to_list (Charset.diff a b));
  check Alcotest.int "complement" (128 - 3) (Charset.cardinal (Charset.complement a))

let test_charset_range () =
  let s = Charset.of_range 'a' 'e' in
  check Alcotest.int "cardinal" 5 (Charset.cardinal s);
  check Alcotest.bool "boundary" true (Charset.mem 'e' s);
  Alcotest.check_raises "bad range" (Invalid_argument "Charset.of_range: lo > hi") (fun () ->
      ignore (Charset.of_range 'z' 'a'))

let test_charset_full_empty () =
  check Alcotest.int "full" 128 (Charset.cardinal Charset.full);
  check Alcotest.bool "empty" true (Charset.is_empty Charset.empty);
  check Alcotest.int "printable" 95 (Charset.cardinal Charset.printable)

let test_charset_choose () =
  check (Alcotest.option Alcotest.char) "choose min" (Some 'a')
    (Charset.choose (Charset.of_string "cba"));
  check (Alcotest.option Alcotest.char) "choose empty" None (Charset.choose Charset.empty)

let test_charset_high_codes () =
  (* codes >= 64 exercise the second word of the bitset *)
  let s = Charset.of_list [ '\000'; '@'; '\127' ] in
  check Alcotest.bool "code 0" true (Charset.mem '\000' s);
  check Alcotest.bool "code 64" true (Charset.mem '@' s);
  check Alcotest.bool "code 127" true (Charset.mem '\127' s);
  check Alcotest.int "cardinal" 3 (Charset.cardinal s)

let prop_charset_list_roundtrip =
  qtest "of_list/to_list roundtrip"
    QCheck2.Gen.(list_size (int_range 0 30) (map Char.chr (int_range 0 127)))
    (fun chars ->
      let dedup = List.sort_uniq compare chars in
      Charset.to_list (Charset.of_list chars) = dedup)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_literal_concat () =
  check Alcotest.bool "abc" true (Syntax.equal (parse "abc") (Syntax.string "abc"))

let test_parse_class () =
  match parse "[bc]" with
  | Syntax.Chars s -> check (Alcotest.list Alcotest.char) "chars" [ 'b'; 'c' ] (Charset.to_list s)
  | _ -> Alcotest.fail "expected Chars"

let test_parse_class_range () =
  match parse "[a-c9]" with
  | Syntax.Chars s ->
    check (Alcotest.list Alcotest.char) "chars" [ '9'; 'a'; 'b'; 'c' ] (Charset.to_list s)
  | _ -> Alcotest.fail "expected Chars"

let test_parse_negated_class () =
  match parse "[^a]" with
  | Syntax.Chars s ->
    check Alcotest.bool "not a" false (Charset.mem 'a' s);
    check Alcotest.bool "has b" true (Charset.mem 'b' s);
    check Alcotest.int "127 chars" 127 (Charset.cardinal s)
  | _ -> Alcotest.fail "expected Chars"

let test_parse_postfix () =
  (match parse "a+" with
  | Syntax.Plus (Syntax.Chars _) -> ()
  | _ -> Alcotest.fail "expected Plus");
  (match parse "a*" with
  | Syntax.Star (Syntax.Chars _) -> ()
  | _ -> Alcotest.fail "expected Star");
  match parse "a?" with
  | Syntax.Opt (Syntax.Chars _) -> ()
  | _ -> Alcotest.fail "expected Opt"

let test_parse_alternation_precedence () =
  (* ab|c = (ab)|c *)
  match parse "ab|c" with
  | Syntax.Alt [ Syntax.Concat [ _; _ ]; Syntax.Chars _ ] -> ()
  | r -> Alcotest.failf "unexpected shape: %s" (Syntax.to_string r)

let test_parse_group () =
  match parse "(ab)+" with
  | Syntax.Plus (Syntax.Concat [ _; _ ]) -> ()
  | r -> Alcotest.failf "unexpected shape: %s" (Syntax.to_string r)

let test_parse_dot () =
  match parse "." with
  | Syntax.Chars s -> check Alcotest.int "full" 128 (Charset.cardinal s)
  | _ -> Alcotest.fail "expected Chars"

let test_parse_escapes () =
  (match parse "\\d" with
  | Syntax.Chars s -> check Alcotest.int "digits" 10 (Charset.cardinal s)
  | _ -> Alcotest.fail "expected digit class");
  (match parse "\\w" with
  | Syntax.Chars s -> check Alcotest.int "word chars" 63 (Charset.cardinal s)
  | _ -> Alcotest.fail "expected word class");
  match parse "\\+" with
  | Syntax.Chars s -> check (Alcotest.list Alcotest.char) "plus literal" [ '+' ] (Charset.to_list s)
  | _ -> Alcotest.fail "expected literal plus"

let test_parse_errors () =
  let fails s = match Parser.parse s with Error _ -> true | Ok _ -> false in
  check Alcotest.bool "dangling +" true (fails "+a");
  check Alcotest.bool "unclosed group" true (fails "(ab");
  check Alcotest.bool "unmatched )" true (fails "ab)");
  check Alcotest.bool "unterminated class" true (fails "[ab");
  check Alcotest.bool "bad escape" true (fails "\\q");
  check Alcotest.bool "dangling backslash" true (fails "ab\\");
  check Alcotest.bool "bad range" true (fails "[z-a]");
  check Alcotest.bool "empty class" true (fails "[]")

let test_parse_empty_is_epsilon () =
  check Alcotest.bool "empty pattern" true (Syntax.equal (parse "") Syntax.Epsilon)

(* ------------------------------------------------------------------ *)
(* Syntax analysis *)

let test_nullable () =
  check Alcotest.bool "a* nullable" true (Syntax.nullable (parse "a*"));
  check Alcotest.bool "a+ not nullable" false (Syntax.nullable (parse "a+"));
  check Alcotest.bool "a? nullable" true (Syntax.nullable (parse "a?"));
  check Alcotest.bool "a|b* nullable" true (Syntax.nullable (parse "a|b*"));
  check Alcotest.bool "ab not nullable" false (Syntax.nullable (parse "ab"))

let test_min_max_length () =
  check Alcotest.int "a[bc]+b min" 3 (Syntax.min_length (parse "a[bc]+b"));
  check (Alcotest.option Alcotest.int) "a[bc]+b max" None (Syntax.max_length (parse "a[bc]+b"));
  check Alcotest.int "a?b min" 1 (Syntax.min_length (parse "a?b"));
  check (Alcotest.option Alcotest.int) "a?b max" (Some 2) (Syntax.max_length (parse "a?b"));
  check (Alcotest.option Alcotest.int) "alt max" (Some 3) (Syntax.max_length (parse "a|bcd"))

let test_syntax_print_reparse () =
  List.iter
    (fun pat ->
      let r = parse pat in
      let printed = Syntax.to_string r in
      match Parser.parse printed with
      | Error e -> Alcotest.failf "reparse of %S (printed %S) failed: %s" pat printed e
      | Ok r' ->
        if not (Syntax.equal r r') then
          Alcotest.failf "%S printed as %S reparses differently" pat printed)
    [ "abc"; "a[bc]+"; "a|b|c"; "(ab)+c?"; "a\\+b"; "[a-z]*"; "x(y|z)w" ]

(* ------------------------------------------------------------------ *)
(* NFA / DFA matching *)

let cases_for pattern yes no =
  let nfa = Nfa.of_syntax (parse pattern) in
  let dfa = Dfa.of_nfa nfa in
  List.iter
    (fun s ->
      if not (Nfa.matches nfa s) then Alcotest.failf "NFA /%s/ should match %S" pattern s;
      if not (Dfa.matches dfa s) then Alcotest.failf "DFA /%s/ should match %S" pattern s)
    yes;
  List.iter
    (fun s ->
      if Nfa.matches nfa s then Alcotest.failf "NFA /%s/ should not match %S" pattern s;
      if Dfa.matches dfa s then Alcotest.failf "DFA /%s/ should not match %S" pattern s)
    no

let test_match_literals () = cases_for "abc" [ "abc" ] [ ""; "ab"; "abcd"; "abd" ]

let test_match_paper_example () =
  (* a[tyz]+b from the paper: 'atytyzb', 'azb', 'atyzb' are valid *)
  cases_for "a[tyz]+b" [ "atytyzb"; "azb"; "atyzb" ] [ "ab"; "aqb"; "atyz"; "tyb" ]

let test_match_star_plus_opt () =
  cases_for "ab*" [ "a"; "ab"; "abbb" ] [ ""; "b"; "aab" ];
  cases_for "ab+" [ "ab"; "abb" ] [ "a"; "b" ];
  cases_for "ab?c" [ "ac"; "abc" ] [ "abbc"; "a" ]

let test_match_alternation () = cases_for "cat|dog" [ "cat"; "dog" ] [ ""; "catdog"; "ca"; "og" ]

let test_match_nested () =
  cases_for "(a|b)*c" [ "c"; "ac"; "bc"; "abababc" ] [ ""; "ab"; "ca" ]

let test_match_dot () = cases_for "a.c" [ "abc"; "a.c"; "a c" ] [ "ac"; "abbc" ]

let test_match_epsilon () = cases_for "" [ "" ] [ "a" ]

(* Reference brute-force matcher on a tiny alphabet, for equivalence
   testing: enumerate all strings up to length 4 over {a,b}. *)
let gen_pattern =
  let open QCheck2.Gen in
  let atom = oneofl [ "a"; "b"; "[ab]"; "." ] in
  let piece = map2 (fun a suffix -> a ^ suffix) atom (oneofl [ ""; "*"; "+"; "?" ]) in
  let branch = map (String.concat "") (list_size (int_range 1 4) piece) in
  map (String.concat "|") (list_size (int_range 1 2) branch)

let all_ab_strings =
  let rec go len = if len = 0 then [ "" ] else List.concat_map (fun s -> [ s ^ "a"; s ^ "b" ]) (go (len - 1)) in
  List.concat_map go [ 0; 1; 2; 3; 4 ]

let prop_nfa_dfa_equivalent =
  qtest ~count:100 "NFA and DFA agree on all short strings" gen_pattern (fun pat ->
      match Parser.parse pat with
      | Error _ -> true
      | Ok r ->
        let nfa = Nfa.of_syntax r in
        let dfa = Dfa.of_nfa nfa in
        List.for_all (fun s -> Nfa.matches nfa s = Dfa.matches dfa s) all_ab_strings)

(* ------------------------------------------------------------------ *)
(* DFA counting / sampling / enumeration *)

let test_count_matching () =
  let dfa = Dfa.of_syntax (parse "a[bc]+") in
  (* length 5: a then 4 positions from {b,c} -> 16 *)
  check Alcotest.int "a[bc]+ len 5" 16 (Dfa.count_matching dfa ~len:5);
  check Alcotest.int "len 1" 0 (Dfa.count_matching dfa ~len:1);
  check Alcotest.int "len 2" 2 (Dfa.count_matching dfa ~len:2);
  check Alcotest.int "len 0" 0 (Dfa.count_matching dfa ~len:0)

let test_count_epsilon () =
  let dfa = Dfa.of_syntax (parse "a*") in
  check Alcotest.int "len 0" 1 (Dfa.count_matching dfa ~len:0);
  check Alcotest.int "len 3" 1 (Dfa.count_matching dfa ~len:3)

let test_enumerate () =
  let dfa = Dfa.of_syntax (parse "a[bc]") in
  check (Alcotest.list Alcotest.string) "both strings" [ "ab"; "ac" ] (Dfa.enumerate dfa ~len:2);
  check (Alcotest.list Alcotest.string) "limit" [ "ab" ] (Dfa.enumerate ~limit:1 dfa ~len:2);
  check (Alcotest.list Alcotest.string) "no matches" [] (Dfa.enumerate dfa ~len:3)

let test_sample_matches () =
  let r = parse "a[bc]+z?" in
  let dfa = Dfa.of_syntax r in
  let rng = Prng.create 42 in
  for _ = 1 to 50 do
    match Dfa.sample dfa ~len:5 ~rng with
    | None -> Alcotest.fail "expected a sample"
    | Some s ->
      check Alcotest.int "right length" 5 (String.length s);
      if not (Dfa.matches dfa s) then Alcotest.failf "sample %S does not match" s
  done

let test_sample_none_when_empty () =
  let dfa = Dfa.of_syntax (parse "abc") in
  let rng = Prng.create 1 in
  check (Alcotest.option Alcotest.string) "no length-2 match" None (Dfa.sample dfa ~len:2 ~rng)

let test_restrict () =
  let dfa = Dfa.of_syntax (parse ".+") in
  let restricted = Dfa.restrict dfa (Charset.of_string "xy") in
  check Alcotest.int "only xy strings" 4 (Dfa.count_matching restricted ~len:2);
  check Alcotest.bool "matches xy" true (Dfa.matches restricted "xy");
  check Alcotest.bool "rejects ab" false (Dfa.matches restricted "ab")

let test_accepts_nothing () =
  check Alcotest.bool "a& empty inter" false (Dfa.accepts_nothing (Dfa.of_syntax (parse "a")));
  let empty = Dfa.restrict (Dfa.of_syntax (parse "a")) (Charset.of_string "b") in
  (* 'a' restricted to alphabet {b} accepts nothing of length >= 1, and
     epsilon is not in L(a) *)
  check Alcotest.bool "restricted empty" true (Dfa.accepts_nothing empty)

let prop_count_agrees_with_enumeration =
  qtest ~count:60 "count = |enumerate| on tiny alphabet" gen_pattern (fun pat ->
      match Parser.parse pat with
      | Error _ -> true
      | Ok r ->
        let dfa = Dfa.restrict (Dfa.of_syntax r) (Charset.of_string "ab") in
        List.for_all
          (fun len ->
            Dfa.count_matching dfa ~len = List.length (Dfa.enumerate ~limit:max_int dfa ~len))
          [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Unroll *)

let sets_exn r ~len =
  match Unroll.to_position_sets r ~len with
  | Ok sets -> sets
  | Error msg -> Alcotest.failf "unroll failed: %s" msg

let test_unroll_paper_example () =
  (* a[bc]+ at length 5 -> a, then 4x [bc] *)
  let sets = sets_exn (parse "a[bc]+") ~len:5 in
  check Alcotest.int "5 positions" 5 (Array.length sets);
  check (Alcotest.list Alcotest.char) "pos 0" [ 'a' ] (Charset.to_list sets.(0));
  for p = 1 to 4 do
    check (Alcotest.list Alcotest.char) "class pos" [ 'b'; 'c' ] (Charset.to_list sets.(p))
  done

let test_unroll_middle_plus () =
  (* a[tyz]+b at length 7 -> a, 5x class, b *)
  let sets = sets_exn (parse "a[tyz]+b") ~len:7 in
  check (Alcotest.list Alcotest.char) "pos 0" [ 'a' ] (Charset.to_list sets.(0));
  check (Alcotest.list Alcotest.char) "pos 6" [ 'b' ] (Charset.to_list sets.(6));
  for p = 1 to 5 do
    check (Alcotest.list Alcotest.char) "class" [ 't'; 'y'; 'z' ] (Charset.to_list sets.(p))
  done

let test_unroll_star_zero () =
  (* ab*c at length 2 -> star contributes nothing *)
  let sets = sets_exn (parse "ab*c") ~len:2 in
  check (Alcotest.list Alcotest.char) "pos 0" [ 'a' ] (Charset.to_list sets.(0));
  check (Alcotest.list Alcotest.char) "pos 1" [ 'c' ] (Charset.to_list sets.(1))

let test_unroll_greedy_left () =
  (* a+b+ at length 4: left-to-right greedy gives aaab *)
  let sets = sets_exn (parse "a+b+") ~len:4 in
  let rendered =
    String.concat ""
      (Array.to_list (Array.map (fun s -> String.make 1 (Option.get (Charset.choose s))) sets))
  in
  check Alcotest.string "greedy left" "aaab" rendered

let test_unroll_length_errors () =
  (match Unroll.to_position_sets (parse "abc") ~len:2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too short should fail");
  match Unroll.to_position_sets (parse "ab?") ~len:4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too long should fail"

let test_unroll_rejects_non_product () =
  (match Unroll.to_position_sets (parse "ab|c") ~len:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "multi-char alternation should be rejected");
  match Unroll.to_position_sets (parse "(ab)+") ~len:2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "group repetition should be rejected"

let test_unroll_single_char_alternation_is_class () =
  (* a|b ≡ [ab]; SMT-LIB's re.union produces this shape *)
  let sets = sets_exn (parse "(a|b)+") ~len:3 in
  for p = 0 to 2 do
    check (Alcotest.list Alcotest.char) "class" [ 'a'; 'b' ] (Charset.to_list sets.(p))
  done

let prop_unroll_product_strings_match =
  (* every per-position choice yields a matching string *)
  qtest ~count:50 "unrolled products match the regex"
    QCheck2.Gen.(
      pair (oneofl [ "a[bc]+"; "x+y"; "a?b+"; "[ab][cd]e*"; "a[xy]?z+" ]) (int_range 1 6))
    (fun (pat, len) ->
      let r = parse pat in
      match Unroll.to_position_sets r ~len with
      | Error _ -> true
      | Ok sets ->
        let dfa = Dfa.of_syntax r in
        let rng = Prng.create (len * 31) in
        let ok = ref true in
        for _ = 1 to 20 do
          let s =
            String.init len (fun p ->
                let chars = Array.of_list (Charset.to_list sets.(p)) in
                Prng.choose rng chars)
          in
          if not (Dfa.matches dfa s) then ok := false
        done;
        !ok)


(* ------------------------------------------------------------------ *)
(* Minimize *)

let test_minimize_shrinks () =
  (* (a|b)(a|b) via alternation duplicates states; the minimal DFA for
     two chars over {a,b} has 3 live states *)
  let dfa = Dfa.of_syntax (parse "(a|b)(a|b)") in
  let min = Minimize.minimize dfa in
  check Alcotest.bool "not larger" true (Dfa.num_states min <= Dfa.num_states dfa);
  check Alcotest.int "minimal size" 3 (Dfa.num_states min)

let test_minimize_preserves_language () =
  List.iter
    (fun pat ->
      let dfa = Dfa.of_syntax (parse pat) in
      let min = Minimize.minimize dfa in
      List.iter
        (fun s ->
          if Dfa.matches dfa s <> Dfa.matches min s then
            Alcotest.failf "/%s/ disagrees on %S after minimization" pat s)
        all_ab_strings)
    [ "a[ab]+"; "(a|b)*a"; "ab|ba"; "a?b?a?"; "" ]

let test_minimize_idempotent () =
  let dfa = Minimize.minimize (Dfa.of_syntax (parse "(a|b)+ab")) in
  check Alcotest.int "fixed point" (Dfa.num_states dfa)
    (Dfa.num_states (Minimize.minimize dfa))

let test_equivalent_positive () =
  let a = Dfa.of_syntax (parse "a|b") in
  let b = Dfa.of_syntax (parse "[ab]") in
  check Alcotest.bool "same language" true (Minimize.equivalent a b);
  let c = Dfa.of_syntax (parse "aa*") in
  let d = Dfa.of_syntax (parse "a+") in
  check Alcotest.bool "aa* = a+" true (Minimize.equivalent c d)

let test_equivalent_negative () =
  let a = Dfa.of_syntax (parse "a") in
  let b = Dfa.of_syntax (parse "b") in
  check Alcotest.bool "different" false (Minimize.equivalent a b);
  let c = Dfa.of_syntax (parse "a*") in
  let d = Dfa.of_syntax (parse "a+") in
  check Alcotest.bool "a* != a+ (epsilon)" false (Minimize.equivalent c d)

let prop_minimize_equivalent =
  qtest ~count:80 "minimize preserves the language" gen_pattern (fun pat ->
      match Parser.parse pat with
      | Error _ -> true
      | Ok r ->
        let dfa = Dfa.of_syntax r in
        let min = Minimize.minimize dfa in
        Minimize.equivalent dfa min && Dfa.num_states min <= Dfa.num_states dfa)


(* ------------------------------------------------------------------ *)
(* Bounded repetition {m,n} *)

let test_rep_parse () =
  (match parse "a{3}" with
  | Syntax.Rep (Syntax.Chars _, 3, Some 3) -> ()
  | r -> Alcotest.failf "bad {3}: %s" (Syntax.to_string r));
  (match parse "a{2,4}" with
  | Syntax.Rep (Syntax.Chars _, 2, Some 4) -> ()
  | r -> Alcotest.failf "bad {2,4}: %s" (Syntax.to_string r));
  match parse "a{2,}" with
  | Syntax.Rep (Syntax.Chars _, 2, None) -> ()
  | r -> Alcotest.failf "bad {2,}: %s" (Syntax.to_string r)

let test_rep_parse_errors () =
  let fails s = match Parser.parse s with Error _ -> true | Ok _ -> false in
  check Alcotest.bool "reversed bounds" true (fails "a{4,2}");
  check Alcotest.bool "no number" true (fails "a{}");
  check Alcotest.bool "unterminated" true (fails "a{2");
  check Alcotest.bool "garbage" true (fails "a{2,x}")

let test_rep_matching () =
  cases_for "a{3}" [ "aaa" ] [ ""; "a"; "aa"; "aaaa" ];
  cases_for "a{2,4}" [ "aa"; "aaa"; "aaaa" ] [ "a"; "aaaaa" ];
  cases_for "a{2,}" [ "aa"; "aaaaaa" ] [ "a"; "" ];
  cases_for "x[ab]{2}y" [ "xaby"; "xbay"; "xaay" ] [ "xay"; "xabby" ]

let test_rep_lengths () =
  let r = parse "a{2,5}" in
  check Alcotest.int "min" 2 (Syntax.min_length r);
  check (Alcotest.option Alcotest.int) "max" (Some 5) (Syntax.max_length r);
  check (Alcotest.option Alcotest.int) "unbounded" None (Syntax.max_length (parse "a{2,}"));
  check Alcotest.bool "a{0,2} nullable" true (Syntax.nullable (parse "a{0,2}"));
  check Alcotest.bool "a{1,2} not nullable" false (Syntax.nullable (parse "a{1,2}"))

let test_rep_unroll () =
  let sets = sets_exn (parse "a[bc]{2,4}z") ~len:5 in
  check (Alcotest.list Alcotest.char) "pos 0" [ 'a' ] (Charset.to_list sets.(0));
  check (Alcotest.list Alcotest.char) "pos 4" [ 'z' ] (Charset.to_list sets.(4));
  for p = 1 to 3 do
    check (Alcotest.list Alcotest.char) "class" [ 'b'; 'c' ] (Charset.to_list sets.(p))
  done;
  (* infeasible lengths rejected *)
  match Unroll.to_position_sets (parse "a[bc]{2,4}z") ~len:2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too short should fail"

let test_rep_print_reparse () =
  List.iter
    (fun pat ->
      let r = parse pat in
      let printed = Syntax.to_string r in
      match Parser.parse printed with
      | Error e -> Alcotest.failf "reparse of %S (%S) failed: %s" pat printed e
      | Ok r2 ->
        if not (Syntax.equal r r2) then Alcotest.failf "%S reparses differently" pat)
    [ "a{3}"; "a{2,4}"; "a{2,}"; "[ab]{1,3}c" ]

let test_rep_count () =
  let dfa = Dfa.of_syntax (parse "[ab]{2}") in
  check Alcotest.int "4 strings" 4 (Dfa.count_matching dfa ~len:2);
  check Alcotest.int "none at 3" 0 (Dfa.count_matching dfa ~len:3)

let () =
  Alcotest.run "qsmt_regex"
    [
      ( "charset",
        [
          Alcotest.test_case "basics" `Quick test_charset_basics;
          Alcotest.test_case "set ops" `Quick test_charset_set_ops;
          Alcotest.test_case "range" `Quick test_charset_range;
          Alcotest.test_case "full/empty/printable" `Quick test_charset_full_empty;
          Alcotest.test_case "choose" `Quick test_charset_choose;
          Alcotest.test_case "high codes" `Quick test_charset_high_codes;
          prop_charset_list_roundtrip;
        ] );
      ( "parser",
        [
          Alcotest.test_case "literal concat" `Quick test_parse_literal_concat;
          Alcotest.test_case "class" `Quick test_parse_class;
          Alcotest.test_case "class range" `Quick test_parse_class_range;
          Alcotest.test_case "negated class" `Quick test_parse_negated_class;
          Alcotest.test_case "postfix" `Quick test_parse_postfix;
          Alcotest.test_case "alternation precedence" `Quick test_parse_alternation_precedence;
          Alcotest.test_case "group" `Quick test_parse_group;
          Alcotest.test_case "dot" `Quick test_parse_dot;
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "empty = epsilon" `Quick test_parse_empty_is_epsilon;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "min/max length" `Quick test_min_max_length;
          Alcotest.test_case "print/reparse" `Quick test_syntax_print_reparse;
        ] );
      ( "matching",
        [
          Alcotest.test_case "literals" `Quick test_match_literals;
          Alcotest.test_case "paper example" `Quick test_match_paper_example;
          Alcotest.test_case "star/plus/opt" `Quick test_match_star_plus_opt;
          Alcotest.test_case "alternation" `Quick test_match_alternation;
          Alcotest.test_case "nested" `Quick test_match_nested;
          Alcotest.test_case "dot" `Quick test_match_dot;
          Alcotest.test_case "epsilon" `Quick test_match_epsilon;
          prop_nfa_dfa_equivalent;
        ] );
      ( "dfa-queries",
        [
          Alcotest.test_case "count" `Quick test_count_matching;
          Alcotest.test_case "count epsilon" `Quick test_count_epsilon;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "sample matches" `Quick test_sample_matches;
          Alcotest.test_case "sample none" `Quick test_sample_none_when_empty;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "accepts nothing" `Quick test_accepts_nothing;
          prop_count_agrees_with_enumeration;
        ] );
      ( "rep",
        [
          Alcotest.test_case "parse" `Quick test_rep_parse;
          Alcotest.test_case "parse errors" `Quick test_rep_parse_errors;
          Alcotest.test_case "matching" `Quick test_rep_matching;
          Alcotest.test_case "lengths" `Quick test_rep_lengths;
          Alcotest.test_case "unroll" `Quick test_rep_unroll;
          Alcotest.test_case "print/reparse" `Quick test_rep_print_reparse;
          Alcotest.test_case "count" `Quick test_rep_count;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "shrinks" `Quick test_minimize_shrinks;
          Alcotest.test_case "preserves language" `Quick test_minimize_preserves_language;
          Alcotest.test_case "idempotent" `Quick test_minimize_idempotent;
          Alcotest.test_case "equivalent positive" `Quick test_equivalent_positive;
          Alcotest.test_case "equivalent negative" `Quick test_equivalent_negative;
          prop_minimize_equivalent;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "paper example" `Quick test_unroll_paper_example;
          Alcotest.test_case "middle plus" `Quick test_unroll_middle_plus;
          Alcotest.test_case "star zero" `Quick test_unroll_star_zero;
          Alcotest.test_case "greedy left" `Quick test_unroll_greedy_left;
          Alcotest.test_case "length errors" `Quick test_unroll_length_errors;
          Alcotest.test_case "rejects non-product" `Quick test_unroll_rejects_non_product;
          Alcotest.test_case "single-char alternation = class" `Quick
            test_unroll_single_char_alternation_is_class;
          prop_unroll_product_strings_match;
        ] );
    ]
