  $ ../../bin/qsmt.exe gen reverse hello --seed 1 | grep -v timing
  $ ../../bin/qsmt.exe gen replace-all hello l x --seed 1 | grep -v timing
  $ ../../bin/qsmt.exe gen includes 'hello world' world --seed 1 | grep -v timing
  $ ../../bin/qsmt.exe matrix equals a
  $ ../../bin/qsmt.exe export equals hi --format smt2
  $ ../../bin/qsmt.exe export palindrome 1 --format qubo
  $ ../../bin/qsmt.exe export includes ab a --format dimacs
  $ echo '(declare-const x String)(assert (= x "ok"))(check-sat)(get-value (x))' | ../../bin/qsmt.exe run -
  $ echo '(declare-const x String)(assert (= x "a"))(assert (= x "b"))(check-sat)' | ../../bin/qsmt.exe run -
  $ ../../bin/qsmt.exe gen reverse hello --sampler portfolio --seed 1 --jobs 2 | grep -v timing
  $ echo '(declare-const x String)(assert (str.contains x "cat"))(assert (= (str.len x) 3))(check-sat)(get-model)' | ../../bin/qsmt.exe run - --sampler classical
  $ ../../bin/qsmt.exe gen includes aaaa xyz --sampler classical
  $ ../../bin/qsmt.exe gen contains 2 cat 2>&1
  $ ../../bin/qsmt.exe gen frobnicate x 2>&1 | head -1
