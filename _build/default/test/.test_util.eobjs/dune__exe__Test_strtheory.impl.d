test/test_strtheory.ml: Alcotest Char Float Format List QCheck2 QCheck_alcotest Qsmt_anneal Qsmt_classical Qsmt_qubo Qsmt_regex Qsmt_smtlib Qsmt_strtheory Qsmt_util String
