test/test_util.ml: Alcotest Array Atomic Char Fun List Printf QCheck2 QCheck_alcotest Qsmt_util String
