test/test_util.ml: Alcotest Array Char List QCheck2 QCheck_alcotest Qsmt_util String
