test/test_anneal.ml: Alcotest Array Float Format Fun List Option QCheck2 QCheck_alcotest Qsmt_anneal Qsmt_qubo Qsmt_util String
