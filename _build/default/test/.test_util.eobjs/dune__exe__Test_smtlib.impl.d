test/test_smtlib.ml: Alcotest List Printf Qsmt_anneal Qsmt_qubo Qsmt_regex Qsmt_smtlib Qsmt_strtheory Qsmt_util String
