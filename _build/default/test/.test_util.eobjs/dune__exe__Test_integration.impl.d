test/test_integration.ml: Alcotest List Printf Qsmt_anneal Qsmt_classical Qsmt_qubo Qsmt_regex Qsmt_smtlib Qsmt_strtheory Qsmt_util Result String
