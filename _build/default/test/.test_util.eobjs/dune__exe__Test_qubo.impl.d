test/test_qubo.ml: Alcotest Array Filename Float Format Fun List QCheck2 QCheck_alcotest Qsmt_qubo Qsmt_util String Sys
