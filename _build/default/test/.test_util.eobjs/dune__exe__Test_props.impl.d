test/test_props.ml: Alcotest Array Char Float List QCheck2 QCheck_alcotest Qsmt_anneal Qsmt_classical Qsmt_qubo Qsmt_regex Qsmt_strtheory Qsmt_util String
