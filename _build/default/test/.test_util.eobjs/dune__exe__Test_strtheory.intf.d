test/test_strtheory.mli:
