test/test_qubo.mli:
