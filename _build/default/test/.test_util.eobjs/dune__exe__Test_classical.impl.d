test/test_classical.ml: Alcotest Char Filename Format Fun List QCheck2 QCheck_alcotest Qsmt_classical Qsmt_regex Qsmt_strtheory Qsmt_util String Sys
