test/test_regex.ml: Alcotest Array Char List Option QCheck2 QCheck_alcotest Qsmt_regex Qsmt_util String
