type t = {
  a : float;
  strong_scale : float;
  soft_scale : float;
  includes_b : float;
  includes_d : float;
}

let default = { a = 1.0; strong_scale = 2.0; soft_scale = 0.1; includes_b = 2.0; includes_d = 1.0 }

let validate t =
  let bad name v = Error (Printf.sprintf "Params.%s must be positive, got %g" name v) in
  if t.a <= 0. then bad "a" t.a
  else if t.strong_scale <= 0. then bad "strong_scale" t.strong_scale
  else if t.soft_scale <= 0. then bad "soft_scale" t.soft_scale
  else if t.includes_b <= 0. then bad "includes_b" t.includes_b
  else if t.includes_d <= 0. then bad "includes_d" t.includes_d
  else Ok ()

let pp ppf t =
  Format.fprintf ppf "A=%g strong=%g soft=%g B=%g D=%g" t.a t.strong_scale t.soft_scale
    t.includes_b t.includes_d
