(** §4.10 Palindrome generation.

    For each mirrored bit pair [(a, b)] — bit [i] of character [j] and
    bit [i] of character [N−1−j] — the energy term
    [A·(x_a + x_b − 2 x_a x_b)] is 0 when the bits agree and [A] when
    they differ: [+A] on both diagonals, [−2A] on the coupler, exactly
    the matrix shown in Table 1's palindrome row. Any mirrored bit
    pattern is a ground state (energy 0), so each read returns a
    different palindrome. The middle character of an odd-length string
    is unconstrained.

    [printable_bias] (an extension, default [0.] = paper-faithful) adds
    {!Encode.add_lowercase_bias} to every character so the sampled
    palindromes land in the printable range. *)

val encode : ?params:Params.t -> ?printable_bias:float -> length:int -> unit -> Qsmt_qubo.Qubo.t
(** @raise Invalid_argument on negative length or negative bias. *)
