(** §4.2 String concatenation: generate [s1 ^ s2 ^ ...].

    "We approach this constraint in the same way as string equality": the
    desired concatenated string is encoded directly into the diagonal. *)

val encode : ?params:Params.t -> string list -> Qsmt_qubo.Qubo.t
