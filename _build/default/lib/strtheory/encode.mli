(** Shared encoding primitives (paper §4 preamble).

    Every string-producing operation shares the same variable layout —
    bit [i] of character [j] is QUBO variable [7j + i], MSB first — and
    the same diagonal recipe: a variable whose target bit is 1 gets
    [-A], a 0 gets [+A]. These helpers write that pattern with either
    overwrite ([set]) or additive ([add]) semantics; substring matching
    needs the distinction (§4.3 overwrites on conflict). *)

type combine =
  | Overwrite  (** last write wins — the paper's semantics *)
  | Sum  (** coefficients add — the ablation alternative *)

val write_char :
  Qsmt_qubo.Qubo.builder -> combine:combine -> strength:float -> char_index:int -> char -> unit
(** Writes the seven diagonal entries for one character: [-strength]
    where the character's bit is 1, [+strength] where it is 0. *)

val write_string :
  Qsmt_qubo.Qubo.builder -> combine:combine -> strength:float -> start:int -> string -> unit
(** [write_string b ~combine ~strength ~start s] writes [s] with its
    first character at character index [start]. *)

val add_char_superposition :
  Qsmt_qubo.Qubo.builder -> strength:float -> char_index:int -> char list -> unit
(** §4.11 character classes: adds each candidate's diagonal pattern at
    [strength / k] for a [k]-character class, so the class members share
    preference (bits on which they disagree cancel toward 0). *)

val add_lowercase_bias : Qsmt_qubo.Qubo.builder -> strength:float -> char_index:int -> unit
(** §4.5's "softer constraint": a weak pull toward the lowercase range —
    the two high bits of the character are biased to 1 (codes 96-127),
    remaining bits free. Applied where any character is acceptable so
    samples come back roughly printable. *)
