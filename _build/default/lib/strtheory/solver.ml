module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa

type outcome = {
  constr : Constr.t;
  qubo : Qsmt_qubo.Qubo.t;
  samples : Sampleset.t;
  value : Constr.value;
  satisfied : bool;
  energy : float;
}

type stage_timing = { encode_s : float; sample_s : float; decode_s : float }

let default_sampler ~seed =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed } ()

let pick_value constr samples =
  (* First (= lowest-energy) sample whose decode verifies; otherwise the
     overall best sample. *)
  let entries = Sampleset.entries samples in
  let decoded =
    List.map (fun e -> (Compile.decode constr e.Sampleset.bits, e.Sampleset.energy)) entries
  in
  match List.find_opt (fun (v, _) -> Constr.verify constr v) decoded with
  | Some (value, energy) -> (value, true, energy)
  | None -> begin
    match decoded with
    | (value, energy) :: _ -> (value, false, energy)
    | [] -> invalid_arg "Solver: sampler returned an empty sample set"
  end

let now () = Unix.gettimeofday ()

let solve_timed ?params ?sampler constr =
  let sampler = match sampler with Some s -> s | None -> default_sampler ~seed:0 in
  let t0 = now () in
  let qubo = Compile.to_qubo ?params constr in
  let t1 = now () in
  let samples = Sampler.run sampler qubo in
  let t2 = now () in
  let value, satisfied, energy = pick_value constr samples in
  let t3 = now () in
  ( { constr; qubo; samples; value; satisfied; energy },
    { encode_s = t1 -. t0; sample_s = t2 -. t1; decode_s = t3 -. t2 } )

let solve ?params ?sampler constr = fst (solve_timed ?params ?sampler constr)

let solve_pipeline ?params ?sampler pipeline =
  let first = solve ?params ?sampler pipeline.Pipeline.initial in
  let string_of_value = function
    | Constr.Str s -> s
    | Constr.Pos _ -> "" (* non-string value: stages degrade to empty input *)
  in
  let _, outcomes =
    List.fold_left
      (fun (input, acc) stage ->
        let constr = Pipeline.constraint_for stage ~input in
        let outcome = solve ?params ?sampler constr in
        (string_of_value outcome.value, outcome :: acc))
      (string_of_value first.value, [ first ])
      pipeline.Pipeline.stages
  in
  List.rev outcomes

let pipeline_output outcomes =
  match List.rev outcomes with
  | [] -> None
  | last :: _ -> ( match last.value with Constr.Str s -> Some s | Constr.Pos _ -> None)
