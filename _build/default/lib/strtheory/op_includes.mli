(** §4.4 String includes: where does a substring S start within T?

    One binary variable per candidate start position
    [i ∈ 0 .. n−m]; [x_i = 1] means "S starts at i". Three energy terms:

    - reward: the diagonal of [x_i] gets [−A · (matching characters of S
      against T at offset i)], so full matches are the deepest wells;
    - one-hot penalty: every pair gets [+B x_i x_j], punishing the
      selection of more than one start. [B] is floored at [A·m + D]
      (needle length [m]) so that adding a second full match can never
      tie the single first match — below that floor the ground state is
      degenerate;
    - first-match preference: the [k]-th full match (counting from 0)
      carries an extra [+k·D] on its diagonal, so among full matches the
      earliest has strictly the lowest energy.

    Ground state: exactly the first full occurrence (when one exists). *)

val encode : ?params:Params.t -> haystack:string -> needle:string -> unit -> Qsmt_qubo.Qubo.t
(** @raise Invalid_argument if the needle is empty or longer than the
    haystack. *)

val decode : Qsmt_util.Bitvec.t -> int option
(** Position read-out: the single set bit's index; with several set bits
    the lowest (the one-hot penalty was violated, the earliest position
    is the canonical repair); [None] when no bit is set. *)

val match_count : haystack:string -> needle:string -> at:int -> int
(** Matching characters of the needle at the offset — the reward weight.
    Exposed for tests. *)
