module Qubo = Qsmt_qubo.Qubo
module Ascii7 = Qsmt_util.Ascii7

let encode ?(params = Params.default) ?(printable_bias = 0.) ~length () =
  if length < 0 then invalid_arg "Op_palindrome: negative length";
  if printable_bias < 0. then invalid_arg "Op_palindrome: negative printable_bias";
  let b = Qubo.builder () in
  let a = params.Params.a in
  for j = 0 to (length / 2) - 1 do
    for i = 0 to 6 do
      let front = Ascii7.var_of ~char_index:j ~bit:i in
      let back = Ascii7.var_of ~char_index:(length - 1 - j) ~bit:i in
      Qubo.add b front front a;
      Qubo.add b back back a;
      Qubo.add b front back (-2. *. a)
    done
  done;
  if printable_bias > 0. then
    for j = 0 to length - 1 do
      Encode.add_lowercase_bias b ~strength:printable_bias ~char_index:j
    done;
  Qubo.freeze ~num_vars:(7 * length) b
