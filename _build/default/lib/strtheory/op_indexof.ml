module Qubo = Qsmt_qubo.Qubo

let encode ?(params = Params.default) ~length ~substring ~index () =
  let m = String.length substring in
  if m = 0 then invalid_arg "Op_indexof: empty substring";
  if index < 0 || index + m > length then invalid_arg "Op_indexof: substring does not fit at index";
  let b = Qubo.builder () in
  let strong = params.Params.strong_scale *. params.Params.a in
  let soft = params.Params.soft_scale *. params.Params.a in
  Encode.write_string b ~combine:Encode.Overwrite ~strength:strong ~start:index substring;
  for p = 0 to length - 1 do
    if p < index || p >= index + m then Encode.add_lowercase_bias b ~strength:soft ~char_index:p
  done;
  Qubo.freeze ~num_vars:(7 * length) b
