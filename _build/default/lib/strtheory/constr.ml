module Syntax = Qsmt_regex.Syntax
module Unroll = Qsmt_regex.Unroll
module Dfa = Qsmt_regex.Dfa
module Ascii7 = Qsmt_util.Ascii7

type t =
  | Equals of string
  | Concat of string list
  | Contains of { length : int; substring : string }
  | Includes of { haystack : string; needle : string }
  | Index_of of { length : int; substring : string; index : int }
  | Has_length of { num_chars : int; target_length : int }
  | Replace_all of { source : string; find : char; replace : char }
  | Replace_first of { source : string; find : char; replace : char }
  | Reverse of string
  | Palindrome of { length : int }
  | Regex of { pattern : Syntax.t; length : int }

type value = Str of string | Pos of int option

let ascii_ok s = String.for_all (fun c -> Char.code c <= 127) s

let validate = function
  | Equals s | Reverse s ->
    if ascii_ok s then Ok () else Error "string contains non-7-bit characters"
  | Concat parts ->
    if List.for_all ascii_ok parts then Ok () else Error "string contains non-7-bit characters"
  | Contains { length; substring } ->
    if not (ascii_ok substring) then Error "substring contains non-7-bit characters"
    else if length < 0 then Error "negative length"
    else if String.length substring > length then Error "substring longer than the string"
    else if String.length substring = 0 then Error "empty substring"
    else Ok ()
  | Includes { haystack; needle } ->
    if not (ascii_ok haystack && ascii_ok needle) then Error "non-7-bit characters"
    else if String.length needle = 0 then Error "empty needle"
    else if String.length needle > String.length haystack then
      Error "needle longer than haystack"
    else Ok ()
  | Index_of { length; substring; index } ->
    if not (ascii_ok substring) then Error "substring contains non-7-bit characters"
    else if length < 0 then Error "negative length"
    else if String.length substring = 0 then Error "empty substring"
    else if index < 0 || index + String.length substring > length then
      Error "substring does not fit at the requested index"
    else Ok ()
  | Has_length { num_chars; target_length } ->
    if num_chars < 0 then Error "negative num_chars"
    else if target_length < 0 || target_length > num_chars then
      Error "target_length outside [0, num_chars]"
    else Ok ()
  | Replace_all { source; find; replace } | Replace_first { source; find; replace } ->
    if not (ascii_ok source) then Error "source contains non-7-bit characters"
    else if Char.code find > 127 || Char.code replace > 127 then
      Error "replacement characters must be 7-bit"
    else Ok ()
  | Palindrome { length } -> if length < 0 then Error "negative length" else Ok ()
  | Regex { pattern; length } ->
    if length < 0 then Error "negative length"
    else begin
      match Unroll.to_position_sets pattern ~len:length with
      | Ok _ -> Ok ()
      | Error msg -> Error msg
    end

let validate_exn c =
  match validate c with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Constr: invalid constraint: " ^ msg)

let num_vars c =
  validate_exn c;
  match c with
  | Equals s | Reverse s -> 7 * String.length s
  | Concat parts -> 7 * List.fold_left (fun acc s -> acc + String.length s) 0 parts
  | Contains { length; _ } | Index_of { length; _ } | Palindrome { length } | Regex { length; _ }
    ->
    7 * length
  | Includes { haystack; needle } -> String.length haystack - String.length needle + 1
  | Has_length { num_chars; _ } -> 7 * num_chars
  | Replace_all { source; _ } | Replace_first { source; _ } -> 7 * String.length source

let verify c value =
  match (c, value) with
  | Equals target, Str out -> out = target
  | Concat parts, Str out -> out = Semantics.concat parts
  | Contains { length; substring }, Str out ->
    String.length out = length && Semantics.contains out ~sub:substring
  | Includes { haystack; needle }, Pos (Some i) -> Semantics.occurs_at haystack ~sub:needle i
  | Includes _, Pos None -> false
  | Index_of { length; substring; index }, Str out ->
    String.length out = length && Semantics.occurs_at out ~sub:substring index
  | Has_length { num_chars; target_length }, Str out ->
    (* Paper bit semantics: first 7·L bits set, remainder clear — i.e.
       target_length DEL characters followed by NULs. *)
    String.length out = num_chars
    && String.for_all (fun c -> c = '\127') (String.sub out 0 target_length)
    && String.for_all (fun c -> c = '\000')
         (String.sub out target_length (num_chars - target_length))
  | Replace_all { source; find; replace }, Str out ->
    out = Semantics.replace_all source ~find ~replace
  | Replace_first { source; find; replace }, Str out ->
    out = Semantics.replace_first source ~find ~replace
  | Reverse source, Str out -> out = Semantics.reverse source
  | Palindrome { length }, Str out -> String.length out = length && Semantics.is_palindrome out
  | Regex { pattern; length }, Str out ->
    String.length out = length && Dfa.matches (Dfa.of_syntax pattern) out
  | ( ( Equals _ | Concat _ | Contains _ | Index_of _ | Has_length _ | Replace_all _
      | Replace_first _ | Reverse _ | Palindrome _ | Regex _ ),
      Pos _ ) ->
    false
  | Includes _, Str _ -> false

let describe = function
  | Equals s -> Printf.sprintf "generate the string %S" s
  | Concat parts -> Printf.sprintf "concatenate %s" (String.concat " + " (List.map (Printf.sprintf "%S") parts))
  | Contains { length; substring } ->
    Printf.sprintf "generate a length-%d string containing %S" length substring
  | Includes { haystack; needle } -> Printf.sprintf "find %S within %S" needle haystack
  | Index_of { length; substring; index } ->
    Printf.sprintf "generate a length-%d string with %S at index %d" length substring index
  | Has_length { num_chars; target_length } ->
    Printf.sprintf "check a %d-char string has length %d (unary bits)" num_chars target_length
  | Replace_all { source; find; replace } ->
    Printf.sprintf "replace all %C with %C in %S" find replace source
  | Replace_first { source; find; replace } ->
    Printf.sprintf "replace first %C with %C in %S" find replace source
  | Reverse s -> Printf.sprintf "reverse %S" s
  | Palindrome { length } -> Printf.sprintf "generate a palindrome of length %d" length
  | Regex { pattern; length } ->
    Printf.sprintf "generate a length-%d match of /%s/" length (Syntax.to_string pattern)

let pp_value ppf = function
  | Str s ->
    let shown = String.map Ascii7.clamp_printable s in
    Format.fprintf ppf "%S" shown
  | Pos (Some i) -> Format.fprintf ppf "position %d" i
  | Pos None -> Format.fprintf ppf "no position"
