(** §4.11 Regex matching: generate a [length]-character string matching
    a product-form pattern.

    The pattern is unrolled to one character set per position
    ({!Qsmt_regex.Unroll}); then per position:

    - singleton set (a literal, or a [+]/[*] repeat of one): the
      standard [±A] diagonal pattern;
    - a [k]-character class: each member's pattern added at [A/k]
      ("divide the strength of our penalty coefficient by the number of
      characters in our character class to give equal and shared
      preference"). Bits on which the members disagree cancel toward
      zero and come back random — which is why wide classes can decode
      to non-members. That fidelity-vs-class-width trade-off is measured
      in the Ext benches.

    The paper treats [+] after a literal as more of that literal and [+]
    after a class as more of that class; the unroller generalizes this
    (slack absorbed left to right). *)

val encode :
  ?params:Params.t ->
  pattern:Qsmt_regex.Syntax.t ->
  length:int ->
  unit ->
  (Qsmt_qubo.Qubo.t, string) result
(** [Error] if the pattern is not product-form or admits no string of
    the requested length. *)

val encode_exn :
  ?params:Params.t -> pattern:Qsmt_regex.Syntax.t -> length:int -> unit -> Qsmt_qubo.Qubo.t
(** @raise Invalid_argument where {!encode} returns [Error]. *)
