module Qubo = Qsmt_qubo.Qubo
module Ascii7 = Qsmt_util.Ascii7

type combine = Overwrite | Sum

let write_bit b ~combine var coeff =
  match combine with Overwrite -> Qubo.set b var var coeff | Sum -> Qubo.add b var var coeff

let write_char b ~combine ~strength ~char_index c =
  let bits = Ascii7.char_to_bits c in
  Array.iteri
    (fun i bit ->
      let var = Ascii7.var_of ~char_index ~bit:i in
      write_bit b ~combine var (if bit then -.strength else strength))
    bits

let write_string b ~combine ~strength ~start s =
  String.iteri (fun j c -> write_char b ~combine ~strength ~char_index:(start + j) c) s

let add_char_superposition b ~strength ~char_index chars =
  let k = List.length chars in
  if k = 0 then invalid_arg "Encode.add_char_superposition: empty class";
  let share = strength /. float_of_int k in
  List.iter
    (fun c ->
      let bits = Ascii7.char_to_bits c in
      Array.iteri
        (fun i bit ->
          let var = Ascii7.var_of ~char_index ~bit:i in
          Qubo.add b var var (if bit then -.share else share))
        bits)
    chars

let add_lowercase_bias b ~strength ~char_index =
  (* Bits 0 and 1 (values 64 and 32) pulled to 1: characters land in
     96-127, mostly lowercase letters. The other five bits stay free. *)
  Qubo.add b (Ascii7.var_of ~char_index ~bit:0) (Ascii7.var_of ~char_index ~bit:0) (-.strength);
  Qubo.add b (Ascii7.var_of ~char_index ~bit:1) (Ascii7.var_of ~char_index ~bit:1) (-.strength)
