(** §4.7 replaceAll and §4.8 replace.

    "We generate our desired string": the encoder computes, per
    character position, whether the source character is the one to be
    replaced, and writes the replacement's (or original's) bit pattern —
    exactly string equality against the classically-computed result. The
    paper highlights replaceAll because z3 lacked it. *)

val encode_all :
  ?params:Params.t -> source:string -> find:char -> replace:char -> unit -> Qsmt_qubo.Qubo.t
(** Every occurrence replaced (§4.7). *)

val encode_first :
  ?params:Params.t -> source:string -> find:char -> replace:char -> unit -> Qsmt_qubo.Qubo.t
(** Only the first occurrence replaced (§4.8). *)
