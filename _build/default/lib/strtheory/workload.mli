(** Random constraint workloads.

    Seeded generators of valid constraints for stress testing and
    benchmarking: the agreement suite (annealer vs CDCL vs brute force on
    the same random instances), coverage sweeps, and throughput numbers
    all draw from here rather than hand-picked examples, so the solvers
    are exercised on shapes nobody tuned for. *)

type kind =
  | K_equals
  | K_concat
  | K_contains
  | K_includes
  | K_index_of
  | K_replace_all
  | K_replace_first
  | K_reverse
  | K_palindrome
  | K_regex

val all_kinds : kind list

val generate : rng:Qsmt_util.Prng.t -> ?kinds:kind list -> max_length:int -> unit -> Constr.t
(** A uniformly-kinded random constraint, always passing
    {!Constr.validate}: strings are lowercase, lengths in
    [\[1, max_length\]], regexes product-form with a feasible length.
    @raise Invalid_argument if [kinds] is empty or [max_length < 1]. *)

val generate_satisfiable : rng:Qsmt_util.Prng.t -> ?kinds:kind list -> max_length:int -> unit -> Constr.t
(** Like {!generate} but guaranteed to have at least one satisfying
    value (e.g. {!Constr.Includes} needles are planted in their
    haystacks). Every kind this module produces is satisfiable by
    construction except Includes with an unplanted needle, so this mainly
    differs on that kind. *)

val suite : seed:int -> ?kinds:kind list -> max_length:int -> count:int -> unit -> Constr.t list
(** [count] satisfiable constraints from one seed. *)
