module Qubo = Qsmt_qubo.Qubo

let check ~length ~substring =
  let m = String.length substring in
  if m = 0 then invalid_arg "Op_substring: empty substring";
  if m > length then invalid_arg "Op_substring: substring longer than the string"

let encode ?(params = Params.default) ?(combine = Encode.Overwrite) ~length ~substring () =
  check ~length ~substring;
  let b = Qubo.builder () in
  let m = String.length substring in
  (* Write S at every start position 0 .. length-m; with Overwrite the
     last write wins cell-by-cell. *)
  for start = 0 to length - m do
    Encode.write_string b ~combine ~strength:params.Params.a ~start substring
  done;
  Qubo.freeze ~num_vars:(7 * length) b

let encoded_target ~length ~substring =
  let m = String.length substring in
  if m = 0 || m > length then None
  else begin
    (* Simulate the overwrite order: position p gets the character from
       the latest start position that reaches it. *)
    let out = Bytes.create length in
    for p = 0 to length - 1 do
      let last_start = min (length - m) p in
      (* the write at [last_start] put substring.[p - last_start] here *)
      Bytes.set out p substring.[p - last_start]
    done;
    Some (Bytes.to_string out)
  end
