(** §4.9 String reversal: generate the reverse of the input.

    "We encode our string backwards into the QUBO matrix" — equality
    against the reversed string. *)

val encode : ?params:Params.t -> string -> Qsmt_qubo.Qubo.t
