module Prng = Qsmt_util.Prng
module Syntax = Qsmt_regex.Syntax

type kind =
  | K_equals
  | K_concat
  | K_contains
  | K_includes
  | K_index_of
  | K_replace_all
  | K_replace_first
  | K_reverse
  | K_palindrome
  | K_regex

let all_kinds =
  [
    K_equals; K_concat; K_contains; K_includes; K_index_of; K_replace_all; K_replace_first;
    K_reverse; K_palindrome; K_regex;
  ]

let word rng n = Prng.string_lowercase rng n
let length rng max_length = 1 + Prng.int rng max_length

(* Random product-form regex: sequence of literal / class / repeated
   items with total minimum length <= budget. *)
let random_regex rng ~budget =
  let item () =
    let set =
      if Prng.bool rng then Syntax.literal (Char.chr (97 + Prng.int rng 26))
      else begin
        let k = 2 + Prng.int rng 3 in
        Syntax.char_class (List.init k (fun _ -> Char.chr (97 + Prng.int rng 26)))
      end
    in
    match Prng.int rng 4 with
    | 0 -> Syntax.Plus set
    | 1 -> Syntax.Star set
    | 2 -> Syntax.Opt set
    | _ -> set
  in
  let n_items = 1 + Prng.int rng (max 1 (budget / 2)) in
  Syntax.Concat (List.init n_items (fun _ -> item ()))

let rec gen_kind rng kind ~max_length ~plant =
  let n = length rng max_length in
  match kind with
  | K_equals -> Constr.Equals (word rng n)
  | K_concat ->
    let pieces = 1 + Prng.int rng 3 in
    Constr.Concat (List.init pieces (fun _ -> word rng (1 + Prng.int rng (max 1 (n / 2)))))
  | K_contains ->
    let sub_len = 1 + Prng.int rng n in
    Constr.Contains { length = n; substring = word rng sub_len }
  | K_includes ->
    let hay = word rng (max 2 n) in
    let m = 1 + Prng.int rng (String.length hay) in
    let needle =
      if plant then begin
        let at = Prng.int rng (String.length hay - m + 1) in
        String.sub hay at m
      end
      else word rng m
    in
    Constr.Includes { haystack = hay; needle }
  | K_index_of ->
    let m = 1 + Prng.int rng n in
    let index = Prng.int rng (n - m + 1) in
    Constr.Index_of { length = n; substring = word rng m; index }
  | K_replace_all ->
    let src = word rng n in
    Constr.Replace_all
      { source = src; find = src.[Prng.int rng n]; replace = Char.chr (97 + Prng.int rng 26) }
  | K_replace_first ->
    let src = word rng n in
    Constr.Replace_first
      { source = src; find = src.[Prng.int rng n]; replace = Char.chr (97 + Prng.int rng 26) }
  | K_reverse -> Constr.Reverse (word rng n)
  | K_palindrome -> Constr.Palindrome { length = n }
  | K_regex -> begin
    let pattern = random_regex rng ~budget:n in
    (* pick a feasible length for the pattern, else retry *)
    let min_len = Syntax.min_length pattern in
    let max_len = Syntax.max_length pattern in
    let feasible_max =
      match max_len with Some m -> min m max_length | None -> max_length
    in
    if min_len > feasible_max || min_len < 1 then
      gen_kind rng kind ~max_length ~plant (* degenerate draw; redraw *)
    else begin
      let len = min_len + Prng.int rng (feasible_max - min_len + 1) in
      let c = Constr.Regex { pattern; length = len } in
      match Constr.validate c with
      | Ok () -> c
      | Error _ -> gen_kind rng kind ~max_length ~plant
    end
  end

let pick_kind rng kinds =
  match kinds with
  | [] -> invalid_arg "Workload: empty kinds"
  | _ -> Prng.choose rng (Array.of_list kinds)

let generate ~rng ?(kinds = all_kinds) ~max_length () =
  if max_length < 1 then invalid_arg "Workload.generate: max_length < 1";
  gen_kind rng (pick_kind rng kinds) ~max_length ~plant:false

let generate_satisfiable ~rng ?(kinds = all_kinds) ~max_length () =
  if max_length < 1 then invalid_arg "Workload.generate_satisfiable: max_length < 1";
  gen_kind rng (pick_kind rng kinds) ~max_length ~plant:true

let suite ~seed ?kinds ~max_length ~count () =
  let rng = Prng.create seed in
  List.init count (fun _ -> generate_satisfiable ~rng ?kinds ~max_length ())
