module Syntax = Qsmt_regex.Syntax
module Charset = Qsmt_regex.Charset

let ( let* ) = Result.bind

let escape_string s = String.concat "\"\"" (String.split_on_char '"' s)
let str_lit s = Printf.sprintf "\"%s\"" (escape_string s)

let rec regex_term r =
  match r with
  | Syntax.Epsilon -> "(str.to_re \"\")"
  | Syntax.Chars set -> charset_term set
  | Syntax.Concat [] -> "(str.to_re \"\")"
  | Syntax.Concat [ r ] -> regex_term r
  | Syntax.Concat parts ->
    Printf.sprintf "(re.++ %s)" (String.concat " " (List.map regex_term parts))
  | Syntax.Alt [] -> "(str.to_re \"\")"
  | Syntax.Alt [ r ] -> regex_term r
  | Syntax.Alt parts ->
    Printf.sprintf "(re.union %s)" (String.concat " " (List.map regex_term parts))
  | Syntax.Star r -> Printf.sprintf "(re.* %s)" (regex_term r)
  | Syntax.Plus r -> Printf.sprintf "(re.+ %s)" (regex_term r)
  | Syntax.Opt r -> Printf.sprintf "(re.opt %s)" (regex_term r)
  | Syntax.Rep (r, lo, Some hi) -> Printf.sprintf "((_ re.loop %d %d) %s)" lo hi (regex_term r)
  | Syntax.Rep (r, lo, None) ->
    Printf.sprintf "(re.++ ((_ re.loop %d %d) %s) (re.* %s))" lo lo (regex_term r) (regex_term r)

and charset_term set =
  if Charset.equal set Charset.full then "re.allchar"
  else begin
    match Charset.to_list set with
    | [] -> "(re.union)" (* unreachable for valid constraints *)
    | [ c ] -> Printf.sprintf "(str.to_re %s)" (str_lit (String.make 1 c))
    | chars ->
      (* contiguous runs become re.range, the rest a union *)
      let rec runs = function
        | [] -> []
        | c :: rest ->
          let rec extend last = function
            | d :: more when Char.code d = Char.code last + 1 -> extend d more
            | remaining -> (last, remaining)
          in
          let last, remaining = extend c rest in
          (c, last) :: runs remaining
      in
      let render (a, b) =
        if a = b then Printf.sprintf "(str.to_re %s)" (str_lit (String.make 1 a))
        else
          Printf.sprintf "(re.range %s %s)" (str_lit (String.make 1 a)) (str_lit (String.make 1 b))
      in
      match runs chars with
      | [ single ] -> render single
      | many -> Printf.sprintf "(re.union %s)" (String.concat " " (List.map render many))
  end

let assertions ~var c =
  let* () = Constr.validate c in
  let assert_ fmt = Printf.ksprintf (fun s -> Printf.sprintf "(assert %s)" s) fmt in
  let len n = assert_ "(= (str.len %s) %d)" var n in
  match c with
  | Constr.Equals s -> Ok [ assert_ "(= %s %s)" var (str_lit s) ]
  | Constr.Concat parts ->
    Ok [ assert_ "(= %s (str.++ %s))" var (String.concat " " (List.map str_lit parts)) ]
  | Constr.Contains { length; substring } ->
    Ok [ assert_ "(str.contains %s %s)" var (str_lit substring); len length ]
  | Constr.Includes { haystack; needle } ->
    Ok [ assert_ "(= %s (str.indexof %s %s 0))" var (str_lit haystack) (str_lit needle) ]
  | Constr.Index_of { length; substring; index } ->
    Ok [ assert_ "(= (str.indexof %s %s 0) %d)" var (str_lit substring) index; len length ]
  | Constr.Has_length _ ->
    Error "Has_length uses the paper's unary-bit semantics and has no SMT-LIB counterpart"
  | Constr.Replace_all { source; find; replace } ->
    Ok
      [
        assert_ "(= %s (str.replace_all %s %s %s))" var (str_lit source)
          (str_lit (String.make 1 find))
          (str_lit (String.make 1 replace));
      ]
  | Constr.Replace_first { source; find; replace } ->
    Ok
      [
        assert_ "(= %s (str.replace %s %s %s))" var (str_lit source)
          (str_lit (String.make 1 find))
          (str_lit (String.make 1 replace));
      ]
  | Constr.Reverse source -> Ok [ assert_ "(= %s (str.rev %s))" var (str_lit source) ]
  | Constr.Palindrome { length } -> Ok [ assert_ "(str.palindrome %s)" var; len length ]
  | Constr.Regex { pattern; length } ->
    Ok [ assert_ "(str.in_re %s %s)" var (regex_term pattern); len length ]

let script ?var c =
  let is_includes = match c with Constr.Includes _ -> true | _ -> false in
  let var = match var with Some v -> v | None -> if is_includes then "i" else "x" in
  let sort = if is_includes then "Int" else "String" in
  let* asserts = assertions ~var c in
  Ok
    (String.concat "\n"
       ((Printf.sprintf "(set-logic %s)" (if is_includes then "QF_SLIA" else "QF_S")
        :: Printf.sprintf "(declare-const %s %s)" var sort
        :: asserts)
       @ [ "(check-sat)"; Printf.sprintf "(get-value (%s))" var; "" ]))
