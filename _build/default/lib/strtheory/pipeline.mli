(** §4.12 Combining constraints: sequential composition.

    "We perform each operation sequentially": the decoded output string
    of one solve becomes the input of the next. A pipeline is an initial
    constraint plus a list of string-transforming stages; Table 1's
    combined rows are pipelines of two stages (reverse ∘ replaceAll,
    concat ∘ replaceAll). No joint QUBO is built — each stage is its own
    annealing run, exactly as published. *)

type stage =
  | Reverse  (** reverse the previous output *)
  | Replace_all of { find : char; replace : char }
  | Replace_first of { find : char; replace : char }
  | Append of string  (** concatenate: previous ^ suffix *)
  | Prepend of string  (** concatenate: prefix ^ previous *)

type t = {
  initial : Constr.t;  (** the first solve *)
  stages : stage list;  (** applied left to right to each previous output *)
}

val constraint_for : stage -> input:string -> Constr.t
(** The constraint a stage poses given the previous stage's output. *)

val expected_output : t -> string option
(** Classical end-to-end result, when the initial constraint pins down a
    unique string ({!Constr.Equals}, {!Constr.Concat},
    {!Constr.Replace_all}, {!Constr.Replace_first}, {!Constr.Reverse});
    [None] when the initial constraint is generative (palindrome, regex,
    contains, ...). Used to judge whole-pipeline success. *)

val describe : t -> string

val pp_stage : Format.formatter -> stage -> unit
