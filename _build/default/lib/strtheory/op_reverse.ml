let encode ?params source = Op_equality.encode ?params (Semantics.reverse source)
