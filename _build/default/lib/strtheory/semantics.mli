(** Classical (reference) semantics of the string operations.

    The deterministic string functions the paper's operations are
    supposed to realize, following SMT-LIB's definitions where SMT-LIB
    has one. The verifier judges annealer outputs against these, the
    classical baseline executes them directly, and property tests use
    them as oracles. *)

val reverse : string -> string

val replace_all : string -> find:char -> replace:char -> string
(** Every occurrence of [find] becomes [replace]. *)

val replace_first : string -> find:char -> replace:char -> string
(** Only the first occurrence (if any) is replaced — SMT-LIB
    [str.replace] semantics restricted to single characters. *)

val contains : string -> sub:string -> bool
(** Does the string contain [sub]? The empty string is contained in
    everything. *)

val index_of : string -> sub:string -> int option
(** Smallest [i] with [sub] starting at [i]; [Some 0] for the empty
    needle. *)

val occurs_at : string -> sub:string -> int -> bool
(** Does [sub] occur starting at the given index? *)

val is_palindrome : string -> bool

val concat : string list -> string
