(** The quantum-annealing string solver (Figure 1 end to end).

    Encode the constraint to QUBO, hand it to a sampler, decode samples
    back to values, verify classically. The returned {!outcome} keeps
    every intermediate artifact so callers (CLI, benches, tests) can
    inspect the pipeline the way the paper's Table 1 presents it:
    constraint → matrix → output. *)

type outcome = {
  constr : Constr.t;
  qubo : Qsmt_qubo.Qubo.t;
  samples : Qsmt_anneal.Sampleset.t;
  value : Constr.value;  (** see [solve] for how it is chosen *)
  satisfied : bool;  (** [Constr.verify constr value] *)
  energy : float;  (** energy of the sample behind [value] *)
}

type stage_timing = {
  encode_s : float;  (** wall-clock seconds building the QUBO *)
  sample_s : float;  (** annealing *)
  decode_s : float;  (** decoding + verification over the sample set *)
}

val default_sampler : seed:int -> Qsmt_anneal.Sampler.t
(** Simulated annealing, 32 reads × 1000 sweeps — the configuration the
    experiments use unless stated otherwise. *)

val solve : ?params:Params.t -> ?sampler:Qsmt_anneal.Sampler.t -> Constr.t -> outcome
(** Samples once and scans the sample set in ascending energy order for
    the first decoded value that verifies; if none verifies, the
    lowest-energy decode is returned with [satisfied = false]. The
    sampler defaults to [default_sampler ~seed:0]. *)

val solve_timed :
  ?params:Params.t -> ?sampler:Qsmt_anneal.Sampler.t -> Constr.t -> outcome * stage_timing
(** {!solve} plus per-stage wall-clock timing (the Figure 1 trace). *)

val solve_pipeline :
  ?params:Params.t -> ?sampler:Qsmt_anneal.Sampler.t -> Pipeline.t -> outcome list
(** Runs the initial constraint, then each stage on the previous decoded
    string (§4.12). Outcomes are returned in stage order. If a stage
    decodes to a non-string value the remaining stages still run on the
    best-effort decode; per-stage [satisfied] flags record where things
    went wrong. *)

val pipeline_output : outcome list -> string option
(** Final decoded string of a pipeline run, [None] for an empty run or a
    non-string final value. *)
