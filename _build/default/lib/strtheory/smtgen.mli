(** SMT-LIB rendering of constraints (the compiler's inverse).

    Turns a {!Constr.t} back into standard SMT-LIB text, so workloads
    generated here can be exported and replayed on external solvers
    (z3, cvc5) for cross-validation, and so the front-end's
    script → constraint → script round trip is testable.

    The rendering targets this repository's compiler conventions:
    [Index_of] becomes [(= (str.indexof x sub 0) i)] (note the paper's
    semantics is "occurs at", slightly weaker than SMT-LIB's
    "first occurrence at" — an exported script is thus at least as
    strong as the constraint). {!Constr.Has_length} has no standard
    counterpart (the paper's unary-bit recipe) and is rejected. *)

val escape_string : string -> string
(** SMT-LIB string literal body ([""]-doubling). *)

val regex_term : Qsmt_regex.Syntax.t -> string
(** RegLan term text: [re.++]/[re.union]/[re.*]/[re.+]/[re.opt]/
    [re.range]/[re.allchar]/[str.to_re]. *)

val assertions : var:string -> Constr.t -> (string list, string) result
(** The assert command texts constraining [var] (a String constant, or
    an Int constant for {!Constr.Includes}). [Error] for
    {!Constr.Has_length} or an invalid constraint. *)

val script : ?var:string -> Constr.t -> (string, string) result
(** A complete runnable script: set-logic, declaration, assertions,
    [(check-sat)], [(get-value (var))]. Default variable name ["x"]
    (["i"] for Includes). *)
