module Qubo = Qsmt_qubo.Qubo
module Ascii7 = Qsmt_util.Ascii7

let encode ?(params = Params.default) target =
  let b = Qubo.builder () in
  Encode.write_string b ~combine:Encode.Overwrite ~strength:params.Params.a ~start:0 target;
  (* Ground energy of the diagonal pattern is -(number of 1 bits)·A;
     shift it to zero. *)
  let ones = Qsmt_util.Bitvec.popcount (Ascii7.encode target) in
  Qubo.set_offset b (params.Params.a *. float_of_int ones);
  Qubo.freeze ~num_vars:(7 * String.length target) b
