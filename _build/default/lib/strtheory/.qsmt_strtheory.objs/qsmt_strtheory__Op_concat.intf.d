lib/strtheory/op_concat.mli: Params Qsmt_qubo
