lib/strtheory/op_includes.mli: Params Qsmt_qubo Qsmt_util
