lib/strtheory/op_substring.mli: Encode Params Qsmt_qubo
