lib/strtheory/op_indexof.mli: Params Qsmt_qubo
