lib/strtheory/op_concat.ml: Op_equality Semantics
