lib/strtheory/op_substring.ml: Bytes Encode Params Qsmt_qubo String
