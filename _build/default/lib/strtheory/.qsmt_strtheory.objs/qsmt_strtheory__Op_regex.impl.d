lib/strtheory/op_regex.ml: Array Encode Params Qsmt_qubo Qsmt_regex
