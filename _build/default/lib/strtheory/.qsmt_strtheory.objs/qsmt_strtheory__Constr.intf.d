lib/strtheory/constr.mli: Format Qsmt_regex
