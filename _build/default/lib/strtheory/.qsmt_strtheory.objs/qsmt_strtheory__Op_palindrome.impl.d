lib/strtheory/op_palindrome.ml: Encode Params Qsmt_qubo Qsmt_util
