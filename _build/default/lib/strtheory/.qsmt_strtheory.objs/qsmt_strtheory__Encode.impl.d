lib/strtheory/encode.ml: Array List Qsmt_qubo Qsmt_util String
