lib/strtheory/constr.ml: Char Format List Printf Qsmt_regex Qsmt_util Semantics String
