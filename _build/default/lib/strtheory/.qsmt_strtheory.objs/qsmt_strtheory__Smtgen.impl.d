lib/strtheory/smtgen.ml: Char Constr List Printf Qsmt_regex Result String
