lib/strtheory/semantics.ml: String
