lib/strtheory/op_length.ml: Params Qsmt_qubo
