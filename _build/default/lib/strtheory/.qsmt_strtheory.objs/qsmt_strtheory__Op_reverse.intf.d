lib/strtheory/op_reverse.mli: Params Qsmt_qubo
