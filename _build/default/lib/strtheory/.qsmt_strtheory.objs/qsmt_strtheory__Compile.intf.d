lib/strtheory/compile.mli: Constr Params Qsmt_qubo Qsmt_util
