lib/strtheory/joint.ml: Compile Constr List Printf Qsmt_anneal Qsmt_qubo Qsmt_util Result Solver
