lib/strtheory/smtgen.mli: Constr Qsmt_regex
