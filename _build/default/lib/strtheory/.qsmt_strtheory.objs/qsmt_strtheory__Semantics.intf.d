lib/strtheory/semantics.mli:
