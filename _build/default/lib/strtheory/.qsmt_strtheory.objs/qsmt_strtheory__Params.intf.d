lib/strtheory/params.mli: Format
