lib/strtheory/op_reverse.ml: Op_equality Semantics
