lib/strtheory/encode.mli: Qsmt_qubo
