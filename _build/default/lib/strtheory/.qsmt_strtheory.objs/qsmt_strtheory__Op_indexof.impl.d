lib/strtheory/op_indexof.ml: Encode Params Qsmt_qubo String
