lib/strtheory/op_length.mli: Params Qsmt_qubo
