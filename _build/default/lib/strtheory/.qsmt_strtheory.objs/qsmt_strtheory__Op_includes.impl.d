lib/strtheory/op_includes.ml: Float Params Qsmt_qubo Qsmt_util String
