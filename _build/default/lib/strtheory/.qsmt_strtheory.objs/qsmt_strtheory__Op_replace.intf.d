lib/strtheory/op_replace.mli: Params Qsmt_qubo
