lib/strtheory/solver.ml: Array Compile Constr List Pipeline Qsmt_anneal Qsmt_qubo Qsmt_util Unix
