lib/strtheory/solver.ml: Compile Constr List Pipeline Qsmt_anneal Qsmt_qubo Unix
