lib/strtheory/op_replace.ml: Op_equality Semantics
