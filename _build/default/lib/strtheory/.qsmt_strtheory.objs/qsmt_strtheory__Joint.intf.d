lib/strtheory/joint.mli: Constr Params Qsmt_anneal Qsmt_qubo
