lib/strtheory/op_regex.mli: Params Qsmt_qubo Qsmt_regex
