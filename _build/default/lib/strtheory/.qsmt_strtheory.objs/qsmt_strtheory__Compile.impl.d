lib/strtheory/compile.ml: Constr Op_concat Op_equality Op_includes Op_indexof Op_length Op_palindrome Op_regex Op_replace Op_reverse Op_substring Printf Qsmt_util
