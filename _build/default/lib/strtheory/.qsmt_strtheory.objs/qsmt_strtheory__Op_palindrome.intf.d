lib/strtheory/op_palindrome.mli: Params Qsmt_qubo
