lib/strtheory/params.ml: Format Printf
