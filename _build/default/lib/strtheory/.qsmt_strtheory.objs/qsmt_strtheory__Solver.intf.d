lib/strtheory/solver.mli: Constr Params Pipeline Qsmt_anneal Qsmt_qubo
