lib/strtheory/pipeline.mli: Constr Format
