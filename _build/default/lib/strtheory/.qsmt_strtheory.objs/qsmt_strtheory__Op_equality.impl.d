lib/strtheory/op_equality.ml: Encode Params Qsmt_qubo Qsmt_util String
