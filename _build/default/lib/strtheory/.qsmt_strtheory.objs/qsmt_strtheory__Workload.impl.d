lib/strtheory/workload.ml: Array Char Constr List Qsmt_regex Qsmt_util String
