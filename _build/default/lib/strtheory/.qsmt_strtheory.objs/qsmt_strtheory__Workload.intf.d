lib/strtheory/workload.mli: Constr Qsmt_util
