lib/strtheory/op_equality.mli: Params Qsmt_qubo
