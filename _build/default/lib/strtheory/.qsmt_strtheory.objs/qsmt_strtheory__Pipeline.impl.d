lib/strtheory/pipeline.ml: Constr Format List Semantics String
