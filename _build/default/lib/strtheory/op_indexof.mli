(** §4.5 Substring indexOf: generate a [length]-character string with a
    substring forced at a given index.

    Two constraint strengths on the diagonal (paper: "wherever we require
    a specific string to appear, we encode a stronger or higher penalty
    (for example 2× the penalty strength A), and the rest of the string
    ... a softer constraint (for example 0.1× A)"):

    - forced positions: the substring's bit pattern at
      [strong_scale · A];
    - free positions: {!Encode.add_lowercase_bias} at [soft_scale · A] —
      a weak pull into the printable range, all other bits free, so each
      read fills them with arbitrary (roughly lowercase) characters, as
      in the paper's ["qphiqp"] example. *)

val encode :
  ?params:Params.t -> length:int -> substring:string -> index:int -> unit -> Qsmt_qubo.Qubo.t
(** @raise Invalid_argument if the substring does not fit at [index]. *)
