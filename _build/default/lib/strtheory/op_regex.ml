module Qubo = Qsmt_qubo.Qubo
module Charset = Qsmt_regex.Charset
module Unroll = Qsmt_regex.Unroll

let encode ?(params = Params.default) ~pattern ~length () =
  match Unroll.to_position_sets pattern ~len:length with
  | Error _ as e -> e
  | Ok sets ->
    let b = Qubo.builder () in
    Array.iteri
      (fun pos set ->
        match Charset.to_list set with
        | [] -> assert false (* Unroll never yields empty sets *)
        | [ c ] ->
          Encode.write_char b ~combine:Encode.Overwrite ~strength:params.Params.a
            ~char_index:pos c
        | chars -> Encode.add_char_superposition b ~strength:params.Params.a ~char_index:pos chars)
      sets;
    Ok (Qubo.freeze ~num_vars:(7 * length) b)

let encode_exn ?params ~pattern ~length () =
  match encode ?params ~pattern ~length () with
  | Ok q -> q
  | Error msg -> invalid_arg ("Op_regex: " ^ msg)
