(** §4.6 String length, reproduced as published.

    The paper checks "is this string of length L" with a unary bit
    recipe over the [7n] string variables: the first [7·L] diagonal
    entries get [−A] (bits pushed to 1) and the rest [+A] (pushed to 0).
    Note what this means at the character level: the ground state is [L]
    DEL characters (1111111) followed by NULs — the formulation treats
    "length" as a prefix of saturated bit groups rather than interacting
    with the other encodings' ASCII semantics. DESIGN.md discusses the
    oddity; we reproduce it faithfully, and {!Constr.verify} checks the
    published bit-level semantics. *)

val encode : ?params:Params.t -> num_chars:int -> target_length:int -> unit -> Qsmt_qubo.Qubo.t
(** @raise Invalid_argument unless [0 <= target_length <= num_chars]. *)
