let reverse s =
  let n = String.length s in
  String.init n (fun i -> s.[n - 1 - i])

let replace_all s ~find ~replace = String.map (fun c -> if c = find then replace else c) s

let replace_first s ~find ~replace =
  match String.index_opt s find with
  | None -> s
  | Some i -> String.mapi (fun j c -> if j = i then replace else c) s

let occurs_at s ~sub i =
  let n = String.length s and m = String.length sub in
  i >= 0 && i + m <= n
  &&
  let rec go j = j >= m || (s.[i + j] = sub.[j] && go (j + 1)) in
  go 0

let index_of s ~sub =
  let n = String.length s in
  let rec go i = if i > n then None else if occurs_at s ~sub i then Some i else go (i + 1) in
  go 0

let contains s ~sub = index_of s ~sub <> None

let is_palindrome s =
  let n = String.length s in
  let rec go i = i >= n / 2 || (s.[i] = s.[n - 1 - i] && go (i + 1)) in
  go 0

let concat = String.concat ""
