(** §4.1 String equality: generate a string S equal to a target T.

    Diagonal-only QUBO of size [7n × 7n]: entry [(i,i)] is [-A] if bit
    [i] of the target is 1, [+A] if 0. The unique ground state is the
    target's bit pattern at energy [-A · 7n] plus a constant; we add an
    offset so the ground energy is exactly 0 (a satisfied constraint has
    zero energy, which makes success checks uniform across operations). *)

val encode : ?params:Params.t -> string -> Qsmt_qubo.Qubo.t
(** @raise Invalid_argument on non-7-bit characters. *)
