let encode ?params parts = Op_equality.encode ?params (Semantics.concat parts)
