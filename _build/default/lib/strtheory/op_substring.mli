(** §4.3 Substring matching: generate a [length]-character string T that
    contains a substring S.

    The paper writes S's diagonal pattern at {e every} feasible start
    position and resolves conflicting cells by {e overwriting}, so the
    substring effectively lands at the {e last} start position and
    residue of earlier writes survives where later writes did not reach —
    the paper's own example: a 4-character string containing ["cat"]
    encodes to ["ccat"]. Positions never written stay unconstrained
    (free bits).

    [combine = Sum] is the ablation variant where conflicting writes add
    instead (a superposition across start positions, like the regex class
    encoding); the Ext-2 bench compares the two. *)

val encode :
  ?params:Params.t ->
  ?combine:Encode.combine ->
  length:int ->
  substring:string ->
  unit ->
  Qsmt_qubo.Qubo.t
(** Default [combine] is [Overwrite] (paper-faithful).
    @raise Invalid_argument if the substring is empty or longer than
    [length]. *)

val encoded_target : length:int -> substring:string -> string option
(** The string the overwrite encoding actually pins down where it
    constrains anything — ["ccat"] in the paper's example — with
    unconstrained positions (there are none for overwrite when
    [length >= |substring|]) left out. Used by tests. Returns [None]
    when inputs are invalid. *)
