(** Constraint → QUBO compilation and sample decoding.

    The single dispatch point between the constraint AST and the
    per-operation encoders; the inverse direction turns an annealer
    sample (a bit vector over the constraint's variables) back into a
    {!Constr.value}. *)

val to_qubo : ?params:Params.t -> Constr.t -> Qsmt_qubo.Qubo.t
(** @raise Invalid_argument if the constraint fails
    {!Constr.validate}. *)

val decode : Constr.t -> Qsmt_util.Bitvec.t -> Constr.value
(** String constraints decode all [7n] bits through the ASCII codec
    (unconstrained bits fall where the sampler left them); {!Constr.Includes}
    decodes the one-hot position.
    @raise Invalid_argument if the sample length does not match
    [Constr.num_vars]. *)
