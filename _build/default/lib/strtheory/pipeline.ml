type stage =
  | Reverse
  | Replace_all of { find : char; replace : char }
  | Replace_first of { find : char; replace : char }
  | Append of string
  | Prepend of string

type t = { initial : Constr.t; stages : stage list }

let constraint_for stage ~input =
  match stage with
  | Reverse -> Constr.Reverse input
  | Replace_all { find; replace } -> Constr.Replace_all { source = input; find; replace }
  | Replace_first { find; replace } -> Constr.Replace_first { source = input; find; replace }
  | Append suffix -> Constr.Concat [ input; suffix ]
  | Prepend prefix -> Constr.Concat [ prefix; input ]

let apply_classical stage input =
  match stage with
  | Reverse -> Semantics.reverse input
  | Replace_all { find; replace } -> Semantics.replace_all input ~find ~replace
  | Replace_first { find; replace } -> Semantics.replace_first input ~find ~replace
  | Append suffix -> input ^ suffix
  | Prepend prefix -> prefix ^ input

let initial_classical = function
  | Constr.Equals s -> Some s
  | Constr.Concat parts -> Some (Semantics.concat parts)
  | Constr.Replace_all { source; find; replace } ->
    Some (Semantics.replace_all source ~find ~replace)
  | Constr.Replace_first { source; find; replace } ->
    Some (Semantics.replace_first source ~find ~replace)
  | Constr.Reverse source -> Some (Semantics.reverse source)
  | Constr.Contains _ | Constr.Includes _ | Constr.Index_of _ | Constr.Has_length _
  | Constr.Palindrome _ | Constr.Regex _ ->
    None

let expected_output t =
  match initial_classical t.initial with
  | None -> None
  | Some start -> Some (List.fold_left (fun acc stage -> apply_classical stage acc) start t.stages)

let pp_stage ppf = function
  | Reverse -> Format.fprintf ppf "reverse"
  | Replace_all { find; replace } -> Format.fprintf ppf "replace all %C -> %C" find replace
  | Replace_first { find; replace } -> Format.fprintf ppf "replace first %C -> %C" find replace
  | Append s -> Format.fprintf ppf "append %S" s
  | Prepend s -> Format.fprintf ppf "prepend %S" s

let describe t =
  let stage_strs = List.map (fun s -> Format.asprintf "%a" pp_stage s) t.stages in
  String.concat ", then " (Constr.describe t.initial :: stage_strs)
