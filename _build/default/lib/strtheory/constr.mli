(** String constraints (the paper's twelve operations, §4.1–§4.11).

    A constraint describes what the solver must *generate*: usually a
    string (encoded over [7n] binary variables), for {!Includes} a start
    position (one-hot over the candidate positions). {!verify} is the
    classical yardstick: it decides, with ordinary string semantics,
    whether a produced value satisfies the constraint — the solver never
    gets to grade its own homework. *)

type t =
  | Equals of string  (** §4.1: generate S equal to the given target *)
  | Concat of string list  (** §4.2: generate the concatenation *)
  | Contains of { length : int; substring : string }
      (** §4.3: generate a [length]-character string containing
          [substring]. NOTE the paper's overwrite semantics: the encoder
          writes the substring at every start position, later writes
          overwriting earlier ones. *)
  | Includes of { haystack : string; needle : string }
      (** §4.4: find a start position of [needle] within [haystack]
          (one-hot position variables, first match preferred) *)
  | Index_of of { length : int; substring : string; index : int }
      (** §4.5: generate a [length]-character string with [substring]
          forced at [index], soft constraints elsewhere *)
  | Has_length of { num_chars : int; target_length : int }
      (** §4.6, paper-faithful: over a [num_chars]-character variable
          string, force the first [7·target_length] bits to 1 and the
          rest to 0. (A unary-style check — see DESIGN.md for why this
          formulation is odd but reproduced as published.) *)
  | Replace_all of { source : string; find : char; replace : char }
      (** §4.7: generate [source] with every [find] replaced *)
  | Replace_first of { source : string; find : char; replace : char }
      (** §4.8: generate [source] with the first [find] replaced *)
  | Reverse of string  (** §4.9: generate the reversal *)
  | Palindrome of { length : int }  (** §4.10: generate any palindrome *)
  | Regex of { pattern : Qsmt_regex.Syntax.t; length : int }
      (** §4.11: generate a [length]-character string matching the
          pattern (product-form fragment) *)

(** What a solver produces for a constraint. *)
type value =
  | Str of string  (** generated string (all constraints except {!Includes}) *)
  | Pos of int option  (** chosen start position; [None] if the sample set no bit *)

val validate : t -> (unit, string) result
(** Structural sanity: lengths non-negative, substrings fit, characters
    7-bit, regex product-form and admitting the requested length. *)

val num_vars : t -> int
(** Number of QUBO variables the encoding uses.
    @raise Invalid_argument if the constraint is invalid. *)

val verify : t -> value -> bool
(** Classical satisfaction check. A [Str] for {!Includes} or a [Pos] for
    a string-producing constraint is never satisfied. For {!Includes},
    any valid occurrence position is accepted (the first-match preference
    is an energy tie-break, not a soundness condition). For
    {!Index_of}, characters outside the forced substring are
    unconstrained, so only length and the occurrence at [index] are
    checked. For {!Has_length} the check follows the paper's bit-level
    semantics: the first [7·target_length] decoded bits are 1 and the
    rest 0. *)

val describe : t -> string
(** One line, human-readable (used in experiment tables). *)

val pp_value : Format.formatter -> value -> unit
