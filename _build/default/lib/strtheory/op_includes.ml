module Qubo = Qsmt_qubo.Qubo
module Bitvec = Qsmt_util.Bitvec

let match_count ~haystack ~needle ~at =
  let m = String.length needle in
  let count = ref 0 in
  for j = 0 to m - 1 do
    if haystack.[at + j] = needle.[j] then incr count
  done;
  !count

let encode ?(params = Params.default) ~haystack ~needle () =
  let n = String.length haystack and m = String.length needle in
  if m = 0 then invalid_arg "Op_includes: empty needle";
  if m > n then invalid_arg "Op_includes: needle longer than haystack";
  let positions = n - m + 1 in
  let b = Qubo.builder () in
  (* Reward per position, plus the escalating penalty on later full
     matches: C_i starts at 0 and grows by D after every full match. *)
  let c_i = ref 0. in
  for i = 0 to positions - 1 do
    let matches = match_count ~haystack ~needle ~at:i in
    Qubo.add b i i (-.params.Params.a *. float_of_int matches);
    if matches = m then begin
      Qubo.add b i i !c_i;
      c_i := !c_i +. params.Params.includes_d
    end
  done;
  (* One-hot pairwise penalty. The configured B is floored at A·m + D:
     with a weaker B, turning on a second full match (reward A·m, extra
     first-match penalty ≥ D) could tie or beat the single first match,
     leaving the ground state degenerate. *)
  let b_strength =
    Float.max params.Params.includes_b
      ((params.Params.a *. float_of_int m) +. params.Params.includes_d)
  in
  for i = 0 to positions - 1 do
    for j = i + 1 to positions - 1 do
      Qubo.add b i j b_strength
    done
  done;
  Qubo.freeze ~num_vars:positions b

let decode bits =
  let n = Bitvec.length bits in
  let rec first i = if i >= n then None else if Bitvec.get bits i then Some i else first (i + 1) in
  first 0
