module Qubo = Qsmt_qubo.Qubo

let encode ?(params = Params.default) ~num_chars ~target_length () =
  if num_chars < 0 then invalid_arg "Op_length: negative num_chars";
  if target_length < 0 || target_length > num_chars then
    invalid_arg "Op_length: target_length outside [0, num_chars]";
  let b = Qubo.builder () in
  let total_bits = 7 * num_chars and boundary = 7 * target_length in
  for i = 0 to total_bits - 1 do
    Qubo.set b i i (if i < boundary then -.params.Params.a else params.Params.a)
  done;
  (* Ground energy is -A per forced-one bit; shift to zero. *)
  Qubo.set_offset b (params.Params.a *. float_of_int boundary);
  Qubo.freeze ~num_vars:total_bits b
