let encode_all ?params ~source ~find ~replace () =
  Op_equality.encode ?params (Semantics.replace_all source ~find ~replace)

let encode_first ?params ~source ~find ~replace () =
  Op_equality.encode ?params (Semantics.replace_first source ~find ~replace)
