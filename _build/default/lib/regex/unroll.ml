type item = { set : Charset.t; min_reps : int; max_reps : int option }

let items_of_syntax syntax =
  let exception Not_product of string in
  (* A sub-regex usable as a repeated atom: one character from a set.
     Alternations of single characters ([(b|c)] ≡ [[bc]]) qualify, which
     is the shape SMT-LIB's re.union produces. *)
  let rec atom_set = function
    | Syntax.Chars set -> Some set
    | Syntax.Concat [ r ] -> atom_set r
    | Syntax.Alt parts ->
      List.fold_left
        (fun acc part ->
          match (acc, atom_set part) with
          | Some acc, Some set -> Some (Charset.union acc set)
          | _, _ -> None)
        (Some Charset.empty) parts
    | Syntax.Epsilon | Syntax.Concat _ | Syntax.Star _ | Syntax.Plus _ | Syntax.Opt _
    | Syntax.Rep _ ->
      None
  in
  let rec flatten r =
    match r with
    | Syntax.Epsilon -> []
    | Syntax.Chars set -> [ { set; min_reps = 1; max_reps = Some 1 } ]
    | Syntax.Concat parts -> List.concat_map flatten parts
    | Syntax.Plus inner -> begin
      match atom_set inner with
      | Some set -> [ { set; min_reps = 1; max_reps = None } ]
      | None -> raise (Not_product "+ applied to a non-atom (group or alternation)")
    end
    | Syntax.Star inner -> begin
      match atom_set inner with
      | Some set -> [ { set; min_reps = 0; max_reps = None } ]
      | None -> raise (Not_product "* applied to a non-atom (group or alternation)")
    end
    | Syntax.Opt inner -> begin
      match atom_set inner with
      | Some set -> [ { set; min_reps = 0; max_reps = Some 1 } ]
      | None -> raise (Not_product "? applied to a non-atom (group or alternation)")
    end
    | Syntax.Alt _ as r -> begin
      match atom_set r with
      | Some set -> [ { set; min_reps = 1; max_reps = Some 1 } ]
      | None -> raise (Not_product "alternation is not product-form")
    end
    | Syntax.Rep (inner, lo, hi) -> begin
      match atom_set inner with
      | Some set ->
        (match hi with
        | Some hi when hi < lo -> raise (Not_product "repetition upper bound below lower")
        | _ -> ());
        [ { set; min_reps = lo; max_reps = hi } ]
      | None -> raise (Not_product "{m,n} applied to a non-atom (group or alternation)")
    end
  in
  try Ok (flatten syntax) with Not_product msg -> Error msg

let to_position_sets syntax ~len =
  if len < 0 then invalid_arg "Unroll.to_position_sets: negative length";
  match items_of_syntax syntax with
  | Error _ as e -> e
  | Ok items ->
    let total_min = List.fold_left (fun acc it -> acc + it.min_reps) 0 items in
    let total_max =
      List.fold_left
        (fun acc it ->
          match (acc, it.max_reps) with Some a, Some m -> Some (a + m) | _, _ -> None)
        (Some 0) items
    in
    if total_min > len then
      Error (Printf.sprintf "regex needs at least %d characters, asked for %d" total_min len)
    else begin
      match total_max with
      | Some m when m < len ->
        Error (Printf.sprintf "regex admits at most %d characters, asked for %d" m len)
      | Some _ | None ->
        (* Greedy left-to-right: each item takes its minimum; then the
           leftmost expandable items absorb the slack. *)
        let slack = ref (len - total_min) in
        let counts =
          List.map
            (fun it ->
              let headroom =
                match it.max_reps with None -> !slack | Some m -> min !slack (m - it.min_reps)
              in
              slack := !slack - headroom;
              it.min_reps + headroom)
            items
        in
        let out = Array.make len Charset.empty in
        let pos = ref 0 in
        List.iter2
          (fun it count ->
            for _ = 1 to count do
              out.(!pos) <- it.set;
              incr pos
            done)
          items counts;
        assert (!pos = len);
        Ok out
    end

let pp_item ppf it =
  let reps =
    match (it.min_reps, it.max_reps) with
    | 1, Some 1 -> ""
    | 1, None -> "+"
    | 0, None -> "*"
    | 0, Some 1 -> "?"
    | lo, Some hi -> Printf.sprintf "{%d,%d}" lo hi
    | lo, None -> Printf.sprintf "{%d,}" lo
  in
  Format.fprintf ppf "%a%s" Charset.pp it.set reps
