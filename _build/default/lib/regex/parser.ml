exception Parse_error of int * string

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None
let advance st = st.pos <- st.pos + 1
let fail st msg = raise (Parse_error (st.pos, msg))

let class_of_escape st c =
  match c with
  | 'n' -> Charset.singleton '\n'
  | 't' -> Charset.singleton '\t'
  | 'r' -> Charset.singleton '\r'
  | 'd' -> Charset.of_range '0' '9'
  | 'w' ->
    Charset.union
      (Charset.union (Charset.of_range 'a' 'z') (Charset.of_range 'A' 'Z'))
      (Charset.add '_' (Charset.of_range '0' '9'))
  | 's' -> Charset.of_list [ ' '; '\t'; '\n'; '\r' ]
  | '\\' | '(' | ')' | '[' | ']' | '{' | '}' | '*' | '+' | '?' | '|' | '.' | '^' | '$' | '-' ->
    Charset.singleton c
  | _ -> fail st (Printf.sprintf "unknown escape \\%c" c)

let parse_escape st =
  advance st;
  match peek st with
  | None -> fail st "dangling backslash"
  | Some c ->
    advance st;
    class_of_escape st c

(* One item of a character class: a char, a range, or an escape. *)
let parse_class_item st =
  match peek st with
  | None -> fail st "unterminated character class"
  | Some '\\' -> parse_escape st
  | Some c ->
    advance st;
    (* possible range c '-' d, but '-' before ']' is a literal dash *)
    (match (peek st, st.pos + 1 < String.length st.input) with
    | Some '-', true when st.input.[st.pos + 1] <> ']' ->
      advance st;
      (match peek st with
      | Some '\\' ->
        (* ranges with escaped endpoints: allow \] etc., require singleton *)
        let set = parse_escape st in
        (match Charset.to_list set with
        | [ d ] when c <= d -> Charset.of_range c d
        | [ _ ] -> fail st "invalid range (lo > hi)"
        | _ -> fail st "range endpoint must be a single character")
      | Some d when c <= d ->
        advance st;
        Charset.of_range c d
      | Some _ -> fail st "invalid range (lo > hi)"
      | None -> fail st "unterminated character class")
    | _ -> Charset.singleton c)

let parse_class st =
  advance st (* '[' *);
  let negated = peek st = Some '^' in
  if negated then advance st;
  let rec items acc =
    match peek st with
    | None -> fail st "unterminated character class"
    | Some ']' ->
      advance st;
      acc
    | Some _ -> items (Charset.union acc (parse_class_item st))
  in
  let set = items Charset.empty in
  if Charset.is_empty set then fail st "empty character class";
  Syntax.Chars (if negated then Charset.complement set else set)

let rec parse_alt st =
  let first = parse_concat st in
  let rec more acc =
    match peek st with
    | Some '|' ->
      advance st;
      more (parse_concat st :: acc)
    | _ -> List.rev acc
  in
  match more [ first ] with [ single ] -> single | branches -> Syntax.Alt branches

and parse_concat st =
  let rec pieces acc =
    match peek st with
    | None | Some ')' | Some '|' -> List.rev acc
    | Some _ -> pieces (parse_piece st :: acc)
  in
  match pieces [] with
  | [] -> Syntax.Epsilon
  | [ single ] -> single
  | parts -> Syntax.Concat parts

and parse_piece st =
  let atom = parse_atom st in
  let parse_number () =
    let start = st.pos in
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      advance st
    done;
    if st.pos = start then fail st "expected a number in {...}"
    else int_of_string (String.sub st.input start (st.pos - start))
  in
  let rec postfix r =
    match peek st with
    | Some '*' ->
      advance st;
      postfix (Syntax.Star r)
    | Some '+' ->
      advance st;
      postfix (Syntax.Plus r)
    | Some '?' ->
      advance st;
      postfix (Syntax.Opt r)
    | Some '{' ->
      advance st;
      let lo = parse_number () in
      let rep =
        match peek st with
        | Some '}' ->
          advance st;
          Syntax.Rep (r, lo, Some lo)
        | Some ',' -> begin
          advance st;
          match peek st with
          | Some '}' ->
            advance st;
            Syntax.Rep (r, lo, None)
          | Some _ ->
            let hi = parse_number () in
            if hi < lo then fail st "repetition upper bound below lower";
            (match peek st with
            | Some '}' -> advance st
            | _ -> fail st "unterminated {m,n}");
            Syntax.Rep (r, lo, Some hi)
          | None -> fail st "unterminated {m,n}"
        end
        | _ -> fail st "unterminated {m,n}"
      in
      postfix rep
    | _ -> r
  in
  postfix atom

and parse_atom st =
  match peek st with
  | None -> fail st "expected an atom"
  | Some '(' ->
    advance st;
    let inner = parse_alt st in
    (match peek st with
    | Some ')' ->
      advance st;
      inner
    | _ -> fail st "unclosed group")
  | Some '[' -> parse_class st
  | Some '.' ->
    advance st;
    Syntax.any
  | Some '\\' -> Syntax.Chars (parse_escape st)
  | Some (('*' | '+' | '?') as c) -> fail st (Printf.sprintf "dangling %c" c)
  | Some ')' -> fail st "unmatched )"
  | Some c ->
    advance st;
    if Char.code c > 127 then fail st "non-ASCII character";
    Syntax.literal c

let parse input =
  let st = { input; pos = 0 } in
  try
    let r = parse_alt st in
    match peek st with
    | None -> Ok r
    | Some c -> Error (Printf.sprintf "at %d: unexpected %c" st.pos c)
  with Parse_error (pos, msg) -> Error (Printf.sprintf "at %d: %s" pos msg)

let parse_exn input =
  match parse input with
  | Ok r -> r
  | Error msg -> invalid_arg ("Regex parse error " ^ msg)
