(** Regular-expression abstract syntax.

    The surface language is the subset the paper's QUBO encoder targets —
    literals, character classes, [+] — extended to the operators any
    practical front-end needs ([*], [?], [|], grouping, ranges, negated
    classes, [.]). The NFA/DFA backend supports all of it; the QUBO
    unroller ({!Unroll}) accepts the product-form fragment and reports a
    clean error otherwise. *)

type t =
  | Epsilon  (** matches the empty string *)
  | Chars of Charset.t  (** one character from the set (literals included) *)
  | Concat of t list  (** sequence; [Concat \[\]] = {!Epsilon} *)
  | Alt of t list  (** alternation; must be non-empty *)
  | Star of t  (** zero or more *)
  | Plus of t  (** one or more *)
  | Opt of t  (** zero or one *)
  | Rep of t * int * int option  (** bounded repetition [r{m,n}]; [None] = unbounded *)

val literal : char -> t
val string : string -> t
(** Concatenation of literals. *)

val char_class : char list -> t
val any : t
(** [.] — any 7-bit ASCII character. *)

val equal : t -> t -> bool

val nullable : t -> bool
(** Does the language contain the empty string? *)

val min_length : t -> int
(** Length of the shortest string in the language. *)

val max_length : t -> int option
(** Length of the longest string, [None] if unbounded. *)

val pp : Format.formatter -> t -> unit
(** Re-prints in concrete syntax (parseable by {!Parser} up to
    grouping). *)

val to_string : t -> string
