(** Concrete-syntax parser for regular expressions.

    Grammar (standard precedence: alternation < concatenation < postfix):

    {v
    regex   ::= branch ('|' branch)*
    branch  ::= piece*
    piece   ::= atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
    atom    ::= literal | '.' | '(' regex ')' | class | '\' escaped
    class   ::= '[' '^'? item+ ']'      item ::= c | c '-' c | '\' escaped
    v}

    Escapes: [\n \t \r \\ \d \w \s] plus any punctuation escaping itself.
    [\d] = [0-9], [\w] = [A-Za-z0-9_], [\s] = space/tab/newline/CR. *)

val parse : string -> (Syntax.t, string) result
(** [Error msg] carries a character position. *)

val parse_exn : string -> Syntax.t
(** @raise Invalid_argument on a malformed pattern. *)
