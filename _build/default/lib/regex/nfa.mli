(** Thompson NFA construction and simulation.

    The reference semantics for the whole regex stack: the DFA is tested
    against it, and the classical string-solver baseline simulates it
    directly. States are integers; transitions are either ε or labelled
    with a character set. *)

type t

val of_syntax : Syntax.t -> t
(** Thompson construction: O(size of regex) states, one start, one
    accept. *)

val num_states : t -> int

val matches : t -> string -> bool
(** Subset simulation with ε-closure; O(|s| · states · transitions)
    worst case, no backtracking. *)

val epsilon_closure : t -> int list -> int list
(** Exposed for the DFA's subset construction. Sorted, deduplicated. *)

val step : t -> int list -> char -> int list
(** States reachable from any of the given states by consuming the
    character (before ε-closure). Sorted, deduplicated. *)

val start : t -> int
val accept : t -> int
