module Prng = Qsmt_util.Prng

(* trans.(state).(code) = next state, or -1 for the (implicit) dead
   state. 128 columns per state: the alphabet is small and fixed, dense
   rows beat transition maps. *)
type t = { trans : int array array; accepting : bool array; dfa_start : int }

let of_nfa nfa =
  let key states = String.concat "," (List.map string_of_int states) in
  let ids = Hashtbl.create 64 in
  let rows = ref [] (* (id, transitions row, accepting) in reverse id order *) in
  let counter = ref 0 in
  let rec intern states =
    let k = key states in
    match Hashtbl.find_opt ids k with
    | Some id -> id
    | None ->
      let id = !counter in
      incr counter;
      Hashtbl.add ids k id;
      let row = Array.make 128 (-1) in
      (* reserve the slot before recursing; rows are patched in place *)
      rows := (id, row, List.mem (Nfa.accept nfa) states) :: !rows;
      for code = 0 to 127 do
        let next = Nfa.epsilon_closure nfa (Nfa.step nfa states (Char.chr code)) in
        if next <> [] then row.(code) <- intern next
      done;
      id
  in
  let start_states = Nfa.epsilon_closure nfa [ Nfa.start nfa ] in
  let dfa_start = intern start_states in
  let n = !counter in
  let trans = Array.make n [||] in
  let accepting = Array.make n false in
  List.iter
    (fun (id, row, acc) ->
      trans.(id) <- row;
      accepting.(id) <- acc)
    !rows;
  { trans; accepting; dfa_start }

let of_syntax syntax = of_nfa (Nfa.of_syntax syntax)
let num_states t = Array.length t.trans
let start_state t = t.dfa_start
let is_accepting t s = t.accepting.(s)

let transition t s c =
  let next = t.trans.(s).(Char.code c) in
  if next < 0 then None else Some next

let of_raw ~trans ~accepting ~start =
  let n = Array.length trans in
  if Array.length accepting <> n then invalid_arg "Dfa.of_raw: accepting length mismatch";
  if n = 0 then invalid_arg "Dfa.of_raw: no states";
  if start < 0 || start >= n then invalid_arg "Dfa.of_raw: start out of range";
  Array.iter
    (fun row ->
      if Array.length row <> 128 then invalid_arg "Dfa.of_raw: row must have 128 entries";
      Array.iter
        (fun target ->
          if target < -1 || target >= n then invalid_arg "Dfa.of_raw: target out of range")
        row)
    trans;
  { trans = Array.map Array.copy trans; accepting = Array.copy accepting; dfa_start = start }

let matches t s =
  let state = ref t.dfa_start in
  (try
     String.iter
       (fun c ->
         state := t.trans.(!state).(Char.code c);
         if !state < 0 then raise Exit)
       s
   with Exit -> ());
  !state >= 0 && t.accepting.(!state)

(* counts.(k).(s) = number of accepted suffixes of length k from state s,
   saturating at max_int. *)
let suffix_counts t len =
  let n = num_states t in
  let counts = Array.make_matrix (len + 1) n 0 in
  for s = 0 to n - 1 do
    counts.(0).(s) <- (if t.accepting.(s) then 1 else 0)
  done;
  for k = 1 to len do
    for s = 0 to n - 1 do
      let total = ref 0 in
      for code = 0 to 127 do
        let next = t.trans.(s).(code) in
        if next >= 0 then begin
          let c = counts.(k - 1).(next) in
          total := if !total > max_int - c then max_int else !total + c
        end
      done;
      counts.(k).(s) <- !total
    done
  done;
  counts

let count_matching t ~len =
  if len < 0 then invalid_arg "Dfa.count_matching: negative length";
  (suffix_counts t len).(len).(t.dfa_start)

let enumerate ?(limit = 100) t ~len =
  if len < 0 then invalid_arg "Dfa.enumerate: negative length";
  let counts = suffix_counts t len in
  let results = ref [] and found = ref 0 in
  let buf = Bytes.create len in
  let rec go state k =
    if !found < limit then begin
      if k = len then begin
        if t.accepting.(state) then begin
          results := Bytes.to_string buf :: !results;
          incr found
        end
      end
      else
        for code = 0 to 127 do
          let next = t.trans.(state).(code) in
          if next >= 0 && counts.(len - k - 1).(next) > 0 && !found < limit then begin
            Bytes.set buf k (Char.chr code);
            go next (k + 1)
          end
        done
    end
  in
  go t.dfa_start 0;
  List.rev !results

let sample t ~len ~rng =
  if len < 0 then invalid_arg "Dfa.sample: negative length";
  let counts = suffix_counts t len in
  if counts.(len).(t.dfa_start) = 0 then None
  else begin
    let buf = Bytes.create len in
    let state = ref t.dfa_start in
    for k = 0 to len - 1 do
      let remaining = len - k in
      (* weighted choice over next characters by suffix count *)
      let total = counts.(remaining).(!state) in
      let target = if total = max_int then Prng.int rng max_int else Prng.int rng total in
      let acc = ref 0 and chosen = ref (-1) in
      let code = ref 0 in
      while !chosen < 0 && !code < 128 do
        let next = t.trans.(!state).(!code) in
        if next >= 0 then begin
          let c = counts.(remaining - 1).(next) in
          if c > 0 then begin
            acc := if !acc > max_int - c then max_int else !acc + c;
            if target < !acc then chosen := !code
          end
        end;
        incr code
      done;
      (* counts said there is at least one suffix, so a char was found *)
      assert (!chosen >= 0);
      Bytes.set buf k (Char.chr !chosen);
      state := t.trans.(!state).(!chosen)
    done;
    Some (Bytes.to_string buf)
  end

let restrict t allowed =
  let n = num_states t in
  let trans =
    Array.init n (fun s ->
        Array.init 128 (fun code ->
            if Charset.mem (Char.chr code) allowed then t.trans.(s).(code) else -1))
  in
  { trans; accepting = Array.copy t.accepting; dfa_start = t.dfa_start }

let accepts_nothing t =
  (* reachable accepting state? *)
  let n = num_states t in
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add t.dfa_start queue;
  seen.(t.dfa_start) <- true;
  let found = ref false in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    if t.accepting.(s) then found := true;
    Array.iter
      (fun next ->
        if next >= 0 && not seen.(next) then begin
          seen.(next) <- true;
          Queue.add next queue
        end)
      t.trans.(s)
  done;
  not !found
