(** DFA minimization (Hopcroft partition refinement).

    Subset construction can produce many redundant states; minimizing
    before the SAT bit-blaster's unrolled-automaton encoding shrinks its
    CNF by a factor of [states_before / states_after] per position, and
    the canonical minimal DFA also gives a decidable language-equivalence
    check used by the property tests. *)

val minimize : Dfa.t -> Dfa.t
(** Language-preserving; the result has the minimum number of states for
    the language (unreachable states dropped, equivalent states merged,
    dead states left implicit). *)

val equivalent : Dfa.t -> Dfa.t -> bool
(** Do two DFAs accept the same language? Decided by product-construction
    search for a distinguishing state pair (no minimization needed). *)
