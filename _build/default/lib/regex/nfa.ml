type transition = Eps of int | On of Charset.t * int

type t = { num_states : int; start : int; accept : int; out : transition list array }

(* Thompson construction: every sub-automaton has exactly one start and
   one accept state, freshly allocated. *)
let of_syntax syntax =
  let transitions = ref [] in
  let counter = ref 0 in
  let fresh () =
    let s = !counter in
    incr counter;
    s
  in
  let edge src t = transitions := (src, t) :: !transitions in
  let rec build = function
    | Syntax.Epsilon ->
      let s = fresh () and a = fresh () in
      edge s (Eps a);
      (s, a)
    | Syntax.Chars set ->
      let s = fresh () and a = fresh () in
      edge s (On (set, a));
      (s, a)
    | Syntax.Concat parts ->
      let s = fresh () and a = fresh () in
      let last =
        List.fold_left
          (fun prev part ->
            let ps, pa = build part in
            edge prev (Eps ps);
            pa)
          s parts
      in
      edge last (Eps a);
      (s, a)
    | Syntax.Alt parts ->
      let s = fresh () and a = fresh () in
      List.iter
        (fun part ->
          let ps, pa = build part in
          edge s (Eps ps);
          edge pa (Eps a))
        parts;
      (s, a)
    | Syntax.Star r ->
      let s = fresh () and a = fresh () in
      let rs, ra = build r in
      edge s (Eps rs);
      edge s (Eps a);
      edge ra (Eps rs);
      edge ra (Eps a);
      (s, a)
    | Syntax.Plus r ->
      let s = fresh () and a = fresh () in
      let rs, ra = build r in
      edge s (Eps rs);
      edge ra (Eps rs);
      edge ra (Eps a);
      (s, a)
    | Syntax.Opt r ->
      let s = fresh () and a = fresh () in
      let rs, ra = build r in
      edge s (Eps rs);
      edge s (Eps a);
      edge ra (Eps a);
      (s, a)
    | Syntax.Rep (r, lo, hi) ->
      (* unroll: lo mandatory copies, then (hi - lo) optional copies or a
         trailing star when unbounded *)
      let mandatory = List.init lo (fun _ -> r) in
      let tail =
        match hi with
        | None -> [ Syntax.Star r ]
        | Some hi ->
          if hi < lo then invalid_arg "Nfa: Rep upper bound below lower bound";
          List.init (hi - lo) (fun _ -> Syntax.Opt r)
      in
      build (Syntax.Concat (mandatory @ tail))
  in
  let start, accept = build syntax in
  let out = Array.make !counter [] in
  List.iter (fun (src, t) -> out.(src) <- t :: out.(src)) !transitions;
  { num_states = !counter; start; accept; out }

let num_states t = t.num_states
let start t = t.start
let accept t = t.accept

let epsilon_closure t states =
  let seen = Array.make t.num_states false in
  let stack = ref states in
  List.iter (fun s -> seen.(s) <- true) states;
  let result = ref [] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      result := s :: !result;
      List.iter
        (function
          | Eps target when not seen.(target) ->
            seen.(target) <- true;
            stack := target :: !stack
          | Eps _ | On _ -> ())
        t.out.(s)
  done;
  List.sort_uniq compare !result

let step t states c =
  let targets = ref [] in
  List.iter
    (fun s ->
      List.iter
        (function
          | On (set, target) when Charset.mem c set -> targets := target :: !targets
          | On _ | Eps _ -> ())
        t.out.(s))
    states;
  List.sort_uniq compare !targets

let matches t s =
  let current = ref (epsilon_closure t [ t.start ]) in
  (try
     String.iter
       (fun c ->
         current := epsilon_closure t (step t !current c);
         if !current = [] then raise Exit)
       s
   with Exit -> ());
  List.mem t.accept !current
