(** Deterministic finite automata over 7-bit ASCII.

    Built from an {!Nfa} by subset construction. Besides matching, the
    DFA supports the counting and sampling queries the experiment harness
    needs: how many strings of length [n] match (dynamic programming over
    states), uniform sampling of a matching string, and enumeration — the
    classical reference against which annealer outputs are judged. *)

type t

val of_nfa : Nfa.t -> t
val of_syntax : Syntax.t -> t

val num_states : t -> int
val matches : t -> string -> bool

val start_state : t -> int
val is_accepting : t -> int -> bool

val transition : t -> int -> char -> int option
(** [transition t s c] is the successor state, [None] for the implicit
    dead state. Exposed for the SAT bit-blaster's unrolled-automaton
    encoding. *)

val of_raw : trans:int array array -> accepting:bool array -> start:int -> t
(** Build a DFA directly from its transition table ([trans.(s).(code)],
    [-1] = dead). Used by {!Minimize}.
    @raise Invalid_argument on inconsistent table dimensions or
    out-of-range entries. *)

val count_matching : t -> len:int -> int
(** Number of strings of exactly [len] characters accepted. Saturates at
    [max_int] (counts grow as 128^len).
    @raise Invalid_argument if [len < 0]. *)

val enumerate : ?limit:int -> t -> len:int -> string list
(** Lexicographically first [limit] (default 100) accepted strings of the
    exact length. *)

val sample : t -> len:int -> rng:Qsmt_util.Prng.t -> string option
(** Uniformly random accepted string of the exact length, [None] if the
    language has none of that length. Uses the {!count_matching} DP
    (exact as long as counts do not saturate). *)

val restrict : t -> Charset.t -> t
(** DFA for the intersection with [allowed]* — e.g. restrict to printable
    characters before sampling. *)

val accepts_nothing : t -> bool
