(** Fixed-length unrolling of product-form regexes.

    The paper's QUBO encoder (§4.11) needs a regex plus a target length
    to yield an independent character set per string position — every
    combination of choices must match. That holds exactly for the
    "product-form" fragment: a concatenation of single-character items
    (literal, class, [.]), each optionally repeated by [+], [*] or [?].
    [a\[bc\]+] at length 5 unrolls to [a], then four positions of
    [\[bc\]] — the paper's own example.

    Repetition slack is distributed greedily left to right (the first
    expandable item absorbs as much as possible), which is deterministic
    and documented so experiments are reproducible. *)

type item = {
  set : Charset.t;  (** characters this item may produce *)
  min_reps : int;  (** 1 for bare / [+], 0 for [*] / [?] *)
  max_reps : int option;  (** [Some 1] for bare / [?], [None] for [+] / [*] *)
}

val items_of_syntax : Syntax.t -> (item list, string) result
(** Flattens a product-form regex; [Error] names the offending construct
    (alternation, grouped repetition, nested repetition of non-atoms). *)

val to_position_sets : Syntax.t -> len:int -> (Charset.t array, string) result
(** [to_position_sets r ~len] is the per-position character sets of the
    length-[len] unrolling, or [Error] if the regex is not product-form
    or admits no string of that length. The empty-set-free array has
    exactly [len] entries; choosing any member at each position yields a
    string matching [r]. *)

val pp_item : Format.formatter -> item -> unit
