(** Sets of 7-bit ASCII characters.

    The alphabet everywhere in this library is the 7-bit ASCII range the
    paper's encoding supports (codes 0-127). Implemented as a two-word
    bitset, so union/intersection/membership are a few machine
    operations — these sit in the DFA construction inner loop. *)

type t

val empty : t
val full : t
(** All 128 characters. *)

val printable : t
(** Codes 32-126. *)

val singleton : char -> t
val of_list : char list -> t
val of_range : char -> char -> t
(** [of_range lo hi] is inclusive.
    @raise Invalid_argument if [lo > hi]. *)

val of_string : string -> t
(** Set of the string's characters. *)

val mem : char -> t -> bool
val add : char -> t -> t
val remove : char -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
(** With respect to {!full}. *)

val is_empty : t -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val choose : t -> char option
(** Smallest member. *)

val to_list : t -> char list
(** Ascending. *)

val iter : (char -> unit) -> t -> unit
val fold : (char -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (char -> bool) -> t -> bool

val pp : Format.formatter -> t -> unit
(** Compact rendering, e.g. [\[a-c x\]]. *)
