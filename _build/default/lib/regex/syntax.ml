type t =
  | Epsilon
  | Chars of Charset.t
  | Concat of t list
  | Alt of t list
  | Star of t
  | Plus of t
  | Opt of t
  | Rep of t * int * int option

let literal c = Chars (Charset.singleton c)
let string s = Concat (List.map literal (List.init (String.length s) (String.get s)))
let char_class chars = Chars (Charset.of_list chars)
let any = Chars Charset.full

let rec equal a b =
  match (a, b) with
  | Epsilon, Epsilon -> true
  | Chars x, Chars y -> Charset.equal x y
  | Concat xs, Concat ys | Alt xs, Alt ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Star x, Star y | Plus x, Plus y | Opt x, Opt y -> equal x y
  | Rep (x, a, b), Rep (y, c, d) -> a = c && b = d && equal x y
  | (Epsilon | Chars _ | Concat _ | Alt _ | Star _ | Plus _ | Opt _ | Rep _), _ -> false

let rec nullable = function
  | Epsilon -> true
  | Chars _ -> false
  | Concat parts -> List.for_all nullable parts
  | Alt parts -> List.exists nullable parts
  | Star _ | Opt _ -> true
  | Plus r -> nullable r
  | Rep (r, lo, _) -> lo = 0 || nullable r

let rec min_length = function
  | Epsilon -> 0
  | Chars _ -> 1
  | Concat parts -> List.fold_left (fun acc r -> acc + min_length r) 0 parts
  | Alt parts -> List.fold_left (fun acc r -> min acc (min_length r)) max_int parts
  | Star _ | Opt _ -> 0
  | Plus r -> min_length r
  | Rep (r, lo, _) -> lo * min_length r

let rec max_length = function
  | Epsilon -> Some 0
  | Chars _ -> Some 1
  | Concat parts ->
    List.fold_left
      (fun acc r ->
        match (acc, max_length r) with Some a, Some b -> Some (a + b) | _, _ -> None)
      (Some 0) parts
  | Alt parts ->
    List.fold_left
      (fun acc r ->
        match (acc, max_length r) with Some a, Some b -> Some (max a b) | _, _ -> None)
      (Some 0) parts
  | Star r | Plus r -> ( match max_length r with Some 0 -> Some 0 | _ -> None)
  | Opt r -> max_length r
  | Rep (_, _, None) -> None
  | Rep (r, _, Some hi) -> ( match max_length r with Some m -> Some (hi * m) | None -> None)

let needs_group = function
  | Alt (_ :: _ :: _) | Concat (_ :: _ :: _) -> true
  | Epsilon | Chars _ | Concat ([] | [ _ ]) | Alt ([] | [ _ ]) | Star _ | Plus _ | Opt _ | Rep _
    ->
    false

let escape_literal c =
  match c with
  | '(' | ')' | '[' | ']' | '{' | '}' | '*' | '+' | '?' | '|' | '.' | '\\' | '^' | '$' ->
    Printf.sprintf "\\%c" c
  | _ -> String.make 1 c

let pp_charset_concrete ppf set =
  match Charset.to_list set with
  | [ c ] -> Format.pp_print_string ppf (escape_literal c)
  | _ when Charset.equal set Charset.full -> Format.pp_print_char ppf '.'
  | chars ->
    Format.pp_print_char ppf '[';
    List.iter
      (fun c ->
        match c with
        | ']' | '\\' | '^' | '-' -> Format.fprintf ppf "\\%c" c
        | _ -> Format.pp_print_char ppf c)
      chars;
    Format.pp_print_char ppf ']'

let rec pp ppf = function
  | Epsilon -> ()
  | Chars set -> pp_charset_concrete ppf set
  | Concat parts -> List.iter (pp_grouped_if_alt ppf) parts
  | Alt [] -> ()
  | Alt (first :: rest) ->
    pp ppf first;
    List.iter (fun r -> Format.fprintf ppf "|%a" pp r) rest
  | Star r -> pp_postfix ppf r '*'
  | Plus r -> pp_postfix ppf r '+'
  | Opt r -> pp_postfix ppf r '?'
  | Rep (r, lo, hi) ->
    let braces =
      match hi with
      | Some hi when hi = lo -> Printf.sprintf "{%d}" lo
      | Some hi -> Printf.sprintf "{%d,%d}" lo hi
      | None -> Printf.sprintf "{%d,}" lo
    in
    if needs_group r then Format.fprintf ppf "(%a)%s" pp r braces
    else Format.fprintf ppf "%a%s" pp r braces

and pp_grouped_if_alt ppf r =
  match r with Alt (_ :: _ :: _) -> Format.fprintf ppf "(%a)" pp r | _ -> pp ppf r

and pp_postfix ppf r op =
  if needs_group r then Format.fprintf ppf "(%a)%c" pp r op
  else Format.fprintf ppf "%a%c" pp r op

let to_string r = Format.asprintf "%a" pp r
