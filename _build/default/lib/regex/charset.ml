(* Two 64-bit words cover codes 0..127. word 0 holds codes 0-63. *)
type t = { lo : int64; hi : int64 }

let empty = { lo = 0L; hi = 0L }
let full = { lo = -1L; hi = -1L }

let check c =
  let code = Char.code c in
  if code > 127 then invalid_arg (Printf.sprintf "Charset: %C is not 7-bit ASCII" c);
  code

let singleton c =
  let code = check c in
  if code < 64 then { lo = Int64.shift_left 1L code; hi = 0L }
  else { lo = 0L; hi = Int64.shift_left 1L (code - 64) }

let mem c t =
  let code = check c in
  if code < 64 then Int64.logand t.lo (Int64.shift_left 1L code) <> 0L
  else Int64.logand t.hi (Int64.shift_left 1L (code - 64)) <> 0L

let union a b = { lo = Int64.logor a.lo b.lo; hi = Int64.logor a.hi b.hi }
let inter a b = { lo = Int64.logand a.lo b.lo; hi = Int64.logand a.hi b.hi }

let diff a b =
  { lo = Int64.logand a.lo (Int64.lognot b.lo); hi = Int64.logand a.hi (Int64.lognot b.hi) }

let complement t = diff full t
let add c t = union (singleton c) t
let remove c t = diff t (singleton c)
let is_empty t = t.lo = 0L && t.hi = 0L

let popcount64 x =
  let rec loop x acc = if x = 0L then acc else loop (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
  loop x 0

let cardinal t = popcount64 t.lo + popcount64 t.hi
let equal a b = a.lo = b.lo && a.hi = b.hi
let compare a b = Stdlib.compare (a.lo, a.hi) (b.lo, b.hi)

let of_list chars = List.fold_left (fun acc c -> add c acc) empty chars

let of_range lo hi =
  if lo > hi then invalid_arg "Charset.of_range: lo > hi";
  let acc = ref empty in
  for code = Char.code lo to Char.code hi do
    acc := add (Char.chr code) !acc
  done;
  !acc

let of_string s = String.fold_left (fun acc c -> add c acc) empty s
let printable = of_range ' ' '~'

let fold f t acc =
  let acc = ref acc in
  for code = 0 to 127 do
    let c = Char.chr code in
    if mem c t then acc := f c !acc
  done;
  !acc

let iter f t = fold (fun c () -> f c) t ()
let to_list t = List.rev (fold (fun c acc -> c :: acc) t [])
let choose t = match to_list t with [] -> None | c :: _ -> Some c
let for_all p t = fold (fun c acc -> acc && p c) t true

let pp ppf t =
  (* Render as ranges: [a-c x 0-9]. *)
  let chars = to_list t in
  let rec ranges = function
    | [] -> []
    | c :: rest ->
      let rec extend last = function
        | d :: more when Char.code d = Char.code last + 1 -> extend d more
        | remaining -> (last, remaining)
      in
      let last, remaining = extend c rest in
      (c, last) :: ranges remaining
  in
  let render (a, b) =
    if a = b then Printf.sprintf "%c" a
    else if Char.code b = Char.code a + 1 then Printf.sprintf "%c%c" a b
    else Printf.sprintf "%c-%c" a b
  in
  Format.fprintf ppf "[%s]" (String.concat " " (List.map render (ranges chars)))
