lib/regex/minimize.ml: Array Char Dfa Hashtbl Queue
