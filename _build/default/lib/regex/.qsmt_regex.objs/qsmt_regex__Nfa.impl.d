lib/regex/nfa.ml: Array Charset List String Syntax
