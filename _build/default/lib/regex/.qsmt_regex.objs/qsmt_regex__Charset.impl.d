lib/regex/charset.ml: Char Format Int64 List Printf Stdlib String
