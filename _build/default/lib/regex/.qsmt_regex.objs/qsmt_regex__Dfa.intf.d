lib/regex/dfa.mli: Charset Nfa Qsmt_util Syntax
