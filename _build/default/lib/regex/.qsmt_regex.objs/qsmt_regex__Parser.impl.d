lib/regex/parser.ml: Char Charset List Printf String Syntax
