lib/regex/dfa.ml: Array Bytes Char Charset Hashtbl List Nfa Qsmt_util Queue String
