lib/regex/parser.mli: Syntax
