lib/regex/unroll.ml: Array Charset Format List Printf Syntax
