lib/regex/minimize.mli: Dfa
