lib/regex/unroll.mli: Charset Format Syntax
