lib/regex/syntax.ml: Charset Format List Printf String
