lib/regex/syntax.mli: Charset Format
