(* Moore-style partition refinement. Hopcroft's worklist optimization is
   unnecessary at our sizes (tens of states, 128 symbols); the O(n^2 * sigma)
   refinement below is simpler to audit. The implicit dead state
   participates as class -1 so states differing only in definedness
   split correctly. *)

let reachable_states dfa =
  let n = Dfa.num_states dfa in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let start = Dfa.start_state dfa in
  seen.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    for code = 0 to 127 do
      match Dfa.transition dfa s (Char.chr code) with
      | Some target when not seen.(target) ->
        seen.(target) <- true;
        Queue.add target queue
      | Some _ | None -> ()
    done
  done;
  seen

let minimize dfa =
  let n = Dfa.num_states dfa in
  let reachable = reachable_states dfa in
  (* class of each state; unreachable states are parked in class of the
     dead state (-1) and never emitted *)
  let cls = Array.make n 0 in
  for s = 0 to n - 1 do
    cls.(s) <- (if (not reachable.(s)) then -1 else if Dfa.is_accepting dfa s then 1 else 0)
  done;
  let class_of s = if s < 0 then -1 else cls.(s) in
  let changed = ref true in
  let num_classes = ref 2 in
  while !changed do
    changed := false;
    (* signature: own class + successor classes on every symbol *)
    let signature s =
      let sig_ = Array.make 129 0 in
      sig_.(0) <- cls.(s);
      for code = 0 to 127 do
        sig_.(code + 1) <-
          (match Dfa.transition dfa s (Char.chr code) with Some t -> class_of t | None -> -1)
      done;
      sig_
    in
    let table = Hashtbl.create 16 in
    let next_cls = Array.make n (-1) in
    let next_count = ref 0 in
    for s = 0 to n - 1 do
      if reachable.(s) then begin
        let key = signature s in
        match Hashtbl.find_opt table key with
        | Some c -> next_cls.(s) <- c
        | None ->
          Hashtbl.add table key !next_count;
          next_cls.(s) <- !next_count;
          incr next_count
      end
    done;
    if !next_count <> !num_classes then changed := true;
    for s = 0 to n - 1 do
      if reachable.(s) && cls.(s) <> next_cls.(s) then begin
        cls.(s) <- next_cls.(s);
        changed := true
      end
    done;
    num_classes := !next_count
  done;
  (* rebuild: one representative per class *)
  let k = !num_classes in
  let repr = Array.make k (-1) in
  for s = n - 1 downto 0 do
    if reachable.(s) then repr.(cls.(s)) <- s
  done;
  let trans =
    Array.init k (fun c ->
        Array.init 128 (fun code ->
            match Dfa.transition dfa repr.(c) (Char.chr code) with
            | Some t -> cls.(t)
            | None -> -1))
  in
  let accepting = Array.init k (fun c -> Dfa.is_accepting dfa repr.(c)) in
  Dfa.of_raw ~trans ~accepting ~start:cls.(Dfa.start_state dfa)

let equivalent a b =
  (* BFS over reachable pairs of the product automaton, dead state = -1;
     a distinguishing pair has differing acceptance. *)
  let accept dfa s = s >= 0 && Dfa.is_accepting dfa s in
  let step dfa s c =
    if s < 0 then -1 else match Dfa.transition dfa s c with Some t -> t | None -> -1
  in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let start = (Dfa.start_state a, Dfa.start_state b) in
  Hashtbl.replace seen start ();
  Queue.add start queue;
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let sa, sb = Queue.pop queue in
    if accept a sa <> accept b sb then ok := false
    else
      for code = 0 to 127 do
        let c = Char.chr code in
        let pair = (step a sa c, step b sb c) in
        if pair <> (-1, -1) && not (Hashtbl.mem seen pair) then begin
          Hashtbl.replace seen pair ();
          Queue.add pair queue
        end
      done
  done;
  !ok
