(** Assertion compiler: SMT-LIB assertions → annealer constraints.

    The generative fragment this solver handles mirrors the paper: one
    unknown at a time, with the assertions pinning down what to generate.
    The compiler folds ground subterms with {!Eval}, gathers per-variable
    facts (equality target, length, containment, forced index, regex
    membership, palindromicity), and emits one {!Qsmt_strtheory.Constr.t}:

    - an equality target wins outright (other facts are checked
      classically against it — a contradiction is [Unsat]);
    - [str.in_re] + a length → [Regex] (infeasible lengths are detected
      with the DFA counting oracle and reported [Unsat]);
    - [(= (str.indexof x sub 0) i)] + length → [Index_of];
    - [str.contains] + length → [Contains];
    - [str.prefixof] / [str.suffixof] (ground prefix/suffix) + length →
      [Index_of] at position 0 / [length − |suffix|];
    - [str.palindrome] + length → [Palindrome];
    - several of the above on one variable → a joint conjunction solved
      over one merged QUBO ({!Qsmt_strtheory.Joint});
    - a length alone → [Regex .*] at that length (any string);
    - an Int unknown bound to [str.indexof] of two literals → the
      {!Qsmt_strtheory.Constr.Includes} position search.

    Anything else is [Unsupported] — reported as [unknown], never as a
    wrong answer. *)

type problem =
  | Trivial of bool  (** no unknowns in any assertion: sat/unsat by evaluation *)
  | Solved of { var : string; value : Eval.value }
      (** the unknown is classically forced (e.g. [str.indexof] with no
          occurrence forces −1, which the QUBO formulation cannot
          express) *)
  | Generate of { var : string; constr : Qsmt_strtheory.Constr.t }
      (** produce a string for [var] *)
  | Generate_joint of { var : string; conjuncts : Qsmt_strtheory.Constr.t list }
      (** several same-length facts on one variable: solved with the
          joint (merged-QUBO) encoding, {!Qsmt_strtheory.Joint} *)
  | Locate of { var : string; constr : Qsmt_strtheory.Constr.t }
      (** produce a position for the Int unknown [var] (Includes) *)

val compile : Typecheck.env -> Ast.term list -> (problem, string) result
(** [Error] means unsupported (the caller should answer [unknown]), not
    unsat. *)
