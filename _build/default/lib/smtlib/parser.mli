(** Sexp → AST translation for SMT-LIB scripts. *)

val term_of_sexp : Sexp.t -> (Ast.term, string) result
val command_of_sexp : Sexp.t -> (Ast.command, string) result

val parse_script : string -> (Ast.command list, string) result
(** Lexes and parses a whole script. *)
