type t = Atom of string | String of string | List of t list

exception Error of int * string (* line, message *)

type state = { input : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | Some _ | None -> ());
  st.pos <- st.pos + 1

let fail st msg = raise (Error (st.line, msg))

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_trivia st
  | Some ';' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some _ | None -> ()

let is_symbol_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '~' | '!' | '@' | '$' | '%' | '^' | '&' | '*' | '_' | '-' | '+' | '=' | '<' | '>' | '.' | '?'
  | '/' | ':' ->
    true
  | _ -> false

let parse_string_lit st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some '"' ->
      advance st;
      (* doubled quote is an escaped quote *)
      if peek st = Some '"' then begin
        Buffer.add_char buf '"';
        advance st;
        go ()
      end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  String (Buffer.contents buf)

let parse_quoted_symbol st =
  advance st (* opening pipe *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated |symbol|"
    | Some '|' -> advance st
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Atom (Buffer.contents buf)

let rec parse_expr st =
  skip_trivia st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '(' ->
    advance st;
    let rec items acc =
      skip_trivia st;
      match peek st with
      | None -> fail st "unclosed ("
      | Some ')' ->
        advance st;
        List (List.rev acc)
      | Some _ -> items (parse_expr st :: acc)
    in
    items []
  | Some ')' -> fail st "unmatched )"
  | Some '"' -> parse_string_lit st
  | Some '|' -> parse_quoted_symbol st
  | Some c when is_symbol_char c ->
    let buf = Buffer.create 8 in
    let rec go () =
      match peek st with
      | Some c when is_symbol_char c ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | Some _ | None -> ()
    in
    go ();
    Atom (Buffer.contents buf)
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let parse_all input =
  let st = { input; pos = 0; line = 1 } in
  let rec go acc =
    skip_trivia st;
    if st.pos >= String.length input then Ok (List.rev acc)
    else begin
      match parse_expr st with
      | expr -> go (expr :: acc)
      | exception Error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
    end
  in
  go []

let parse_one input =
  match parse_all input with
  | Error _ as e -> e
  | Ok [ e ] -> Ok e
  | Ok [] -> Error "empty input"
  | Ok _ -> Error "expected exactly one expression"

let rec pp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | String s ->
    let escaped = String.concat "\"\"" (String.split_on_char '"' s) in
    Format.fprintf ppf "\"%s\"" escaped
  | List items ->
    Format.pp_print_char ppf '(';
    List.iteri
      (fun i item ->
        if i > 0 then Format.pp_print_char ppf ' ';
        pp ppf item)
      items;
    Format.pp_print_char ppf ')'

let to_string e = Format.asprintf "%a" pp e
