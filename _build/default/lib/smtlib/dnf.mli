(** Boolean-structure handling: bounded DNF expansion.

    The DPLL(T) story the paper retells has the SAT engine enumerate
    boolean skeletons and a theory solver decide each conjunction of
    atoms. For the generative annealing backend the analogue is: expand
    the assertion set's [and]/[or]/[not] structure into disjunctive
    normal form, hand each cube (a conjunction of literals) to the
    constraint compiler, and answer with the first satisfiable cube.

    Expansion is bounded ([max_cubes], default 64) because DNF can blow
    up exponentially; hitting the bound is an [Error] so callers answer
    [unknown] rather than silently dropping cases. [not] is pushed
    inward over [and]/[or] (De Morgan); a negation landing on a
    non-ground atom stays as a negative literal for the caller to deal
    with (the interpreter rejects cubes containing them as unsupported,
    except ground literals which evaluate away). *)

type literal = {
  positive : bool;  (** [false] = the atom appears under an odd number of [not] *)
  atom : Ast.term;  (** an atom: any term that is not [and]/[or]/[not] *)
}

type cube = literal list
(** A conjunction of literals. *)

val expand : ?max_cubes:int -> Ast.term list -> (cube list, string) result
(** DNF of the conjunction of the given assertions. No cube is returned
    twice (syntactic dedup); an empty cube list means the formula is
    syntactically [false] (e.g. an empty [or]). *)

val cube_terms : cube -> (Ast.term list, string) result
(** The cube as plain terms, negative literals wrapped as [(not atom)].
    Ground negations evaluate away in the compiler; negated equalities
    over an unknown become verify-later disequality facts; any other
    non-ground negation makes the compiler answer unsupported. *)
