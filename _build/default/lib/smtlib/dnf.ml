let ( let* ) = Result.bind

type literal = { positive : bool; atom : Ast.term }
type cube = literal list

(* Cross product of cube lists: cubes(a AND b) = {x @ y}. *)
let product a b = List.concat_map (fun x -> List.map (fun y -> x @ y) b) a

let rec dnf ~budget polarity term =
  (* [budget] is a shared countdown of how many cubes we may produce *)
  match (term, polarity) with
  | Ast.App ("not", [ inner ]), _ -> dnf ~budget (not polarity) inner
  | Ast.App ("and", parts), true | Ast.App ("or", parts), false ->
    (* conjunction under this polarity *)
    List.fold_left
      (fun acc part ->
        let* acc = acc in
        let* cubes = dnf ~budget polarity part in
        let combined = product acc cubes in
        if List.length combined > !budget then Error "DNF expansion exceeds the cube budget"
        else Ok combined)
      (Ok [ [] ]) parts
  | Ast.App ("or", parts), true | Ast.App ("and", parts), false ->
    (* disjunction under this polarity *)
    List.fold_left
      (fun acc part ->
        let* acc = acc in
        let* cubes = dnf ~budget polarity part in
        let combined = acc @ cubes in
        if List.length combined > !budget then Error "DNF expansion exceeds the cube budget"
        else Ok combined)
      (Ok []) parts
  | Ast.Bool b, _ -> if b = polarity then Ok [ [] ] else Ok []
  | atom, _ -> Ok [ [ { positive = polarity; atom } ] ]

let expand ?(max_cubes = 64) assertions =
  let budget = ref max_cubes in
  let* cubes =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let* cubes = dnf ~budget true a in
        let combined = product acc cubes in
        if List.length combined > max_cubes then Error "DNF expansion exceeds the cube budget"
        else Ok combined)
      (Ok [ [] ]) assertions
  in
  (* syntactic dedup keeps repeated disjuncts from multiplying work *)
  let seen = Hashtbl.create 16 in
  let deduped =
    List.filter
      (fun cube ->
        let key = List.map (fun l -> (l.positive, Ast.term_to_string l.atom)) cube in
        let key = List.sort compare key in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      cubes
  in
  Ok deduped

let cube_terms cube =
  Ok
    (List.map
       (fun lit -> if lit.positive then lit.atom else Ast.App ("not", [ lit.atom ]))
       cube)
