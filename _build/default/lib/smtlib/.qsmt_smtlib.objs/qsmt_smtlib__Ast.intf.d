lib/smtlib/ast.mli: Format
