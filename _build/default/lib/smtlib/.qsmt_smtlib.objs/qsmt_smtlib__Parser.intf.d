lib/smtlib/parser.mli: Ast Sexp
