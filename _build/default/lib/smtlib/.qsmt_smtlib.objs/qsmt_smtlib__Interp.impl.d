lib/smtlib/interp.ml: Ast Compile Dnf Eval Format List Option Parser Qsmt_strtheory Result String Typecheck
