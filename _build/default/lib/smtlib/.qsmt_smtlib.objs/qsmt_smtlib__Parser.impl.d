lib/smtlib/parser.ml: Ast List Printf Result Sexp
