lib/smtlib/typecheck.mli: Ast
