lib/smtlib/ast.ml: Format List
