lib/smtlib/dnf.ml: Ast Hashtbl List Result
