lib/smtlib/typecheck.ml: Ast List Printf Result String
