lib/smtlib/eval.ml: Ast Buffer Format Fun List Printf Qsmt_regex Qsmt_strtheory Result String
