lib/smtlib/eval.mli: Ast Format Qsmt_regex
