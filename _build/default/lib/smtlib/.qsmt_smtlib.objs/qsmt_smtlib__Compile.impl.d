lib/smtlib/compile.ml: Ast Eval Hashtbl List Printf Qsmt_regex Qsmt_strtheory Result String Typecheck
