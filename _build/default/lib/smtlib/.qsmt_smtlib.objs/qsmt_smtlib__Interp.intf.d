lib/smtlib/interp.mli: Ast Eval Qsmt_anneal Qsmt_strtheory
