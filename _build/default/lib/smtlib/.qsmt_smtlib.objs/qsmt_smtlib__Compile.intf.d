lib/smtlib/compile.mli: Ast Eval Qsmt_strtheory Typecheck
