lib/smtlib/dnf.mli: Ast
