(** Ground-term evaluation (the reference semantics of the vocabulary).

    Evaluates variable-free terms: literal folding inside assertions
    ([str.++] of literals, [str.replace_all] of literals, ...), the
    [get-value] command under a model, and the trivial-satisfiability
    path of the compiler. String operations follow SMT-LIB 2.6 where it
    defines them ([str.replace] replaces the first occurrence of a whole
    substring; [str.indexof] returns −1 when absent; out-of-range
    [str.at]/[str.substr] yield [""]). *)

type value = V_str of string | V_int of int | V_bool of bool

val term : ?model:(string * value) list -> Ast.term -> (value, string) result
(** Evaluates under an optional variable assignment; unbound variables
    and RegLan-sorted terms are errors. *)

val regex : Ast.term -> (Qsmt_regex.Syntax.t, string) result
(** Interprets a ground RegLan term as a syntax tree: [str.to_re],
    [re.++], [re.union], [re.*], [re.+], [re.opt], [re.range],
    [re.allchar]. *)

val pp_value : Format.formatter -> value -> unit
(** SMT-LIB literal syntax ([""]-escaped strings, negative numerals as
    [(- n)]). *)
