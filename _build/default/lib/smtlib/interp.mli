(** SMT-LIB script interpreter.

    Executes a command list the way an SMT solver's REPL would:
    declarations build the sort environment, assertions accumulate (and
    are sort-checked on entry), [check-sat] compiles the assertion set
    and runs the annealing solver, [get-model] / [get-value] read the
    model produced by the last [check-sat]. Output is returned as lines
    (what a solver would print to stdout).

    Answer discipline: [sat] is only reported when the decoded model has
    been verified classically against every assertion; an annealer
    failure or an unsupported fragment yields [unknown], never a wrong
    [sat]/[unsat]. *)

type state

val create :
  ?params:Qsmt_strtheory.Params.t -> ?sampler:Qsmt_anneal.Sampler.t -> unit -> state
(** The sampler defaults to {!Qsmt_strtheory.Solver.default_sampler}
    with seed 0. *)

val exec : state -> Ast.command -> (string list, string) result
(** Output lines of one command. [Error] is a solver-level error
    (redeclaration, sort error, get-model before check-sat, ...). *)

val run_script : state -> Ast.command list -> (string list, string) result
(** Executes until the end or the first [Exit]; concatenates output.
    Stops at the first error. *)

val run_string :
  ?params:Qsmt_strtheory.Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  string ->
  (string list, string) result
(** Parse and run a whole script from source text. *)

val model : state -> (string * Eval.value) list option
(** Model from the last [check-sat], if it answered [sat]. *)
