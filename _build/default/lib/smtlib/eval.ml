module Syntax = Qsmt_regex.Syntax
module Charset = Qsmt_regex.Charset

let ( let* ) = Result.bind

type value = V_str of string | V_int of int | V_bool of bool

(* SMT-LIB str.replace: first occurrence of the whole substring. The
   empty pattern matches at position 0 (prepends the replacement). *)
let replace_substring ~all s pattern replacement =
  if pattern = "" then if all then replacement ^ s else replacement ^ s
  else begin
    let plen = String.length pattern in
    let buf = Buffer.create (String.length s) in
    let rec go i replaced =
      if i > String.length s - plen then Buffer.add_string buf (String.sub s i (String.length s - i))
      else if (all || not replaced) && String.sub s i plen = pattern then begin
        Buffer.add_string buf replacement;
        go (i + plen) true
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1) replaced
      end
    in
    go 0 false;
    Buffer.contents buf
  end

let index_of_from s sub start =
  if start < 0 || start > String.length s then -1
  else begin
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
    go start
  end

let rec term ?(model = []) t =
  let eval t = term ~model t in
  let str t =
    let* v = eval t in
    match v with V_str s -> Ok s | V_int _ | V_bool _ -> Error "expected a string value"
  in
  let int t =
    let* v = eval t in
    match v with V_int n -> Ok n | V_str _ | V_bool _ -> Error "expected an integer value"
  in
  let boolean t =
    let* v = eval t in
    match v with V_bool b -> Ok b | V_str _ | V_int _ -> Error "expected a boolean value"
  in
  match t with
  | Ast.Str s -> Ok (V_str s)
  | Ast.Int n -> Ok (V_int n)
  | Ast.Bool b -> Ok (V_bool b)
  | Ast.Var v -> begin
    match List.assoc_opt v model with
    | Some value -> Ok value
    | None -> Error (Printf.sprintf "cannot evaluate free variable %s" v)
  end
  | Ast.App ("str.++", args) ->
    let* parts =
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          let* s = str a in
          Ok (s :: acc))
        (Ok []) args
    in
    Ok (V_str (String.concat "" (List.rev parts)))
  | Ast.App ("str.len", [ s ]) ->
    let* s = str s in
    Ok (V_int (String.length s))
  | Ast.App ("str.replace", [ s; pat; rep ]) ->
    let* s = str s in
    let* pat = str pat in
    let* rep = str rep in
    Ok (V_str (replace_substring ~all:false s pat rep))
  | Ast.App ("str.replace_all", [ s; pat; rep ]) ->
    let* s = str s in
    let* pat = str pat in
    let* rep = str rep in
    if pat = "" then Ok (V_str s) (* SMT-LIB: replace_all with "" is identity *)
    else Ok (V_str (replace_substring ~all:true s pat rep))
  | Ast.App ("str.contains", [ s; sub ]) ->
    let* s = str s in
    let* sub = str sub in
    Ok (V_bool (index_of_from s sub 0 >= 0))
  | Ast.App ("str.prefixof", [ pre; s ]) ->
    let* pre = str pre in
    let* s = str s in
    Ok
      (V_bool
         (String.length pre <= String.length s && String.sub s 0 (String.length pre) = pre))
  | Ast.App ("str.suffixof", [ suf; s ]) ->
    let* suf = str suf in
    let* s = str s in
    let ls = String.length s and lf = String.length suf in
    Ok (V_bool (lf <= ls && String.sub s (ls - lf) lf = suf))
  | Ast.App ("str.indexof", [ s; sub; start ]) ->
    let* s = str s in
    let* sub = str sub in
    let* start = int start in
    Ok (V_int (index_of_from s sub start))
  | Ast.App ("str.at", [ s; i ]) ->
    let* s = str s in
    let* i = int i in
    if i >= 0 && i < String.length s then Ok (V_str (String.make 1 s.[i])) else Ok (V_str "")
  | Ast.App ("str.substr", [ s; i; len ]) ->
    let* s = str s in
    let* i = int i in
    let* len = int len in
    if i < 0 || len < 0 || i >= String.length s then Ok (V_str "")
    else Ok (V_str (String.sub s i (min len (String.length s - i))))
  | Ast.App ("str.rev", [ s ]) ->
    let* s = str s in
    Ok (V_str (Qsmt_strtheory.Semantics.reverse s))
  | Ast.App ("str.palindrome", [ s ]) ->
    let* s = str s in
    Ok (V_bool (Qsmt_strtheory.Semantics.is_palindrome s))
  | Ast.App ("str.in_re", [ s; re ]) ->
    let* s = str s in
    let* syntax = regex re in
    Ok (V_bool (Qsmt_regex.Dfa.matches (Qsmt_regex.Dfa.of_syntax syntax) s))
  | Ast.App ("=", [ a; b ]) ->
    let* va = eval a in
    let* vb = eval b in
    Ok (V_bool (va = vb))
  | Ast.App ("and", args) ->
    let* bools =
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          let* b = boolean a in
          Ok (b :: acc))
        (Ok []) args
    in
    Ok (V_bool (List.for_all Fun.id bools))
  | Ast.App ("or", args) ->
    let* bools =
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          let* b = boolean a in
          Ok (b :: acc))
        (Ok []) args
    in
    Ok (V_bool (List.exists Fun.id bools))
  | Ast.App ("not", [ a ]) ->
    let* b = boolean a in
    Ok (V_bool (not b))
  | Ast.App (op, _) -> Error (Printf.sprintf "cannot evaluate operator %s" op)

and regex t =
  let all kids =
    List.fold_left
      (fun acc k ->
        let* acc = acc in
        let* r = regex k in
        Ok (r :: acc))
      (Ok []) kids
    |> Result.map List.rev
  in
  match t with
  | Ast.App ("str.to_re", [ Ast.Str s ]) -> Ok (Syntax.string s)
  | Ast.App ("re.++", kids) ->
    let* rs = all kids in
    Ok (Syntax.Concat rs)
  | Ast.App ("re.union", kids) ->
    let* rs = all kids in
    Ok (Syntax.Alt rs)
  | Ast.App ("re.*", [ k ]) ->
    let* r = regex k in
    Ok (Syntax.Star r)
  | Ast.App ("re.+", [ k ]) ->
    let* r = regex k in
    Ok (Syntax.Plus r)
  | Ast.App ("re.opt", [ k ]) ->
    let* r = regex k in
    Ok (Syntax.Opt r)
  | Ast.App ("re.range", [ Ast.Str lo; Ast.Str hi ]) ->
    if String.length lo = 1 && String.length hi = 1 && lo.[0] <= hi.[0] then
      Ok (Syntax.Chars (Charset.of_range lo.[0] hi.[0]))
    else Error "re.range expects single-character bounds with lo <= hi"
  | Ast.App ("re.loop", [ Ast.Int lo; Ast.Int hi; k ]) ->
    if lo < 0 || hi < lo then Error "re.loop expects 0 <= lo <= hi"
    else
      let* r = regex k in
      Ok (Syntax.Rep (r, lo, Some hi))
  | Ast.App ("re.allchar", []) -> Ok Syntax.any
  | _ -> Error (Printf.sprintf "unsupported RegLan term %s" (Ast.term_to_string t))

let pp_value ppf = function
  | V_str s ->
    let escaped = String.concat "\"\"" (String.split_on_char '"' s) in
    Format.fprintf ppf "\"%s\"" escaped
  | V_int n -> if n < 0 then Format.fprintf ppf "(- %d)" (-n) else Format.pp_print_int ppf n
  | V_bool b -> Format.pp_print_bool ppf b
