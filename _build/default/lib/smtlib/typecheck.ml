let ( let* ) = Result.bind

type env = (string * Ast.sort) list (* newest last *)

let empty_env = []

let declare env name sort =
  if List.mem_assoc name env then Error (Printf.sprintf "constant %s already declared" name)
  else Ok (env @ [ (name, sort) ])

let lookup env name = List.assoc_opt name env
let declared env = env

let known_extensions = [ "str.rev"; "str.palindrome" ]

open Ast

(* (argument sorts, result). Variadic operators are special-cased. *)
let fixed_signature = function
  | "str.len" -> Some ([ S_string ], S_int)
  | "str.replace" | "str.replace_all" -> Some ([ S_string; S_string; S_string ], S_string)
  | "str.contains" | "str.prefixof" | "str.suffixof" -> Some ([ S_string; S_string ], S_bool)
  | "str.indexof" -> Some ([ S_string; S_string; S_int ], S_int)
  | "str.at" -> Some ([ S_string; S_int ], S_string)
  | "str.substr" -> Some ([ S_string; S_int; S_int ], S_string)
  | "str.in_re" -> Some ([ S_string; S_reglan ], S_bool)
  | "str.to_re" -> Some ([ S_string ], S_reglan)
  | "re.range" -> Some ([ S_string; S_string ], S_reglan)
  | "re.loop" -> Some ([ S_int; S_int; S_reglan ], S_reglan)
  | "re.*" | "re.+" | "re.opt" -> Some ([ S_reglan ], S_reglan)
  | "re.allchar" -> Some ([], S_reglan)
  | "str.rev" -> Some ([ S_string ], S_string)
  | "str.palindrome" -> Some ([ S_string ], S_bool)
  | "not" -> Some ([ S_bool ], S_bool)
  | _ -> None

let rec sort_of_term env term =
  match term with
  | Var v -> begin
    match lookup env v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "undeclared constant %s" v)
  end
  | Str _ -> Ok S_string
  | Int _ -> Ok S_int
  | Bool _ -> Ok S_bool
  | App (op, args) -> sort_of_app env op args

and sorts_of env args =
  List.fold_left
    (fun acc arg ->
      let* acc = acc in
      let* s = sort_of_term env arg in
      Ok (s :: acc))
    (Ok []) args
  |> Result.map List.rev

and sort_of_app env op args =
  let mismatch expected =
    Error
      (Printf.sprintf "%s expects (%s), got %s" op
         (String.concat " " (List.map string_of_sort expected))
         (term_to_string (App (op, args))))
  in
  match op with
  | "str.++" ->
    let* sorts = sorts_of env args in
    if args = [] then Error "str.++ needs at least one argument"
    else if List.for_all (fun s -> s = S_string) sorts then Ok S_string
    else mismatch (List.map (fun _ -> S_string) args)
  | "re.++" | "re.union" ->
    let* sorts = sorts_of env args in
    if args = [] then Error (op ^ " needs at least one argument")
    else if List.for_all (fun s -> s = S_reglan) sorts then Ok S_reglan
    else mismatch (List.map (fun _ -> S_reglan) args)
  | "and" | "or" ->
    let* sorts = sorts_of env args in
    if List.for_all (fun s -> s = S_bool) sorts then Ok S_bool
    else mismatch (List.map (fun _ -> S_bool) args)
  | "=" -> begin
    let* sorts = sorts_of env args in
    match sorts with
    | [ a; b ] when a = b -> Ok S_bool
    | [ _; _ ] -> Error (Printf.sprintf "= applied to different sorts in %s" (term_to_string (App (op, args))))
    | _ -> Error "= expects exactly two arguments"
  end
  | _ -> begin
    match fixed_signature op with
    | None -> Error (Printf.sprintf "unknown operator %s" op)
    | Some (expected, result) ->
      let* sorts = sorts_of env args in
      if sorts = expected then Ok result else mismatch expected
  end

let check_assertion env term =
  let* sort = sort_of_term env term in
  if sort = S_bool then Ok ()
  else Error (Printf.sprintf "assertion is %s, expected Bool: %s" (string_of_sort sort) (term_to_string term))
