(** Sort checking for the supported operator vocabulary.

    Implements the SMT-LIB Strings signatures for the operators the
    compiler understands, plus the two paper extensions. Unknown
    operators and arity/sort mismatches are reported with the offending
    term. *)

type env
(** Declared constants and their sorts. *)

val empty_env : env
val declare : env -> string -> Ast.sort -> (env, string) result
(** Rejects redeclaration. *)

val lookup : env -> string -> Ast.sort option
val declared : env -> (string * Ast.sort) list
(** In declaration order. *)

val sort_of_term : env -> Ast.term -> (Ast.sort, string) result

val check_assertion : env -> Ast.term -> (unit, string) result
(** The term must sort-check to [Bool]. *)

val known_extensions : string list
(** Non-standard operators this implementation adds: [str.rev],
    [str.palindrome]. *)
