module Constr = Qsmt_strtheory.Constr
module Semantics = Qsmt_strtheory.Semantics
module Syntax = Qsmt_regex.Syntax
module Dfa = Qsmt_regex.Dfa
module Unroll = Qsmt_regex.Unroll

let ( let* ) = Result.bind

type problem =
  | Trivial of bool
  | Solved of { var : string; value : Eval.value }
  | Generate of { var : string; constr : Constr.t }
  | Generate_joint of { var : string; conjuncts : Constr.t list }
  | Locate of { var : string; constr : Constr.t }

type spec = {
  mutable eq_target : string option;
  mutable length : int option;
  mutable contains : string list;
  mutable forced_index : (string * int) option; (* indexof-at-0 fact or locate sentinel *)
  mutable indices : (string * int) list; (* str.at / str.substr facts *)
  mutable regexes : Syntax.t list;
  mutable palindrome : bool;
  mutable prefixes : string list;
  mutable suffixes : string list;
  mutable neq : string list; (* verify-later disequalities *)
}

let fresh_spec () =
  {
    eq_target = None;
    length = None;
    contains = [];
    forced_index = None;
    indices = [];
    regexes = [];
    palindrome = false;
    prefixes = [];
    suffixes = [];
    neq = [];
  }

let rec is_ground = function
  | Ast.Var _ -> false
  | Ast.Str _ | Ast.Int _ | Ast.Bool _ -> true
  | Ast.App (_, args) -> List.for_all is_ground args

let eval_ground_string t =
  match Eval.term t with
  | Ok (Eval.V_str s) -> Ok s
  | Ok _ -> Error "expected a string"
  | Error e -> Error e

(* One assertion → facts in the spec table (one spec per variable), or
   an accumulated ground truth, or an error. *)
let rec digest env specs ground_truth term =
  let spec_for v =
    match Hashtbl.find_opt specs v with
    | Some s -> s
    | None ->
      let s = fresh_spec () in
      Hashtbl.add specs v s;
      s
  in
  let set_eq v target =
    let s = spec_for v in
    match s.eq_target with
    | Some prior when prior <> target -> Ok (ground_truth := false)
    | Some _ | None -> Ok (s.eq_target <- Some target)
  in
  let set_length v n =
    let s = spec_for v in
    match s.length with
    | Some prior when prior <> n -> Ok (ground_truth := false)
    | Some _ | None -> Ok (s.length <- Some n)
  in
  match term with
  | t when is_ground t -> begin
    match Eval.term t with
    | Ok (Eval.V_bool b) -> Ok (if not b then ground_truth := false)
    | Ok _ -> Error "ground assertion is not boolean"
    | Error e -> Error e
  end
  | Ast.App ("and", parts) ->
    List.fold_left
      (fun acc part ->
        let* () = acc in
        digest env specs ground_truth part)
      (Ok ()) parts
  (* x = <ground string term>, either side *)
  | Ast.App ("=", [ Ast.Var v; rhs ]) when is_ground rhs && Typecheck.lookup env v = Some Ast.S_string
    ->
    let* target = eval_ground_string rhs in
    set_eq v target
  | Ast.App ("=", [ lhs; Ast.Var v ]) when is_ground lhs && Typecheck.lookup env v = Some Ast.S_string
    ->
    let* target = eval_ground_string lhs in
    set_eq v target
  (* (str.len x) = n, either side *)
  | Ast.App ("=", [ Ast.App ("str.len", [ Ast.Var v ]); Ast.Int n ])
  | Ast.App ("=", [ Ast.Int n; Ast.App ("str.len", [ Ast.Var v ]) ]) ->
    set_length v n
  (* str.contains x "lit" *)
  | Ast.App ("str.contains", [ Ast.Var v; sub ]) when is_ground sub ->
    let* sub = eval_ground_string sub in
    let s = spec_for v in
    Ok (s.contains <- sub :: s.contains)
  (* (str.indexof x sub 0) = i *)
  | Ast.App ("=", [ Ast.App ("str.indexof", [ Ast.Var v; sub; Ast.Int 0 ]); Ast.Int i ])
  | Ast.App ("=", [ Ast.Int i; Ast.App ("str.indexof", [ Ast.Var v; sub; Ast.Int 0 ]) ])
    when is_ground sub ->
    let* sub = eval_ground_string sub in
    let s = spec_for v in
    (match s.forced_index with
    | Some prior when prior <> (sub, i) -> Ok (ground_truth := false)
    | Some _ | None -> Ok (s.forced_index <- Some (sub, i)))
  (* i = (str.indexof "hay" "needle" 0) with Int unknown i *)
  | Ast.App ("=", [ Ast.Var v; (Ast.App ("str.indexof", [ hay; sub; Ast.Int 0 ]) as rhs) ])
  | Ast.App ("=", [ (Ast.App ("str.indexof", [ hay; sub; Ast.Int 0 ]) as rhs); Ast.Var v ])
    when is_ground rhs && Typecheck.lookup env v = Some Ast.S_int ->
    let* hay = eval_ground_string hay in
    let* sub = eval_ground_string sub in
    let s = spec_for v in
    (* reuse forced_index to carry (needle, sentinel) plus eq_target for
       the haystack: see locate handling below *)
    s.eq_target <- Some hay;
    s.forced_index <- Some (sub, -1);
    Ok ()
  (* (= (str.at x i) "c") : one forced character; (= (str.substr x i n)
     "lit") with |lit| = n : a forced substring. Both orders. *)
  | Ast.App ("=", [ a; b ])
    when (match (a, b) with
         | Ast.App (("str.at" | "str.substr"), Ast.Var _ :: _), rhs
         | rhs, Ast.App (("str.at" | "str.substr"), Ast.Var _ :: _) ->
           is_ground rhs
         | _ -> false) -> begin
    let app, rhs =
      match (a, b) with
      | (Ast.App (("str.at" | "str.substr"), Ast.Var _ :: _) as app), rhs -> (app, rhs)
      | rhs, app -> (app, rhs)
    in
    let* lit = eval_ground_string rhs in
    match app with
    | Ast.App ("str.at", [ Ast.Var v; Ast.Int i ])
      when Typecheck.lookup env v = Some Ast.S_string ->
      if String.length lit <> 1 then
        Error "str.at constraints with non-single-character values are unsupported"
      else begin
        let s = spec_for v in
        Ok (s.indices <- (lit, i) :: s.indices)
      end
    | Ast.App ("str.substr", [ Ast.Var v; Ast.Int i; Ast.Int n ])
      when Typecheck.lookup env v = Some Ast.S_string ->
      if String.length lit <> n then
        Error
          "str.substr constraints are only supported when the literal has the requested length"
      else begin
        let s = spec_for v in
        Ok (s.indices <- (lit, i) :: s.indices)
      end
    | _ -> Error (Printf.sprintf "unsupported assertion %s" (Ast.term_to_string term))
  end
  (* (not (= x ground)): a disequality — recorded and enforced by the
     classical verifier rather than the QUBO (which cannot encode it) *)
  | Ast.App ("not", [ Ast.App ("=", [ Ast.Var v; rhs ]) ])
    when is_ground rhs && Typecheck.lookup env v = Some Ast.S_string ->
    let* t = eval_ground_string rhs in
    let s = spec_for v in
    Ok (s.neq <- t :: s.neq)
  | Ast.App ("not", [ Ast.App ("=", [ lhs; Ast.Var v ]) ])
    when is_ground lhs && Typecheck.lookup env v = Some Ast.S_string ->
    let* t = eval_ground_string lhs in
    let s = spec_for v in
    Ok (s.neq <- t :: s.neq)
  (* str.prefixof "lit" x / str.suffixof "lit" x *)
  | Ast.App ("str.prefixof", [ pre; Ast.Var v ]) when is_ground pre ->
    let* pre = eval_ground_string pre in
    let s = spec_for v in
    Ok (s.prefixes <- pre :: s.prefixes)
  | Ast.App ("str.suffixof", [ suf; Ast.Var v ]) when is_ground suf ->
    let* suf = eval_ground_string suf in
    let s = spec_for v in
    Ok (s.suffixes <- suf :: s.suffixes)
  | Ast.App ("str.in_re", [ Ast.Var v; re ]) ->
    let* syntax = Eval.regex re in
    let s = spec_for v in
    Ok (s.regexes <- syntax :: s.regexes)
  | Ast.App ("str.palindrome", [ Ast.Var v ]) ->
    let s = spec_for v in
    Ok (s.palindrome <- true)
  | t -> Error (Printf.sprintf "unsupported assertion %s" (Ast.term_to_string t))

(* Check the remaining facts classically against a fixed target. *)
let target_consistent spec target =
  (match spec.length with Some n -> String.length target = n | None -> true)
  && List.for_all (fun sub -> Semantics.contains target ~sub) spec.contains
  && (match spec.forced_index with
     | Some (sub, i) -> i >= 0 && Semantics.occurs_at target ~sub i
     | None -> true)
  && List.for_all (fun (sub, i) -> Semantics.occurs_at target ~sub i) spec.indices
  && (not spec.palindrome || Semantics.is_palindrome target)
  && List.for_all
       (fun pre ->
         String.length pre <= String.length target
         && String.sub target 0 (String.length pre) = pre)
       spec.prefixes
  && List.for_all
       (fun suf ->
         let lt = String.length target and ls = String.length suf in
         ls <= lt && String.sub target (lt - ls) ls = suf)
       spec.suffixes
  && List.for_all (fun r -> Dfa.matches (Dfa.of_syntax r) target) spec.regexes
  && List.for_all (fun t -> target <> t) spec.neq

(* Turn the gathered facts into conjunct constraints over one length. *)
let conjuncts_of_spec spec ~length =
  let ( let* ) = Result.bind in
  let* regexes =
    List.fold_left
      (fun acc pattern ->
        let* acc = acc in
        let dfa = Dfa.of_syntax pattern in
        if Dfa.count_matching dfa ~len:length = 0 then Error `Unsat
        else begin
          match Unroll.to_position_sets pattern ~len:length with
          | Ok _ -> Ok (Constr.Regex { pattern; length } :: acc)
          | Error msg -> Error (`Unsupported ("regex not supported by the QUBO encoder: " ^ msg))
        end)
      (Ok []) spec.regexes
  in
  let* index =
    match spec.forced_index with
    | None -> Ok []
    | Some (sub, i) ->
      if i >= 0 && i + String.length sub <= length then
        Ok [ Constr.Index_of { length; substring = sub; index = i } ]
      else Error `Unsat
  in
  let* at_indices =
    List.fold_left
      (fun acc (sub, i) ->
        let* acc = acc in
        if i >= 0 && i + String.length sub <= length then
          Ok (Constr.Index_of { length; substring = sub; index = i } :: acc)
        else Error `Unsat)
      (Ok []) spec.indices
  in
  let* contains =
    List.fold_left
      (fun acc sub ->
        let* acc = acc in
        if String.length sub <= length then Ok (Constr.Contains { length; substring = sub } :: acc)
        else Error `Unsat)
      (Ok []) spec.contains
  in
  let* prefixes =
    List.fold_left
      (fun acc pre ->
        let* acc = acc in
        if String.length pre <= length then
          Ok (Constr.Index_of { length; substring = pre; index = 0 } :: acc)
        else Error `Unsat)
      (Ok []) spec.prefixes
  in
  let* suffixes =
    List.fold_left
      (fun acc suf ->
        let* acc = acc in
        if String.length suf <= length then
          Ok (Constr.Index_of { length; substring = suf; index = length - String.length suf } :: acc)
        else Error `Unsat)
      (Ok []) spec.suffixes
  in
  let palindrome = if spec.palindrome then [ Constr.Palindrome { length } ] else [] in
  Ok (regexes @ index @ at_indices @ prefixes @ suffixes @ contains @ palindrome)

let constr_of_spec v spec =
  match spec.eq_target with
  | Some target ->
    if target_consistent spec target then Ok (Generate { var = v; constr = Constr.Equals target })
    else Ok (Trivial false)
  | None -> begin
    match spec.length with
    | None -> begin
      (* without a length nothing is encodable; name the missing piece *)
      match
        ( spec.regexes,
          spec.forced_index,
          spec.contains @ spec.prefixes @ spec.suffixes @ List.map fst spec.indices,
          spec.palindrome )
      with
      | _ :: _, _, _, _ -> Error "str.in_re needs an explicit (str.len x) assertion"
      | [], Some _, _, _ -> Error "str.indexof constraint needs a length"
      | [], None, _ :: _, _ ->
        Error "str.contains/str.prefixof/str.suffixof need a length"
      | [], None, [], true -> Error "str.palindrome needs a length"
      | [], None, [], false -> Error (Printf.sprintf "variable %s is unconstrained" v)
    end
    | Some length -> begin
      match conjuncts_of_spec spec ~length with
      | Error `Unsat -> Ok (Trivial false)
      | Error (`Unsupported msg) -> Error msg
      | Ok [] ->
        (* any string of that length *)
        Ok
          (Generate
             { var = v; constr = Constr.Regex { pattern = Syntax.Star Syntax.any; length } })
      | Ok [ constr ] -> Ok (Generate { var = v; constr })
      | Ok conjuncts -> Ok (Generate_joint { var = v; conjuncts })
    end
  end

let locate_of_spec v spec =
  match (spec.eq_target, spec.forced_index) with
  | Some haystack, Some (needle, -1) -> begin
    match Semantics.index_of haystack ~sub:needle with
    | None ->
      (* No occurrence: SMT-LIB says indexof = -1, which the one-hot
         QUBO cannot express — answer classically. *)
      Ok (Solved { var = v; value = Eval.V_int (-1) })
    | Some _ when String.length needle = 0 -> Ok (Solved { var = v; value = Eval.V_int 0 })
    | Some _ -> Ok (Locate { var = v; constr = Constr.Includes { haystack; needle } })
  end
  | _ -> Error (Printf.sprintf "unsupported constraints on Int variable %s" v)

let compile env assertions =
  let specs = Hashtbl.create 4 in
  let ground_truth = ref true in
  let* () =
    List.fold_left
      (fun acc a ->
        let* () = acc in
        digest env specs ground_truth a)
      (Ok ()) assertions
  in
  if not !ground_truth then Ok (Trivial false)
  else begin
    let entries = Hashtbl.fold (fun v s acc -> (v, s) :: acc) specs [] in
    match entries with
    | [] -> Ok (Trivial true)
    | [ (v, spec) ] -> begin
      match Typecheck.lookup env v with
      | Some Ast.S_string -> constr_of_spec v spec
      | Some Ast.S_int -> locate_of_spec v spec
      | Some (Ast.S_bool | Ast.S_reglan) | None ->
        Error (Printf.sprintf "unsupported unknown %s" v)
    end
    | _ :: _ :: _ -> Error "more than one unknown variable (sequential pipelines only)"
  end
