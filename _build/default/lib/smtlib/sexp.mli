(** S-expressions, SMT-LIB flavour.

    SMT-LIB scripts are s-expressions with two lexical quirks this lexer
    handles: string literals use [""] (doubled quote) as the escape for
    an embedded quote, and [|...|] delimits quoted symbols. Comments run
    from [;] to end of line. *)

type t =
  | Atom of string  (** symbol, keyword, or numeral — undistinguished *)
  | String of string  (** ["..."] literal, unescaped *)
  | List of t list

val parse_all : string -> (t list, string) result
(** Every top-level expression in the input. Errors carry a line
    number. *)

val parse_one : string -> (t, string) result
(** Exactly one expression (trailing whitespace/comments allowed). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
