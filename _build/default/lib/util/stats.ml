let mean a =
  let n = Array.length a in
  if n = 0 then nan else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a in
    acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left (fun (lo, hi) x -> (min lo x, max hi x)) (a.(0), a.(0)) a

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median a = percentile a 50.

let histogram ~bins a =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo, hi = min_max a in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = min (bins - 1) (max 0 b) in
      counts.(b) <- counts.(b) + 1)
    a;
  Array.init bins (fun b ->
      (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  median : float;
  max : float;
}

let summarize a =
  let lo, hi = min_max a in
  { n = Array.length a; mean = mean a; stddev = stddev a; min = lo; median = median a; max = hi }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g" s.n s.mean s.stddev s.min
    s.median s.max
