type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a seed into the four xoshiro words, and
   to implement [split]. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_splitmix state =
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  (* xoshiro requires a nonzero state; splitmix output is zero for at most
     one of the four draws, so forcing one word nonzero is enough. *)
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  { s0; s1; s2; s3 }

let create seed = of_splitmix (ref (Int64.of_int seed))

(* Weyl-sequence stream derivation: the full 64-bit golden-ratio constant
   (2^64/phi). The multiply must happen in Int64 — the constant does not
   fit in OCaml's 63-bit native int, and truncating it (as earlier code
   did) measurably correlates adjacent streams. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let stream ~seed k =
  if k < 0 then invalid_arg "Prng.stream: negative stream index";
  let mixed =
    Int64.logxor (Int64.of_int seed) (Int64.mul (Int64.of_int (k + 1)) golden_gamma)
  in
  of_splitmix (ref mixed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = bits64 t in
  of_splitmix (ref seed)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the 62-bit draw domain keeps the result
     unbiased: draws at or above the largest multiple of [bound] that fits
     in 2^62 are rejected. (The threshold must be computed against 2^62,
     not [Int64.max_int]: [r] only has 62 bits, so a 63-bit threshold can
     never fire and the modulo bias sneaks back in.) Since OCaml ints are
     63-bit, [bound <= 2^62 - 1 < domain] always holds and [limit] is
     positive. *)
  let bound = Int64.of_int n in
  let domain = Int64.shift_left 1L 62 in
  let limit = Int64.sub domain (Int64.rem domain bound) in
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 t) 2 in
    if r >= limit then loop () else Int64.to_int (Int64.rem r bound)
  in
  loop ()

let float t =
  (* 53 high bits scaled to [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let bool t = Int64.logand (bits64 t) 1L = 1L
let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let char_printable t = Char.chr (32 + int t 95)
let string_printable t n = String.init n (fun _ -> char_printable t)
let string_lowercase t n = String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))
