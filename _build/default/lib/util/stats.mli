(** Small descriptive-statistics helpers for the benchmark harness and
    experiment reports (success rates, timing summaries, energy
    distributions). *)

val mean : float array -> float
(** Arithmetic mean. [nan] on empty input. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n-1]); [0.] for fewer than two
    samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on empty input. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0,100\]], linear interpolation between
    order statistics. Does not mutate [a].
    @raise Invalid_argument on empty input or [p] outside [\[0,100\]]. *)

val median : float array -> float
(** [percentile a 50.]. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins a] is an array of [(lo, hi, count)] rows covering
    [\[min a, max a\]].
    @raise Invalid_argument if [bins <= 0] or [a] is empty. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  median : float;
  max : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on empty input. *)

val pp_summary : Format.formatter -> summary -> unit
