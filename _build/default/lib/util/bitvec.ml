type t = { len : int; data : Bytes.t }

let bytes_needed n = (n + 7) / 8
let create n = { len = n; data = Bytes.make (bytes_needed n) '\000' }

let check t i name =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Bitvec.%s: index %d out of [0,%d)" name i t.len)

let unsafe_get t i =
  let byte = Char.code (Bytes.unsafe_get t.data (i lsr 3)) in
  byte land (1 lsl (i land 7)) <> 0

let get t i =
  check t i "get";
  unsafe_get t i

let unsafe_set t i b =
  let idx = i lsr 3 in
  let byte = Char.code (Bytes.unsafe_get t.data idx) in
  let mask = 1 lsl (i land 7) in
  let byte' = if b then byte lor mask else byte land lnot mask in
  Bytes.unsafe_set t.data idx (Char.unsafe_chr byte')

let set t i b =
  check t i "set";
  unsafe_set t i b

let flip t i =
  check t i "flip";
  unsafe_set t i (not (unsafe_get t i))

let init n f =
  let t = create n in
  for i = 0 to n - 1 do
    unsafe_set t i (f i)
  done;
  t

let length t = t.len
let copy t = { len = t.len; data = Bytes.copy t.data }

let fill t b =
  Bytes.fill t.data 0 (Bytes.length t.data) (if b then '\xff' else '\000');
  (* Clear the unused tail bits so equality/popcount stay canonical. *)
  if b && t.len land 7 <> 0 then begin
    let last = Bytes.length t.data - 1 in
    let keep = (1 lsl (t.len land 7)) - 1 in
    Bytes.set t.data last (Char.chr (Char.code (Bytes.get t.data last) land keep))
  end

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.data b.data

let hash t = Hashtbl.hash (t.len, t.data)

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let popcount t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.data;
  !n

let hamming a b =
  if a.len <> b.len then invalid_arg "Bitvec.hamming: length mismatch";
  let n = ref 0 in
  for i = 0 to Bytes.length a.data - 1 do
    let x = Char.code (Bytes.get a.data i) lxor Char.code (Bytes.get b.data i) in
    n := !n + popcount_byte (Char.chr x)
  done;
  !n

let to_bool_array t = Array.init t.len (unsafe_get t)

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i b -> unsafe_set t i b) a;
  t

let to_string t = String.init t.len (fun i -> if unsafe_get t i then '1' else '0')

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '1' -> true
      | '0' -> false
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %C" c))

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (unsafe_get t i)
  done

let random rng n = init n (fun _ -> Prng.bool rng)
let pp ppf t = Format.pp_print_string ppf (to_string t)
