let recommended_domains () = min 16 (Domain.recommended_domain_count ())

(* Static block partition: worker [k] of [d] handles indices
   [lo_k, lo_k + size_k). All workers get within one element of each other,
   which is fine because per-element cost is uniform for our callers
   (identical annealing reads). *)
let partition n d =
  let d = max 1 (min d n) in
  let base = n / d and extra = n mod d in
  List.init d (fun k ->
      let lo = (k * base) + min k extra in
      let size = base + if k < extra then 1 else 0 in
      (lo, size))

let init_array ?(domains = 1) n f =
  if n = 0 then [||]
  else if domains <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let work (lo, size) =
      for i = lo to lo + size - 1 do
        results.(i) <- Some (f i)
      done
    in
    match partition n domains with
    | [] -> [||]
    | first :: rest ->
      let handles = List.map (fun blk -> Domain.spawn (fun () -> work blk)) rest in
      work first;
      List.iter Domain.join handles;
      Array.map
        (function
          | Some v -> v
          | None -> assert false)
        results
  end

let map_array ?(domains = 1) f a = init_array ~domains (Array.length a) (fun i -> f a.(i))

let reduce ?(domains = 1) f combine zero a =
  let mapped = map_array ~domains f a in
  Array.fold_left combine zero mapped
