(** Deterministic pseudo-random number generation.

    Every stochastic component in this repository (annealers, tabu search,
    workload generators, property tests) draws randomness through this
    module rather than [Stdlib.Random], so that a single integer seed
    reproduces a whole experiment bit-for-bit, including across parallel
    reads: each read derives an independent stream with {!split}.

    The generator is xoshiro256** seeded through SplitMix64, the standard
    seeding recipe recommended by the xoshiro authors. *)

type t
(** Mutable generator state. Not thread-safe; use {!split} to hand
    independent streams to concurrent domains. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds yield
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent from the remainder of [t]'s stream. Used to
    derive per-read / per-domain streams from one master seed. *)

val stream : seed:int -> int -> t
(** [stream ~seed k] is the [k]-th derived generator of master [seed]
    ([k >= 0]): the seed is xored with [(k + 1)] times the full 64-bit
    golden-ratio constant [0x9E3779B97F4A7C15] before SplitMix64
    expansion, decorrelating consecutive stream indices even for adjacent
    seeds. This is the one sanctioned way to give each annealing read /
    portfolio member its own independent stream — do not hand-roll the
    mixing constant at call sites. Deterministic: equal [(seed, k)] yield
    equal streams, and [stream] does not consume randomness from any
    other generator.
    @raise Invalid_argument if [k < 0]. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. Unbiased
    (rejection sampling). *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)

val choose : t -> 'a array -> 'a
(** [choose t a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)

val char_printable : t -> char
(** [char_printable t] is a uniformly random printable ASCII character
    (codes 32-126). *)

val string_printable : t -> int -> string
(** [string_printable t n] is a string of [n] printable ASCII characters. *)

val string_lowercase : t -> int -> string
(** [string_lowercase t n] is a string of [n] characters in [a-z]. *)
