(** Packed bit vectors.

    Samples coming back from the annealers are assignments to thousands of
    binary variables; storing them one-bit-per-bit (rather than one byte or
    one boxed bool per bit) keeps multi-read sample sets compact and makes
    Hamming-distance and equality checks word-parallel. *)

type t
(** A fixed-length vector of bits. Mutable. *)

val create : int -> t
(** [create n] is an all-zero vector of length [n]. *)

val init : int -> (int -> bool) -> t
(** [init n f] sets bit [i] to [f i]. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
(** [get t i] is bit [i].
    @raise Invalid_argument if [i] is out of bounds. *)

val set : t -> int -> bool -> unit
(** [set t i b] writes bit [i].
    @raise Invalid_argument if [i] is out of bounds. *)

val flip : t -> int -> unit
(** [flip t i] toggles bit [i]. *)

val copy : t -> t
(** Independent copy. *)

val fill : t -> bool -> unit
(** [fill t b] sets every bit to [b]. *)

val equal : t -> t -> bool
(** Structural equality (same length, same bits). *)

val compare : t -> t -> int
(** Total order consistent with {!equal}. *)

val hash : t -> int
(** Hash consistent with {!equal}. *)

val popcount : t -> int
(** Number of set bits. *)

val hamming : t -> t -> int
(** [hamming a b] is the number of positions where [a] and [b] differ.
    @raise Invalid_argument on length mismatch. *)

val to_bool_array : t -> bool array
val of_bool_array : bool array -> t

val to_string : t -> string
(** [to_string t] is e.g. ["10110"], most significant position first
    (index 0 leftmost). *)

val of_string : string -> t
(** Inverse of {!to_string}.
    @raise Invalid_argument on characters other than '0'/'1'. *)

val iteri : (int -> bool -> unit) -> t -> unit
val random : Prng.t -> int -> t
(** [random rng n] is a uniformly random vector of [n] bits. *)

val pp : Format.formatter -> t -> unit
