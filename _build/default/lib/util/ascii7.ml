let bits_per_char = 7

let char_to_bits c =
  let code = Char.code c in
  if code > 127 then invalid_arg (Printf.sprintf "Ascii7.char_to_bits: %C is not 7-bit ASCII" c);
  Array.init 7 (fun i -> code land (1 lsl (6 - i)) <> 0)

let bits_to_char bits =
  if Array.length bits <> 7 then invalid_arg "Ascii7.bits_to_char: expected 7 bits";
  let code = ref 0 in
  Array.iteri (fun i b -> if b then code := !code lor (1 lsl (6 - i))) bits;
  Char.chr !code

let encode s =
  let n = String.length s in
  Bitvec.init (7 * n) (fun idx ->
      let j = idx / 7 and i = idx mod 7 in
      let code = Char.code s.[j] in
      if code > 127 then invalid_arg (Printf.sprintf "Ascii7.encode: %C is not 7-bit ASCII" s.[j]);
      code land (1 lsl (6 - i)) <> 0)

let decode_sub bits ~pos =
  let code = ref 0 in
  for i = 0 to 6 do
    if Bitvec.get bits (pos + i) then code := !code lor (1 lsl (6 - i))
  done;
  String.make 1 (Char.chr !code)

let decode bits =
  let len = Bitvec.length bits in
  if len mod 7 <> 0 then invalid_arg (Printf.sprintf "Ascii7.decode: length %d not a multiple of 7" len);
  String.init (len / 7) (fun j ->
      let code = ref 0 in
      for i = 0 to 6 do
        if Bitvec.get bits ((7 * j) + i) then code := !code lor (1 lsl (6 - i))
      done;
      Char.chr !code)

let var_of ~char_index ~bit =
  if bit < 0 || bit >= 7 then invalid_arg "Ascii7.var_of: bit out of [0,7)";
  (7 * char_index) + bit

let is_printable c =
  let code = Char.code c in
  code >= 32 && code <= 126

let clamp_printable c = if is_printable c then c else '?'
