(** Seven-bit ASCII codec (paper §4, "binary variables").

    The paper represents each character of the target string by 7 QUBO
    variables — the 7-bit ASCII code, most significant bit first — so a
    string of length [n] uses [7 n] variables. This module is the [bin] /
    [f] pair of functions from the paper plus the inverse decoding used to
    read annealer samples back as text. *)

val bits_per_char : int
(** [7]. *)

val char_to_bits : char -> bool array
(** [char_to_bits c] is the 7-bit encoding of [c], MSB first: ['a'] (97 =
    1100001) encodes to [|true; true; false; false; false; false; true|].
    @raise Invalid_argument if [c] is outside 7-bit ASCII (code > 127). *)

val bits_to_char : bool array -> char
(** Inverse of {!char_to_bits}.
    @raise Invalid_argument if the array is not 7 long. *)

val encode : string -> Bitvec.t
(** [encode s] is the paper's [f]: the concatenation of the per-character
    encodings, a bit vector of length [7 * String.length s]. *)

val decode : Bitvec.t -> string
(** [decode bits] reads 7 bits per character, MSB first.
    @raise Invalid_argument if the length is not a multiple of 7. *)

val decode_sub : Bitvec.t -> pos:int -> string
(** [decode_sub bits ~pos] decodes one character starting at bit offset
    [pos] and returns it as a 1-character string. *)

val var_of : char_index:int -> bit:int -> int
(** [var_of ~char_index:j ~bit:i] is the QUBO variable index [7 j + i] of
    bit [i] (MSB first, [0 <= i < 7]) of character [j]. *)

val is_printable : char -> bool
(** Codes 32-126. *)

val clamp_printable : char -> char
(** [clamp_printable c] is [c] if printable, otherwise a deterministic
    printable stand-in ('?'). Used only for display of unconstrained
    sample bits; solvers never rely on it. *)
