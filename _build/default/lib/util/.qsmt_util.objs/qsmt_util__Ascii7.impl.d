lib/util/ascii7.ml: Array Bitvec Char Printf String
