lib/util/bitvec.mli: Format Prng
