lib/util/ascii7.mli: Bitvec
