lib/util/prng.mli:
