lib/util/parallel.mli:
