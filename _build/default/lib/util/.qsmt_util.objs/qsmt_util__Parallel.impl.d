lib/util/parallel.ml: Array Atomic Condition Domain List Mutex Option Queue
