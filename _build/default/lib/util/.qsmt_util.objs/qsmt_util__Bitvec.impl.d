lib/util/bitvec.ml: Array Bytes Char Format Hashtbl Printf Prng Stdlib String
