(** Fork-join parallelism over OCaml 5 domains.

    The annealers are embarrassingly parallel across reads: each read is an
    independent Markov chain with its own PRNG stream. This module provides
    the small fork-join helpers they need without pulling in domainslib
    (not available in the sealed container).

    Domains are spawned per call; for the workloads here (reads that run
    for milliseconds to seconds) spawn cost is negligible. Callers pass
    [~domains:1] to run sequentially (the default), which is what tests use
    for full determinism of shared-PRNG call sites. *)

val recommended_domains : unit -> int
(** Number of domains worth spawning on this machine:
    [Domain.recommended_domain_count], capped at 16. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~domains f a] maps [f] over [a], splitting the work across
    up to [domains] domains ([1] = sequential, the default). [f] must be
    safe to run concurrently on distinct elements. Preserves order.
    Exceptions raised by [f] are re-raised in the caller. *)

val init_array : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [init_array ~domains n f] is [Array.init n f] with the same parallel
    contract as {!map_array}. *)

val reduce : ?domains:int -> ('a -> 'b) -> ('b -> 'b -> 'b) -> 'b -> 'a array -> 'b
(** [reduce ~domains f combine zero a] maps then folds with [combine]
    (which must be associative); [zero] is the unit. *)
