(** CNF formulas.

    The classical baseline solves string constraints the way a DPLL(T)
    solver's SAT core would see them after bit-blasting. Variables are
    [0 .. n-1]; a literal packs a variable and a polarity into one int
    ([2v] positive, [2v+1] negative), the layout CDCL solvers use so a
    literal indexes its watch list directly. *)

type literal = int

val pos : int -> literal
(** Positive literal of a variable. *)

val neg : int -> literal
(** Negative literal. *)

val var_of : literal -> int
val is_pos : literal -> bool
val negate : literal -> literal

val pp_literal : Format.formatter -> literal -> unit
(** [x3] / [~x3]. *)

type clause = literal list

type t = {
  num_vars : int;
  clauses : clause list;
}

val create : num_vars:int -> clause list -> t
(** @raise Invalid_argument if a literal mentions a variable outside
    [0, num_vars) or a clause is empty (use [add_false] semantics
    explicitly instead). *)

val eval : t -> Qsmt_util.Bitvec.t -> bool
(** Truth of the formula under a total assignment (bit set = true). *)

val eval_clause : clause -> Qsmt_util.Bitvec.t -> bool
val num_clauses : t -> int

(** {1 Common gadgets} *)

val unit_bits : Qsmt_util.Bitvec.t -> clause list
(** One unit clause per bit: variable [i] forced to the vector's bit. *)

val at_most_one : int list -> clause list
(** Pairwise encoding. *)

val at_least_one : int list -> clause list
val exactly_one : int list -> clause list

val iff : int -> int -> clause list
(** Two variables forced equal. *)
