(** Bit-blasting string constraints to CNF.

    The classical route the paper compares against: the same constraint
    language, the same 7-bit character layout, but compiled to clauses
    for a complete SAT solver instead of to an energy function. Two
    differences from the QUBO encodings are deliberate and documented:

    - {!Qsmt_strtheory.Constr.Contains} is encoded {e correctly} (a
      selector variable per start position, exactly-one, selector implies
      the substring's bits there) rather than with the paper's
      overwrite approximation — the baseline represents what a sound
      classical solver would do;
    - {!Qsmt_strtheory.Constr.Regex} uses the unrolled DFA (state
      variables per position, exactly-one state per step, transition and
      acceptance clauses), so it is exact for {e every} regex, not just
      the product-form fragment.

    Auxiliary variables (selectors, DFA states) are appended after the
    [7n] string bits, so a model's prefix decodes with the same
    {!Qsmt_strtheory.Compile.decode} as annealer samples. *)

val encode : Qsmt_strtheory.Constr.t -> Cnf.t
(** @raise Invalid_argument if the constraint fails
    {!Qsmt_strtheory.Constr.validate}. *)

val decode : Qsmt_strtheory.Constr.t -> Qsmt_util.Bitvec.t -> Qsmt_strtheory.Constr.value
(** Reads a SAT model (over {!encode}'s variables) back to a value. *)
