(** DIMACS CNF import/export.

    The lingua franca of SAT solving: exporting lets any off-the-shelf
    solver cross-check this repository's CDCL implementation on the
    bit-blasted string instances, importing lets the CDCL solver run the
    standard benchmark suites. Format:

    {v
    c comment
    p cnf <vars> <clauses>
    1 -2 3 0
    ...
    v}

    DIMACS numbers variables from 1 with sign for polarity; this module
    maps DIMACS literal [±(v+1)] to {!Cnf} variable [v]. *)

val to_string : Cnf.t -> string
val pp : Format.formatter -> Cnf.t -> unit

val of_string : string -> (Cnf.t, string) result
(** Accepts comments anywhere before/between clauses and multi-line
    clauses (a clause ends at [0]). Errors carry a line number. *)

val of_string_exn : string -> Cnf.t
(** @raise Invalid_argument on malformed input. *)

val write_file : string -> Cnf.t -> unit
val read_file : string -> (Cnf.t, string) result
