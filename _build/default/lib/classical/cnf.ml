module Bitvec = Qsmt_util.Bitvec

type literal = int

let pos v = 2 * v
let neg v = (2 * v) + 1
let var_of lit = lit lsr 1
let is_pos lit = lit land 1 = 0
let negate lit = lit lxor 1

let pp_literal ppf lit =
  Format.fprintf ppf "%sx%d" (if is_pos lit then "" else "~") (var_of lit)

type clause = literal list
type t = { num_vars : int; clauses : clause list }

let create ~num_vars clauses =
  List.iter
    (fun clause ->
      if clause = [] then invalid_arg "Cnf.create: empty clause";
      List.iter
        (fun lit ->
          let v = var_of lit in
          if lit < 0 || v >= num_vars then
            invalid_arg (Printf.sprintf "Cnf.create: literal %d outside %d variables" lit num_vars))
        clause)
    clauses;
  { num_vars; clauses }

let lit_true lit assignment =
  let v = Bitvec.get assignment (var_of lit) in
  if is_pos lit then v else not v

let eval_clause clause assignment = List.exists (fun lit -> lit_true lit assignment) clause
let eval t assignment = List.for_all (fun c -> eval_clause c assignment) t.clauses
let num_clauses t = List.length t.clauses

let unit_bits bits =
  List.init (Bitvec.length bits) (fun i -> [ (if Bitvec.get bits i then pos i else neg i) ])

let at_most_one vars =
  let rec pairs = function
    | [] -> []
    | v :: rest -> List.map (fun w -> [ neg v; neg w ]) rest @ pairs rest
  in
  pairs vars

let at_least_one vars = [ List.map pos vars ]
let exactly_one vars = at_least_one vars @ at_most_one vars
let iff a b = [ [ neg a; pos b ]; [ pos a; neg b ] ]
