module Bitvec = Qsmt_util.Bitvec
module Ascii7 = Qsmt_util.Ascii7
module Constr = Qsmt_strtheory.Constr
module Semantics = Qsmt_strtheory.Semantics
module Dfa = Qsmt_regex.Dfa

let validate_exn c =
  match Constr.validate c with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Bitblast.encode: " ^ msg)

(* Clause fragment: bit [i] of character [j] must equal bit [i] of [c]. *)
let char_bit_literal ~char_index ~bit c =
  let v = Ascii7.var_of ~char_index ~bit in
  if (Ascii7.char_to_bits c).(bit) then Cnf.pos v else Cnf.neg v

(* Literals asserting "character at char_index differs from c" (the
   negation of a 7-bit equality), for use inside implication clauses. *)
let char_differs_literals ~char_index c =
  List.init 7 (fun bit -> Cnf.negate (char_bit_literal ~char_index ~bit c))

let fixed_string_clauses target = Cnf.unit_bits (Ascii7.encode target)

let encode_contains ~length ~substring =
  let n = length and m = String.length substring in
  let bits = 7 * n in
  let positions = n - m + 1 in
  let selector p = bits + p in
  let selectors = List.init positions selector in
  let clauses = ref (Cnf.exactly_one selectors) in
  for p = 0 to positions - 1 do
    String.iteri
      (fun j c ->
        for bit = 0 to 6 do
          clauses :=
            [ Cnf.neg (selector p); char_bit_literal ~char_index:(p + j) ~bit c ] :: !clauses
        done)
      substring
  done;
  Cnf.create ~num_vars:(bits + positions) !clauses

let encode_includes ~haystack ~needle =
  let n = String.length haystack and m = String.length needle in
  let positions = n - m + 1 in
  let clauses = ref (Cnf.exactly_one (List.init positions (fun p -> p))) in
  for p = 0 to positions - 1 do
    if not (Semantics.occurs_at haystack ~sub:needle p) then clauses := [ Cnf.neg p ] :: !clauses
  done;
  Cnf.create ~num_vars:positions !clauses

let encode_indexof ~length ~substring ~index =
  let clauses = ref [] in
  String.iteri
    (fun j c ->
      for bit = 0 to 6 do
        clauses := [ char_bit_literal ~char_index:(index + j) ~bit c ] :: !clauses
      done)
    substring;
  Cnf.create ~num_vars:(7 * length) !clauses

let encode_palindrome ~length =
  let clauses = ref [] in
  for j = 0 to (length / 2) - 1 do
    for bit = 0 to 6 do
      let front = Ascii7.var_of ~char_index:j ~bit in
      let back = Ascii7.var_of ~char_index:(length - 1 - j) ~bit in
      clauses := Cnf.iff front back @ !clauses
    done
  done;
  (* a trivial tautology keeps the formula non-empty for length <= 1 *)
  let clauses = if !clauses = [] && length > 0 then [ [ Cnf.pos 0; Cnf.neg 0 ] ] else !clauses in
  Cnf.create ~num_vars:(max 1 (7 * length)) clauses

let encode_has_length ~num_chars ~target_length =
  let bits =
    Bitvec.init (7 * num_chars) (fun i -> i < 7 * target_length)
  in
  Cnf.create ~num_vars:(max 1 (7 * num_chars)) (Cnf.unit_bits bits)

let encode_regex ~pattern ~length =
  let dfa = Dfa.of_syntax pattern in
  let num_states = Dfa.num_states dfa in
  let char_bits = 7 * length in
  (* state variable: step k (0..length), DFA state s *)
  let state_var k s = char_bits + (k * num_states) + s in
  let clauses = ref [] in
  clauses := [ Cnf.pos (state_var 0 (Dfa.start_state dfa)) ] :: !clauses;
  for k = 0 to length do
    let vars = List.init num_states (state_var k) in
    clauses := Cnf.exactly_one vars @ !clauses
  done;
  for k = 0 to length - 1 do
    for s = 0 to num_states - 1 do
      for code = 0 to 127 do
        let c = Char.chr code in
        let differs = char_differs_literals ~char_index:k c in
        match Dfa.transition dfa s c with
        | Some target ->
          clauses :=
            ((Cnf.neg (state_var k s) :: differs) @ [ Cnf.pos (state_var (k + 1) target) ])
            :: !clauses
        | None ->
          (* dead transition: state s cannot read c *)
          clauses := (Cnf.neg (state_var k s) :: differs) :: !clauses
      done
    done
  done;
  (* acceptance at step [length] *)
  let accepting =
    List.filter_map
      (fun s -> if Dfa.is_accepting dfa s then Some (Cnf.pos (state_var length s)) else None)
      (List.init num_states Fun.id)
  in
  clauses := (if accepting = [] then [ [ Cnf.pos 0 ]; [ Cnf.neg 0 ] ] else [ accepting ]) @ !clauses;
  Cnf.create ~num_vars:(max 1 (char_bits + ((length + 1) * num_states))) !clauses

let encode c =
  (* Regex skips Constr.validate: that check enforces the QUBO encoder's
     product-form restriction, but the unrolled-DFA encoding here is
     complete for every regex and every (non-negative) length. *)
  (match c with
  | Constr.Regex { length; _ } ->
    if length < 0 then invalid_arg "Bitblast.encode: negative regex length"
  | _ -> validate_exn c);
  match c with
  | Constr.Equals s -> Cnf.create ~num_vars:(max 1 (7 * String.length s)) (fixed_string_clauses s)
  | Constr.Concat parts ->
    let s = Semantics.concat parts in
    Cnf.create ~num_vars:(max 1 (7 * String.length s)) (fixed_string_clauses s)
  | Constr.Replace_all { source; find; replace } ->
    let s = Semantics.replace_all source ~find ~replace in
    Cnf.create ~num_vars:(max 1 (7 * String.length s)) (fixed_string_clauses s)
  | Constr.Replace_first { source; find; replace } ->
    let s = Semantics.replace_first source ~find ~replace in
    Cnf.create ~num_vars:(max 1 (7 * String.length s)) (fixed_string_clauses s)
  | Constr.Reverse source ->
    let s = Semantics.reverse source in
    Cnf.create ~num_vars:(max 1 (7 * String.length s)) (fixed_string_clauses s)
  | Constr.Contains { length; substring } -> encode_contains ~length ~substring
  | Constr.Includes { haystack; needle } -> encode_includes ~haystack ~needle
  | Constr.Index_of { length; substring; index } -> encode_indexof ~length ~substring ~index
  | Constr.Has_length { num_chars; target_length } -> encode_has_length ~num_chars ~target_length
  | Constr.Palindrome { length } -> encode_palindrome ~length
  | Constr.Regex { pattern; length } -> encode_regex ~pattern ~length

let decode c model =
  match c with
  | Constr.Includes { haystack; needle } ->
    let positions = String.length haystack - String.length needle + 1 in
    let rec first p =
      if p >= positions then None else if Bitvec.get model p then Some p else first (p + 1)
    in
    Constr.Pos (first 0)
  | Constr.Regex { length; _ } ->
    (* avoid Constr.num_vars: it re-validates product-form, which this
       complete encoding does not require *)
    Constr.Str (Ascii7.decode (Bitvec.init (7 * length) (Bitvec.get model)))
  | Constr.Equals _ | Constr.Concat _ | Constr.Contains _ | Constr.Index_of _
  | Constr.Has_length _ | Constr.Replace_all _ | Constr.Replace_first _ | Constr.Reverse _
  | Constr.Palindrome _ ->
    let n = Constr.num_vars c in
    Constr.Str (Ascii7.decode (Bitvec.init n (Bitvec.get model)))
