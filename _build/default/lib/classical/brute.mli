(** Brute-force enumeration baseline.

    The dumbest sound solver: enumerate candidate values in lexicographic
    order over a caller-chosen alphabet and return the first one the
    classical verifier accepts. Exponential, but exact — it anchors the
    benchmark crossover plots (where does enumeration stop being
    viable?) and cross-checks the other solvers on tiny instances. *)

val solve :
  alphabet:char list -> ?limit:int -> Qsmt_strtheory.Constr.t -> Qsmt_strtheory.Constr.value option
(** [solve ~alphabet c] tries candidates until one verifies or [limit]
    (default 1,000,000) candidates have been rejected. For
    string-generating constraints the candidate space is
    [alphabet^length]; for {!Qsmt_strtheory.Constr.Includes} it is the
    position range. Characters the constraint forces (e.g. a fixed
    target) are found only if they lie in [alphabet] — choose it
    accordingly. Returns [None] on exhaustion or limit.
    @raise Invalid_argument on an empty alphabet for string constraints. *)

val candidates_tried : alphabet:char list -> Qsmt_strtheory.Constr.t -> int -> int
(** How many candidates {!solve} would try before index [i] — exposed so
    benches can report search-space sizes without re-running. *)
