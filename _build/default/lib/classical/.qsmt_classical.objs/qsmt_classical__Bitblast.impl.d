lib/classical/bitblast.ml: Array Char Cnf Fun List Qsmt_regex Qsmt_strtheory Qsmt_util String
