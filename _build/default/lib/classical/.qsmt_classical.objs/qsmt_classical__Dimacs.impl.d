lib/classical/dimacs.ml: Cnf Format Fun In_channel List Printf String
