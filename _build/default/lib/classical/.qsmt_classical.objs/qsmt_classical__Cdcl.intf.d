lib/classical/cdcl.mli: Cnf Format Qsmt_util
