lib/classical/strsolver.mli: Cdcl Qsmt_strtheory
