lib/classical/brute.ml: Array List Qsmt_strtheory String
