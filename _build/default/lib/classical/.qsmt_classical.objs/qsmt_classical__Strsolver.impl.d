lib/classical/strsolver.ml: Bitblast Cdcl Cnf List Qsmt_strtheory
