lib/classical/cdcl.ml: Array Cnf Format List Qsmt_util Unix
