lib/classical/cnf.mli: Format Qsmt_util
