lib/classical/dimacs.mli: Cnf Format
