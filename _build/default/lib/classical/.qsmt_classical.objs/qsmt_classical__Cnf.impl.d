lib/classical/cnf.ml: Format List Printf Qsmt_util
