lib/classical/brute.mli: Qsmt_strtheory
