lib/classical/bitblast.mli: Cnf Qsmt_strtheory Qsmt_util
