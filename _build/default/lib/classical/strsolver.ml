module Constr = Qsmt_strtheory.Constr
module Pipeline = Qsmt_strtheory.Pipeline

type outcome = {
  constr : Constr.t;
  result : [ `Sat | `Unsat | `Unknown ];
  value : Constr.value option;
  satisfied : bool;
  sat_stats : Cdcl.stats;
  cnf_vars : int;
  cnf_clauses : int;
}

let solve ?conflict_budget constr =
  let cnf = Bitblast.encode constr in
  let result, sat_stats = Cdcl.solve ?conflict_budget cnf in
  let result, value =
    match result with
    | Cdcl.Sat model -> (`Sat, Some (Bitblast.decode constr model))
    | Cdcl.Unsat -> (`Unsat, None)
    | Cdcl.Unknown -> (`Unknown, None)
  in
  let satisfied = match value with Some v -> Constr.verify constr v | None -> false in
  {
    constr;
    result;
    value;
    satisfied;
    sat_stats;
    cnf_vars = cnf.Cnf.num_vars;
    cnf_clauses = Cnf.num_clauses cnf;
  }

let solve_pipeline ?conflict_budget pipeline =
  let first = solve ?conflict_budget pipeline.Pipeline.initial in
  let string_of o =
    match o.value with Some (Constr.Str s) -> s | Some (Constr.Pos _) | None -> ""
  in
  let _, outcomes =
    List.fold_left
      (fun (input, acc) stage ->
        let constr = Pipeline.constraint_for stage ~input in
        let o = solve ?conflict_budget constr in
        (string_of o, o :: acc))
      (string_of first, [ first ])
      pipeline.Pipeline.stages
  in
  List.rev outcomes
