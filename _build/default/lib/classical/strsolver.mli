(** Classical string-constraint solver (the z3 stand-in).

    Same input language and output contract as the annealing
    {!Qsmt_strtheory.Solver}, but complete: bit-blast to CNF, run CDCL,
    decode the model. [`Unsat] is a real proof (the annealer can never
    say that), [`Unknown] only appears when a conflict budget is set. *)

type outcome = {
  constr : Qsmt_strtheory.Constr.t;
  result : [ `Sat | `Unsat | `Unknown ];
  value : Qsmt_strtheory.Constr.value option;  (** decoded model when [`Sat] *)
  satisfied : bool;  (** classical verification of [value] *)
  sat_stats : Cdcl.stats;
  cnf_vars : int;
  cnf_clauses : int;
}

val solve : ?conflict_budget:int -> Qsmt_strtheory.Constr.t -> outcome

val solve_pipeline :
  ?conflict_budget:int -> Qsmt_strtheory.Pipeline.t -> outcome list
(** Sequential composition, mirroring the annealing solver's §4.12
    treatment. A stage whose model is missing feeds [""] onward. *)
