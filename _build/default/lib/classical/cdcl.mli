(** CDCL SAT solver.

    A conflict-driven clause-learning solver with the standard modern
    kernel: two-watched-literal propagation, first-UIP conflict analysis
    with clause learning and non-chronological backjumping, VSIDS-style
    activity ordering with phase saving, and geometric restarts. It is
    the SAT core of the classical baseline ("z3 stand-in") that the
    annealing solver is benchmarked against, and is complete: given
    enough budget it answers Sat or Unsat, never silently wrong.

    Sizes here are small (thousands of variables at most), so the
    implementation favors clarity over heap-ordered decision queues —
    decisions scan for the max-activity unassigned variable. *)

type result =
  | Sat of Qsmt_util.Bitvec.t  (** satisfying total assignment *)
  | Unsat
  | Unknown  (** conflict budget exhausted *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  restarts : int;
  time_s : float;
}

val solve : ?conflict_budget:int -> Cnf.t -> result * stats
(** [conflict_budget] (default unlimited) bounds the number of conflicts
    before answering [Unknown]. Deterministic: no randomized decisions. *)

val pp_stats : Format.formatter -> stats -> unit
