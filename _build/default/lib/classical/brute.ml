module Constr = Qsmt_strtheory.Constr

let string_length_of = function
  | Constr.Equals s | Constr.Reverse s -> String.length s
  | Constr.Concat parts -> List.fold_left (fun acc s -> acc + String.length s) 0 parts
  | Constr.Contains { length; _ }
  | Constr.Index_of { length; _ }
  | Constr.Palindrome { length }
  | Constr.Regex { length; _ } ->
    length
  | Constr.Has_length { num_chars; _ } -> num_chars
  | Constr.Replace_all { source; _ } | Constr.Replace_first { source; _ } -> String.length source
  | Constr.Includes _ -> 0

let solve ~alphabet ?(limit = 1_000_000) constr =
  match constr with
  | Constr.Includes { haystack; needle } ->
    let positions = String.length haystack - String.length needle + 1 in
    let rec go p =
      if p >= positions then None
      else if Constr.verify constr (Constr.Pos (Some p)) then Some (Constr.Pos (Some p))
      else go (p + 1)
    in
    go 0
  | _ ->
    if alphabet = [] then invalid_arg "Brute.solve: empty alphabet";
    let alpha = Array.of_list alphabet in
    let k = Array.length alpha in
    let n = string_length_of constr in
    let counters = Array.make n 0 in
    let render () = String.init n (fun i -> alpha.(counters.(i))) in
    let rec bump i = (* little-endian increment; false on wraparound *)
      if i >= n then false
      else if counters.(i) + 1 < k then begin
        counters.(i) <- counters.(i) + 1;
        true
      end
      else begin
        counters.(i) <- 0;
        bump (i + 1)
      end
    in
    let rec go tried =
      if tried >= limit then None
      else begin
        let candidate = Constr.Str (render ()) in
        if Constr.verify constr candidate then Some candidate
        else if bump 0 then go (tried + 1)
        else None
      end
    in
    go 0

let candidates_tried ~alphabet constr i =
  match constr with
  | Constr.Includes _ -> i
  | _ ->
    let k = List.length alphabet in
    let n = string_length_of constr in
    let space = float_of_int k ** float_of_int n in
    min i (if space > 1e15 then max_int else int_of_float space)
