let pp ppf (cnf : Cnf.t) =
  Format.fprintf ppf "p cnf %d %d@\n" cnf.Cnf.num_vars (Cnf.num_clauses cnf);
  List.iter
    (fun clause ->
      List.iter
        (fun lit ->
          let v = Cnf.var_of lit + 1 in
          Format.fprintf ppf "%d " (if Cnf.is_pos lit then v else -v))
        clause;
      Format.fprintf ppf "0@\n")
    cnf.Cnf.clauses

let to_string cnf = Format.asprintf "%a" pp cnf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec loop lineno = function
    | [] -> begin
      match (!header, !current) with
      | None, _ -> Error "missing 'p cnf' header"
      | Some _, _ :: _ -> Error "last clause not terminated by 0"
      | Some (vars, nclauses), [] ->
        let clauses = List.rev !clauses in
        if List.length clauses <> nclauses then
          Error
            (Printf.sprintf "header declares %d clauses, found %d" nclauses
               (List.length clauses))
        else begin
          try Ok (Cnf.create ~num_vars:vars clauses) with Invalid_argument m -> Error m
        end
    end
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then loop (lineno + 1) rest
      else if String.length line >= 1 && line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "p"; "cnf"; vars; nclauses ] -> begin
          match (int_of_string_opt vars, int_of_string_opt nclauses) with
          | Some v, Some c when v >= 0 && c >= 0 ->
            if !header <> None then error lineno "duplicate header"
            else begin
              header := Some (v, c);
              loop (lineno + 1) rest
            end
          | _ -> error lineno "bad header numbers"
        end
        | _ -> error lineno "malformed 'p cnf' header"
      end
      else if !header = None then error lineno "clause before header"
      else begin
        let tokens = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
        let rec eat = function
          | [] -> Ok ()
          | tok :: more -> begin
            match int_of_string_opt tok with
            | None -> Error (Printf.sprintf "line %d: bad literal %S" lineno tok)
            | Some 0 ->
              if !current = [] then Error (Printf.sprintf "line %d: empty clause" lineno)
              else begin
                clauses := List.rev !current :: !clauses;
                current := [];
                eat more
              end
            | Some lit ->
              let v = abs lit - 1 in
              current := (if lit > 0 then Cnf.pos v else Cnf.neg v) :: !current;
              eat more
          end
        in
        match eat tokens with Error _ as e -> e | Ok () -> loop (lineno + 1) rest
      end
  in
  loop 1 lines

let of_string_exn text =
  match of_string text with
  | Ok cnf -> cnf
  | Error msg -> invalid_arg ("Dimacs.of_string_exn: " ^ msg)

let write_file path cnf =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string cnf))

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_string (In_channel.input_all ic))
