(** Convergence trajectories.

    Records how the annealer's energy evolves over the schedule — the
    "energy vs sweep" curves annealing papers plot to justify schedule
    lengths. Each read contributes its best-so-far energy per sweep;
    trajectories aggregate reads by mean, so a flat tail says the
    schedule is long enough and a still-falling tail says it is not. *)

type t = {
  sweeps : int;
  mean_best : float array;  (** mean over reads of best-so-far energy after each sweep *)
  mean_current : float array;  (** mean over reads of current energy after each sweep *)
  final_best : float;  (** lowest energy any read reached *)
}

val sa_trajectory :
  ?reads:int -> ?sweeps:int -> ?seed:int -> Qsmt_qubo.Qubo.t -> t
(** Runs plain SA (auto schedule) with per-sweep recording; defaults 16
    reads × 500 sweeps. Energies are QUBO energies (offset included).
    @raise Invalid_argument on non-positive reads/sweeps or an empty
    problem. *)

val sweeps_to_reach : t -> target:float -> ?tol:float -> unit -> int option
(** First sweep index at which the mean best-so-far energy is within
    [tol] (default [1e-9]) of [target]; [None] if never. *)

val pp : Format.formatter -> t -> unit
(** A compact sparkline-style summary (start, quartiles, end). *)
