module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Qgraph = Qsmt_qubo.Qgraph

type coupling = Pm_one | Gaussian

let gaussian rng =
  let u1 = Float.max 1e-12 (Prng.float rng) in
  let u2 = Prng.float rng in
  sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let draw rng = function
  | Pm_one -> if Prng.bool rng then 1. else -1.
  | Gaussian -> gaussian rng

(* Build the QUBO form of h, J directly: s_i = 2 x_i - 1 as in
   Ising.to_qubo, inlined here to avoid an intermediate structure. *)
let qubo_of_ising n ~h ~j =
  let b = Qubo.builder () in
  let offset = ref 0. in
  Array.iteri
    (fun i hi ->
      if hi <> 0. then Qubo.add b i i (2. *. hi);
      offset := !offset -. hi)
    h;
  List.iter
    (fun (i, k, v) ->
      Qubo.add b i k (4. *. v);
      Qubo.add b i i (-2. *. v);
      Qubo.add b k k (-2. *. v);
      offset := !offset +. v)
    j;
  Qubo.set_offset b !offset;
  Qubo.freeze ~num_vars:n b

let random_on_graph ~rng ?(coupling = Pm_one) ?(field = 0.) graph =
  let n = Qgraph.num_vertices graph in
  let h =
    Array.init n (fun _ -> if field = 0. then 0. else Prng.uniform rng (-.field) field)
  in
  let j = ref [] in
  Qgraph.iter_edges graph (fun i k -> j := (i, k, draw rng coupling) :: !j);
  qubo_of_ising n ~h ~j:!j

let planted ~rng ?(coupling = Pm_one) graph =
  let n = Qgraph.num_vertices graph in
  let target = Bitvec.random rng n in
  let sign i = if Bitvec.get target i then 1. else -1. in
  (* edge (i,k): energy term J s_i s_k; choosing J = -|J| s*_i s*_k makes
     the target minimize every term independently, so it is a global
     ground state. *)
  let j = ref [] in
  let energy = ref 0. in
  Qgraph.iter_edges graph (fun i k ->
      let magnitude = Float.abs (draw rng coupling) in
      let magnitude = if magnitude = 0. then 1. else magnitude in
      let jv = -.magnitude *. sign i *. sign k in
      energy := !energy +. (jv *. sign i *. sign k);
      j := (i, k, jv) :: !j);
  let qubo = qubo_of_ising n ~h:(Array.make n 0.) ~j:!j in
  (qubo, target, !energy)

let frustration_index q x =
  (* judge coupler satisfaction in the Ising picture, where each edge
     term J s_i s_k has a well-defined sign independent of the diagonal *)
  let ising = Qsmt_qubo.Ising.of_qubo q in
  let sign i = if Bitvec.get x i then 1. else -1. in
  let total = ref 0 and unsat = ref 0 in
  List.iter
    (fun (i, k, j) ->
      incr total;
      if j *. sign i *. sign k > 0. then incr unsat)
    (Qsmt_qubo.Ising.couplings ising);
  if !total = 0 then 0. else float_of_int !unsat /. float_of_int !total
