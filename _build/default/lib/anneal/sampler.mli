(** Uniform sampler interface.

    The string-theory solver and the benchmark harness are parametric in
    the sampler; this type is the common currency. Constructors wrap
    each concrete sampler with its parameter record baked in. *)

type t

val name : t -> string

val run : ?verify:(Qsmt_util.Bitvec.t -> bool) -> t -> Qsmt_qubo.Qubo.t -> Sampleset.t
(** May raise the underlying sampler's exceptions (e.g.
    {!Hardware.Embedding_failed}, {!Exact}'s size cap). [verify] is an
    early-exit hook consumed only by {!portfolio} samplers (see
    {!Portfolio.run}); every other sampler ignores it, keeping their
    output deterministic. *)

val make : name:string -> (Qsmt_qubo.Qubo.t -> Sampleset.t) -> t
(** Wrap an arbitrary sampling function (used by tests to inject oracles
    and failure modes). {!with_seed} leaves such samplers unchanged. *)

val simulated_annealing : ?params:Sa.params -> unit -> t
val simulated_quantum_annealing : ?params:Sqa.params -> unit -> t
val tabu : ?params:Tabu.params -> unit -> t
val parallel_tempering : ?params:Pt.params -> unit -> t
val greedy : ?params:Greedy.params -> unit -> t
val exact : ?keep:int -> unit -> t
val hardware : params:Hardware.params -> t
(** Drops the hardware diagnostics; use {!Hardware.sample} directly when
    you need chain statistics. *)

val portfolio : ?params:Portfolio.params -> unit -> t
(** Races several samplers concurrently and merges their sample sets;
    honors {!run}'s [verify] for early exit. Use {!Portfolio.run}
    directly when you need per-member reports. *)

val with_seed : t -> int -> t
(** A sampler identical to the input but reseeded. Samplers without a
    seed ({!exact}, {!make}) are returned unchanged. *)

val default_suite : seed:int -> t list
(** The ablation suite: SA, SQA, parallel tempering, tabu, greedy —
    everything that scales past {!Exact.max_vars} — with matching
    seeds. *)
