module Qgraph = Qsmt_qubo.Qgraph

type t = { graph : Qgraph.t; name : string }

type chimera_coord = { row : int; col : int; side : int; k : int }

let chimera_index ~m ~n ~t coord =
  if
    coord.row < 0 || coord.row >= m || coord.col < 0 || coord.col >= n
    || coord.side < 0 || coord.side > 1 || coord.k < 0 || coord.k >= t
  then invalid_arg "Topology.chimera_index: coordinate out of range";
  ((((coord.row * n) + coord.col) * 2) + coord.side) * t + coord.k

let chimera_coord ~m ~n ~t idx =
  let total = m * n * 2 * t in
  if idx < 0 || idx >= total then invalid_arg "Topology.chimera_coord: index out of range";
  let k = idx mod t in
  let rest = idx / t in
  let side = rest mod 2 in
  let cell = rest / 2 in
  { row = cell / n; col = cell mod n; side; k }

let chimera ~m ?n ?(t = 4) () =
  let n = match n with Some n -> n | None -> m in
  if m < 1 || n < 1 || t < 1 then invalid_arg "Topology.chimera: dimensions must be >= 1";
  let g = Qgraph.create (m * n * 2 * t) in
  let index row col side k = chimera_index ~m ~n ~t { row; col; side; k } in
  for row = 0 to m - 1 do
    for col = 0 to n - 1 do
      (* Intra-cell bipartite K_{t,t}. *)
      for a = 0 to t - 1 do
        for b = 0 to t - 1 do
          Qgraph.add_edge g (index row col 0 a) (index row col 1 b)
        done
      done;
      (* Vertical (side 0) qubits couple to the cell below. *)
      if row + 1 < m then
        for k = 0 to t - 1 do
          Qgraph.add_edge g (index row col 0 k) (index (row + 1) col 0 k)
        done;
      (* Horizontal (side 1) qubits couple to the cell to the right. *)
      if col + 1 < n then
        for k = 0 to t - 1 do
          Qgraph.add_edge g (index row col 1 k) (index row (col + 1) 1 k)
        done
    done
  done;
  { graph = g; name = Printf.sprintf "chimera(%d,%d,%d)" m n t }

let king ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Topology.king: dimensions must be >= 1";
  let g = Qgraph.create (rows * cols) in
  let index r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      (* Right, down, and both diagonals; the symmetric cases come from
         the neighbouring cell's iteration. *)
      if c + 1 < cols then Qgraph.add_edge g (index r c) (index r (c + 1));
      if r + 1 < rows then begin
        Qgraph.add_edge g (index r c) (index (r + 1) c);
        if c + 1 < cols then Qgraph.add_edge g (index r c) (index (r + 1) (c + 1));
        if c > 0 then Qgraph.add_edge g (index r c) (index (r + 1) (c - 1))
      end
    done
  done;
  { graph = g; name = Printf.sprintf "king(%dx%d)" rows cols }

let complete n =
  if n < 0 then invalid_arg "Topology.complete: negative size";
  let g = Qgraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Qgraph.add_edge g i j
    done
  done;
  { graph = g; name = Printf.sprintf "complete(%d)" n }

let graph t = t.graph
let name t = t.name
let num_qubits t = Qgraph.num_vertices t.graph
