(** Annealer hardware topologies.

    Physical annealers do not offer all-to-all connectivity: qubits sit in
    a fixed wiring graph and logical problems must be minor-embedded into
    it ({!Embedding}). This module generates the standard graphs:

    - {!chimera}: D-Wave 2000Q-style C(m,n,t) — an m×n grid of K_{t,t}
      bipartite unit cells, vertical qubits chained down columns and
      horizontal qubits across rows (degree ≤ t+2);
    - {!king}: the king's-move grid used by CMOS/digital annealers
      (Fujitsu DA, Hitachi) — 8-neighbor lattice;
    - {!complete}: all-to-all, the idealized topology (embedding becomes
      the identity). *)

type t

val chimera : m:int -> ?n:int -> ?t:int -> unit -> t
(** [chimera ~m ~n ~t ()] is C(m,n,t): [n] defaults to [m], [t] to 4.
    Qubits are numbered [((row*n + col)*2 + side)*t + k] with
    [side = 0] vertical, [side = 1] horizontal.
    @raise Invalid_argument if any dimension is < 1. *)

val king : rows:int -> cols:int -> t
(** 8-connected grid; qubit [(r, c)] is numbered [r*cols + c]. *)

val complete : int -> t
(** [complete n] is K_n. *)

val graph : t -> Qsmt_qubo.Qgraph.t
val name : t -> string
val num_qubits : t -> int

(** {1 Chimera coordinates} *)

type chimera_coord = { row : int; col : int; side : int; k : int }

val chimera_index : m:int -> n:int -> t:int -> chimera_coord -> int
(** Linear qubit number of a coordinate.
    @raise Invalid_argument if the coordinate is out of range. *)

val chimera_coord : m:int -> n:int -> t:int -> int -> chimera_coord
(** Inverse of {!chimera_index}. *)
