(** Exhaustive ground-state solver.

    Enumerates all [2^n] assignments in Gray-code order (one bit flip —
    hence one O(degree) delta-energy update — per step). Only viable for
    small problems; it is the oracle the samplers are tested against and
    the exact baseline in the benchmark ablations. *)

val max_vars : int
(** Hard cap (30) on the variable count {!solve} accepts. *)

val solve : ?keep:int -> ?stop:(unit -> bool) -> Qsmt_qubo.Qubo.t -> Sampleset.t
(** [solve ~keep q] enumerates every assignment and returns the [keep]
    (default 16) lowest-energy ones as a sample set (ties beyond [keep]
    are dropped deterministically by assignment order). [stop] is polled
    every 4096 visited states; once it returns [true] the enumeration is
    abandoned and the best states seen so far are returned (the result is
    then no longer guaranteed to contain the ground state).
    @raise Invalid_argument if [num_vars q > max_vars]. *)

val ground_states : Qsmt_qubo.Qubo.t -> Qsmt_util.Bitvec.t list * float
(** All assignments achieving the minimum energy (within [1e-9]), with
    that energy. Assignments are listed in Gray-code enumeration order
    (deterministic).
    @raise Invalid_argument if [num_vars q > max_vars]. *)

val minimum_energy : Qsmt_qubo.Qubo.t -> float
(** Ground-state energy only. *)
