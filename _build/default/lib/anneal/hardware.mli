(** Hardware-model sampler: the full QPU workflow in simulation.

    Reproduces the pipeline a real annealer submission goes through —
    minor-embed the logical problem into a fixed topology (then trim the
    chains, {!Embedding.trim}), rewrite it
    onto physical qubits with chain penalties, optionally perturb the
    physical coefficients with Gaussian control noise (integrated control
    errors, a dominant imperfection of analog annealers), anneal the
    physical problem, then majority-vote broken chains back to logical
    assignments.

    This is the substrate for the paper's "testing these formulations on
    a real quantum computer" future work: the same QUBO formulations run
    unchanged, and the experiment harness measures what embedding and
    noise cost them. *)

type params = {
  topology : Topology.t;
  chain_strength : float option;
      (** [None] (default) uses {!Chain.default_strength} of the logical
          problem *)
  noise_sigma : float;
      (** std-dev of Gaussian noise added to every physical coefficient,
          relative to the largest |coefficient| (default 0. = ideal
          hardware) *)
  embed_tries : int;  (** randomized embedding attempts (default 16) *)
  anneal : Sa.params;  (** annealer run on the physical problem *)
}

val default_params : Topology.t -> params

type result = {
  samples : Sampleset.t;  (** logical samples, energies under the logical QUBO *)
  embedding : Embedding.t;
  chain_strength : float;
  physical_vars : int;  (** qubits of the topology *)
  max_chain_length : int;
  mean_chain_break_fraction : float;  (** averaged over reads *)
}

exception Embedding_failed of string
(** Raised when no embedding is found within [embed_tries] attempts. *)

val sample : ?params:params -> Qsmt_qubo.Qubo.t -> result
(** @raise Embedding_failed if the problem does not fit the topology.
    @raise Invalid_argument on nonsensical parameters. *)
