module Bitvec = Qsmt_util.Bitvec
module Qubo = Qsmt_qubo.Qubo

let max_vars = 30

let check q =
  let n = Qubo.num_vars q in
  if n > max_vars then
    invalid_arg (Printf.sprintf "Exact: %d variables exceeds the %d-variable cap" n max_vars);
  n

(* Gray-code walk: assignment k and k+1 differ in exactly bit
   [ntz (k+1)], so each step is one flip_delta. [visit] receives the
   current assignment (do not retain it without copying) and its energy. *)
let enumerate q visit =
  let n = check q in
  let x = Bitvec.create n in
  let e = ref (Qubo.energy q x) in
  visit x !e;
  if n > 0 then begin
    let total = 1 lsl n in
    for k = 1 to total - 1 do
      let bit =
        let rec ntz v acc = if v land 1 = 1 then acc else ntz (v lsr 1) (acc + 1) in
        ntz k 0
      in
      e := !e +. Qubo.flip_delta q x bit;
      Bitvec.flip x bit;
      visit x !e
    done
  end

exception Stopped

let solve ?(keep = 16) ?stop q =
  if keep < 1 then invalid_arg "Exact.solve: keep < 1";
  (* Keep the best [keep] seen so far in a sorted association list; keep
     is small so linear insertion is fine. *)
  let best = ref [] in
  let count = ref 0 in
  let worst = ref infinity in
  (* Poll the cancellation flag every 4096 states: an enumeration over 30
     variables walks 2^30 assignments, and the portfolio must be able to
     cut it off when another member already verified a solution. *)
  let visited = ref 0 in
  let visit x e =
    incr visited;
    (match stop with
    | Some f when !visited land 4095 = 0 && f () -> raise Stopped
    | _ -> ());
    if !count < keep || e < !worst then begin
      let entry = { Sampleset.bits = Bitvec.copy x; energy = e; occurrences = 1 } in
      let inserted = List.sort (fun a b -> compare a.Sampleset.energy b.Sampleset.energy) (entry :: !best) in
      let trimmed = List.filteri (fun i _ -> i < keep) inserted in
      best := trimmed;
      count := List.length trimmed;
      worst := (List.nth trimmed (!count - 1)).Sampleset.energy
    end
  in
  (try enumerate q visit with Stopped -> ());
  Sampleset.of_entries !best

let ground_states q =
  (* Two passes: find the minimum exactly, then collect every assignment
     within tolerance of it — avoids drift when the running minimum
     tightens after near-ties were already collected. *)
  let tol = 1e-9 in
  let best_e = ref infinity in
  enumerate q (fun _ e -> if e < !best_e then best_e := e);
  let states = ref [] in
  enumerate q (fun x e -> if e <= !best_e +. tol then states := Bitvec.copy x :: !states);
  (List.rev !states, !best_e)

let minimum_energy q =
  let best = ref infinity in
  enumerate q (fun _ e -> if e < !best then best := e);
  !best
