lib/anneal/chain.ml: Array Embedding Float List Printf Qsmt_qubo Qsmt_util
