lib/anneal/sampleset.mli: Format Qsmt_qubo Qsmt_util
