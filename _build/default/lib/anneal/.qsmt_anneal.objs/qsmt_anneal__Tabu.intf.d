lib/anneal/tabu.mli: Qsmt_qubo Sampleset
