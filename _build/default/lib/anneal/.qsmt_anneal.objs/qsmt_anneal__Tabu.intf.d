lib/anneal/tabu.mli: Qsmt_qubo Qsmt_util Sampleset
