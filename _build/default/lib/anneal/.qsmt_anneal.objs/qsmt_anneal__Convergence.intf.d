lib/anneal/convergence.mli: Format Qsmt_qubo
