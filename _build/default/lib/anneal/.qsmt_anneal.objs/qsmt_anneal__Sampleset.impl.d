lib/anneal/sampleset.ml: Array Format Hashtbl List Qsmt_qubo Qsmt_util
