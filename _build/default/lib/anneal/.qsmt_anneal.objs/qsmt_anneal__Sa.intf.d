lib/anneal/sa.mli: Qsmt_qubo Qsmt_util Sampleset Schedule
