lib/anneal/convergence.ml: Array Format Qsmt_qubo Qsmt_util Sa Schedule
