lib/anneal/metrics.mli: Format Sampleset
