lib/anneal/tabu.ml: Array Qsmt_qubo Qsmt_util Sampleset
