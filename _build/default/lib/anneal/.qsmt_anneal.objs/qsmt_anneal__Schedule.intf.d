lib/anneal/schedule.mli: Format Qsmt_qubo
