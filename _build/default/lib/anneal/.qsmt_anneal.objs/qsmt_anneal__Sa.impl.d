lib/anneal/sa.ml: Array Float Qsmt_qubo Qsmt_util Sampleset Schedule
