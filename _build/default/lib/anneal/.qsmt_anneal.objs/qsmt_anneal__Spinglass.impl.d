lib/anneal/spinglass.ml: Array Float List Qsmt_qubo Qsmt_util
