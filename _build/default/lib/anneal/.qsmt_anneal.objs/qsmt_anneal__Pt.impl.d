lib/anneal/pt.ml: Array Float Qsmt_qubo Qsmt_util Sampleset Schedule
