lib/anneal/hardware.ml: Chain Embedding Float List Printf Qsmt_qubo Qsmt_util Sa Sampleset Topology
