lib/anneal/sqa.mli: Qsmt_qubo Sampleset
