lib/anneal/sqa.mli: Qsmt_qubo Qsmt_util Sampleset
