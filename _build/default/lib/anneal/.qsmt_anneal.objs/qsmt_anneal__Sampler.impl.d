lib/anneal/sampler.ml: Exact Greedy Hardware Pt Qsmt_qubo Sa Sampleset Sqa Tabu
