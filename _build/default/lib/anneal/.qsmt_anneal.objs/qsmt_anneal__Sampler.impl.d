lib/anneal/sampler.ml: Exact Greedy Hardware Portfolio Pt Qsmt_qubo Sa Sampleset Sqa Tabu
