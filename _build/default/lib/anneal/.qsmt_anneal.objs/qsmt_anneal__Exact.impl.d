lib/anneal/exact.ml: List Printf Qsmt_qubo Qsmt_util Sampleset
