lib/anneal/portfolio.mli: Greedy Pt Qsmt_qubo Qsmt_util Sa Sampleset Sqa Tabu
