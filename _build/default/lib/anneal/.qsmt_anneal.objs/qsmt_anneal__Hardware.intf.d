lib/anneal/hardware.mli: Embedding Qsmt_qubo Sa Sampleset Topology
