lib/anneal/topology.mli: Qsmt_qubo
