lib/anneal/spinglass.mli: Qsmt_qubo Qsmt_util
