lib/anneal/topology.ml: Printf Qsmt_qubo
