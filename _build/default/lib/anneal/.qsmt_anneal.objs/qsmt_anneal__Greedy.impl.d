lib/anneal/greedy.ml: Array Qsmt_qubo Qsmt_util Sampleset
