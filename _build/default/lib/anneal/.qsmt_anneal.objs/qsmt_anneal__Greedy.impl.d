lib/anneal/greedy.ml: Array Fun List Qsmt_qubo Qsmt_util Sampleset
