lib/anneal/chain.mli: Embedding Qsmt_qubo Qsmt_util
