lib/anneal/sqa.ml: Array Float Fun List Qsmt_qubo Qsmt_util Sampleset Schedule
