lib/anneal/sqa.ml: Array Float Qsmt_qubo Qsmt_util Sampleset Schedule
