lib/anneal/sampler.mli: Greedy Hardware Portfolio Pt Qsmt_qubo Qsmt_util Sa Sampleset Sqa Tabu
