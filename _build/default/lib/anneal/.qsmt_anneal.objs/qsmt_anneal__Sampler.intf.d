lib/anneal/sampler.mli: Greedy Hardware Pt Qsmt_qubo Sa Sampleset Sqa Tabu
