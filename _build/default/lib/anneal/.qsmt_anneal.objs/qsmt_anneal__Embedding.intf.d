lib/anneal/embedding.mli: Format Qsmt_qubo
