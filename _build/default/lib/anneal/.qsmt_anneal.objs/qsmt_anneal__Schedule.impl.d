lib/anneal/schedule.ml: Array Float Format List Qsmt_qubo
