lib/anneal/portfolio.ml: Array Atomic Exact Greedy List Printexc Pt Qsmt_qubo Qsmt_util Sa Sampleset Sqa Tabu Unix
