lib/anneal/greedy.mli: Qsmt_qubo Qsmt_util Sampleset
