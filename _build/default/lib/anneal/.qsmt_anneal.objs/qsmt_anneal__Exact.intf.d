lib/anneal/exact.mli: Qsmt_qubo Qsmt_util Sampleset
