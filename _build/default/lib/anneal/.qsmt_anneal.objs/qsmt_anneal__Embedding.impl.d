lib/anneal/embedding.ml: Array Format Hashtbl List Printf Qsmt_qubo Qsmt_util Queue
