lib/anneal/pt.mli: Qsmt_qubo Sampleset
