lib/anneal/pt.mli: Qsmt_qubo Qsmt_util Sampleset
