lib/anneal/metrics.ml: Float Format List Sampleset
