module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Parallel = Qsmt_util.Parallel
module Qubo = Qsmt_qubo.Qubo

type params = {
  restarts : int;
  iterations : int;
  tenure : int option;
  seed : int;
  domains : int;
}

let default = { restarts = 8; iterations = 500; tenure = None; seed = 0; domains = 1 }

let search q ~rng ~iterations ~tenure ?stop () =
  let n = Qubo.num_vars q in
  let x = Bitvec.random rng n in
  let energy = ref (Qubo.energy q x) in
  let best = ref (Bitvec.copy x) in
  let best_energy = ref !energy in
  let stopped () = match stop with Some f -> f () | None -> false in
  (* tabu_until.(i): first iteration at which flipping i is allowed again *)
  let tabu_until = Array.make n 0 in
  (* Poll [stop] every 64 iterations: each iteration is already O(n), the
     check just has to stay off the inner loop. *)
  let cursor = ref 0 in
  while !cursor < iterations && ((!cursor land 63) <> 0 || not (stopped ())) do
    let it = !cursor in
    (* Best admissible move: most negative delta among non-tabu flips,
       or any tabu flip that would beat the incumbent (aspiration). *)
    let chosen = ref (-1) and chosen_delta = ref infinity in
    for i = 0 to n - 1 do
      let delta = Qubo.flip_delta q x i in
      let admissible = tabu_until.(i) <= it || !energy +. delta < !best_energy -. 1e-12 in
      if admissible && delta < !chosen_delta then begin
        chosen := i;
        chosen_delta := delta
      end
    done;
    (* All moves tabu and none aspirates: fall back to a random kick so
       the search cannot stall. *)
    let i = if !chosen >= 0 then !chosen else Prng.int rng n in
    let delta = if !chosen >= 0 then !chosen_delta else Qubo.flip_delta q x i in
    Bitvec.flip x i;
    energy := !energy +. delta;
    tabu_until.(i) <- it + 1 + tenure;
    if !energy < !best_energy then begin
      best_energy := !energy;
      best := Bitvec.copy x
    end;
    incr cursor
  done;
  !best

let sample ?(params = default) ?stop ?on_read q =
  if params.restarts < 1 then invalid_arg "Tabu.sample: restarts < 1";
  if params.iterations < 1 then invalid_arg "Tabu.sample: iterations < 1";
  let n = Qubo.num_vars q in
  if n = 0 then Sampleset.of_bits q [ Bitvec.create 0 ]
  else begin
    let tenure =
      match params.tenure with
      | Some t ->
        if t < 0 then invalid_arg "Tabu.sample: negative tenure";
        t
      | None -> min ((n / 4) + 1) 20
    in
    let stopped () = match stop with Some f -> f () | None -> false in
    let run r =
      if stopped () then None
      else begin
        let rng = Prng.stream ~seed:params.seed r in
        let bits = search q ~rng ~iterations:params.iterations ~tenure ?stop () in
        (match on_read with Some f -> f bits | None -> ());
        Some bits
      end
    in
    let samples = Parallel.init_array ~domains:params.domains params.restarts run in
    Sampleset.of_bits q (List.filter_map Fun.id (Array.to_list samples))
  end
