module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Qgraph = Qsmt_qubo.Qgraph

type params = {
  topology : Topology.t;
  chain_strength : float option;
  noise_sigma : float;
  embed_tries : int;
  anneal : Sa.params;
}

let default_params topology =
  { topology; chain_strength = None; noise_sigma = 0.; embed_tries = 16; anneal = Sa.default }

type result = {
  samples : Sampleset.t;
  embedding : Embedding.t;
  chain_strength : float;
  physical_vars : int;
  max_chain_length : int;
  mean_chain_break_fraction : float;
}

exception Embedding_failed of string

(* Box-Muller; one normal deviate per call is plenty here. *)
let gaussian rng =
  let u1 = Float.max 1e-12 (Prng.float rng) in
  let u2 = Prng.float rng in
  sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let add_noise ~rng ~sigma q =
  if sigma <= 0. then q
  else begin
    let scale = Qubo.max_abs_coefficient q *. sigma in
    let b = Qubo.builder () in
    Qubo.iter_linear q (fun i v -> Qubo.add b i i (v +. (scale *. gaussian rng)));
    Qubo.iter_quadratic q (fun i j v -> Qubo.add b i j (v +. (scale *. gaussian rng)));
    Qubo.add_offset b (Qubo.offset q);
    Qubo.freeze ~num_vars:(Qubo.num_vars q) b
  end

let sample ?params q =
  let params =
    match params with
    | Some p -> p
    | None -> invalid_arg "Hardware.sample: params required (a topology must be chosen)"
  in
  if params.noise_sigma < 0. then invalid_arg "Hardware.sample: negative noise_sigma";
  let hardware = Topology.graph params.topology in
  let problem = Qgraph.of_qubo q in
  let embedding =
    match
      Embedding.find ~seed:params.anneal.Sa.seed ~tries:params.embed_tries ~problem ~hardware ()
    with
    | Some e -> Embedding.trim ~problem ~hardware e
    | None ->
      raise
        (Embedding_failed
           (Printf.sprintf "no embedding of %d-variable problem into %s after %d tries"
              (Qubo.num_vars q) (Topology.name params.topology) params.embed_tries))
  in
  let chain_strength =
    match params.chain_strength with Some c -> c | None -> Chain.default_strength q
  in
  let physical = Chain.embed_qubo q ~embedding ~hardware ~chain_strength in
  let rng = Prng.create (params.anneal.Sa.seed lxor 0x5DEECE66D) in
  let physical = add_noise ~rng ~sigma:params.noise_sigma physical in
  let physical_set = Sa.sample ~params:params.anneal physical in
  (* Project every physical read back to logical space; track how often
     chains came back broken before the majority vote repaired them. *)
  let breaks = ref 0. and reads = ref 0 in
  let logical_bits =
    List.concat_map
      (fun e ->
        breaks := !breaks +. (Chain.chain_break_fraction ~embedding e.Sampleset.bits
                              *. float_of_int e.Sampleset.occurrences);
        reads := !reads + e.Sampleset.occurrences;
        List.init e.Sampleset.occurrences (fun _ -> Chain.unembed ~embedding e.Sampleset.bits))
      (Sampleset.entries physical_set)
  in
  {
    samples = Sampleset.of_bits q logical_bits;
    embedding;
    chain_strength;
    physical_vars = Qgraph.num_vertices hardware;
    max_chain_length = Embedding.max_chain_length embedding;
    mean_chain_break_fraction = (if !reads = 0 then 0. else !breaks /. float_of_int !reads);
  }
