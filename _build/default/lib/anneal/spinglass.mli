(** Spin-glass benchmark instances.

    The string encodings exercise mostly diagonal-dominant landscapes;
    genuinely hard annealing instances are frustrated. This module
    generates the standard test families:

    - {!random_on_graph}: ±J or Gaussian couplers on a given topology
      (the classic Chimera-native benchmark);
    - {!planted}: an instance with a {e known} ground state, built by the
      ferromagnet-in-disguise construction — draw a random target spin
      configuration, then give every edge a coupling whose sign makes the
      target's alignment energetically favorable. The target's energy is
      returned, so sampler success is measurable on problems far beyond
      the exact solver's 30-variable cap.

    Instances are QUBOs (converted from the Ising draw), ready for any
    sampler. *)

type coupling =
  | Pm_one  (** J uniform in {−1, +1} *)
  | Gaussian  (** J ~ N(0, 1) *)

val random_on_graph :
  rng:Qsmt_util.Prng.t -> ?coupling:coupling -> ?field:float -> Qsmt_qubo.Qgraph.t -> Qsmt_qubo.Qubo.t
(** Ising instance on the graph's edges, optional uniform random fields
    in [±field] (default 0.), returned in QUBO form. *)

val planted :
  rng:Qsmt_util.Prng.t ->
  ?coupling:coupling ->
  Qsmt_qubo.Qgraph.t ->
  Qsmt_qubo.Qubo.t * Qsmt_util.Bitvec.t * float
(** [(qubo, target, energy)]: the target assignment attains [energy],
    and no assignment does better (every edge term is individually
    minimized by the target). Degenerate ground states may exist (the
    global spin flip always ties on a field-free instance). *)

val frustration_index : Qsmt_qubo.Qubo.t -> Qsmt_util.Bitvec.t -> float
(** Fraction of couplers that are {e unsatisfied} (contribute positive
    energy) under the assignment — 0 for a planted target, higher for
    genuinely frustrated instances' ground states. *)
