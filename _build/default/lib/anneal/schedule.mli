(** Annealing temperature schedules.

    A schedule is the sequence of inverse temperatures β (one per sweep)
    that a Metropolis annealer follows from hot (accept almost anything)
    to cold (accept almost nothing). The default range is derived from the
    problem the same way D-Wave's neal does it: hot enough that the
    largest single-spin move is accepted with probability ~1/2, cold
    enough that the smallest nonzero move is accepted with probability
    ~1/100. *)

type kind =
  | Geometric  (** β multiplied by a constant ratio each sweep (default) *)
  | Linear  (** β increased by a constant step each sweep *)

type t

val make : ?kind:kind -> beta_hot:float -> beta_cold:float -> sweeps:int -> unit -> t
(** @raise Invalid_argument if [sweeps < 1], a β is non-positive, or
    [beta_hot > beta_cold]. *)

val default_beta_range : Qsmt_qubo.Ising.t -> float * float
(** [(beta_hot, beta_cold)] derived from the problem's energy scales.
    Falls back to [(0.1, 10.)] for an all-zero problem. *)

val auto : ?kind:kind -> sweeps:int -> Qsmt_qubo.Ising.t -> t
(** {!make} over {!default_beta_range}. *)

val sweeps : t -> int
val beta : t -> int -> float
(** [beta t k] for sweep [k] in [\[0, sweeps)]. Monotone non-decreasing
    in [k]. *)

val betas : t -> float array
val kind : t -> kind
val pp : Format.formatter -> t -> unit
