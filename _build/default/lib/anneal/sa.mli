(** Simulated annealing sampler.

    The classical stand-in for D-Wave's quantum annealer — and the solver
    the paper actually ran ("we use DWave's Simulated Annealer"). Each
    read is an independent single-spin-flip Metropolis chain over the
    Ising form of the problem, following a β schedule from hot to cold;
    reads can run in parallel across domains (each read owns a PRNG
    stream derived from the master seed, so results are independent of
    the domain count). *)

type params = {
  reads : int;  (** independent annealing runs (default 32) *)
  sweeps : int;  (** full-lattice Metropolis sweeps per read (default 1000) *)
  schedule : Schedule.t option;
      (** β schedule; [None] (default) derives one from the problem via
          {!Schedule.auto} with [sweeps] steps *)
  seed : int;  (** master PRNG seed (default 0) *)
  domains : int;  (** parallel domains for reads (default 1 = sequential) *)
  postprocess : bool;
      (** run steepest-descent to a local minimum after each read
          (default false) *)
}

val default : params

val sample : ?params:params -> Qsmt_qubo.Qubo.t -> Sampleset.t
(** Anneals and returns all reads as a sample set (energies are QUBO
    energies, offset included). A zero-variable problem yields a set with
    one empty assignment. *)

val anneal_ising :
  rng:Qsmt_util.Prng.t ->
  schedule:Schedule.t ->
  ?init:Qsmt_util.Bitvec.t ->
  ?on_sweep:(sweep:int -> energy:float -> unit) ->
  Qsmt_qubo.Ising.t ->
  Qsmt_util.Bitvec.t
(** One annealing read over an Ising problem: starts from [init] (random
    if omitted), runs the full schedule, returns the final spin
    configuration. Exposed for composition (the hardware model reuses it
    on embedded problems). [on_sweep] observes the current energy after
    every sweep (used by {!Convergence} to record trajectories); the
    energy is maintained incrementally, so observation is O(1). *)
