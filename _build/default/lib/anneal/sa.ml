module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Parallel = Qsmt_util.Parallel
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising

type params = {
  reads : int;
  sweeps : int;
  schedule : Schedule.t option;
  seed : int;
  domains : int;
  postprocess : bool;
}

let default = { reads = 32; sweeps = 1000; schedule = None; seed = 0; domains = 1; postprocess = false }

let read_rng ~seed r = Prng.stream ~seed r

let anneal_ising ~rng ~schedule ?init ?on_sweep ?stop ising =
  let n = Ising.num_spins ising in
  let spins = match init with Some s -> Bitvec.copy s | None -> Bitvec.random rng n in
  let energy = ref (match on_sweep with Some _ -> Ising.energy ising spins | None -> 0.) in
  let stopped () = match stop with Some f -> f () | None -> false in
  let k = ref 0 in
  let sweeps = Schedule.sweeps schedule in
  while !k < sweeps && not (stopped ()) do
    let beta = Schedule.beta schedule !k in
    for i = 0 to n - 1 do
      let delta = Ising.flip_delta ising spins i in
      if delta <= 0. || Prng.float rng < Float.exp (-.beta *. delta) then begin
        Bitvec.flip spins i;
        if on_sweep <> None then energy := !energy +. delta
      end
    done;
    (match on_sweep with Some f -> f ~sweep:!k ~energy:!energy | None -> ());
    incr k
  done;
  spins

let descend ising spins =
  (* Steepest descent: repeatedly flip the spin with the most negative
     delta until no flip improves. Terminates because energy strictly
     decreases. *)
  let n = Ising.num_spins ising in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_i = ref (-1) and best_delta = ref 0. in
    for i = 0 to n - 1 do
      let d = Ising.flip_delta ising spins i in
      if d < !best_delta then begin
        best_delta := d;
        best_i := i
      end
    done;
    if !best_i >= 0 then begin
      Bitvec.flip spins !best_i;
      improved := true
    end
  done;
  spins

let sample ?(params = default) ?stop ?on_read q =
  if params.reads < 1 then invalid_arg "Sa.sample: reads < 1";
  if params.sweeps < 1 then invalid_arg "Sa.sample: sweeps < 1";
  let n = Qubo.num_vars q in
  if n = 0 then Sampleset.of_bits q [ Bitvec.create 0 ]
  else begin
    let ising = Ising.of_qubo q in
    let schedule =
      match params.schedule with
      | Some s -> s
      | None -> Schedule.auto ~sweeps:params.sweeps ising
    in
    let stopped () = match stop with Some f -> f () | None -> false in
    let run_read r =
      if stopped () then None
      else begin
        let rng = read_rng ~seed:params.seed r in
        let spins = anneal_ising ~rng ~schedule ?stop ising in
        let spins = if params.postprocess then descend ising spins else spins in
        (match on_read with Some f -> f spins | None -> ());
        Some spins
      end
    in
    let samples = Parallel.init_array ~domains:params.domains params.reads run_read in
    Sampleset.of_bits q (List.filter_map Fun.id (Array.to_list samples))
  end
