lib/qubo/qubo_io.ml: Format Fun In_channel List Printf Qubo String
