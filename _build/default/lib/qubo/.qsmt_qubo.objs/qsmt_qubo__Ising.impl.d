lib/qubo/ising.ml: Array Float Format List Printf Qsmt_util Qubo
