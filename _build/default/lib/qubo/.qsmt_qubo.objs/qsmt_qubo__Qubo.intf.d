lib/qubo/qubo.mli: Format Qsmt_util
