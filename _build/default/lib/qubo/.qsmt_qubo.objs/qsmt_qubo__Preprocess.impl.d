lib/qubo/preprocess.ml: Array Format Hashtbl Printf Qsmt_util Qubo Queue
