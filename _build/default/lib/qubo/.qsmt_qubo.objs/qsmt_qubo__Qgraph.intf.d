lib/qubo/qgraph.mli: Qubo
