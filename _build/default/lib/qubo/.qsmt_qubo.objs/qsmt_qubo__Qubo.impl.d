lib/qubo/qubo.ml: Array Float Format Hashtbl List Printf Qsmt_util
