lib/qubo/qubo_print.mli: Format Qubo
