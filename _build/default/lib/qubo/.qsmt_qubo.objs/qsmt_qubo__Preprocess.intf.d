lib/qubo/preprocess.mli: Format Qsmt_util Qubo
