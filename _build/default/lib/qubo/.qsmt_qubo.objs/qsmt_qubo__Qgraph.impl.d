lib/qubo/qgraph.ml: Array Int List Printf Qubo Queue Set
