lib/qubo/qubo_io.mli: Format Qubo
