lib/qubo/qubo_print.ml: Array Float Format Printf Qubo String
