lib/qubo/ising.mli: Format Qsmt_util Qubo
