let pp ppf q =
  Format.fprintf ppf "qubo %d@\n" (Qubo.num_vars q);
  if Qubo.offset q <> 0. then Format.fprintf ppf "offset %h@\n" (Qubo.offset q);
  Qubo.iter_linear q (fun i v -> Format.fprintf ppf "%d %d %h@\n" i i v);
  Qubo.iter_quadratic q (fun i j v -> Format.fprintf ppf "%d %d %h@\n" i j v)

let to_string q = Format.asprintf "%a" pp q

let of_string text =
  let lines = String.split_on_char '\n' text in
  let b = Qubo.builder () in
  let declared_vars = ref None in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_float s = float_of_string_opt s in
  let rec loop lineno = function
    | [] -> begin
      match !declared_vars with
      | None -> Error "missing 'qubo <n>' header"
      | Some n -> (
        try Ok (Qubo.freeze ~num_vars:n b) with Invalid_argument m -> Error m)
    end
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop (lineno + 1) rest
      else begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "qubo"; n ] -> begin
          match int_of_string_opt n with
          | Some n when n >= 0 ->
            declared_vars := Some n;
            loop (lineno + 1) rest
          | _ -> error lineno "bad variable count"
        end
        | [ "offset"; v ] -> begin
          match parse_float v with
          | Some v ->
            Qubo.add_offset b v;
            loop (lineno + 1) rest
          | None -> error lineno "bad offset"
        end
        | [ i; j; v ] -> begin
          match (int_of_string_opt i, int_of_string_opt j, parse_float v) with
          | Some i, Some j, Some v when i >= 0 && j >= 0 ->
            Qubo.add b i j v;
            loop (lineno + 1) rest
          | _ -> error lineno "bad entry row"
        end
        | _ -> error lineno (Printf.sprintf "unrecognized line %S" line)
      end
  in
  loop 1 lines

let of_string_exn text =
  match of_string text with
  | Ok q -> q
  | Error msg -> invalid_arg ("Qubo_io.of_string_exn: " ^ msg)

let write_file path q =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string q))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
