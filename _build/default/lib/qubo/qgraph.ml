(* Adjacency sets keep add_edge idempotent; neighbor queries sort on
   demand (graphs here are built once, queried many times, so we cache
   the sorted form lazily per vertex). *)

module Int_set = Set.Make (Int)

type t = { n : int; adj : Int_set.t array; mutable edges : int }

let create n =
  if n < 0 then invalid_arg "Qgraph.create: negative size";
  { n; adj = Array.make n Int_set.empty; edges = 0 }

let check g v =
  if v < 0 || v >= g.n then invalid_arg (Printf.sprintf "Qgraph: vertex %d out of [0,%d)" v g.n)

let add_edge g i j =
  check g i;
  check g j;
  if i <> j && not (Int_set.mem j g.adj.(i)) then begin
    g.adj.(i) <- Int_set.add j g.adj.(i);
    g.adj.(j) <- Int_set.add i g.adj.(j);
    g.edges <- g.edges + 1
  end

let of_edges n edges =
  let g = create n in
  List.iter (fun (i, j) -> add_edge g i j) edges;
  g

let of_qubo q =
  let g = create (Qubo.num_vars q) in
  Qubo.iter_quadratic q (fun i j _ -> add_edge g i j);
  g

let num_vertices g = g.n
let num_edges g = g.edges

let mem_edge g i j =
  check g i;
  check g j;
  Int_set.mem j g.adj.(i)

let neighbors g v =
  check g v;
  Int_set.elements g.adj.(v)

let degree g v =
  check g v;
  Int_set.cardinal g.adj.(v)

let iter_edges g f =
  for i = 0 to g.n - 1 do
    Int_set.iter (fun j -> if i < j then f i j) g.adj.(i)
  done

let fold_vertices f g acc =
  let acc = ref acc in
  for v = 0 to g.n - 1 do
    acc := f v !acc
  done;
  !acc

let max_degree g = fold_vertices (fun v acc -> max acc (degree g v)) g 0

let bfs_distances g src =
  check g src;
  let dist = Array.make g.n max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Int_set.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      g.adj.(v)
  done;
  dist

let connected_components g =
  let seen = Array.make g.n false in
  let components = ref [] in
  for v = 0 to g.n - 1 do
    if not seen.(v) then begin
      let comp = ref [] in
      let queue = Queue.create () in
      Queue.add v queue;
      seen.(v) <- true;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        comp := u :: !comp;
        Int_set.iter
          (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
          g.adj.(u)
      done;
      components := List.sort compare !comp :: !components
    end
  done;
  List.rev !components

let is_connected g = List.length (connected_components g) <= 1

let copy g = { n = g.n; adj = Array.copy g.adj; edges = g.edges }
