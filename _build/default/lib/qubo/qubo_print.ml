let format_coeff ~precision v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" precision v

let pp_dense ?(max_dim = 16) ?(precision = 2) ppf q =
  let n = Qubo.num_vars q in
  let dim = min n max_dim in
  let m = Qubo.to_dense q in
  let cells = Array.init dim (fun i -> Array.init dim (fun j -> format_coeff ~precision m.(i).(j))) in
  let width =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun acc s -> max acc (String.length s)) acc row)
      1 cells
  in
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      if j > 0 then Format.pp_print_char ppf ' ';
      Format.fprintf ppf "%*s" width cells.(i).(j)
    done;
    if n > dim && i = dim - 1 then Format.fprintf ppf " ...";
    if i < dim - 1 then Format.pp_print_newline ppf ()
  done;
  if n > dim then Format.fprintf ppf "@\n(showing %dx%d of %dx%d)" dim dim n n

let pp_sparse ppf q =
  let first = ref true in
  let line fmt =
    if !first then first := false else Format.pp_print_newline ppf ();
    Format.fprintf ppf fmt
  in
  Qubo.iter_linear q (fun i v -> line "Q[%d,%d] = %g" i i v);
  Qubo.iter_quadratic q (fun i j v -> line "Q[%d,%d] = %g" i j v);
  if !first then Format.fprintf ppf "(empty)"

let dense_string ?max_dim ?precision q =
  Format.asprintf "%a" (fun ppf -> pp_dense ?max_dim ?precision ppf) q

let pp_diagonal ppf q =
  let n = Qubo.num_vars q in
  Format.pp_print_char ppf '[';
  for i = 0 to n - 1 do
    if i > 0 then Format.pp_print_string ppf ", ";
    Format.pp_print_string ppf (format_coeff ~precision:2 (Qubo.linear q i))
  done;
  Format.pp_print_char ppf ']'
