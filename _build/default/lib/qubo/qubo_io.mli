(** Text serialization of QUBO instances (COO format).

    The format is line-oriented and git-diff friendly:

    {v
    # optional comments
    qubo <num_vars>
    offset <float>
    <i> <j> <coefficient>
    ...
    v}

    with [i <= j]; [i = j] rows are linear terms. It exists so benchmark
    workloads can be dumped, inspected and re-loaded, and so problems can
    be shipped to out-of-process solvers. *)

val to_string : Qubo.t -> string
val pp : Format.formatter -> Qubo.t -> unit

val of_string : string -> (Qubo.t, string) result
(** Parses the format above. Duplicate [(i, j)] rows sum. Returns
    [Error msg] with a line number on malformed input. *)

val of_string_exn : string -> Qubo.t
(** @raise Invalid_argument on malformed input. *)

val write_file : string -> Qubo.t -> unit
val read_file : string -> (Qubo.t, string) result
