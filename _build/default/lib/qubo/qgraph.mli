(** Undirected interaction graphs.

    Minor embedding treats both the problem (which variables are coupled)
    and the hardware (which qubits are wired) as plain undirected graphs;
    this module is that shared representation. Vertices are [0 .. n-1]. *)

type t

val create : int -> t
(** [create n] is an edgeless graph on [n] vertices. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] adds each edge; self-loops and duplicates are
    ignored.
    @raise Invalid_argument on out-of-range endpoints. *)

val of_qubo : Qubo.t -> t
(** One vertex per variable, one edge per nonzero coupler. *)

val add_edge : t -> int -> int -> unit
(** Idempotent; ignores self-loops. *)

val num_vertices : t -> int
val num_edges : t -> int
val mem_edge : t -> int -> int -> bool
val neighbors : t -> int -> int list
(** Ascending order. *)

val degree : t -> int -> int
val iter_edges : t -> (int -> int -> unit) -> unit
(** Each edge once, [i < j]. *)

val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a
val max_degree : t -> int

val connected_components : t -> int list list
(** Vertex sets of the components, each sorted ascending; components
    ordered by smallest member. *)

val is_connected : t -> bool
(** [true] for the empty graph and any single-component graph. *)

val bfs_distances : t -> int -> int array
(** [bfs_distances g src] is hop distance from [src] to every vertex
    ([max_int] where unreachable). *)

val copy : t -> t
