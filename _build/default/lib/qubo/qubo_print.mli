(** Human-readable rendering of QUBO matrices.

    Table 1 of the paper displays (abbreviated) dense QUBO matrices for
    each sample constraint; this module regenerates that presentation:
    a dense grid of coefficients, optionally truncated to the top-left
    [k × k] block with an ellipsis marker, plus sparse listings for
    problems too large to show densely. *)

val pp_dense : ?max_dim:int -> ?precision:int -> Format.formatter -> Qubo.t -> unit
(** [pp_dense ~max_dim ~precision ppf q] prints the dense matrix, one row
    per line, columns space-aligned. If the problem has more than
    [max_dim] (default 16) variables only the leading block is shown,
    followed by a ["..."] marker — the paper's "abbreviated due to space
    limitations" rendering. [precision] (default 2) is the number of
    digits after the decimal point; integral values print without a
    fractional part. *)

val pp_sparse : Format.formatter -> Qubo.t -> unit
(** One entry per line: [Q[i,j] = v], diagonal first, then couplers. *)

val dense_string : ?max_dim:int -> ?precision:int -> Qubo.t -> string
(** {!pp_dense} into a string. *)

val pp_diagonal : Format.formatter -> Qubo.t -> unit
(** Just the diagonal as a bracketed row vector — the form the paper uses
    for string-equality examples (e.g. [[-A, -A, +A, ...]]). *)
