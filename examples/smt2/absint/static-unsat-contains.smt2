; Statically unsatisfiable: two characters cannot contain both "ab" and
; "ba". The abstract interpreter proves it without building a QUBO —
; "ab" has a single feasible placement (forcing x = "ab"), after which
; "ba" has none.
(set-logic QF_S)
(declare-const x String)
(assert (= (str.len x) 2))
(assert (str.contains x "ab"))
(assert (str.contains x "ba"))
(check-sat)
