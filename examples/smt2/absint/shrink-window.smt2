; Shrinkable but undecidable statically: two pinned characters force
; 14 of 42 codec bits; the remaining four positions stay free for the
; anneal.
(set-logic QF_S)
(declare-const x String)
(assert (= (str.len x) 6))
(assert (= (str.at x 2) "h"))
(assert (= (str.at x 3) "i"))
(check-sat)
(get-model)
