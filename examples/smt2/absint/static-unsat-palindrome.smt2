; Statically unsatisfiable: a length-2 palindrome equates its two
; positions, but the prefix "ab" forces them to differ. The congruence
; closure meets {a} with {b} and derives the contradiction.
(set-logic QF_S)
(declare-const x String)
(assert (= (str.len x) 2))
(assert (str.palindrome x))
(assert (str.prefixof "ab" x))
(check-sat)
