; Shrinkable but undecidable statically: a[bc]+ at length 5 fixes
; position 0 and narrows the rest to {b,c}, forcing 31 of 35 codec bits
; — the sampler anneals only the 4 free bits.
(set-logic QF_S)
(declare-const x String)
(assert (= (str.len x) 5))
(assert (str.in_re x (re.++ (str.to_re "a")
                            (re.+ (re.union (str.to_re "b") (str.to_re "c"))))))
(check-sat)
(get-model)
