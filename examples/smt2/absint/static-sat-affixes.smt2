; Fully determined statically: prefix "ab" and suffix "bc" overlap on
; the middle character of a length-3 string, leaving the unique
; candidate "abc".
(set-logic QF_S)
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.prefixof "ab" x))
(assert (str.suffixof "bc" x))
(check-sat)
(get-model)
