; Fully determined statically: the prefix "ab" plus the palindrome
; mirror fixes all four positions to "abba". The interpreter names the
; candidate and the classical verifier confirms it — zero sampler reads.
(set-logic QF_S)
(declare-const x String)
(assert (= (str.len x) 4))
(assert (str.palindrome x))
(assert (= (str.substr x 0 2) "ab"))
(check-sat)
(get-model)
