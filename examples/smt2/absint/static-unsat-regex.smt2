; Statically unsatisfiable: every position of a [ab]+ match draws from
; {a,b}, but the middle character is pinned to "c". DFA reachability
; restricts position 1 to {a,b}; the point constraint meets it with {c}.
(set-logic QF_S)
(declare-const x String)
(assert (= (str.len x) 3))
(assert (str.in_re x (re.+ (re.range "a" "b"))))
(assert (= (str.at x 1) "c"))
(check-sat)
