; Substring containment with a length bound (sec 4.3).
(set-logic QF_S)
(declare-const x String)
(assert (str.contains x "cat"))
(assert (= (str.len x) 5))
(check-sat)
(get-model)
