; Direct equality: the paper's simplest generative constraint (sec 4.1).
(set-logic QF_S)
(declare-const x String)
(assert (= x "hello"))
(check-sat)
(get-value (x))
