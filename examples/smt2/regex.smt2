; Regex membership at a fixed length (sec 4.9): a[bc]+ with |x| = 5.
(set-logic QF_S)
(declare-const x String)
(assert (str.in_re x (re.++ (str.to_re "a")
                            (re.+ (re.union (str.to_re "b") (str.to_re "c"))))))
(assert (= (str.len x) 5))
(check-sat)
(get-model)
