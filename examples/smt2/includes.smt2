; Position search (sec 4.4): the Int unknown is the one-hot Includes QUBO.
(set-logic QF_SLIA)
(declare-const i Int)
(assert (= i (str.indexof "hello world" "world" 0)))
(check-sat)
(get-value (i))
