; Forced substring position (sec 4.5). The 0.1*A soft printable bias in
; this encoding is fragile by design: `qsmt lint` reports it as a
; shallow-excitation warning, which the CI gate tolerates (it fails on
; errors only).
(set-logic QF_SLIA)
(declare-const x String)
(assert (= (str.indexof x "hi" 0) 2))
(assert (= (str.len x) 6))
(check-sat)
(get-value (x))
