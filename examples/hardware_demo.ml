(* Hardware model: the full QPU workflow in simulation.

   Run with:  dune exec examples/hardware_demo.exe

   Takes the paper's string-equality constraint onto a Chimera-topology
   annealer: minor-embed, add chain penalties, anneal the physical
   problem (with a little control noise), majority-vote chains back, and
   report what embedding cost us. This is the "run it on a real quantum
   annealer" future work of the paper, reproduced end to end. *)

module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Hardware = Qsmt_anneal.Hardware
module Topology = Qsmt_anneal.Topology
module Embedding = Qsmt_anneal.Embedding
module Sampleset = Qsmt_anneal.Sampleset
module Sa = Qsmt_anneal.Sa
module Qubo = Qsmt_qubo.Qubo

let () =
  (* Includes carries a pairwise one-hot penalty, so its interaction
     graph is a complete graph over the candidate positions — the worst
     case for a sparse topology and the constraint that actually forces
     multi-qubit chains. *)
  let constr = Constr.Includes { haystack = "abcabcabc"; needle = "abc" } in
  let qubo = Compile.to_qubo constr in
  Format.printf "logical problem : %s -> %a@." (Constr.describe constr) Qubo.pp qubo;

  let topology = Topology.chimera ~m:3 () in
  Format.printf "hardware        : %s (%d qubits)@.@." (Topology.name topology)
    (Topology.num_qubits topology);

  List.iter
    (fun noise_sigma ->
      let params =
        { (Hardware.default_params topology) with
          Hardware.noise_sigma;
          Hardware.embed_tries = 64;
          Hardware.anneal = { Sa.default with Sa.reads = 32; sweeps = 600; seed = 5 } }
      in
      let r = Hardware.sample ~params qubo in
      let best = Sampleset.best r.Hardware.samples in
      let decoded = Compile.decode constr best.Sampleset.bits in
      Format.printf
        "noise %.2f: chains<=%d, breaks %.1f%%, best %a (E=%g, %s), ground prob %.0f%%@."
        noise_sigma r.Hardware.stats.Hardware.max_chain_length
        (100. *. r.Hardware.stats.Hardware.mean_chain_break_fraction)
        Constr.pp_value decoded best.Sampleset.energy
        (if Constr.verify constr decoded then "verified" else "wrong")
        (100. *. Sampleset.ground_probability r.Hardware.samples ~tol:1e-9))
    [ 0.0; 0.02; 0.05; 0.10 ];

  (* Show the embedding itself for the curious. *)
  let problem = Qsmt_qubo.Qgraph.of_qubo qubo in
  match Embedding.find ~problem ~hardware:(Topology.graph topology) () with
  | None -> Format.printf "@.no embedding found?!@."
  | Some e ->
    Format.printf "@.%a@." Embedding.pp e;
    for v = 0 to min 4 (Embedding.num_problem_vars e - 1) do
      Format.printf "  var %d -> qubits %s@." v
        (String.concat "," (List.map string_of_int (Embedding.chain e v)))
    done
