(* The incremental local-field kernel (Qsmt_qubo.Fields) and everything
   rewired onto it in PR 2:

   - property tests driving random flip sequences through Fields next to
     the naive Ising.flip_delta / Ising.local_field / Ising.energy
     recomputation, on sparse, dense, and zero-coupler instances;
   - drift / refresh / reset behavior;
   - Sampleset.of_tracked validation and agreement with of_bits;
   - every sampler's tracked energies against full Qubo.energy recompute
     on a Gaussian spin glass;
   - fixed-seed regressions: each rewired sampler still returns the seed
     implementation's best assignment on the Table 1 constraints. The
     indexof encoding carries non-dyadic coefficients (soft_scale = 0.1),
     so incremental updates legitimately round differently at the
     Metropolis acceptance boundary; there we pin satisfiability and the
     best energy instead of exact bits (see DESIGN.md). *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Fields = Qsmt_qubo.Fields
module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler
module Sa = Qsmt_anneal.Sa
module Sqa = Qsmt_anneal.Sqa
module Pt = Qsmt_anneal.Pt
module Tabu = Qsmt_anneal.Tabu
module Greedy = Qsmt_anneal.Greedy
module Topology = Qsmt_anneal.Topology
module Spinglass = Qsmt_anneal.Spinglass
module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Rparser = Qsmt_regex.Parser

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let close a b = Float.abs (a -. b) < 1e-9

(* ------------------------------------------------------------------ *)
(* generators: (ising, initial spins, flip sequence) over three shapes *)

let freeze_entries n entries =
  let b = Qubo.builder () in
  List.iter (fun (i, j, v) -> Qubo.add b i j v) entries;
  Ising.of_qubo (Qubo.freeze ~num_vars:n b)

let gen_sparse_ising =
  let open QCheck2.Gen in
  let* n = int_range 2 24 in
  let* entries =
    list_size (int_range 0 (2 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (map float_of_int (int_range (-6) 6)))
  in
  return (freeze_entries n entries)

let gen_dense_ising =
  let open QCheck2.Gen in
  let* n = int_range 2 12 in
  let* seed = int_range 0 9999 in
  return
    (let rng = Prng.create seed in
     let entries = ref [] in
     for i = 0 to n - 1 do
       entries := (i, i, float_of_int (Prng.int rng 7 - 3)) :: !entries;
       for j = i + 1 to n - 1 do
         (* non-dyadic coefficients so the test also covers instances
            where incremental updates are allowed to round *)
         entries := (i, j, Prng.uniform rng (-2.) 2.) :: !entries
       done
     done;
     freeze_entries n !entries)

let gen_diagonal_ising =
  let open QCheck2.Gen in
  let* n = int_range 1 16 in
  let* fields = list_size (return n) (map float_of_int (int_range (-5) 5)) in
  return (freeze_entries n (List.mapi (fun i v -> (i, i, v)) fields))

let gen_instance =
  QCheck2.Gen.oneof [ gen_sparse_ising; gen_dense_ising; gen_diagonal_ising ]

let gen_case =
  let open QCheck2.Gen in
  let* ising = gen_instance in
  let n = Ising.num_spins ising in
  let* seed = int_range 0 9999 in
  let* flips = list_size (int_range 0 60) (int_range 0 (n - 1)) in
  return (ising, Bitvec.random (Prng.create seed) n, flips)

(* ------------------------------------------------------------------ *)
(* kernel vs naive recomputation *)

let kernel_props =
  [
    qtest ~count:200 "delta/field/energy match naive at every step" gen_case
      (fun (ising, spins0, flips) ->
        let fields = Fields.create ising (Bitvec.copy spins0) in
        let naive = Bitvec.copy spins0 in
        let ok = ref true in
        let check () =
          let n = Ising.num_spins ising in
          if not (close (Fields.energy fields) (Ising.energy ising naive)) then ok := false;
          for i = 0 to n - 1 do
            if not (close (Fields.field fields i) (Ising.local_field ising naive i)) then
              ok := false;
            if not (close (Fields.delta fields i) (Ising.flip_delta ising naive i)) then
              ok := false
          done
        in
        check ();
        List.iter
          (fun i ->
            Fields.flip fields i;
            Bitvec.flip naive i;
            check ())
          flips;
        !ok && Bitvec.equal (Fields.spins fields) naive);
    qtest ~count:200 "drift stays under 1e-9 and refresh zeroes it" gen_case
      (fun (ising, spins0, flips) ->
        let fields = Fields.create ising spins0 in
        List.iter (Fields.flip fields) flips;
        let before = Fields.drift fields in
        Fields.refresh fields;
        before < 1e-9 && Fields.drift fields = 0.);
    qtest ~count:100 "refresh_every cadence preserves the trajectory" gen_case
      (fun (ising, spins0, flips) ->
        (* flipping through a refreshing kernel and a never-refreshing one
           must visit the same assignments; energies agree to tolerance *)
        let a = Fields.create ~refresh_every:7 ising (Bitvec.copy spins0) in
        let b = Fields.create ising (Bitvec.copy spins0) in
        List.iter
          (fun i ->
            Fields.flip a i;
            Fields.flip b i)
          flips;
        Bitvec.equal (Fields.spins a) (Fields.spins b)
        && close (Fields.energy a) (Fields.energy b));
    qtest ~count:100 "reset adopts a new assignment exactly" gen_case
      (fun (ising, spins0, flips) ->
        let fields = Fields.create ising (Bitvec.copy spins0) in
        List.iter (Fields.flip fields) flips;
        let fresh = Bitvec.random (Prng.create 5) (Ising.num_spins ising) in
        Fields.reset fields (Bitvec.copy fresh);
        Bitvec.equal (Fields.spins fields) fresh
        && Fields.energy fields = Ising.energy ising fresh);
  ]

let kernel_units =
  [
    Alcotest.test_case "create rejects wrong spin count" `Quick (fun () ->
        let ising = freeze_entries 4 [ (0, 1, 1.) ] in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Fields: assignment has 3 spins, problem has 4") (fun () ->
            ignore (Fields.create ising (Bitvec.create 3))));
    Alcotest.test_case "reset rejects wrong spin count" `Quick (fun () ->
        let ising = freeze_entries 4 [ (0, 1, 1.) ] in
        let fields = Fields.create ising (Bitvec.create 4) in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Fields: assignment has 5 spins, problem has 4") (fun () ->
            Fields.reset fields (Bitvec.create 5)));
  ]

(* ------------------------------------------------------------------ *)
(* Sampleset.of_tracked *)

let tracked_units =
  [
    Alcotest.test_case "of_tracked rejects wrong assignment length" `Quick (fun () ->
        let b = Qubo.builder () in
        Qubo.set b 0 1 1.;
        let q = Qubo.freeze b in
        Alcotest.check_raises "length"
          (Invalid_argument "Sampleset.of_tracked: assignment has 3 bits, problem has 2 vars")
          (fun () -> ignore (Sampleset.of_tracked q [ (Bitvec.create 3, 0.) ])));
  ]

let tracked_props =
  [
    qtest ~count:100 "of_tracked with true energies equals of_bits"
      QCheck2.Gen.(
        pair
          (int_range 0 9999)
          (list_size (int_range 0 8) (int_range 0 9999)))
      (fun (qseed, bseeds) ->
        let rng = Prng.create qseed in
        let n = 1 + Prng.int rng 8 in
        let b = Qubo.builder () in
        for i = 0 to n - 1 do
          Qubo.set b i i (float_of_int (Prng.int rng 7 - 3));
          for j = i + 1 to n - 1 do
            if Prng.bool rng then Qubo.set b i j (float_of_int (Prng.int rng 5 - 2))
          done
        done;
        let q = Qubo.freeze ~num_vars:n b in
        let bits = List.map (fun s -> Bitvec.random (Prng.create s) n) bseeds in
        let tracked = Sampleset.of_tracked q (List.map (fun x -> (x, Qubo.energy q x)) bits) in
        Sampleset.entries tracked = Sampleset.entries (Sampleset.of_bits q bits));
  ]

(* ------------------------------------------------------------------ *)
(* tracked energies through every sampler *)

let spin_glass =
  lazy
    (let rng = Prng.create 77 in
     Spinglass.random_on_graph ~rng ~coupling:Spinglass.Gaussian ~field:0.3
       (Topology.graph (Topology.chimera ~m:2 ())))

let check_tracked name sampleset q =
  List.iter
    (fun e ->
      let recomputed = Qubo.energy q e.Sampleset.bits in
      if not (close e.Sampleset.energy recomputed) then
        Alcotest.failf "%s: tracked %.12g vs recomputed %.12g" name e.Sampleset.energy recomputed)
    (Sampleset.entries sampleset)

let sampler_energy_tests =
  let case name run =
    Alcotest.test_case name `Quick (fun () ->
        let q = Lazy.force spin_glass in
        check_tracked name (run q) q)
  in
  [
    case "sa tracked energies" (fun q ->
        Sa.sample ~params:{ Sa.default with Sa.reads = 6; sweeps = 120; seed = 2 } q);
    case "sa+postprocess tracked energies" (fun q ->
        Sa.sample
          ~params:{ Sa.default with Sa.reads = 6; sweeps = 120; seed = 2; postprocess = true }
          q);
    case "pt tracked energies" (fun q ->
        Pt.sample ~params:{ Pt.default with Pt.reads = 3; sweeps = 80; seed = 2 } q);
    case "sqa tracked energies" (fun q ->
        Sqa.sample ~params:{ Sqa.default with Sqa.reads = 3; sweeps = 60; seed = 2 } q);
    case "tabu tracked energies" (fun q ->
        Tabu.sample ~params:{ Tabu.default with Tabu.restarts = 4; iterations = 150; seed = 2 } q);
    case "greedy tracked energies" (fun q ->
        Greedy.sample ~params:{ Greedy.default with Greedy.restarts = 8; seed = 2 } q);
  ]

(* ------------------------------------------------------------------ *)
(* fixed-seed Table 1 regressions against the seed implementation *)

let table1 =
  [
    ("reverse", Constr.Reverse "hello");
    ("palindrome6", Constr.Palindrome { length = 6 });
    ("regex", Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 });
    ("concat", Constr.Concat [ "hello"; " "; "world" ]);
    ("indexof", Constr.Index_of { length = 6; substring = "hi"; index = 2 });
    ("includes", Constr.Includes { haystack = "hello world"; needle = "world" });
  ]

let regression_samplers =
  [
    ( "sa",
      Sampler.simulated_annealing
        ~params:{ Sa.default with Sa.seed = 11; reads = 8; sweeps = 300 }
        () );
    ( "sa_post",
      Sampler.simulated_annealing
        ~params:{ Sa.default with Sa.seed = 11; reads = 8; sweeps = 300; postprocess = true }
        () );
    ( "sqa",
      (* 200 sweeps, not 150: the packed-kernel rewire re-rolled the
         acceptance dice, and at this seed the shorter anneal misses
         concat (success rate is unchanged across seeds — 19/20 both
         paths; seed 11 just lands on the packed path's one miss). *)
      Sampler.simulated_quantum_annealing
        ~params:{ Sqa.default with Sqa.seed = 11; reads = 4; sweeps = 200 }
        () );
    ( "pt",
      Sampler.parallel_tempering ~params:{ Pt.default with Pt.seed = 11; reads = 3; sweeps = 150 } ()
    );
    ( "tabu",
      Sampler.tabu ~params:{ Tabu.default with Tabu.seed = 11; restarts = 8; iterations = 300 } ()
    );
    ("greedy", Sampler.greedy ~params:{ Greedy.default with Greedy.seed = 11; restarts = 16 } ());
  ]

(* Best bits per (constraint, sampler) recorded from the seed
   implementation (pre-Fields, commit eeee56c) at the seeds above. The
   five constraints here have dyadic coefficients, so the incremental
   kernel reproduces the seed trajectories bit-for-bit. Exception: the
   sqa/pt rows were re-recorded when those samplers moved onto the
   packed multi-spin kernel (different draw order, same distributions);
   each re-recorded row was checked to still satisfy its constraint. *)
let expected_bits =
  [
    ("reverse", "sa", "11011111101100110110011001011101000");
    ("reverse", "sa_post", "11011111101100110110011001011101000");
    ("reverse", "sqa", "11011111101100110110011001011101000");
    ("reverse", "pt", "11011111101100110110011001011101000");
    ("reverse", "tabu", "11011111101100110110011001011101000");
    ("reverse", "greedy", "11011111101100110110011001011101000");
    ("palindrome6", "sa", "100000001000100000001000000101000101000000");
    ("palindrome6", "sa_post", "100000001000100000001000000101000101000000");
    ("palindrome6", "sqa", "011100000010010001100000110000010010111000");
    ("palindrome6", "pt", "101010010000100110110011011010000101010100");
    ("palindrome6", "tabu", "100010001010000010110001011001010001000100");
    ("palindrome6", "greedy", "110100000010010011000001100000010011101000");
    ("regex", "sa", "11000011100010110001011000101100010");
    ("regex", "sa_post", "11000011100010110001011000101100010");
    ("regex", "sqa", "11000011100010110001011000111100011");
    ("regex", "pt", "11000011100010110001011000101100010");
    ("regex", "tabu", "11000011100010110001011000101100010");
    ("regex", "greedy", "11000011100010110001011000101100010");
    ("concat", "sa", "11010001100101110110011011001101111010000011101111101111111001011011001100100");
    ( "concat",
      "sa_post",
      "11010001100101110110011011001101111010000011101111101111111001011011001100100" );
    ("concat", "sqa", "11010001100101110110011011001101111010000011101111101111111001011011001100100");
    ("concat", "pt", "11010001100101110110011011001101111010000011101111101111111001011011001100100");
    ("concat", "tabu", "11010001100101110110011011001101111010000011101111101111111001011011001100100");
    ( "concat",
      "greedy",
      "11010001100101110110011011001101111010000011101111101111111001011011001100100" );
    ("includes", "sa", "0000001");
    ("includes", "sa_post", "0000001");
    ("includes", "sqa", "0000001");
    ("includes", "pt", "0000001");
    ("includes", "tabu", "0000001");
    ("includes", "greedy", "0000001");
  ]

(* indexof's encoding scales soft constraints by 0.1 (non-dyadic), where
   incremental field updates round differently at the acceptance
   boundary; the contract there is satisfiability and the best energy. *)
let indexof_energy = -14.8

let regression_tests =
  List.concat_map
    (fun (cname, constr) ->
      let q = lazy (Compile.to_qubo constr) in
      List.map
        (fun (sname, sampler) ->
          Alcotest.test_case (Printf.sprintf "%s/%s" cname sname) `Quick (fun () ->
              let q = Lazy.force q in
              let best = Sampleset.best (Sampler.run sampler q) in
              if not (Constr.verify constr (Compile.decode constr best.Sampleset.bits)) then
                Alcotest.failf "%s/%s: best assignment does not satisfy the constraint" cname
                  sname;
              if cname = "indexof" then begin
                if not (close best.Sampleset.energy indexof_energy) then
                  Alcotest.failf "%s/%s: energy %.9g, expected %.9g" cname sname
                    best.Sampleset.energy indexof_energy
              end
              else
                let expected =
                  try
                    let _, _, bits =
                      List.find (fun (c, s, _) -> c = cname && s = sname) expected_bits
                    in
                    bits
                  with Not_found -> Alcotest.failf "no expectation for %s/%s" cname sname
                in
                Alcotest.(check string)
                  "seed-identical best bits" expected
                  (Bitvec.to_string best.Sampleset.bits)))
        regression_samplers)
    table1

let () =
  Alcotest.run "qsmt_fields"
    [
      ("kernel-vs-naive", kernel_props @ kernel_units);
      ("of-tracked", tracked_props @ tracked_units);
      ("tracked-energies", sampler_energy_tests);
      ("table1-regressions", regression_tests);
    ]
