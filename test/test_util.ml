(* Unit and property tests for qsmt_util: PRNG, bit vectors, the 7-bit
   ASCII codec, parallel helpers, and stats. *)

module Prng = Qsmt_util.Prng
module Bitvec = Qsmt_util.Bitvec
module Ascii7 = Qsmt_util.Ascii7
module Parallel = Qsmt_util.Parallel
module Stats = Qsmt_util.Stats

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_prng_int_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Prng.int out of range: %d" v
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Prng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_float_range () =
  let rng = Prng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.float rng in
    if v < 0. || v >= 1. then Alcotest.failf "Prng.float out of range: %f" v
  done

let test_prng_float_mean () =
  let rng = Prng.create 11 in
  let samples = Array.init 20_000 (fun _ -> Prng.float rng) in
  let mean = Stats.mean samples in
  check (Alcotest.float 0.02) "mean near 0.5" 0.5 mean

let test_prng_int_uniformity () =
  let rng = Prng.create 5 in
  let counts = Array.make 8 0 in
  let draws = 80_000 in
  for _ = 1 to draws do
    let v = Prng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = draws / 8 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    counts

let test_prng_split_independent () =
  let master = Prng.create 99 in
  let child = Prng.split master in
  let a = Array.init 32 (fun _ -> Prng.bits64 master) in
  let b = Array.init 32 (fun _ -> Prng.bits64 child) in
  check Alcotest.bool "streams differ" false (a = b)

let test_prng_copy_diverges_with_use () =
  let a = Prng.create 13 in
  let b = Prng.copy a in
  check Alcotest.int64 "copies agree" (Prng.bits64 a) (Prng.bits64 b);
  ignore (Prng.bits64 a);
  (* a is now one step ahead of b *)
  check Alcotest.bool "advanced copy differs" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 21 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_choose () =
  let rng = Prng.create 8 in
  for _ = 1 to 100 do
    let v = Prng.choose rng [| 'x'; 'y'; 'z' |] in
    check Alcotest.bool "member" true (List.mem v [ 'x'; 'y'; 'z' ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose rng ([||] : int array)))

let test_prng_printable () =
  let rng = Prng.create 17 in
  let s = Prng.string_printable rng 1000 in
  String.iter (fun c -> if not (Ascii7.is_printable c) then Alcotest.failf "unprintable %C" c) s;
  let lower = Prng.string_lowercase rng 1000 in
  String.iter (fun c -> if c < 'a' || c > 'z' then Alcotest.failf "not lowercase %C" c) lower

(* Regression for the rejection-sampling bug: the threshold used to be
   compared against [Int64.max_int] while the draw only has 62 bits, so
   rejection never fired. A chi-square test over a non-power-of-two
   bound is the statistical witness that the fixed path stays uniform. *)
let test_prng_int_chi_square () =
  let bound = 37 in
  let draws = 74_000 in
  List.iter
    (fun seed ->
      let rng = Prng.create seed in
      let counts = Array.make bound 0 in
      for _ = 1 to draws do
        let v = Prng.int rng bound in
        counts.(v) <- counts.(v) + 1
      done;
      let expected = float_of_int draws /. float_of_int bound in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. ((d *. d) /. expected))
          0. counts
      in
      (* 99.9th percentile of chi-square with 36 degrees of freedom. The
         draws are deterministic per seed, so this cannot flake. *)
      if chi2 > 67.99 then Alcotest.failf "seed %d: chi-square %.2f too high" seed chi2)
    [ 5; 19; 101 ]

let test_prng_int_large_bound () =
  (* A bound of 3 * 2^60 rejects ~1/4 of raw draws, so the rejection
     loop actually executes; results must still land in range. *)
  let bound = 3 * (1 lsl 60) in
  let rng = Prng.create 23 in
  for _ = 1 to 1_000 do
    let v = Prng.int rng bound in
    if v < 0 || v >= bound then Alcotest.failf "Prng.int out of range: %d" v
  done

let test_prng_stream_deterministic () =
  let a = Prng.stream ~seed:42 3 and b = Prng.stream ~seed:42 3 in
  for _ = 1 to 64 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_stream_decorrelated () =
  let streams = Array.init 8 (fun k -> Prng.stream ~seed:7 k) in
  let firsts = Array.map Prng.bits64 streams in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y -> if i < j && x = y then Alcotest.failf "streams %d and %d collide" i j)
        firsts)
    firsts;
  Alcotest.check_raises "negative index" (Invalid_argument "Prng.stream: negative stream index")
    (fun () -> ignore (Prng.stream ~seed:0 (-1)))

(* ------------------------------------------------------------------ *)
(* Bitvec *)

let test_bitvec_get_set () =
  let v = Bitvec.create 20 in
  check Alcotest.int "fresh is zero" 0 (Bitvec.popcount v);
  Bitvec.set v 0 true;
  Bitvec.set v 19 true;
  Bitvec.set v 7 true;
  check Alcotest.bool "bit 0" true (Bitvec.get v 0);
  check Alcotest.bool "bit 7" true (Bitvec.get v 7);
  check Alcotest.bool "bit 19" true (Bitvec.get v 19);
  check Alcotest.bool "bit 1" false (Bitvec.get v 1);
  check Alcotest.int "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v 7 false;
  check Alcotest.int "popcount after clear" 2 (Bitvec.popcount v)

let test_bitvec_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "get oob" (Invalid_argument "Bitvec.get: index 8 out of [0,8)") (fun () ->
      ignore (Bitvec.get v 8));
  Alcotest.check_raises "set negative" (Invalid_argument "Bitvec.set: index -1 out of [0,8)")
    (fun () -> Bitvec.set v (-1) true)

let test_bitvec_flip () =
  let v = Bitvec.create 5 in
  Bitvec.flip v 2;
  check Alcotest.bool "flipped on" true (Bitvec.get v 2);
  Bitvec.flip v 2;
  check Alcotest.bool "flipped off" false (Bitvec.get v 2)

let test_bitvec_string_roundtrip () =
  let s = "1011001110001" in
  check Alcotest.string "roundtrip" s (Bitvec.to_string (Bitvec.of_string s));
  Alcotest.check_raises "bad char" (Invalid_argument "Bitvec.of_string: bad char 'x'") (fun () ->
      ignore (Bitvec.of_string "10x"))

let test_bitvec_fill () =
  let v = Bitvec.create 13 in
  Bitvec.fill v true;
  check Alcotest.int "all ones" 13 (Bitvec.popcount v);
  (* equality with an independently built all-ones vector checks that the
     tail bits beyond the length were kept canonical *)
  check Alcotest.bool "equal to init" true (Bitvec.equal v (Bitvec.init 13 (fun _ -> true)));
  Bitvec.fill v false;
  check Alcotest.int "all zero" 0 (Bitvec.popcount v)

let test_bitvec_hamming () =
  let a = Bitvec.of_string "10110" and b = Bitvec.of_string "10011" in
  check Alcotest.int "hamming" 2 (Bitvec.hamming a b);
  check Alcotest.int "self distance" 0 (Bitvec.hamming a a);
  Alcotest.check_raises "length mismatch" (Invalid_argument "Bitvec.hamming: length mismatch")
    (fun () -> ignore (Bitvec.hamming a (Bitvec.create 4)))

let test_bitvec_copy_independent () =
  let a = Bitvec.of_string "1010" in
  let b = Bitvec.copy a in
  Bitvec.flip b 0;
  check Alcotest.bool "original untouched" true (Bitvec.get a 0);
  check Alcotest.bool "copy changed" false (Bitvec.get b 0)

let prop_bitvec_bool_array_roundtrip =
  qtest "bitvec bool-array roundtrip"
    QCheck2.Gen.(list_size (int_range 0 200) bool)
    (fun bits ->
      let arr = Array.of_list bits in
      Bitvec.to_bool_array (Bitvec.of_bool_array arr) = arr)

let prop_bitvec_popcount =
  qtest "popcount matches list count"
    QCheck2.Gen.(list_size (int_range 0 200) bool)
    (fun bits ->
      let arr = Array.of_list bits in
      Bitvec.popcount (Bitvec.of_bool_array arr) = List.length (List.filter (fun b -> b) bits))

let prop_bitvec_hash_consistent =
  qtest "equal vectors hash equally"
    QCheck2.Gen.(list_size (int_range 0 64) bool)
    (fun bits ->
      let arr = Array.of_list bits in
      let a = Bitvec.of_bool_array arr and b = Bitvec.of_bool_array arr in
      Bitvec.equal a b && Bitvec.hash a = Bitvec.hash b && Bitvec.compare a b = 0)

(* ------------------------------------------------------------------ *)
(* Ascii7 *)

let test_ascii7_char_bits () =
  (* 'a' = 97 = 1100001 MSB first *)
  check (Alcotest.array Alcotest.bool) "'a' bits"
    [| true; true; false; false; false; false; true |]
    (Ascii7.char_to_bits 'a');
  check Alcotest.char "inverse" 'a' (Ascii7.bits_to_char (Ascii7.char_to_bits 'a'))

let test_ascii7_encode_length () =
  check Alcotest.int "7n bits" 35 (Bitvec.length (Ascii7.encode "hello"))

let test_ascii7_encode_decode () =
  check Alcotest.string "roundtrip" "hello world!" (Ascii7.decode (Ascii7.encode "hello world!"))

let test_ascii7_decode_sub () =
  let bits = Ascii7.encode "abc" in
  check Alcotest.string "char 1" "b" (Ascii7.decode_sub bits ~pos:7)

let test_ascii7_var_of () =
  check Alcotest.int "var index" 23 (Ascii7.var_of ~char_index:3 ~bit:2);
  Alcotest.check_raises "bad bit" (Invalid_argument "Ascii7.var_of: bit out of [0,7)") (fun () ->
      ignore (Ascii7.var_of ~char_index:0 ~bit:7))

let test_ascii7_rejects_non_ascii () =
  Alcotest.check_raises "8-bit char"
    (Invalid_argument "Ascii7.char_to_bits: '\\200' is not 7-bit ASCII") (fun () ->
      ignore (Ascii7.char_to_bits '\200'))

let test_ascii7_decode_length_check () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Ascii7.decode: length 8 not a multiple of 7") (fun () ->
      ignore (Ascii7.decode (Bitvec.create 8)))

let prop_ascii7_roundtrip =
  qtest "encode/decode identity on printable strings"
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 40))
    (fun s -> Ascii7.decode (Ascii7.encode s) = s)

let test_ascii7_printable () =
  check Alcotest.bool "space printable" true (Ascii7.is_printable ' ');
  check Alcotest.bool "tilde printable" true (Ascii7.is_printable '~');
  check Alcotest.bool "del not printable" false (Ascii7.is_printable '\127');
  check Alcotest.char "clamp keeps printable" 'q' (Ascii7.clamp_printable 'q');
  check Alcotest.char "clamp replaces control" '?' (Ascii7.clamp_printable '\003')

(* ------------------------------------------------------------------ *)
(* Parallel *)

let test_parallel_matches_sequential () =
  let input = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Array.map f input in
  check (Alcotest.array Alcotest.int) "2 domains" seq (Parallel.map_array ~domains:2 f input);
  check (Alcotest.array Alcotest.int) "5 domains" seq (Parallel.map_array ~domains:5 f input);
  check (Alcotest.array Alcotest.int) "more domains than work" seq
    (Parallel.map_array ~domains:64 f input)

let test_parallel_empty_and_small () =
  check (Alcotest.array Alcotest.int) "empty" [||] (Parallel.map_array ~domains:4 (fun x -> x) [||]);
  check (Alcotest.array Alcotest.int) "singleton" [| 9 |]
    (Parallel.init_array ~domains:4 1 (fun _ -> 9))

let test_parallel_init () =
  check
    (Alcotest.array Alcotest.int)
    "init"
    (Array.init 17 (fun i -> 2 * i))
    (Parallel.init_array ~domains:3 17 (fun i -> 2 * i))

let test_parallel_reduce () =
  let a = Array.init 1000 (fun i -> i) in
  check Alcotest.int "sum" (999 * 1000 / 2) (Parallel.reduce ~domains:4 (fun x -> x) ( + ) 0 a)

let test_parallel_exception_propagates () =
  let fails _ = failwith "boom" in
  check Alcotest.bool "raises" true
    (try
       ignore (Parallel.map_array ~domains:1 fails [| 1 |]);
       false
     with Failure _ -> true)

let test_recommended_domains_positive () =
  check Alcotest.bool "at least 1" true (Parallel.recommended_domains () >= 1)

let test_partition_covers () =
  List.iter
    (fun (n, d) ->
      let chunks = Parallel.partition n d in
      let total = List.fold_left (fun acc (_, len) -> acc + len) 0 chunks in
      check Alcotest.int (Printf.sprintf "partition %d/%d total" n d) n total;
      ignore
        (List.fold_left
           (fun expected_start (start, len) ->
             check Alcotest.int "contiguous" expected_start start;
             check Alcotest.bool "nonempty chunk" true (len > 0);
             start + len)
           0 chunks))
    [ (10, 3); (3, 10); (1, 1); (100, 7) ]

let test_pool_runs_all_jobs () =
  let pool = Parallel.Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      check Alcotest.int "size" 2 (Parallel.Pool.size pool);
      let hits = Array.make 50 0 in
      Parallel.Pool.run_list pool
        (List.init 50 (fun i () -> hits.(i) <- hits.(i) + 1));
      check (Alcotest.array Alcotest.int) "each job ran exactly once" (Array.make 50 1) hits;
      (* the pool is reusable: a second batch on the same workers *)
      let sum = Atomic.make 0 in
      Parallel.Pool.run_list pool
        (List.init 10 (fun i () -> ignore (Atomic.fetch_and_add sum i)));
      check Alcotest.int "second batch" 45 (Atomic.get sum))

let test_pool_reraises_job_exception () =
  let pool = Parallel.Pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      check Alcotest.bool "raises" true
        (try
           Parallel.Pool.run_list pool [ (fun () -> ()); (fun () -> failwith "boom") ];
           false
         with Failure msg -> msg = "boom"))

let test_pool_reusable_after_job_exception () =
  (* A raising job must release its worker slot: later batches still run
     on the full pool, and the re-raised exception is the job's own (not
     a pool-internal abort). *)
  let pool = Parallel.Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      for _ = 1 to 3 do
        try Parallel.Pool.run_list pool [ (fun () -> failwith "boom"); (fun () -> ()) ]
        with Failure _ -> ()
      done;
      let hits = Atomic.make 0 in
      Parallel.Pool.run_list pool (List.init 20 (fun _ () -> Atomic.incr hits));
      check Alcotest.int "full batch after raising batches" 20 (Atomic.get hits);
      check Alcotest.bool "original exception identity" true
        (try
           Parallel.Pool.run_list pool [ (fun () -> raise Exit) ];
           false
         with Exit -> true))

let test_pool_zero_workers_degrades () =
  (* A 0-worker pool (single-core hosts) runs everything on the caller. *)
  let pool = Parallel.Pool.create 0 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let hits = Atomic.make 0 in
      Parallel.Pool.run_list pool (List.init 5 (fun _ () -> Atomic.incr hits));
      check Alcotest.int "all jobs ran inline" 5 (Atomic.get hits))

let test_pool_nested_run_list () =
  (* Nested use must not deadlock: an inner run_list issued from inside a
     pool job finds the workers busy and degrades to the calling thread. *)
  let pool = Parallel.Pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.shutdown pool)
    (fun () ->
      let hits = Atomic.make 0 in
      Parallel.Pool.run_list pool
        (List.init 3 (fun _ () ->
             Parallel.Pool.run_list pool (List.init 4 (fun _ () -> Atomic.incr hits))));
      check Alcotest.int "inner jobs all ran" 12 (Atomic.get hits))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_variance () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean a);
  check (Alcotest.float 1e-9) "variance" (32. /. 7.) (Stats.variance a);
  check (Alcotest.float 1e-9) "stddev" (sqrt (32. /. 7.)) (Stats.stddev a)

let test_stats_percentile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check (Alcotest.float 1e-9) "p0" 1. (Stats.percentile a 0.);
  check (Alcotest.float 1e-9) "p50" 3. (Stats.percentile a 50.);
  check (Alcotest.float 1e-9) "p100" 5. (Stats.percentile a 100.);
  check (Alcotest.float 1e-9) "p25" 2. (Stats.percentile a 25.);
  check (Alcotest.float 1e-9) "median" 3. (Stats.median a)

let test_stats_percentile_interpolates () =
  let a = [| 0.; 10. |] in
  check (Alcotest.float 1e-9) "p75" 7.5 (Stats.percentile a 75.)

let test_stats_errors () =
  Alcotest.check_raises "empty percentile" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [||] 50.));
  Alcotest.check_raises "bad p" (Invalid_argument "Stats.percentile: p outside [0,100]") (fun () ->
      ignore (Stats.percentile [| 1. |] 101.));
  Alcotest.check_raises "empty min_max" (Invalid_argument "Stats.min_max: empty") (fun () ->
      ignore (Stats.min_max [||]))

let test_stats_histogram () =
  let a = [| 0.; 0.5; 1.; 1.5; 2. |] in
  let h = Stats.histogram ~bins:2 a in
  check Alcotest.int "two bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check Alcotest.int "all counted" 5 total

let test_stats_histogram_constant_input () =
  let h = Stats.histogram ~bins:3 [| 4.; 4.; 4. |] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check Alcotest.int "all in some bin" 3 total

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3. |] in
  check Alcotest.int "n" 3 s.Stats.n;
  check (Alcotest.float 1e-9) "mean" 2. s.Stats.mean;
  check (Alcotest.float 1e-9) "min" 1. s.Stats.min;
  check (Alcotest.float 1e-9) "max" 3. s.Stats.max;
  check (Alcotest.float 1e-9) "median" 2. s.Stats.median

let () =
  Alcotest.run "qsmt_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int rejects nonpositive" `Quick test_prng_int_rejects_nonpositive;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "int uniformity" `Quick test_prng_int_uniformity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "copy then diverge" `Quick test_prng_copy_diverges_with_use;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_prng_choose;
          Alcotest.test_case "printable strings" `Quick test_prng_printable;
          Alcotest.test_case "chi-square non-power-of-two bound" `Quick test_prng_int_chi_square;
          Alcotest.test_case "large bound rejection" `Quick test_prng_int_large_bound;
          Alcotest.test_case "stream deterministic" `Quick test_prng_stream_deterministic;
          Alcotest.test_case "stream decorrelated" `Quick test_prng_stream_decorrelated;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "get/set" `Quick test_bitvec_get_set;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
          Alcotest.test_case "flip" `Quick test_bitvec_flip;
          Alcotest.test_case "string roundtrip" `Quick test_bitvec_string_roundtrip;
          Alcotest.test_case "fill" `Quick test_bitvec_fill;
          Alcotest.test_case "hamming" `Quick test_bitvec_hamming;
          Alcotest.test_case "copy independence" `Quick test_bitvec_copy_independent;
          prop_bitvec_bool_array_roundtrip;
          prop_bitvec_popcount;
          prop_bitvec_hash_consistent;
        ] );
      ( "ascii7",
        [
          Alcotest.test_case "char bits" `Quick test_ascii7_char_bits;
          Alcotest.test_case "encode length" `Quick test_ascii7_encode_length;
          Alcotest.test_case "encode/decode" `Quick test_ascii7_encode_decode;
          Alcotest.test_case "decode_sub" `Quick test_ascii7_decode_sub;
          Alcotest.test_case "var_of" `Quick test_ascii7_var_of;
          Alcotest.test_case "rejects non-ascii" `Quick test_ascii7_rejects_non_ascii;
          Alcotest.test_case "decode length check" `Quick test_ascii7_decode_length_check;
          Alcotest.test_case "printable predicates" `Quick test_ascii7_printable;
          prop_ascii7_roundtrip;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "empty and small" `Quick test_parallel_empty_and_small;
          Alcotest.test_case "init" `Quick test_parallel_init;
          Alcotest.test_case "reduce" `Quick test_parallel_reduce;
          Alcotest.test_case "exceptions propagate" `Quick test_parallel_exception_propagates;
          Alcotest.test_case "recommended domains" `Quick test_recommended_domains_positive;
          Alcotest.test_case "partition covers range" `Quick test_partition_covers;
          Alcotest.test_case "pool runs all jobs" `Quick test_pool_runs_all_jobs;
          Alcotest.test_case "pool re-raises exceptions" `Quick test_pool_reraises_job_exception;
          Alcotest.test_case "pool reusable after exception" `Quick
            test_pool_reusable_after_job_exception;
          Alcotest.test_case "pool with zero workers" `Quick test_pool_zero_workers_degrades;
          Alcotest.test_case "pool nested run_list" `Quick test_pool_nested_run_list;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile interpolation" `Quick test_stats_percentile_interpolates;
          Alcotest.test_case "errors" `Quick test_stats_errors;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "histogram constant" `Quick test_stats_histogram_constant_input;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
    ]
