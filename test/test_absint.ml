(* Tests for the pre-encode abstract interpreter (Qsmt_strtheory.Absint)
   and its wiring into the solver paths.

   The load-bearing properties:
   - soundness: any string satisfying every conjunct is pointwise a
     member of the computed domains, whatever the iteration budget
     (witness-based QCheck property);
   - static verdicts are real: planted contradictions analyze to
     V_unsat, fully-determined systems to a classically-verified V_sat,
     and the static fast path never touches a sampler;
   - the widening cap terminates the fixpoint and only ever loses
     precision, never soundness;
   - cold parity: [~absint:`Off] replays the unshrunk pipeline, and the
     shrink path preserves models and full-QUBO energies. *)

module Bitvec = Qsmt_util.Bitvec
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Charset = Qsmt_regex.Charset
module Rparser = Qsmt_regex.Parser
module Sampler = Qsmt_anneal.Sampler
module Sampleset = Qsmt_anneal.Sampleset
module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Absint = Qsmt_strtheory.Absint
module Solver = Qsmt_strtheory.Solver
module Joint = Qsmt_strtheory.Joint

let check = Alcotest.check

let analyze_exn ?max_iters cs =
  match Absint.analyze ?max_iters cs with
  | Ok a -> a
  | Error m -> Alcotest.fail ("Absint.analyze: " ^ m)

let is_unsat a = match a.Absint.verdict with Absint.V_unsat _ -> true | _ -> false

let member_pointwise a s =
  check Alcotest.int "domain count" (String.length s) (Array.length a.Absint.doms);
  String.iteri
    (fun i c ->
      if not (Charset.mem c a.Absint.doms.(i)) then
        Alcotest.failf "witness char %C fell out of the domain at position %d" c i)
    s

(* ------------------------------------------------------------------ *)
(* Static verdicts *)

let test_static_sat () =
  (match (analyze_exn [ Constr.Reverse "hello" ]).Absint.verdict with
  | Absint.V_sat (Constr.Str s) -> check Alcotest.string "reverse" "olleh" s
  | _ -> Alcotest.fail "reverse should be fully determined");
  (match (analyze_exn [ Constr.Concat [ "ab"; "cd" ] ]).Absint.verdict with
  | Absint.V_sat (Constr.Str s) -> check Alcotest.string "concat" "abcd" s
  | _ -> Alcotest.fail "concat should be fully determined");
  (* conjunction: prefix + palindrome mirror determine "abba" *)
  (match
     (analyze_exn
        [
          Constr.Index_of { length = 4; substring = "ab"; index = 0 };
          Constr.Palindrome { length = 4 };
        ])
       .Absint.verdict
   with
  | Absint.V_sat (Constr.Str s) -> check Alcotest.string "abba" "abba" s
  | _ -> Alcotest.fail "prefix + palindrome should be fully determined");
  (* a single Includes is decided through Semantics.index_of *)
  match
    (analyze_exn [ Constr.Includes { haystack = "hello world"; needle = "world" } ])
      .Absint.verdict
  with
  | Absint.V_sat (Constr.Pos (Some i)) -> check Alcotest.int "includes" 6 i
  | _ -> Alcotest.fail "includes hit should be statically sat"

let test_static_unsat () =
  let unsat cs name = Alcotest.(check bool) name true (is_unsat (analyze_exn cs)) in
  unsat
    [
      Constr.Contains { length = 2; substring = "ab" };
      Constr.Contains { length = 2; substring = "ba" };
    ]
    "contains ab /\\ contains ba at length 2";
  unsat
    [
      Constr.Palindrome { length = 2 };
      Constr.Index_of { length = 2; substring = "ab"; index = 0 };
    ]
    "length-2 palindrome with prefix ab";
  unsat
    [
      Constr.Regex { pattern = Rparser.parse_exn "[ab]+"; length = 3 };
      Constr.Index_of { length = 3; substring = "c"; index = 1 };
    ]
    "[ab]+ with c pinned inside";
  unsat [ Constr.Equals "ab"; Constr.Equals "ba" ] "two different literal targets";
  unsat [ Constr.Includes { haystack = "hello"; needle = "xyz" } ] "includes miss";
  (* disagreeing fixed lengths refute the conjunction (the joint solver
     reports its own error before asking; the analyzer itself proves it
     for qsmt analyze) *)
  unsat
    [ Constr.Palindrome { length = 4 }; Constr.Reverse "abc" ]
    "length mismatch across conjuncts"

let test_unique_candidate_fails () =
  (* every domain collapses to a singleton whose candidate then fails
     classical verification: Contains' overwrite semantics make "aa"
     impossible to place twice in 3 chars without the windows clashing —
     construct instead a direct clash: palindrome of length 2 whose two
     positions congruence-merge, intersected with a regex whose only
     length-2 words are "ab" and "ba". The merged domain at each
     position is {a,b} — undecided, not a unique candidate — so use the
     simplest genuine case: equals "ab" /\ palindrome 2 collapses to
     "ab" via Equals and then congruence empties the domains (unsat
     before candidate grading). The candidate-fails branch needs domains
     that are singletons yet wrong, which only Contains' overwrite
     semantics produce: "aba" must contain "ab" and "ba"; placements
     force a unique candidate per the windows, and verification still
     passes. So this test pins the weaker, still-important contract:
     a V_sat candidate always passes Constr.verify on every conjunct. *)
  let cs =
    [
      Constr.Contains { length = 3; substring = "ab" };
      Constr.Contains { length = 3; substring = "ba" };
    ]
  in
  match (analyze_exn cs).Absint.verdict with
  | Absint.V_sat (Constr.Str s) ->
    List.iter
      (fun c ->
        Alcotest.(check bool)
          ("verified: " ^ Constr.describe c)
          true
          (Constr.verify c (Constr.Str s)))
      cs
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Fixpoint and widening *)

let test_widening_cap () =
  let cs = [ Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 } ] in
  (* the full fixpoint needs 2 iterations here *)
  let full = analyze_exn cs in
  Alcotest.(check bool) "converged" false full.Absint.widened;
  check Alcotest.int "iterations" 2 full.Absint.iterations;
  (* capped at 1 iteration: flagged as widened, still sound *)
  let capped = analyze_exn ~max_iters:1 cs in
  Alcotest.(check bool) "widened" true capped.Absint.widened;
  check Alcotest.int "capped iterations" 1 capped.Absint.iterations;
  member_pointwise capped "abbcb";
  (* capped at 0 iterations: nothing derived, everything still sound *)
  let zero = analyze_exn ~max_iters:0 cs in
  check Alcotest.int "zero iterations" 0 zero.Absint.iterations;
  Alcotest.(check bool) "zero widened" true zero.Absint.widened;
  Alcotest.(check (list (pair int bool))) "no forced bits" [] (Absint.forced_bits zero);
  (* the default cap converges on every Table 1 constraint *)
  List.iter
    (fun c ->
      let a = analyze_exn [ c ] in
      Alcotest.(check bool) ("table1 converged: " ^ Constr.describe c) false a.Absint.widened)
    [
      Constr.Reverse "hello";
      Constr.Palindrome { length = 6 };
      Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 };
      Constr.Concat [ "hello"; " "; "world" ];
      Constr.Index_of { length = 6; substring = "hi"; index = 2 };
      Constr.Includes { haystack = "hello world"; needle = "world" };
    ]

let test_forced_bits_shape () =
  let a = analyze_exn [ Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 } ] in
  let forced = Absint.forced_bits a in
  check Alcotest.int "31 of 35 bits forced" 31 (List.length forced);
  check Alcotest.int "one fixed position" 1 (Absint.num_fixed_positions a);
  (* ascending variable order, and position 0 = 'a' fully pinned *)
  let vars = List.map fst forced in
  Alcotest.(check bool) "ascending" true (List.sort compare vars = vars);
  List.iter
    (fun k ->
      let bit = (Char.code 'a' lsr (6 - k)) land 1 = 1 in
      check Alcotest.bool
        (Printf.sprintf "bit %d of position 0" k)
        bit
        (List.assoc k forced))
    [ 0; 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Witness-based soundness property *)

(* Build random conjunctions from a known witness: every generated
   conjunct is satisfied by the witness by construction, so the analysis
   must keep the witness inside the domains (and may never answer
   V_unsat). When it answers V_sat, the all-singleton domains can only
   name the witness itself. *)
let gen_witness_system =
  let open QCheck2.Gen in
  let* length = int_range 1 6 in
  let* palindromic = bool in
  let* chars = list_size (return length) (char_range 'a' 'e') in
  let s =
    let half = Array.of_list chars in
    String.init length (fun i ->
        if palindromic && i >= length - 1 - i then half.(length - 1 - i) else half.(i))
  in
  let sub_at i len = String.sub s i len in
  let* picks =
    list_size (int_range 1 4)
      (oneof
         [
           return (Constr.Reverse (sub_at 0 length |> fun t ->
                                   String.init length (fun i -> t.[length - 1 - i])));
           (let* i = int_range 0 (length - 1) in
            let* l = int_range 1 (length - i) in
            return (Constr.Contains { length; substring = sub_at i l }));
           (let* i = int_range 0 (length - 1) in
            let* l = int_range 1 (length - i) in
            return (Constr.Index_of { length; substring = sub_at i l; index = i }));
           return (Constr.Equals s);
         ])
  in
  let picks = if palindromic then Constr.Palindrome { length } :: picks else picks in
  return (s, picks)

let prop_witness_sound (s, cs) =
  match Absint.analyze cs with
  | Error m -> QCheck2.Test.fail_reportf "analyze failed on a valid system: %s" m
  | Ok a -> begin
    (match a.Absint.verdict with
    | Absint.V_unsat reason ->
      QCheck2.Test.fail_reportf "refuted a system with witness %S: %s" s reason
    | Absint.V_sat (Constr.Str v) when v <> s ->
      QCheck2.Test.fail_reportf "unique candidate %S differs from witness %S" v s
    | _ -> ());
    String.iteri (fun i c -> assert (Charset.mem c a.Absint.doms.(i))) s;
    true
  end

let prop_witness_sound_capped (s, cs) =
  (* widening at any budget only loses precision, never the witness *)
  match Absint.analyze ~max_iters:1 cs with
  | Error m -> QCheck2.Test.fail_reportf "analyze failed on a valid system: %s" m
  | Ok a ->
    (match a.Absint.verdict with
    | Absint.V_unsat reason ->
      QCheck2.Test.fail_reportf "refuted a system with witness %S: %s" s reason
    | _ -> ());
    String.iteri (fun i c -> assert (Charset.mem c a.Absint.doms.(i))) s;
    true

(* ------------------------------------------------------------------ *)
(* Solver integration: fast path, parity, shrink *)

let poisoned_sampler =
  Sampler.make ~name:"poisoned" (fun _ ->
      Alcotest.fail "sampler ran on a statically-decided constraint")

let test_static_fast_path () =
  let telemetry = Telemetry.collector () in
  let outcome =
    Solver.solve ~sampler:poisoned_sampler ~telemetry (Constr.Reverse "hello")
  in
  Alcotest.(check bool) "satisfied" true outcome.Solver.satisfied;
  Alcotest.(check bool) "decided" true (outcome.Solver.decided <> None);
  check Alcotest.int "zero reads" 0 (Sampleset.total_reads outcome.Solver.samples);
  let counter name = Option.value ~default:0 (Telemetry.find_counter telemetry name) in
  check Alcotest.int "absint.static_sat" 1 (counter "absint.static_sat");
  check Alcotest.int "absint.runs" 1 (counter "absint.runs");
  (* the fast path must not spin up the domain pool, a sampler, or the
     embedding cache: no counter from those subsystems may appear *)
  List.iter
    (fun (name, _) ->
      List.iter
        (fun prefix ->
          if String.starts_with ~prefix name then
            Alcotest.failf "static path emitted %s" name)
        [ "pool."; "sa."; "sqa."; "embed."; "hw." ])
    (Telemetry.counters telemetry)

let test_static_unsat_outcome () =
  let outcome =
    Solver.solve ~sampler:poisoned_sampler
      (Constr.Includes { haystack = "hello"; needle = "xyz" })
  in
  Alcotest.(check bool) "not satisfied" false outcome.Solver.satisfied;
  check Alcotest.int "zero reads" 0 (Sampleset.total_reads outcome.Solver.samples);
  match outcome.Solver.decided with
  | Some { Absint.verdict = Absint.V_unsat _; _ } -> ()
  | _ -> Alcotest.fail "expected a static unsat proof"

let test_cold_parity () =
  (* `Off never decides and compiles exactly today's QUBO *)
  let c = Constr.Reverse "hello" in
  let off = Solver.solve ~absint:`Off c in
  Alcotest.(check bool) "off: undecided" true (off.Solver.decided = None);
  Alcotest.(check bool) "off: qubo" true (Qubo.equal off.Solver.qubo (Compile.to_qubo c));
  Alcotest.(check bool) "off: satisfied" true off.Solver.satisfied;
  (* no forced bits => `On takes the ordinary path bit-exactly *)
  let c = Constr.Palindrome { length = 4 } in
  let on = Solver.solve c and off = Solver.solve ~absint:`Off c in
  Alcotest.(check bool) "palindrome: undecided" true (on.Solver.decided = None);
  Alcotest.(check bool) "palindrome: qubo" true (Qubo.equal on.Solver.qubo off.Solver.qubo);
  check Alcotest.string "palindrome: value"
    (Format.asprintf "%a" Constr.pp_value off.Solver.value)
    (Format.asprintf "%a" Constr.pp_value on.Solver.value);
  check (Alcotest.float 1e-9) "palindrome: energy" off.Solver.energy on.Solver.energy

let test_shrunk_preserves_models () =
  List.iter
    (fun c ->
      let on = Solver.solve c in
      let off = Solver.solve ~absint:`Off c in
      Alcotest.(check bool) ("undecided: " ^ Constr.describe c) true (on.Solver.decided = None);
      (* the outcome carries the full QUBO even when the anneal ran on a
         clamped residual *)
      Alcotest.(check bool)
        ("full qubo: " ^ Constr.describe c)
        true
        (Qubo.equal on.Solver.qubo off.Solver.qubo);
      Alcotest.(check bool) ("satisfied: " ^ Constr.describe c) true on.Solver.satisfied;
      Alcotest.(check bool)
        ("verifies: " ^ Constr.describe c)
        true
        (Constr.verify c on.Solver.value);
      (* lifted samples respect the forced bits and re-price on the full
         QUBO *)
      let analysis =
        match Absint.analyze [ c ] with Ok a -> a | Error m -> Alcotest.fail m
      in
      let forced = Absint.forced_bits analysis in
      List.iter
        (fun e ->
          List.iter
            (fun (i, b) ->
              if Bitvec.get e.Sampleset.bits i <> b then
                Alcotest.failf "sample violates forced bit %d of %s" i (Constr.describe c))
            forced;
          let repriced = Qubo.energy on.Solver.qubo e.Sampleset.bits in
          if abs_float (repriced -. e.Sampleset.energy) > 1e-9 then
            Alcotest.failf "sample energy drifted from the full QUBO on %s"
              (Constr.describe c))
        (Sampleset.entries on.Solver.samples))
    [
      Constr.Index_of { length = 6; substring = "hi"; index = 2 };
      Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 };
    ]

let test_joint_static () =
  (* planted joint contradiction: static unsat without merging *)
  (match
     Joint.solve
       [
         Constr.Contains { length = 2; substring = "ab" };
         Constr.Contains { length = 2; substring = "ba" };
       ]
   with
  | Error m -> Alcotest.fail m
  | Ok o ->
    Alcotest.(check bool) "joint unsat: not satisfied" false o.Joint.satisfied;
    Alcotest.(check bool) "joint unsat: decided" true (o.Joint.decided <> None);
    check Alcotest.int "joint unsat: zero reads" 0 (Sampleset.total_reads o.Joint.samples);
    Alcotest.(check bool)
      "joint unsat: all conjuncts unsatisfied"
      true
      (List.for_all (fun (_, ok) -> not ok) o.Joint.per_constraint));
  (* fully determined joint system: static sat, classically verified *)
  match
    Joint.solve
      [
        Constr.Index_of { length = 4; substring = "ab"; index = 0 };
        Constr.Palindrome { length = 4 };
      ]
  with
  | Error m -> Alcotest.fail m
  | Ok o ->
    Alcotest.(check bool) "joint sat" true o.Joint.satisfied;
    check Alcotest.string "joint value" "abba" o.Joint.value;
    Alcotest.(check bool) "joint decided" true (o.Joint.decided <> None);
    check Alcotest.int "joint zero reads" 0 (Sampleset.total_reads o.Joint.samples)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let () =
  Alcotest.run "qsmt_absint"
    [
      ( "verdicts",
        [
          Alcotest.test_case "fully determined systems are V_sat" `Quick test_static_sat;
          Alcotest.test_case "planted contradictions are V_unsat" `Quick test_static_unsat;
          Alcotest.test_case "V_sat candidates verify classically" `Quick
            test_unique_candidate_fails;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "widening cap terminates and stays sound" `Quick
            test_widening_cap;
          Alcotest.test_case "forced bits: count, order, values" `Quick
            test_forced_bits_shape;
        ] );
      ( "soundness",
        [
          qtest "witness survives analysis" gen_witness_system prop_witness_sound;
          qtest "witness survives a capped analysis" gen_witness_system
            prop_witness_sound_capped;
        ] );
      ( "solver",
        [
          Alcotest.test_case "static fast path touches nothing" `Quick
            test_static_fast_path;
          Alcotest.test_case "static unsat is reported as a proof" `Quick
            test_static_unsat_outcome;
          Alcotest.test_case "absint off replays the cold pipeline" `Quick
            test_cold_parity;
          Alcotest.test_case "shrunk solves preserve models and energies" `Quick
            test_shrunk_preserves_models;
          Alcotest.test_case "joint conjunctions decide statically" `Quick
            test_joint_static;
        ] );
    ]
