(* Unit tests for annealing figures of merit (Metrics) and the
   telemetry layer (spans, counters, histograms, JSONL round-trip).

   The Metrics formulas are the quantities every bench table reports;
   each test here pins a hand-computed value so a refactor of the
   log-ratio arithmetic cannot silently shift published numbers. *)

module Bitvec = Qsmt_util.Bitvec
module Telemetry = Qsmt_util.Telemetry
module Sampleset = Qsmt_anneal.Sampleset
module Metrics = Qsmt_anneal.Metrics

let check = Alcotest.check

let feq ?(eps = 1e-9) name want got =
  if Float.abs (want -. got) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" name want got

(* A set with [good] reads at the ground energy 0.0 and [bad] reads at
   energy 2.0. Distinct bit patterns so aggregation keeps them apart. *)
let two_level ~good ~bad =
  let entry bits energy occurrences =
    { Sampleset.bits = Bitvec.of_string bits; energy; occurrences }
  in
  Sampleset.of_entries
    (List.concat
       [
         (if good > 0 then [ entry "00" 0.0 good ] else []);
         (if bad > 0 then [ entry "11" 2.0 bad ] else []);
       ])

(* ------------------------------------------------------------------ *)
(* success_probability *)

let test_success_basic () =
  let s = two_level ~good:3 ~bad:1 in
  feq "3/4 good" 0.75 (Metrics.success_probability s ~ground_energy:0.0 ());
  feq "empty is 0" 0.
    (Metrics.success_probability Sampleset.empty ~ground_energy:0.0 ())

let test_success_tolerance_edges () =
  let entry bits energy occurrences =
    { Sampleset.bits = Bitvec.of_string bits; energy; occurrences }
  in
  let s = Sampleset.of_entries [ entry "0" 1.0 1; entry "1" (1.0 +. 1e-10) 1 ] in
  (* default tol 1e-9: both reads count as ground *)
  feq "within default tol" 1.0 (Metrics.success_probability s ~ground_energy:1.0 ());
  (* tol 0 would still admit exactly-equal energies but not the +1e-10 read *)
  feq "tol 0 excludes epsilon-above" 0.5
    (Metrics.success_probability s ~ground_energy:1.0 ~tol:0. ());
  (* a generous tol admits everything *)
  feq "wide tol admits all" 1.0
    (Metrics.success_probability s ~ground_energy:1.0 ~tol:1e-3 ());
  (* ground strictly below every read: nothing counts *)
  feq "unreached ground" 0.
    (Metrics.success_probability s ~ground_energy:0.0 ~tol:1e-6 ())

(* ------------------------------------------------------------------ *)
(* repeats_needed *)

let test_repeats_boundaries () =
  check Alcotest.(option int) "p=0 unreachable" None
    (Metrics.repeats_needed ~p_success:0. ~confidence:0.99);
  check Alcotest.(option int) "p<0 unreachable" None
    (Metrics.repeats_needed ~p_success:(-0.5) ~confidence:0.99);
  check Alcotest.(option int) "p=1 one read" (Some 1)
    (Metrics.repeats_needed ~p_success:1. ~confidence:0.99);
  check Alcotest.(option int) "p>1 clamps to one read" (Some 1)
    (Metrics.repeats_needed ~p_success:1.5 ~confidence:0.99)

let test_repeats_hand_computed () =
  (* p=0.5, conf=0.99: ln(0.01)/ln(0.5) = 6.64... -> 7 reads *)
  check Alcotest.(option int) "p=.5 conf=.99" (Some 7)
    (Metrics.repeats_needed ~p_success:0.5 ~confidence:0.99);
  (* p=0.9, conf=0.99: ln(0.01)/ln(0.1) = 2 exactly *)
  check Alcotest.(option int) "p=.9 conf=.99" (Some 2)
    (Metrics.repeats_needed ~p_success:0.9 ~confidence:0.99);
  (* p=0.99, conf=0.5: one read already exceeds the target *)
  check Alcotest.(option int) "easy target" (Some 1)
    (Metrics.repeats_needed ~p_success:0.99 ~confidence:0.5)

let test_repeats_confidence_domain () =
  let raises c =
    match Metrics.repeats_needed ~p_success:0.5 ~confidence:c with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check Alcotest.bool "confidence 0 rejected" true (raises 0.);
  check Alcotest.bool "confidence 1 rejected" true (raises 1.);
  check Alcotest.bool "confidence 1.5 rejected" true (raises 1.5);
  check Alcotest.bool "confidence 0.5 fine" false (raises 0.5)

(* ------------------------------------------------------------------ *)
(* time_to_solution *)

let test_tts_hand_computed () =
  (* TTS = t_read * ln(1-conf)/ln(1-p). With p=0.9, conf=0.99 the ratio
     is exactly 2, so TTS = 2 * t_read. *)
  (match Metrics.time_to_solution ~time_per_read:1e-3 ~p_success:0.9 () with
  | Some t -> feq "p=.9 doubles t_read" 2e-3 t ~eps:1e-12
  | None -> Alcotest.fail "expected Some");
  (* p=0.5, conf=0.99: ratio ln(0.01)/ln(0.5) = 6.6438561897747... *)
  (match Metrics.time_to_solution ~time_per_read:2.0 ~p_success:0.5 () with
  | Some t -> feq "p=.5" (2.0 *. (Float.log 0.01 /. Float.log 0.5)) t ~eps:1e-12
  | None -> Alcotest.fail "expected Some");
  (* explicit confidence: conf=0.5, p=0.5 -> exactly one read's time *)
  match Metrics.time_to_solution ~time_per_read:0.25 ~p_success:0.5 ~confidence:0.5 () with
  | Some t -> feq "conf=.5 p=.5 is one read" 0.25 t ~eps:1e-12
  | None -> Alcotest.fail "expected Some"

let test_tts_boundaries () =
  check Alcotest.bool "p=0 -> None" true
    (Metrics.time_to_solution ~time_per_read:1. ~p_success:0. () = None);
  (match Metrics.time_to_solution ~time_per_read:0.5 ~p_success:1. () with
  | Some t -> feq "p=1 -> one read" 0.5 t
  | None -> Alcotest.fail "expected Some");
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "t_read=0 rejected" true
    (raises (fun () -> Metrics.time_to_solution ~time_per_read:0. ~p_success:0.5 ()));
  check Alcotest.bool "bad confidence rejected" true
    (raises (fun () ->
         Metrics.time_to_solution ~time_per_read:1. ~p_success:0.5 ~confidence:1. ()))

let test_pp_tts () =
  let s v = Format.asprintf "%a" Metrics.pp_tts v in
  check Alcotest.string "never-seen prints n/a" "n/a" (s None);
  check Alcotest.string "seconds" "2.50 s" (s (Some 2.5));
  check Alcotest.string "millis" "3.20 ms" (s (Some 3.2e-3));
  check Alcotest.string "micros" "4.0 us" (s (Some 4e-6))

(* ------------------------------------------------------------------ *)
(* residual_energy *)

let test_residual () =
  check Alcotest.bool "empty -> None" true
    (Metrics.residual_energy Sampleset.empty ~ground_energy:0. = None);
  (match Metrics.residual_energy (two_level ~good:1 ~bad:1) ~ground_energy:0. with
  | Some r -> feq "mean of 0 and 2" 1.0 r
  | None -> Alcotest.fail "expected Some");
  match Metrics.residual_energy (two_level ~good:3 ~bad:1) ~ground_energy:0. with
  | Some r -> feq "occurrence-weighted" 0.5 r
  | None -> Alcotest.fail "expected Some"

(* ================================================================== *)
(* Telemetry *)

let test_null_disabled () =
  check Alcotest.bool "null disabled" false (Telemetry.enabled Telemetry.null);
  (* every operation is a no-op, and reading aggregates is safe *)
  Telemetry.count Telemetry.null "x" 3;
  Telemetry.observe Telemetry.null "h" 1.0;
  let sp = Telemetry.span Telemetry.null "s" in
  Telemetry.finish Telemetry.null sp;
  Telemetry.emit Telemetry.null "ev" [];
  Telemetry.flush Telemetry.null;
  check Alcotest.(list (pair string int)) "no counters" [] (Telemetry.counters Telemetry.null);
  check Alcotest.int "no events" 0 (List.length (Telemetry.events Telemetry.null))

let test_collector_events_and_counters () =
  let t = Telemetry.collector () in
  check Alcotest.bool "collector enabled" true (Telemetry.enabled t);
  Telemetry.count t "reads" 8;
  Telemetry.count t "reads" 4;
  Telemetry.count t "other" 1;
  Telemetry.emit t "point" [ ("k", Telemetry.Int 7) ];
  check Alcotest.(option int) "counter sums" (Some 12) (Telemetry.find_counter t "reads");
  check
    Alcotest.(list (pair string int))
    "sorted counters"
    [ ("other", 1); ("reads", 12) ]
    (Telemetry.counters t);
  let evs = Telemetry.events t in
  check Alcotest.int "one point event" 1 (List.length evs);
  let e = List.hd evs in
  check Alcotest.string "event name" "point" e.Telemetry.ev;
  check Alcotest.bool "field survives" true
    (List.assoc "k" e.Telemetry.fields = Telemetry.Int 7)

let test_span_nesting () =
  let t = Telemetry.collector () in
  let outer = Telemetry.span t "outer" in
  let inner = Telemetry.span t ~parent:outer "inner" in
  Telemetry.finish t inner;
  Telemetry.finish t outer;
  (match Telemetry.events t with
  | [ b_out; b_in; e_in; e_out ] ->
    check Alcotest.string "begin outer" "span.begin" b_out.Telemetry.ev;
    check Alcotest.string "begin inner" "span.begin" b_in.Telemetry.ev;
    check Alcotest.int "inner's parent is outer" b_out.Telemetry.span b_in.Telemetry.parent;
    check Alcotest.bool "distinct span ids" true
      (b_out.Telemetry.span <> b_in.Telemetry.span);
    check Alcotest.string "inner ends first" "span.end" e_in.Telemetry.ev;
    check Alcotest.int "end matches begin" b_in.Telemetry.span e_in.Telemetry.span;
    check Alcotest.string "outer ends last" "span.end" e_out.Telemetry.ev;
    check Alcotest.bool "end carries duration" true
      (List.mem_assoc "dur_s" e_in.Telemetry.fields)
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs));
  match Telemetry.span_totals t with
  | [ ("inner", 1, d_in); ("outer", 1, d_out) ] ->
    check Alcotest.bool "durations non-negative" true (d_in >= 0. && d_out >= 0.);
    check Alcotest.bool "outer contains inner" true (d_out >= d_in)
  | _ -> Alcotest.fail "span totals should list inner and outer once each"

let test_with_span_on_raise () =
  let t = Telemetry.collector () in
  (try Telemetry.with_span t "risky" (fun _ -> failwith "boom") with Failure _ -> ());
  match Telemetry.span_totals t with
  | [ ("risky", 1, _) ] -> ()
  | _ -> Alcotest.fail "span must be finished when the body raises"

let test_timestamps_monotone () =
  let t = Telemetry.collector () in
  for i = 0 to 99 do
    Telemetry.emit t "tick" [ ("i", Telemetry.Int i) ]
  done;
  let ts = List.map (fun e -> e.Telemetry.ts) (Telemetry.events t) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  check Alcotest.bool "non-decreasing ts" true (sorted ts)

let test_histograms () =
  let t = Telemetry.aggregate_only () in
  List.iter (Telemetry.observe t "e") [ 1.0; 2.0; 3.0; 4.0 ];
  match Telemetry.histograms t with
  | [ ("e", h) ] ->
    check Alcotest.int "count" 4 h.Telemetry.h_count;
    feq "min" 1.0 h.Telemetry.h_min;
    feq "max" 4.0 h.Telemetry.h_max;
    feq "mean" 2.5 h.Telemetry.h_mean;
    (* sample stddev of {1,2,3,4}: sqrt(5/3) *)
    feq "stddev" (sqrt (5. /. 3.)) h.Telemetry.h_stddev ~eps:1e-9
  | _ -> Alcotest.fail "expected one histogram"

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "qsmt_telemetry" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Telemetry.with_jsonl path (fun t ->
          Telemetry.with_span t "solve" (fun solve ->
              Telemetry.emit t ~span:solve "sa.sweep"
                [ ("sweep", Telemetry.Int 1); ("energy", Telemetry.Float (-2.5)) ];
              Telemetry.count t "sa.reads" 32;
              Telemetry.observe t "sa.read_energy" 0.5));
      match Telemetry.validate_jsonl_file path with
      | Error msg -> Alcotest.failf "trace invalid: %s" msg
      | Ok n ->
        (* span.begin + sa.sweep + span.end + flushed counter + hist *)
        check Alcotest.bool "all events present" true (n >= 5);
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        let has sub =
          List.exists
            (fun l ->
              let rec find i =
                i + String.length sub <= String.length l
                && (String.sub l i (String.length sub) = sub || find (i + 1))
              in
              find 0)
            !lines
        in
        check Alcotest.bool "sweep event serialised" true (has "\"ev\":\"sa.sweep\"");
        check Alcotest.bool "counter flushed" true (has "sa.reads");
        check Alcotest.bool "histogram flushed" true (has "sa.read_energy"))

let test_validate_rejects_garbage () =
  let path = Filename.temp_file "qsmt_telemetry_bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"ts\":1.0,\"ev\":\"a\"}\n{\"ts\":0.5,\"ev\":\"b\"}\n";
      close_out oc;
      match Telemetry.validate_jsonl_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "decreasing timestamps must be rejected")

let test_instrumentation_is_invisible () =
  (* The determinism contract: instrumentation never consumes PRNG state
     or changes control flow, so a traced run returns bit-identical
     samples to an untraced one. *)
  let module Sa = Qsmt_anneal.Sa in
  let module Qubo = Qsmt_qubo.Qubo in
  let b = Qubo.builder () in
  Qubo.add b 0 0 1.5;
  Qubo.add b 3 3 (-2.0);
  Qubo.add b 0 1 (-1.0);
  Qubo.add b 2 4 0.75;
  Qubo.add b 1 5 (-0.5);
  let q = Qubo.freeze ~num_vars:6 b in
  let params = { Sa.default with Sa.seed = 11; reads = 8; sweeps = 64 } in
  let plain = Sa.sample ~params q in
  let t = Telemetry.collector () in
  let traced = Sa.sample ~params ~telemetry:t q in
  let sig_of s =
    List.map
      (fun e -> (Bitvec.to_string e.Sampleset.bits, e.Sampleset.energy, e.Sampleset.occurrences))
      (Sampleset.entries s)
  in
  check Alcotest.bool "bit-identical samples" true (sig_of plain = sig_of traced);
  check Alcotest.(option int) "reads counted" (Some 8) (Telemetry.find_counter t "sa.reads");
  check Alcotest.bool "sweep stream present" true
    (List.exists (fun e -> e.Telemetry.ev = "sa.sweep") (Telemetry.events t))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "qsmt_metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "success basic" `Quick test_success_basic;
          Alcotest.test_case "success tolerance edges" `Quick test_success_tolerance_edges;
          Alcotest.test_case "repeats boundaries" `Quick test_repeats_boundaries;
          Alcotest.test_case "repeats hand-computed" `Quick test_repeats_hand_computed;
          Alcotest.test_case "repeats confidence domain" `Quick test_repeats_confidence_domain;
          Alcotest.test_case "tts hand-computed" `Quick test_tts_hand_computed;
          Alcotest.test_case "tts boundaries" `Quick test_tts_boundaries;
          Alcotest.test_case "pp_tts" `Quick test_pp_tts;
          Alcotest.test_case "residual energy" `Quick test_residual;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "null disabled" `Quick test_null_disabled;
          Alcotest.test_case "collector events+counters" `Quick test_collector_events_and_counters;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "with_span on raise" `Quick test_with_span_on_raise;
          Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
          Alcotest.test_case "histograms (Welford)" `Quick test_histograms;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "validator rejects garbage" `Quick test_validate_rejects_garbage;
          Alcotest.test_case "instrumentation invisible to sampler" `Quick
            test_instrumentation_is_invisible;
        ] );
    ]
