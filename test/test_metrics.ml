(* Unit tests for annealing figures of merit (Metrics) and the
   telemetry layer (spans, counters, histograms, JSONL round-trip).

   The Metrics formulas are the quantities every bench table reports;
   each test here pins a hand-computed value so a refactor of the
   log-ratio arithmetic cannot silently shift published numbers. *)

module Bitvec = Qsmt_util.Bitvec
module Telemetry = Qsmt_util.Telemetry
module Sampleset = Qsmt_anneal.Sampleset
module Metrics = Qsmt_anneal.Metrics

let check = Alcotest.check

let feq ?(eps = 1e-9) name want got =
  if Float.abs (want -. got) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" name want got

(* A set with [good] reads at the ground energy 0.0 and [bad] reads at
   energy 2.0. Distinct bit patterns so aggregation keeps them apart. *)
let two_level ~good ~bad =
  let entry bits energy occurrences =
    { Sampleset.bits = Bitvec.of_string bits; energy; occurrences }
  in
  Sampleset.of_entries
    (List.concat
       [
         (if good > 0 then [ entry "00" 0.0 good ] else []);
         (if bad > 0 then [ entry "11" 2.0 bad ] else []);
       ])

(* ------------------------------------------------------------------ *)
(* success_probability *)

let test_success_basic () =
  let s = two_level ~good:3 ~bad:1 in
  feq "3/4 good" 0.75 (Metrics.success_probability s ~ground_energy:0.0 ());
  feq "empty is 0" 0.
    (Metrics.success_probability Sampleset.empty ~ground_energy:0.0 ())

let test_success_tolerance_edges () =
  let entry bits energy occurrences =
    { Sampleset.bits = Bitvec.of_string bits; energy; occurrences }
  in
  let s = Sampleset.of_entries [ entry "0" 1.0 1; entry "1" (1.0 +. 1e-10) 1 ] in
  (* default tol 1e-9: both reads count as ground *)
  feq "within default tol" 1.0 (Metrics.success_probability s ~ground_energy:1.0 ());
  (* tol 0 would still admit exactly-equal energies but not the +1e-10 read *)
  feq "tol 0 excludes epsilon-above" 0.5
    (Metrics.success_probability s ~ground_energy:1.0 ~tol:0. ());
  (* a generous tol admits everything *)
  feq "wide tol admits all" 1.0
    (Metrics.success_probability s ~ground_energy:1.0 ~tol:1e-3 ());
  (* ground strictly below every read: nothing counts *)
  feq "unreached ground" 0.
    (Metrics.success_probability s ~ground_energy:0.0 ~tol:1e-6 ())

(* ------------------------------------------------------------------ *)
(* repeats_needed *)

let test_repeats_boundaries () =
  check Alcotest.(option int) "p=0 unreachable" None
    (Metrics.repeats_needed ~p_success:0. ~confidence:0.99);
  check Alcotest.(option int) "p<0 unreachable" None
    (Metrics.repeats_needed ~p_success:(-0.5) ~confidence:0.99);
  check Alcotest.(option int) "p=1 one read" (Some 1)
    (Metrics.repeats_needed ~p_success:1. ~confidence:0.99);
  check Alcotest.(option int) "p>1 clamps to one read" (Some 1)
    (Metrics.repeats_needed ~p_success:1.5 ~confidence:0.99)

let test_repeats_hand_computed () =
  (* p=0.5, conf=0.99: ln(0.01)/ln(0.5) = 6.64... -> 7 reads *)
  check Alcotest.(option int) "p=.5 conf=.99" (Some 7)
    (Metrics.repeats_needed ~p_success:0.5 ~confidence:0.99);
  (* p=0.9, conf=0.99: ln(0.01)/ln(0.1) = 2 exactly *)
  check Alcotest.(option int) "p=.9 conf=.99" (Some 2)
    (Metrics.repeats_needed ~p_success:0.9 ~confidence:0.99);
  (* p=0.99, conf=0.5: one read already exceeds the target *)
  check Alcotest.(option int) "easy target" (Some 1)
    (Metrics.repeats_needed ~p_success:0.99 ~confidence:0.5)

let test_repeats_confidence_domain () =
  let raises c =
    match Metrics.repeats_needed ~p_success:0.5 ~confidence:c with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check Alcotest.bool "confidence 0 rejected" true (raises 0.);
  check Alcotest.bool "confidence 1 rejected" true (raises 1.);
  check Alcotest.bool "confidence 1.5 rejected" true (raises 1.5);
  check Alcotest.bool "confidence 0.5 fine" false (raises 0.5)

(* ------------------------------------------------------------------ *)
(* time_to_solution *)

let test_tts_hand_computed () =
  (* TTS = t_read * ln(1-conf)/ln(1-p). With p=0.9, conf=0.99 the ratio
     is exactly 2, so TTS = 2 * t_read. *)
  (match Metrics.time_to_solution ~time_per_read:1e-3 ~p_success:0.9 () with
  | Some t -> feq "p=.9 doubles t_read" 2e-3 t ~eps:1e-12
  | None -> Alcotest.fail "expected Some");
  (* p=0.5, conf=0.99: ratio ln(0.01)/ln(0.5) = 6.6438561897747... *)
  (match Metrics.time_to_solution ~time_per_read:2.0 ~p_success:0.5 () with
  | Some t -> feq "p=.5" (2.0 *. (Float.log 0.01 /. Float.log 0.5)) t ~eps:1e-12
  | None -> Alcotest.fail "expected Some");
  (* explicit confidence: conf=0.5, p=0.5 -> exactly one read's time *)
  match Metrics.time_to_solution ~time_per_read:0.25 ~p_success:0.5 ~confidence:0.5 () with
  | Some t -> feq "conf=.5 p=.5 is one read" 0.25 t ~eps:1e-12
  | None -> Alcotest.fail "expected Some"

let test_tts_boundaries () =
  check Alcotest.bool "p=0 -> None" true
    (Metrics.time_to_solution ~time_per_read:1. ~p_success:0. () = None);
  (match Metrics.time_to_solution ~time_per_read:0.5 ~p_success:1. () with
  | Some t -> feq "p=1 -> one read" 0.5 t
  | None -> Alcotest.fail "expected Some");
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check Alcotest.bool "t_read=0 rejected" true
    (raises (fun () -> Metrics.time_to_solution ~time_per_read:0. ~p_success:0.5 ()));
  check Alcotest.bool "bad confidence rejected" true
    (raises (fun () ->
         Metrics.time_to_solution ~time_per_read:1. ~p_success:0.5 ~confidence:1. ()))

let test_pp_tts () =
  let s v = Format.asprintf "%a" Metrics.pp_tts v in
  check Alcotest.string "never-seen prints n/a" "n/a" (s None);
  check Alcotest.string "seconds" "2.50 s" (s (Some 2.5));
  check Alcotest.string "millis" "3.20 ms" (s (Some 3.2e-3));
  check Alcotest.string "micros" "4.0 us" (s (Some 4e-6))

(* ------------------------------------------------------------------ *)
(* residual_energy *)

let test_residual () =
  check Alcotest.bool "empty -> None" true
    (Metrics.residual_energy Sampleset.empty ~ground_energy:0. = None);
  (match Metrics.residual_energy (two_level ~good:1 ~bad:1) ~ground_energy:0. with
  | Some r -> feq "mean of 0 and 2" 1.0 r
  | None -> Alcotest.fail "expected Some");
  match Metrics.residual_energy (two_level ~good:3 ~bad:1) ~ground_energy:0. with
  | Some r -> feq "occurrence-weighted" 0.5 r
  | None -> Alcotest.fail "expected Some"

(* ================================================================== *)
(* Telemetry *)

let test_null_disabled () =
  check Alcotest.bool "null disabled" false (Telemetry.enabled Telemetry.null);
  (* every operation is a no-op, and reading aggregates is safe *)
  Telemetry.count Telemetry.null "x" 3;
  Telemetry.observe Telemetry.null "h" 1.0;
  let sp = Telemetry.span Telemetry.null "s" in
  Telemetry.finish Telemetry.null sp;
  Telemetry.emit Telemetry.null "ev" [];
  Telemetry.flush Telemetry.null;
  check Alcotest.(list (pair string int)) "no counters" [] (Telemetry.counters Telemetry.null);
  check Alcotest.int "no events" 0 (List.length (Telemetry.events Telemetry.null))

let test_collector_events_and_counters () =
  let t = Telemetry.collector () in
  check Alcotest.bool "collector enabled" true (Telemetry.enabled t);
  Telemetry.count t "reads" 8;
  Telemetry.count t "reads" 4;
  Telemetry.count t "other" 1;
  Telemetry.emit t "point" [ ("k", Telemetry.Int 7) ];
  check Alcotest.(option int) "counter sums" (Some 12) (Telemetry.find_counter t "reads");
  check
    Alcotest.(list (pair string int))
    "sorted counters"
    [ ("other", 1); ("reads", 12) ]
    (Telemetry.counters t);
  let evs = Telemetry.events t in
  check Alcotest.int "one point event" 1 (List.length evs);
  let e = List.hd evs in
  check Alcotest.string "event name" "point" e.Telemetry.ev;
  check Alcotest.bool "field survives" true
    (List.assoc "k" e.Telemetry.fields = Telemetry.Int 7)

let test_span_nesting () =
  let t = Telemetry.collector () in
  let outer = Telemetry.span t "outer" in
  let inner = Telemetry.span t ~parent:outer "inner" in
  Telemetry.finish t inner;
  Telemetry.finish t outer;
  (match Telemetry.events t with
  | [ b_out; b_in; e_in; e_out ] ->
    check Alcotest.string "begin outer" "span.begin" b_out.Telemetry.ev;
    check Alcotest.string "begin inner" "span.begin" b_in.Telemetry.ev;
    check Alcotest.int "inner's parent is outer" b_out.Telemetry.span b_in.Telemetry.parent;
    check Alcotest.bool "distinct span ids" true
      (b_out.Telemetry.span <> b_in.Telemetry.span);
    check Alcotest.string "inner ends first" "span.end" e_in.Telemetry.ev;
    check Alcotest.int "end matches begin" b_in.Telemetry.span e_in.Telemetry.span;
    check Alcotest.string "outer ends last" "span.end" e_out.Telemetry.ev;
    check Alcotest.bool "end carries duration" true
      (List.mem_assoc "dur_s" e_in.Telemetry.fields)
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs));
  match Telemetry.span_totals t with
  | [ ("inner", 1, d_in); ("outer", 1, d_out) ] ->
    check Alcotest.bool "durations non-negative" true (d_in >= 0. && d_out >= 0.);
    check Alcotest.bool "outer contains inner" true (d_out >= d_in)
  | _ -> Alcotest.fail "span totals should list inner and outer once each"

let test_with_span_on_raise () =
  let t = Telemetry.collector () in
  (try Telemetry.with_span t "risky" (fun _ -> failwith "boom") with Failure _ -> ());
  match Telemetry.span_totals t with
  | [ ("risky", 1, _) ] -> ()
  | _ -> Alcotest.fail "span must be finished when the body raises"

let test_timestamps_monotone () =
  let t = Telemetry.collector () in
  for i = 0 to 99 do
    Telemetry.emit t "tick" [ ("i", Telemetry.Int i) ]
  done;
  let ts = List.map (fun e -> e.Telemetry.ts) (Telemetry.events t) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  check Alcotest.bool "non-decreasing ts" true (sorted ts)

let test_histograms () =
  let t = Telemetry.aggregate_only () in
  List.iter (Telemetry.observe t "e") [ 1.0; 2.0; 3.0; 4.0 ];
  match Telemetry.histograms t with
  | [ ("e", h) ] ->
    check Alcotest.int "count" 4 h.Telemetry.h_count;
    feq "min" 1.0 h.Telemetry.h_min;
    feq "max" 4.0 h.Telemetry.h_max;
    feq "mean" 2.5 h.Telemetry.h_mean;
    (* sample stddev of {1,2,3,4}: sqrt(5/3) *)
    feq "stddev" (sqrt (5. /. 3.)) h.Telemetry.h_stddev ~eps:1e-9
  | _ -> Alcotest.fail "expected one histogram"

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "qsmt_telemetry" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Telemetry.with_jsonl path (fun t ->
          Telemetry.with_span t "solve" (fun solve ->
              Telemetry.emit t ~span:solve "sa.sweep"
                [ ("sweep", Telemetry.Int 1); ("energy", Telemetry.Float (-2.5)) ];
              Telemetry.count t "sa.reads" 32;
              Telemetry.observe t "sa.read_energy" 0.5));
      match Telemetry.validate_jsonl_file path with
      | Error msg -> Alcotest.failf "trace invalid: %s" msg
      | Ok n ->
        (* span.begin + sa.sweep + span.end + flushed counter + hist *)
        check Alcotest.bool "all events present" true (n >= 5);
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        let has sub =
          List.exists
            (fun l ->
              let rec find i =
                i + String.length sub <= String.length l
                && (String.sub l i (String.length sub) = sub || find (i + 1))
              in
              find 0)
            !lines
        in
        check Alcotest.bool "sweep event serialised" true (has "\"ev\":\"sa.sweep\"");
        check Alcotest.bool "counter flushed" true (has "sa.reads");
        check Alcotest.bool "histogram flushed" true (has "sa.read_energy"))

let test_validate_rejects_garbage () =
  let path = Filename.temp_file "qsmt_telemetry_bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"ts\":1.0,\"ev\":\"a\"}\n{\"ts\":0.5,\"ev\":\"b\"}\n";
      close_out oc;
      match Telemetry.validate_jsonl_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "decreasing timestamps must be rejected")

let test_instrumentation_is_invisible () =
  (* The determinism contract: instrumentation never consumes PRNG state
     or changes control flow, so a traced run returns bit-identical
     samples to an untraced one. *)
  let module Sa = Qsmt_anneal.Sa in
  let module Qubo = Qsmt_qubo.Qubo in
  let b = Qubo.builder () in
  Qubo.add b 0 0 1.5;
  Qubo.add b 3 3 (-2.0);
  Qubo.add b 0 1 (-1.0);
  Qubo.add b 2 4 0.75;
  Qubo.add b 1 5 (-0.5);
  let q = Qubo.freeze ~num_vars:6 b in
  let params = { Sa.default with Sa.seed = 11; reads = 8; sweeps = 64 } in
  let plain = Sa.sample ~params q in
  let t = Telemetry.collector () in
  let traced = Sa.sample ~params ~telemetry:t q in
  let sig_of s =
    List.map
      (fun e -> (Bitvec.to_string e.Sampleset.bits, e.Sampleset.energy, e.Sampleset.occurrences))
      (Sampleset.entries s)
  in
  check Alcotest.bool "bit-identical samples" true (sig_of plain = sig_of traced);
  check Alcotest.(option int) "reads counted" (Some 8) (Telemetry.find_counter t "sa.reads");
  check Alcotest.bool "sweep stream present" true
    (List.exists (fun e -> e.Telemetry.ev = "sa.sweep") (Telemetry.events t))

(* ================================================================== *)
(* Observability: quantiles, snapshot/exposition, pool probes,
   strengthened validator, Chrome export *)

let test_quantiles_exact_small () =
  (* n <= 5: the estimator interpolates the buffered sample directly and
     must agree with Stats.percentile to the digit. *)
  let samples = [ 9.0; 1.0; 5.0; 3.0; 7.0 ] in
  let t = Telemetry.aggregate_only () in
  List.iter (Telemetry.observe t "x") samples;
  let arr = Array.of_list samples in
  match Telemetry.histograms t with
  | [ ("x", h) ] ->
    feq "p50 exact" (Qsmt_util.Stats.percentile arr 50.) h.Telemetry.h_p50;
    feq "p90 exact" (Qsmt_util.Stats.percentile arr 90.) h.Telemetry.h_p90;
    feq "p99 exact" (Qsmt_util.Stats.percentile arr 99.) h.Telemetry.h_p99
  | _ -> Alcotest.fail "expected one histogram"

let test_quantiles_sane_large () =
  (* 1..1000 shuffled deterministically: P² estimates carry error, but
     the estimates must stay ordered, in range, and near the exact
     values for a smooth distribution. *)
  let n = 1000 in
  let xs = Array.init n (fun i -> float_of_int (((i * 611) mod n) + 1)) in
  let t = Telemetry.aggregate_only () in
  Array.iter (Telemetry.observe t "x") xs;
  match Telemetry.histograms t with
  | [ ("x", h) ] ->
    check Alcotest.int "count" n h.Telemetry.h_count;
    check Alcotest.bool "ordered" true
      (h.Telemetry.h_min <= h.Telemetry.h_p50
      && h.Telemetry.h_p50 <= h.Telemetry.h_p90
      && h.Telemetry.h_p90 <= h.Telemetry.h_p99
      && h.Telemetry.h_p99 <= h.Telemetry.h_max);
    let near name want got tol =
      if Float.abs (want -. got) > tol then
        Alcotest.failf "%s: expected ~%.1f, got %.1f" name want got
    in
    near "p50" 500.5 h.Telemetry.h_p50 25.;
    near "p90" 900.1 h.Telemetry.h_p90 25.;
    near "p99" 990.01 h.Telemetry.h_p99 25.
  | _ -> Alcotest.fail "expected one histogram"

let test_snapshot_and_exposition () =
  let t = Telemetry.collector () in
  Telemetry.count t "sa.reads" 32;
  Telemetry.gauge t "pool.utilization" 0.75;
  List.iter (Telemetry.observe t "sa.read_energy") [ 1.0; 2.0; 3.0 ];
  Telemetry.with_span t "solve" (fun _ -> ());
  let open_sp = Telemetry.span t "sample" in
  let snap = Telemetry.snapshot t in
  check Alcotest.(option string) "phase is the open span" (Some "sample") snap.Telemetry.snap_phase;
  check
    Alcotest.(list (pair string int))
    "counters in snapshot"
    [ ("sa.reads", 32) ]
    snap.Telemetry.snap_counters;
  check Alcotest.bool "elapsed non-negative" true (snap.Telemetry.snap_elapsed_s >= 0.);
  let text = Telemetry.expose_text snap in
  let has sub =
    let rec find i =
      i + String.length sub <= String.length text
      && (String.sub text i (String.length sub) = sub || find (i + 1))
    in
    find 0
  in
  check Alcotest.bool "counter gets _total" true (has "qsmt_sa_reads_total 32");
  check Alcotest.bool "gauge line" true (has "qsmt_pool_utilization 0.75");
  check Alcotest.bool "median quantile line" true
    (has "qsmt_sa_read_energy{quantile=\"0.5\"} 2");
  check Alcotest.bool "summary count" true (has "qsmt_sa_read_energy_count 3");
  check Alcotest.bool "span total" true (has "qsmt_span_seconds_total{span=\"solve\"}");
  check Alcotest.bool "open span gauge" true (has "qsmt_open_spans{span=\"sample\"} 1");
  Telemetry.finish t open_sp;
  (* deterministic: same aggregates render to the same bytes *)
  check Alcotest.string "exposition deterministic" text
    (Telemetry.expose_text { snap with Telemetry.snap_elapsed_s = snap.Telemetry.snap_elapsed_s })

let test_snapshot_of_jsonl_roundtrip () =
  let path = Filename.temp_file "qsmt_snapjsonl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Telemetry.with_jsonl path (fun t ->
          Telemetry.with_span t "solve" (fun _ ->
              Telemetry.count t "sa.reads" 32;
              Telemetry.gauge t "sa.sweeps_per_s" 1234.5;
              List.iter (Telemetry.observe t "sa.read_energy") [ 0.5; 1.5 ]));
      match Telemetry.snapshot_of_jsonl_file path with
      | Error msg -> Alcotest.failf "replay failed: %s" msg
      | Ok snap ->
        check
          Alcotest.(list (pair string int))
          "counters survive the round-trip"
          [ ("sa.reads", 32) ]
          snap.Telemetry.snap_counters;
        (match snap.Telemetry.snap_gauges with
        | [ ("sa.sweeps_per_s", v) ] -> feq "gauge value" 1234.5 v
        | g -> Alcotest.failf "expected one gauge, got %d" (List.length g));
        (match snap.Telemetry.snap_hists with
        | [ ("sa.read_energy", h) ] ->
          check Alcotest.int "hist count" 2 h.Telemetry.h_count;
          feq "hist min" 0.5 h.Telemetry.h_min;
          feq "hist p50" 1.0 h.Telemetry.h_p50
        | _ -> Alcotest.fail "expected one histogram");
        (match snap.Telemetry.snap_spans with
        | [ ("solve", 1, d) ] -> check Alcotest.bool "span duration" true (d >= 0.)
        | _ -> Alcotest.fail "expected one span total");
        check Alcotest.(list (pair string int)) "nothing left open" []
          snap.Telemetry.snap_open_spans)

let test_pool_instrumentation () =
  let module Parallel = Qsmt_util.Parallel in
  let t = Telemetry.collector () in
  let hits = Atomic.make 0 in
  let jobs = List.init 16 (fun _ () -> Atomic.incr hits) in
  Parallel.Pool.run_list ~telemetry:t (Parallel.Pool.global ()) jobs;
  check Alcotest.int "all jobs ran" 16 (Atomic.get hits);
  check Alcotest.(option int) "jobs counted" (Some 16) (Telemetry.find_counter t "pool.jobs");
  let gauges = Telemetry.gauges t in
  (match List.assoc_opt "pool.utilization" gauges with
  | Some u -> check Alcotest.bool "utilization in (0,1]" true (u > 0. && u <= 1.)
  | None -> Alcotest.fail "pool.utilization gauge missing");
  (match List.assoc_opt "pool.participants" gauges with
  | Some p -> check Alcotest.bool "participants >= 1" true (p >= 1.)
  | None -> Alcotest.fail "pool.participants gauge missing");
  let worker_events =
    List.filter (fun e -> e.Telemetry.ev = "pool.worker") (Telemetry.events t)
  in
  check Alcotest.bool "per-worker events" true (worker_events <> []);
  let jobs_reported =
    List.fold_left
      (fun acc e ->
        match List.assoc_opt "jobs" e.Telemetry.fields with
        | Some (Telemetry.Int n) -> acc + n
        | _ -> acc)
      0 worker_events
  in
  check Alcotest.int "workers account for every job" 16 jobs_reported;
  match Telemetry.histograms t with
  | hists ->
    check Alcotest.bool "submit latency histogram" true
      (List.mem_assoc "pool.submit_latency_s" hists)

let test_validator_span_balance () =
  let run lines =
    let path = Filename.temp_file "qsmt_val" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        close_out oc;
        Telemetry.validate_jsonl_file path)
  in
  let beginl ?(parent = -1) id name ts =
    Printf.sprintf "{\"ts\":%g,\"ev\":\"span.begin\",\"span\":%d,\"parent\":%d,\"name\":\"%s\"}"
      ts id parent name
  in
  let endl id name ts =
    Printf.sprintf "{\"ts\":%g,\"ev\":\"span.end\",\"span\":%d,\"name\":\"%s\",\"dur_s\":0.1}" ts
      id name
  in
  (* well-nested pair passes *)
  (match run [ beginl 1 "a" 0.1; beginl ~parent:1 2 "b" 0.2; endl 2 "b" 0.3; endl 1 "a" 0.4 ] with
  | Ok 4 -> ()
  | Ok n -> Alcotest.failf "expected 4 events, got %d" n
  | Error msg -> Alcotest.failf "balanced trace rejected: %s" msg);
  (* end without begin names the line *)
  (match run [ endl 9 "ghost" 0.1 ] with
  | Error msg ->
    check Alcotest.bool "names line 1" true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 1:")
  | Ok _ -> Alcotest.fail "unmatched span.end accepted");
  (* parent must still be open *)
  (match run [ beginl 1 "a" 0.1; endl 1 "a" 0.2; beginl ~parent:1 2 "b" 0.3; endl 2 "b" 0.4 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "closed parent accepted");
  (* improper nesting: parent closed while the child is open *)
  (match run [ beginl 1 "a" 0.1; beginl ~parent:1 2 "b" 0.2; endl 1 "a" 0.3; endl 2 "b" 0.4 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "interleaved span closure accepted");
  (* dangling open span at EOF *)
  match run [ beginl 1 "a" 0.1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling open span accepted"

let test_chrome_export () =
  let src = Filename.temp_file "qsmt_chrome_src" ".jsonl" in
  let dst = Filename.temp_file "qsmt_chrome_dst" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove src;
      Sys.remove dst)
    (fun () ->
      Telemetry.with_jsonl src (fun t ->
          Telemetry.with_span t "solve" (fun solve ->
              Telemetry.with_span t ~parent:solve "sample" (fun sp ->
                  Telemetry.emit t ~span:sp "sa.sweep" [ ("sweep", Telemetry.Int 1) ]);
              Telemetry.count t "sa.reads" 8));
      match Telemetry.export_chrome_file ~src ~dst with
      | Error msg -> Alcotest.failf "export failed: %s" msg
      | Ok n ->
        check Alcotest.bool "events written" true (n > 0);
        let text = In_channel.with_open_text dst In_channel.input_all in
        (match Telemetry.parse_json text with
        | Error msg -> Alcotest.failf "chrome output is not JSON: %s" msg
        | Ok (Telemetry.J_obj kvs) ->
          (match List.assoc_opt "traceEvents" kvs with
          | Some (Telemetry.J_list evs) ->
            check Alcotest.bool "traceEvents non-empty" true (evs <> []);
            (* both spans become complete ("X") slices *)
            let phases =
              List.filter_map
                (fun e ->
                  match e with
                  | Telemetry.J_obj fields -> (
                    match List.assoc_opt "ph" fields with
                    | Some (Telemetry.J_str p) -> Some p
                    | _ -> None)
                  | _ -> None)
                evs
            in
            check Alcotest.int "two complete slices" 2
              (List.length (List.filter (( = ) "X") phases))
          | _ -> Alcotest.fail "no traceEvents array")
        | Ok _ -> Alcotest.fail "chrome output is not a JSON object"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "qsmt_metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "success basic" `Quick test_success_basic;
          Alcotest.test_case "success tolerance edges" `Quick test_success_tolerance_edges;
          Alcotest.test_case "repeats boundaries" `Quick test_repeats_boundaries;
          Alcotest.test_case "repeats hand-computed" `Quick test_repeats_hand_computed;
          Alcotest.test_case "repeats confidence domain" `Quick test_repeats_confidence_domain;
          Alcotest.test_case "tts hand-computed" `Quick test_tts_hand_computed;
          Alcotest.test_case "tts boundaries" `Quick test_tts_boundaries;
          Alcotest.test_case "pp_tts" `Quick test_pp_tts;
          Alcotest.test_case "residual energy" `Quick test_residual;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "null disabled" `Quick test_null_disabled;
          Alcotest.test_case "collector events+counters" `Quick test_collector_events_and_counters;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "with_span on raise" `Quick test_with_span_on_raise;
          Alcotest.test_case "timestamps monotone" `Quick test_timestamps_monotone;
          Alcotest.test_case "histograms (Welford)" `Quick test_histograms;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "validator rejects garbage" `Quick test_validate_rejects_garbage;
          Alcotest.test_case "instrumentation invisible to sampler" `Quick
            test_instrumentation_is_invisible;
        ] );
      ( "observability",
        [
          Alcotest.test_case "quantiles exact for small samples" `Quick test_quantiles_exact_small;
          Alcotest.test_case "quantiles sane for large samples" `Quick test_quantiles_sane_large;
          Alcotest.test_case "snapshot + exposition" `Quick test_snapshot_and_exposition;
          Alcotest.test_case "snapshot from jsonl replay" `Quick test_snapshot_of_jsonl_roundtrip;
          Alcotest.test_case "pool instrumentation" `Quick test_pool_instrumentation;
          Alcotest.test_case "validator span balance" `Quick test_validator_span_balance;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
        ] );
    ]
