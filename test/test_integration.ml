(* Cross-library integration tests: whole-pipeline flows that no single
   suite covers — exported SMT-LIB scripts replayed through the front
   end, random workloads pushed through all three solver families,
   preprocessing composed with sampling, and the hardware model run on
   actual string constraints with chain trimming. *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Qgraph = Qsmt_qubo.Qgraph
module Preprocess = Qsmt_qubo.Preprocess
module Exact = Qsmt_anneal.Exact
module Sa = Qsmt_anneal.Sa
module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler
module Topology = Qsmt_anneal.Topology
module Embedding = Qsmt_anneal.Embedding
module Chain = Qsmt_anneal.Chain
module Hardware = Qsmt_anneal.Hardware
module Metrics = Qsmt_anneal.Metrics
module Spinglass = Qsmt_anneal.Spinglass
module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Solver = Qsmt_strtheory.Solver
module Pipeline = Qsmt_strtheory.Pipeline
module Workload = Qsmt_strtheory.Workload
module Smtgen = Qsmt_strtheory.Smtgen
module Joint = Qsmt_strtheory.Joint
module Interp = Qsmt_smtlib.Interp
module Parser = Qsmt_smtlib.Parser
module Typecheck = Qsmt_smtlib.Typecheck
module Scompile = Qsmt_smtlib.Compile
module Strsolver = Qsmt_classical.Strsolver
module Brute = Qsmt_classical.Brute

let check = Alcotest.check
let sampler = Solver.default_sampler ~seed:0

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* smtgen -> parse -> compile: the exporter must reach the compiler's
   Generate/Locate path, not fall into Unsupported. *)

let compile_script source =
  let commands = ok_exn (Parser.parse_script source) in
  let env, assertions =
    List.fold_left
      (fun (env, asserts) cmd ->
        match cmd with
        | Qsmt_smtlib.Ast.Declare_const (n, s) -> (ok_exn (Typecheck.declare env n s), asserts)
        | Qsmt_smtlib.Ast.Assert t -> (env, t :: asserts)
        | _ -> (env, asserts))
      (Typecheck.empty_env, []) commands
  in
  Scompile.compile env (List.rev assertions)

let test_export_compile_roundtrip () =
  let cases =
    [
      Constr.Equals "hi";
      Constr.Contains { length = 4; substring = "cat" };
      Constr.Includes { haystack = "xxcat"; needle = "cat" };
      Constr.Index_of { length = 5; substring = "hi"; index = 1 };
      Constr.Palindrome { length = 4 };
      Constr.Regex { pattern = Qsmt_regex.Parser.parse_exn "a[bc]+"; length = 4 };
    ]
  in
  List.iter
    (fun c ->
      let script = ok_exn (Smtgen.script c) in
      let regex_equal p1 p2 =
        Qsmt_regex.Minimize.equivalent (Qsmt_regex.Dfa.of_syntax p1) (Qsmt_regex.Dfa.of_syntax p2)
      in
      match ok_exn (compile_script script) with
      | Scompile.Generate { constr; _ } -> begin
        (* structural round trip, except regexes compare as languages
           (the exporter renders single chars as str.to_re strings) *)
        match (c, constr) with
        | Constr.Regex { pattern = p1; length = l1 }, Constr.Regex { pattern = p2; length = l2 }
          ->
          if l1 <> l2 || not (regex_equal p1 p2) then
            Alcotest.failf "%s came back as a different regex" (Constr.describe c)
        | _ ->
          if constr <> c then
            Alcotest.failf "%s came back as %s" (Constr.describe c) (Constr.describe constr)
      end
      | Scompile.Locate { constr; _ } ->
        if constr <> c then
          Alcotest.failf "%s came back as %s" (Constr.describe c) (Constr.describe constr)
      | Scompile.Generate_joint _ -> Alcotest.failf "%s became a joint problem" (Constr.describe c)
      | Scompile.Trivial _ | Scompile.Solved _ ->
        Alcotest.failf "%s compiled away" (Constr.describe c))
    cases

let test_export_solves_for_folding_ops () =
  (* replace/reverse/concat fold to Equals during compilation — the round
     trip is semantic (same model), not structural *)
  List.iter
    (fun (c, expected) ->
      let script = ok_exn (Smtgen.script c) in
      match ok_exn (Interp.run_string ~sampler script) with
      | [ "sat"; value_line ] ->
        if not (String.length value_line > 0 && String.sub value_line 0 1 = "(") then
          Alcotest.fail "expected a get-value response";
        let expected_line = Printf.sprintf {|((x "%s"))|} expected in
        check Alcotest.string (Constr.describe c) expected_line value_line
      | lines -> Alcotest.failf "%s: unexpected output %s" (Constr.describe c) (String.concat "|" lines))
    [
      (Constr.Replace_all { source = "hello"; find = 'l'; replace = 'x' }, "hexxo");
      (Constr.Replace_first { source = "hello"; find = 'l'; replace = 'x' }, "hexlo");
      (Constr.Reverse "abc", "cba");
      (Constr.Concat [ "ab"; "cd" ], "abcd");
    ]

(* ------------------------------------------------------------------ *)
(* prefix / suffix conjunctions through the front end *)

let test_prefix_suffix_script () =
  let out =
    ok_exn
      (Interp.run_string ~sampler
         {|(declare-const x String)
           (assert (str.prefixof "ab" x))
           (assert (str.suffixof "yz" x))
           (assert (= (str.len x) 6))
           (check-sat)|})
  in
  check (Alcotest.list Alcotest.string) "sat" [ "sat" ] out

let test_prefix_too_long_unsat () =
  let out =
    ok_exn
      (Interp.run_string ~sampler
         {|(declare-const x String)
           (assert (str.prefixof "abcdef" x))
           (assert (= (str.len x) 3))
           (check-sat)|})
  in
  check (Alcotest.list Alcotest.string) "unsat" [ "unsat" ] out

let test_prefix_checked_against_equality () =
  let out =
    ok_exn
      (Interp.run_string ~sampler
         {|(declare-const x String)
           (assert (= x "hello"))
           (assert (str.prefixof "x" x))
           (check-sat)|})
  in
  check (Alcotest.list Alcotest.string) "unsat" [ "unsat" ] out

(* ------------------------------------------------------------------ *)
(* workload through all solver families *)

let test_workload_three_ways () =
  let suite = Workload.suite ~seed:23 ~max_length:4 ~count:10 () in
  List.iter
    (fun c ->
      (* annealer *)
      let a = Solver.solve ~sampler c in
      if a.Solver.satisfied && not (Constr.verify c a.Solver.value) then
        Alcotest.failf "annealer lied on %s" (Constr.describe c);
      (* CDCL *)
      let o = Strsolver.solve c in
      (match (o.Strsolver.result, o.Strsolver.value) with
      | `Sat, Some v ->
        if not (Constr.verify c v) then Alcotest.failf "CDCL lied on %s" (Constr.describe c)
      | `Sat, None -> Alcotest.fail "sat without value"
      | (`Unsat | `Unknown), _ -> ());
      (* workload constraints are satisfiable by construction, so CDCL
         (complete) must answer sat *)
      if o.Strsolver.result <> `Sat then
        Alcotest.failf "CDCL failed to prove satisfiable workload %s" (Constr.describe c))
    suite

let test_workload_export_roundtrip_satisfiable () =
  (* every exportable workload constraint's script must answer sat *)
  let suite = Workload.suite ~seed:31 ~max_length:4 ~count:10 () in
  List.iter
    (fun c ->
      match Smtgen.script c with
      | Error _ -> () (* Has_length is never generated; other errors none *)
      | Ok script -> begin
        match Interp.run_string ~sampler script with
        | Ok lines ->
          if not (List.mem "sat" lines || List.mem "unknown" lines) then
            Alcotest.failf "%s: exported script said %s" (Constr.describe c)
              (String.concat "|" lines)
        | Error e -> Alcotest.failf "%s: %s" (Constr.describe c) e
      end)
    suite

(* ------------------------------------------------------------------ *)
(* preprocessing composed with sampling *)

let test_preprocess_then_sample_on_workload () =
  let suite = Workload.suite ~seed:41 ~max_length:3 ~count:8 () in
  List.iter
    (fun c ->
      match c with
      | Constr.Includes _ -> () (* position space, skip *)
      | _ ->
        let q = Compile.to_qubo c in
        let t = Preprocess.reduce q in
        let solve_residual r =
          (Sampleset.best (Sa.sample ~params:{ Sa.default with Sa.reads = 16; sweeps = 400 } r))
            .Sampleset.bits
        in
        let x =
          if Preprocess.num_free t = 0 then Preprocess.expand t (Bitvec.create 0)
          else Preprocess.expand t (solve_residual (Preprocess.residual t))
        in
        (* preprocessing + sampling must do at least as well as direct
           sampling on the full problem *)
        let direct =
          Sampleset.lowest_energy (Sa.sample ~params:{ Sa.default with Sa.reads = 16; sweeps = 400 } q)
        in
        if Qubo.energy q x > direct +. 1e-6 then
          Alcotest.failf "preprocessing hurt %s: %g vs %g" (Constr.describe c) (Qubo.energy q x)
            direct)
    suite

(* ------------------------------------------------------------------ *)
(* hardware model on a string constraint, with chain trimming *)

let test_embedding_trim_shrinks () =
  (* hand-built slack: var1's chain {2,3} only needs qubit 2 on the path
     0-1-2-3 *)
  let problem = Qgraph.of_edges 2 [ (0, 1) ] in
  let hardware = Qgraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let padded = Embedding.of_chains [| [ 0; 1 ]; [ 2; 3 ] |] in
  check (Alcotest.result Alcotest.unit Alcotest.string) "padded valid" (Ok ())
    (Embedding.validate ~problem ~hardware padded);
  let trimmed = Embedding.trim ~problem ~hardware padded in
  check (Alcotest.result Alcotest.unit Alcotest.string) "still valid" (Ok ())
    (Embedding.validate ~problem ~hardware trimmed);
  check Alcotest.bool "strictly fewer qubits" true
    (Embedding.total_qubits_used trimmed < Embedding.total_qubits_used padded);
  (* and on a real greedy embedding it must never grow or invalidate *)
  let constr = Constr.Includes { haystack = "abcabcabc"; needle = "abc" } in
  let q = Compile.to_qubo constr in
  let problem = Qgraph.of_qubo q in
  let hardware = Topology.graph (Topology.chimera ~m:3 ()) in
  match Embedding.find ~seed:0 ~tries:64 ~problem ~hardware () with
  | None -> Alcotest.fail "no embedding"
  | Some e ->
    let trimmed = Embedding.trim ~problem ~hardware e in
    check (Alcotest.result Alcotest.unit Alcotest.string) "greedy trim valid" (Ok ())
      (Embedding.validate ~problem ~hardware trimmed);
    check Alcotest.bool "not more qubits" true
      (Embedding.total_qubits_used trimmed <= Embedding.total_qubits_used e)

let test_hardware_on_string_constraint () =
  let constr = Constr.Equals "hi" in
  let q = Compile.to_qubo constr in
  let params =
    { (Hardware.default_params (Topology.chimera ~m:2 ())) with
      Hardware.anneal = { Sa.default with Sa.reads = 16; sweeps = 400; seed = 9 }
    }
  in
  let r = Hardware.sample ~params q in
  let decoded = Compile.decode constr (Sampleset.best r.Hardware.samples).Sampleset.bits in
  check Alcotest.bool "decodes to hi" true (Constr.verify constr decoded)

let test_embed_anneal_unembed_preserves_table1 () =
  (* The manual physical pipeline — embed_qubo, anneal the physical
     problem, majority-vote back — must preserve satisfiability of the
     paper's Table 1 formulations on Chimera: the best unembedded read
     decodes to a value the classical checker accepts. *)
  let suite =
    [
      Constr.Equals "qubo";
      Constr.Concat [ "an"; "neal" ];
      Constr.Palindrome { length = 6 };
      Constr.Includes { haystack = "hello world"; needle = "world" };
      Constr.Contains { length = 5; substring = "cat" };
      Constr.Reverse "chain";
    ]
  in
  List.iter
    (fun constr ->
      let q = Compile.to_qubo constr in
      let topology = Hardware.auto_topology ~seed:3 ~kind:`Chimera q in
      let problem = Qgraph.of_qubo q in
      let hardware = Topology.graph topology in
      match Embedding.find ~seed:3 ~tries:64 ~problem ~hardware () with
      | None -> Alcotest.failf "no embedding for %s" (Constr.describe constr)
      | Some e ->
        let e = Embedding.trim ~problem ~hardware e in
        let physical =
          Chain.embed_qubo q ~embedding:e ~hardware
            ~chain_strength:(Chain.default_strength q)
        in
        let s =
          Sa.sample ~params:{ Sa.default with Sa.reads = 32; sweeps = 1000; seed = 3 } physical
        in
        let rng = Prng.create 3 in
        let best =
          List.fold_left
            (fun acc entry ->
              let bits = Chain.unembed ~rng ~embedding:e entry.Sampleset.bits in
              let energy = Qubo.energy q bits in
              match acc with
              | Some (_, e0) when e0 <= energy -> acc
              | _ -> Some (bits, energy))
            None (Sampleset.entries s)
        in
        let bits, _ = Option.get best in
        let decoded = Compile.decode constr bits in
        if not (Constr.verify constr decoded) then
          Alcotest.failf "satisfiability lost through embedding for %s (decoded %s)"
            (Constr.describe constr)
            (Format.asprintf "%a" Constr.pp_value decoded))
    suite

let test_solver_carries_hardware_stats () =
  (* solve_timed through the hardware sampler surfaces the diagnostics;
     a second same-shape solve reuses the cached embedding. *)
  Hardware.clear_embedding_cache ();
  let constr = Constr.Includes { haystack = "hello world"; needle = "world" } in
  let mk () =
    Sampler.hardware_auto (fun q ->
        { (Hardware.default_params (Hardware.auto_topology ~seed:0 ~kind:`Chimera q)) with
          Hardware.anneal = { Sa.default with Sa.reads = 16; sweeps = 400; seed = 0 } })
  in
  (* absint off: a literal Includes is decided statically, and a static
     verdict never touches the hardware path under test *)
  let first = Solver.solve ~sampler:(mk ()) ~absint:`Off constr in
  (match first.Solver.hardware with
  | None -> Alcotest.fail "hardware outcome missing"
  | Some s ->
    check Alcotest.bool "qubits used positive" true (s.Hardware.qubits_used > 0);
    check Alcotest.bool "not degraded" true (s.Hardware.degraded = None));
  let second = Solver.solve ~sampler:(mk ()) ~absint:`Off constr in
  (match second.Solver.hardware with
  | None -> Alcotest.fail "hardware outcome missing on rerun"
  | Some s -> check Alcotest.bool "same shape hits cache" true s.Hardware.embedding_cache_hit);
  (* all-to-all samplers keep the field empty *)
  check Alcotest.bool "sa has no hardware stats" true
    ((Solver.solve ~sampler ~absint:`Off constr).Solver.hardware = None);
  Hardware.clear_embedding_cache ()

(* ------------------------------------------------------------------ *)
(* pipeline across solver families *)

let test_pipeline_annealer_matches_classical () =
  let p =
    { Pipeline.initial = Constr.Concat [ "qu"; "antum" ];
      Pipeline.stages =
        [ Pipeline.Replace_all { find = 'u'; replace = 'o' }; Pipeline.Reverse ]
    }
  in
  let annealed =
    Solver.pipeline_output (Result.get_ok (Solver.solve_pipeline ~sampler p))
  in
  let classical =
    match List.rev (Strsolver.solve_pipeline p) with
    | last :: _ -> (match last.Strsolver.value with Some (Constr.Str s) -> Some s | _ -> None)
    | [] -> None
  in
  check (Alcotest.option Alcotest.string) "same final string" classical annealed;
  check (Alcotest.option Alcotest.string) "matches semantics" (Pipeline.expected_output p)
    annealed

(* ------------------------------------------------------------------ *)
(* spin glass: metrics pipeline sanity on a planted instance *)

let test_metrics_on_planted_instance () =
  let rng = Prng.create 2 in
  let graph = Topology.graph (Topology.king ~rows:3 ~cols:3) in
  let q, _, ground = Spinglass.planted ~rng graph in
  let samples = Sa.sample ~params:{ Sa.default with Sa.reads = 16; sweeps = 400; seed = 1 } q in
  let p = Metrics.success_probability samples ~ground_energy:ground () in
  check Alcotest.bool "some reads succeed" true (p > 0.);
  match Metrics.time_to_solution ~time_per_read:1e-3 ~p_success:p () with
  | Some tts -> check Alcotest.bool "finite positive TTS" true (tts > 0.)
  | None -> Alcotest.fail "expected finite TTS"

let () =
  Alcotest.run "qsmt_integration"
    [
      ( "export-roundtrip",
        [
          Alcotest.test_case "compile roundtrip" `Quick test_export_compile_roundtrip;
          Alcotest.test_case "folding ops solve" `Quick test_export_solves_for_folding_ops;
        ] );
      ( "prefix-suffix",
        [
          Alcotest.test_case "conjunction sat" `Quick test_prefix_suffix_script;
          Alcotest.test_case "too long unsat" `Quick test_prefix_too_long_unsat;
          Alcotest.test_case "checked vs equality" `Quick test_prefix_checked_against_equality;
        ] );
      ( "workload",
        [
          Alcotest.test_case "three solver families" `Slow test_workload_three_ways;
          Alcotest.test_case "export roundtrip" `Slow test_workload_export_roundtrip_satisfiable;
        ] );
      ( "preprocess",
        [
          Alcotest.test_case "compose with sampling" `Slow test_preprocess_then_sample_on_workload;
        ] );
      ( "hardware",
        [
          Alcotest.test_case "trim shrinks chains" `Quick test_embedding_trim_shrinks;
          Alcotest.test_case "string constraint end-to-end" `Quick
            test_hardware_on_string_constraint;
          Alcotest.test_case "embed+anneal+unembed preserves Table 1" `Quick
            test_embed_anneal_unembed_preserves_table1;
          Alcotest.test_case "solver carries hardware stats" `Quick
            test_solver_carries_hardware_stats;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "annealer = classical" `Quick test_pipeline_annealer_matches_classical;
        ] );
      ( "metrics",
        [ Alcotest.test_case "planted instance" `Quick test_metrics_on_planted_instance ] );
    ]
