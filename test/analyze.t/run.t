The `qsmt analyze` subcommand: the pre-encode abstract interpreter as a
standalone tool. Everything is deterministic — no sampling ever happens.

A fully determined operation names its candidate, classically verified:

  $ ../../bin/qsmt.exe analyze reverse hello
  ==> reverse "hello"
    verdict   : sat ("olleh")
    length    : 5 chars
    fixpoint  : 2 iterations, 5 facts
    positions : 5 of 5 fixed, 35 of 35 bits forced
      pos 0: [o]
      pos 1: [l]
      pos 2: [l]
      pos 3: [e]
      pos 4: [h]
    INFO    absint-sat             global: statically determined and verified: "olleh"

A shrinkable but undecidable constraint reports how many codec bits the
solver will clamp out of the anneal:

  $ ../../bin/qsmt.exe analyze regex 'a[bc]+' 5
  ==> generate a length-5 match of /a[bc]+/
    verdict   : undecided
    length    : 5 chars
    fixpoint  : 2 iterations, 5 facts
    positions : 1 of 5 fixed, 31 of 35 bits forced
      pos 0: [a]
      pos 1: [bc]
      pos 2: [bc]
      pos 3: [bc]
      pos 4: [bc]
    INFO    absint-shrink          global: 31 of 35 codec bits statically forced (1 positions fixed)

The widening cap terminates the fixpoint early and is reported, never
silently:

  $ ../../bin/qsmt.exe analyze regex 'a[bc]+' 5 --max-iters 1 | grep -E 'fixpoint|widened'
    fixpoint  : 1 iterations, 5 facts (widened)
    INFO    absint-widened         global: fixpoint stopped by the 1-iteration widening cap

SMT-LIB scripts analyze as whole conjunctions through the same assertion
compiler the solver uses — this contradiction needs both contains facts
at once:

  $ ../../bin/qsmt.exe analyze --smt2 ../../examples/smt2/absint/static-unsat-contains.smt2
  ==> x: generate a length-2 string containing "ab" /\ generate a length-2 string containing "ba"
    verdict   : unsat (no feasible placement left for substring "ba" in 2 characters)
    length    : 2 chars
    fixpoint  : 1 iterations, 2 facts
    positions : 2 of 2 fixed, 14 of 14 bits forced
      pos 0: [a]
      pos 1: [b]
    ERROR   absint-unsat           global: statically unsatisfiable: no feasible placement left for substring "ba" in 2 characters
  [1]

The planted corpus behaves as planted: three static contradictions
(each a failing exit under the default --fail-on error), two fully
determined sat systems, two shrinkable-undecidable ones:

  $ for f in ../../examples/smt2/absint/*.smt2; do
  >   printf '%s: ' "$(basename $f)"
  >   ../../bin/qsmt.exe analyze --smt2 "$f" --json | sed -E 's/.*"verdict":"([a-z]+)".*/\1/'
  > done
  shrink-regex.smt2: undecided
  shrink-window.smt2: undecided
  static-sat-affixes.smt2: sat
  static-sat-palindrome.smt2: sat
  static-unsat-contains.smt2: unsat
  static-unsat-palindrome.smt2: unsat
  static-unsat-regex.smt2: unsat

  $ for f in ../../examples/smt2/absint/static-unsat-*.smt2; do
  >   ../../bin/qsmt.exe analyze --smt2 "$f" --fail-on error > /dev/null || echo "$(basename $f): caught"
  > done
  static-unsat-contains.smt2: caught
  static-unsat-palindrome.smt2: caught
  static-unsat-regex.smt2: caught

The Table 1 regression corpus analyzes without a single false Error —
the gate CI runs:

  $ ../../bin/qsmt.exe analyze --table1 --fail-on error --json | sed -E 's/.*"verdict":"([a-z]+)".*"errors":([0-9]+).*/\1 errors=\2/'
  sat errors=0
  undecided errors=0
  undecided errors=0
  sat errors=0
  undecided errors=0
  sat errors=0

Static verdicts flow through the whole interpreter with zero sampler
reads — `run` answers unsat as a proof, not unknown:

  $ ../../bin/qsmt.exe run ../../examples/smt2/absint/static-unsat-palindrome.smt2
  unsat
  $ ../../bin/qsmt.exe run ../../examples/smt2/absint/static-sat-affixes.smt2
  sat
  (
    (define-fun x () String "abc")
  )

Usage errors exit 2:

  $ ../../bin/qsmt.exe analyze 2>&1
  qsmt: nothing to analyze: give an operation, --table1, --smt2 FILE, or --workload N
  [2]

  $ ../../bin/qsmt.exe analyze reverse hello --table1 2>&1
  qsmt: choose exactly one of: an operation, --table1, --smt2 FILE, --workload N
  [2]
