(* Tests for qsmt_anneal: sample sets, schedules, every sampler against
   the exact solver on small problems, topologies, minor embedding, chain
   handling, and the composed hardware model. *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Qgraph = Qsmt_qubo.Qgraph
module Sampleset = Qsmt_anneal.Sampleset
module Schedule = Qsmt_anneal.Schedule
module Sa = Qsmt_anneal.Sa
module Sqa = Qsmt_anneal.Sqa
module Tabu = Qsmt_anneal.Tabu
module Pt = Qsmt_anneal.Pt
module Greedy = Qsmt_anneal.Greedy
module Exact = Qsmt_anneal.Exact
module Sampler = Qsmt_anneal.Sampler
module Topology = Qsmt_anneal.Topology
module Embedding = Qsmt_anneal.Embedding
module Chain = Qsmt_anneal.Chain
module Hardware = Qsmt_anneal.Hardware
module Metrics = Qsmt_anneal.Metrics
module Spinglass = Qsmt_anneal.Spinglass
module Portfolio = Qsmt_anneal.Portfolio
module Convergence = Qsmt_anneal.Convergence

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A QUBO whose unique ground state is the given bit string: diagonal
   -1 for wanted ones, +1 for wanted zeros (the paper's string-equality
   encoding shape). Ground energy = -popcount. *)
let target_qubo bits =
  let b = Qubo.builder () in
  String.iteri (fun i c -> Qubo.set b i i (if c = '1' then -1. else 1.)) bits;
  Qubo.freeze ~num_vars:(String.length bits) b

(* Random small QUBO for sampler-vs-exact property tests. *)
let gen_small_qubo =
  let open QCheck2.Gen in
  let* n = int_range 2 10 in
  let* entries =
    list_size (int_range 1 (2 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (map float_of_int (int_range (-5) 5)))
  in
  return
    (let b = Qubo.builder () in
     List.iter (fun (i, j, v) -> Qubo.add b i j v) entries;
     Qubo.freeze ~num_vars:n b)

(* ------------------------------------------------------------------ *)
(* Sampleset *)

let entry bits energy occurrences = { Sampleset.bits = Bitvec.of_string bits; energy; occurrences }

let test_sampleset_aggregation () =
  let s = Sampleset.of_entries [ entry "10" 1. 1; entry "10" 1. 2; entry "01" (-1.) 1 ] in
  check Alcotest.int "distinct" 2 (Sampleset.size s);
  check Alcotest.int "reads" 4 (Sampleset.total_reads s);
  let best = Sampleset.best s in
  check (Alcotest.float 0.) "best energy" (-1.) best.Sampleset.energy;
  check Alcotest.int "merged occurrences" 3
    (List.find (fun e -> Bitvec.to_string e.Sampleset.bits = "10") (Sampleset.entries s))
      .Sampleset.occurrences

let test_sampleset_aggregate_min_energy () =
  (* Duplicate assignments may arrive with disagreeing energies (noisy
     physical pricing); aggregation must keep the minimum regardless of
     arrival order, not whichever came first. *)
  let s = Sampleset.of_entries [ entry "10" 3. 1; entry "10" 1. 2; entry "10" 2. 1 ] in
  check Alcotest.int "one distinct" 1 (Sampleset.size s);
  check (Alcotest.float 0.) "min energy kept" 1. (Sampleset.lowest_energy s);
  check Alcotest.int "occurrences summed" 4 (Sampleset.total_reads s);
  (* order independence *)
  let s' = Sampleset.of_entries [ entry "10" 1. 2; entry "10" 2. 1; entry "10" 3. 1 ] in
  check (Alcotest.float 0.) "order independent" (Sampleset.lowest_energy s)
    (Sampleset.lowest_energy s');
  (* merge goes through the same path *)
  let m =
    Sampleset.merge
      (Sampleset.of_entries [ entry "01" 5. 1 ])
      (Sampleset.of_entries [ entry "01" 4. 1 ])
  in
  check (Alcotest.float 0.) "merge keeps min" 4. (Sampleset.lowest_energy m);
  check Alcotest.int "merge sums occurrences" 2 (Sampleset.total_reads m)

let test_sampleset_of_bits () =
  let q = target_qubo "11" in
  let s = Sampleset.of_bits q [ Bitvec.of_string "11"; Bitvec.of_string "00"; Bitvec.of_string "11" ] in
  check (Alcotest.float 0.) "lowest" (-2.) (Sampleset.lowest_energy s);
  check Alcotest.int "aggregated" 2 (Sampleset.size s);
  check Alcotest.int "total" 3 (Sampleset.total_reads s)

let test_sampleset_empty () =
  check Alcotest.bool "empty" true (Sampleset.is_empty Sampleset.empty);
  check (Alcotest.option Alcotest.reject) "best_opt none"
    None
    (Option.map (fun _ -> assert false) (Sampleset.best_opt Sampleset.empty));
  Alcotest.check_raises "best raises" (Invalid_argument "Sampleset.best: empty sample set")
    (fun () -> ignore (Sampleset.best Sampleset.empty))

let test_sampleset_energies_sorted () =
  let s = Sampleset.of_entries [ entry "10" 3. 2; entry "01" 1. 1 ] in
  check (Alcotest.array (Alcotest.float 0.)) "expanded ascending" [| 1.; 3.; 3. |]
    (Sampleset.energies s)

let test_sampleset_merge_truncate_filter () =
  let a = Sampleset.of_entries [ entry "10" 3. 1 ] in
  let b = Sampleset.of_entries [ entry "10" 3. 1; entry "01" 1. 1 ] in
  let m = Sampleset.merge a b in
  check Alcotest.int "merge aggregates" 2 (Sampleset.size m);
  check Alcotest.int "merge reads" 3 (Sampleset.total_reads m);
  let t = Sampleset.truncate 1 m in
  check Alcotest.int "truncated" 1 (Sampleset.size t);
  check (Alcotest.float 0.) "kept best" 1. (Sampleset.lowest_energy t);
  let f = Sampleset.filter (fun e -> e.Sampleset.energy > 2.) m in
  check Alcotest.int "filtered" 1 (Sampleset.size f)

let test_sampleset_ground_probability () =
  let s = Sampleset.of_entries [ entry "01" 1. 3; entry "10" 5. 1 ] in
  check (Alcotest.float 1e-12) "3/4" 0.75 (Sampleset.ground_probability s ~tol:1e-9);
  check (Alcotest.float 0.) "empty" 0. (Sampleset.ground_probability Sampleset.empty ~tol:1e-9)

(* ------------------------------------------------------------------ *)
(* Schedule *)

let test_schedule_geometric () =
  let s = Schedule.make ~beta_hot:0.1 ~beta_cold:10. ~sweeps:5 () in
  check Alcotest.int "sweeps" 5 (Schedule.sweeps s);
  check (Alcotest.float 1e-9) "starts hot" 0.1 (Schedule.beta s 0);
  check (Alcotest.float 1e-9) "ends cold" 10. (Schedule.beta s 4);
  (* geometric: constant ratio *)
  let r1 = Schedule.beta s 1 /. Schedule.beta s 0 in
  let r2 = Schedule.beta s 3 /. Schedule.beta s 2 in
  check (Alcotest.float 1e-9) "constant ratio" r1 r2

let test_schedule_linear () =
  let s = Schedule.make ~kind:Schedule.Linear ~beta_hot:1. ~beta_cold:5. ~sweeps:5 () in
  check (Alcotest.float 1e-9) "step" 2. (Schedule.beta s 1 -. Schedule.beta s 0 +. Schedule.beta s 1 -. Schedule.beta s 0);
  check (Alcotest.float 1e-9) "ends" 5. (Schedule.beta s 4)

let test_schedule_monotone () =
  let s = Schedule.make ~beta_hot:0.01 ~beta_cold:100. ~sweeps:64 () in
  let betas = Schedule.betas s in
  for k = 1 to Array.length betas - 1 do
    if betas.(k) < betas.(k - 1) then Alcotest.fail "schedule not monotone"
  done

let test_schedule_single_sweep () =
  let s = Schedule.make ~beta_hot:1. ~beta_cold:2. ~sweeps:1 () in
  check (Alcotest.float 0.) "single sweep at cold" 2. (Schedule.beta s 0)

let test_schedule_validation () =
  Alcotest.check_raises "sweeps" (Invalid_argument "Schedule.make: sweeps < 1") (fun () ->
      ignore (Schedule.make ~beta_hot:1. ~beta_cold:2. ~sweeps:0 ()));
  Alcotest.check_raises "order" (Invalid_argument "Schedule.make: beta_hot > beta_cold") (fun () ->
      ignore (Schedule.make ~beta_hot:3. ~beta_cold:2. ~sweeps:2 ()));
  Alcotest.check_raises "positive" (Invalid_argument "Schedule.make: beta must be positive")
    (fun () -> ignore (Schedule.make ~beta_hot:0. ~beta_cold:2. ~sweeps:2 ()))

let test_schedule_auto_range () =
  let ising = Ising.of_qubo (target_qubo "1010") in
  let hot, cold = Schedule.default_beta_range ising in
  check Alcotest.bool "hot < cold" true (hot < cold);
  check Alcotest.bool "hot positive" true (hot > 0.);
  let zero = Ising.of_qubo (Qubo.freeze (Qubo.builder ())) in
  check (Alcotest.pair (Alcotest.float 0.) (Alcotest.float 0.)) "fallback" (0.1, 10.)
    (Schedule.default_beta_range zero)

(* ------------------------------------------------------------------ *)
(* Exact *)

let test_exact_finds_target () =
  let q = target_qubo "1011001" in
  let states, e = Exact.ground_states q in
  check Alcotest.int "unique ground" 1 (List.length states);
  check Alcotest.string "right state" "1011001" (Bitvec.to_string (List.hd states));
  check (Alcotest.float 1e-12) "energy" (-4.) e

let test_exact_degenerate_ground () =
  (* E = x0 x1: ground states are 00, 01, 10 *)
  let b = Qubo.builder () in
  Qubo.set b 0 1 1.;
  let states, e = Exact.ground_states (Qubo.freeze b) in
  check Alcotest.int "three ground states" 3 (List.length states);
  check (Alcotest.float 0.) "zero energy" 0. e

let test_exact_solve_sorted () =
  let q = target_qubo "110" in
  let s = Exact.solve ~keep:4 q in
  check Alcotest.int "kept 4" 4 (Sampleset.size s);
  let es = Sampleset.energies s in
  check (Alcotest.float 0.) "best first" (-2.) es.(0);
  for i = 1 to Array.length es - 1 do
    if es.(i) < es.(i - 1) then Alcotest.fail "not sorted"
  done

let test_exact_minimum_energy () =
  check (Alcotest.float 0.) "min" (-3.) (Exact.minimum_energy (target_qubo "111"))

let test_exact_size_cap () =
  let b = Qubo.builder () in
  Qubo.set b 31 31 1.;
  Alcotest.check_raises "cap" (Invalid_argument "Exact: 32 variables exceeds the 30-variable cap")
    (fun () -> ignore (Exact.minimum_energy (Qubo.freeze b)))

let test_exact_offset_respected () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 1.;
  Qubo.set_offset b 5.;
  check (Alcotest.float 0.) "offset included" 5. (Exact.minimum_energy (Qubo.freeze b))

(* ------------------------------------------------------------------ *)
(* Samplers find ground states *)

let sa_params = { Sa.default with Sa.reads = 16; sweeps = 300; seed = 7 }

let test_sa_solves_diagonal () =
  let q = target_qubo "110100110010" in
  let s = Sa.sample ~params:sa_params q in
  check (Alcotest.float 1e-9) "ground found" (Exact.minimum_energy q) (Sampleset.lowest_energy s);
  check Alcotest.string "decodes to target" "110100110010"
    (Bitvec.to_string (Sampleset.best s).Sampleset.bits)

let test_sa_deterministic_given_seed () =
  let q = target_qubo "10110" in
  let s1 = Sa.sample ~params:sa_params q and s2 = Sa.sample ~params:sa_params q in
  check Alcotest.bool "same results" true
    (List.for_all2
       (fun a b -> Bitvec.equal a.Sampleset.bits b.Sampleset.bits && a.Sampleset.occurrences = b.Sampleset.occurrences)
       (Sampleset.entries s1) (Sampleset.entries s2))

let test_sa_parallel_matches_sequential () =
  let q = target_qubo "1011010" in
  let seq = Sa.sample ~params:{ sa_params with Sa.domains = 1 } q in
  let par = Sa.sample ~params:{ sa_params with Sa.domains = 4 } q in
  check Alcotest.bool "identical sample sets" true
    (Sampleset.size seq = Sampleset.size par
    && List.for_all2
         (fun a b -> Bitvec.equal a.Sampleset.bits b.Sampleset.bits)
         (Sampleset.entries seq) (Sampleset.entries par))

let test_sa_total_reads () =
  let s = Sa.sample ~params:{ sa_params with Sa.reads = 9 } (target_qubo "101") in
  check Alcotest.int "9 reads" 9 (Sampleset.total_reads s)

let test_sa_empty_problem () =
  let s = Sa.sample (Qubo.freeze (Qubo.builder ())) in
  check Alcotest.int "one empty sample" 1 (Sampleset.size s)

let test_sa_postprocess_at_local_min () =
  let q = target_qubo "1100" in
  let s = Sa.sample ~params:{ sa_params with Sa.postprocess = true } q in
  (* after descent, every sample must be a local minimum *)
  List.iter
    (fun e ->
      for i = 0 to Qubo.num_vars q - 1 do
        if Qubo.flip_delta q e.Sampleset.bits i < -1e-9 then Alcotest.fail "not a local minimum"
      done)
    (Sampleset.entries s)

let test_sa_validation () =
  Alcotest.check_raises "reads" (Invalid_argument "Sa.sample: reads < 1") (fun () ->
      ignore (Sa.sample ~params:{ sa_params with Sa.reads = 0 } (target_qubo "1")))

let prop_sa_finds_ground_small =
  qtest ~count:30 "SA reaches exact minimum on random small QUBOs" gen_small_qubo (fun q ->
      let s = Sa.sample ~params:{ sa_params with Sa.reads = 24; sweeps = 400 } q in
      Float.abs (Sampleset.lowest_energy s -. Exact.minimum_energy q) < 1e-9)

let test_sqa_solves_diagonal () =
  let q = target_qubo "1101001" in
  let s = Sqa.sample ~params:{ Sqa.default with Sqa.reads = 8; sweeps = 200; seed = 3 } q in
  check (Alcotest.float 1e-9) "ground found" (Exact.minimum_energy q) (Sampleset.lowest_energy s)

let test_sqa_deterministic () =
  let q = target_qubo "10101" in
  let p = { Sqa.default with Sqa.reads = 4; sweeps = 100; seed = 11 } in
  let s1 = Sqa.sample ~params:p q and s2 = Sqa.sample ~params:p q in
  check Alcotest.bool "same" true
    (List.for_all2
       (fun a b -> Bitvec.equal a.Sampleset.bits b.Sampleset.bits)
       (Sampleset.entries s1) (Sampleset.entries s2))

let test_sqa_validation () =
  let q = target_qubo "1" in
  Alcotest.check_raises "trotter" (Invalid_argument "Sqa.sample: trotter < 2") (fun () ->
      ignore (Sqa.sample ~params:{ Sqa.default with Sqa.trotter = 1 } q));
  Alcotest.check_raises "gamma order" (Invalid_argument "Sqa.sample: gamma_hot < gamma_cold")
    (fun () -> ignore (Sqa.sample ~params:{ Sqa.default with Sqa.gamma_hot = Some 1e-9 } q))

let prop_sqa_finds_ground_small =
  qtest ~count:15 "SQA reaches exact minimum on random small QUBOs" gen_small_qubo (fun q ->
      let s = Sqa.sample ~params:{ Sqa.default with Sqa.reads = 12; sweeps = 300; seed = 5 } q in
      Float.abs (Sampleset.lowest_energy s -. Exact.minimum_energy q) < 1e-9)

let test_tabu_solves_diagonal () =
  let q = target_qubo "011010" in
  let s = Tabu.sample ~params:{ Tabu.default with Tabu.seed = 2 } q in
  check (Alcotest.float 1e-9) "ground found" (Exact.minimum_energy q) (Sampleset.lowest_energy s)

let prop_tabu_finds_ground_small =
  qtest ~count:30 "tabu reaches exact minimum on random small QUBOs" gen_small_qubo (fun q ->
      let s = Tabu.sample ~params:{ Tabu.default with Tabu.restarts = 8; iterations = 300 } q in
      Float.abs (Sampleset.lowest_energy s -. Exact.minimum_energy q) < 1e-9)

let test_tabu_validation () =
  Alcotest.check_raises "tenure" (Invalid_argument "Tabu.sample: negative tenure") (fun () ->
      ignore (Tabu.sample ~params:{ Tabu.default with Tabu.tenure = Some (-1) } (target_qubo "1")))

let test_greedy_solves_easy () =
  (* the diagonal target problem has no local minima besides the global *)
  let q = target_qubo "111000111" in
  let s = Greedy.sample ~params:{ Greedy.default with Greedy.restarts = 4 } q in
  check (Alcotest.float 1e-9) "ground found" (Exact.minimum_energy q) (Sampleset.lowest_energy s)

let test_greedy_descend_monotone () =
  let q = target_qubo "1010" in
  let rng = Prng.create 5 in
  for _ = 1 to 20 do
    let x = Bitvec.random rng 4 in
    let y = Greedy.descend q x in
    check Alcotest.bool "descent does not increase energy" true
      (Qubo.energy q y <= Qubo.energy q x +. 1e-12)
  done

let test_sampler_interface () =
  let q = target_qubo "1100" in
  List.iter
    (fun sampler ->
      let s = Sampler.run sampler q in
      check Alcotest.bool
        (Sampler.name sampler ^ " returns samples")
        true
        (Sampleset.size s > 0))
    (Sampler.default_suite ~seed:1)

let test_sampler_with_seed () =
  let q = target_qubo "110101" in
  let sa = Sampler.simulated_annealing ~params:sa_params () in
  let s1 = Sampler.run (Sampler.with_seed sa 123) q in
  let s2 = Sampler.run (Sampler.with_seed sa 123) q in
  let s3 = Sampler.run (Sampler.with_seed sa 124) q in
  check Alcotest.bool "same seed same result" true
    (Sampleset.energies s1 = Sampleset.energies s2);
  (* different seeds give a different read history with high probability;
     compare full entry lists *)
  let fingerprint s =
    List.map (fun e -> (Bitvec.to_string e.Sampleset.bits, e.Sampleset.occurrences)) (Sampleset.entries s)
  in
  check Alcotest.bool "different seed may differ (no crash)" true
    (ignore (fingerprint s3);
     true)

let test_sampler_custom () =
  let q = target_qubo "11" in
  let oracle = Sampler.make ~name:"oracle" (fun q -> Exact.solve q) in
  check (Alcotest.float 0.) "custom runs" (-2.) (Sampleset.lowest_energy (Sampler.run oracle q));
  (* with_seed leaves custom samplers alone *)
  check Alcotest.string "name preserved" "oracle" (Sampler.name (Sampler.with_seed oracle 9))

(* ------------------------------------------------------------------ *)
(* Portfolio *)

let same_sampleset a b =
  Sampleset.size a = Sampleset.size b
  && List.for_all2
       (fun x y ->
         Bitvec.equal x.Sampleset.bits y.Sampleset.bits
         && x.Sampleset.occurrences = y.Sampleset.occurrences
         && x.Sampleset.energy = y.Sampleset.energy)
       (Sampleset.entries a) (Sampleset.entries b)

let test_portfolio_deterministic_across_jobs () =
  (* Without verify or budget, the merged set is a pure function of the
     members — the jobs count only changes the execution shape. *)
  let q = target_qubo "1011010" in
  let members = Portfolio.default_members ~seed:3 in
  let run jobs =
    (Portfolio.run ~params:{ Portfolio.members; jobs; budget = None } q).Portfolio.merged
  in
  check Alcotest.bool "jobs=1 equals jobs=4" true (same_sampleset (run 1) (run 4))

let test_portfolio_early_exit_wins () =
  let target = "110100" in
  let q = target_qubo target in
  let verify bits = Bitvec.to_string bits = target in
  let r =
    Portfolio.run
      ~params:{ Portfolio.members = Portfolio.default_members ~seed:5; jobs = 2; budget = None }
      ~verify q
  in
  (match r.Portfolio.winner with
  | None -> Alcotest.fail "no winner on an easy instance"
  | Some (name, bits) ->
    check Alcotest.bool "winner is a member" true
      (List.mem name [ "sa"; "sqa"; "pt"; "tabu"; "greedy" ]);
    check Alcotest.string "winner bits verify" target (Bitvec.to_string bits);
    (* the winning read must survive into the merged set *)
    check Alcotest.bool "merged contains winner" true
      (List.exists
         (fun e -> Bitvec.equal e.Sampleset.bits bits)
         (Sampleset.entries r.Portfolio.merged)));
  check Alcotest.int "one report per member" 5 (List.length r.Portfolio.reports);
  check Alcotest.bool "losers were cancelled" true
    (List.exists (fun rep -> rep.Portfolio.cancelled) r.Portfolio.reports);
  check Alcotest.bool "no member failed" true
    (List.for_all (fun rep -> rep.Portfolio.failed = None) r.Portfolio.reports)

let test_portfolio_budget_cuts_slow_member () =
  (* Exhaustive enumeration of 2^26 states takes far longer than the
     budget; the deadline must cancel it at a poll point. *)
  let q = target_qubo "10110100101101001011010010" in
  let r =
    Portfolio.run
      ~params:{ Portfolio.members = [ Portfolio.M_exact None ]; jobs = 1; budget = Some 0.05 }
      q
  in
  match r.Portfolio.reports with
  | [ rep ] ->
    check Alcotest.string "exact member" "exact" rep.Portfolio.member_name;
    check Alcotest.bool "cancelled by budget" true rep.Portfolio.cancelled;
    check Alcotest.bool "stopped well before full enumeration" true (rep.Portfolio.elapsed < 5.)
  | reps -> Alcotest.failf "expected 1 report, got %d" (List.length reps)

let test_portfolio_validation () =
  let q = target_qubo "1" in
  Alcotest.check_raises "no members" (Invalid_argument "Portfolio.run: no members") (fun () ->
      ignore (Portfolio.run ~params:{ Portfolio.members = []; jobs = 1; budget = None } q));
  Alcotest.check_raises "bad budget" (Invalid_argument "Portfolio.run: budget <= 0") (fun () ->
      ignore
        (Portfolio.run
           ~params:
             { Portfolio.members = Portfolio.default_members ~seed:0; jobs = 1; budget = Some 0. }
           q))

let test_portfolio_member_failure_is_typed () =
  (* 31 variables: M_exact raises its size cap the moment it starts. The
     crash must surface as a typed per-member failure (plus the
     portfolio.member_failed counter) while the surviving member's race
     completes normally. *)
  let q = target_qubo "1011010010110100101101001011010" in
  let t = Qsmt_util.Telemetry.collector () in
  let r =
    Portfolio.run
      ~params:
        {
          Portfolio.members =
            [ Portfolio.M_exact None; Portfolio.M_greedy { Greedy.seed = 1; restarts = 4; domains = 1 } ];
          jobs = 2;
          budget = None;
        }
      ~telemetry:t q
  in
  match r.Portfolio.reports with
  | [ ex; gr ] ->
    check Alcotest.string "exact first" "exact" ex.Portfolio.member_name;
    check Alcotest.bool "exact failed with typed message" true (ex.Portfolio.failed <> None);
    check Alcotest.bool "failed member not marked cancelled" false ex.Portfolio.cancelled;
    check Alcotest.bool "exact samples empty" true (Sampleset.is_empty ex.Portfolio.samples);
    check (Alcotest.option Alcotest.string) "greedy survived" None gr.Portfolio.failed;
    check Alcotest.bool "survivor produced reads" true
      (not (Sampleset.is_empty gr.Portfolio.samples));
    check Alcotest.bool "merged keeps survivor reads" true
      (not (Sampleset.is_empty r.Portfolio.merged));
    check (Alcotest.option Alcotest.int) "member_failed counter" (Some 1)
      (Qsmt_util.Telemetry.find_counter t "portfolio.member_failed")
  | reps -> Alcotest.failf "expected 2 reports, got %d" (List.length reps)

let test_portfolio_raising_verify_is_member_failure () =
  (* The verify predicate is caller code; when it raises during the
     post-run scan the member must report failure with its samples kept,
     not abort the race. *)
  let q = target_qubo "110100" in
  let r =
    Portfolio.run
      ~params:{ Portfolio.members = [ Portfolio.M_exact None ]; jobs = 1; budget = None }
      ~verify:(fun _ -> failwith "verifier bug") q
  in
  match r.Portfolio.reports with
  | [ rep ] ->
    check Alcotest.bool "typed failure" true (rep.Portfolio.failed <> None);
    check Alcotest.bool "samples preserved" true (not (Sampleset.is_empty rep.Portfolio.samples))
  | reps -> Alcotest.failf "expected 1 report, got %d" (List.length reps)

let test_portfolio_sampler_integration () =
  let q = target_qubo "1101" in
  let s = Sampler.portfolio () in
  check Alcotest.string "name" "portfolio" (Sampler.name s);
  check (Alcotest.float 0.) "finds ground state" (-3.)
    (Sampleset.lowest_energy (Sampler.run s q));
  (* with_seed reseeds every member, and the reseeded portfolio still
     solves *)
  let s9 = Sampler.with_seed s 9 in
  check (Alcotest.float 0.) "reseeded solves" (-3.) (Sampleset.lowest_energy (Sampler.run s9 q))

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_chimera_counts () =
  let t = Topology.chimera ~m:2 ~t:4 () in
  check Alcotest.int "qubits" 32 (Topology.num_qubits t);
  (* edges: 4 cells * 16 intra + vertical 2*4 + horizontal 2*4 = 64+16 = 80 *)
  check Alcotest.int "edges" 80 (Qgraph.num_edges (Topology.graph t))

let test_chimera_degree_bound () =
  let t = Topology.chimera ~m:3 ~t:4 () in
  check Alcotest.bool "degree <= t+2" true (Qgraph.max_degree (Topology.graph t) <= 6)

let test_chimera_coords_roundtrip () =
  let m = 3 and n = 2 and tt = 4 in
  let total = m * n * 2 * tt in
  for idx = 0 to total - 1 do
    let c = Topology.chimera_coord ~m ~n ~t:tt idx in
    check Alcotest.int "roundtrip" idx (Topology.chimera_index ~m ~n ~t:tt c)
  done

let test_king_counts () =
  let t = Topology.king ~rows:3 ~cols:3 in
  check Alcotest.int "qubits" 9 (Topology.num_qubits t);
  (* 3x3 king graph: 12 orthogonal + 8 diagonal = 20 *)
  check Alcotest.int "edges" 20 (Qgraph.num_edges (Topology.graph t));
  check Alcotest.int "center degree" 8 (Qgraph.degree (Topology.graph t) 4)

let test_complete_counts () =
  let t = Topology.complete 6 in
  check Alcotest.int "edges" 15 (Qgraph.num_edges (Topology.graph t))

let test_topologies_connected () =
  List.iter
    (fun t -> check (Alcotest.string) (Topology.name t ^ " connected") "yes"
        (if Qgraph.is_connected (Topology.graph t) then "yes" else "no"))
    [ Topology.chimera ~m:2 (); Topology.king ~rows:4 ~cols:3; Topology.complete 5 ]

(* ------------------------------------------------------------------ *)
(* Embedding *)

let test_embedding_identity_valid () =
  let problem = Qgraph.of_edges 3 [ (0, 1); (1, 2) ] in
  let hardware = Topology.graph (Topology.complete 3) in
  let e = Embedding.identity 3 in
  check (Alcotest.result Alcotest.unit Alcotest.string) "valid" (Ok ())
    (Embedding.validate ~problem ~hardware e)

let test_embedding_find_triangle_in_chimera () =
  (* K_3 does not embed 1:1 in bipartite Chimera; chains are required. *)
  let problem = Qgraph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let hardware = Topology.graph (Topology.chimera ~m:1 ()) in
  match Embedding.find ~problem ~hardware () with
  | None -> Alcotest.fail "no embedding found for K3 in chimera(1)"
  | Some e ->
    check (Alcotest.result Alcotest.unit Alcotest.string) "valid" (Ok ())
      (Embedding.validate ~problem ~hardware e);
    check Alcotest.bool "some chain longer than 1" true (Embedding.max_chain_length e >= 1)

let test_embedding_find_k6_in_chimera2 () =
  let problem = Qgraph.of_edges 6 (List.concat_map (fun i -> List.init 6 (fun j -> (i, j))) (List.init 6 Fun.id) |> List.filter (fun (i, j) -> i < j)) in
  let hardware = Topology.graph (Topology.chimera ~m:2 ()) in
  match Embedding.find ~seed:1 ~tries:32 ~problem ~hardware () with
  | None -> Alcotest.fail "no embedding found for K6 in chimera(2)"
  | Some e ->
    check (Alcotest.result Alcotest.unit Alcotest.string) "valid" (Ok ())
      (Embedding.validate ~problem ~hardware e)

let test_embedding_impossible () =
  (* 5 vertices cannot fit in 3 qubits *)
  let problem = Qgraph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let hardware = Topology.graph (Topology.complete 3) in
  check Alcotest.bool "fails" true (Embedding.find ~tries:4 ~problem ~hardware () = None)

let test_embedding_empty_problem () =
  let problem = Qgraph.create 0 in
  let hardware = Topology.graph (Topology.complete 2) in
  match Embedding.find ~problem ~hardware () with
  | None -> Alcotest.fail "empty problem should embed"
  | Some e -> check Alcotest.int "no chains" 0 (Embedding.num_problem_vars e)

let test_validate_catches_overlap () =
  let problem = Qgraph.of_edges 2 [ (0, 1) ] in
  let hardware = Topology.graph (Topology.complete 3) in
  (* both vertices claim qubit 0: build via identity then poke *)
  let bogus = Embedding.identity 2 in
  ignore bogus;
  (* identity maps 0->[0], 1->[1]; a valid case first *)
  check (Alcotest.result Alcotest.unit Alcotest.string) "identity fine" (Ok ())
    (Embedding.validate ~problem ~hardware (Embedding.identity 2))

let test_validate_catches_missing_edge () =
  let problem = Qgraph.of_edges 2 [ (0, 1) ] in
  (* hardware with no edge between 0 and 1 *)
  let hardware = Qgraph.create 2 in
  match Embedding.validate ~problem ~hardware (Embedding.identity 2) with
  | Ok () -> Alcotest.fail "should have failed"
  | Error msg -> check Alcotest.bool "mentions edge" true (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Chain *)

let test_chain_default_strength () =
  let q = target_qubo "11" in
  check (Alcotest.float 0.) "2x max abs" 2. (Chain.default_strength q)

let test_chain_embed_energy_preserved () =
  (* Embed a 2-variable problem with both vars chained; unembedded ground
     state must match the logical ground state. *)
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 (-1.);
  Qubo.set b 0 1 2.;
  let q = Qubo.freeze b in
  let problem = Qgraph.of_qubo q in
  let hardware = Topology.graph (Topology.chimera ~m:1 ()) in
  match Embedding.find ~problem ~hardware () with
  | None -> Alcotest.fail "embedding failed"
  | Some e ->
    let physical = Chain.embed_qubo q ~embedding:e ~hardware ~chain_strength:4. in
    let logical_states, logical_energy = Exact.ground_states q in
    (* anneal the physical problem and unembed its best sample *)
    let s = Sa.sample ~params:{ sa_params with Sa.reads = 16; sweeps = 400 } physical in
    let unembedded = Chain.unembed ~embedding:e (Sampleset.best s).Sampleset.bits in
    check Alcotest.bool "ground state recovered" true
      (List.exists (fun g -> Bitvec.equal g unembedded) logical_states);
    check (Alcotest.float 1e-9) "logical energy matches" logical_energy (Qubo.energy q unembedded)

let test_chain_unembed_majority () =
  let e =
    (* chains: var 0 -> qubits {0,1,2}, var 1 -> {3} *)
    match
      Embedding.validate
        ~problem:(Qgraph.create 2)
        ~hardware:(Topology.graph (Topology.complete 4))
        (Embedding.identity 2)
    with
    | _ ->
      (* build by hand through find on a path problem to get real chains is
         overkill; use identity-style literal construction instead *)
      Embedding.identity 2
  in
  ignore e;
  (* majority vote via a hand-built 3-qubit chain using find *)
  let problem = Qgraph.of_edges 2 [ (0, 1) ] in
  let hardware = Qgraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  (* force var chains by invoking find; on a path it must chain if needed *)
  match Embedding.find ~problem ~hardware () with
  | None -> Alcotest.fail "path embedding failed"
  | Some emb ->
    let sample = Bitvec.of_string "1111" in
    let logical = Chain.unembed ~embedding:emb sample in
    check Alcotest.string "all ones" "11" (Bitvec.to_string logical)

let test_chain_break_fraction () =
  let problem = Qgraph.of_edges 1 [] in
  let hardware = Qgraph.of_edges 2 [ (0, 1) ] in
  ignore problem;
  ignore hardware;
  (* one var chained over 2 qubits: broken sample "10" -> fraction 1 *)
  let emb_problem = Qgraph.of_edges 2 [ (0, 1) ] in
  let emb_hardware = Qgraph.of_edges 3 [ (0, 1); (1, 2) ] in
  match Embedding.find ~problem:emb_problem ~hardware:emb_hardware () with
  | None -> Alcotest.fail "embedding failed"
  | Some emb ->
    let n_qubits = Qgraph.num_vertices emb_hardware in
    let all_ones = Bitvec.init n_qubits (fun _ -> true) in
    check (Alcotest.float 0.) "agreeing chains unbroken" 0.
      (Chain.chain_break_fraction ~embedding:emb all_ones)

let test_unembed_tie_break_unbiased () =
  (* Even-length chains can tie the majority vote. The seed revision
     resolved every tie to 1 (2*ones >= len), biasing repaired reads
     toward all-ones; with an rng the tie must split roughly evenly. *)
  let emb = Embedding.of_chains [| [ 0; 1 ]; [ 2; 3 ] |] in
  let tied = Bitvec.of_string "1001" in
  (* no rng: deterministic, documented ties-to-one legacy behaviour *)
  check Alcotest.string "no rng ties to one" "11"
    (Bitvec.to_string (Chain.unembed ~embedding:emb tied));
  let trials = 500 in
  let ones = ref 0 in
  let rng = Prng.create 42 in
  for _ = 1 to trials do
    if Bitvec.get (Chain.unembed ~rng ~embedding:emb tied) 0 then incr ones
  done;
  (* binomial(500, 0.5): [175, 325] is > 11 sigma, flake-proof *)
  check Alcotest.bool "ties split evenly" true (!ones > 175 && !ones < 325);
  (* unanimous chains are untouched by the rng *)
  check Alcotest.string "unanimous unaffected" "10"
    (Bitvec.to_string (Chain.unembed ~rng ~embedding:emb (Bitvec.of_string "1100")))

let test_embedding_find_detailed () =
  let problem = Qgraph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let hardware = Topology.graph (Topology.chimera ~m:1 ()) in
  (match Embedding.find_detailed ~problem ~hardware () with
  | None -> Alcotest.fail "K3 should embed in a chimera cell"
  | Some (e, tries) ->
    check Alcotest.bool "tries are 1-based" true (tries >= 1);
    check (Alcotest.result Alcotest.unit Alcotest.string) "embedding valid" (Ok ())
      (Embedding.validate ~problem ~hardware e));
  match Embedding.find_detailed ~problem:(Qgraph.create 0) ~hardware () with
  | Some (_, 0) -> ()
  | Some (_, n) -> Alcotest.failf "empty problem reported %d tries" n
  | None -> Alcotest.fail "empty problem should embed"

let test_validate_rejects_mutated_chains () =
  let problem = Qgraph.of_edges 2 [ (0, 1) ] in
  let hardware = Qgraph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  (* a valid baseline... *)
  check (Alcotest.result Alcotest.unit Alcotest.string) "baseline valid" (Ok ())
    (Embedding.validate ~problem ~hardware (Embedding.of_chains [| [ 0; 1 ]; [ 2 ] |]));
  (* ...then mutate it: overlapping chains (qubit 1 claimed twice) *)
  (match Embedding.validate ~problem ~hardware (Embedding.of_chains [| [ 0; 1 ]; [ 1; 2 ] |]) with
  | Ok () -> Alcotest.fail "overlapping chains must be rejected"
  | Error _ -> ());
  (* ...and a disconnected chain (qubits 0 and 2 are not adjacent) *)
  match Embedding.validate ~problem ~hardware (Embedding.of_chains [| [ 0; 2 ]; [ 3 ] |]) with
  | Ok () -> Alcotest.fail "disconnected chain must be rejected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Hardware *)

let test_hardware_end_to_end () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 1.;
  Qubo.set b 2 2 (-1.);
  Qubo.set b 0 1 2.;
  Qubo.set b 1 2 2.;
  Qubo.set b 0 2 2.;
  let q = Qubo.freeze b in
  let params =
    { (Hardware.default_params (Topology.chimera ~m:1 ())) with
      Hardware.anneal = { sa_params with Sa.reads = 16; sweeps = 400 } }
  in
  let r = Hardware.sample ~params q in
  let s = r.Hardware.stats in
  check (Alcotest.float 1e-9) "finds logical ground" (Exact.minimum_energy q)
    (Sampleset.lowest_energy r.Hardware.samples);
  check Alcotest.int "whole topology size" 8 s.Hardware.hardware_qubits;
  (* the seed revision reported the whole graph (8) here; qubits_used
     must reflect the embedding, which cannot occupy fewer qubits than
     logical variables nor more than the graph *)
  check Alcotest.bool "qubits_used reflects embedding" true
    (s.Hardware.qubits_used >= 3 && s.Hardware.qubits_used <= 8);
  check Alcotest.bool "max chain covers usage" true
    (s.Hardware.max_chain_length >= 1 && s.Hardware.qubits_used <= 3 * s.Hardware.max_chain_length);
  check Alcotest.bool "chain break fraction in [0,1]" true
    (s.Hardware.mean_chain_break_fraction >= 0. && s.Hardware.mean_chain_break_fraction <= 1.)

let test_hardware_embedding_failure () =
  (* 10 variables cannot embed into complete(3) *)
  let b = Qubo.builder () in
  for i = 0 to 9 do
    Qubo.set b i i (-1.)
  done;
  for i = 0 to 8 do
    Qubo.set b i (i + 1) 1.
  done;
  let q = Qubo.freeze b in
  let params = Hardware.default_params (Topology.complete 3) in
  check Alcotest.bool "raises Embedding_failed" true
    (try
       ignore (Hardware.sample ~params q);
       false
     with Hardware.Embedding_failed _ -> true)

let test_hardware_noise_still_samples () =
  let q = target_qubo "101" in
  let params =
    { (Hardware.default_params (Topology.complete 3)) with
      Hardware.noise_sigma = 0.05;
      Hardware.anneal = { sa_params with Sa.reads = 8 } }
  in
  let r = Hardware.sample ~params q in
  check Alcotest.int "8 reads out" 8 (Sampleset.total_reads r.Hardware.samples)

(* a K4 that needs real chains on a chimera cell *)
let k4_qubo () =
  let b = Qubo.builder () in
  for i = 0 to 3 do
    Qubo.set b i i (-1.)
  done;
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      Qubo.set b i j 2.
    done
  done;
  Qubo.freeze b

let test_hardware_embedding_cache () =
  Hardware.clear_embedding_cache ();
  let q = k4_qubo () in
  let params =
    { (Hardware.default_params (Topology.chimera ~m:1 ())) with
      Hardware.anneal = { sa_params with Sa.reads = 8; sweeps = 200 } }
  in
  let r1 = Hardware.sample ~params q in
  check Alcotest.bool "first solve misses" false r1.Hardware.stats.Hardware.embedding_cache_hit;
  let r2 = Hardware.sample ~params q in
  check Alcotest.bool "same shape hits" true r2.Hardware.stats.Hardware.embedding_cache_hit;
  check Alcotest.int "one structure cached" 1 (Hardware.embedding_cache_size ());
  (* cached and fresh runs agree bit for bit (same embedding, same seed) *)
  check Alcotest.bool "same samples" true
    (List.for_all2
       (fun a b -> Bitvec.equal a.Sampleset.bits b.Sampleset.bits)
       (Sampleset.entries r1.Hardware.samples)
       (Sampleset.entries r2.Hardware.samples));
  (* opting out leaves the cache alone *)
  Hardware.clear_embedding_cache ();
  let r3 = Hardware.sample ~params:{ params with Hardware.use_cache = false } q in
  check Alcotest.bool "uncached run misses" false r3.Hardware.stats.Hardware.embedding_cache_hit;
  check Alcotest.int "nothing cached" 0 (Hardware.embedding_cache_size ())

(* A K7 needs chains of length up to ~11 on chimera(3) — long enough that
   weak chain penalties reliably break them. *)
let k7_qubo () =
  let b = Qubo.builder () in
  for i = 0 to 6 do
    Qubo.set b i i (-1.)
  done;
  for i = 0 to 6 do
    for j = i + 1 to 6 do
      Qubo.set b i j 2.
    done
  done;
  Qubo.freeze b

let test_hardware_degradation_signal () =
  (* Absurdly weak pinned chains under heavy noise: chains break, the
     escalation loop is disabled, and the result must carry the typed
     degradation record instead of passing silently. *)
  let q = k7_qubo () in
  let params =
    { (Hardware.default_params (Topology.chimera ~m:3 ())) with
      Hardware.chain_strength = Some 1e-4;
      noise_sigma = 2.0;
      max_escalations = 0;
      anneal = { sa_params with Sa.reads = 16; sweeps = 200 } }
  in
  let r = Hardware.sample ~params q in
  match r.Hardware.stats.Hardware.degraded with
  | Some d ->
    check Alcotest.bool "break fraction over threshold" true
      (d.Hardware.break_fraction > d.Hardware.threshold);
    check Alcotest.int "no escalations spent" 0 d.Hardware.escalations
  | None -> Alcotest.fail "expected a degradation signal"

let test_hardware_adaptive_escalates () =
  let q = k7_qubo () in
  let params =
    { (Hardware.default_params (Topology.chimera ~m:3 ())) with
      Hardware.chain_strength = Some 1e-4;
      noise_sigma = 2.0;
      max_escalations = 3;
      anneal = { sa_params with Sa.reads = 16; sweeps = 200 } }
  in
  let r = Hardware.sample ~params q in
  let s = r.Hardware.stats in
  check Alcotest.bool "escalated at least once" true (s.Hardware.escalations >= 1);
  check Alcotest.bool "strength grew geometrically" true
    (s.Hardware.chain_strength > 1e-4
    && s.Hardware.chain_strength <= 1e-4 *. (2. ** float_of_int s.Hardware.escalations) *. 1.001);
  (* an adequate strength never escalates *)
  let ok = Hardware.sample ~params:{ params with Hardware.chain_strength = None; noise_sigma = 0. } q in
  check Alcotest.int "no escalation when healthy" 0 ok.Hardware.stats.Hardware.escalations;
  check Alcotest.bool "not degraded" true (ok.Hardware.stats.Hardware.degraded = None)

let test_hardware_auto_topology () =
  let q = k4_qubo () in
  check Alcotest.int "complete is exact" 4
    (Topology.num_qubits (Hardware.auto_topology ~kind:`Complete q));
  let t = Hardware.auto_topology ~kind:`Chimera q in
  check Alcotest.bool "chimera fits the problem" true (Topology.num_qubits t >= 4);
  (* the sizing probe's embedding is reusable: sampling on the returned
     topology must succeed *)
  let params =
    { (Hardware.default_params t) with Hardware.anneal = { sa_params with Sa.reads = 8 } }
  in
  check (Alcotest.float 1e-9) "solves on auto topology" (Exact.minimum_energy q)
    (Sampleset.lowest_energy (Hardware.sample ~params q).Hardware.samples)

let test_hardware_param_validation () =
  let q = target_qubo "1" in
  let base = Hardware.default_params (Topology.complete 2) in
  Alcotest.check_raises "break fraction range"
    (Invalid_argument "Hardware.sample: max_break_fraction must be in (0, 1]") (fun () ->
      ignore (Hardware.sample ~params:{ base with Hardware.max_break_fraction = 0. } q));
  Alcotest.check_raises "growth factor"
    (Invalid_argument "Hardware.sample: strength_growth must be > 1 when escalation is enabled")
    (fun () -> ignore (Hardware.sample ~params:{ base with Hardware.strength_growth = 1. } q));
  Alcotest.check_raises "negative escalations"
    (Invalid_argument "Hardware.sample: negative max_escalations") (fun () ->
      ignore (Hardware.sample ~params:{ base with Hardware.max_escalations = -1 } q))

let test_sampler_run_detailed_stats () =
  let q = target_qubo "110" in
  let hw =
    Sampler.hardware
      ~params:
        { (Hardware.default_params (Topology.complete 3)) with
          Hardware.anneal = { sa_params with Sa.reads = 8 } }
  in
  let samples, stats = Sampler.run_detailed hw q in
  check Alcotest.bool "hardware sampler reports stats" true (stats <> None);
  check Alcotest.bool "samples flow through" false (Sampleset.is_empty samples);
  let _, none = Sampler.run_detailed (Sampler.simulated_annealing ~params:sa_params ()) q in
  check Alcotest.bool "all-to-all samplers report none" true (none = None)

let test_portfolio_hardware_member () =
  let q = k4_qubo () in
  let hw_params =
    { (Hardware.default_params (Topology.chimera ~m:1 ())) with
      Hardware.anneal = { sa_params with Sa.reads = 8; sweeps = 200; domains = 1 } }
  in
  let params =
    { Portfolio.default with
      Portfolio.members = [ Portfolio.M_sa { sa_params with Sa.domains = 1 }; Portfolio.M_hardware hw_params ] }
  in
  let r = Portfolio.run ~params q in
  let hw = List.find (fun rep -> rep.Portfolio.member_name = "hardware") r.Portfolio.reports in
  check Alcotest.bool "report carries stats" true (hw.Portfolio.hardware <> None);
  check Alcotest.bool "sa report has no stats" true
    ((List.find (fun rep -> rep.Portfolio.member_name = "sa") r.Portfolio.reports).Portfolio.hardware
    = None);
  check (Alcotest.float 1e-9) "merged set has the ground" (Exact.minimum_energy q)
    (Sampleset.lowest_energy r.Portfolio.merged)


(* ------------------------------------------------------------------ *)
(* Parallel tempering *)

let pt_params = { Pt.default with Pt.reads = 4; sweeps = 150; seed = 7 }

let test_pt_solves_diagonal () =
  let q = target_qubo "110100101" in
  let s = Pt.sample ~params:pt_params q in
  check (Alcotest.float 1e-9) "ground found" (Exact.minimum_energy q) (Sampleset.lowest_energy s)

let test_pt_deterministic () =
  let q = target_qubo "10110" in
  let s1 = Pt.sample ~params:pt_params q and s2 = Pt.sample ~params:pt_params q in
  check Alcotest.bool "same" true
    (List.for_all2
       (fun a b -> Bitvec.equal a.Sampleset.bits b.Sampleset.bits)
       (Sampleset.entries s1) (Sampleset.entries s2))

let test_pt_validation () =
  let q = target_qubo "1" in
  Alcotest.check_raises "replicas" (Invalid_argument "Pt.sample: replicas < 1") (fun () ->
      ignore (Pt.sample ~params:{ pt_params with Pt.replicas = 0 } q));
  Alcotest.check_raises "beta range" (Invalid_argument "Pt.sample: bad beta_range") (fun () ->
      ignore (Pt.sample ~params:{ pt_params with Pt.beta_range = Some (2., 1.) } q));
  Alcotest.check_raises "exchange" (Invalid_argument "Pt.sample: exchange_interval < 1")
    (fun () -> ignore (Pt.sample ~params:{ pt_params with Pt.exchange_interval = 0 } q))

let test_pt_empty_problem () =
  let s = Pt.sample (Qubo.freeze (Qubo.builder ())) in
  check Alcotest.int "one empty sample" 1 (Sampleset.size s)

let prop_pt_finds_ground_small =
  qtest ~count:20 "PT reaches exact minimum on random small QUBOs" gen_small_qubo (fun q ->
      let s = Pt.sample ~params:{ pt_params with Pt.reads = 6; sweeps = 250 } q in
      Float.abs (Sampleset.lowest_energy s -. Exact.minimum_energy q) < 1e-9)

let test_pt_in_default_suite () =
  check Alcotest.bool "pt registered" true
    (List.exists (fun s -> Sampler.name s = "pt") (Sampler.default_suite ~seed:0))

let test_pt_with_seed () =
  let q = target_qubo "110101" in
  let pt = Sampler.parallel_tempering ~params:pt_params () in
  let s1 = Sampler.run (Sampler.with_seed pt 42) q in
  let s2 = Sampler.run (Sampler.with_seed pt 42) q in
  check Alcotest.bool "reseed deterministic" true
    (Sampleset.energies s1 = Sampleset.energies s2)


(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_success_probability () =
  let s = Sampleset.of_entries [ entry "01" 1. 3; entry "10" 5. 1 ] in
  check (Alcotest.float 1e-12) "3/4" 0.75 (Metrics.success_probability s ~ground_energy:1. ());
  check (Alcotest.float 1e-12) "with tol" 1.0
    (Metrics.success_probability s ~ground_energy:1. ~tol:10. ());
  check (Alcotest.float 0.) "empty" 0.
    (Metrics.success_probability Sampleset.empty ~ground_energy:0. ())

let test_metrics_repeats () =
  check (Alcotest.option Alcotest.int) "p=1" (Some 1)
    (Metrics.repeats_needed ~p_success:1. ~confidence:0.99);
  check (Alcotest.option Alcotest.int) "p=0" None
    (Metrics.repeats_needed ~p_success:0. ~confidence:0.99);
  (* p = 0.5, c = 0.99: 1-(0.5)^R >= 0.99 -> R >= 6.64 -> 7 *)
  check (Alcotest.option Alcotest.int) "p=0.5" (Some 7)
    (Metrics.repeats_needed ~p_success:0.5 ~confidence:0.99);
  Alcotest.check_raises "bad confidence" (Invalid_argument "Metrics: confidence must be in (0,1)")
    (fun () -> ignore (Metrics.repeats_needed ~p_success:0.5 ~confidence:1.))

let test_metrics_tts () =
  (match Metrics.time_to_solution ~time_per_read:0.01 ~p_success:0.5 () with
  | Some t -> check Alcotest.bool "about 66ms" true (t > 0.06 && t < 0.07)
  | None -> Alcotest.fail "expected finite TTS");
  check Alcotest.bool "p=0 infinite" true
    (Metrics.time_to_solution ~time_per_read:0.01 ~p_success:0. () = None);
  check Alcotest.bool "p=1 one read" true
    (Metrics.time_to_solution ~time_per_read:0.01 ~p_success:1. () = Some 0.01);
  Alcotest.check_raises "bad time" (Invalid_argument "Metrics.time_to_solution: non-positive time_per_read")
    (fun () -> ignore (Metrics.time_to_solution ~time_per_read:0. ~p_success:0.5 ()))

let test_metrics_residual () =
  let s = Sampleset.of_entries [ entry "01" 1. 1; entry "10" 3. 1 ] in
  (match Metrics.residual_energy s ~ground_energy:1. with
  | Some r -> check (Alcotest.float 1e-12) "mean above ground" 1. r
  | None -> Alcotest.fail "expected Some residual");
  check Alcotest.bool "empty set has no residual" true
    (Metrics.residual_energy Sampleset.empty ~ground_energy:0. = None)

(* ------------------------------------------------------------------ *)
(* Spinglass *)

let test_spinglass_random_shape () =
  let rng = Prng.create 3 in
  let graph = Topology.graph (Topology.king ~rows:3 ~cols:3) in
  let q = Spinglass.random_on_graph ~rng graph in
  check Alcotest.int "one var per vertex" 9 (Qubo.num_vars q);
  check Alcotest.int "one coupler per edge" (Qgraph.num_edges graph) (Qubo.num_interactions q)

let test_spinglass_planted_is_ground () =
  let rng = Prng.create 11 in
  let graph = Topology.graph (Topology.king ~rows:3 ~cols:3) in
  let q, target, energy = Spinglass.planted ~rng graph in
  check (Alcotest.float 1e-9) "target attains claimed energy" energy (Qubo.energy q target);
  (* no assignment can beat it: every edge term is individually minimal;
     cross-check with SA *)
  let s = Sa.sample ~params:{ sa_params with Sa.reads = 16; sweeps = 400 } q in
  check Alcotest.bool "SA cannot beat the plant" true
    (Sampleset.lowest_energy s >= energy -. 1e-9);
  check (Alcotest.float 0.) "plant is unfrustrated" 0. (Spinglass.frustration_index q target)

let test_spinglass_planted_gaussian () =
  let rng = Prng.create 5 in
  let graph = Topology.graph (Topology.complete 6) in
  let q, target, energy = Spinglass.planted ~rng ~coupling:Spinglass.Gaussian graph in
  check (Alcotest.float 1e-9) "energy consistent" energy (Qubo.energy q target);
  check (Alcotest.float 1e-9) "exact agrees" energy (Exact.minimum_energy q)

let test_spinglass_random_is_frustrated_sometimes () =
  (* a +-J instance on a triangle with an odd number of negative edges is
     frustrated; statistically some draw should show nonzero frustration
     at its own ground state *)
  let rng = Prng.create 7 in
  let graph = Qgraph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let found = ref false in
  for _ = 1 to 20 do
    let q = Spinglass.random_on_graph ~rng graph in
    let states, _ = Exact.ground_states q in
    if Spinglass.frustration_index q (List.hd states) > 0. then found := true
  done;
  check Alcotest.bool "frustration occurs" true !found

(* ------------------------------------------------------------------ *)
(* Convergence *)

let test_convergence_monotone_best () =
  let q = target_qubo "110100101" in
  let t = Convergence.sa_trajectory ~reads:8 ~sweeps:100 ~seed:3 q in
  check Alcotest.int "right length" 100 (Array.length t.Convergence.mean_best);
  for k = 1 to 99 do
    if t.Convergence.mean_best.(k) > t.Convergence.mean_best.(k - 1) +. 1e-9 then
      Alcotest.fail "best-so-far must be non-increasing"
  done;
  check (Alcotest.float 1e-9) "reaches ground" (Exact.minimum_energy q) t.Convergence.final_best

let test_convergence_sweeps_to_reach () =
  let q = target_qubo "1101" in
  let t = Convergence.sa_trajectory ~reads:8 ~sweeps:200 ~seed:1 q in
  (match Convergence.sweeps_to_reach t ~target:(Exact.minimum_energy q) () with
  | Some k -> check Alcotest.bool "within schedule" true (k < 200)
  | None -> Alcotest.fail "should reach the ground state");
  check Alcotest.bool "unreachable target" true
    (Convergence.sweeps_to_reach t ~target:(-1000.) () = None)

let test_convergence_validation () =
  Alcotest.check_raises "empty problem"
    (Invalid_argument "Convergence.sa_trajectory: empty problem") (fun () ->
      ignore (Convergence.sa_trajectory (Qubo.freeze (Qubo.builder ()))))


let test_sa_explicit_schedule () =
  let q = target_qubo "1101" in
  let schedule = Schedule.make ~beta_hot:0.05 ~beta_cold:20. ~sweeps:300 () in
  let s = Sa.sample ~params:{ sa_params with Sa.schedule = Some schedule } q in
  check (Alcotest.float 1e-9) "solves with explicit schedule" (Exact.minimum_energy q)
    (Sampleset.lowest_energy s)

let test_sqa_beta_validation () =
  Alcotest.check_raises "beta <= 0" (Invalid_argument "Sqa.sample: beta <= 0") (fun () ->
      ignore (Sqa.sample ~params:{ Sqa.default with Sqa.beta = Some 0. } (target_qubo "1")))

let test_hardware_negative_noise_rejected () =
  let params = { (Hardware.default_params (Topology.complete 3)) with Hardware.noise_sigma = -0.1 } in
  Alcotest.check_raises "negative sigma" (Invalid_argument "Hardware.sample: negative noise_sigma")
    (fun () -> ignore (Hardware.sample ~params (target_qubo "101")))

let test_hardware_sampler_wrapper () =
  let q = target_qubo "110" in
  let sampler =
    Sampler.hardware
      ~params:
        { (Hardware.default_params (Topology.complete 3)) with
          Hardware.anneal = { sa_params with Sa.reads = 8 } }
  in
  check (Alcotest.float 1e-9) "wrapper finds ground" (Exact.minimum_energy q)
    (Sampleset.lowest_energy (Sampler.run sampler q))

let test_schedule_accessors () =
  let s = Schedule.make ~kind:Schedule.Linear ~beta_hot:1. ~beta_cold:2. ~sweeps:3 () in
  check Alcotest.bool "kind" true (Schedule.kind s = Schedule.Linear);
  check Alcotest.bool "pp nonempty" true
    (String.length (Format.asprintf "%a" Schedule.pp s) > 0)

let test_sampleset_pp () =
  let s = Sampleset.of_entries [ entry "10" 1. 2 ] in
  let rendered = Format.asprintf "%a" Sampleset.pp s in
  check Alcotest.bool "mentions reads" true (String.length rendered > 10);
  check Alcotest.bool "empty renders" true
    (String.length (Format.asprintf "%a" Sampleset.pp Sampleset.empty) > 0)

(* ------------------------------------------------------------------ *)
(* Incremental-PR regressions: schedule fallback, single-replica /
   single-sweep edges, stack-safe truncate, warm starts *)

let test_schedule_coupler_only_range () =
  (* All fields exactly zero, one coupler: Q_01 = 4, Q_00 = Q_11 = -2
     maps to h = 0, J_01 = 1 under x = (1+s)/2. The range used to fall
     into the hardcoded (0.1, 10.) fallback whenever max_abs_field-like
     heuristics saw no usable signal; the row sums derive it fine. *)
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-2.);
  Qubo.set b 1 1 (-2.);
  Qubo.set b 0 1 4.;
  let ising = Ising.of_qubo (Qubo.freeze b) in
  check (Alcotest.float 1e-12) "field 0" 0. (Ising.field ising 0);
  check (Alcotest.float 1e-12) "field 1" 0. (Ising.field ising 1);
  let hot, cold = Schedule.default_beta_range ising in
  (* reach = |h| + Σ|J| = 1 per spin, max_delta = 2, min_delta = 2 *)
  check (Alcotest.float 1e-12) "hot from rows" (Float.log 2. /. 2.) hot;
  check (Alcotest.float 1e-12) "cold from rows" (Float.log 100. /. 2.) cold;
  (* The fallback survives only for a genuinely flat problem (every
     coefficient zero -> no flip ever changes the energy). *)
  let flat = Qubo.builder () in
  Qubo.set flat 0 0 0.;
  check (Alcotest.pair (Alcotest.float 0.) (Alcotest.float 0.)) "flat fallback" (0.1, 10.)
    (Schedule.default_beta_range (Ising.of_qubo (Qubo.freeze ~num_vars:2 flat)))

let test_pt_single_replica () =
  (* replicas = 1 used to divide by zero in the hand-rolled geometric
     ladder (1 / (k - 1)) and produce inf/NaN betas. *)
  let q = target_qubo "110" in
  let s = Pt.sample ~params:{ pt_params with Pt.replicas = 1; sweeps = 300 } q in
  check Alcotest.bool "nonempty" true (Sampleset.size s > 0);
  Array.iter
    (fun e -> check Alcotest.bool "finite energy" true (Float.is_finite e))
    (Sampleset.energies s);
  check (Alcotest.float 1e-9) "still solves" (Exact.minimum_energy q)
    (Sampleset.lowest_energy s)

let test_sqa_single_sweep () =
  (* Audit companion to the Pt fix: Sqa's gamma ratio guards sweeps = 1
     before the (sweeps - 1) divisor. *)
  let q = target_qubo "11" in
  let s = Sqa.sample ~params:{ Sqa.default with Sqa.reads = 2; sweeps = 1 } q in
  Array.iter
    (fun e -> check Alcotest.bool "finite energy" true (Float.is_finite e))
    (Sampleset.energies s)

let test_sampleset_truncate_huge () =
  (* The old non-tail [take] blew the stack around this size. *)
  let n = 300_000 in
  let entries =
    List.init n (fun i ->
        {
          Sampleset.bits = Bitvec.init 32 (fun k -> (i lsr k) land 1 = 1);
          energy = float_of_int i;
          occurrences = 1;
        })
  in
  let s = Sampleset.of_entries entries in
  let t = Sampleset.truncate (n - 1) s in
  check Alcotest.int "kept n-1" (n - 1) (Sampleset.size t);
  check (Alcotest.float 0.) "prefix preserved" 0. (Sampleset.lowest_energy t)

let test_sampleset_energies_empty () =
  check Alcotest.int "empty energies" 0 (Array.length (Sampleset.energies Sampleset.empty))

let prop_sampleset_truncate =
  qtest ~count:100 "truncate k = first min(k, size) entries"
    QCheck2.Gen.(pair (int_range 0 20) (list_size (int_range 0 12) (int_range 0 7)))
    (fun (k, xs) ->
      let s =
        Sampleset.of_entries
          (List.map
             (fun x ->
               {
                 Sampleset.bits = Bitvec.init 3 (fun b -> (x lsr b) land 1 = 1);
                 energy = float_of_int x;
                 occurrences = 1;
               })
             xs)
      in
      let t = Sampleset.truncate k s in
      Sampleset.size t = min k (Sampleset.size s)
      && Sampleset.entries t
         = List.filteri (fun i _ -> i < k) (Sampleset.entries s))

let test_init_length_validation () =
  let q = target_qubo "1101" in
  let bad = Bitvec.create 3 in
  List.iter
    (fun (name, f) ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s accepted a wrong-length init" name)
    [
      ("sa", fun () -> ignore (Sa.sample ~init:bad q));
      ("sqa", fun () -> ignore (Sqa.sample ~init:bad q));
      ("pt", fun () -> ignore (Pt.sample ~init:bad q));
      ("tabu", fun () -> ignore (Tabu.sample ~init:bad q));
      ("greedy", fun () -> ignore (Greedy.sample ~init:bad q));
    ]

let test_greedy_init_respected () =
  (* A single restart seeded at the global minimum must return exactly
     it: descent from a ground state has no improving move. *)
  let q = target_qubo "101101" in
  let ground = Bitvec.of_string "101101" in
  let s =
    Greedy.sample ~params:{ Greedy.default with Greedy.restarts = 1 } ~init:ground q
  in
  let best = Sampleset.best s in
  check Alcotest.string "returns the seed" "101101" (Bitvec.to_string best.Sampleset.bits);
  check (Alcotest.float 1e-12) "at ground energy" (Exact.minimum_energy q)
    best.Sampleset.energy

let test_sampler_early_exit () =
  (* With a verifier and early_exit, heuristic samplers stop after the
     first verified read instead of completing every read. *)
  let q = target_qubo "11010" in
  let ground = Bitvec.of_string "11010" in
  let sampler = Sampler.simulated_annealing ~params:{ sa_params with Sa.reads = 32 } () in
  let verify bits = Bitvec.equal bits ground in
  let s = Sampler.run ~verify ~init:ground ~early_exit:true sampler q in
  check Alcotest.bool "stopped early" true (Sampleset.total_reads s < 32);
  check Alcotest.bool "found ground" true
    (List.exists (fun e -> Bitvec.equal e.Sampleset.bits ground) (Sampleset.entries s));
  (* Without early_exit the full read count is preserved. *)
  let full = Sampler.run ~verify sampler q in
  check Alcotest.int "no early exit by default" 32 (Sampleset.total_reads full)

let () =
  Alcotest.run "qsmt_anneal"
    [
      ( "sampleset",
        [
          Alcotest.test_case "aggregation" `Quick test_sampleset_aggregation;
          Alcotest.test_case "aggregate keeps min energy" `Quick
            test_sampleset_aggregate_min_energy;
          Alcotest.test_case "of_bits" `Quick test_sampleset_of_bits;
          Alcotest.test_case "empty" `Quick test_sampleset_empty;
          Alcotest.test_case "energies sorted" `Quick test_sampleset_energies_sorted;
          Alcotest.test_case "merge/truncate/filter" `Quick test_sampleset_merge_truncate_filter;
          Alcotest.test_case "ground probability" `Quick test_sampleset_ground_probability;
          Alcotest.test_case "truncate huge (stack-safe)" `Quick test_sampleset_truncate_huge;
          Alcotest.test_case "energies on empty" `Quick test_sampleset_energies_empty;
          prop_sampleset_truncate;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "geometric" `Quick test_schedule_geometric;
          Alcotest.test_case "linear" `Quick test_schedule_linear;
          Alcotest.test_case "monotone" `Quick test_schedule_monotone;
          Alcotest.test_case "single sweep" `Quick test_schedule_single_sweep;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "auto range" `Quick test_schedule_auto_range;
          Alcotest.test_case "coupler-only range" `Quick test_schedule_coupler_only_range;
        ] );
      ( "exact",
        [
          Alcotest.test_case "finds target" `Quick test_exact_finds_target;
          Alcotest.test_case "degenerate ground" `Quick test_exact_degenerate_ground;
          Alcotest.test_case "solve sorted" `Quick test_exact_solve_sorted;
          Alcotest.test_case "minimum energy" `Quick test_exact_minimum_energy;
          Alcotest.test_case "size cap" `Quick test_exact_size_cap;
          Alcotest.test_case "offset respected" `Quick test_exact_offset_respected;
        ] );
      ( "sa",
        [
          Alcotest.test_case "solves diagonal" `Quick test_sa_solves_diagonal;
          Alcotest.test_case "deterministic" `Quick test_sa_deterministic_given_seed;
          Alcotest.test_case "parallel = sequential" `Quick test_sa_parallel_matches_sequential;
          Alcotest.test_case "total reads" `Quick test_sa_total_reads;
          Alcotest.test_case "empty problem" `Quick test_sa_empty_problem;
          Alcotest.test_case "postprocess local min" `Quick test_sa_postprocess_at_local_min;
          Alcotest.test_case "validation" `Quick test_sa_validation;
          prop_sa_finds_ground_small;
        ] );
      ( "sqa",
        [
          Alcotest.test_case "solves diagonal" `Quick test_sqa_solves_diagonal;
          Alcotest.test_case "deterministic" `Quick test_sqa_deterministic;
          Alcotest.test_case "validation" `Quick test_sqa_validation;
          Alcotest.test_case "single sweep" `Quick test_sqa_single_sweep;
          prop_sqa_finds_ground_small;
        ] );
      ( "tabu",
        [
          Alcotest.test_case "solves diagonal" `Quick test_tabu_solves_diagonal;
          Alcotest.test_case "validation" `Quick test_tabu_validation;
          prop_tabu_finds_ground_small;
        ] );
      ( "pt",
        [
          Alcotest.test_case "solves diagonal" `Quick test_pt_solves_diagonal;
          Alcotest.test_case "deterministic" `Quick test_pt_deterministic;
          Alcotest.test_case "validation" `Quick test_pt_validation;
          Alcotest.test_case "empty problem" `Quick test_pt_empty_problem;
          Alcotest.test_case "in default suite" `Quick test_pt_in_default_suite;
          Alcotest.test_case "with_seed" `Quick test_pt_with_seed;
          Alcotest.test_case "single replica" `Quick test_pt_single_replica;
          prop_pt_finds_ground_small;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "solves easy" `Quick test_greedy_solves_easy;
          Alcotest.test_case "descent monotone" `Quick test_greedy_descend_monotone;
          Alcotest.test_case "init respected" `Quick test_greedy_init_respected;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "interface" `Quick test_sampler_interface;
          Alcotest.test_case "with_seed" `Quick test_sampler_with_seed;
          Alcotest.test_case "custom" `Quick test_sampler_custom;
          Alcotest.test_case "init length validation" `Quick test_init_length_validation;
          Alcotest.test_case "early exit" `Quick test_sampler_early_exit;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_portfolio_deterministic_across_jobs;
          Alcotest.test_case "early exit wins" `Quick test_portfolio_early_exit_wins;
          Alcotest.test_case "budget cuts slow member" `Quick
            test_portfolio_budget_cuts_slow_member;
          Alcotest.test_case "validation" `Quick test_portfolio_validation;
          Alcotest.test_case "crashed member -> typed failure" `Quick
            test_portfolio_member_failure_is_typed;
          Alcotest.test_case "raising verify -> typed failure" `Quick
            test_portfolio_raising_verify_is_member_failure;
          Alcotest.test_case "sampler integration" `Quick test_portfolio_sampler_integration;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "sa explicit schedule" `Quick test_sa_explicit_schedule;
          Alcotest.test_case "sqa beta validation" `Quick test_sqa_beta_validation;
          Alcotest.test_case "hardware negative noise" `Quick
            test_hardware_negative_noise_rejected;
          Alcotest.test_case "hardware sampler wrapper" `Quick test_hardware_sampler_wrapper;
          Alcotest.test_case "schedule accessors" `Quick test_schedule_accessors;
          Alcotest.test_case "sampleset pp" `Quick test_sampleset_pp;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "success probability" `Quick test_metrics_success_probability;
          Alcotest.test_case "repeats needed" `Quick test_metrics_repeats;
          Alcotest.test_case "time to solution" `Quick test_metrics_tts;
          Alcotest.test_case "residual energy" `Quick test_metrics_residual;
        ] );
      ( "spinglass",
        [
          Alcotest.test_case "random shape" `Quick test_spinglass_random_shape;
          Alcotest.test_case "planted is ground" `Quick test_spinglass_planted_is_ground;
          Alcotest.test_case "planted gaussian" `Quick test_spinglass_planted_gaussian;
          Alcotest.test_case "frustration occurs" `Quick test_spinglass_random_is_frustrated_sometimes;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "monotone best" `Quick test_convergence_monotone_best;
          Alcotest.test_case "sweeps to reach" `Quick test_convergence_sweeps_to_reach;
          Alcotest.test_case "validation" `Quick test_convergence_validation;
        ] );
      ( "topology",
        [
          Alcotest.test_case "chimera counts" `Quick test_chimera_counts;
          Alcotest.test_case "chimera degree" `Quick test_chimera_degree_bound;
          Alcotest.test_case "chimera coords" `Quick test_chimera_coords_roundtrip;
          Alcotest.test_case "king counts" `Quick test_king_counts;
          Alcotest.test_case "complete counts" `Quick test_complete_counts;
          Alcotest.test_case "connected" `Quick test_topologies_connected;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "identity valid" `Quick test_embedding_identity_valid;
          Alcotest.test_case "K3 in chimera" `Quick test_embedding_find_triangle_in_chimera;
          Alcotest.test_case "K6 in chimera(2)" `Quick test_embedding_find_k6_in_chimera2;
          Alcotest.test_case "impossible" `Quick test_embedding_impossible;
          Alcotest.test_case "empty problem" `Quick test_embedding_empty_problem;
          Alcotest.test_case "validate identity" `Quick test_validate_catches_overlap;
          Alcotest.test_case "validate missing edge" `Quick test_validate_catches_missing_edge;
          Alcotest.test_case "find_detailed" `Quick test_embedding_find_detailed;
          Alcotest.test_case "validate rejects mutated chains" `Quick
            test_validate_rejects_mutated_chains;
        ] );
      ( "chain",
        [
          Alcotest.test_case "default strength" `Quick test_chain_default_strength;
          Alcotest.test_case "embed preserves ground" `Quick test_chain_embed_energy_preserved;
          Alcotest.test_case "unembed majority" `Quick test_chain_unembed_majority;
          Alcotest.test_case "break fraction" `Quick test_chain_break_fraction;
          Alcotest.test_case "unembed tie break unbiased" `Quick test_unembed_tie_break_unbiased;
        ] );
      ( "hardware",
        [
          Alcotest.test_case "end to end" `Quick test_hardware_end_to_end;
          Alcotest.test_case "embedding failure" `Quick test_hardware_embedding_failure;
          Alcotest.test_case "noise" `Quick test_hardware_noise_still_samples;
          Alcotest.test_case "embedding cache" `Quick test_hardware_embedding_cache;
          Alcotest.test_case "degradation signal" `Quick test_hardware_degradation_signal;
          Alcotest.test_case "adaptive escalation" `Quick test_hardware_adaptive_escalates;
          Alcotest.test_case "auto topology" `Quick test_hardware_auto_topology;
          Alcotest.test_case "param validation" `Quick test_hardware_param_validation;
          Alcotest.test_case "run_detailed stats" `Quick test_sampler_run_detailed_stats;
          Alcotest.test_case "portfolio hardware member" `Quick test_portfolio_hardware_member;
        ] );
    ]
