(* The bit-parallel multi-replica kernel (Qsmt_qubo.Multispin) against
   its scalar oracle (Qsmt_qubo.Fields):

   - property tests drive random flip-mask sequences through a packed
     state next to one scalar Fields state per lane and require bitwise
     identical spins, fields, deltas and energies (the float-exactness
     contract from multispin.mli);
   - the bucketed accept path's marginals are checked against the
     closed-form min(1, exp(-beta*delta)) at a grid of deltas;
   - Sa.run_packed in Lockstep mode must return sample-identical sets to
     Sa.sample from the same seed, including tail-lane groups (reads not
     a multiple of 64) and a single read;
   - drift/refresh parity with the scalar kernel, and the refresh_every
     validation shared by both kernels. *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Qgraph = Qsmt_qubo.Qgraph
module Ising = Qsmt_qubo.Ising
module Fields = Qsmt_qubo.Fields
module Multispin = Qsmt_qubo.Multispin
module Sa = Qsmt_anneal.Sa
module Sampleset = Qsmt_anneal.Sampleset
module Spinglass = Qsmt_anneal.Spinglass

(* ------------------------------------------------------------------ *)
(* instances *)

let random_ising ~seed ~n ~density =
  let rng = Prng.create seed in
  let g = Qgraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.float rng < density then Qgraph.add_edge g i j
    done
  done;
  let q = Spinglass.random_on_graph ~rng ~coupling:Spinglass.Gaussian ~field:0.3 g in
  (q, Ising.of_qubo q)

let gen_case =
  QCheck.make ~print:(fun (seed, n, density, lanes) ->
      Printf.sprintf "seed=%d n=%d density=%.2f lanes=%d" seed n density lanes)
    QCheck.Gen.(
      let* seed = int_bound 1000 in
      let* n = int_range 2 40 in
      let* density = float_range 0.05 0.9 in
      let* lanes = int_range 1 Multispin.max_lanes in
      return (seed, n, density, lanes))

let qtest ~count name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* packed kernel vs per-lane scalar Fields oracle *)

let oracle_parity (seed, n, density, lanes) =
  let _, ising = random_ising ~seed ~n ~density in
  let rng = Prng.create (seed + 1) in
  let starts = Array.init lanes (fun _ -> Bitvec.random rng n) in
  let ms = Multispin.create ising starts in
  let oracle = Array.map (fun s -> Fields.create ising (Bitvec.copy s)) starts in
  let check_all step =
    for l = 0 to lanes - 1 do
      let f = oracle.(l) in
      if Multispin.energy ms l <> Fields.energy f then
        QCheck.Test.fail_reportf "energy diverged at step %d lane %d: %h <> %h" step l
          (Multispin.energy ms l) (Fields.energy f);
      if not (Bitvec.equal (Multispin.lane_spins ms l) (Fields.spins f)) then
        QCheck.Test.fail_reportf "spins diverged at step %d lane %d" step l;
      for i = 0 to n - 1 do
        if Multispin.field ms i l <> Fields.field f i then
          QCheck.Test.fail_reportf "field diverged at step %d lane %d site %d" step l i;
        if Multispin.delta ms i l <> Fields.delta f i then
          QCheck.Test.fail_reportf "delta diverged at step %d lane %d site %d" step l i
      done
    done
  in
  check_all (-1);
  for step = 0 to 99 do
    let i = Prng.int rng n in
    let mask = Int64.of_int (Prng.int rng (1 lsl min lanes 30)) in
    Multispin.flip ms i mask;
    for l = 0 to lanes - 1 do
      if Int64.logand (Int64.shift_right_logical mask l) 1L = 1L then Fields.flip oracle.(l) i
    done;
    check_all step
  done;
  true

(* The packed word at a site must read back each lane's bit. *)
let word_readback (seed, n, density, lanes) =
  let _, ising = random_ising ~seed ~n ~density in
  let rng = Prng.create (seed + 2) in
  let starts = Array.init lanes (fun _ -> Bitvec.random rng n) in
  let ms = Multispin.create ising starts in
  for i = 0 to n - 1 do
    let w = Multispin.word ms i in
    if Int64.logand w (Int64.lognot (Multispin.lane_mask ms)) <> 0L then
      QCheck.Test.fail_reportf "tail bits set at site %d" i;
    for l = 0 to lanes - 1 do
      let bit = Int64.logand (Int64.shift_right_logical w l) 1L = 1L in
      if bit <> Bitvec.get starts.(l) i then
        QCheck.Test.fail_reportf "word bit mismatch at site %d lane %d" i l
    done
  done;
  true

let drift_refresh_parity (seed, n, density, lanes) =
  let _, ising = random_ising ~seed ~n ~density in
  let rng = Prng.create (seed + 3) in
  let starts = Array.init lanes (fun _ -> Bitvec.random rng n) in
  let ms = Multispin.create ising starts in
  for _ = 0 to 199 do
    Multispin.flip ms (Prng.int rng n) (Int64.of_int (Prng.int rng (1 lsl min lanes 30)))
  done;
  (* Tracked state follows the scalar op order exactly, so with dyadic
     or not, drift against a fresh recompute stays tiny; refresh must
     zero it. *)
  if Multispin.drift ms > 1e-6 then
    QCheck.Test.fail_reportf "drift %g after 200 masked flips" (Multispin.drift ms);
  Multispin.refresh ms;
  if Multispin.drift ms <> 0. then
    QCheck.Test.fail_reportf "drift %g after refresh" (Multispin.drift ms);
  true

let kernel_props =
  [
    qtest ~count:60 "packed tracks per-lane scalar Fields bitwise" gen_case oracle_parity;
    qtest ~count:60 "packed words read back lane spins" gen_case word_readback;
    qtest ~count:40 "drift stays tiny; refresh zeroes it" gen_case drift_refresh_parity;
  ]

(* ------------------------------------------------------------------ *)
(* bucketed accept marginals *)

let marginal_exactness () =
  let b = Qubo.builder () in
  Qubo.add b 0 0 1.0;
  let q = Qubo.freeze b in
  let ising = Ising.of_qubo q in
  let rng = Prng.create 42 in
  let dr = Multispin.draws rng in
  let trials = 30000 in
  List.iter
    (fun x ->
      let ms = Multispin.create ising (Array.init 64 (fun _ -> Bitvec.create 1)) in
      let betas = Array.make 64 1.0 in
      let deltas = Array.make 64 x in
      let count = ref 0 in
      for _ = 1 to trials do
        let m = Multispin.accept_mask ms ~draws:dr ~betas deltas in
        let c = ref 0 and w = ref m in
        while !w <> 0L do
          incr c;
          w := Int64.logand !w (Int64.sub !w 1L)
        done;
        count := !count + !c
      done;
      let freq = float_of_int !count /. float_of_int (trials * 64) in
      let expect = Float.exp (-.x) in
      (* 64*30000 lane-draws: a 5-sigma band on the binomial proportion. *)
      let sigma = Float.sqrt (expect *. (1. -. expect) /. float_of_int (trials * 64)) in
      if Float.abs (freq -. expect) > (5. *. sigma) +. 1e-9 then
        Alcotest.failf "accept marginal at x=%g: observed %.5f, expected %.5f (sigma %.5f)" x freq
          expect sigma)
    [ 0.05; 0.3; 0.6931; 1.5; 3.0; 8.0 ]

let downhill_always_accepts () =
  let b = Qubo.builder () in
  Qubo.add b 0 0 1.0;
  let q = Qubo.freeze b in
  let ising = Ising.of_qubo q in
  let rng = Prng.create 7 in
  let dr = Multispin.draws rng in
  let ms = Multispin.create ising (Array.init 5 (fun _ -> Bitvec.create 1)) in
  let betas = Array.make 5 2.0 in
  let deltas = [| -1.0; 0.; -0.5; 1e9; -0.1 |] in
  for _ = 1 to 100 do
    let m = Multispin.accept_mask ms ~draws:dr ~betas deltas in
    Alcotest.(check int64) "downhill lanes accept, the huge-uphill lane never does" 0b10111L
      (Int64.logor m 0b00111L)
  done

let only_restricts () =
  let b = Qubo.builder () in
  Qubo.add b 0 0 1.0;
  let q = Qubo.freeze b in
  let ising = Ising.of_qubo q in
  let rng = Prng.create 8 in
  let dr = Multispin.draws rng in
  let ms = Multispin.create ising (Array.init 8 (fun _ -> Bitvec.create 1)) in
  let betas = Array.make 8 1.0 in
  let deltas = Array.make 8 (-1.) in
  for _ = 1 to 50 do
    let m = Multispin.accept_mask ms ~draws:dr ~only:0b1010L ~betas deltas in
    Alcotest.(check int64) "only-masked lanes decide" 0b1010L m
  done

let accept_units =
  [
    Alcotest.test_case "bucketed marginals are exact Metropolis" `Slow marginal_exactness;
    Alcotest.test_case "downhill always accepts" `Quick downhill_always_accepts;
    Alcotest.test_case "only restricts the decision" `Quick only_restricts;
  ]

(* ------------------------------------------------------------------ *)
(* Sa.run_packed: lockstep sample parity, tail lanes, postprocess *)

let sample_parity ~reads ~sweeps ~seed q =
  let params = { Sa.default with Sa.reads; sweeps; seed } in
  let scalar = Sa.sample ~params q in
  let packed = Sa.run_packed ~params ~mode:Sa.Lockstep q in
  let entries s =
    List.map
      (fun e -> (Bitvec.to_string e.Sampleset.bits, e.Sampleset.energy, e.Sampleset.occurrences))
      (Sampleset.entries s)
  in
  Alcotest.(check (list (triple string (float 0.) int)))
    (Printf.sprintf "reads=%d sample parity" reads)
    (entries scalar) (entries packed)

let lockstep_parity () =
  let q, _ = random_ising ~seed:5 ~n:48 ~density:0.3 in
  (* 70 reads: one full group and a 6-lane tail. 1 read: a single lane.
     64: exactly one full group. *)
  List.iter (fun reads -> sample_parity ~reads ~sweeps:60 ~seed:3 q) [ 1; 7; 64; 70 ]

let postprocess_parity () =
  let q, _ = random_ising ~seed:6 ~n:40 ~density:0.4 in
  let params = { Sa.default with Sa.reads = 20; sweeps = 40; seed = 4; postprocess = true } in
  let scalar = Sa.sample ~params q in
  let packed = Sa.run_packed ~params ~mode:Sa.Lockstep q in
  (* The scalar path descends the Fields state carried through the
     anneal; the packed path descends a fresh state built from the
     decoded lane — same assignment, ulp-different accumulators. *)
  Alcotest.(check (float 1e-9))
    "postprocessed best energies agree" (Sampleset.lowest_energy scalar)
    (Sampleset.lowest_energy packed)

let bucketed_tracked_energies () =
  (* The fast path draws differently, so only invariants are checked:
     every read present, every tracked energy = full recompute. *)
  let q, _ = random_ising ~seed:9 ~n:40 ~density:0.4 in
  let params = { Sa.default with Sa.reads = 70; sweeps = 50; seed = 2 } in
  let ss = Sa.run_packed ~params q in
  Alcotest.(check int) "all reads decoded" 70 (Sampleset.total_reads ss);
  List.iter
    (fun e ->
      let recomputed = Qubo.energy q e.Sampleset.bits in
      if Float.abs (e.Sampleset.energy -. recomputed) > 1e-9 then
        Alcotest.failf "tracked energy %.12g, recomputed %.12g" e.Sampleset.energy recomputed)
    (Sampleset.entries ss)

let of_multispin_roundtrip () =
  let q, ising = random_ising ~seed:10 ~n:30 ~density:0.5 in
  let rng = Prng.create 11 in
  let starts = Array.init 10 (fun _ -> Bitvec.random rng 30) in
  let ms = Multispin.create ising starts in
  let ss = Sampleset.of_multispin q ms in
  Alcotest.(check int) "one read per lane" 10 (Sampleset.total_reads ss);
  List.iter
    (fun e ->
      if Float.abs (e.Sampleset.energy -. Qubo.energy q e.Sampleset.bits) > 1e-9 then
        Alcotest.failf "of_multispin energy mismatch")
    (Sampleset.entries ss)

let run_packed_units =
  [
    Alcotest.test_case "lockstep run_packed = scalar sample (incl. tail lanes)" `Quick
      lockstep_parity;
    Alcotest.test_case "postprocess descends to the same best" `Quick postprocess_parity;
    Alcotest.test_case "bucketed path: reads + tracked energies" `Quick bucketed_tracked_energies;
    Alcotest.test_case "Sampleset.of_multispin decodes every lane" `Quick of_multispin_roundtrip;
  ]

(* ------------------------------------------------------------------ *)
(* validation *)

let invalid_arg_of f = try ignore (f ()); None with Invalid_argument m -> Some m

let validation_units =
  let mk_ising () = snd (random_ising ~seed:20 ~n:8 ~density:0.5) in
  let starts lanes n =
    let rng = Prng.create 21 in
    Array.init lanes (fun _ -> Bitvec.random rng n)
  in
  [
    Alcotest.test_case "create: 0 lanes rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (invalid_arg_of (fun () -> Multispin.create (mk_ising ()) [||]) <> None));
    Alcotest.test_case "create: 65 lanes rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (invalid_arg_of (fun () -> Multispin.create (mk_ising ()) (starts 65 8)) <> None));
    Alcotest.test_case "create: lane length mismatch rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (invalid_arg_of (fun () -> Multispin.create (mk_ising ()) (starts 3 7)) <> None));
    Alcotest.test_case "create: negative refresh_every rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (invalid_arg_of (fun () ->
               Multispin.create ~refresh_every:(-1) (mk_ising ()) (starts 2 8))
          <> None));
    Alcotest.test_case "Fields: negative refresh_every rejected" `Quick (fun () ->
        let ising = mk_ising () in
        Alcotest.(check bool) "raises" true
          (invalid_arg_of (fun () ->
               Fields.create ~refresh_every:(-3) ising (Bitvec.create 8))
          <> None));
    Alcotest.test_case "Fields: refresh_every 0 means never" `Quick (fun () ->
        let ising = mk_ising () in
        let f = Fields.create ~refresh_every:0 ising (Bitvec.create 8) in
        for _ = 0 to 99 do
          Fields.flip f 3
        done;
        Alcotest.(check (float 1e-9)) "still consistent" 0. (Fields.drift f));
    Alcotest.test_case "run_packed: reads < 1 rejected" `Quick (fun () ->
        let q, _ = random_ising ~seed:22 ~n:6 ~density:0.5 in
        Alcotest.(check bool) "raises" true
          (invalid_arg_of (fun () ->
               Sa.run_packed ~params:{ Sa.default with Sa.reads = 0 } q)
          <> None));
  ]

let () =
  Alcotest.run "qsmt_multispin"
    [
      ("kernel-vs-scalar-oracle", kernel_props);
      ("bucketed-accept", accept_units);
      ("run-packed", run_packed_units);
      ("validation", validation_units);
    ]
