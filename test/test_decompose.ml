(* Tests for qbsolv-style decomposition: Qsmt_qubo.Decompose (partition
   invariants, clamped-extraction energy identity, stitch guarantees,
   failure tolerance) and the Sampler.decomposed wrapper (fit-in-one-
   shard fallback bit-identity, solving past one embedding). *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Decompose = Qsmt_qubo.Decompose
module Sa = Qsmt_anneal.Sa
module Sampler = Qsmt_anneal.Sampler
module Sampleset = Qsmt_anneal.Sampleset
module Constr = Qsmt_strtheory.Constr
module Solver = Qsmt_strtheory.Solver

let check = Alcotest.check

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random QUBO with integer coefficients (exact float arithmetic, so
   energy identities can be checked bit-for-bit where the contract
   promises it). *)
let random_qubo rng n density =
  let b = Qubo.builder () in
  for i = 0 to n - 1 do
    Qubo.set b i i (float_of_int (Prng.int rng 9 - 4));
    for j = i + 1 to n - 1 do
      if Prng.float rng < density then Qubo.set b i j (float_of_int (Prng.int rng 9 - 4))
    done
  done;
  Qubo.freeze ~num_vars:n b

(* Deterministic steepest-descent shard solver: good enough proposals,
   no PRNG, so property tests stay reproducible. *)
let greedy_shard sub =
  let n = Qubo.num_vars sub in
  let x = Bitvec.create n in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to n - 1 do
      if Qubo.flip_delta sub x i < 0. then begin
        Bitvec.flip x i;
        improved := true
      end
    done
  done;
  x

let qubo_gen =
  QCheck2.Gen.(
    map3
      (fun seed n density -> (seed, n, density))
      (int_bound 10_000) (int_range 1 40) (float_range 0.05 0.4))

(* ------------------------------------------------------------------ *)
(* partition *)

let prop_partition_invariants (seed, n, density) =
  let rng = Prng.create seed in
  let q = random_qubo rng n density in
  let subsize = 1 + Prng.int rng 12 in
  let blocks = Decompose.partition ~subsize q in
  let seen = Array.make n 0 in
  List.iter
    (fun vars ->
      if Array.length vars > subsize then
        QCheck2.Test.fail_reportf "block of %d > subsize %d" (Array.length vars) subsize;
      Array.iteri
        (fun k v ->
          seen.(v) <- seen.(v) + 1;
          if k > 0 && vars.(k - 1) >= v then QCheck2.Test.fail_report "block not ascending")
        vars)
    blocks;
  Array.for_all (fun c -> c = 1) seen

let test_partition_validation () =
  let q = random_qubo (Prng.create 1) 4 0.5 in
  Alcotest.check_raises "subsize 0"
    (Invalid_argument "Decompose.partition: subsize must be >= 1") (fun () ->
      ignore (Decompose.partition ~subsize:0 q))

let test_partition_empty () =
  let q = Qubo.freeze (Qubo.builder ()) in
  check Alcotest.int "no blocks" 0 (List.length (Decompose.partition ~subsize:8 q))

(* ------------------------------------------------------------------ *)
(* extract *)

let prop_extract_energy_identity (seed, n, density) =
  let rng = Prng.create seed in
  let q = random_qubo rng n density in
  let x = Bitvec.random rng n in
  (* a random subset as the shard *)
  let vars =
    Array.of_list (List.filter (fun _ -> Prng.bool rng) (List.init n (fun i -> i)))
  in
  let vars = if Array.length vars = 0 then [| 0 |] else vars in
  let sub = Decompose.extract q x vars in
  let y = Bitvec.random rng (Array.length vars) in
  let patched = Bitvec.copy x in
  Array.iteri (fun k v -> Bitvec.set patched v (Bitvec.get y k)) vars;
  (* integer coefficients: both sums are exact, so equality is exact *)
  Qubo.energy sub y = Qubo.energy q patched

(* ------------------------------------------------------------------ *)
(* solve: stitch guarantees *)

let prop_stitch_never_worse_than_single_shard (seed, n, density) =
  let rng = Prng.create seed in
  let q = random_qubo rng n density in
  let init = Bitvec.random rng n in
  let subsize = 1 + Prng.int rng 12 in
  (* record every round-1 proposal to price the single-shard candidates
     independently of the implementation under test *)
  let mutex = Mutex.create () in
  let round1 = ref [] in
  let solve_shard ~shard ~round sub =
    let y = greedy_shard sub in
    if round = 1 then Mutex.protect mutex (fun () -> round1 := (shard, y) :: !round1);
    y
  in
  let params = { Decompose.default with Decompose.subsize; seed } in
  let result, report = Decompose.solve ~params ~init ~solve_shard q in
  let shards = Array.of_list report.Decompose.shards in
  let best_single =
    List.fold_left
      (fun acc (k, y) ->
        let cand = Bitvec.copy init in
        Array.iteri
          (fun ki v -> Bitvec.set cand v (Bitvec.get y ki))
          shards.(k).Decompose.vars;
        Float.min acc (Qubo.energy q cand))
      infinity !round1
  in
  let repriced = Qubo.energy q result in
  if report.Decompose.energy <> repriced then
    QCheck2.Test.fail_report "reported energy is not the whole-problem re-pricing";
  if (not report.Decompose.bit_exact) && report.Decompose.stitched_energy = repriced then
    QCheck2.Test.fail_report "bit_exact inconsistent with stitched/repriced energies";
  (* the headline guarantee: never worse than the best single-shard answer *)
  report.Decompose.energy <= best_single

let test_solve_bit_exact_on_integer_qubo () =
  (* integer coefficients make every incremental delta exact, so the
     stitched energy must re-price bit-for-bit *)
  let rng = Prng.create 7 in
  let q = random_qubo rng 36 0.2 in
  let _, report =
    Decompose.solve
      ~params:{ Decompose.default with Decompose.subsize = 9; seed = 7 }
      ~solve_shard:(fun ~shard:_ ~round:_ sub -> greedy_shard sub)
      q
  in
  check Alcotest.bool "bit exact" true report.Decompose.bit_exact;
  check (Alcotest.float 0.) "stitched = repriced" report.Decompose.stitched_energy
    report.Decompose.energy

let test_solve_tolerates_shard_failures () =
  let rng = Prng.create 11 in
  let q = random_qubo rng 30 0.25 in
  let init = Bitvec.random rng 30 in
  let solve_shard ~shard ~round:_ sub =
    if shard = 0 then failwith "injected shard failure" else greedy_shard sub
  in
  let t = Telemetry.collector () in
  let result, report =
    Decompose.solve
      ~params:{ Decompose.default with Decompose.subsize = 8; seed = 11 }
      ~init ~telemetry:t ~solve_shard q
  in
  check Alcotest.bool "failures recorded" true (report.Decompose.shard_failures > 0);
  check Alcotest.bool "counter matches" true
    (Telemetry.find_counter t "decomp.shard_failed"
    = Some report.Decompose.shard_failures);
  (* the run still returns a stitched assignment no worse than the start *)
  check Alcotest.bool "never above the warm start" true
    (report.Decompose.energy <= Qubo.energy q init);
  check (Alcotest.float 0.) "energy is re-priced" (Qubo.energy q result)
    report.Decompose.energy

let test_solve_all_shards_failing_returns_init () =
  let rng = Prng.create 13 in
  let q = random_qubo rng 20 0.3 in
  let init = Bitvec.random rng 20 in
  let result, report =
    Decompose.solve
      ~params:{ Decompose.default with Decompose.subsize = 5; seed = 13 }
      ~init
      ~solve_shard:(fun ~shard:_ ~round:_ _ -> failwith "all down")
      q
  in
  check Alcotest.bool "init unchanged" true (Bitvec.equal result init);
  check (Alcotest.float 0.) "init energy" (Qubo.energy q init) report.Decompose.energy;
  check Alcotest.int "nothing accepted" 0 report.Decompose.accepted

let test_solve_stop_returns_immediately () =
  let rng = Prng.create 17 in
  let q = random_qubo rng 24 0.3 in
  let init = Bitvec.random rng 24 in
  let calls = Atomic.make 0 in
  let result, report =
    Decompose.solve
      ~params:{ Decompose.default with Decompose.subsize = 6; seed = 17 }
      ~init
      ~stop:(fun () -> true)
      ~solve_shard:(fun ~shard:_ ~round:_ sub ->
        Atomic.incr calls;
        greedy_shard sub)
      q
  in
  check Alcotest.int "no shard solved" 0 (Atomic.get calls);
  check Alcotest.bool "init returned" true (Bitvec.equal result init);
  check Alcotest.int "no rounds" 0 report.Decompose.rounds

let test_solve_validation () =
  let q = random_qubo (Prng.create 1) 6 0.5 in
  let solve_shard ~shard:_ ~round:_ sub = greedy_shard sub in
  Alcotest.check_raises "bad subsize"
    (Invalid_argument "Decompose.solve: subsize must be >= 1") (fun () ->
      ignore
        (Decompose.solve ~params:{ Decompose.default with Decompose.subsize = 0 } ~solve_shard q));
  Alcotest.check_raises "bad init"
    (Invalid_argument "Decompose.solve: init has 3 bits, problem 6 variables") (fun () ->
      ignore (Decompose.solve ~init:(Bitvec.create 3) ~solve_shard q))

(* ------------------------------------------------------------------ *)
(* telemetry contract *)

let test_solve_telemetry_counters () =
  let rng = Prng.create 23 in
  let q = random_qubo rng 32 0.2 in
  let t = Telemetry.collector () in
  let _, report =
    Decompose.solve
      ~params:{ Decompose.default with Decompose.subsize = 8; seed = 23 }
      ~telemetry:t
      ~solve_shard:(fun ~shard:_ ~round:_ sub -> greedy_shard sub)
      q
  in
  check (Alcotest.option Alcotest.int) "shards counter"
    (Some (List.length report.Decompose.shards))
    (Telemetry.find_counter t "decomp.shards");
  check (Alcotest.option Alcotest.int) "rounds counter" (Some report.Decompose.rounds)
    (Telemetry.find_counter t "decomp.rounds");
  check (Alcotest.option Alcotest.int) "accepted counter" (Some report.Decompose.accepted)
    (Telemetry.find_counter t "decomp.accepted");
  let events = List.map (fun e -> e.Telemetry.ev) (Telemetry.events t) in
  check Alcotest.bool "done event" true (List.mem "decomp.done" events);
  check Alcotest.bool "shard events" true (List.mem "decomp.shard.done" events)

(* ------------------------------------------------------------------ *)
(* Sampler.decomposed *)

let same_sampleset a b =
  List.length (Sampleset.entries a) = List.length (Sampleset.entries b)
  && List.for_all2
       (fun x y ->
         Bitvec.equal x.Sampleset.bits y.Sampleset.bits
         && x.Sampleset.occurrences = y.Sampleset.occurrences
         && x.Sampleset.energy = y.Sampleset.energy)
       (Sampleset.entries a) (Sampleset.entries b)

let sa_sampler seed =
  Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed; reads = 8; sweeps = 200 } ()

let test_sampler_fallback_is_bit_identical () =
  (* Table-1 sized problems fit one shard: --decompose must be a no-op
     down to the exact sample set, with only the fallback counter as a
     trace. Fixed seeds; both paths share the same PRNG streams. *)
  let table1 =
    [
      Constr.Reverse "hello";
      Constr.Palindrome { length = 6 };
      Constr.Concat [ "hello"; " "; "world" ];
    ]
  in
  List.iter
    (fun constr ->
      let q = Qsmt_strtheory.Compile.to_qubo constr in
      let t = Telemetry.collector () in
      let plain = Sampler.run (sa_sampler 42) q in
      let wrapped =
        Sampler.run ~telemetry:t
          (Sampler.decomposed
             ~params:{ Decompose.default with Decompose.subsize = Qubo.num_vars q }
             (sa_sampler 42))
          q
      in
      check Alcotest.bool
        (Printf.sprintf "bit-identical samples (%s)" (Constr.describe constr))
        true (same_sampleset plain wrapped);
      check (Alcotest.option Alcotest.int) "fallback counted" (Some 1)
        (Telemetry.find_counter t "decomp.fallback"))
    table1

let test_sampler_with_seed_reseeds_decomposed () =
  let q = Qsmt_strtheory.Compile.to_qubo (Constr.Palindrome { length = 6 }) in
  let s = Sampler.decomposed (sa_sampler 0) in
  check Alcotest.string "name" "sa+decompose" (Sampler.name s);
  let a = Sampler.run (Sampler.with_seed s 5) q in
  let b = Sampler.run (Sampler.with_seed s 5) q in
  check Alcotest.bool "reseeded runs are reproducible" true (same_sampleset a b)

let test_solver_palindrome24_decomposed () =
  (* The acceptance instance: palindrome length 24 -> 168 logical
     variables, 4x the largest single embedding the BENCH_3 suite uses
     (palindrome-6, 42 variables). Decomposition must solve it and the
     stitched energy must re-price bit-exactly (dyadic coefficients). *)
  let t = Telemetry.collector () in
  let sampler =
    Sampler.decomposed
      ~params:{ Decompose.default with Decompose.subsize = 42; seed = 1 }
      (Sampler.simulated_annealing ~params:{ Sa.default with Sa.seed = 1 } ())
  in
  let outcome = Solver.solve ~sampler ~telemetry:t (Constr.Palindrome { length = 24 }) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  check (Alcotest.float 0.) "ground energy" 0. outcome.Solver.energy;
  (match outcome.Solver.value with
  | Constr.Str s ->
    check Alcotest.int "length 24" 24 (String.length s);
    check Alcotest.bool "palindrome" true
      (String.equal s (String.init 24 (fun i -> s.[23 - i])))
  | _ -> Alcotest.fail "expected a string value");
  (match Telemetry.find_counter t "decomp.shards" with
  | Some shards -> check Alcotest.bool "actually decomposed (>= 4 shards)" true (shards >= 4)
  | None -> Alcotest.fail "no decomp.shards counter");
  check (Alcotest.option Alcotest.int) "stitched energy re-priced bit-exactly" None
    (Telemetry.find_counter t "decomp.reprice_mismatch")

let () =
  Alcotest.run "qsmt-decompose"
    [
      ( "partition",
        [
          qtest "every variable in exactly one <= subsize ascending block" qubo_gen
            prop_partition_invariants;
          Alcotest.test_case "validation" `Quick test_partition_validation;
          Alcotest.test_case "empty QUBO" `Quick test_partition_empty;
        ] );
      ( "extract",
        [
          qtest "clamped sub-energy = whole-problem energy" qubo_gen
            prop_extract_energy_identity;
        ] );
      ( "solve",
        [
          qtest "never worse than best single-shard answer" qubo_gen
            prop_stitch_never_worse_than_single_shard;
          Alcotest.test_case "bit-exact stitching" `Quick test_solve_bit_exact_on_integer_qubo;
          Alcotest.test_case "tolerates shard failures" `Quick
            test_solve_tolerates_shard_failures;
          Alcotest.test_case "all shards failing returns init" `Quick
            test_solve_all_shards_failing_returns_init;
          Alcotest.test_case "stop returns immediately" `Quick
            test_solve_stop_returns_immediately;
          Alcotest.test_case "validation" `Quick test_solve_validation;
          Alcotest.test_case "telemetry contract" `Quick test_solve_telemetry_counters;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "fitting problems fall back bit-identically" `Quick
            test_sampler_fallback_is_bit_identical;
          Alcotest.test_case "with_seed reseeds" `Quick test_sampler_with_seed_reseeds_decomposed;
          Alcotest.test_case "palindrome-24 through the solver" `Slow
            test_solver_palindrome24_decomposed;
        ] );
    ]
