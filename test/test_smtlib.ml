(* Tests for qsmt_smtlib: s-expression lexing, script parsing, sort
   checking, ground evaluation, assertion compilation, and the full
   interpreter on end-to-end scripts. *)

module Sexp = Qsmt_smtlib.Sexp
module Ast = Qsmt_smtlib.Ast
module Parser = Qsmt_smtlib.Parser
module Typecheck = Qsmt_smtlib.Typecheck
module Eval = Qsmt_smtlib.Eval
module Compile = Qsmt_smtlib.Compile
module Interp = Qsmt_smtlib.Interp
module Dnf = Qsmt_smtlib.Dnf
module Constr = Qsmt_strtheory.Constr
module Syntax = Qsmt_regex.Syntax

let check = Alcotest.check

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* Sexp *)

let test_sexp_atoms_lists () =
  match ok_exn (Sexp.parse_one "(assert (= x 3))") with
  | Sexp.List [ Sexp.Atom "assert"; Sexp.List [ Sexp.Atom "="; Sexp.Atom "x"; Sexp.Atom "3" ] ] ->
    ()
  | other -> Alcotest.failf "unexpected parse: %s" (Sexp.to_string other)

let test_sexp_strings () =
  (match ok_exn (Sexp.parse_one {|"hello world"|}) with
  | Sexp.String "hello world" -> ()
  | other -> Alcotest.failf "unexpected: %s" (Sexp.to_string other));
  (* doubled quote escape *)
  match ok_exn (Sexp.parse_one {|"say ""hi"""|}) with
  | Sexp.String {|say "hi"|} -> ()
  | other -> Alcotest.failf "unexpected: %s" (Sexp.to_string other)

let test_sexp_comments () =
  let script = "; a comment\n(check-sat) ; trailing\n" in
  check Alcotest.int "one expr" 1 (List.length (ok_exn (Sexp.parse_all script)))

let test_sexp_quoted_symbol () =
  match ok_exn (Sexp.parse_one "|odd symbol|") with
  | Sexp.Atom "odd symbol" -> ()
  | other -> Alcotest.failf "unexpected: %s" (Sexp.to_string other)

let test_sexp_errors () =
  let fails s = match Sexp.parse_all s with Error _ -> true | Ok _ -> false in
  check Alcotest.bool "unclosed paren" true (fails "(a (b)");
  check Alcotest.bool "unmatched close" true (fails "a)");
  check Alcotest.bool "unterminated string" true (fails "\"abc");
  check Alcotest.bool "error carries line" true
    (match Sexp.parse_all "(ok)\n(bad" with
    | Error msg -> String.length msg > 0 && String.sub msg 0 4 = "line"
    | Ok _ -> false)

let test_sexp_roundtrip () =
  let s = {|(assert (= x "a ""b"" c"))|} in
  let parsed = ok_exn (Sexp.parse_one s) in
  check Alcotest.string "print matches" s (Sexp.to_string parsed)

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse_script s = ok_exn (Parser.parse_script s)

let test_parse_declare () =
  match parse_script "(declare-const x String)" with
  | [ Ast.Declare_const ("x", Ast.S_string) ] -> ()
  | _ -> Alcotest.fail "bad declare"

let test_parse_declare_fun () =
  match parse_script "(declare-fun y () Int)" with
  | [ Ast.Declare_const ("y", Ast.S_int) ] -> ()
  | _ -> Alcotest.fail "bad declare-fun"

let test_parse_assert_app () =
  match parse_script {|(assert (str.contains x "hi"))|} with
  | [ Ast.Assert (Ast.App ("str.contains", [ Ast.Var "x"; Ast.Str "hi" ])) ] -> ()
  | _ -> Alcotest.fail "bad assert"

let test_parse_negative_int () =
  match parse_script "(assert (= i (- 3)))" with
  | [ Ast.Assert (Ast.App ("=", [ Ast.Var "i"; Ast.Int (-3) ])) ] -> ()
  | _ -> Alcotest.fail "bad negative"

let test_parse_unknown_command () =
  match Parser.parse_script "(reset-assertions)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reset-assertions should be unsupported"

let test_parse_push_pop () =
  match parse_script "(push)(push 2)(pop)(pop 2)" with
  | [ Ast.Push 1; Ast.Push 2; Ast.Pop 1; Ast.Pop 2 ] -> ()
  | _ -> Alcotest.fail "bad push/pop parse"

let test_parse_unknown_sort () =
  match Parser.parse_script "(declare-const x Float)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Float should be rejected"

(* ------------------------------------------------------------------ *)
(* Typecheck *)

let env_with decls =
  List.fold_left (fun env (n, s) -> ok_exn (Typecheck.declare env n s)) Typecheck.empty_env decls

let sort_of env t = Typecheck.sort_of_term env t

let test_typecheck_ops () =
  let env = env_with [ ("x", Ast.S_string); ("i", Ast.S_int) ] in
  check Alcotest.bool "len" true (sort_of env (Ast.App ("str.len", [ Ast.Var "x" ])) = Ok Ast.S_int);
  check Alcotest.bool "++" true
    (sort_of env (Ast.App ("str.++", [ Ast.Var "x"; Ast.Str "a" ])) = Ok Ast.S_string);
  check Alcotest.bool "contains" true
    (sort_of env (Ast.App ("str.contains", [ Ast.Var "x"; Ast.Str "a" ])) = Ok Ast.S_bool);
  check Alcotest.bool "in_re" true
    (sort_of env
       (Ast.App ("str.in_re", [ Ast.Var "x"; Ast.App ("str.to_re", [ Ast.Str "ab" ]) ]))
    = Ok Ast.S_bool)

let test_typecheck_errors () =
  let env = env_with [ ("x", Ast.S_string) ] in
  let is_err t = match sort_of env t with Error _ -> true | Ok _ -> false in
  check Alcotest.bool "undeclared" true (is_err (Ast.Var "y"));
  check Alcotest.bool "arity" true (is_err (Ast.App ("str.len", [])));
  check Alcotest.bool "sort mismatch" true (is_err (Ast.App ("str.len", [ Ast.Int 3 ])));
  check Alcotest.bool "unknown op" true (is_err (Ast.App ("str.frobnicate", [ Ast.Var "x" ])));
  check Alcotest.bool "= mixed sorts" true (is_err (Ast.App ("=", [ Ast.Var "x"; Ast.Int 1 ])))

let test_typecheck_redeclare () =
  let env = env_with [ ("x", Ast.S_string) ] in
  match Typecheck.declare env "x" Ast.S_int with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "redeclaration should fail"

let test_typecheck_assertion_must_be_bool () =
  let env = env_with [ ("x", Ast.S_string) ] in
  match Typecheck.check_assertion env (Ast.App ("str.len", [ Ast.Var "x" ])) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "Int assertion should fail"

(* ------------------------------------------------------------------ *)
(* Eval *)

let eval_exn t = ok_exn (Eval.term t)

let test_eval_string_ops () =
  check Alcotest.bool "concat" true
    (eval_exn (Ast.App ("str.++", [ Ast.Str "ab"; Ast.Str "cd" ])) = Eval.V_str "abcd");
  check Alcotest.bool "len" true (eval_exn (Ast.App ("str.len", [ Ast.Str "abc" ])) = Eval.V_int 3);
  check Alcotest.bool "replace first" true
    (eval_exn (Ast.App ("str.replace", [ Ast.Str "banana"; Ast.Str "an"; Ast.Str "x" ]))
    = Eval.V_str "bxana");
  check Alcotest.bool "replace_all" true
    (eval_exn (Ast.App ("str.replace_all", [ Ast.Str "banana"; Ast.Str "an"; Ast.Str "x" ]))
    = Eval.V_str "bxxa");
  check Alcotest.bool "indexof found" true
    (eval_exn (Ast.App ("str.indexof", [ Ast.Str "hello"; Ast.Str "ll"; Ast.Int 0 ]))
    = Eval.V_int 2);
  check Alcotest.bool "indexof absent = -1" true
    (eval_exn (Ast.App ("str.indexof", [ Ast.Str "hello"; Ast.Str "z"; Ast.Int 0 ]))
    = Eval.V_int (-1));
  check Alcotest.bool "at" true
    (eval_exn (Ast.App ("str.at", [ Ast.Str "abc"; Ast.Int 1 ])) = Eval.V_str "b");
  check Alcotest.bool "at out of range" true
    (eval_exn (Ast.App ("str.at", [ Ast.Str "abc"; Ast.Int 9 ])) = Eval.V_str "");
  check Alcotest.bool "substr" true
    (eval_exn (Ast.App ("str.substr", [ Ast.Str "abcdef"; Ast.Int 1; Ast.Int 3 ]))
    = Eval.V_str "bcd");
  check Alcotest.bool "rev" true
    (eval_exn (Ast.App ("str.rev", [ Ast.Str "abc" ])) = Eval.V_str "cba");
  check Alcotest.bool "palindrome" true
    (eval_exn (Ast.App ("str.palindrome", [ Ast.Str "abba" ])) = Eval.V_bool true)

let test_eval_bool_ops () =
  check Alcotest.bool "and" true
    (eval_exn (Ast.App ("and", [ Ast.Bool true; Ast.Bool true ])) = Eval.V_bool true);
  check Alcotest.bool "and false" true
    (eval_exn (Ast.App ("and", [ Ast.Bool true; Ast.Bool false ])) = Eval.V_bool false);
  check Alcotest.bool "not" true (eval_exn (Ast.App ("not", [ Ast.Bool false ])) = Eval.V_bool true);
  check Alcotest.bool "= strings" true
    (eval_exn (Ast.App ("=", [ Ast.Str "a"; Ast.Str "a" ])) = Eval.V_bool true)

let test_eval_model () =
  let model = [ ("x", Eval.V_str "hi") ] in
  check Alcotest.bool "var under model" true
    (ok_exn (Eval.term ~model (Ast.App ("str.len", [ Ast.Var "x" ]))) = Eval.V_int 2)

let test_eval_free_var_error () =
  match Eval.term (Ast.Var "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "free var should fail"

let test_eval_regex () =
  let re =
    Ast.App
      ( "re.++",
        [
          Ast.App ("str.to_re", [ Ast.Str "a" ]);
          Ast.App ("re.+", [ Ast.App ("re.union", [ Ast.App ("str.to_re", [ Ast.Str "b" ]); Ast.App ("str.to_re", [ Ast.Str "c" ]) ]) ]);
        ] )
  in
  let syntax = ok_exn (Eval.regex re) in
  let dfa = Qsmt_regex.Dfa.of_syntax syntax in
  check Alcotest.bool "abcb matches" true (Qsmt_regex.Dfa.matches dfa "abcb");
  check Alcotest.bool "a alone does not" false (Qsmt_regex.Dfa.matches dfa "a")

let test_eval_in_re () =
  let t =
    Ast.App
      ("str.in_re", [ Ast.Str "ab"; Ast.App ("str.to_re", [ Ast.Str "ab" ]) ])
  in
  check Alcotest.bool "in_re" true (eval_exn t = Eval.V_bool true)

(* ------------------------------------------------------------------ *)
(* Compile *)

let compile_script source =
  let commands = parse_script source in
  let env, assertions =
    List.fold_left
      (fun (env, asserts) cmd ->
        match cmd with
        | Ast.Declare_const (n, s) -> (ok_exn (Typecheck.declare env n s), asserts)
        | Ast.Assert t -> (env, t :: asserts)
        | _ -> (env, asserts))
      (Typecheck.empty_env, []) commands
  in
  Compile.compile env (List.rev assertions)

let test_compile_equality () =
  match ok_exn (compile_script {|(declare-const x String)(assert (= x "hi"))|}) with
  | Compile.Generate { var = "x"; constr = Constr.Equals "hi" } -> ()
  | _ -> Alcotest.fail "expected Equals"

let test_compile_ground_concat_folds () =
  match
    ok_exn (compile_script {|(declare-const x String)(assert (= x (str.++ "a" "b")))|})
  with
  | Compile.Generate { constr = Constr.Equals "ab"; _ } -> ()
  | _ -> Alcotest.fail "expected folded Equals"

let test_compile_contains_with_length () =
  match
    ok_exn
      (compile_script
         {|(declare-const x String)(assert (str.contains x "cat"))(assert (= (str.len x) 4))|})
  with
  | Compile.Generate { constr = Constr.Contains { length = 4; substring = "cat" }; _ } -> ()
  | _ -> Alcotest.fail "expected Contains"

let test_compile_contains_without_length_unsupported () =
  match compile_script {|(declare-const x String)(assert (str.contains x "cat"))|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should need a length"

let test_compile_regex () =
  match
    ok_exn
      (compile_script
         {|(declare-const x String)
           (assert (str.in_re x (re.++ (str.to_re "a") (re.+ (re.union (str.to_re "b") (str.to_re "c"))))))
           (assert (= (str.len x) 5))|})
  with
  | Compile.Generate { constr = Constr.Regex { length = 5; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected Regex"

let test_compile_regex_infeasible_length_unsat () =
  match
    ok_exn
      (compile_script
         {|(declare-const x String)
           (assert (str.in_re x (str.to_re "abc")))
           (assert (= (str.len x) 2))|})
  with
  | Compile.Trivial false -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_compile_indexof_forced () =
  match
    ok_exn
      (compile_script
         {|(declare-const x String)
           (assert (= (str.indexof x "hi" 0) 2))
           (assert (= (str.len x) 6))|})
  with
  | Compile.Generate { constr = Constr.Index_of { length = 6; substring = "hi"; index = 2 }; _ } ->
    ()
  | _ -> Alcotest.fail "expected Index_of"

let test_compile_includes () =
  match
    ok_exn
      (compile_script
         {|(declare-const i Int)(assert (= i (str.indexof "hello world" "world" 0)))|})
  with
  | Compile.Locate { var = "i"; constr = Constr.Includes { haystack = "hello world"; needle = "world" } }
    ->
    ()
  | _ -> Alcotest.fail "expected Locate"

let test_compile_includes_absent_is_solved () =
  match
    ok_exn
      (compile_script {|(declare-const i Int)(assert (= i (str.indexof "hello" "zz" 0)))|})
  with
  | Compile.Solved { var = "i"; value = Eval.V_int (-1) } -> ()
  | _ -> Alcotest.fail "expected Solved -1"

let test_compile_palindrome () =
  match
    ok_exn
      (compile_script
         {|(declare-const x String)(assert (str.palindrome x))(assert (= (str.len x) 6))|})
  with
  | Compile.Generate { constr = Constr.Palindrome { length = 6 }; _ } -> ()
  | _ -> Alcotest.fail "expected Palindrome"

let test_compile_length_only () =
  match ok_exn (compile_script {|(declare-const x String)(assert (= (str.len x) 3))|}) with
  | Compile.Generate { constr = Constr.Regex { length = 3; pattern }; _ } ->
    check Alcotest.bool "any pattern" true (Syntax.equal pattern (Syntax.Star Syntax.any))
  | _ -> Alcotest.fail "expected any-string Regex"

let test_compile_ground_truths () =
  (match ok_exn (compile_script {|(assert (= "a" "a"))|}) with
  | Compile.Trivial true -> ()
  | _ -> Alcotest.fail "expected trivially sat");
  match ok_exn (compile_script {|(assert (= "a" "b"))|}) with
  | Compile.Trivial false -> ()
  | _ -> Alcotest.fail "expected trivially unsat"

let test_compile_contradictory_equalities () =
  match
    ok_exn (compile_script {|(declare-const x String)(assert (= x "a"))(assert (= x "b"))|})
  with
  | Compile.Trivial false -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_compile_eq_checks_other_facts () =
  match
    ok_exn
      (compile_script
         {|(declare-const x String)(assert (= x "abc"))(assert (str.contains x "zz"))|})
  with
  | Compile.Trivial false -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_compile_two_unknowns_unsupported () =
  match
    compile_script
      {|(declare-const x String)(declare-const y String)(assert (= x "a"))(assert (= y "b"))|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two unknowns should be unsupported"

(* ------------------------------------------------------------------ *)
(* Interp end to end *)

let run source = ok_exn (Interp.run_string source)

let test_interp_sat_model () =
  let out =
    run
      {|(set-logic QF_S)
        (declare-const x String)
        (assert (= x "hi"))
        (check-sat)
        (get-value (x))|}
  in
  check (Alcotest.list Alcotest.string) "sat and value" [ "sat"; {|((x "hi"))|} ] out

let test_interp_unsat () =
  let out = run {|(declare-const x String)(assert (= x "a"))(assert (= x "b"))(check-sat)|} in
  check (Alcotest.list Alcotest.string) "unsat" [ "unsat" ] out

let test_interp_regex_generation () =
  let out =
    run
      {|(declare-const x String)
        (assert (str.in_re x (re.++ (str.to_re "a") (re.+ (re.union (str.to_re "b") (str.to_re "c"))))))
        (assert (= (str.len x) 5))
        (check-sat)|}
  in
  check (Alcotest.list Alcotest.string) "sat" [ "sat" ] out

let test_interp_includes_position () =
  let out =
    run
      {|(declare-const i Int)
        (assert (= i (str.indexof "hello world" "world" 0)))
        (check-sat)
        (get-value (i))|}
  in
  check (Alcotest.list Alcotest.string) "position 6" [ "sat"; "((i 6))" ] out

let test_interp_includes_absent () =
  let out =
    run
      {|(declare-const i Int)
        (assert (= i (str.indexof "hello" "zz" 0)))
        (check-sat)
        (get-value (i))|}
  in
  check (Alcotest.list Alcotest.string) "minus one" [ "sat"; "((i (- 1)))" ] out

let test_interp_get_model () =
  let out = run {|(declare-const x String)(assert (= x "ab"))(check-sat)(get-model)|} in
  check Alcotest.bool "has define-fun" true
    (List.exists
       (fun line ->
         let line = String.trim line in
         String.length line > 11 && String.sub line 0 11 = "(define-fun")
       out)

let test_interp_model_verified_classically () =
  (* a deliberately broken sampler cannot make the interpreter lie *)
  let bad =
    Qsmt_anneal.Sampler.make ~name:"bad" (fun q ->
        Qsmt_anneal.Sampleset.of_bits q [ Qsmt_util.Bitvec.create (Qsmt_qubo.Qubo.num_vars q) ])
  in
  (* absint off: with it on, string equality is decided (and verified)
     before the sampler could ever lie *)
  let out =
    ok_exn
      (Interp.run_string ~sampler:bad ~absint:`Off
         {|(declare-const x String)(assert (= x "zz"))(check-sat)|})
  in
  check (Alcotest.list Alcotest.string) "unknown, not a wrong sat" [ "unknown" ] out

let test_interp_unsupported_is_unknown () =
  let out =
    run {|(declare-const x String)(declare-const y String)(assert (= x y))(check-sat)|}
  in
  check (Alcotest.list Alcotest.string) "unknown" [ "unknown" ] out

let test_interp_echo_exit () =
  let out = run {|(echo "hello")(exit)(echo "not printed")|} in
  check (Alcotest.list Alcotest.string) "echo then stop" [ "hello" ] out

let test_interp_get_model_before_check () =
  match Interp.run_string "(get-model)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "get-model without check-sat should error"

let test_interp_palindrome_script () =
  let st = Interp.create () in
  let commands =
    parse_script
      {|(declare-const x String)(assert (str.palindrome x))(assert (= (str.len x) 4))(check-sat)|}
  in
  let out = ok_exn (Interp.run_script st commands) in
  check (Alcotest.list Alcotest.string) "sat" [ "sat" ] out;
  match Interp.model st with
  | Some [ ("x", Eval.V_str s) ] ->
    check Alcotest.int "length 4" 4 (String.length s);
    check Alcotest.bool "palindrome" true (Qsmt_strtheory.Semantics.is_palindrome s)
  | _ -> Alcotest.fail "expected a model for x"


let test_interp_push_pop () =
  let out =
    run
      {|(declare-const x String)
        (assert (= x "ab"))
        (check-sat)
        (push)
        (assert (= x "cd"))
        (check-sat)
        (pop)
        (check-sat)|}
  in
  check (Alcotest.list Alcotest.string) "sat/unsat/sat" [ "sat"; "unsat"; "sat" ] out

let test_interp_pop_without_push () =
  match Interp.run_string "(pop)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pop without push should error"

let test_compile_joint_conjunction () =
  match
    ok_exn
      (compile_script
         {|(declare-const x String)
           (assert (str.palindrome x))
           (assert (str.contains x "aa"))
           (assert (= (str.len x) 4))|})
  with
  | Compile.Generate_joint { var = "x"; conjuncts } ->
    check Alcotest.int "two conjuncts" 2 (List.length conjuncts)
  | _ -> Alcotest.fail "expected Generate_joint"

let test_interp_joint_script () =
  let st = Interp.create () in
  let commands =
    parse_script
      {|(declare-const x String)
        (assert (str.palindrome x))
        (assert (= (str.indexof x "ab" 0) 0))
        (assert (= (str.len x) 4))
        (check-sat)|}
  in
  let out = ok_exn (Interp.run_script st commands) in
  check (Alcotest.list Alcotest.string) "sat" [ "sat" ] out;
  match Interp.model st with
  | Some [ ("x", Eval.V_str s) ] -> check Alcotest.string "abba" "abba" s
  | _ -> Alcotest.fail "expected model for x"


(* ------------------------------------------------------------------ *)
(* DNF expansion and boolean structure *)

let atom name = Ast.App ("=", [ Ast.Var name; Ast.Str "v" ])

let test_dnf_plain_conjunction () =
  match ok_exn (Dnf.expand [ atom "a"; atom "b" ]) with
  | [ cube ] -> check Alcotest.int "one cube, two literals" 2 (List.length cube)
  | cubes -> Alcotest.failf "expected 1 cube, got %d" (List.length cubes)

let test_dnf_disjunction_splits () =
  match ok_exn (Dnf.expand [ Ast.App ("or", [ atom "a"; atom "b" ]) ]) with
  | [ _; _ ] -> ()
  | cubes -> Alcotest.failf "expected 2 cubes, got %d" (List.length cubes)

let test_dnf_distribution () =
  (* (a or b) and (c or d) -> 4 cubes *)
  let f = [ Ast.App ("or", [ atom "a"; atom "b" ]); Ast.App ("or", [ atom "c"; atom "d" ]) ] in
  check Alcotest.int "4 cubes" 4 (List.length (ok_exn (Dnf.expand f)))

let test_dnf_de_morgan () =
  (* not (a and b) -> (not a) or (not b): 2 cubes of negative literals *)
  match ok_exn (Dnf.expand [ Ast.App ("not", [ Ast.App ("and", [ atom "a"; atom "b" ]) ]) ]) with
  | [ [ l1 ]; [ l2 ] ] ->
    check Alcotest.bool "both negative" true (not l1.Dnf.positive && not l2.Dnf.positive)
  | _ -> Alcotest.fail "expected two singleton cubes"

let test_dnf_double_negation () =
  match ok_exn (Dnf.expand [ Ast.App ("not", [ Ast.App ("not", [ atom "a" ]) ]) ]) with
  | [ [ l ] ] -> check Alcotest.bool "positive" true l.Dnf.positive
  | _ -> Alcotest.fail "expected one positive literal"

let test_dnf_true_false () =
  check Alcotest.int "true -> one empty cube" 1 (List.length (ok_exn (Dnf.expand [ Ast.Bool true ])));
  check Alcotest.int "false -> no cubes" 0 (List.length (ok_exn (Dnf.expand [ Ast.Bool false ])))

let test_dnf_budget () =
  (* 2^8 = 256 cubes exceeds the default 64 budget *)
  let big = List.init 8 (fun i -> Ast.App ("or", [ atom (Printf.sprintf "a%d" i); atom (Printf.sprintf "b%d" i) ])) in
  match Dnf.expand big with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected budget error"

let test_dnf_dedup () =
  let f = [ Ast.App ("or", [ atom "a"; atom "a" ]) ] in
  check Alcotest.int "deduplicated" 1 (List.length (ok_exn (Dnf.expand f)))

let test_interp_disjunction () =
  let out =
    run {|(declare-const x String)(assert (or (= x "cat") (= x "dog")))(check-sat)(get-value (x))|}
  in
  check Alcotest.string "sat" "sat" (List.hd out);
  check Alcotest.bool "model is cat or dog" true
    (List.nth out 1 = {|((x "cat"))|} || List.nth out 1 = {|((x "dog"))|})

let test_interp_disjunction_with_negation () =
  let out =
    run
      {|(declare-const x String)
        (assert (or (= x "a") (= x "b")))
        (assert (not (= x "a")))
        (check-sat)
        (get-value (x))|}
  in
  check (Alcotest.list Alcotest.string) "sat b" [ "sat"; {|((x "b"))|} ] out

let test_interp_disjunction_unsat () =
  let out =
    run
      {|(declare-const x String)
        (assert (or (= x "a") (= x "b")))
        (assert (and (not (= x "a")) (not (= x "b"))))
        (check-sat)|}
  in
  check (Alcotest.list Alcotest.string) "unsat" [ "unsat" ] out

let test_interp_disjoint_lengths () =
  (* two length branches: either a 2-char palindrome or exactly "xyz" *)
  let out =
    run
      {|(declare-const x String)
        (assert (or (= x "xyz") (and (str.palindrome x) (= (str.len x) 2))))
        (check-sat)|}
  in
  check (Alcotest.list Alcotest.string) "sat" [ "sat" ] out


let test_interp_re_loop () =
  let out =
    run
      {|(declare-const x String)
        (assert (str.in_re x (re.++ (str.to_re "a") ((_ re.loop 2 3) (re.range "b" "c")))))
        (assert (= (str.len x) 3))
        (check-sat)|}
  in
  check (Alcotest.list Alcotest.string) "sat" [ "sat" ] out

let test_interp_str_at () =
  let st = Interp.create () in
  let commands =
    parse_script
      {|(declare-const x String)
        (assert (= (str.at x 1) "q"))
        (assert (= (str.len x) 3))
        (check-sat)|}
  in
  let out = ok_exn (Interp.run_script st commands) in
  check (Alcotest.list Alcotest.string) "sat" [ "sat" ] out;
  match Interp.model st with
  | Some [ ("x", Eval.V_str s) ] -> check Alcotest.char "q at 1" 'q' s.[1]
  | _ -> Alcotest.fail "expected model"

let test_interp_str_substr () =
  let st = Interp.create () in
  let commands =
    parse_script
      {|(declare-const x String)
        (assert (= (str.substr x 2 2) "zz"))
        (assert (= (str.len x) 5))
        (check-sat)|}
  in
  let out = ok_exn (Interp.run_script st commands) in
  check (Alcotest.list Alcotest.string) "sat" [ "sat" ] out;
  match Interp.model st with
  | Some [ ("x", Eval.V_str s) ] -> check Alcotest.string "zz at 2" "zz" (String.sub s 2 2)
  | _ -> Alcotest.fail "expected model"

let test_interp_str_at_out_of_range_unsat () =
  let out =
    run
      {|(declare-const x String)
        (assert (= (str.at x 5) "q"))
        (assert (= (str.len x) 3))
        (check-sat)|}
  in
  check (Alcotest.list Alcotest.string) "unsat" [ "unsat" ] out

let test_interp_prefix_suffix_eval () =
  check Alcotest.bool "prefixof eval" true
    (ok_exn (Eval.term (Ast.App ("str.prefixof", [ Ast.Str "he"; Ast.Str "hello" ])))
    = Eval.V_bool true);
  check Alcotest.bool "suffixof eval" true
    (ok_exn (Eval.term (Ast.App ("str.suffixof", [ Ast.Str "lo"; Ast.Str "hello" ])))
    = Eval.V_bool true)

let () =
  Alcotest.run "qsmt_smtlib"
    [
      ( "sexp",
        [
          Alcotest.test_case "atoms/lists" `Quick test_sexp_atoms_lists;
          Alcotest.test_case "strings" `Quick test_sexp_strings;
          Alcotest.test_case "comments" `Quick test_sexp_comments;
          Alcotest.test_case "quoted symbol" `Quick test_sexp_quoted_symbol;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
          Alcotest.test_case "roundtrip" `Quick test_sexp_roundtrip;
        ] );
      ( "parser",
        [
          Alcotest.test_case "declare" `Quick test_parse_declare;
          Alcotest.test_case "declare-fun" `Quick test_parse_declare_fun;
          Alcotest.test_case "assert app" `Quick test_parse_assert_app;
          Alcotest.test_case "negative int" `Quick test_parse_negative_int;
          Alcotest.test_case "unknown command" `Quick test_parse_unknown_command;
          Alcotest.test_case "push/pop" `Quick test_parse_push_pop;
          Alcotest.test_case "unknown sort" `Quick test_parse_unknown_sort;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "operator sorts" `Quick test_typecheck_ops;
          Alcotest.test_case "errors" `Quick test_typecheck_errors;
          Alcotest.test_case "redeclare" `Quick test_typecheck_redeclare;
          Alcotest.test_case "assertion bool" `Quick test_typecheck_assertion_must_be_bool;
        ] );
      ( "eval",
        [
          Alcotest.test_case "string ops" `Quick test_eval_string_ops;
          Alcotest.test_case "bool ops" `Quick test_eval_bool_ops;
          Alcotest.test_case "model lookup" `Quick test_eval_model;
          Alcotest.test_case "free var" `Quick test_eval_free_var_error;
          Alcotest.test_case "regex terms" `Quick test_eval_regex;
          Alcotest.test_case "in_re" `Quick test_eval_in_re;
        ] );
      ( "compile",
        [
          Alcotest.test_case "equality" `Quick test_compile_equality;
          Alcotest.test_case "ground concat folds" `Quick test_compile_ground_concat_folds;
          Alcotest.test_case "contains+length" `Quick test_compile_contains_with_length;
          Alcotest.test_case "contains needs length" `Quick
            test_compile_contains_without_length_unsupported;
          Alcotest.test_case "regex" `Quick test_compile_regex;
          Alcotest.test_case "regex infeasible length" `Quick
            test_compile_regex_infeasible_length_unsat;
          Alcotest.test_case "indexof forced" `Quick test_compile_indexof_forced;
          Alcotest.test_case "includes" `Quick test_compile_includes;
          Alcotest.test_case "includes absent" `Quick test_compile_includes_absent_is_solved;
          Alcotest.test_case "palindrome" `Quick test_compile_palindrome;
          Alcotest.test_case "length only" `Quick test_compile_length_only;
          Alcotest.test_case "ground truths" `Quick test_compile_ground_truths;
          Alcotest.test_case "contradictory equalities" `Quick
            test_compile_contradictory_equalities;
          Alcotest.test_case "equality checks facts" `Quick test_compile_eq_checks_other_facts;
          Alcotest.test_case "two unknowns" `Quick test_compile_two_unknowns_unsupported;
        ] );
      ( "dnf",
        [
          Alcotest.test_case "conjunction" `Quick test_dnf_plain_conjunction;
          Alcotest.test_case "disjunction" `Quick test_dnf_disjunction_splits;
          Alcotest.test_case "distribution" `Quick test_dnf_distribution;
          Alcotest.test_case "de morgan" `Quick test_dnf_de_morgan;
          Alcotest.test_case "double negation" `Quick test_dnf_double_negation;
          Alcotest.test_case "true/false" `Quick test_dnf_true_false;
          Alcotest.test_case "budget" `Quick test_dnf_budget;
          Alcotest.test_case "dedup" `Quick test_dnf_dedup;
          Alcotest.test_case "interp or" `Quick test_interp_disjunction;
          Alcotest.test_case "interp or + not" `Quick test_interp_disjunction_with_negation;
          Alcotest.test_case "interp or unsat" `Quick test_interp_disjunction_unsat;
          Alcotest.test_case "interp disjoint lengths" `Quick test_interp_disjoint_lengths;
        ] );
      ( "interp",
        [
          Alcotest.test_case "sat + get-value" `Quick test_interp_sat_model;
          Alcotest.test_case "unsat" `Quick test_interp_unsat;
          Alcotest.test_case "regex generation" `Quick test_interp_regex_generation;
          Alcotest.test_case "includes position" `Quick test_interp_includes_position;
          Alcotest.test_case "includes absent" `Quick test_interp_includes_absent;
          Alcotest.test_case "get-model" `Quick test_interp_get_model;
          Alcotest.test_case "model verified classically" `Quick
            test_interp_model_verified_classically;
          Alcotest.test_case "unsupported = unknown" `Quick test_interp_unsupported_is_unknown;
          Alcotest.test_case "echo/exit" `Quick test_interp_echo_exit;
          Alcotest.test_case "get-model before check" `Quick test_interp_get_model_before_check;
          Alcotest.test_case "palindrome script" `Quick test_interp_palindrome_script;
          Alcotest.test_case "push/pop" `Quick test_interp_push_pop;
          Alcotest.test_case "pop without push" `Quick test_interp_pop_without_push;
          Alcotest.test_case "joint compile" `Quick test_compile_joint_conjunction;
          Alcotest.test_case "joint script" `Quick test_interp_joint_script;
          Alcotest.test_case "re.loop" `Quick test_interp_re_loop;
          Alcotest.test_case "str.at" `Quick test_interp_str_at;
          Alcotest.test_case "str.substr" `Quick test_interp_str_substr;
          Alcotest.test_case "str.at out of range" `Quick test_interp_str_at_out_of_range_unsat;
          Alcotest.test_case "prefix/suffix eval" `Quick test_interp_prefix_suffix_eval;
        ] );
    ]
