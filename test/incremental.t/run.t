The incremental REPL end to end. One interpreter state (and therefore
one incremental solver session) lives across commands; the default
sampler is seeded, so outputs are byte-stable.

push/pop and check-sat-assuming against the annealing backend — the
assumption is scoped to its check, and popping the length constraint
returns the bare palindrome to unknown (no common length to compile):

  $ ../../bin/qsmt.exe repl <<'EOF'
  > (declare-const x String)
  > (assert (str.palindrome x))
  > (push)
  > (assert (= (str.len x) 4))
  > (check-sat)
  > (get-value ((str.len x)))
  > (pop)
  > (check-sat-assuming ((= (str.len x) 2)))
  > (check-sat)
  > EOF
  sat
  (((str.len x) 4))
  sat
  unknown

The classical backend keeps its learned clauses across checks and its
unsat answers are proofs; retracting the extra conjunct by pop restores
sat:

  $ ../../bin/qsmt.exe repl --sampler classical <<'EOF'
  > (declare-const x String)
  > (assert (str.palindrome x))
  > (assert (= (str.len x) 4))
  > (assert (str.contains x "ab"))
  > (check-sat)
  > (get-model)
  > (push)
  > (assert (str.contains x "bb"))
  > (check-sat)
  > (pop)
  > (check-sat)
  > (exit)
  > EOF
  sat
  (
    (define-fun x () String "baab")
  )
  sat
  sat

A two-character palindrome cannot contain "ab": the classical backend
refutes it, and the session keeps going after the unsat:

  $ ../../bin/qsmt.exe repl --sampler classical <<'EOF'
  > (declare-const x String)
  > (assert (str.palindrome x))
  > (assert (= (str.len x) 2))
  > (check-sat-assuming ((str.contains x "ab")))
  > (check-sat)
  > EOF
  unsat
  sat

Errors are reported in-band and the session recovers instead of
aborting (unlike `qsmt run`):

  $ ../../bin/qsmt.exe repl <<'EOF'
  > (declare-const x String)
  > (bogus)
  > (assert (= x "hi"))
  > (check-sat)
  > EOF
  (error "unsupported command bogus")
  sat

Unbalanced input at end of stream is a hard error (exit 2):

  $ echo '(declare-const x String' | ../../bin/qsmt.exe repl
  qsmt: unbalanced input at end of stream
  [2]
