(* Tests for qsmt_strtheory: every operation's encoding against the
   paper's specification, decode/verify semantics, the solver end to end,
   and the sequential pipeline (§4.12). Exact ground states are checked
   with the exhaustive solver where sizes permit; larger problems use the
   SA sampler, whose determinism (fixed seed) keeps these tests stable. *)

module Bitvec = Qsmt_util.Bitvec
module Ascii7 = Qsmt_util.Ascii7
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Exact = Qsmt_anneal.Exact
module Sa = Qsmt_anneal.Sa
module Sampleset = Qsmt_anneal.Sampleset
module Sampler = Qsmt_anneal.Sampler
module Params = Qsmt_strtheory.Params
module Semantics = Qsmt_strtheory.Semantics
module Constr = Qsmt_strtheory.Constr
module Encode = Qsmt_strtheory.Encode
module Compile = Qsmt_strtheory.Compile
module Solver = Qsmt_strtheory.Solver
module Pipeline = Qsmt_strtheory.Pipeline
module Op_equality = Qsmt_strtheory.Op_equality
module Op_substring = Qsmt_strtheory.Op_substring
module Op_includes = Qsmt_strtheory.Op_includes
module Op_indexof = Qsmt_strtheory.Op_indexof
module Op_length = Qsmt_strtheory.Op_length
module Op_palindrome = Qsmt_strtheory.Op_palindrome
module Op_regex = Qsmt_strtheory.Op_regex
module Joint = Qsmt_strtheory.Joint
module Workload = Qsmt_strtheory.Workload
module Smtgen = Qsmt_strtheory.Smtgen
module Rparser = Qsmt_regex.Parser

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let sampler = Solver.default_sampler ~seed:0

(* The pipelines below are all string-valued, so an [Error] (positional
   decode blocking a stage) would be a solver bug. *)
let solve_pipeline_ok ?sampler p =
  match Solver.solve_pipeline ?sampler p with
  | Ok outcomes -> outcomes
  | Error { Solver.stage_index; _ } ->
    Alcotest.failf "pipeline unexpectedly blocked at stage %d" stage_index

(* Decode the unique/first exact ground state of a constraint's QUBO.
   Only usable when num_vars <= Exact.max_vars. *)
let exact_ground constr =
  let q = Compile.to_qubo constr in
  let states, energy = Exact.ground_states q in
  (states, energy)

let gen_short_lowercase = QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 97 122)) (int_range 1 4))

(* ------------------------------------------------------------------ *)
(* Params / semantics *)

let test_params_validate () =
  (match Params.validate Params.default with
  | Ok () -> ()
  | Error inv -> Alcotest.failf "default rejected: %s" (Params.invalid_message inv));
  let expect_invalid label params field reason =
    match Params.validate params with
    | Ok () -> Alcotest.failf "%s should be rejected" label
    | Error inv ->
      check Alcotest.string (label ^ " field") field inv.Params.field;
      check Alcotest.bool (label ^ " reason") true (inv.Params.reason = reason)
  in
  expect_invalid "a = 0" { Params.default with Params.a = 0. } "a" Params.Nonpositive;
  expect_invalid "soft < 0" { Params.default with Params.soft_scale = -0.1 } "soft_scale"
    Params.Nonpositive;
  (* infinity passes a bare "positive" check — the typed validator must
     classify it (and nan, which fails *both* float comparisons) as
     Not_finite rather than letting them through to the encoders. *)
  expect_invalid "b = inf" { Params.default with Params.includes_b = infinity } "includes_b"
    Params.Not_finite;
  expect_invalid "strong = nan" { Params.default with Params.strong_scale = Float.nan }
    "strong_scale" Params.Not_finite;
  (match Params.validate { Params.default with Params.includes_d = Float.nan } with
  | Error inv ->
    check Alcotest.string "message mentions field" "Params.includes_d must be finite, got nan"
      (Params.invalid_message inv)
  | Ok () -> Alcotest.fail "d = nan should be rejected")

let test_semantics () =
  check Alcotest.string "reverse" "olleh" (Semantics.reverse "hello");
  check Alcotest.string "replace_all" "hexxo" (Semantics.replace_all "hello" ~find:'l' ~replace:'x');
  check Alcotest.string "replace_first" "hexlo"
    (Semantics.replace_first "hello" ~find:'l' ~replace:'x');
  check Alcotest.string "replace_first no match" "hello"
    (Semantics.replace_first "hello" ~find:'z' ~replace:'x');
  check Alcotest.bool "contains" true (Semantics.contains "hello" ~sub:"ell");
  check Alcotest.bool "contains empty" true (Semantics.contains "x" ~sub:"");
  check (Alcotest.option Alcotest.int) "index_of" (Some 2) (Semantics.index_of "hello" ~sub:"ll");
  check (Alcotest.option Alcotest.int) "index_of missing" None (Semantics.index_of "hello" ~sub:"z");
  check Alcotest.bool "occurs_at" true (Semantics.occurs_at "hello" ~sub:"ell" 1);
  check Alcotest.bool "occurs_at wrong" false (Semantics.occurs_at "hello" ~sub:"ell" 2);
  check Alcotest.bool "palindrome even" true (Semantics.is_palindrome "abba");
  check Alcotest.bool "palindrome odd" true (Semantics.is_palindrome "gobog");
  check Alcotest.bool "not palindrome" false (Semantics.is_palindrome "abc");
  check Alcotest.bool "empty palindrome" true (Semantics.is_palindrome "")

(* ------------------------------------------------------------------ *)
(* §4.1 equality *)

let test_equality_matrix_shape () =
  (* the paper's example: 'a' = 1100001 -> diagonal [-A,-A,+A,+A,+A,+A,-A] *)
  let q = Op_equality.encode "a" in
  check Alcotest.int "7 vars" 7 (Qubo.num_vars q);
  check Alcotest.int "diagonal only" 0 (Qubo.num_interactions q);
  let expected = [ -1.; -1.; 1.; 1.; 1.; 1.; -1. ] in
  check (Alcotest.list (Alcotest.float 0.)) "paper diagonal" expected
    (List.init 7 (Qubo.linear q))

let test_equality_ground_state () =
  let states, energy = exact_ground (Constr.Equals "ab") in
  check Alcotest.int "unique" 1 (List.length states);
  check Alcotest.string "decodes to target" "ab" (Ascii7.decode (List.hd states));
  check (Alcotest.float 1e-9) "zero ground energy" 0. energy

let test_equality_strength_scales () =
  let params = { Params.default with Params.a = 3. } in
  let q = Op_equality.encode ~params "a" in
  check (Alcotest.float 0.) "scaled" (-3.) (Qubo.linear q 0)

let prop_equality_ground_is_target =
  qtest ~count:25 "equality ground state = target" gen_short_lowercase (fun s ->
      let states, energy = exact_ground (Constr.Equals (String.sub s 0 (min 3 (String.length s)))) in
      let target = String.sub s 0 (min 3 (String.length s)) in
      List.length states = 1
      && Ascii7.decode (List.hd states) = target
      && Float.abs energy < 1e-9)

(* ------------------------------------------------------------------ *)
(* §4.2 concat *)

let test_concat_encoding () =
  let q = Compile.to_qubo (Constr.Concat [ "ab"; "c" ]) in
  let q' = Compile.to_qubo (Constr.Equals "abc") in
  check Alcotest.bool "same as equality on the concatenation" true (Qubo.equal q q')

let test_concat_solve () =
  let outcome = Solver.solve ~sampler (Constr.Concat [ "hi"; " "; "yo" ]) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  check Alcotest.bool "value" true (outcome.Solver.value = Constr.Str "hi yo")

(* ------------------------------------------------------------------ *)
(* §4.3 substring matching (overwrite semantics) *)

let test_substring_paper_ccat () =
  check (Alcotest.option Alcotest.string) "paper example" (Some "ccat")
    (Op_substring.encoded_target ~length:4 ~substring:"cat");
  (* encoded QUBO should equal equality against "ccat" *)
  let q = Op_substring.encode ~length:4 ~substring:"cat" () in
  let eq = Op_equality.encode "ccat" in
  check Alcotest.bool "diagonals match" true
    (List.init (Qubo.num_vars q) (Qubo.linear q) = List.init (Qubo.num_vars eq) (Qubo.linear eq))

let test_substring_exact_fit () =
  (* length = |substring|: only one position, no overwriting *)
  check (Alcotest.option Alcotest.string) "exact" (Some "cat")
    (Op_substring.encoded_target ~length:3 ~substring:"cat")

let test_substring_solve_verifies () =
  let outcome = Solver.solve ~sampler (Constr.Contains { length = 4; substring = "cat" }) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  match outcome.Solver.value with
  | Constr.Str s ->
    check Alcotest.int "length 4" 4 (String.length s);
    check Alcotest.bool "contains cat" true (Semantics.contains s ~sub:"cat")
  | Constr.Pos _ -> Alcotest.fail "expected a string"

let test_substring_sum_variant_differs () =
  let over = Op_substring.encode ~combine:Encode.Overwrite ~length:4 ~substring:"cat" () in
  let sum = Op_substring.encode ~combine:Encode.Sum ~length:4 ~substring:"cat" () in
  check Alcotest.bool "different encodings" false (Qubo.equal over sum)

let test_substring_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Op_substring: empty substring") (fun () ->
      ignore (Op_substring.encode ~length:3 ~substring:"" ()));
  Alcotest.check_raises "too long"
    (Invalid_argument "Op_substring: substring longer than the string") (fun () ->
      ignore (Op_substring.encode ~length:2 ~substring:"cat" ()))

(* ------------------------------------------------------------------ *)
(* §4.4 includes *)

let test_includes_match_count () =
  check Alcotest.int "full match" 3 (Op_includes.match_count ~haystack:"xcatx" ~needle:"cat" ~at:1);
  check Alcotest.int "partial" 1 (Op_includes.match_count ~haystack:"xcatx" ~needle:"cxz" ~at:1);
  check Alcotest.int "none" 0 (Op_includes.match_count ~haystack:"xyz" ~needle:"ab" ~at:0)

let test_includes_ground_is_first_match () =
  (* "abcabc" contains "abc" at 0 and 3; ground state must pick 0 *)
  let q = Op_includes.encode ~haystack:"abcabc" ~needle:"abc" () in
  check Alcotest.int "4 position vars" 4 (Qubo.num_vars q);
  let states, _ = Exact.ground_states q in
  check Alcotest.int "unique ground" 1 (List.length states);
  check (Alcotest.option Alcotest.int) "first match" (Some 0)
    (Op_includes.decode (List.hd states))

let test_includes_later_match_only () =
  let q = Op_includes.encode ~haystack:"xxcat" ~needle:"cat" () in
  let states, _ = Exact.ground_states q in
  check (Alcotest.option Alcotest.int) "position 2" (Some 2)
    (Op_includes.decode (List.hd states))

let test_includes_one_hot_enforced () =
  let q = Op_includes.encode ~haystack:"aaaa" ~needle:"aa" () in
  (* three full matches at 0,1,2; ground must be exactly one bit: the first *)
  let states, _ = Exact.ground_states q in
  List.iter
    (fun s -> check Alcotest.int "exactly one bit" 1 (Bitvec.popcount s))
    states;
  check (Alcotest.option Alcotest.int) "first" (Some 0) (Op_includes.decode (List.hd states))

let test_includes_solve () =
  let outcome = Solver.solve ~sampler (Constr.Includes { haystack = "hello world"; needle = "wor" }) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  check Alcotest.bool "position 6" true (outcome.Solver.value = Constr.Pos (Some 6))

let test_includes_decode_empty () =
  check (Alcotest.option Alcotest.int) "no bit set" None (Op_includes.decode (Bitvec.create 3))

let test_includes_validation () =
  Alcotest.check_raises "empty needle" (Invalid_argument "Op_includes: empty needle") (fun () ->
      ignore (Op_includes.encode ~haystack:"abc" ~needle:"" ()));
  Alcotest.check_raises "too long" (Invalid_argument "Op_includes: needle longer than haystack")
    (fun () -> ignore (Op_includes.encode ~haystack:"ab" ~needle:"abc" ()))

(* ------------------------------------------------------------------ *)
(* §4.5 indexOf *)

let test_indexof_strong_positions () =
  let q = Op_indexof.encode ~length:4 ~substring:"hi" ~index:1 () in
  check Alcotest.int "28 vars" 28 (Qubo.num_vars q);
  (* 'h' = 1101000: first bit of char 1 (var 7) should be -2A *)
  check (Alcotest.float 0.) "strong bit" (-2.) (Qubo.linear q 7);
  (* char 0 is soft: bit 0 biased to 1 at 0.1 A *)
  check (Alcotest.float 1e-12) "soft bit" (-0.1) (Qubo.linear q 0)

let test_indexof_solve () =
  let outcome = Solver.solve ~sampler (Constr.Index_of { length = 6; substring = "hi"; index = 2 }) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  match outcome.Solver.value with
  | Constr.Str s ->
    check Alcotest.int "length" 6 (String.length s);
    check Alcotest.string "hi at 2" "hi" (String.sub s 2 2)
  | Constr.Pos _ -> Alcotest.fail "expected string"

let test_indexof_validation () =
  Alcotest.check_raises "does not fit"
    (Invalid_argument "Op_indexof: substring does not fit at index") (fun () ->
      ignore (Op_indexof.encode ~length:3 ~substring:"hi" ~index:2 ()))

(* ------------------------------------------------------------------ *)
(* §4.6 length (paper's unary bit semantics) *)

let test_length_matrix () =
  let q = Op_length.encode ~num_chars:2 ~target_length:1 () in
  check Alcotest.int "14 vars" 14 (Qubo.num_vars q);
  check (Alcotest.float 0.) "first block -A" (-1.) (Qubo.linear q 6);
  check (Alcotest.float 0.) "second block +A" 1. (Qubo.linear q 7)

let test_length_ground_state () =
  let states, energy = exact_ground (Constr.Has_length { num_chars = 2; target_length = 1 }) in
  check Alcotest.int "unique" 1 (List.length states);
  check (Alcotest.float 1e-9) "zero energy" 0. energy;
  let s = List.hd states in
  for i = 0 to 6 do
    check Alcotest.bool "prefix set" true (Bitvec.get s i)
  done;
  for i = 7 to 13 do
    check Alcotest.bool "suffix clear" false (Bitvec.get s i)
  done

let test_length_verify () =
  let c = Constr.Has_length { num_chars = 2; target_length = 1 } in
  check Alcotest.bool "DEL+NUL verifies" true (Constr.verify c (Constr.Str "\127\000"));
  check Alcotest.bool "other strings fail" false (Constr.verify c (Constr.Str "a\000"))

let test_length_solve () =
  let outcome = Solver.solve ~sampler (Constr.Has_length { num_chars = 3; target_length = 2 }) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied

(* ------------------------------------------------------------------ *)
(* §4.7 / §4.8 replace *)

let test_replace_all_matches_equality_of_result () =
  let q = Compile.to_qubo (Constr.Replace_all { source = "hello"; find = 'l'; replace = 'x' }) in
  let eq = Compile.to_qubo (Constr.Equals "hexxo") in
  check Alcotest.bool "same encoding" true (Qubo.equal q eq)

let test_replace_first_encoding () =
  let q = Compile.to_qubo (Constr.Replace_first { source = "hello"; find = 'l'; replace = 'x' }) in
  let eq = Compile.to_qubo (Constr.Equals "hexlo") in
  check Alcotest.bool "same encoding" true (Qubo.equal q eq)

let test_replace_solve () =
  let outcome =
    Solver.solve ~sampler (Constr.Replace_all { source = "hello"; find = 'l'; replace = 'x' })
  in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  check Alcotest.bool "value" true (outcome.Solver.value = Constr.Str "hexxo")

(* ------------------------------------------------------------------ *)
(* §4.9 reverse *)

let test_reverse_ground () =
  let states, _ = exact_ground (Constr.Reverse "hi") in
  check Alcotest.string "reversed" "ih" (Ascii7.decode (List.hd states))

let test_reverse_solve () =
  let outcome = Solver.solve ~sampler (Constr.Reverse "hello") in
  check Alcotest.bool "value" true (outcome.Solver.value = Constr.Str "olleh")

(* ------------------------------------------------------------------ *)
(* §4.10 palindrome *)

let test_palindrome_matrix () =
  (* length 2: 7 mirrored pairs, each +A diag / -2A coupler *)
  let q = Op_palindrome.encode ~length:2 () in
  check Alcotest.int "14 vars" 14 (Qubo.num_vars q);
  check Alcotest.int "7 couplers" 7 (Qubo.num_interactions q);
  check (Alcotest.float 0.) "diag" 1. (Qubo.linear q 0);
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.float 0.)))
    "coupler values"
    (List.init 7 (fun i -> (i, i + 7, -2.)))
    (Qubo.quadratic q)

let test_palindrome_energy_zero_iff_mirrored () =
  let q = Op_palindrome.encode ~length:2 () in
  let mirrored = Ascii7.encode "aa" and broken = Ascii7.encode "ab" in
  check (Alcotest.float 1e-12) "mirrored zero" 0. (Qubo.energy q mirrored);
  check Alcotest.bool "broken positive" true (Qubo.energy q broken > 0.)

let test_palindrome_solve () =
  let outcome = Solver.solve ~sampler (Constr.Palindrome { length = 6 }) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  match outcome.Solver.value with
  | Constr.Str s ->
    check Alcotest.int "length" 6 (String.length s);
    check Alcotest.bool "palindrome" true (Semantics.is_palindrome s)
  | Constr.Pos _ -> Alcotest.fail "expected string"

let test_palindrome_odd_middle_free () =
  (* length 3: middle char has no entries *)
  let q = Op_palindrome.encode ~length:3 () in
  for bit = 7 to 13 do
    check (Alcotest.float 0.) "middle unconstrained" 0. (Qubo.linear q bit);
    check Alcotest.int "no couplers on middle" 0 (Qubo.degree q bit)
  done

let test_palindrome_printable_bias () =
  let q = Op_palindrome.encode ~printable_bias:0.05 ~length:2 () in
  (* bias adds -0.05 on bits 0 and 1 of each char on top of +A diag *)
  check (Alcotest.float 1e-12) "biased diag" 0.95 (Qubo.linear q 0)

let prop_palindrome_ground_states_are_palindromes =
  qtest ~count:20 "random mirrored strings have zero energy"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 0 10_000))
    (fun (half, seed) ->
      let rng = Prng.create seed in
      let left = Prng.string_printable rng half in
      let s = left ^ Semantics.reverse left in
      let q = Op_palindrome.encode ~length:(String.length s) () in
      Float.abs (Qubo.energy q (Ascii7.encode s)) < 1e-9)

(* ------------------------------------------------------------------ *)
(* §4.11 regex *)

let test_regex_literal_positions () =
  let pattern = Rparser.parse_exn "ab" in
  let q = Op_regex.encode_exn ~pattern ~length:2 () in
  let eq = Op_equality.encode "ab" in
  check Alcotest.bool "literal pattern = equality diagonal" true
    (List.init 14 (Qubo.linear q) = List.init 14 (Qubo.linear eq))

let test_regex_class_shared_preference () =
  (* [bc]: b = 1100010, c = 1100011 -> bits 0,1,5 forced 1 at -A, bits
     2,3,4 forced 0 at +A, bit 6 cancels to 0 *)
  let pattern = Rparser.parse_exn "[bc]" in
  let q = Op_regex.encode_exn ~pattern ~length:1 () in
  check (Alcotest.float 1e-12) "bit0" (-1.) (Qubo.linear q 0);
  check (Alcotest.float 1e-12) "bit5" (-1.) (Qubo.linear q 5);
  check (Alcotest.float 1e-12) "bit2" 1. (Qubo.linear q 2);
  check (Alcotest.float 1e-12) "bit6 cancels" 0. (Qubo.linear q 6)

let test_regex_class_ground_states_are_members () =
  let pattern = Rparser.parse_exn "[bc]" in
  let q = Op_regex.encode_exn ~pattern ~length:1 () in
  let states, _ = Exact.ground_states q in
  let decoded = List.map Ascii7.decode states |> List.sort_uniq compare in
  check (Alcotest.list Alcotest.string) "exactly b and c" [ "b"; "c" ] decoded

let test_regex_solve_paper_example () =
  let pattern = Rparser.parse_exn "a[bc]+" in
  let outcome = Solver.solve ~sampler (Constr.Regex { pattern; length = 5 }) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  match outcome.Solver.value with
  | Constr.Str s ->
    check Alcotest.char "starts with a" 'a' s.[0];
    String.iter (fun c -> if not (List.mem c [ 'b'; 'c' ]) then Alcotest.failf "bad char %C" c)
      (String.sub s 1 4)
  | Constr.Pos _ -> Alcotest.fail "expected string"

let test_regex_encode_errors () =
  let pattern = Rparser.parse_exn "ab|c" in
  (match Op_regex.encode ~pattern ~length:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "alternation should fail");
  let pattern = Rparser.parse_exn "abc" in
  match Op_regex.encode ~pattern ~length:2 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "infeasible length should fail"

(* ------------------------------------------------------------------ *)
(* Constraint plumbing *)

let test_constr_num_vars () =
  check Alcotest.int "equals" 21 (Constr.num_vars (Constr.Equals "abc"));
  check Alcotest.int "includes" 4
    (Constr.num_vars (Constr.Includes { haystack = "abcabc"; needle = "abc" }));
  check Alcotest.int "palindrome" 42 (Constr.num_vars (Constr.Palindrome { length = 6 }))

let test_constr_validate () =
  let bad = Constr.Contains { length = 2; substring = "cat" } in
  (match Constr.validate bad with Error _ -> () | Ok () -> Alcotest.fail "should reject");
  let bad2 = Constr.Index_of { length = 3; substring = "hi"; index = 2 } in
  (match Constr.validate bad2 with Error _ -> () | Ok () -> Alcotest.fail "should reject");
  match Constr.validate (Constr.Equals "ok") with
  | Ok () -> ()
  | Error e -> Alcotest.failf "should accept: %s" e

let test_verify_wrong_value_kind () =
  check Alcotest.bool "string for includes" false
    (Constr.verify (Constr.Includes { haystack = "ab"; needle = "a" }) (Constr.Str "a"));
  check Alcotest.bool "pos for equals" false
    (Constr.verify (Constr.Equals "a") (Constr.Pos (Some 0)))

let test_decode_length_mismatch () =
  Alcotest.check_raises "bad sample size"
    (Invalid_argument "Compile.decode: sample has 3 bits, constraint uses 7") (fun () ->
      ignore (Compile.decode (Constr.Equals "a") (Bitvec.create 3)))

(* ------------------------------------------------------------------ *)
(* Solver behaviour *)

let test_solver_prefers_satisfying_sample () =
  (* a custom sampler returning a bad sample at lower energy cannot fool
     the solver into reporting satisfaction *)
  let c = Constr.Equals "a" in
  let good = Ascii7.encode "a" and bad = Ascii7.encode "b" in
  let fake =
    Sampler.make ~name:"fake" (fun q -> Sampleset.of_bits q [ bad; good ])
  in
  (* absint off: this exercises the decode scan's sample preference,
     which a static verdict would bypass *)
  let outcome = Solver.solve ~sampler:fake ~absint:`Off c in
  check Alcotest.bool "satisfied via good sample" true outcome.Solver.satisfied;
  check Alcotest.bool "picked the good one" true (outcome.Solver.value = Constr.Str "a")

let test_solver_reports_unsatisfied () =
  let c = Constr.Equals "a" in
  let bad = Ascii7.encode "b" in
  let fake = Sampler.make ~name:"fake" (fun q -> Sampleset.of_bits q [ bad ]) in
  let outcome = Solver.solve ~sampler:fake ~absint:`Off c in
  check Alcotest.bool "unsatisfied" false outcome.Solver.satisfied;
  check Alcotest.bool "still decodes" true (outcome.Solver.value = Constr.Str "b")

let test_solver_timing_nonnegative () =
  let _, timing = Solver.solve_timed ~sampler (Constr.Equals "hi") in
  check Alcotest.bool "encode >= 0" true (timing.Solver.encode_s >= 0.);
  check Alcotest.bool "sample >= 0" true (timing.Solver.sample_s >= 0.);
  check Alcotest.bool "decode >= 0" true (timing.Solver.decode_s >= 0.)

(* ------------------------------------------------------------------ *)
(* §4.12 pipelines (Table 1 combined rows) *)

let test_pipeline_reverse_then_replace () =
  (* Table 1 row 1: reverse 'hello', replace e->a => "ollah" *)
  let p =
    { Pipeline.initial = Constr.Reverse "hello";
      Pipeline.stages = [ Pipeline.Replace_all { find = 'e'; replace = 'a' } ] }
  in
  check (Alcotest.option Alcotest.string) "expected output" (Some "ollah")
    (Pipeline.expected_output p);
  let outcomes = solve_pipeline_ok ~sampler p in
  check Alcotest.int "two stages" 2 (List.length outcomes);
  List.iter (fun o -> check Alcotest.bool "stage satisfied" true o.Solver.satisfied) outcomes;
  check (Alcotest.option Alcotest.string) "final output" (Some "ollah")
    (Solver.pipeline_output outcomes)

let test_pipeline_concat_then_replace_all () =
  (* Table 1 row 4: concat 'hello' 'world' (with a space), replace all
     l->x => "hexxo worxd" *)
  let p =
    { Pipeline.initial = Constr.Concat [ "hello"; " "; "world" ];
      Pipeline.stages = [ Pipeline.Replace_all { find = 'l'; replace = 'x' } ] }
  in
  check (Alcotest.option Alcotest.string) "expected" (Some "hexxo worxd")
    (Pipeline.expected_output p);
  let outcomes = solve_pipeline_ok ~sampler p in
  check (Alcotest.option Alcotest.string) "final" (Some "hexxo worxd")
    (Solver.pipeline_output outcomes)

let test_pipeline_generative_no_expected () =
  let p = { Pipeline.initial = Constr.Palindrome { length = 4 }; Pipeline.stages = [ Pipeline.Reverse ] } in
  check (Alcotest.option Alcotest.string) "no classical expectation" None
    (Pipeline.expected_output p)

let test_pipeline_append_prepend () =
  let p =
    { Pipeline.initial = Constr.Equals "b";
      Pipeline.stages = [ Pipeline.Prepend "a"; Pipeline.Append "c" ] }
  in
  check (Alcotest.option Alcotest.string) "abc" (Some "abc") (Pipeline.expected_output p);
  let outcomes = solve_pipeline_ok ~sampler p in
  check (Alcotest.option Alcotest.string) "solved abc" (Some "abc")
    (Solver.pipeline_output outcomes)

let test_pipeline_positional_decode_blocks () =
  (* An [Includes] initial constraint decodes to a position, which has no
     string form to feed the downstream stage. Earlier revisions fed ""
     forward silently; now this is a typed error naming the stage. *)
  let p =
    { Pipeline.initial = Constr.Includes { haystack = "hello world"; needle = "world" };
      Pipeline.stages = [ Pipeline.Reverse ] }
  in
  match Solver.solve_pipeline ~sampler p with
  | Ok _ -> Alcotest.fail "positional pipeline should not succeed"
  | Error { Solver.stage_index; blocking_value; completed } ->
    check Alcotest.int "blocked at the initial constraint" 0 stage_index;
    (match blocking_value with
    | Constr.Pos (Some 6) -> ()
    | v -> Alcotest.failf "unexpected blocking value: %a" Constr.pp_value v);
    check Alcotest.int "the blocking outcome is reported" 1 (List.length completed)

let test_pipeline_positional_final_stage_ok () =
  (* A positional decode is only an error when something comes *after*
     it; as the last (only) constraint it is a normal outcome. *)
  let p =
    { Pipeline.initial = Constr.Includes { haystack = "hello world"; needle = "world" };
      Pipeline.stages = [] }
  in
  match Solver.solve_pipeline ~sampler p with
  | Error _ -> Alcotest.fail "trailing positional decode must be Ok"
  | Ok [ outcome ] ->
    check Alcotest.bool "satisfied" true outcome.Solver.satisfied
  | Ok outcomes -> Alcotest.failf "expected 1 outcome, got %d" (List.length outcomes)

let test_solve_batch_matches_individual () =
  let constrs =
    [ Constr.Reverse "hi"; Constr.Equals "ab"; Constr.Concat [ "a"; "b" ]; Constr.Reverse "abc" ]
  in
  let individual = List.map (fun c -> Solver.solve ~sampler c) constrs in
  List.iter
    (fun jobs ->
      let batched = Solver.solve_batch ~sampler ~jobs constrs in
      check Alcotest.int "one result per constraint" (List.length constrs) (List.length batched);
      List.iter2
        (fun solo (outcome, timing) ->
          check Alcotest.string "same value"
            (Format.asprintf "%a" Constr.pp_value solo.Solver.value)
            (Format.asprintf "%a" Constr.pp_value outcome.Solver.value);
          check Alcotest.bool "same satisfied" solo.Solver.satisfied outcome.Solver.satisfied;
          check (Alcotest.float 0.) "same energy" solo.Solver.energy outcome.Solver.energy;
          check Alcotest.bool "sample timing recorded" true (timing.Solver.sample_s >= 0.))
        individual batched)
    [ 1; 4 ]

let test_pipeline_describe () =
  let p =
    { Pipeline.initial = Constr.Reverse "hello";
      Pipeline.stages = [ Pipeline.Replace_all { find = 'e'; replace = 'a' } ] }
  in
  check Alcotest.bool "mentions both stages" true (String.length (Pipeline.describe p) > 10)


(* ------------------------------------------------------------------ *)
(* Joint encoding (conjunctions over one merged QUBO) *)

let test_joint_compatible () =
  check (Alcotest.option Alcotest.int) "equals" (Some 3) (Joint.compatible (Constr.Equals "abc"));
  check (Alcotest.option Alcotest.int) "palindrome" (Some 4)
    (Joint.compatible (Constr.Palindrome { length = 4 }));
  check (Alcotest.option Alcotest.int) "includes excluded" None
    (Joint.compatible (Constr.Includes { haystack = "ab"; needle = "a" }))

let test_joint_encode_errors () =
  (match Joint.encode [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty conjunction should fail");
  (match Joint.encode [ Constr.Equals "ab"; Constr.Palindrome { length = 3 } ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "length mismatch should fail");
  match Joint.encode [ Constr.Includes { haystack = "ab"; needle = "a" } ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "includes should fail"

let test_joint_encode_merges () =
  match Joint.encode [ Constr.Palindrome { length = 4 }; Constr.Equals "abba" ] with
  | Error e -> Alcotest.failf "encode failed: %s" e
  | Ok (q, length) ->
    check Alcotest.int "length" 4 length;
    check Alcotest.int "28 vars" 28 (Qubo.num_vars q);
    (* the satisfying string has the sum of both minimal energies: 0 *)
    check (Alcotest.float 1e-9) "abba is joint ground" 0. (Qubo.energy q (Ascii7.encode "abba"))

let test_joint_solve_palindrome_with_index () =
  (* palindrome of length 4 with "ab" forced at 0 -> "abba" *)
  let conjuncts =
    [
      Constr.Palindrome { length = 4 };
      Constr.Index_of { length = 4; substring = "ab"; index = 0 };
    ]
  in
  match Joint.solve ~sampler conjuncts with
  | Error e -> Alcotest.failf "solve failed: %s" e
  | Ok o ->
    check Alcotest.bool "satisfied" true o.Joint.satisfied;
    check Alcotest.string "abba" "abba" o.Joint.value;
    List.iter (fun (_, ok) -> check Alcotest.bool "each conjunct" true ok) o.Joint.per_constraint

let test_joint_solve_regex_and_palindrome () =
  (* a length-4 palindrome matching [ab]+ : abba, baab, aaaa, bbbb, ... *)
  let conjuncts =
    [
      Constr.Palindrome { length = 4 };
      Constr.Regex { pattern = Rparser.parse_exn "[ab]+"; length = 4 };
    ]
  in
  match Joint.solve ~sampler conjuncts with
  | Error e -> Alcotest.failf "solve failed: %s" e
  | Ok o ->
    check Alcotest.bool "satisfied" true o.Joint.satisfied;
    check Alcotest.bool "palindrome" true (Semantics.is_palindrome o.Joint.value);
    check Alcotest.bool "alphabet" true (String.for_all (fun c -> c = 'a' || c = 'b') o.Joint.value)

let test_joint_reports_per_constraint_failures () =
  (* contradictory conjunction: x = "ab" and x = "cd" *)
  match Joint.solve ~sampler [ Constr.Equals "ab"; Constr.Equals "cd" ] with
  | Error e -> Alcotest.failf "solve failed: %s" e
  | Ok o ->
    check Alcotest.bool "not satisfied" false o.Joint.satisfied;
    check Alcotest.int "two verdicts" 2 (List.length o.Joint.per_constraint);
    check Alcotest.bool "at least one conjunct fails" true
      (List.exists (fun (_, ok) -> not ok) o.Joint.per_constraint)

(* ------------------------------------------------------------------ *)
(* Workload generator *)

let test_workload_valid () =
  let rng = Prng.create 42 in
  for _ = 1 to 200 do
    let c = Workload.generate ~rng ~max_length:6 () in
    match Constr.validate c with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid workload constraint (%s): %s" (Constr.describe c) e
  done

let test_workload_deterministic () =
  let a = Workload.suite ~seed:9 ~max_length:5 ~count:20 () in
  let b = Workload.suite ~seed:9 ~max_length:5 ~count:20 () in
  check Alcotest.bool "same suite" true (List.map Constr.describe a = List.map Constr.describe b);
  let c = Workload.suite ~seed:10 ~max_length:5 ~count:20 () in
  check Alcotest.bool "different seed differs" false
    (List.map Constr.describe a = List.map Constr.describe c)

let test_workload_planted_includes () =
  let rng = Prng.create 3 in
  for _ = 1 to 100 do
    match
      Workload.generate_satisfiable ~rng ~kinds:[ Workload.K_includes ] ~max_length:6 ()
    with
    | Constr.Includes { haystack; needle } ->
      if Semantics.index_of haystack ~sub:needle = None then
        Alcotest.failf "unplanted needle %S in %S" needle haystack
    | c -> Alcotest.failf "wrong kind: %s" (Constr.describe c)
  done

let test_workload_kind_restriction () =
  let rng = Prng.create 5 in
  for _ = 1 to 50 do
    match Workload.generate ~rng ~kinds:[ Workload.K_palindrome ] ~max_length:4 () with
    | Constr.Palindrome _ -> ()
    | c -> Alcotest.failf "wrong kind: %s" (Constr.describe c)
  done

let test_workload_validation () =
  let rng = Prng.create 1 in
  check Alcotest.bool "empty kinds" true
    (try
       ignore (Workload.generate ~rng ~kinds:[] ~max_length:4 ());
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "bad max_length" true
    (try
       ignore (Workload.generate ~rng ~max_length:0 ());
       false
     with Invalid_argument _ -> true)

let test_workload_solvers_agree () =
  (* integration: on a satisfiable workload, the classical solver's model
     verifies, and the annealer is never judged satisfied on a wrong value *)
  let suite = Workload.suite ~seed:11 ~max_length:4 ~count:12 () in
  List.iter
    (fun c ->
      let o = Qsmt_classical.Strsolver.solve c in
      (match (o.Qsmt_classical.Strsolver.result, o.Qsmt_classical.Strsolver.value) with
      | `Sat, Some v ->
        if not (Constr.verify c v) then
          Alcotest.failf "CDCL model fails verification on %s" (Constr.describe c)
      | `Sat, None -> Alcotest.fail "sat without a value"
      | (`Unsat | `Unknown), _ -> ());
      let a = Solver.solve ~sampler c in
      if a.Solver.satisfied && not (Constr.verify c a.Solver.value) then
        Alcotest.failf "annealer claims unsatisfying value on %s" (Constr.describe c))
    suite


(* ------------------------------------------------------------------ *)
(* Smtgen *)

let test_smtgen_escape () =
  check Alcotest.string "doubles quotes" {|a ""b"" c|} (Smtgen.escape_string {|a "b" c|})

let test_smtgen_regex_terms () =
  check Alcotest.string "literal" {|(str.to_re "a")|}
    (Smtgen.regex_term (Rparser.parse_exn "a"));
  check Alcotest.string "range" {|(re.range "a" "c")|}
    (Smtgen.regex_term (Rparser.parse_exn "[a-c]"));
  check Alcotest.string "plus of class" {|(re.+ (re.range "b" "c"))|}
    (Smtgen.regex_term (Rparser.parse_exn "[bc]+"));
  check Alcotest.string "allchar" "re.allchar" (Smtgen.regex_term Qsmt_regex.Syntax.any)

let test_smtgen_assertions () =
  (match Smtgen.assertions ~var:"x" (Constr.Equals "hi") with
  | Ok [ a ] -> check Alcotest.string "equality" {|(assert (= x "hi"))|} a
  | _ -> Alcotest.fail "expected one assertion");
  match Smtgen.assertions ~var:"x" (Constr.Has_length { num_chars = 2; target_length = 1 }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Has_length must be rejected"

let test_smtgen_script_runs () =
  (* exported scripts must parse and solve through our own front end *)
  List.iter
    (fun c ->
      match Smtgen.script c with
      | Error e -> Alcotest.failf "script failed for %s: %s" (Constr.describe c) e
      | Ok text -> begin
        match Qsmt_smtlib.Interp.run_string ~sampler text with
        | Ok lines ->
          if not (List.mem "sat" lines) then
            Alcotest.failf "%s: exported script did not answer sat (%s)" (Constr.describe c)
              (String.concat " | " lines)
        | Error e -> Alcotest.failf "%s: exported script errored: %s" (Constr.describe c) e
      end)
    [
      Constr.Equals "hi";
      Constr.Concat [ "a"; "b" ];
      Constr.Contains { length = 4; substring = "cat" };
      Constr.Includes { haystack = "xxcat"; needle = "cat" };
      Constr.Index_of { length = 5; substring = "hi"; index = 1 };
      Constr.Replace_all { source = "hello"; find = 'l'; replace = 'x' };
      Constr.Reverse "abc";
      Constr.Palindrome { length = 4 };
      Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 4 };
    ]


let test_smtgen_rep_rendering () =
  check Alcotest.string "bounded loop" {|((_ re.loop 2 4) (str.to_re "a"))|}
    (Smtgen.regex_term (Rparser.parse_exn "a{2,4}"));
  check Alcotest.bool "unbounded uses loop + star" true
    (let s = Smtgen.regex_term (Rparser.parse_exn "a{2,}") in
     String.length s > 0
     &&
     let has sub =
       let rec go i =
         i + String.length sub <= String.length s
         && (String.sub s i (String.length sub) = sub || go (i + 1))
       in
       go 0
     in
     has "re.loop" && has "re.*")

let test_pipeline_output_empty () =
  check (Alcotest.option Alcotest.string) "empty run" None (Solver.pipeline_output [])

let test_params_pp () =
  check Alcotest.bool "renders" true
    (String.length (Format.asprintf "%a" Params.pp Params.default) > 0)

let test_regex_constraint_with_rep () =
  let pattern = Rparser.parse_exn "a[bc]{2}z" in
  let outcome = Solver.solve ~sampler (Constr.Regex { pattern; length = 4 }) in
  check Alcotest.bool "satisfied" true outcome.Solver.satisfied;
  match outcome.Solver.value with
  | Constr.Str s ->
    check Alcotest.char "a first" 'a' s.[0];
    check Alcotest.char "z last" 'z' s.[3]
  | Constr.Pos _ -> Alcotest.fail "expected string"

let () =
  Alcotest.run "qsmt_strtheory"
    [
      ( "foundations",
        [
          Alcotest.test_case "params validate" `Quick test_params_validate;
          Alcotest.test_case "semantics" `Quick test_semantics;
        ] );
      ( "equality",
        [
          Alcotest.test_case "matrix shape (paper 'a')" `Quick test_equality_matrix_shape;
          Alcotest.test_case "ground state" `Quick test_equality_ground_state;
          Alcotest.test_case "strength scales" `Quick test_equality_strength_scales;
          prop_equality_ground_is_target;
        ] );
      ( "concat",
        [
          Alcotest.test_case "encoding" `Quick test_concat_encoding;
          Alcotest.test_case "solve" `Quick test_concat_solve;
        ] );
      ( "substring",
        [
          Alcotest.test_case "paper ccat example" `Quick test_substring_paper_ccat;
          Alcotest.test_case "exact fit" `Quick test_substring_exact_fit;
          Alcotest.test_case "solve verifies" `Quick test_substring_solve_verifies;
          Alcotest.test_case "sum variant differs" `Quick test_substring_sum_variant_differs;
          Alcotest.test_case "validation" `Quick test_substring_validation;
        ] );
      ( "includes",
        [
          Alcotest.test_case "match count" `Quick test_includes_match_count;
          Alcotest.test_case "ground = first match" `Quick test_includes_ground_is_first_match;
          Alcotest.test_case "later match only" `Quick test_includes_later_match_only;
          Alcotest.test_case "one-hot enforced" `Quick test_includes_one_hot_enforced;
          Alcotest.test_case "solve" `Quick test_includes_solve;
          Alcotest.test_case "decode empty" `Quick test_includes_decode_empty;
          Alcotest.test_case "validation" `Quick test_includes_validation;
        ] );
      ( "indexof",
        [
          Alcotest.test_case "strong/soft positions" `Quick test_indexof_strong_positions;
          Alcotest.test_case "solve" `Quick test_indexof_solve;
          Alcotest.test_case "validation" `Quick test_indexof_validation;
        ] );
      ( "length",
        [
          Alcotest.test_case "matrix" `Quick test_length_matrix;
          Alcotest.test_case "ground state" `Quick test_length_ground_state;
          Alcotest.test_case "verify semantics" `Quick test_length_verify;
          Alcotest.test_case "solve" `Quick test_length_solve;
        ] );
      ( "replace",
        [
          Alcotest.test_case "replace_all = equality" `Quick
            test_replace_all_matches_equality_of_result;
          Alcotest.test_case "replace_first" `Quick test_replace_first_encoding;
          Alcotest.test_case "solve" `Quick test_replace_solve;
        ] );
      ( "reverse",
        [
          Alcotest.test_case "ground" `Quick test_reverse_ground;
          Alcotest.test_case "solve" `Quick test_reverse_solve;
        ] );
      ( "palindrome",
        [
          Alcotest.test_case "matrix (Table 1 shape)" `Quick test_palindrome_matrix;
          Alcotest.test_case "energy zero iff mirrored" `Quick
            test_palindrome_energy_zero_iff_mirrored;
          Alcotest.test_case "solve" `Quick test_palindrome_solve;
          Alcotest.test_case "odd middle free" `Quick test_palindrome_odd_middle_free;
          Alcotest.test_case "printable bias" `Quick test_palindrome_printable_bias;
          prop_palindrome_ground_states_are_palindromes;
        ] );
      ( "regex",
        [
          Alcotest.test_case "literal = equality" `Quick test_regex_literal_positions;
          Alcotest.test_case "class shared preference" `Quick test_regex_class_shared_preference;
          Alcotest.test_case "class ground states" `Quick test_regex_class_ground_states_are_members;
          Alcotest.test_case "solve paper example" `Quick test_regex_solve_paper_example;
          Alcotest.test_case "encode errors" `Quick test_regex_encode_errors;
        ] );
      ( "constr",
        [
          Alcotest.test_case "num_vars" `Quick test_constr_num_vars;
          Alcotest.test_case "validate" `Quick test_constr_validate;
          Alcotest.test_case "verify wrong kind" `Quick test_verify_wrong_value_kind;
          Alcotest.test_case "decode length mismatch" `Quick test_decode_length_mismatch;
        ] );
      ( "joint",
        [
          Alcotest.test_case "compatible" `Quick test_joint_compatible;
          Alcotest.test_case "encode errors" `Quick test_joint_encode_errors;
          Alcotest.test_case "encode merges" `Quick test_joint_encode_merges;
          Alcotest.test_case "palindrome + indexof" `Quick test_joint_solve_palindrome_with_index;
          Alcotest.test_case "regex + palindrome" `Quick test_joint_solve_regex_and_palindrome;
          Alcotest.test_case "per-constraint verdicts" `Quick
            test_joint_reports_per_constraint_failures;
        ] );
      ( "workload",
        [
          Alcotest.test_case "always valid" `Quick test_workload_valid;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "planted includes" `Quick test_workload_planted_includes;
          Alcotest.test_case "kind restriction" `Quick test_workload_kind_restriction;
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "solvers agree" `Slow test_workload_solvers_agree;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "smtgen rep rendering" `Quick test_smtgen_rep_rendering;
          Alcotest.test_case "pipeline output empty" `Quick test_pipeline_output_empty;
          Alcotest.test_case "params pp" `Quick test_params_pp;
          Alcotest.test_case "regex {m,n} solve" `Quick test_regex_constraint_with_rep;
        ] );
      ( "smtgen",
        [
          Alcotest.test_case "escape" `Quick test_smtgen_escape;
          Alcotest.test_case "regex terms" `Quick test_smtgen_regex_terms;
          Alcotest.test_case "assertions" `Quick test_smtgen_assertions;
          Alcotest.test_case "scripts solve" `Slow test_smtgen_script_runs;
        ] );
      ( "solver",
        [
          Alcotest.test_case "prefers satisfying sample" `Quick
            test_solver_prefers_satisfying_sample;
          Alcotest.test_case "reports unsatisfied" `Quick test_solver_reports_unsatisfied;
          Alcotest.test_case "timing" `Quick test_solver_timing_nonnegative;
          Alcotest.test_case "batch matches individual" `Quick test_solve_batch_matches_individual;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "reverse+replace (Table 1 r1)" `Quick
            test_pipeline_reverse_then_replace;
          Alcotest.test_case "concat+replaceAll (Table 1 r4)" `Quick
            test_pipeline_concat_then_replace_all;
          Alcotest.test_case "generative has no expectation" `Quick
            test_pipeline_generative_no_expected;
          Alcotest.test_case "append/prepend" `Quick test_pipeline_append_prepend;
          Alcotest.test_case "positional decode blocks" `Quick
            test_pipeline_positional_decode_blocks;
          Alcotest.test_case "trailing positional is ok" `Quick
            test_pipeline_positional_final_stage_ok;
          Alcotest.test_case "describe" `Quick test_pipeline_describe;
        ] );
    ]
