(* Unit and property tests for qsmt_qubo: builder/frozen QUBO semantics,
   energy evaluation, QUBO<->Ising equivalence, serialization, printing,
   and interaction graphs. *)

module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Qubo = Qsmt_qubo.Qubo
module Ising = Qsmt_qubo.Ising
module Qubo_io = Qsmt_qubo.Qubo_io
module Qubo_print = Qsmt_qubo.Qubo_print
module Qgraph = Qsmt_qubo.Qgraph

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random QUBO generator for property tests: up to [max_n] vars, random
   integral-ish coefficients (exact in float arithmetic). *)
let gen_qubo ~max_n =
  let open QCheck2.Gen in
  let* n = int_range 1 max_n in
  let* entries =
    list_size (int_range 0 (3 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (map float_of_int (int_range (-8) 8)))
  in
  let* offset = map float_of_int (int_range (-4) 4) in
  return
    (let b = Qubo.builder () in
     List.iter (fun (i, j, v) -> Qubo.add b i j v) entries;
     Qubo.set_offset b offset;
     Qubo.freeze ~num_vars:n b)

let gen_qubo_with_bits ~max_n =
  let open QCheck2.Gen in
  let* q = gen_qubo ~max_n in
  let* seed = int_range 0 10_000 in
  return (q, Bitvec.random (Prng.create seed) (Qubo.num_vars q))

(* Reference O(n^2) energy over the dense matrix. *)
let dense_energy q x =
  let m = Qubo.to_dense q in
  let n = Qubo.num_vars q in
  let e = ref (Qubo.offset q) in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      if Bitvec.get x i && Bitvec.get x j then e := !e +. m.(i).(j)
    done
  done;
  !e

(* ------------------------------------------------------------------ *)
(* Builder semantics *)

let test_set_overwrites () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 2.;
  Qubo.set b 0 0 (-1.);
  check (Alcotest.float 0.) "last write wins" (-1.) (Qubo.get b 0 0)

let test_add_sums () =
  let b = Qubo.builder () in
  Qubo.add b 0 1 2.;
  Qubo.add b 1 0 3.;
  (* (0,1) and (1,0) are the same coefficient *)
  check (Alcotest.float 0.) "summed across orderings" 5. (Qubo.get b 0 1)

let test_get_default_zero () =
  let b = Qubo.builder () in
  check (Alcotest.float 0.) "unset is zero" 0. (Qubo.get b 3 5)

let test_negative_index_rejected () =
  let b = Qubo.builder () in
  Alcotest.check_raises "negative" (Invalid_argument "Qubo: negative variable index") (fun () ->
      Qubo.set b (-1) 0 1.)

let test_merge () =
  let a = Qubo.builder () and b = Qubo.builder () in
  Qubo.set a 0 0 1.;
  Qubo.set b 0 0 2.;
  Qubo.set b 1 1 5.;
  Qubo.add_offset b 3.;
  Qubo.merge ~into:a b;
  check (Alcotest.float 0.) "summed" 3. (Qubo.get a 0 0);
  check (Alcotest.float 0.) "copied" 5. (Qubo.get a 1 1)

let test_freeze_num_vars () =
  let b = Qubo.builder () in
  Qubo.set b 2 2 1.;
  check Alcotest.int "inferred" 3 (Qubo.num_vars (Qubo.freeze b));
  check Alcotest.int "forced" 10 (Qubo.num_vars (Qubo.freeze ~num_vars:10 b));
  Alcotest.check_raises "too small" (Invalid_argument "Qubo.freeze: num_vars 2 < highest index + 1 (3)")
    (fun () -> ignore (Qubo.freeze ~num_vars:2 b))

let test_freeze_drops_zeros () =
  let b = Qubo.builder () in
  Qubo.set b 0 1 0.;
  Qubo.set b 0 0 0.;
  let q = Qubo.freeze b in
  check Alcotest.int "no interactions" 0 (Qubo.num_interactions q);
  check Alcotest.int "vars still counted" 2 (Qubo.num_vars q)

let test_builder_reusable_after_freeze () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 1.;
  let q1 = Qubo.freeze b in
  Qubo.set b 1 1 2.;
  let q2 = Qubo.freeze b in
  check Alcotest.int "first freeze unchanged" 1 (Qubo.num_vars q1);
  check Alcotest.int "second sees new var" 2 (Qubo.num_vars q2)

let test_freeze_drops_negative_zero () =
  (* -0. = 0. under float comparison, so an entry overwritten to -0. is
     dropped exactly like +0. — a variable whose every entry vanished
     this way must look dead (no terms at all), which is the contract
     Analyze's dead-variable check documents and relies on. *)
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-0.);
  Qubo.set b 0 1 1.;
  Qubo.set b 0 1 (-0.);
  let q = Qubo.freeze b in
  check Alcotest.int "no interactions" 0 (Qubo.num_interactions q);
  check (Alcotest.float 0.) "no linear term" 0. (Qubo.linear q 0);
  check Alcotest.int "degree 0" 0 (Qubo.degree q 0)

(* Builder writes with exactly-representable and awkward (0.1-style)
   values; freeze must copy surviving entries bit-exact, and last-write-
   wins ordering must hold whatever interleaving of set/add produced
   them. *)
let prop_freeze_roundtrips_exact_values =
  let gen =
    let open QCheck2.Gen in
    let value = oneof [ map float_of_int (int_range (-8) 8); float_range (-2.) 2. ] in
    let* n = int_range 1 6 in
    let* ops =
      list_size (int_range 1 20)
        (triple (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) bool value)
    in
    return (n, ops)
  in
  qtest "freeze round-trips coefficients bit-exact" gen (fun (n, ops) ->
      let b = Qubo.builder () in
      (* reference model: normalized-key map with set/add semantics *)
      let model = Hashtbl.create 16 in
      List.iter
        (fun ((i, j), is_set, v) ->
          let key = (min i j, max i j) in
          if is_set then begin
            Qubo.set b i j v;
            Hashtbl.replace model key v
          end
          else begin
            Qubo.add b i j v;
            let old = Option.value (Hashtbl.find_opt model key) ~default:0. in
            Hashtbl.replace model key (old +. v)
          end)
        ops;
      let q = Qubo.freeze ~num_vars:n b in
      Hashtbl.fold
        (fun (i, j) v ok ->
          let stored =
            if i = j then Qubo.linear q i
            else Option.value (List.assoc_opt j (Qubo.neighbors q i)) ~default:0.
          in
          (* bit-exact: Int64 comparison distinguishes what (=) cannot
             (0. vs -0.) except that freeze canonicalizes dropped zeros *)
          ok
          &&
          if v = 0. then stored = 0.
          else Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float stored))
        model true)

let test_overwrite_log_records_collisions () =
  let (), log =
    Qubo.with_overwrite_log (fun () ->
        let b = Qubo.builder () in
        Qubo.set b 0 0 1.;
        Qubo.set b 0 0 1.;
        (* same value: not a collision *)
        Qubo.set b 0 0 2.;
        Qubo.set b 1 0 3.;
        Qubo.set b 0 1 4.;
        (* (1,0) and (0,1) are the same normalized entry *)
        Qubo.add b 2 2 5.
        (* add never logs *))
  in
  match log with
  | [ first; second ] ->
    check Alcotest.int "first i" 0 first.Qubo.ov_i;
    check Alcotest.int "first j" 0 first.Qubo.ov_j;
    check (Alcotest.float 0.) "first old" 1. first.Qubo.old_value;
    check (Alcotest.float 0.) "first new" 2. first.Qubo.new_value;
    check Alcotest.int "second normalized i" 0 second.Qubo.ov_i;
    check Alcotest.int "second normalized j" 1 second.Qubo.ov_j;
    check (Alcotest.float 0.) "second old" 3. second.Qubo.old_value;
    check (Alcotest.float 0.) "second new" 4. second.Qubo.new_value
  | log -> Alcotest.failf "expected 2 collisions, got %d" (List.length log)

let test_overwrite_log_scoped () =
  (* outside a scope nothing is recorded, and nested scopes log to the
     innermost one only *)
  let b = Qubo.builder () in
  Qubo.set b 0 0 1.;
  Qubo.set b 0 0 2.;
  let (), outer = Qubo.with_overwrite_log (fun () ->
      let (), inner = Qubo.with_overwrite_log (fun () ->
          Qubo.set b 0 0 3.) in
      check Alcotest.int "inner sees its overwrite" 1 (List.length inner))
  in
  check Alcotest.int "outer saw nothing" 0 (List.length outer)

(* ------------------------------------------------------------------ *)
(* Frozen inspection *)

let example () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 2.;
  Qubo.set b 0 1 (-2.);
  Qubo.set b 1 2 0.5;
  Qubo.set_offset b 1.;
  Qubo.freeze b

let test_linear_and_quadratic () =
  let q = example () in
  check (Alcotest.float 0.) "lin 0" (-1.) (Qubo.linear q 0);
  check (Alcotest.float 0.) "lin 2" 0. (Qubo.linear q 2);
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.float 0.)))
    "couplers"
    [ (0, 1, -2.); (1, 2, 0.5) ]
    (Qubo.quadratic q);
  check Alcotest.int "count" 2 (Qubo.num_interactions q)

let test_degree_neighbors () =
  let q = example () in
  check Alcotest.int "degree 1" 2 (Qubo.degree q 1);
  check Alcotest.int "degree 0" 1 (Qubo.degree q 0);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 0.)))
    "neighbors of 1"
    [ (0, -2.); (2, 0.5) ]
    (Qubo.neighbors q 1)

let test_energy_known () =
  let q = example () in
  (* E(x) = 1 - x0 + 2 x1 - 2 x0 x1 + 0.5 x1 x2 *)
  let e bits = Qubo.energy q (Bitvec.of_string bits) in
  check (Alcotest.float 1e-12) "000" 1. (e "000");
  check (Alcotest.float 1e-12) "100" 0. (e "100");
  check (Alcotest.float 1e-12) "110" 0. (e "110");
  check (Alcotest.float 1e-12) "111" 0.5 (e "111");
  check (Alcotest.float 1e-12) "011" 3.5 (e "011")

let test_energy_length_mismatch () =
  let q = example () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Qubo.energy: assignment has 2 bits, problem has 3 vars") (fun () ->
      ignore (Qubo.energy q (Bitvec.create 2)))

let test_scale () =
  let q = Qubo.scale (example ()) 2. in
  check (Alcotest.float 0.) "lin scaled" (-2.) (Qubo.linear q 0);
  check (Alcotest.float 0.) "offset scaled" 2. (Qubo.offset q);
  check (Alcotest.float 1e-12) "energy scaled" 7. (Qubo.energy q (Bitvec.of_string "011"))

let test_relabel () =
  let q = example () in
  let r = Qubo.relabel q (fun i -> 2 - i) ~num_vars:3 in
  check (Alcotest.float 0.) "lin moved" (-1.) (Qubo.linear r 2);
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.float 0.)))
    "couplers mirrored"
    [ (0, 1, 0.5); (1, 2, -2.) ]
    (Qubo.quadratic r)

let test_relabel_rejects_collision () =
  let q = example () in
  Alcotest.check_raises "collision" (Invalid_argument "Qubo.relabel: mapping not injective")
    (fun () -> ignore (Qubo.relabel q (fun _ -> 0) ~num_vars:3))

let test_dense_roundtrip () =
  let q = example () in
  let q' = Qubo.of_dense (Qubo.to_dense q) in
  (* offset is not part of the dense form *)
  check Alcotest.bool "coefficients preserved" true
    (Qubo.quadratic q = Qubo.quadratic q'
    && List.init 3 (Qubo.linear q) = List.init 3 (Qubo.linear q'))

let test_max_abs () =
  check (Alcotest.float 0.) "max abs" 2. (Qubo.max_abs_coefficient (example ()));
  check (Alcotest.float 0.) "empty" 0. (Qubo.max_abs_coefficient (Qubo.freeze (Qubo.builder ())))

let prop_flip_delta_consistent =
  qtest "flip_delta equals energy difference" (gen_qubo_with_bits ~max_n:12) (fun (q, x) ->
      let n = Qubo.num_vars q in
      let ok = ref true in
      for i = 0 to n - 1 do
        let d = Qubo.flip_delta q x i in
        let x' = Bitvec.copy x in
        Bitvec.flip x' i;
        if Float.abs (Qubo.energy q x' -. Qubo.energy q x -. d) > 1e-9 then ok := false
      done;
      !ok)

let prop_energy_matches_dense =
  qtest "CSR energy equals dense reference" (gen_qubo_with_bits ~max_n:12) (fun (q, x) ->
      Float.abs (Qubo.energy q x -. dense_energy q x) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Ising *)

let prop_ising_energy_equal =
  qtest "QUBO and Ising energies agree" (gen_qubo_with_bits ~max_n:12) (fun (q, x) ->
      let ising = Ising.of_qubo q in
      Float.abs (Qubo.energy q x -. Ising.energy ising (Ising.spins_of_bits x)) < 1e-9)

let prop_ising_roundtrip =
  qtest "of_qubo |> to_qubo preserves energies" (gen_qubo_with_bits ~max_n:10) (fun (q, x) ->
      let q' = Ising.to_qubo (Ising.of_qubo q) in
      Float.abs (Qubo.energy q x -. Qubo.energy q' x) < 1e-9)

let prop_ising_flip_delta =
  qtest "Ising flip_delta equals energy difference" (gen_qubo_with_bits ~max_n:10)
    (fun (q, x) ->
      let ising = Ising.of_qubo q in
      let n = Ising.num_spins ising in
      let ok = ref true in
      for i = 0 to n - 1 do
        let d = Ising.flip_delta ising x i in
        let x' = Bitvec.copy x in
        Bitvec.flip x' i;
        if Float.abs (Ising.energy ising x' -. Ising.energy ising x -. d) > 1e-9 then ok := false
      done;
      !ok)

let test_ising_known_conversion () =
  (* E(x) = x0 + 2 x0 x1. With x=(1+s)/2: fields h0 = 1/2 + 1/2 = 1,
     h1 = 1/2, J01 = 1/2, offset = 1/2 + 1/2 = 1. *)
  let b = Qubo.builder () in
  Qubo.set b 0 0 1.;
  Qubo.set b 0 1 2.;
  let ising = Ising.of_qubo (Qubo.freeze b) in
  check (Alcotest.float 1e-12) "h0" 1. (Ising.field ising 0);
  check (Alcotest.float 1e-12) "h1" 0.5 (Ising.field ising 1);
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.float 1e-12)))
    "J" [ (0, 1, 0.5) ] (Ising.couplings ising);
  check (Alcotest.float 1e-12) "offset" 1. (Ising.offset ising)

let test_ising_local_field () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 1.;
  Qubo.set b 0 1 2.;
  let ising = Ising.of_qubo (Qubo.freeze b) in
  let spins = Bitvec.of_string "11" in
  (* local field at 0: h0 + J01 * s1 = 1 + 0.5 = 1.5 *)
  check (Alcotest.float 1e-12) "local field" 1.5 (Ising.local_field ising spins 0);
  check (Alcotest.float 1e-12) "flip delta" (-3.) (Ising.flip_delta ising spins 0)

let test_ising_extrema () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 4.;
  Qubo.set b 0 1 (-0.5);
  let ising = Ising.of_qubo (Qubo.freeze b) in
  check Alcotest.bool "max >= min" true (Ising.max_abs_field ising >= Ising.min_abs_nonzero ising);
  check (Alcotest.float 0.) "all-zero default" 1.
    (Ising.min_abs_nonzero (Ising.of_qubo (Qubo.freeze (Qubo.builder ()))))

(* ------------------------------------------------------------------ *)
(* Serialization *)

let prop_io_roundtrip =
  qtest "COO text roundtrip" (gen_qubo ~max_n:10) (fun q ->
      match Qubo_io.of_string (Qubo_io.to_string q) with
      | Error _ -> false
      | Ok q' -> Qubo.equal q q')

let test_io_parse_errors () =
  let is_error s = match Qubo_io.of_string s with Error _ -> true | Ok _ -> false in
  check Alcotest.bool "missing header" true (is_error "0 0 1.0");
  check Alcotest.bool "bad count" true (is_error "qubo x");
  check Alcotest.bool "bad row" true (is_error "qubo 2\n0 zero 1.0");
  check Alcotest.bool "garbage" true (is_error "qubo 2\nhello world extra junk here")

let test_io_comments_and_blanks () =
  let text = "# a comment\n\nqubo 2\n# another\n0 0 -1.0\n0 1 2.0\n" in
  match Qubo_io.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok q ->
    check Alcotest.int "vars" 2 (Qubo.num_vars q);
    check (Alcotest.float 0.) "lin" (-1.) (Qubo.linear q 0)

let test_io_duplicates_sum () =
  let text = "qubo 2\n0 1 1.0\n1 0 2.0\n" in
  match Qubo_io.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok q -> check (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.float 0.)))
              "summed" [ (0, 1, 3.) ] (Qubo.quadratic q)

let test_io_file_roundtrip () =
  let q = example () in
  let path = Filename.temp_file "qsmt" ".qubo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Qubo_io.write_file path q;
      match Qubo_io.read_file path with
      | Error e -> Alcotest.failf "read failed: %s" e
      | Ok q' -> check Alcotest.bool "equal" true (Qubo.equal q q'))

(* ------------------------------------------------------------------ *)
(* Printing *)

let test_print_dense_small () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 0 1 2.;
  Qubo.set b 1 1 1.5;
  let s = Qubo_print.dense_string (Qubo.freeze b) in
  check Alcotest.string "dense grid" "  -1    2\n   0 1.50" s

let test_print_dense_abbreviated () =
  let b = Qubo.builder () in
  for i = 0 to 19 do
    Qubo.set b i i 1.
  done;
  let s = Qubo_print.dense_string ~max_dim:4 (Qubo.freeze b) in
  check Alcotest.bool "has ellipsis" true
    (String.length s >= 3
    &&
    let re_found = ref false in
    String.iteri (fun i _ -> if i + 3 <= String.length s && String.sub s i 3 = "..." then re_found := true) s;
    !re_found)

let test_print_diagonal () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 1.;
  let s = Format.asprintf "%a" Qubo_print.pp_diagonal (Qubo.freeze b) in
  check Alcotest.string "diagonal" "[-1, 1]" s

(* ------------------------------------------------------------------ *)
(* Qgraph *)

let test_graph_basics () =
  let g = Qgraph.of_edges 4 [ (0, 1); (1, 2); (1, 2); (3, 3) ] in
  check Alcotest.int "dedup + no self-loop" 2 (Qgraph.num_edges g);
  check Alcotest.bool "mem" true (Qgraph.mem_edge g 2 1);
  check Alcotest.bool "not mem" false (Qgraph.mem_edge g 0 3);
  check (Alcotest.list Alcotest.int) "neighbors sorted" [ 0; 2 ] (Qgraph.neighbors g 1);
  check Alcotest.int "degree" 2 (Qgraph.degree g 1);
  check Alcotest.int "max degree" 2 (Qgraph.max_degree g)

let test_graph_components () =
  let g = Qgraph.of_edges 6 [ (0, 1); (1, 2); (4, 5) ] in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "components"
    [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (Qgraph.connected_components g);
  check Alcotest.bool "not connected" false (Qgraph.is_connected g);
  check Alcotest.bool "path connected" true (Qgraph.is_connected (Qgraph.of_edges 3 [ (0, 1); (1, 2) ]))

let test_graph_bfs () =
  let g = Qgraph.of_edges 5 [ (0, 1); (1, 2); (2, 3) ] in
  let d = Qgraph.bfs_distances g 0 in
  check (Alcotest.array Alcotest.int) "distances" [| 0; 1; 2; 3; max_int |] d

let test_graph_of_qubo () =
  let g = Qgraph.of_qubo (example ()) in
  check Alcotest.int "vertices" 3 (Qgraph.num_vertices g);
  check Alcotest.int "edges" 2 (Qgraph.num_edges g)

let test_graph_bounds () =
  let g = Qgraph.create 3 in
  Alcotest.check_raises "oob" (Invalid_argument "Qgraph: vertex 3 out of [0,3)") (fun () ->
      Qgraph.add_edge g 0 3)


(* exhaustive minimum over all assignments; test-local oracle *)
let qsmt_exhaustive_min q =
  let n = Qubo.num_vars q in
  let best = ref infinity in
  for v = 0 to (1 lsl n) - 1 do
    let bits = Bitvec.init n (fun i -> v land (1 lsl i) <> 0) in
    let e = Qubo.energy q bits in
    if e < !best then best := e
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Preprocess *)

module Preprocess = Qsmt_qubo.Preprocess

let test_preprocess_diagonal_collapses () =
  (* diagonal-only problems fix completely: preprocessing alone solves
     string-equality-style encodings *)
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 1.;
  Qubo.set b 2 2 (-2.);
  let q = Qubo.freeze b in
  let t = Preprocess.reduce q in
  check Alcotest.int "all fixed" 3 (Preprocess.num_fixed t);
  check Alcotest.int "none free" 0 (Preprocess.num_free t);
  check (Alcotest.option Alcotest.bool) "x0 = 1" (Some true) (Preprocess.fixed_value t 0);
  check (Alcotest.option Alcotest.bool) "x1 = 0" (Some false) (Preprocess.fixed_value t 1);
  let x = Preprocess.expand t (Bitvec.create 0) in
  check (Alcotest.float 1e-12) "expanded is ground" (-3.) (Qubo.energy q x)

let test_preprocess_keeps_coupled_vars () =
  (* x0 x1 coupler with zero diagonals: neither rule fires on the
     coupled pair... lin + neg >= 0 -> 0 + (-1) < 0, lin + pos <= 0 ->
     0 + 0 <= 0 fires, so the rules do fix; use a frustrated pair
     instead where neither fires *)
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 (-1.);
  Qubo.set b 0 1 3.;
  let q = Qubo.freeze b in
  let t = Preprocess.reduce q in
  (* lin+neg = -1 < 0 and lin+pos = 2 > 0 for both: nothing fixes *)
  check Alcotest.int "none fixed" 0 (Preprocess.num_fixed t);
  check Alcotest.bool "residual equals original energies" true
    (let r = Preprocess.residual t in
     List.for_all
       (fun bits ->
         let y = Bitvec.of_string bits in
         Float.abs (Qubo.energy r y -. Qubo.energy q (Preprocess.expand t y)) < 1e-9)
       [ "00"; "01"; "10"; "11" ])

let test_preprocess_expand_length_check () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 (-1.);
  Qubo.set b 0 1 3.;
  let t = Preprocess.reduce (Qubo.freeze b) in
  check Alcotest.bool "bad length raises" true
    (try
       ignore (Preprocess.expand t (Bitvec.create 5));
       false
     with Invalid_argument _ -> true)

let prop_preprocess_residual_energy_consistent =
  qtest ~count:100 "residual energy = original energy of expansion" (gen_qubo ~max_n:10)
    (fun q ->
      let t = Preprocess.reduce q in
      let r = Preprocess.residual t in
      let rng = Qsmt_util.Prng.create 7 in
      let ok = ref true in
      for _ = 1 to 20 do
        let y = Bitvec.random rng (Preprocess.num_free t) in
        if Float.abs (Qubo.energy r y -. Qubo.energy q (Preprocess.expand t y)) > 1e-9 then
          ok := false
      done;
      !ok)

let prop_preprocess_preserves_optimum =
  qtest ~count:80 "reduction preserves the minimum energy" (gen_qubo ~max_n:9) (fun q ->
      let t = Preprocess.reduce q in
      let original = qsmt_exhaustive_min q in
      let reduced =
        if Preprocess.num_free t = 0 then Qubo.energy q (Preprocess.expand t (Bitvec.create 0))
        else qsmt_exhaustive_min (Preprocess.residual t)
      in
      Float.abs (original -. reduced) < 1e-9)

let test_preprocess_solve_with () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 (-1.);
  Qubo.set b 0 1 3.;
  Qubo.set b 2 2 (-5.);
  let q = Qubo.freeze b in
  (* solver callback: brute force over the residual *)
  let brute r =
    let n = Qubo.num_vars r in
    let best = ref (Bitvec.create n) and best_e = ref (Qubo.energy r (Bitvec.create n)) in
    for v = 1 to (1 lsl n) - 1 do
      let bits = Bitvec.init n (fun i -> v land (1 lsl i) <> 0) in
      let e = Qubo.energy r bits in
      if e < !best_e then begin
        best := bits;
        best_e := e
      end
    done;
    !best
  in
  let x = Preprocess.solve_with brute q in
  check (Alcotest.float 1e-12) "global minimum" (-6.) (Qubo.energy q x)

let () =
  Alcotest.run "qsmt_qubo"
    [
      ( "builder",
        [
          Alcotest.test_case "set overwrites" `Quick test_set_overwrites;
          Alcotest.test_case "add sums" `Quick test_add_sums;
          Alcotest.test_case "get default" `Quick test_get_default_zero;
          Alcotest.test_case "negative index" `Quick test_negative_index_rejected;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "freeze num_vars" `Quick test_freeze_num_vars;
          Alcotest.test_case "freeze drops zeros" `Quick test_freeze_drops_zeros;
          Alcotest.test_case "freeze drops negative zero" `Quick test_freeze_drops_negative_zero;
          Alcotest.test_case "builder reusable" `Quick test_builder_reusable_after_freeze;
          Alcotest.test_case "overwrite log collisions" `Quick test_overwrite_log_records_collisions;
          Alcotest.test_case "overwrite log scoped" `Quick test_overwrite_log_scoped;
          prop_freeze_roundtrips_exact_values;
        ] );
      ( "frozen",
        [
          Alcotest.test_case "linear/quadratic" `Quick test_linear_and_quadratic;
          Alcotest.test_case "degree/neighbors" `Quick test_degree_neighbors;
          Alcotest.test_case "energy known values" `Quick test_energy_known;
          Alcotest.test_case "energy length check" `Quick test_energy_length_mismatch;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "relabel collision" `Quick test_relabel_rejects_collision;
          Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
          Alcotest.test_case "max abs coefficient" `Quick test_max_abs;
          prop_flip_delta_consistent;
          prop_energy_matches_dense;
        ] );
      ( "ising",
        [
          Alcotest.test_case "known conversion" `Quick test_ising_known_conversion;
          Alcotest.test_case "local field" `Quick test_ising_local_field;
          Alcotest.test_case "extrema" `Quick test_ising_extrema;
          prop_ising_energy_equal;
          prop_ising_roundtrip;
          prop_ising_flip_delta;
        ] );
      ( "io",
        [
          Alcotest.test_case "parse errors" `Quick test_io_parse_errors;
          Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "duplicates sum" `Quick test_io_duplicates_sum;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          prop_io_roundtrip;
        ] );
      ( "print",
        [
          Alcotest.test_case "dense small" `Quick test_print_dense_small;
          Alcotest.test_case "dense abbreviated" `Quick test_print_dense_abbreviated;
          Alcotest.test_case "diagonal" `Quick test_print_diagonal;
        ] );
      ( "preprocess",
        [
          Alcotest.test_case "diagonal collapses" `Quick test_preprocess_diagonal_collapses;
          Alcotest.test_case "coupled stays" `Quick test_preprocess_keeps_coupled_vars;
          Alcotest.test_case "expand length" `Quick test_preprocess_expand_length_check;
          Alcotest.test_case "solve_with" `Quick test_preprocess_solve_with;
          prop_preprocess_residual_energy_consistent;
          prop_preprocess_preserves_optimum;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "components" `Quick test_graph_components;
          Alcotest.test_case "bfs" `Quick test_graph_bfs;
          Alcotest.test_case "of_qubo" `Quick test_graph_of_qubo;
          Alcotest.test_case "bounds" `Quick test_graph_bounds;
        ] );
    ]
