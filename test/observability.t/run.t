The observability surface end to end: strengthened trace validation,
metrics exposition (live --metrics-out and offline `qsmt metrics`
replay), the live progress reporter, and the Chrome trace exporter.
Everything seeded, so event counts and counters are byte-stable;
wall-clock and allocator-dependent values are masked or checked
structurally.

A traced solve writes the JSONL event log and a live Prometheus dump in
one run (--no-absint keeps the annealing pipeline under the probe; the
static fast path is traced separately below):

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 --trace t.jsonl --metrics-out live.txt --no-absint > /dev/null
  $ ../../bin/qsmt.exe trace t.jsonl
  t.jsonl: 1121 events, well-formed JSONL, monotone timestamps, balanced spans

Replaying the trace offline reconstructs exactly the metric families the
live snapshot exposed:

  $ ../../bin/qsmt.exe metrics t.jsonl > replay.txt
  $ grep -o '^qsmt_[a-z_]*' live.txt | sort -u > live-names.txt
  $ grep -o '^qsmt_[a-z_]*' replay.txt | sort -u > replay-names.txt
  $ diff live-names.txt replay-names.txt

Seeded lines of the dump are byte-stable:

  $ grep '^qsmt_sa_reads_total' replay.txt
  qsmt_sa_reads_total 32
  $ grep '^qsmt_sa_sweeps_total' replay.txt
  qsmt_sa_sweeps_total 32000
  $ grep '^qsmt_pool_jobs_total' replay.txt
  qsmt_pool_jobs_total 1
  $ grep '^qsmt_span_count_total' replay.txt
  qsmt_span_count_total{span="decode"} 1
  qsmt_span_count_total{span="encode"} 1
  qsmt_span_count_total{span="sample"} 1
  qsmt_span_count_total{span="solve"} 1

Every histogram renders the three tracked quantiles plus the summary
scaffolding; the resource probes (gc.*, pool.*) and throughput gauges
are present even though their values vary run to run:

  $ test $(grep -c 'quantile="0.5"' replay.txt) -eq $(grep -c 'quantile="0.99"' replay.txt) && echo quantiles-balanced
  quantiles-balanced
  $ grep -c '^qsmt_gc_minor_words{' replay.txt
  3
  $ grep -o '^qsmt_gc_heap_words\|^qsmt_pool_utilization\|^qsmt_sa_sweeps_per_s\|^qsmt_sa_flips_per_s' replay.txt
  qsmt_gc_heap_words
  qsmt_pool_utilization
  qsmt_sa_flips_per_s
  qsmt_sa_sweeps_per_s

The Chrome exporter converts a validated trace into trace-event JSON
(loadable in Perfetto); the event count is structural, hence stable:

  $ ../../bin/qsmt.exe trace t.jsonl --chrome chrome.json
  t.jsonl: 1121 events, well-formed JSONL, monotone timestamps, balanced spans
  chrome.json: 1110 trace events (Chrome trace-event format)
  $ head -c 21 chrome.json
  {"displayTimeUnit":"m

The strengthened validator reports span-stream violations with the
offending line:

  $ printf '{"ts":0.1,"ev":"span.begin","span":1,"parent":-1,"name":"a"}\n' > dangling.jsonl
  $ ../../bin/qsmt.exe trace dangling.jsonl
  qsmt: invalid trace: end of input: span 1 (a) opened at line 1 never ends
  [2]

  $ printf '{"ts":0.1,"ev":"span.end","span":9,"name":"ghost","dur_s":0.1}\n' > ghost.jsonl
  $ ../../bin/qsmt.exe trace ghost.jsonl
  qsmt: invalid trace: line 1: span.end for id 9 which is not open
  [2]

The progress reporter prints one-line status updates on stderr from the
snapshot API; a final line is always printed, so a short solve still
reports. The interval is set high so exactly one (final) line appears:

  $ echo '(declare-const x String)(assert (str.contains x "cat"))(assert (= (str.len x) 3))(check-sat)' | QSMT_PROGRESS_INTERVAL_S=60 ../../bin/qsmt.exe run - --progress --no-absint 2>&1 | sed -E 's/t=[0-9.]+s/t=[T]s/'
  [progress] t=[T]s phase=done reads=32 sweeps=32000 best=-11 pool=1.00
  sat

A statically-decided solve is observable too, just much smaller: the
trace carries only the absint child span under solve, the exposition
has absint.* counters but no sampler or pool families (the fast path
spins nothing up), and the progress reporter shows zero reads:

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 --trace static.jsonl --metrics-out static.txt > /dev/null
  $ ../../bin/qsmt.exe trace static.jsonl
  static.jsonl: 19 events, well-formed JSONL, monotone timestamps, balanced spans
  $ grep '^qsmt_span_count_total' static.txt
  qsmt_span_count_total{span="absint"} 1
  qsmt_span_count_total{span="solve"} 1
  $ grep '^qsmt_absint_static_sat_total\|^qsmt_absint_positions_fixed_total' static.txt
  qsmt_absint_positions_fixed_total 5
  qsmt_absint_static_sat_total 1
  $ grep -c '^qsmt_sa_\|^qsmt_pool_' static.txt
  0
  [1]

  $ echo '(declare-const x String)(assert (str.contains x "cat"))(assert (= (str.len x) 3))(check-sat)' | QSMT_PROGRESS_INTERVAL_S=60 ../../bin/qsmt.exe run - --progress 2>&1 | sed -E 's/t=[0-9.]+s/t=[T]s/'
  [progress] t=[T]s phase=done reads=0 sweeps=0 best=- pool=-
  sat
