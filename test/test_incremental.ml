(* Fixed-seed regressions for the incremental solving layer (both solver
   families):

   - a cold first query in a fresh annealing session is bit-for-bit the
     from-scratch [Solver.solve] / [Joint.solve] outcome, and re-queries
     (push/pop shapes) never degrade the verdict;
   - delta-patched merged QUBOs are bit-exact equal to a full recompile
     (property-tested over random conjunction prefixes/extensions);
   - the telemetry counters record which incremental tier served each
     query (encode cache, merge cache, patch, re-merge, warm start,
     model reuse);
   - the classical side: CDCL solving under assumptions, learned-clause
     retention across calls, growable variable sets, and the
     session-level exact conjunction solver;
   - SMT-LIB push/pop/check-sat-assuming verdicts match running each
     query from scratch, on both backends. *)

module Bitvec = Qsmt_util.Bitvec
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Sa = Qsmt_anneal.Sa
module Sampler = Qsmt_anneal.Sampler
module Sampleset = Qsmt_anneal.Sampleset
module Constr = Qsmt_strtheory.Constr
module Solver = Qsmt_strtheory.Solver
module Joint = Qsmt_strtheory.Joint
module Incremental = Qsmt_strtheory.Incremental
module Rparser = Qsmt_regex.Parser
module Cnf = Qsmt_classical.Cnf
module Cdcl = Qsmt_classical.Cdcl
module Strsolver = Qsmt_classical.Strsolver
module Interp = Qsmt_smtlib.Interp
module Eval = Qsmt_smtlib.Eval

let check = Alcotest.check

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Annealing sessions: verdict parity with from-scratch solving *)

(* One constraint per Table-1 operation. *)
let table1_ops =
  [
    Constr.Equals "hi";
    Constr.Concat [ "ab"; "c" ];
    Constr.Contains { length = 3; substring = "ab" };
    Constr.Includes { haystack = "hello world"; needle = "world" };
    Constr.Index_of { length = 3; substring = "bc"; index = 1 };
    Constr.Has_length { num_chars = 3; target_length = 2 };
    Constr.Replace_all { source = "aba"; find = 'a'; replace = 'o' };
    Constr.Replace_first { source = "aba"; find = 'a'; replace = 'o' };
    Constr.Reverse "abc";
    Constr.Palindrome { length = 3 };
    Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 3 };
  ]

let test_generate_cold_parity () =
  (* A fresh session's first query runs the exact same sampler
     configuration as [Solver.solve]: identical value, verdict and
     energy. *)
  List.iter
    (fun constr ->
      let scratch = Solver.solve constr in
      let session = Incremental.create () in
      let incr = Incremental.solve_generate session constr in
      let name = Constr.describe constr in
      check Alcotest.bool (name ^ " verdict") scratch.Solver.satisfied incr.Solver.satisfied;
      check Alcotest.bool (name ^ " value") true (scratch.Solver.value = incr.Solver.value);
      check (Alcotest.float 0.) (name ^ " energy") scratch.Solver.energy incr.Solver.energy)
    table1_ops

let test_generate_requery_never_worse () =
  (* Re-solving the same constraint in-session (the push/pop shape) uses
     model reuse or a warm start with cold retry; a query that succeeded
     from scratch must still succeed. *)
  List.iter
    (fun constr ->
      let scratch = Solver.solve constr in
      let session = Incremental.create () in
      let _first = Incremental.solve_generate session constr in
      let second = Incremental.solve_generate session constr in
      if scratch.Solver.satisfied then
        check Alcotest.bool
          (Constr.describe constr ^ " requery verdict")
          true second.Solver.satisfied)
    table1_ops

let test_joint_push_pop_parity () =
  let pal = Constr.Palindrome { length = 4 } in
  let con = Constr.Contains { length = 4; substring = "ab" } in
  let scratch cs = Result.get_ok (Joint.solve cs) in
  let session = Incremental.create () in
  let incr cs = Result.get_ok (Incremental.solve_joint session cs) in
  (* push sequence: [pal] then [pal; con] (patched extension) *)
  let s1 = scratch [ pal ] and i1 = incr [ pal ] in
  check Alcotest.bool "cold verdict" s1.Joint.satisfied i1.Joint.satisfied;
  check Alcotest.string "cold value" s1.Joint.value i1.Joint.value;
  let s2 = scratch [ pal; con ] and i2 = incr [ pal; con ] in
  check Alcotest.bool "push qubo bit-exact" true (Qubo.equal s2.Joint.qubo i2.Joint.qubo);
  if s2.Joint.satisfied then check Alcotest.bool "push verdict" true i2.Joint.satisfied;
  (* pop back to [pal]: the previous model still verifies, so the
     verdict must stay sat without any sampling *)
  let i3 = incr [ pal ] in
  check Alcotest.bool "pop verdict" true i3.Joint.satisfied;
  check Alcotest.bool "pop qubo bit-exact" true (Qubo.equal s1.Joint.qubo i3.Joint.qubo)

(* ------------------------------------------------------------------ *)
(* Bit-exact delta patching (property) *)

let cheap_sampler = Sampler.simulated_annealing ~params:{ Sa.default with Sa.reads = 2; sweeps = 40; seed = 3 } ()

let gen_conjunction =
  let open QCheck2.Gen in
  let* length = int_range 2 3 in
  let letter = map (fun i -> Char.chr (Char.code 'a' + i)) (int_range 0 2) in
  let word n = map (fun l -> String.init n (List.nth l)) (list_repeat n letter) in
  let conjunct =
    oneof
      [
        map (fun s -> Constr.Equals s) (word length);
        return (Constr.Palindrome { length });
        map (fun c -> Constr.Contains { length; substring = String.make 1 c }) letter;
        map
          (fun t -> Constr.Has_length { num_chars = length; target_length = t })
          (int_range 0 length);
      ]
  in
  let* prefix = list_size (int_range 1 2) conjunct in
  let* suffix = list_size (int_range 1 2) conjunct in
  return (prefix, suffix)

let prop_patched_merge_bitexact =
  qtest ~count:30 "patched/re-merged QUBO = full recompile (bit-exact)" gen_conjunction
    (fun (prefix, suffix) ->
      (* absint off: random Equals/Has_length conjuncts decide statically
         and would skip the merge machinery under test *)
      let session = Incremental.create ~sampler:cheap_sampler ~absint:`Off () in
      let full = prefix @ suffix in
      match
        ( Incremental.solve_joint session prefix,
          Incremental.solve_joint session full,
          Joint.encode full )
      with
      | Ok _, Ok incr, Ok (scratch_q, _) -> Qubo.equal incr.Joint.qubo scratch_q
      | _ -> false)

let test_counters () =
  let telemetry = Telemetry.collector () in
  (* absint off: the counters under test belong to the encode/merge
     caches, which static verdicts bypass *)
  let session = Incremental.create ~sampler:cheap_sampler ~absint:`Off ~telemetry () in
  let pal = Constr.Palindrome { length = 2 } in
  let hl = Constr.Has_length { num_chars = 2; target_length = 2 } in
  let counter name = Option.value ~default:0 (Telemetry.find_counter telemetry name) in
  ignore (Result.get_ok (Incremental.solve_joint session [ pal ]));
  check Alcotest.int "first query re-merges" 1 (counter "incr.remerged");
  ignore (Result.get_ok (Incremental.solve_joint session [ pal ]));
  check Alcotest.int "identical query hits merge cache" 1 (counter "incr.cache_hit");
  ignore (Result.get_ok (Incremental.solve_joint session [ pal; hl ]));
  check Alcotest.int "extension patches" 1 (counter "incr.patched");
  check Alcotest.bool "patched coefficients counted" true (counter "incr.patched_coeffs" > 0);
  check Alcotest.int "no extra re-merge for the patch" 1 (counter "incr.remerged");
  (* a reordered query is not a prefix extension: it re-merges, but from
     the per-conjunct encoding cache (both conjuncts already encoded) *)
  ignore (Result.get_ok (Incremental.solve_joint session [ hl; pal ]));
  check Alcotest.int "reorder re-merges" 2 (counter "incr.remerged");
  check Alcotest.bool "encode cache hit" true (counter "incr.encode_hit" >= 2)

let test_model_reuse_skips_sampling () =
  let telemetry = Telemetry.collector () in
  let session = Incremental.create ~sampler:cheap_sampler ~telemetry () in
  let pal = Constr.Palindrome { length = 2 } in
  let o1 = Result.get_ok (Incremental.solve_joint session [ pal ]) in
  check Alcotest.bool "sat" true o1.Joint.satisfied;
  let o2 = Result.get_ok (Incremental.solve_joint session [ pal ]) in
  check Alcotest.bool "still sat" true o2.Joint.satisfied;
  check Alcotest.string "same model" o1.Joint.value o2.Joint.value;
  check Alcotest.bool "model reuse counted" true
    (Option.value ~default:0 (Telemetry.find_counter telemetry "incr.model_reuse") >= 1)

(* ------------------------------------------------------------------ *)
(* Classical: CDCL incremental interface *)

let test_cdcl_incremental_basic () =
  let s = Cdcl.Incremental.create ~num_vars:2 () in
  Cdcl.Incremental.add_clauses s [ [ Cnf.pos 0; Cnf.pos 1 ] ];
  (match Cdcl.Incremental.solve s with
  | Cdcl.Sat _, _ -> ()
  | _ -> Alcotest.fail "x0 v x1 should be sat");
  Cdcl.Incremental.add_clauses s [ [ Cnf.neg 0 ] ];
  (match Cdcl.Incremental.solve s with
  | Cdcl.Sat m, _ ->
    check Alcotest.bool "x0 false" false (Bitvec.get m 0);
    check Alcotest.bool "x1 true" true (Bitvec.get m 1)
  | _ -> Alcotest.fail "still sat after unit");
  Cdcl.Incremental.add_clauses s [ [ Cnf.neg 1 ] ];
  (match Cdcl.Incremental.solve s with
  | Cdcl.Unsat, _ -> ()
  | _ -> Alcotest.fail "contradiction must be unsat");
  (* permanently unsat now *)
  match Cdcl.Incremental.solve s with
  | Cdcl.Unsat, _ -> ()
  | _ -> Alcotest.fail "permanent unsat must persist"

let test_cdcl_assumptions () =
  let s = Cdcl.Incremental.create ~num_vars:3 () in
  Cdcl.Incremental.add_clauses s [ [ Cnf.pos 0; Cnf.pos 1 ]; [ Cnf.neg 0; Cnf.pos 2 ] ];
  (match Cdcl.Incremental.solve ~assumptions:[ Cnf.neg 1 ] s with
  | Cdcl.Sat m, _ ->
    check Alcotest.bool "x0 forced" true (Bitvec.get m 0);
    check Alcotest.bool "x2 propagated" true (Bitvec.get m 2)
  | _ -> Alcotest.fail "sat under ~x1");
  (match Cdcl.Incremental.solve ~assumptions:[ Cnf.neg 0; Cnf.neg 1 ] s with
  | Cdcl.Unsat, _ -> ()
  | _ -> Alcotest.fail "unsat under ~x0 ~x1");
  (* assumptions do not stick: the solver is still satisfiable *)
  (match Cdcl.Incremental.solve s with
  | Cdcl.Sat _, _ -> ()
  | _ -> Alcotest.fail "sat with no assumptions");
  (* duplicate assumptions each open a level; verdict unchanged *)
  match Cdcl.Incremental.solve ~assumptions:[ Cnf.pos 0; Cnf.pos 0; Cnf.pos 2 ] s with
  | Cdcl.Sat _, _ -> ()
  | _ -> Alcotest.fail "sat under duplicated assumptions"

(* Pigeonhole clauses over p*holes+h variables, each guarded by ¬g so the
   instance can be activated by assumption. *)
let php_clauses ~pigeons ~holes ~guard =
  let var p h = (p * holes) + h in
  let per_pigeon =
    List.init pigeons (fun p ->
        Cnf.neg guard :: List.init holes (fun h -> Cnf.pos (var p h)))
  in
  let per_hole =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p2 > p1 then
                  Some [ Cnf.neg guard; Cnf.neg (var p1 h); Cnf.neg (var p2 h) ]
                else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  per_pigeon @ per_hole

let test_cdcl_learned_retention () =
  let pigeons = 5 and holes = 4 in
  let guard = pigeons * holes in
  let s = Cdcl.Incremental.create ~num_vars:(guard + 1) () in
  Cdcl.Incremental.add_clauses s (php_clauses ~pigeons ~holes ~guard);
  let r1, st1 = Cdcl.Incremental.solve ~assumptions:[ Cnf.pos guard ] s in
  check Alcotest.bool "php unsat" true (r1 = Cdcl.Unsat);
  check Alcotest.bool "worked for it" true (st1.Cdcl.conflicts > 0);
  (* with the guard unassumed the formula is trivially sat *)
  (match Cdcl.Incremental.solve s with
  | Cdcl.Sat _, _ -> ()
  | _ -> Alcotest.fail "unguarded php is sat");
  (* learned clauses survive: re-proving is strictly cheaper *)
  let r2, st2 = Cdcl.Incremental.solve ~assumptions:[ Cnf.pos guard ] s in
  check Alcotest.bool "php still unsat" true (r2 = Cdcl.Unsat);
  check Alcotest.bool "fewer conflicts on re-proof" true
    (st2.Cdcl.conflicts < st1.Cdcl.conflicts)

let test_cdcl_ensure_vars () =
  let s = Cdcl.Incremental.create ~num_vars:1 () in
  Cdcl.Incremental.add_clauses s [ [ Cnf.pos 0 ] ];
  Cdcl.Incremental.ensure_vars s 3;
  check Alcotest.int "grown" 3 (Cdcl.Incremental.num_vars s);
  Cdcl.Incremental.add_clauses s [ [ Cnf.pos 1; Cnf.pos 2 ]; [ Cnf.neg 1 ] ];
  match Cdcl.Incremental.solve s with
  | Cdcl.Sat m, _ ->
    check Alcotest.int "model spans new vars" 3 (Bitvec.length m);
    check Alcotest.bool "x2 forced" true (Bitvec.get m 2)
  | _ -> Alcotest.fail "sat expected after growth"

(* ------------------------------------------------------------------ *)
(* Classical: string session *)

let test_session_outcome_cache () =
  let session = Strsolver.Session.create () in
  let c = Constr.Palindrome { length = 3 } in
  let o1 = Strsolver.Session.solve session c in
  let o2 = Strsolver.Session.solve session c in
  check Alcotest.bool "sat" true o1.Strsolver.satisfied;
  check Alcotest.bool "cached (physically equal)" true (o1 == o2)

let test_session_joint () =
  let session = Strsolver.Session.create () in
  let sat_cs = [ Constr.Palindrome { length = 4 }; Constr.Contains { length = 4; substring = "ab" } ] in
  (match Strsolver.Session.solve_joint session sat_cs with
  | Ok (`Sat s, _) ->
    check Alcotest.bool "verifies" true
      (List.for_all (fun c -> Constr.verify c (Constr.Str s)) sat_cs)
  | _ -> Alcotest.fail "conjunction should be sat");
  let unsat_cs =
    [ Constr.Palindrome { length = 2 }; Constr.Contains { length = 2; substring = "ab" } ]
  in
  (match Strsolver.Session.solve_joint session unsat_cs with
  | Ok (`Unsat, _) -> ()
  | _ -> Alcotest.fail "2-char palindrome containing ab is a refutation");
  (* re-query reuses the loaded guarded clauses; verdict stable *)
  (match Strsolver.Session.solve_joint session unsat_cs with
  | Ok (`Unsat, _) -> ()
  | _ -> Alcotest.fail "re-query verdict must be stable");
  (* and the earlier sat conjunction still answers sat afterwards *)
  (match Strsolver.Session.solve_joint session sat_cs with
  | Ok (`Sat _, _) -> ()
  | _ -> Alcotest.fail "sat conjunction must stay sat");
  match
    Strsolver.Session.solve_joint session
      [ Constr.Includes { haystack = "ab"; needle = "a" } ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Includes is not joint-encodable"

(* ------------------------------------------------------------------ *)
(* SMT-LIB: push/pop/check-sat-assuming verdict parity *)

let classical_backend () =
  let session = Strsolver.Session.create () in
  let value_of = function
    | Constr.Str s -> Some (Eval.V_str s)
    | Constr.Pos (Some i) -> Some (Eval.V_int i)
    | Constr.Pos None -> None
  in
  {
    Interp.backend_name = "classical";
    solve_generate =
      (fun constr ->
        let o = Strsolver.Session.solve session constr in
        match o.Strsolver.result with
        | `Unsat -> `Unsat
        | `Sat when o.Strsolver.satisfied -> begin
          match Option.bind o.Strsolver.value value_of with
          | Some v -> `Value v
          | None -> `Unknown
        end
        | `Sat | `Unknown -> `Unknown);
    solve_joint =
      (fun conjuncts ->
        match Strsolver.Session.solve_joint session conjuncts with
        | Ok (`Sat s, _) -> `Value (Eval.V_str s)
        | Ok (`Unsat, _) -> `Unsat
        | Ok (`Unknown, _) | Error _ -> `Unknown);
  }

let run ?backend source = Result.get_ok (Interp.run_string ?backend source)

let incremental_script =
  {|
(declare-const x String)
(assert (str.palindrome x))
(push)
(assert (= (str.len x) 4))
(check-sat)
(pop)
(check-sat-assuming ((= (str.len x) 2)))
(check-sat)
|}

let flat_scripts =
  [
    "(declare-const x String)(assert (str.palindrome x))(assert (= (str.len x) 4))(check-sat)";
    "(declare-const x String)(assert (str.palindrome x))(assert (= (str.len x) 2))(check-sat)";
    "(declare-const x String)(assert (str.palindrome x))(check-sat)";
  ]

let test_smtlib_parity_annealing () =
  let scratch = List.concat_map (fun s -> run s) flat_scripts in
  check (Alcotest.list Alcotest.string) "incremental = from-scratch" scratch
    (run incremental_script)

let test_smtlib_parity_classical () =
  (* fresh backend per flat script = true from-scratch solving *)
  let scratch = List.concat_map (fun s -> run ~backend:(classical_backend ()) s) flat_scripts in
  check (Alcotest.list Alcotest.string) "incremental = from-scratch" scratch
    (run ~backend:(classical_backend ()) incremental_script)

let test_smtlib_classical_unsat_pop () =
  let script =
    {|
(declare-const x String)
(assert (str.palindrome x))
(assert (= (str.len x) 2))
(push)
(assert (str.contains x "ab"))
(check-sat)
(pop)
(check-sat)
|}
  in
  check (Alcotest.list Alcotest.string) "unsat then sat" [ "unsat"; "sat" ]
    (run ~backend:(classical_backend ()) script);
  (* the annealing backend now proves the unsat case statically: the
     palindrome congruence makes positions 0 and 1 equal, and {a} meets
     {b} empty — no sampling, a real refutation *)
  check (Alcotest.list Alcotest.string) "unsat then sat" [ "unsat"; "sat" ] (run script)

let test_smtlib_assumptions_scoped () =
  (* check-sat-assuming must not leak its assumptions into later checks *)
  let script =
    {|
(declare-const x String)
(assert (str.palindrome x))
(assert (= (str.len x) 2))
(check-sat-assuming ((str.contains x "ab")))
(check-sat)
|}
  in
  check (Alcotest.list Alcotest.string) "assumption scoped" [ "unsat"; "sat" ]
    (run ~backend:(classical_backend ()) script)

let () =
  Alcotest.run "qsmt_incremental"
    [
      ( "annealing-session",
        [
          Alcotest.test_case "cold parity (Table 1)" `Quick test_generate_cold_parity;
          Alcotest.test_case "requery never worse" `Quick test_generate_requery_never_worse;
          Alcotest.test_case "joint push/pop parity" `Quick test_joint_push_pop_parity;
          prop_patched_merge_bitexact;
          Alcotest.test_case "telemetry counters" `Quick test_counters;
          Alcotest.test_case "model reuse" `Quick test_model_reuse_skips_sampling;
        ] );
      ( "cdcl-incremental",
        [
          Alcotest.test_case "basic" `Quick test_cdcl_incremental_basic;
          Alcotest.test_case "assumptions" `Quick test_cdcl_assumptions;
          Alcotest.test_case "learned retention" `Quick test_cdcl_learned_retention;
          Alcotest.test_case "ensure_vars" `Quick test_cdcl_ensure_vars;
        ] );
      ( "classical-session",
        [
          Alcotest.test_case "outcome cache" `Quick test_session_outcome_cache;
          Alcotest.test_case "joint conjunctions" `Quick test_session_joint;
        ] );
      ( "smtlib",
        [
          Alcotest.test_case "parity (annealing)" `Quick test_smtlib_parity_annealing;
          Alcotest.test_case "parity (classical)" `Quick test_smtlib_parity_classical;
          Alcotest.test_case "unsat then pop" `Quick test_smtlib_classical_unsat_pop;
          Alcotest.test_case "assumptions scoped" `Quick test_smtlib_assumptions_scoped;
        ] );
    ]
