(* Tests for the static encoding linter: Qsmt_qubo.Analyze (matrix-only
   checks, exhaustive enumeration) and Qsmt_strtheory.Lint (oracle
   soundness, penalty gaps, chain adequacy, the pre-sample gate).

   The regression core: all six Table 1 constraints lint free of errors
   (the indexOf soft-bias warning is by design), and seeded single-site
   mutations of their QUBOs are detected at the right severity. *)

module Bitvec = Qsmt_util.Bitvec
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Analyze = Qsmt_qubo.Analyze
module Constr = Qsmt_strtheory.Constr
module Compile = Qsmt_strtheory.Compile
module Params = Qsmt_strtheory.Params
module Lint = Qsmt_strtheory.Lint
module Solver = Qsmt_strtheory.Solver
module Workload = Qsmt_strtheory.Workload
module Rparser = Qsmt_regex.Parser

let check = Alcotest.check

let table1 =
  [
    Constr.Reverse "hello";
    Constr.Palindrome { length = 6 };
    Constr.Regex { pattern = Rparser.parse_exn "a[bc]+"; length = 5 };
    Constr.Concat [ "hello"; " "; "world" ];
    Constr.Index_of { length = 6; substring = "hi"; index = 2 };
    Constr.Includes { haystack = "hello world"; needle = "world" };
  ]

let has_check tag findings = List.exists (fun f -> f.Analyze.check = tag) findings
let errors findings = Analyze.count_severity findings Analyze.Error

(* Deterministic damage, mirroring `qsmt lint --mutate`. *)
let zero_first_penalty q =
  let b = Qubo.builder () in
  Qubo.set_offset b (Qubo.offset q);
  let dropped = ref false in
  Qubo.iter_linear q (fun i v -> if not !dropped then dropped := true else Qubo.set b i i v);
  Qubo.iter_quadratic q (fun i j v -> Qubo.set b i j v);
  Qubo.freeze ~num_vars:(Qubo.num_vars q) b

let flip_first_coupler q =
  let b = Qubo.builder () in
  Qubo.set_offset b (Qubo.offset q);
  let flipped = ref false in
  Qubo.iter_linear q (fun i v -> Qubo.set b i i v);
  Qubo.iter_quadratic q (fun i j v ->
      if not !flipped then begin
        flipped := true;
        Qubo.set b i j (-.v)
      end
      else Qubo.set b i j v);
  Qubo.freeze ~num_vars:(Qubo.num_vars q) b

(* ------------------------------------------------------------------ *)
(* Analyze: matrix-only checks *)

let test_analyze_finite () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 Float.nan;
  Qubo.set b 0 1 1.;
  let findings = Analyze.check_finite (Qubo.freeze b) in
  check Alcotest.int "one error" 1 (errors findings);
  check Alcotest.bool "tagged" true (has_check "non-finite-coefficient" findings)

let test_analyze_dynamic_range () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 1e6;
  Qubo.set b 1 1 1e-6;
  let q = Qubo.freeze b in
  check Alcotest.bool "wide range flagged" true
    (has_check "dynamic-range" (Analyze.check_dynamic_range q));
  let b2 = Qubo.builder () in
  Qubo.set b2 0 0 2.;
  Qubo.set b2 1 1 1.;
  check (Alcotest.list Alcotest.string) "narrow range clean" []
    (List.map (fun f -> f.Analyze.check) (Analyze.check_dynamic_range (Qubo.freeze b2)))

let test_analyze_coefficient_quantum () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 0.1;
  check Alcotest.bool "0.1 is not dyadic" true
    (has_check "coefficient-quantum" (Analyze.check_coefficient_quantum (Qubo.freeze b)));
  let b2 = Qubo.builder () in
  Qubo.set b2 0 0 0.25;
  Qubo.set b2 0 1 (-3.);
  check Alcotest.int "dyadic values clean" 0
    (List.length (Analyze.check_coefficient_quantum (Qubo.freeze b2)))

let test_analyze_empty_and_single_var () =
  (* The degenerate shapes must flow through every structural check
     totally: the coefficient-quantum check used to reach an
     [assert false] when its offender counter and example list could
     drift apart. *)
  let empty = Qubo.freeze (Qubo.builder ()) in
  check (Alcotest.list Alcotest.string) "empty QUBO -> no findings" []
    (List.map (fun f -> f.Analyze.check) (Analyze.structural empty));
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  check Alcotest.int "1-var QUBO -> no errors" 0 (errors (Analyze.structural (Qubo.freeze b)));
  let b2 = Qubo.builder () in
  Qubo.set b2 0 0 0.1;
  check Alcotest.bool "single non-dyadic offender still reported" true
    (has_check "coefficient-quantum" (Analyze.structural (Qubo.freeze b2)))

let test_analyze_dead_and_connectivity () =
  let b = Qubo.builder () in
  Qubo.set b 0 1 1.;
  Qubo.set b 2 3 1.;
  let q = Qubo.freeze ~num_vars:5 b in
  let dead = Analyze.check_dead_variables q in
  check Alcotest.bool "var 4 dead" true (has_check "dead-variable" dead);
  check Alcotest.bool "split components" true
    (has_check "disconnected-components" (Analyze.check_connectivity q))

let test_analyze_enumerate_small () =
  (* Frustrated pair E = -x0 - x1 + 2 x0 x1: dominance cannot fix either
     variable, so both survive to the enumeration. Grounds (1,0) and
     (0,1) at energy -1; (0,0) and (1,1) at 0 -> spectral gap 1. *)
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-1.);
  Qubo.set b 1 1 (-1.);
  Qubo.set b 0 1 2.;
  let q = Qubo.freeze b in
  match Analyze.enumerate q with
  | Error free -> Alcotest.failf "unexpected skip at %d free vars" free
  | Ok e ->
    check (Alcotest.float 1e-12) "ground energy" (-1.) e.Analyze.ground_energy;
    check Alcotest.int "two grounds" 2 e.Analyze.ground_count;
    check Alcotest.int "both vars free" 2 e.Analyze.num_free;
    check Alcotest.int "2^free states" (1 lsl e.Analyze.num_free) (Array.length e.Analyze.energies);
    (match e.Analyze.spectral_gap with
    | Some g -> check (Alcotest.float 1e-12) "spectral gap" 1. g
    | None -> Alcotest.fail "expected a spectral gap");
    (* the representative ground assignment really is a ground state *)
    let k =
      let rec find k =
        if k >= Array.length e.Analyze.energies then Alcotest.fail "no ground index"
        else if e.Analyze.energies.(k) <= e.Analyze.ground_energy +. Analyze.ground_tolerance e
        then k
        else find (k + 1)
      in
      find 0
    in
    let bits = Analyze.assignment e k in
    check (Alcotest.float 1e-12) "assignment energy" (-1.) (Qubo.energy q bits)

let test_analyze_enumerate_respects_cap () =
  (* a frustrated ring (negative fields, positive couplers) that
     dominance cannot shrink: 10 free variables > the cap of 4 *)
  let b = Qubo.builder () in
  for i = 0 to 9 do
    Qubo.set b i i (-1.);
    Qubo.set b i ((i + 1) mod 10) 2.
  done;
  let q = Qubo.freeze b in
  match Analyze.enumerate ~max_vars:4 q with
  | Error free -> check Alcotest.int "reports free count" 10 free
  | Ok _ -> Alcotest.fail "should refuse to enumerate past the cap"

(* ------------------------------------------------------------------ *)
(* Lint: Table 1 regression *)

let test_table1_no_errors () =
  List.iter
    (fun constr ->
      let findings = Lint.lint constr in
      if errors findings > 0 then
        Alcotest.failf "%s has %d lint error(s): %s" (Constr.describe constr) (errors findings)
          (String.concat "; "
             (List.map (fun f -> f.Analyze.check ^ ": " ^ f.Analyze.message) findings)))
    table1

let test_table1_indexof_warns_by_design () =
  (* The 0.1·A soft bias is the paper's design: detectable, not fatal.
     The linter must call it out as the known shallow-excitation wobble
     (and the non-dyadic 0.1 as an exact-tie info). *)
  let findings = Lint.lint (Constr.Index_of { length = 6; substring = "hi"; index = 2 }) in
  check Alcotest.bool "shallow excitation warned" true (has_check "shallow-excitation" findings);
  check Alcotest.bool "non-dyadic flagged" true (has_check "coefficient-quantum" findings);
  check Alcotest.int "but no errors" 0 (errors findings)

let test_findings_ordered_by_severity () =
  let constr = Constr.Includes { haystack = "hello world"; needle = "world" } in
  let q = flip_first_coupler (Compile.to_qubo constr) in
  let findings = Lint.lint_compiled constr q in
  let ranks = List.map (fun f -> Analyze.severity_rank f.Analyze.severity) findings in
  check Alcotest.bool "non-increasing severity" true
    (List.for_all2 ( >= ) ranks (List.tl ranks @ [ min_int ]))

(* ------------------------------------------------------------------ *)
(* Lint: seeded mutations are detected *)

let test_mutation_zeroed_penalty_is_error () =
  let constr = Constr.Equals "a" in
  let q = zero_first_penalty (Compile.to_qubo constr) in
  let findings = Lint.lint_compiled constr q in
  check Alcotest.bool "unsound ground state" true (has_check "unsound-ground-state" findings);
  check Alcotest.bool "is an error" true (errors findings > 0)

let test_mutation_flipped_coupler_is_error () =
  let constr = Constr.Includes { haystack = "hello world"; needle = "world" } in
  let q = flip_first_coupler (Compile.to_qubo constr) in
  let findings = Lint.lint_compiled constr q in
  check Alcotest.bool "unsound ground state" true (has_check "unsound-ground-state" findings)

let test_mutation_halved_chain_strength_warns () =
  let constr = Constr.Equals "hi" in
  let q = Compile.to_qubo constr in
  let weak = Qsmt_anneal.Chain.default_strength q /. 2. in
  let config =
    { Lint.default_config with Lint.chain = Some (Lint.chain_spec ~strength:weak `Complete) }
  in
  let findings = Lint.lint_compiled ~config constr q in
  let strength_warning =
    List.exists
      (fun f -> f.Analyze.check = "chain-strength" && f.Analyze.severity = Analyze.Warning)
      findings
  in
  check Alcotest.bool "halved strength warned" true strength_warning;
  (* at the recommended default there is no chain-strength warning *)
  let config_ok =
    { Lint.default_config with Lint.chain = Some (Lint.chain_spec `Complete) }
  in
  let ok_findings = Lint.lint_compiled ~config:config_ok constr q in
  check Alcotest.bool "default strength clean" false
    (List.exists
       (fun f -> f.Analyze.check = "chain-strength" && f.Analyze.severity = Analyze.Warning)
       ok_findings)

let test_chain_bound_info () =
  (* between 2·max|Q| and the max-local-field bound: Info, not Warning *)
  let constr = Constr.Equals "hi" in
  let q = Compile.to_qubo constr in
  let recommended = Qsmt_anneal.Chain.default_strength q in
  let bound = Qsmt_anneal.Chain.max_local_field q in
  if bound > recommended then begin
    let mid = (recommended +. bound) /. 2. in
    let config =
      { Lint.default_config with Lint.chain = Some (Lint.chain_spec ~strength:mid `Complete) }
    in
    let findings = Lint.lint_compiled ~config constr q in
    check Alcotest.bool "bound info present" true (has_check "chain-strength-bound" findings);
    check Alcotest.bool "no warning" false
      (List.exists
         (fun f -> f.Analyze.check = "chain-strength" && f.Analyze.severity = Analyze.Warning)
         findings)
  end

let test_max_local_field () =
  let b = Qubo.builder () in
  Qubo.set b 0 0 (-2.);
  Qubo.set b 0 1 3.;
  Qubo.set b 0 2 (-1.);
  Qubo.set b 1 1 0.5;
  let q = Qubo.freeze b in
  (* var 0: |-2| + |3| + |-1| = 6 is the worst *)
  check (Alcotest.float 1e-12) "max local field" 6. (Qsmt_anneal.Chain.max_local_field q)

(* ------------------------------------------------------------------ *)
(* Lint: workload sweep and variable-count guard *)

let test_workload_sweep_no_errors () =
  let suite = Workload.suite ~seed:11 ~max_length:5 ~count:12 () in
  List.iter
    (fun constr ->
      let findings = Lint.lint constr in
      if errors findings > 0 then
        Alcotest.failf "workload %s has lint errors" (Constr.describe constr))
    suite

let test_variable_count_mismatch_is_error () =
  let constr = Constr.Equals "ab" in
  let b = Qubo.builder () in
  Qubo.set b 0 0 1.;
  let findings = Lint.lint_compiled constr (Qubo.freeze b) in
  check Alcotest.bool "mismatch reported" true (has_check "variable-count-mismatch" findings);
  check Alcotest.bool "is an error" true (errors findings > 0)

(* ------------------------------------------------------------------ *)
(* gate + telemetry *)

let test_gate_rejects_and_counts () =
  let constr = Constr.Index_of { length = 6; substring = "hi"; index = 2 } in
  let q = Compile.to_qubo constr in
  let t = Telemetry.aggregate_only () in
  (* warnings present but no errors: `Error admits, `Warning rejects *)
  Lint.gate_check ~telemetry:t ~gate:`Error constr q;
  (match Lint.gate_check ~telemetry:t ~gate:`Warning constr q with
  | () -> Alcotest.fail "warning gate should reject the indexOf soft bias"
  | exception Lint.Rejected (_, findings) ->
    check Alcotest.bool "findings carried" true (findings <> []));
  let counter name = Option.value (List.assoc_opt name (Telemetry.counters t)) ~default:0 in
  check Alcotest.int "one rejection counted" 1 (counter "lint.rejected");
  check Alcotest.bool "per-check counters" true (counter "lint.check.shallow-excitation" >= 1);
  check Alcotest.bool "severity counters" true (counter "lint.warning" >= 1)

let test_solver_gate_integration () =
  let constr = Constr.Index_of { length = 6; substring = "hi"; index = 2 } in
  (match Solver.solve ~lint:`Warning constr with
  | _ -> Alcotest.fail "solve should have been stopped by the lint gate"
  | exception Lint.Rejected (c, _) ->
    check Alcotest.string "constraint carried" (Constr.describe constr) (Constr.describe c));
  (* `Error level lets the warning-only encoding through to a real solve *)
  let outcome = Solver.solve ~lint:`Error constr in
  check Alcotest.bool "solved through the gate" true outcome.Solver.satisfied

let test_lint_off_is_default_and_free () =
  let constr = Constr.Reverse "ab" in
  let a = Solver.solve constr in
  let b = Solver.solve ~lint:`Error constr in
  (* the gate never perturbs the solve itself (no PRNG consumption) *)
  check Alcotest.bool "same value" true (a.Solver.value = b.Solver.value);
  check (Alcotest.float 0.) "same energy" a.Solver.energy b.Solver.energy

let () =
  Alcotest.run "qsmt-lint"
    [
      ( "analyze",
        [
          Alcotest.test_case "non-finite" `Quick test_analyze_finite;
          Alcotest.test_case "dynamic range" `Quick test_analyze_dynamic_range;
          Alcotest.test_case "coefficient quantum" `Quick test_analyze_coefficient_quantum;
          Alcotest.test_case "empty and 1-var QUBOs" `Quick test_analyze_empty_and_single_var;
          Alcotest.test_case "dead vars + connectivity" `Quick test_analyze_dead_and_connectivity;
          Alcotest.test_case "enumerate small" `Quick test_analyze_enumerate_small;
          Alcotest.test_case "enumerate cap" `Quick test_analyze_enumerate_respects_cap;
        ] );
      ( "table1",
        [
          Alcotest.test_case "no errors on the paper set" `Quick test_table1_no_errors;
          Alcotest.test_case "indexOf warns by design" `Quick test_table1_indexof_warns_by_design;
          Alcotest.test_case "severity ordering" `Quick test_findings_ordered_by_severity;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "zeroed penalty -> error" `Quick test_mutation_zeroed_penalty_is_error;
          Alcotest.test_case "flipped coupler -> error" `Quick
            test_mutation_flipped_coupler_is_error;
          Alcotest.test_case "halved chain strength -> warning" `Quick
            test_mutation_halved_chain_strength_warns;
          Alcotest.test_case "sub-bound strength -> info" `Quick test_chain_bound_info;
          Alcotest.test_case "max local field" `Quick test_max_local_field;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "workload no errors" `Quick test_workload_sweep_no_errors;
          Alcotest.test_case "var-count mismatch" `Quick test_variable_count_mismatch_is_error;
        ] );
      ( "gate",
        [
          Alcotest.test_case "gate + telemetry" `Quick test_gate_rejects_and_counts;
          Alcotest.test_case "solver integration" `Quick test_solver_gate_integration;
          Alcotest.test_case "off by default" `Quick test_lint_off_is_default_and_free;
        ] );
    ]
