The qsmt CLI end to end. Everything here is seeded, so outputs are
byte-stable; timing lines are filtered out.

Deterministic generation. Literal operations are fully determined by
the pre-encode abstract interpreter: no QUBO is built, no sampler runs,
and the classically-verified answer is reported as decided statically:

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 | grep -v timing
  constraint: reverse "hello"
  absint    : sat — 2 iteration(s), 5 fact(s), 5/5 position(s) fixed
  result    : "olleh" (verified, decided statically)

  $ ../../bin/qsmt.exe gen replace-all hello l x --seed 1 | grep -v timing
  constraint: replace all 'l' with 'x' in "hello"
  absint    : sat — 2 iteration(s), 5 fact(s), 5/5 position(s) fixed
  result    : "hexxo" (verified, decided statically)

--no-absint disables the pass and replays the annealing pipeline
bit-exactly as before:

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 --no-absint | grep -v timing
  constraint: reverse "hello"
  qubo      : qubo(vars=35, interactions=0, offset=21)
  result    : "olleh" (energy 0, verified)

Position search (string includes) is decided through the classical
index-of semantics:

  $ ../../bin/qsmt.exe gen includes 'hello world' world --seed 1 | grep -v timing
  constraint: find "world" within "hello world"
  absint    : sat — 1 iteration(s), 1 fact(s), 0/11 position(s) fixed
  result    : position 6 (verified, decided statically)

  $ ../../bin/qsmt.exe gen includes 'hello world' world --seed 1 --no-absint | grep -v timing
  constraint: find "world" within "hello world"
  qubo      : qubo(vars=7, interactions=21, offset=0)
  result    : position 6 (energy -5, verified)

Table-1-style matrix printing (the paper's 'a' example):

  $ ../../bin/qsmt.exe matrix equals a
  generate the string "a"
  qubo(vars=7, interactions=0, offset=3)
  -1  0  0  0  0  0  0
   0 -1  0  0  0  0  0
   0  0  1  0  0  0  0
   0  0  0  1  0  0  0
   0  0  0  0  1  0  0
   0  0  0  0  0  1  0
   0  0  0  0  0  0 -1

Exports:

  $ ../../bin/qsmt.exe export equals hi --format smt2
  (set-logic QF_S)
  (declare-const x String)
  (assert (= x "hi"))
  (check-sat)
  (get-value (x))

  $ ../../bin/qsmt.exe export palindrome 1 --format qubo
  qubo 7

  $ ../../bin/qsmt.exe export includes ab a --format dimacs
  p cnf 2 3
  -2 0
  1 2 0
  -1 -2 0

SMT-LIB scripts from stdin:

  $ echo '(declare-const x String)(assert (= x "ok"))(check-sat)(get-value (x))' | ../../bin/qsmt.exe run -
  sat
  ((x "ok"))

  $ echo '(declare-const x String)(assert (= x "a"))(assert (= x "b"))(check-sat)' | ../../bin/qsmt.exe run -
  unsat

Portfolio sampler (races sa/sqa/pt/tabu/greedy; the first verified read
wins and cancels the rest, so only the stable lines are compared):

  $ ../../bin/qsmt.exe gen reverse hello --sampler portfolio --seed 1 --jobs 2 --no-absint | grep -v timing
  constraint: reverse "hello"
  qubo      : qubo(vars=35, interactions=0, offset=21)
  result    : "olleh" (energy 0, verified)

Hardware-emulation sampler: minor embedding into a Chimera graph, chain
penalties, majority-vote unembedding. The stats line reports what the
embedding cost; the auto-sizing probe shares its routing work with the
solve through the embedding cache, hence the first-run cache hit:

  $ ../../bin/qsmt.exe gen includes 'hello world' world --sampler hardware --topology chimera --no-absint | grep -v timing
  constraint: find "world" within "hello world"
  qubo      : qubo(vars=7, interactions=21, offset=0)
  result    : position 6 (energy -5, verified)
  hardware  : chimera(3,3,4): 28/72 qubits, max chain 11, breaks 0.0%, strength 12, embed tries 1 (cache hit), escalations 0

  $ ../../bin/qsmt.exe gen palindrome 4 --sampler hardware --topology chimera | grep -v timing
  constraint: generate a palindrome of length 4
  qubo      : qubo(vars=28, interactions=14, offset=0)
  result    : "X??X" (energy 0, verified)
  hardware  : chimera(2,2,4): 28/32 qubits, max chain 1, breaks 0.0%, strength 4, embed tries 2 (cache hit), escalations 0

Decomposition lifts the one-embedding size cap: the 84-variable
palindrome is partitioned into clamped sub-QUBOs of at most --subsize
variables, solved concurrently, and stitched with whole-problem
re-pricing (same verified-result contract as every other path):

  $ ../../bin/qsmt.exe gen palindrome 12 --decompose --subsize 42 --seed 1 | grep -v timing
  constraint: generate a palindrome of length 12
  qubo      : qubo(vars=84, interactions=42, offset=0)
  result    : "4?0`?kk?`0?4" (energy 0, verified)

Weak chains under heavy control noise degrade loudly, not silently: the
chain strength escalates geometrically, and when breaks stay above the
threshold the answer is flagged DEGRADED (and NOT satisfied — never a
silent wrong answer):

  $ ../../bin/qsmt.exe gen includes 'hello world' world --sampler hardware --topology chimera --chain-strength 0.0001 --noise 2 --reads 8 --sweeps 200 --no-absint | grep -v timing
  constraint: find "world" within "hello world"
  qubo      : qubo(vars=7, interactions=21, offset=0)
  result    : position 0 (energy 0, NOT satisfied)
  hardware  : chimera(3,3,4): 28/72 qubits, max chain 11, breaks 57.1%, strength 0.0008, embed tries 1 (cache hit), escalations 3
  DEGRADED: 57.1% of chains still broken (threshold 25.0%)

SMT-LIB runs with --sampler classical go through CDCL bit-blasting (an
earlier revision silently fell back to the exact enumerator here):

  $ echo '(declare-const x String)(assert (str.contains x "cat"))(assert (= (str.len x) 3))(check-sat)(get-model)' | ../../bin/qsmt.exe run - --sampler classical
  sat
  (
    (define-fun x () String "cat")
  )

Classical backend proves unsat:

  $ ../../bin/qsmt.exe gen includes aaaa xyz --sampler classical
  constraint: find "xyz" within "aaaa"
  result    : unsat

Telemetry: --metrics prints the aggregate table. Wall-clock values vary
run to run and are masked, as are the resource probes (GC deltas and
throughput gauges depend on allocator state and machine speed);
everything seeded — counts, energies, success probability — is
byte-stable:

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 --metrics --no-absint | grep -v timing \
  >   | sed -E -e 's/ +[0-9]+\.[0-9]+ ?ms$/ [TIME]/' \
  >             -e 's/^( +(gc\.[a-z_]+|[a-z]+\.(flips|sweeps)_per_s|pool\.(worker_busy_s|submit_latency_s|utilization))) .*$/\1 [VARIES]/'
  constraint: reverse "hello"
  qubo      : qubo(vars=35, interactions=0, offset=21)
  result    : "olleh" (energy 0, verified)
  metrics   : spans (count, total)
    decode                          1 [TIME]
    encode                          1 [TIME]
    sample                          1 [TIME]
    solve                           1 [TIME]
  metrics   : counters
    encode.reverse.penalty_terms      0
    encode.reverse.vars            35
    gc.major_collections [VARIES]
    gc.minor_collections [VARIES]
    pool.jobs                       1
    sa.reads                       32
    sa.sweeps                   32000
    solve.constraints               1
  metrics   : gauges
    gc.heap_words [VARIES]
    pool.participants                   1
    pool.queue_depth                    0
    pool.utilization [VARIES]
    sa.flips_per_s [VARIES]
    sa.sweeps_per_s [VARIES]
  metrics   : histograms (count, min, p50, mean, max)
    gc.major_words [VARIES]
    gc.minor_words [VARIES]
    gc.promoted_words [VARIES]
    pool.queue_depth                1          0          0          0          0
    pool.submit_latency_s [VARIES]
    pool.worker_busy_s [VARIES]
    sa.read_energy                 32          0    0.03575     0.4375          3
  metrics   : time-to-solution
    p_success                       0.719
    time_per_read [TIME]
    tts(99%) [TIME]

--trace streams the full event log as JSONL; the event count is
deterministic (strided sweep events depend only on sweep indices, never
on wall clock), and `qsmt trace` validates the format contract:

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 --trace trace.jsonl --no-absint > /dev/null
  $ ../../bin/qsmt.exe trace trace.jsonl
  trace.jsonl: 1121 events, well-formed JSONL, monotone timestamps, balanced spans

  $ printf '{"ts":1.0,"ev":"a"}\n{"ts":0.5,"ev":"b"}\n' > bad.jsonl
  $ ../../bin/qsmt.exe trace bad.jsonl
  qsmt: invalid trace: line 2: timestamp 0.5 decreases (previous 1)
  [2]

Static encoding linter: no sampling, exhaustive ground-set soundness
against the classical verifier, penalty-gap and precision margins. A
sound diagonal encoding is clean apart from the preprocessing headroom
note:

  $ ../../bin/qsmt.exe lint equals a
  ==> generate the string "a"
    INFO    preprocess-fixable     global: dominance preprocessing fixes 7/7 variable(s) before any sampling
    0 error(s), 0 warning(s), 1 info(s)

The paper's indexOf soft bias (0.1·A, §4.5) is fragile by design — the
linter calls out the shallow excitation and the non-dyadic coefficient,
and --fail-on warning turns that into a failing exit:

  $ ../../bin/qsmt.exe lint indexof 6 hi 2 --fail-on warning
  ==> generate a length-6 string with "hi" at index 2
    WARNING shallow-excitation     global: shallowest single-bit excitation from a ground state is 0.1 (< 0.5 = 0.25 x max|Q|): a soft bias this weak is easily lost to thermal noise or rounding
    INFO    coefficient-quantum    global: 8 coefficient(s) are not multiples of 2^-20 (e.g. var 0 = -0.10000000000000001): energy sums are inexact, so exact ties may be resolved by rounding noise
    INFO    dead-variable          global: 20 of 42 variable(s) have no linear term and no couplers (2, 3, 4, 5, 6, 9, 10, 11, ...): their bits decode to whatever the sampler left behind
    INFO    preprocess-fixable     global: dominance preprocessing fixes 42/42 variable(s) before any sampling
    0 error(s), 1 warning(s), 3 info(s)
  [1]

A broken encoding is an ERROR with the decoded counterexample — here the
forced bit of "a" is deleted, so a ground state decodes to "!":

  $ ../../bin/qsmt.exe lint equals a --mutate zero-penalty
  ==> generate the string "a"
    ERROR   unsound-ground-state   global: ground state (energy 1) decodes to "!", which violates the constraint
    INFO    dead-variable          global: 1 of 7 variable(s) have no linear term and no couplers (0): their bits decode to whatever the sampler left behind
    INFO    preprocess-fixable     global: dominance preprocessing fixes 7/7 variable(s) before any sampling
    1 error(s), 0 warning(s), 2 info(s)
  [1]

--json emits one machine-readable object per constraint (the CI lint
gate's artifact format); a flipped one-hot coupler rewards an invalid
double-position state:

  $ ../../bin/qsmt.exe lint includes 'hello world' world --mutate flip-coupler --json
  {"target":"find \"world\" within \"hello world\"","errors":1,"warnings":0,"infos":2,"findings":[{"severity":"error","check":"unsound-ground-state","location":{"kind":"global"},"message":"ground state (energy -7) decodes to position 0, which violates the constraint"},{"severity":"info","check":"preprocess-fixable","location":{"kind":"global"},"message":"dominance preprocessing fixes 3/7 variable(s) before any sampling"},{"severity":"info","check":"soft-preference","location":{"kind":"global"},"message":"1 satisfying assignment(s) lie above the ground energy: soft biases / first-match preference steer the sampler to a subset of the solutions"}]}
  [1]

--chain judges a configured chain strength against the recommended
default and the max-local-field no-break bound before any hardware run:

  $ ../../bin/qsmt.exe lint palindrome 4 --chain --topology king --chain-strength 0.5 --fail-on warning
  ==> generate a palindrome of length 4
    WARNING chain-strength         global: chain strength 0.5 is below the recommended 4 (2 x max|Q|): chains break in practice and the hardware sampler's escalation loop would have to rescue this setting
    INFO    disconnected-components global: the coupled variables split into 14 independent components: one anneal solves several unrelated subproblems at once
    INFO    enumeration-skipped    global: residual keeps 28 free variables (> 20): ground-set soundness not statically checked
    INFO    embedding              global: embeds into king(6x6): 28/36 qubits, max chain 1, chain strength 0.5
    0 error(s), 1 warning(s), 3 info(s)
  [1]

SMT-LIB scripts lint through the same assertion compiler the solver
uses:

  $ echo '(declare-const x String)(assert (= x "hi"))(check-sat)' | ../../bin/qsmt.exe lint --smt2 -
  ==> x: generate the string "hi"
    INFO    preprocess-fixable     global: dominance preprocessing fixes 14/14 variable(s) before any sampling
    0 error(s), 0 warning(s), 1 info(s)

--param values are validated with the typed Params error at parse time
(infinity used to sail through a bare positivity check):

  $ ../../bin/qsmt.exe lint equals a --param soft=inf 2>&1 | head -1
  qsmt: option '--param': Params.soft_scale must be finite, got inf

  $ ../../bin/qsmt.exe lint equals a --param soft=inf 2> /dev/null
  [124]

The solver-side gate refuses to spend annealing time on an encoding the
linter already rejects at the requested level:

  $ ../../bin/qsmt.exe gen indexof 6 hi 2 --lint-level warning 2>&1
  constraint: generate a length-6 string with "hi" at index 2
  qsmt: lint gate rejected the encoding (0 error(s), 1 warning(s)):
    WARNING shallow-excitation     global: shallowest single-bit excitation from a ground state is 0.1 (< 0.5 = 0.25 x max|Q|): a soft bias this weak is easily lost to thermal noise or rounding
    INFO    coefficient-quantum    global: 8 coefficient(s) are not multiples of 2^-20 (e.g. var 0 = -0.10000000000000001): energy sums are inexact, so exact ties may be resolved by rounding noise
    INFO    dead-variable          global: 20 of 42 variable(s) have no linear term and no couplers (2, 3, 4, 5, 6, 9, 10, 11, ...): their bits decode to whatever the sampler left behind
    INFO    preprocess-fixable     global: dominance preprocessing fixes 42/42 variable(s) before any sampling
  [1]

Errors are reported, not crashed on:

  $ ../../bin/qsmt.exe gen contains 2 cat 2>&1
  qsmt: invalid constraint: substring longer than the string
  [2]

  $ ../../bin/qsmt.exe gen frobnicate x 2>&1 | head -1
  qsmt: unknown operation "frobnicate" or wrong arguments. Operations: equals S | concat S... | contains LEN SUB | includes HAY NEEDLE | indexof LEN SUB IDX | length CHARS TARGET | replace-all SRC C D | replace SRC C D | reverse S | palindrome LEN | regex PAT LEN
