The qsmt CLI end to end. Everything here is seeded, so outputs are
byte-stable; timing lines are filtered out.

Deterministic generation:

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 | grep -v timing
  constraint: reverse "hello"
  qubo      : qubo(vars=35, interactions=0, offset=21)
  result    : "olleh" (energy 0, verified)

  $ ../../bin/qsmt.exe gen replace-all hello l x --seed 1 | grep -v timing
  constraint: replace all 'l' with 'x' in "hello"
  qubo      : qubo(vars=35, interactions=0, offset=21)
  result    : "hexxo" (energy 0, verified)

Position search (string includes):

  $ ../../bin/qsmt.exe gen includes 'hello world' world --seed 1 | grep -v timing
  constraint: find "world" within "hello world"
  qubo      : qubo(vars=7, interactions=21, offset=0)
  result    : position 6 (energy -5, verified)

Table-1-style matrix printing (the paper's 'a' example):

  $ ../../bin/qsmt.exe matrix equals a
  generate the string "a"
  qubo(vars=7, interactions=0, offset=3)
  -1  0  0  0  0  0  0
   0 -1  0  0  0  0  0
   0  0  1  0  0  0  0
   0  0  0  1  0  0  0
   0  0  0  0  1  0  0
   0  0  0  0  0  1  0
   0  0  0  0  0  0 -1

Exports:

  $ ../../bin/qsmt.exe export equals hi --format smt2
  (set-logic QF_S)
  (declare-const x String)
  (assert (= x "hi"))
  (check-sat)
  (get-value (x))

  $ ../../bin/qsmt.exe export palindrome 1 --format qubo
  qubo 7

  $ ../../bin/qsmt.exe export includes ab a --format dimacs
  p cnf 2 3
  -2 0
  1 2 0
  -1 -2 0

SMT-LIB scripts from stdin:

  $ echo '(declare-const x String)(assert (= x "ok"))(check-sat)(get-value (x))' | ../../bin/qsmt.exe run -
  sat
  ((x "ok"))

  $ echo '(declare-const x String)(assert (= x "a"))(assert (= x "b"))(check-sat)' | ../../bin/qsmt.exe run -
  unsat

Portfolio sampler (races sa/sqa/pt/tabu/greedy; the first verified read
wins and cancels the rest, so only the stable lines are compared):

  $ ../../bin/qsmt.exe gen reverse hello --sampler portfolio --seed 1 --jobs 2 | grep -v timing
  constraint: reverse "hello"
  qubo      : qubo(vars=35, interactions=0, offset=21)
  result    : "olleh" (energy 0, verified)

Hardware-emulation sampler: minor embedding into a Chimera graph, chain
penalties, majority-vote unembedding. The stats line reports what the
embedding cost; the auto-sizing probe shares its routing work with the
solve through the embedding cache, hence the first-run cache hit:

  $ ../../bin/qsmt.exe gen includes 'hello world' world --sampler hardware --topology chimera | grep -v timing
  constraint: find "world" within "hello world"
  qubo      : qubo(vars=7, interactions=21, offset=0)
  result    : position 6 (energy -5, verified)
  hardware  : chimera(3,3,4): 28/72 qubits, max chain 11, breaks 0.0%, strength 12, embed tries 1 (cache hit), escalations 0

  $ ../../bin/qsmt.exe gen palindrome 4 --sampler hardware --topology chimera | grep -v timing
  constraint: generate a palindrome of length 4
  qubo      : qubo(vars=28, interactions=14, offset=0)
  result    : "X??X" (energy 0, verified)
  hardware  : chimera(2,2,4): 28/32 qubits, max chain 1, breaks 0.0%, strength 4, embed tries 2 (cache hit), escalations 0

Weak chains under heavy control noise degrade loudly, not silently: the
chain strength escalates geometrically, and when breaks stay above the
threshold the answer is flagged DEGRADED (and NOT satisfied — never a
silent wrong answer):

  $ ../../bin/qsmt.exe gen includes 'hello world' world --sampler hardware --topology chimera --chain-strength 0.0001 --noise 2 --reads 8 --sweeps 200 | grep -v timing
  constraint: find "world" within "hello world"
  qubo      : qubo(vars=7, interactions=21, offset=0)
  result    : position 0 (energy 0, NOT satisfied)
  hardware  : chimera(3,3,4): 28/72 qubits, max chain 11, breaks 57.1%, strength 0.0008, embed tries 1 (cache hit), escalations 3
  DEGRADED: 57.1% of chains still broken (threshold 25.0%)

SMT-LIB runs with --sampler classical go through CDCL bit-blasting (an
earlier revision silently fell back to the exact enumerator here):

  $ echo '(declare-const x String)(assert (str.contains x "cat"))(assert (= (str.len x) 3))(check-sat)(get-model)' | ../../bin/qsmt.exe run - --sampler classical
  sat
  (
    (define-fun x () String "cat")
  )

Classical backend proves unsat:

  $ ../../bin/qsmt.exe gen includes aaaa xyz --sampler classical
  constraint: find "xyz" within "aaaa"
  result    : unsat

Telemetry: --metrics prints the aggregate table. Wall-clock values vary
run to run and are masked; everything seeded — counts, energies,
success probability — is byte-stable:

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 --metrics | grep -v timing | sed -E 's/ +[0-9]+\.[0-9]+ ?ms$/ [TIME]/'
  constraint: reverse "hello"
  qubo      : qubo(vars=35, interactions=0, offset=21)
  result    : "olleh" (energy 0, verified)
  metrics   : spans (count, total)
    decode                          1 [TIME]
    encode                          1 [TIME]
    sample                          1 [TIME]
    solve                           1 [TIME]
  metrics   : counters
    encode.reverse.penalty_terms      0
    encode.reverse.vars            35
    sa.reads                       32
    solve.constraints               1
  metrics   : histograms (count, min, mean, max)
    sa.read_energy                 32          0     0.4375          3
  metrics   : time-to-solution
    p_success                       0.719
    time_per_read [TIME]
    tts(99%) [TIME]

--trace streams the full event log as JSONL; the event count is
deterministic (strided sweep events depend only on sweep indices, never
on wall clock), and `qsmt trace` validates the format contract:

  $ ../../bin/qsmt.exe gen reverse hello --seed 1 --trace trace.jsonl > /dev/null
  $ ../../bin/qsmt.exe trace trace.jsonl
  trace.jsonl: 1103 events, well-formed JSONL, monotone timestamps

  $ printf '{"ts":1.0,"ev":"a"}\n{"ts":0.5,"ev":"b"}\n' > bad.jsonl
  $ ../../bin/qsmt.exe trace bad.jsonl
  qsmt: invalid trace: line 2: timestamp 0.5 decreases (previous 1)
  [2]

Errors are reported, not crashed on:

  $ ../../bin/qsmt.exe gen contains 2 cat 2>&1
  qsmt: invalid constraint: substring longer than the string
  [2]

  $ ../../bin/qsmt.exe gen frobnicate x 2>&1 | head -1
  qsmt: unknown operation "frobnicate" or wrong arguments. Operations: equals S | concat S... | contains LEN SUB | includes HAY NEEDLE | indexof LEN SUB IDX | length CHARS TARGET | replace-all SRC C D | replace SRC C D | reverse S | palindrome LEN | regex PAT LEN
