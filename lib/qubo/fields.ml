module Bitvec = Qsmt_util.Bitvec

type t = {
  ising : Ising.t;
  row_ptr : int array;
  col : int array;
  value : float array;
  mutable spins : Ising.spins;
  field : float array;
  mutable energy : float;
  refresh_every : int; (* accepted flips between from-scratch refreshes; 0 = never *)
  mutable flips : int; (* accepted flips since the last refresh *)
}

let check_length ising spins =
  let n = Ising.num_spins ising in
  if Bitvec.length spins <> n then
    invalid_arg
      (Printf.sprintf "Fields: assignment has %d spins, problem has %d" (Bitvec.length spins) n)

let recompute t =
  let n = Ising.num_spins t.ising in
  for i = 0 to n - 1 do
    t.field.(i) <- Ising.local_field t.ising t.spins i
  done;
  t.energy <- Ising.energy t.ising t.spins;
  t.flips <- 0

let check_refresh_every refresh_every =
  if refresh_every < 0 then
    invalid_arg
      (Printf.sprintf "Fields: refresh_every %d is negative (0 means never refresh)" refresh_every)

let create ?(refresh_every = 0) ising spins =
  check_refresh_every refresh_every;
  check_length ising spins;
  let row_ptr, col, value = Ising.csr ising in
  let t =
    {
      ising;
      row_ptr;
      col;
      value;
      spins;
      field = Array.make (Ising.num_spins ising) 0.;
      energy = 0.;
      refresh_every;
      flips = 0;
    }
  in
  recompute t;
  t

let problem t = t.ising
let num_spins t = Ising.num_spins t.ising
let spins t = t.spins
let energy t = t.energy
let field t i = t.field.(i)
let spin_sign t i = if Bitvec.get t.spins i then 1. else -1.

(* Same expression shape as Ising.flip_delta so the two agree exactly
   whenever the tracked field does. *)
let delta t i = -2. *. spin_sign t i *. t.field.(i)

let refresh t = recompute t

let flip t i =
  t.energy <- t.energy +. delta t i;
  Bitvec.flip t.spins i;
  (* s_i changed by (new - old) = 2 * new, so f_j += 2 * J_ij * new_s_i;
     f_i itself does not depend on s_i and is untouched. *)
  let two_s = 2. *. spin_sign t i in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    let j = t.col.(k) in
    t.field.(j) <- t.field.(j) +. (t.value.(k) *. two_s)
  done;
  t.flips <- t.flips + 1;
  if t.refresh_every > 0 && t.flips >= t.refresh_every then recompute t

let drift t = Float.abs (t.energy -. Ising.energy t.ising t.spins)

let reset t spins =
  check_length t.ising spins;
  t.spins <- spins;
  recompute t
