module Bitvec = Qsmt_util.Bitvec

(* ------------------------------------------------------------------ *)
(* findings *)

type severity = Info | Warning | Error

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

type location = Global | Var of int | Coupler of int * int

type finding = {
  severity : severity;
  check : string;
  location : location;
  message : string;
}

let pp_location ppf = function
  | Global -> Format.pp_print_string ppf "global"
  | Var i -> Format.fprintf ppf "var %d" i
  | Coupler (i, j) -> Format.fprintf ppf "coupler (%d,%d)" i j

let pp_finding ppf f =
  Format.fprintf ppf "%-7s %-22s %a: %s"
    (String.uppercase_ascii (severity_name f.severity))
    f.check pp_location f.location f.message

let max_severity findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some f.severity
      | Some s -> if severity_rank f.severity > severity_rank s then Some f.severity else acc)
    None findings

let count_severity findings s = List.length (List.filter (fun f -> f.severity = s) findings)

(* ------------------------------------------------------------------ *)
(* configuration *)

type config = {
  precision_ratio : float;
  dyadic_bits : int;
  gap_fraction : float;
  max_enum_vars : int;
}

let default_config =
  { precision_ratio = 1e3; dyadic_bits = 20; gap_fraction = 0.25; max_enum_vars = 20 }

let max_enum_cap = 24

let finding severity check location message = { severity; check; location; message }

(* ------------------------------------------------------------------ *)
(* structural checks *)

let check_finite q =
  let acc = ref [] in
  let bad loc v =
    acc :=
      finding Error "non-finite-coefficient" loc
        (Printf.sprintf "coefficient is %g; every downstream energy is garbage" v)
      :: !acc
  in
  if not (Float.is_finite (Qubo.offset q)) then bad Global (Qubo.offset q);
  Qubo.iter_linear q (fun i v -> if not (Float.is_finite v) then bad (Var i) v);
  Qubo.iter_quadratic q (fun i j v -> if not (Float.is_finite v) then bad (Coupler (i, j)) v);
  List.rev !acc

(* Extremes over the finite coefficients only — non-finite entries are
   check_finite's problem, and folding a nan here would poison the ratio. *)
let coefficient_extremes q =
  let max_abs = ref 0. and min_abs = ref infinity in
  let fold v =
    let a = Float.abs v in
    if Float.is_finite a && a > 0. then begin
      if a > !max_abs then max_abs := a;
      if a < !min_abs then min_abs := a
    end
  in
  Qubo.iter_linear q (fun _ v -> fold v);
  Qubo.iter_quadratic q (fun _ _ v -> fold v);
  if !max_abs = 0. then None else Some (!max_abs, !min_abs)

let check_dynamic_range ?(config = default_config) q =
  match coefficient_extremes q with
  | None -> []
  | Some (max_abs, min_abs) ->
    let ratio = max_abs /. min_abs in
    if ratio > config.precision_ratio then
      [
        finding Warning "dynamic-range" Global
          (Printf.sprintf
             "coefficient dynamic range %.3g (max |Q| %g, min nonzero |Q| %g) exceeds the analog \
              precision limit %.3g: the smallest terms drown in hardware control noise"
             ratio max_abs min_abs config.precision_ratio);
      ]
    else []

let check_coefficient_quantum ?(config = default_config) q =
  let quantum = Float.of_int (1 lsl config.dyadic_bits) in
  let offenders = ref [] and total = ref 0 in
  let fold loc v =
    if Float.is_finite v && not (Float.is_integer (v *. quantum)) then begin
      incr total;
      if List.length !offenders < 3 then offenders := (loc, v) :: !offenders
    end
  in
  fold Global (Qubo.offset q);
  Qubo.iter_linear q (fun i v -> fold (Var i) v);
  Qubo.iter_quadratic q (fun i j v -> fold (Coupler (i, j)) v);
  (* Total by construction: [total = 0] (the empty QUBO included) means
     no finding, and any positive [total] recorded at least one offender
     — but handle the empty list anyway instead of asserting, so a
     future refactor of the sampling-3-examples logic cannot turn a lint
     run into a process abort. *)
  match List.rev !offenders with
  | [] -> []
  | (loc, v) :: _ ->
    let example = Format.asprintf "%a = %.17g" pp_location loc v in
    [
      finding Info "coefficient-quantum" Global
        (Printf.sprintf
           "%d coefficient(s) are not multiples of 2^-%d (e.g. %s): energy sums are inexact, so \
            exact ties may be resolved by rounding noise"
           !total config.dyadic_bits example);
    ]

let dead_variables q =
  let n = Qubo.num_vars q in
  let dead = ref [] in
  for i = n - 1 downto 0 do
    if Qubo.linear q i = 0. && Qubo.degree q i = 0 then dead := i :: !dead
  done;
  !dead

let format_var_list vars =
  let shown = List.filteri (fun i _ -> i < 8) vars in
  let body = String.concat ", " (List.map string_of_int shown) in
  if List.length vars > 8 then body ^ ", ..." else body

let check_dead_variables q =
  match dead_variables q with
  | [] -> []
  | dead ->
    [
      finding Info "dead-variable" Global
        (Printf.sprintf
           "%d of %d variable(s) have no linear term and no couplers (%s): their bits decode to \
            whatever the sampler left behind"
           (List.length dead) (Qubo.num_vars q) (format_var_list dead));
    ]

let check_connectivity q =
  let g = Qgraph.of_qubo q in
  let coupled_components =
    List.filter (fun c -> List.length c >= 2) (Qgraph.connected_components g)
  in
  if List.length coupled_components >= 2 then
    [
      finding Info "disconnected-components" Global
        (Printf.sprintf
           "the coupled variables split into %d independent components: one anneal solves several \
            unrelated subproblems at once"
           (List.length coupled_components));
    ]
  else []

let check_preprocess q =
  let r = Preprocess.reduce q in
  let fixed = Preprocess.num_fixed r and n = Qubo.num_vars q in
  if fixed = 0 || n = 0 then []
  else
    [
      finding Info "preprocess-fixable" Global
        (Printf.sprintf "dominance preprocessing fixes %d/%d variable(s) before any sampling" fixed
           n);
    ]

let check_overwrites overwrites =
  match overwrites with
  | [] -> []
  | collisions ->
    let shown = List.filteri (fun i _ -> i < 3) collisions in
    let examples =
      String.concat ", "
        (List.map
           (fun ov ->
             Printf.sprintf "Q[%d,%d] %g->%g" ov.Qubo.ov_i ov.Qubo.ov_j ov.Qubo.old_value
               ov.Qubo.new_value)
           shown)
    in
    [
      finding Info "overwrite-collision" Global
        (Printf.sprintf
           "%d last-write-wins overwrite(s) during encoding (e.g. %s%s): each discarded an earlier \
            penalty term (the paper's §4.3 semantics)"
           (List.length collisions) examples
           (if List.length collisions > 3 then ", ..." else ""));
    ]

let structural ?(config = default_config) ?(overwrites = []) q =
  check_finite q
  @ check_dynamic_range ~config q
  @ check_coefficient_quantum ~config q
  @ check_dead_variables q
  @ check_connectivity q
  @ check_preprocess q
  @ check_overwrites overwrites

(* ------------------------------------------------------------------ *)
(* exhaustive enumeration *)

type enumeration = {
  reduction : Preprocess.t;
  num_free : int;
  energies : float array;
  ground_energy : float;
  ground_count : int;
  spectral_gap : float option;
  min_flip_gap : float option;
}

let gray k = k lxor (k lsr 1)

(* Index of the bit that flips between gray (k-1) and gray k: the number
   of trailing zeros of k. *)
let flipped_bit k =
  let rec go k acc = if k land 1 = 1 then acc else go (k lsr 1) (acc + 1) in
  go k 0

let ground_tolerance e = 1e-9 *. (1. +. Float.abs e.ground_energy)

let assignment e k =
  if k < 0 || k >= Array.length e.energies then
    invalid_arg (Printf.sprintf "Analyze.assignment: index %d out of range" k);
  let g = gray k in
  let bits = Bitvec.init e.num_free (fun b -> (g lsr b) land 1 = 1) in
  Preprocess.expand e.reduction bits

let enumerate ?max_vars q =
  let max_vars =
    match max_vars with
    | None -> default_config.max_enum_vars
    | Some m -> min m max_enum_cap
  in
  let reduction = Preprocess.reduce q in
  let free = Preprocess.num_free reduction in
  if free > max_vars then Result.Error free
  else begin
    let residual = Preprocess.residual reduction in
    let count = 1 lsl free in
    let energies = Array.make count 0. in
    let bits = Bitvec.create free in
    (* Gray-code walk: one O(degree) flip per step. The residual offset
       already accounts for the fixed variables, so residual energies are
       original energies. *)
    let e = ref (Qubo.energy residual bits) in
    energies.(0) <- !e;
    for k = 1 to count - 1 do
      let b = flipped_bit k in
      e := !e +. Qubo.flip_delta residual bits b;
      Bitvec.flip bits b;
      energies.(k) <- !e
    done;
    let ground_energy = Array.fold_left Float.min energies.(0) energies in
    let tol = 1e-9 *. (1. +. Float.abs ground_energy) in
    let ground_count = ref 0 in
    let first_excited = ref infinity in
    Array.iter
      (fun v ->
        if v <= ground_energy +. tol then incr ground_count
        else if v < !first_excited then first_excited := v)
      energies;
    let spectral_gap =
      if Float.is_finite !first_excited then Some (!first_excited -. ground_energy) else None
    in
    (* Shallowest single-bit excitation from one ground state of the
       full problem (any ground representative works for the checks this
       feeds: a soft bias shrinks it everywhere). *)
    let min_flip_gap =
      let partial =
        {
          reduction;
          num_free = free;
          energies;
          ground_energy;
          ground_count = !ground_count;
          spectral_gap;
          min_flip_gap = None;
        }
      in
      let rec first_ground k =
        if energies.(k) <= ground_energy +. tol then k else first_ground (k + 1)
      in
      let full = assignment partial (first_ground 0) in
      let best = ref infinity in
      for i = 0 to Qubo.num_vars q - 1 do
        let d = Float.abs (Qubo.flip_delta q full i) in
        if d > tol && d < !best then best := d
      done;
      if Float.is_finite !best then Some !best else None
    in
    Result.Ok
      {
        reduction;
        num_free = free;
        energies;
        ground_energy;
        ground_count = !ground_count;
        spectral_gap;
        min_flip_gap;
      }
  end
