module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry

type params = { subsize : int; max_rounds : int; jobs : int; seed : int }

let default = { subsize = 48; max_rounds = 25; jobs = 0; seed = 0 }

type shard = { shard_id : int; vars : int array; boundary : int }

type report = {
  shards : shard list;
  rounds : int;
  accepted : int;
  rejected : int;
  shard_failures : int;
  stitched_energy : float;
  energy : float;
  bit_exact : bool;
  single_shard_rescue : bool;
}

(* ------------------------------------------------------------------ *)
(* partitioning *)

(* BFS visit order within one connected component: consecutive chunks of
   the order are dominated by intra-layer and layer-to-next-layer edges,
   so cutting between chunks severs few couplers — the cheap stand-in
   for a real min-cut that qbsolv also settles for. *)
let bfs_order g comp =
  let inside = Hashtbl.create (List.length comp) in
  List.iter (fun v -> Hashtbl.replace inside v true) comp;
  let seen = Hashtbl.create (List.length comp) in
  let order = ref [] in
  let queue = Queue.create () in
  (* components from Qgraph are sorted ascending, so the root — and with
     it the whole order — is deterministic *)
  List.iter
    (fun src ->
      if not (Hashtbl.mem seen src) then begin
        Hashtbl.replace seen src true;
        Queue.add src queue;
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          order := v :: !order;
          List.iter
            (fun w ->
              if Hashtbl.mem inside w && not (Hashtbl.mem seen w) then begin
                Hashtbl.replace seen w true;
                Queue.add w queue
              end)
            (Qgraph.neighbors g v)
        done
      end)
    comp;
  List.rev !order

let chunk size l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = size then go (List.rev cur :: acc) [ x ] 1 rest else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let partition ~subsize q =
  if subsize < 1 then invalid_arg "Decompose.partition: subsize must be >= 1";
  let g = Qgraph.of_qubo q in
  let blocks =
    List.concat_map
      (fun comp ->
        if List.length comp <= subsize then [ comp ] else chunk subsize (bfs_order g comp))
      (Qgraph.connected_components g)
  in
  (* First-fit-decreasing: small components share a shard instead of each
     paying a full sampler call. Bins keep their blocks' variables merged
     and ascending, so shard contents are independent of packing order. *)
  let blocks =
    List.stable_sort (fun a b -> compare (List.length b) (List.length a)) blocks
  in
  let bins : (int * int list) ref list ref = ref [] in
  List.iter
    (fun block ->
      let size = List.length block in
      match List.find_opt (fun bin -> fst !bin + size <= subsize) !bins with
      | Some bin -> bin := (fst !bin + size, block @ snd !bin)
      | None -> bins := !bins @ [ ref (size, block) ])
    blocks;
  List.map (fun bin -> Array.of_list (List.sort compare (snd !bin))) !bins

(* ------------------------------------------------------------------ *)
(* clamped subproblem extraction *)

let extract q x vars =
  let n = Qubo.num_vars q in
  if Bitvec.length x <> n then
    invalid_arg
      (Printf.sprintf "Decompose.extract: assignment has %d bits, problem %d variables"
         (Bitvec.length x) n);
  let local = Array.make n (-1) in
  Array.iteri
    (fun k v ->
      if v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Decompose.extract: variable %d out of [0,%d)" v n);
      local.(v) <- k)
    vars;
  let b = Qubo.builder () in
  let off = ref (Qubo.offset q) in
  Qubo.iter_linear q (fun i v ->
      if local.(i) >= 0 then Qubo.add b local.(i) local.(i) v
      else if Bitvec.get x i then off := !off +. v);
  Qubo.iter_quadratic q (fun i j v ->
      match (local.(i) >= 0, local.(j) >= 0) with
      | true, true -> Qubo.add b local.(i) local.(j) v
      | true, false -> if Bitvec.get x j then Qubo.add b local.(i) local.(i) v
      | false, true -> if Bitvec.get x i then Qubo.add b local.(j) local.(j) v
      | false, false -> if Bitvec.get x i && Bitvec.get x j then off := !off +. v);
  Qubo.add_offset b !off;
  Qubo.freeze ~num_vars:(Array.length vars) b

(* ------------------------------------------------------------------ *)
(* solve *)

let validate params =
  if params.subsize < 1 then invalid_arg "Decompose.solve: subsize must be >= 1";
  if params.max_rounds < 1 then invalid_arg "Decompose.solve: max_rounds must be >= 1"

let boundary_counts q shard_of num_shards =
  let counts = Array.make num_shards 0 in
  Qubo.iter_quadratic q (fun i j _ ->
      if shard_of.(i) <> shard_of.(j) then begin
        counts.(shard_of.(i)) <- counts.(shard_of.(i)) + 1;
        counts.(shard_of.(j)) <- counts.(shard_of.(j)) + 1
      end);
  counts

let solve ?(params = default) ?init ?(stop = fun () -> false)
    ?(telemetry = Telemetry.null) ~solve_shard q =
  validate params;
  let n = Qubo.num_vars q in
  let tracked = Telemetry.enabled telemetry in
  let root = Telemetry.span telemetry "decomp" in
  let blocks = partition ~subsize:params.subsize q in
  let num_shards = List.length blocks in
  let shard_of = Array.make n (-1) in
  List.iteri (fun id vars -> Array.iter (fun v -> shard_of.(v) <- id) vars) blocks;
  let boundaries = boundary_counts q shard_of num_shards in
  let shards =
    List.mapi (fun id vars -> { shard_id = id; vars; boundary = boundaries.(id) }) blocks
  in
  let shard_arr = Array.of_list shards in
  if tracked then begin
    Telemetry.count telemetry "decomp.shards" num_shards;
    Array.iter
      (fun s -> Telemetry.observe telemetry "decomp.shard_size" (float_of_int (Array.length s.vars)))
      shard_arr
  end;
  let x =
    match init with
    | Some b ->
      if Bitvec.length b <> n then
        invalid_arg
          (Printf.sprintf "Decompose.solve: init has %d bits, problem %d variables"
             (Bitvec.length b) n);
      Bitvec.copy b
    | None -> Bitvec.random (Prng.create params.seed) n
  in
  let energy = ref (Qubo.energy q x) in
  let rounds = ref 0 and accepted = ref 0 and rejected = ref 0 in
  (* bumped from worker domains, hence atomic *)
  let failures = Atomic.make 0 in
  let best_single = ref None in
  let jobs = if params.jobs > 0 then params.jobs else Parallel.recommended_domains () in
  let improved = ref (num_shards > 0) in
  while !improved && !rounds < params.max_rounds && not (stop ()) do
    incr rounds;
    improved := false;
    let round = !rounds in
    let round_span = Telemetry.span telemetry ~parent:root "decomp.round" in
    (* Jacobi: every shard solves against the same snapshot, so the
       concurrent solves never observe each other's flips. *)
    let snapshot = Bitvec.copy x in
    let proposals = Array.make num_shards None in
    let work (lo, size) () =
      for k = lo to lo + size - 1 do
        if not (stop ()) then begin
          let s = shard_arr.(k) in
          match
            Telemetry.with_span telemetry ~parent:round_span "decomp.shard" (fun _ ->
                let sub = extract q snapshot s.vars in
                let y = solve_shard ~shard:k ~round sub in
                if Bitvec.length y <> Array.length s.vars then
                  invalid_arg
                    (Printf.sprintf
                       "Decompose.solve: shard %d solver returned %d bits for %d variables" k
                       (Bitvec.length y) (Array.length s.vars));
                y)
          with
          | y ->
            proposals.(k) <- Some y;
            if tracked then
              Telemetry.emit telemetry ~span:round_span "decomp.shard.done"
                [
                  ("shard", Telemetry.Int k);
                  ("round", Telemetry.Int round);
                  ("size", Telemetry.Int (Array.length s.vars));
                  ("boundary", Telemetry.Int s.boundary);
                ]
          | exception _ ->
            (* a failed shard keeps its current assignment this round;
               the run continues with the other shards *)
            Atomic.incr failures
        end
      done
    in
    Parallel.Pool.run_list ~telemetry (Parallel.Pool.global ())
      (List.map work (Parallel.partition num_shards jobs));
    (* Sequential stitch: apply a proposal's flips, accept on strict
       improvement of the tracked energy, revert bit-for-bit otherwise. *)
    Array.iteri
      (fun k prop ->
        match prop with
        | None -> ()
        | Some y ->
          let s = shard_arr.(k) in
          let flips = ref [] in
          Array.iteri
            (fun ki v -> if Bitvec.get x v <> Bitvec.get y ki then flips := v :: !flips)
            s.vars;
          if round = 1 then begin
            (* price the single-shard candidate (init + this proposal
               alone) with a fresh whole-problem evaluation; the best one
               backstops the iterated result *)
            let cand = Bitvec.copy snapshot in
            Array.iteri (fun ki v -> Bitvec.set cand v (Bitvec.get y ki)) s.vars;
            let ce = Qubo.energy q cand in
            match !best_single with
            | Some (_, be) when be <= ce -> ()
            | _ -> best_single := Some (cand, ce)
          end;
          if !flips <> [] then begin
            let delta =
              List.fold_left
                (fun acc v ->
                  let d = Qubo.flip_delta q x v in
                  Bitvec.flip x v;
                  acc +. d)
                0. !flips
            in
            if delta < 0. then begin
              energy := !energy +. delta;
              incr accepted;
              improved := true
            end
            else begin
              List.iter (fun v -> Bitvec.flip x v) !flips;
              incr rejected
            end
          end)
      proposals;
    Telemetry.finish telemetry round_span
  done;
  let stitched = ref !energy in
  let repriced = ref (Qubo.energy q x) in
  let rescue =
    match !best_single with
    | Some (cand, ce) when ce < !repriced ->
      (* boundary iteration ended above the best single-shard answer —
         return that answer instead, so decompose-then-stitch is never
         worse than any one shard alone *)
      Bitvec.iteri (fun i b -> Bitvec.set x i b) cand;
      stitched := ce;
      repriced := Qubo.energy q x;
      true
    | _ -> false
  in
  let bit_exact = !stitched = !repriced in
  if tracked then begin
    Telemetry.count telemetry "decomp.rounds" !rounds;
    Telemetry.count telemetry "decomp.accepted" !accepted;
    Telemetry.count telemetry "decomp.rejected" !rejected;
    if Atomic.get failures > 0 then
      Telemetry.count telemetry "decomp.shard_failed" (Atomic.get failures);
    if not bit_exact then Telemetry.count telemetry "decomp.reprice_mismatch" 1;
    if rescue then Telemetry.count telemetry "decomp.single_shard_rescue" 1;
    Telemetry.emit telemetry ~span:root "decomp.done"
      [
        ("vars", Telemetry.Int n);
        ("shards", Telemetry.Int num_shards);
        ("rounds", Telemetry.Int !rounds);
        ("accepted", Telemetry.Int !accepted);
        ("energy", Telemetry.Float !repriced);
        ("bit_exact", Telemetry.Bool bit_exact);
      ]
  end;
  Telemetry.finish telemetry root;
  ( x,
    {
      shards;
      rounds = !rounds;
      accepted = !accepted;
      rejected = !rejected;
      shard_failures = Atomic.get failures;
      stitched_energy = !stitched;
      energy = !repriced;
      bit_exact;
      single_shard_rescue = rescue;
    } )
