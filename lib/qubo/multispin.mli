(** Bit-parallel multi-replica sweep state (multi-spin coding).

    {!Fields} answers "what does flipping spin [i] cost?" for {e one}
    replica. Annealing-portfolio workloads run 32–64 independent
    replicas over the {e same} problem — SA reads, Trotter slices in
    SQA, the temperature ladder in PT — and a scalar kernel re-streams
    the CSR row of every touched spin once {e per replica}. Multi-spin
    coding packs up to 64 replicas' spins for site [i] into one [int64]
    word (bit [l] = lane [l]'s spin), so a single pass over the row
    advances every lane at once: one memory traversal per site per
    sweep, amortised across all replicas.

    Per lane the kernel maintains exactly what {!Fields} maintains — the
    local fields [f_l(i) = h_i + sum_j J_ij s_l(j)] and the running
    energy [H(s_l)] — and the float-operation order of every update and
    every from-scratch recompute matches the scalar kernel
    ({!Ising.energy} / {!Ising.local_field}) addition for addition.
    Consequently a lane that is driven through the same flip sequence as
    a scalar {!Fields} state reports bit-identical fields, deltas and
    energies; the property tests use the scalar kernel as the oracle on
    exactly this contract.

    Acceptance comes in two flavors (see DESIGN.md, "Multi-spin
    coding"):

    - {!accept_mask} — the fast path: exact Metropolis for all lanes
      from O(log lanes) PRNG words via geometric octave bucketing. The
      per-lane accept {e distribution} is exactly the scalar sampler's;
      only the PRNG consumption pattern differs.
    - {!accept_mask_lockstep} — one PRNG stream per lane, consumed with
      the scalar sweep's exact conditional-draw discipline, making a
      packed run bit-identical to scalar runs from the same seeds. This
      is the parity-test vehicle, not the fast path.

    A state is single-domain, like {!Fields}: scratch buffers live in
    the state, so concurrent sweeps need one state per domain. *)

type t

val max_lanes : int
(** 64: the word width. Callers with more replicas run several states
    (or groups of reads); samplers decline packing past this width. *)

val create : ?refresh_every:int -> Ising.t -> Ising.spins array -> t
(** [create ising lanes] packs the given assignments (lane [l] = element
    [l]) and computes all fields and energies in O(n·lanes + nnz·lanes).
    The assignments are {e copied} into the packed words, not adopted —
    unlike {!Fields.create}. [refresh_every], when positive, recomputes
    from scratch after that many accepted lane-flips; [0] (default)
    means never.
    @raise Invalid_argument if the array is empty or longer than
    {!max_lanes}, on any spin-count mismatch, or on negative
    [refresh_every]. *)

val problem : t -> Ising.t
val num_spins : t -> int

val lanes : t -> int
(** Number of live lanes, [1..64]. *)

val lane_mask : t -> int64
(** Low [lanes t] bits set; the tail bits of every word are kept zero
    and masked out of every accept mask. *)

val word : t -> int -> int64
(** [word t i] is site [i]'s packed spins: bit [l] set iff lane [l] has
    spin up. Bits at and above [lanes t] are zero. *)

val energy : t -> int -> float
(** [energy t l] is lane [l]'s tracked [H(s_l)], O(1). *)

val energies : t -> float array
(** All tracked lane energies, freshly copied. *)

val best_lane : t -> int
(** Lane index with the lowest tracked energy (ties to the lowest
    index). *)

val field : t -> int -> int -> float
(** [field t i l] is lane [l]'s tracked local field at site [i]. *)

val delta : t -> int -> int -> float
(** [delta t i l] is lane [l]'s flip cost at site [i] — the same
    expression as {!Fields.delta}, O(1). *)

val deltas : t -> int -> float array -> unit
(** [deltas t i buf] fills [buf.(l)] with [delta t i l] for every lane.
    [buf] must have length ≥ [lanes t]. The word is read once; this is
    the sweep-loop form. *)

val lane_spins : t -> int -> Ising.spins
(** [lane_spins t l] gathers lane [l] back out to a scalar assignment
    (fresh, not aliased).
    @raise Invalid_argument if [l] is outside [0..lanes t - 1]. *)

val flip : t -> int -> int64 -> unit
(** [flip t i mask] flips site [i] in every lane whose bit is set in
    [mask] (bits above {!lane_mask} are ignored): folds each flipped
    lane's delta into its energy, XORs the word, and updates the flipped
    lanes' neighbor fields in one CSR-row pass. O(degree i · popcount).
    A no-op when the masked [mask] is zero. *)

type draws
(** Bulk-draw state for the bucketed accept paths: a nested,
    allocation-free 32-bit generator (xoshiro128++ over native ints).
    [Qsmt_util.Prng.t] boxes every 64-bit draw, which would dominate the
    packed sweep; this state draws round words for ~1ns each. *)

val draws : Qsmt_util.Prng.t -> draws
(** Seeds a bulk-draw state from the caller's generator (consumes two
    [bits64] draws, so runs stay deterministic under the usual stream
    discipline). Create once per run and reuse across sweeps. *)

val accept_mask : t -> draws:draws -> ?only:int64 -> betas:float array -> float array -> int64
(** [accept_mask t ~draws ~betas deltas] draws one Metropolis accept
    decision per lane — bit [l] of the result is set iff lane [l]
    accepts a flip of cost [deltas.(l)] at inverse temperature
    [betas.(l)] — using geometric octave bucketing: non-positive deltas
    accept outright; each positive [x = beta·delta] has acceptance
    probability [p = exp(-x)] in the octave [(2^-(m+1), 2^-m]] for
    [m = floor(x / ln 2)]; successive round words reveal each lane's
    uniform one binary digit at a time (for all lanes simultaneously),
    which settles every lane whose first set bit misses its octave; only
    the boundary octave pays a float draw and an [exp]. Expected cost
    ~7 round words and a handful of [exp]s per site, instead of one
    float draw and one [exp] per lane. The marginal accept probability
    per lane is {e exactly} [min 1 (exp (-beta·delta))]. [only]
    restricts the decision to the given lanes (others get a 0 bit and
    consume nothing lane-specific). *)

val metropolis_sweep : t -> draws:draws -> beta:float -> int
(** One full Metropolis sweep over every site and lane at a uniform
    [beta] — {!deltas}, {!accept_mask} and {!flip} fused into a single
    pass per site with no [int64] round-trips or intermediate buffers.
    The accept decisions are drawn exactly as {!accept_mask} draws them.
    Returns the number of accepted lane-flips. This is the packed SA
    fast path's inner loop. *)

val accept_mask_lockstep : t -> rngs:Qsmt_util.Prng.t array -> betas:float array -> float array -> int64
(** Like {!accept_mask} but lane [l] decides with [rngs.(l)] using the
    scalar sweep's exact expression and draw discipline
    ([delta <= 0. || Prng.float rng < exp (-beta *. delta)] — no draw
    consumed on downhill moves). A packed run stepping lanes with this
    mask is bit-identical to scalar runs seeded with the same streams.
    [rngs] and [betas] must have length ≥ [lanes t]. *)

val reset : t -> Ising.spins array -> unit
(** [reset t lanes] packs new assignments (same problem, same lane
    count) and recomputes, reusing all storage — the multi-read
    counterpart of {!Fields.reset}.
    @raise Invalid_argument on lane-count or spin-count mismatch. *)

val refresh : t -> unit
(** Recomputes every lane's fields and energy from the packed words,
    zeroing accumulated drift. O(n·lanes + nnz·lanes). *)

val drift : t -> float
(** Worst lane's [|tracked energy - recomputed energy|], without
    mutating. *)
