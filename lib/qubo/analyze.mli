(** Static analysis of frozen QUBOs — find broken or hardware-hostile
    encodings before anything samples.

    The paper's central artifact is the encoding: each string constraint
    compiles to a QUBO whose ground states must decode exactly to the
    constraint's satisfying assignments. Until now the only way to
    discover a broken or fragile encoding was to run a sampler and
    notice a wrong answer; Bian et al. ("Solving SAT and MaxSAT with a
    Quantum Annealer") show that penalty-gap size and coefficient
    precision — not annealer quality — dominate whether hardware finds
    correct answers. This module is the QUBO half of the static gate:
    checks that need only the matrix (finiteness, dynamic range,
    coefficient quantum, dead variables, connectivity, preprocessing
    headroom, builder overwrite collisions) plus an exhaustive
    enumeration engine over the {!Preprocess} residual that the
    constraint-aware linter ({!Qsmt_strtheory.Lint}) drives against its
    semantic oracle.

    Every check is pure and deterministic: same QUBO, same findings. *)

(** {1 Findings} *)

type severity = Info | Warning | Error

val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val severity_name : severity -> string
(** Lowercase: ["info"] / ["warning"] / ["error"]. *)

type location =
  | Global  (** about the problem as a whole *)
  | Var of int  (** one variable (a diagonal entry) *)
  | Coupler of int * int  (** one interaction, [i < j] *)

type finding = {
  severity : severity;
  check : string;
      (** stable kebab-case tag of the check that fired, e.g.
          ["dead-variable"]; telemetry counters and the CLI's JSON output
          key on it *)
  location : location;
  message : string;  (** human-readable, one line *)
}

val pp_location : Format.formatter -> location -> unit
val pp_finding : Format.formatter -> finding -> unit
(** [SEVERITY check location: message]. *)

val max_severity : finding list -> severity option
(** Highest severity present, [None] on no findings. *)

val count_severity : finding list -> severity -> int

(** {1 Configuration} *)

type config = {
  precision_ratio : float;
      (** warn when [max|Q| / min nonzero |Q|] exceeds this — analog
          annealers realize coefficients with a few-percent error, so a
          large dynamic range means small terms drown in control noise
          (default 1e3) *)
  dyadic_bits : int;
      (** coefficients should be integer multiples of [2^-dyadic_bits];
          others (e.g. the literal 0.1) make float energy sums inexact,
          so exact ties wobble with summation order (default 20) *)
  gap_fraction : float;
      (** penalty gaps and single-flip excitations below
          [gap_fraction × max|Q|] are flagged as fragile (default 0.25) *)
  max_enum_vars : int;
      (** exhaustive enumeration bails out when the preprocessed
          residual keeps more free variables than this (default 20,
          hard-capped at {!max_enum_cap}) *)
}

val default_config : config
val max_enum_cap : int
(** 24 — [2^24] energies is the largest table {!enumerate} will build. *)

(** {1 Structural checks (no enumeration)} *)

val check_finite : Qubo.t -> finding list
(** [Error] per non-finite (nan/inf) linear, quadratic, or offset
    entry. Everything downstream of a non-finite coefficient — energies,
    gaps, sampler acceptance tests — is garbage. *)

val check_dynamic_range : ?config:config -> Qubo.t -> finding list
(** [Warning] when the coefficient dynamic range exceeds
    [config.precision_ratio]; [Info] statistics otherwise are not
    emitted (quiet when fine). *)

val check_coefficient_quantum : ?config:config -> Qubo.t -> finding list
(** [Info] when some coefficients are not integer multiples of
    [2^-dyadic_bits] — energy comparisons are then inexact and exact
    ties may be resolved by rounding noise (the known non-dyadic
    [soft_scale = 0.1] wobble). *)

val check_dead_variables : Qubo.t -> finding list
(** [Info] listing variables with no linear term and no couplers: the
    sampler leaves their bits wherever its PRNG dropped them. Normal for
    generative encodings (free characters), suspicious for forced
    ones. *)

val check_connectivity : Qubo.t -> finding list
(** [Info] when the coupled part of the interaction graph splits into
    several components of two or more variables each — independent
    subproblems sharing one anneal. Isolated vertices (diagonal-only
    encodings) are not reported. *)

val check_preprocess : Qubo.t -> finding list
(** [Info]: how many variables {!Preprocess.reduce} would fix. *)

val check_overwrites : Qubo.overwrite list -> finding list
(** [Info] summarizing value-changing builder overwrites (collected with
    {!Qubo.with_overwrite_log}): last-write-wins collisions are the
    paper's §4.3 semantics, but each one silently discards an earlier
    penalty term, so the linter surfaces where they happened. *)

val structural : ?config:config -> ?overwrites:Qubo.overwrite list -> Qubo.t -> finding list
(** All of the above, in the order listed. *)

(** {1 Exhaustive enumeration} *)

type enumeration = {
  reduction : Preprocess.t;
  num_free : int;  (** free variables of the residual *)
  energies : float array;
      (** length [2^num_free]; [energies.(k)] is the energy — of the
          original problem — of {!assignment}[ e k]. Gray-code order. *)
  ground_energy : float;
  ground_count : int;  (** assignments within tolerance of the ground energy *)
  spectral_gap : float option;
      (** first excited level minus ground, [None] when the spectrum has
          a single level *)
  min_flip_gap : float option;
      (** smallest nonzero [|flip_delta|] over all variables from one
          ground state of the full problem — the shallowest single-bit
          excitation, what a weak soft bias ([soft_scale·A]) shrinks;
          [None] when every flip is free (fully degenerate) *)
}

val enumerate : ?max_vars:int -> Qubo.t -> (enumeration, int) result
(** Reduces with {!Preprocess.reduce}, then enumerates every assignment
    of the residual in Gray-code order (one O(degree) delta update per
    step). [Error free] when the residual keeps [free > max_vars]
    (default {!default_config}[.max_enum_vars]) variables. [max_vars] is
    clamped to {!max_enum_cap}. *)

val assignment : enumeration -> int -> Qsmt_util.Bitvec.t
(** [assignment e k] is the full original-variable assignment behind
    [e.energies.(k)]: the Gray code of [k] over the free variables,
    expanded through the reduction.
    @raise Invalid_argument if [k] is out of range. *)

val ground_tolerance : enumeration -> float
(** The absolute tolerance used to classify an energy as ground —
    [1e-9 · (1 + |ground|)], exposed so callers classify identically. *)
