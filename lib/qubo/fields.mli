(** Incremental sweep state for annealing-style samplers.

    Every sampler's inner loop asks the same two questions millions of
    times: "what would flipping spin [i] cost?" and "what is the current
    energy?". Answering them from scratch is O(degree i) and O(n + nnz)
    respectively. This module wraps a frozen {!Ising.t} plus a live spin
    assignment and maintains

    - the {e local field} array [f_i = h_i + sum_j J_ij s_j], and
    - the running energy [H(s)],

    so that {!delta} is O(1) and {!energy} is O(1), at the price of an
    O(degree i) neighbor update inside {!flip}. A full Metropolis sweep
    drops from O(n · avg_degree) to O(n + accepted_flips · avg_degree) —
    the local-field trick quantum-inspired QUBO solvers (and D-Wave's
    neal) get their throughput from.

    Invariants (restored by every {!flip}):

    {v f_i  = h_i + sum_j J_ij s_j        for all i
   energy = offset + sum_i h_i s_i + sum_{i<j} J_ij s_i s_j v}

    Floating-point drift: each accepted flip updates [energy] and the
    neighbor fields incrementally, so rounding error can accumulate over
    very long runs. {!refresh} recomputes both from scratch; {!drift}
    measures the current energy error without mutating. Callers either
    refresh on a fixed cadence ([?refresh_every]) or rely on the string
    encodings' dyadic coefficients, for which every update is exact (see
    DESIGN.md, "Incremental local-field kernel"). *)

type t

val create : ?refresh_every:int -> Ising.t -> Ising.spins -> t
(** [create ising spins] builds the tracked state in O(n + nnz). [spins]
    is {e adopted}, not copied: {!flip} mutates it in place and {!spins}
    returns it. Mutating it behind the kernel's back invalidates the
    invariants (call {!refresh} if you must). [refresh_every], when
    positive, recomputes from scratch after that many accepted flips;
    [0] is the documented "never refresh" sentinel (the default) and the
    only admissible non-positive value.
    @raise Invalid_argument on spin-count mismatch or negative
    [refresh_every]. *)

val problem : t -> Ising.t
val num_spins : t -> int

val spins : t -> Ising.spins
(** The live assignment — aliased, not a copy. *)

val energy : t -> float
(** Tracked [H(s)], O(1). *)

val field : t -> int -> float
(** Tracked local field [f_i], O(1). *)

val delta : t -> int -> float
(** [delta t i] is [H(s with spin i flipped) - H(s)], O(1). Numerically
    identical to [Ising.flip_delta] evaluated fresh, up to the rounding
    of the incremental field updates. *)

val flip : t -> int -> unit
(** Flips spin [i]: applies {!delta} to the energy, toggles the bit, and
    updates the neighbors' fields. O(degree i). *)

val refresh : t -> unit
(** Recomputes every field and the energy from the current spins in
    O(n + nnz), zeroing accumulated drift. *)

val drift : t -> float
(** [|tracked energy - recomputed energy|], without mutating. *)

val reset : t -> Ising.spins -> unit
(** [reset t spins] adopts a new assignment (same problem) and
    recomputes, reusing the field array — for running many reads through
    one kernel without reallocation.
    @raise Invalid_argument on spin-count mismatch. *)
