module Bitvec = Qsmt_util.Bitvec
module Telemetry = Qsmt_util.Telemetry

type t = {
  original_vars : int;
  state : int array; (* -1 free, 0 fixed-zero, 1 fixed-one *)
  free_of_residual : int array; (* residual index -> original index *)
  residual_qubo : Qubo.t;
}

let reduce ?(telemetry = Telemetry.null) q =
  let n = Qubo.num_vars q in
  let lin = Array.init n (Qubo.linear q) in
  let coup = Array.init n (fun _ -> Hashtbl.create 4) in
  Qubo.iter_quadratic q (fun i j v ->
      Hashtbl.replace coup.(i) j v;
      Hashtbl.replace coup.(j) i v);
  let offset = ref (Qubo.offset q) in
  let state = Array.make n (-1) in
  let queue = Queue.create () in
  let queued = Array.make n true in
  for i = 0 to n - 1 do
    Queue.add i queue
  done;
  let fix i v =
    state.(i) <- (if v then 1 else 0);
    if v then offset := !offset +. lin.(i);
    Hashtbl.iter
      (fun j coeff ->
        if state.(j) < 0 then begin
          if v then lin.(j) <- lin.(j) +. coeff;
          Hashtbl.remove coup.(j) i;
          if not queued.(j) then begin
            queued.(j) <- true;
            Queue.add j queue
          end
        end)
      coup.(i);
    Hashtbl.reset coup.(i)
  in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    queued.(i) <- false;
    if state.(i) < 0 then begin
      let neg = ref 0. and pos = ref 0. in
      Hashtbl.iter
        (fun j coeff ->
          if state.(j) < 0 then begin
            if coeff < 0. then neg := !neg +. coeff else pos := !pos +. coeff
          end)
        coup.(i);
      if lin.(i) +. !neg >= 0. then fix i false
      else if lin.(i) +. !pos <= 0. then fix i true
    end
  done;
  (* compact the survivors *)
  let free = ref [] in
  for i = n - 1 downto 0 do
    if state.(i) < 0 then free := i :: !free
  done;
  let free_of_residual = Array.of_list !free in
  let residual_index = Hashtbl.create 16 in
  Array.iteri (fun r i -> Hashtbl.replace residual_index i r) free_of_residual;
  let b = Qubo.builder () in
  Array.iteri
    (fun r i ->
      if lin.(i) <> 0. then Qubo.set b r r lin.(i);
      Hashtbl.iter
        (fun j coeff ->
          if state.(j) < 0 && i < j then
            Qubo.set b r (Hashtbl.find residual_index j) coeff)
        coup.(i))
    free_of_residual;
  Qubo.set_offset b !offset;
  let free = Array.length free_of_residual in
  if Telemetry.enabled telemetry then begin
    Telemetry.count telemetry "preprocess.fixed" (n - free);
    Telemetry.count telemetry "preprocess.free" free;
    Telemetry.emit telemetry "preprocess.done"
      [
        ("vars", Telemetry.Int n);
        ("fixed", Telemetry.Int (n - free));
        ("free", Telemetry.Int free);
      ]
  end;
  {
    original_vars = n;
    state;
    free_of_residual;
    residual_qubo = Qubo.freeze ~num_vars:free b;
  }

(* Clamp an externally-proven assignment of some variables (the
   abstract interpreter's forced codec bits) instead of deriving one
   from dominance. Same fold-and-compact mechanics as [reduce], minus
   the fixpoint queue: the caller's facts are the fixing rule. *)
let clamp q fixed =
  let n = Qubo.num_vars q in
  let lin = Array.init n (Qubo.linear q) in
  let coup = Array.init n (fun _ -> Hashtbl.create 4) in
  Qubo.iter_quadratic q (fun i j v ->
      Hashtbl.replace coup.(i) j v;
      Hashtbl.replace coup.(j) i v);
  let offset = ref (Qubo.offset q) in
  let state = Array.make n (-1) in
  List.iter
    (fun (i, v) ->
      if i < 0 || i >= n then invalid_arg "Preprocess.clamp: variable out of range";
      if state.(i) >= 0 then invalid_arg "Preprocess.clamp: variable fixed twice";
      state.(i) <- (if v then 1 else 0);
      if v then offset := !offset +. lin.(i);
      Hashtbl.iter
        (fun j coeff ->
          if state.(j) < 0 then begin
            if v then lin.(j) <- lin.(j) +. coeff;
            Hashtbl.remove coup.(j) i
          end)
        coup.(i);
      Hashtbl.reset coup.(i))
    fixed;
  let free = ref [] in
  for i = n - 1 downto 0 do
    if state.(i) < 0 then free := i :: !free
  done;
  let free_of_residual = Array.of_list !free in
  let residual_index = Hashtbl.create 16 in
  Array.iteri (fun r i -> Hashtbl.replace residual_index i r) free_of_residual;
  let b = Qubo.builder () in
  Array.iteri
    (fun r i ->
      if lin.(i) <> 0. then Qubo.set b r r lin.(i);
      Hashtbl.iter
        (fun j coeff ->
          if state.(j) < 0 && i < j then
            Qubo.set b r (Hashtbl.find residual_index j) coeff)
        coup.(i))
    free_of_residual;
  Qubo.set_offset b !offset;
  {
    original_vars = n;
    state;
    free_of_residual;
    residual_qubo = Qubo.freeze ~num_vars:(Array.length free_of_residual) b;
  }

let residual t = t.residual_qubo
let free_indices t = Array.copy t.free_of_residual
let num_free t = Array.length t.free_of_residual
let num_fixed t = t.original_vars - num_free t

let fixed_value t i =
  if i < 0 || i >= t.original_vars then invalid_arg "Preprocess.fixed_value: variable out of range";
  match t.state.(i) with -1 -> None | 0 -> Some false | _ -> Some true

let expand t y =
  if Bitvec.length y <> num_free t then
    invalid_arg
      (Printf.sprintf "Preprocess.expand: assignment has %d bits, residual has %d"
         (Bitvec.length y) (num_free t));
  let out = Bitvec.create t.original_vars in
  Array.iteri (fun r i -> Bitvec.set out i (Bitvec.get y r)) t.free_of_residual;
  Array.iteri (fun i s -> if s = 1 then Bitvec.set out i true) t.state;
  out

let solve_with solver q =
  let t = reduce q in
  if num_free t = 0 then expand t (Bitvec.create 0) else expand t (solver (residual t))

let pp ppf t =
  Format.fprintf ppf "preprocess: fixed %d/%d vars, residual %a" (num_fixed t) t.original_vars
    Qubo.pp t.residual_qubo
