(** QUBO preprocessing: variable fixing by one-pass dominance rules.

    Implements the core reductions of Lewis & Glover, "Quadratic
    unconstrained binary optimization problem preprocessing" (the paper's
    reference [37]): a variable whose diagonal term dominates everything
    its couplers could contribute can be fixed without losing any optimal
    solution —

    - if [Q_ii + Σ_j min(0, Q_ij) >= 0], setting [x_i = 1] can never
      lower the energy, so [x_i = 0] in some optimal solution: fix to 0;
    - if [Q_ii + Σ_j max(0, Q_ij) <= 0], setting [x_i = 1] can never
      raise it: fix to 1.

    Fixing a variable folds its row into neighbors' diagonals and the
    offset, which can enable further fixing, so the rules iterate to a
    fixpoint. The paper's diagonal-only encodings collapse entirely (every
    variable fixes — preprocessing alone *solves* string equality), while
    coupled encodings (palindrome, includes) shrink partially; the Ext
    benches measure exactly that. *)

type t
(** The reduction: which variables were fixed to what, and the residual
    problem over the free variables. *)

val reduce : ?telemetry:Qsmt_util.Telemetry.t -> Qubo.t -> t
(** Runs the fixing rules to fixpoint. Never worsens the optimum: every
    optimal assignment of the original problem is recoverable as (fixed
    values) ∪ (an optimal assignment of the residual). [telemetry]
    records [preprocess.fixed] / [preprocess.free] counters and one
    [preprocess.done] event. *)

val clamp : Qubo.t -> (int * bool) list -> t
(** [clamp q fixed] substitutes an externally-proven partial assignment
    — e.g. the codec bits {!Qsmt_strtheory} abstract interpretation
    forces — into [q]: fixed-one diagonals fold into the offset,
    couplers into neighbors' diagonals, and the survivors compact into
    the residual exactly as {!reduce} does (same {!expand} contract).
    No dominance rules run; the caller's facts are the fixing rule, so
    soundness is the caller's obligation.
    @raise Invalid_argument on an out-of-range or repeated variable. *)

val residual : t -> Qubo.t
(** The reduced QUBO over [num_free] fresh variables [0..num_free-1]
    (original indices compacted). Its offset accounts for the energy of
    the fixed variables, so [Qubo.energy residual y + 0] equals the
    original energy of {!expand}[ y]. *)

val num_fixed : t -> int
val num_free : t -> int

val free_indices : t -> int array
(** Original index of each residual variable, in residual order — the
    inverse map {!expand} uses, exposed so warm-start assignments over
    the original variables can be projected onto the residual. *)

val fixed_value : t -> int -> bool option
(** [fixed_value t i] is the value variable [i] (original numbering) was
    fixed to, or [None] if it is free. *)

val expand : t -> Qsmt_util.Bitvec.t -> Qsmt_util.Bitvec.t
(** [expand t y] lifts an assignment of the residual problem back to the
    original variables.
    @raise Invalid_argument if [y] has length other than [num_free]. *)

val solve_with :
  (Qubo.t -> Qsmt_util.Bitvec.t) -> Qubo.t -> Qsmt_util.Bitvec.t
(** [solve_with solver q] reduces [q], runs [solver] on the residual
    (skipped entirely when everything fixed), and expands. *)

val pp : Format.formatter -> t -> unit
