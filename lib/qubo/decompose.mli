(** qbsolv-style decomposition for QUBOs bigger than one embedding.

    Everything upstream of this module assumes the whole problem fits a
    single sampler call (one embedding, one Metropolis state). Real
    workloads do not, so this module shards the interaction graph into
    subproblems of bounded size, solves them concurrently over the shared
    {!Qsmt_util.Parallel.Pool}, and iterates the boundary spins to
    convergence — the large-neighborhood local search scheme of D-Wave's
    qbsolv, which is also what the quantum-inspired-solver benchmarks
    (Oshiyama & Ohzeki, arXiv:2104.14096) and large-instance SAT
    encodings (Bian et al., arXiv:1811.02524) rely on to reach problem
    sizes no annealer accepts whole.

    The scheme, per round: snapshot the global assignment, build one
    {e clamped} sub-QUBO per shard ({!extract} — variables outside the
    shard are frozen at their snapshot values, their contributions folded
    into the shard's linear terms and offset, so sub-energies {e are}
    global energies), solve every shard concurrently against the same
    snapshot (Jacobi style — shard solves never race on the assignment),
    then stitch sequentially: a shard's proposal is applied only if it
    strictly lowers the incrementally tracked global energy, otherwise
    the flips are reverted bit-for-bit. Rounds repeat until a full round
    accepts nothing (boundary convergence) or [max_rounds] is hit.

    Verified stitching: the returned energy is always a fresh
    whole-problem evaluation of the returned bits ({!Qubo.energy}), and
    the report records whether the incrementally stitched energy matches
    it {e bit-exactly} ({!report.bit_exact} — true for the string
    encodings, whose dyadic coefficients make every incremental update
    exact; a mismatch bumps [decomp.reprice_mismatch]). Constraint-level
    verification ([Constr.verify] on the decoded value) happens where it
    always does, in the solver's decode scan — the QUBO layer never
    grades its own homework.

    The stitched result is additionally guaranteed never worse than the
    best {e single-shard} answer (the initial assignment with exactly one
    round-1 shard proposal applied): those candidates are priced during
    round 1 and the best one replaces the iterated result in the rare
    case boundary interaction made iteration end up above it
    ([decomp.single_shard_rescue] counts this). *)

type params = {
  subsize : int;
      (** largest shard, in variables (default 48 — comfortably inside
          every topology the hardware emulation auto-sizes) *)
  max_rounds : int;  (** boundary-iteration cap (default 25) *)
  jobs : int;
      (** concurrent shard solves per round; [<= 0] (default) means
          {!Qsmt_util.Parallel.recommended_domains} *)
  seed : int;  (** PRNG seed for the initial assignment (default 0) *)
}

val default : params

type shard = {
  shard_id : int;
  vars : int array;  (** global variable indices, ascending *)
  boundary : int;  (** couplers with exactly one endpoint in this shard *)
}

type report = {
  shards : shard list;  (** the partition actually used, in id order *)
  rounds : int;  (** boundary-iteration rounds run *)
  accepted : int;  (** shard proposals that lowered the energy *)
  rejected : int;  (** proposals reverted (no improvement) *)
  shard_failures : int;
      (** shard solves that raised; the shard keeps its current
          assignment for the round and the run continues *)
  stitched_energy : float;
      (** the incrementally tracked energy of the returned bits *)
  energy : float;  (** whole-problem re-pricing of the returned bits *)
  bit_exact : bool;  (** [stitched_energy = energy], bit-for-bit *)
  single_shard_rescue : bool;
      (** the best round-1 single-shard candidate beat the iterated
          result and was returned instead *)
}

val partition : subsize:int -> Qubo.t -> int array list
(** Shard the interaction graph: connected components (the union-find
    structure the linter's connectivity check also walks) are kept whole
    when they fit, split along a BFS ordering when they exceed [subsize]
    (consecutive BFS layers cut few couplers — the min-cut-ish
    heuristic), and packed first-fit-decreasing so small components share
    shards. Every variable appears in exactly one block; each block is
    ascending and no larger than [subsize].
    @raise Invalid_argument if [subsize < 1]. *)

val extract : Qubo.t -> Qsmt_util.Bitvec.t -> int array -> Qubo.t
(** [extract q x vars] is the clamped subproblem over [vars]: couplers
    internal to the shard survive, couplers to a clamped-1 variable fold
    into the shard's linear terms, and the energy of the clamped part
    (offset, clamped linear, clamped-clamped couplers) folds into the
    offset — so for any shard assignment [y],
    [Qubo.energy (extract q x vars) y] equals
    [Qubo.energy q (x with vars set from y)] up to float summation
    order. Local variable [k] is global [vars.(k)].
    @raise Invalid_argument if [x] has the wrong length or [vars] is
    out of range. *)

val solve :
  ?params:params ->
  ?init:Qsmt_util.Bitvec.t ->
  ?stop:(unit -> bool) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  solve_shard:(shard:int -> round:int -> Qubo.t -> Qsmt_util.Bitvec.t) ->
  Qubo.t ->
  Qsmt_util.Bitvec.t * report
(** Decompose, solve, stitch. [solve_shard ~shard ~round sub] must
    return an assignment of [Qubo.num_vars sub] bits — typically the
    best read of a sampler run on [sub]; it is called concurrently for
    distinct shards of one round (on pool workers plus the calling
    domain), never concurrently for the same shard, and may raise (the
    shard then keeps its current assignment for that round, counted in
    {!report.shard_failures}).

    [init] seeds the global assignment (the incremental solver's warm
    start); default is a seeded-PRNG random assignment. [stop] is polled
    between rounds and before each shard solve; once true, the current
    best stitched assignment is returned early.

    [telemetry] records counters [decomp.shards], [decomp.rounds],
    [decomp.accepted], [decomp.rejected], [decomp.shard_failed],
    [decomp.reprice_mismatch], [decomp.single_shard_rescue], a
    [decomp.shard_size] histogram, per-round [decomp.round] spans with
    per-shard [decomp.shard] child spans (shard, size, boundary), and
    one [decomp.done] event (vars, shards, rounds, accepted, energy,
    bit_exact) — all inside one [decomp] root span.
    @raise Invalid_argument on non-positive [subsize]/[max_rounds] or a
    wrong-length [init]. *)
