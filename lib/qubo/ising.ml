module Bitvec = Qsmt_util.Bitvec

type t = {
  n : int;
  i_offset : float;
  h : float array;
  row_ptr : int array;
  col : int array;
  value : float array; (* J, both directions like Qubo's CSR *)
}

type spins = Bitvec.t

let of_qubo q =
  let n = Qubo.num_vars q in
  (* x_i = (1 + s_i)/2:
       Q_ii x_i           -> Q_ii/2 s_i + Q_ii/2
       Q_ij x_i x_j       -> Q_ij/4 (s_i s_j + s_i + s_j + 1) *)
  let h = Array.init n (fun i -> Qubo.linear q i /. 2.) in
  let offset = ref (Qubo.offset q) in
  Array.iter (fun hi -> offset := !offset +. hi) h;
  let couplers = ref [] in
  Qubo.iter_quadratic q (fun i j v ->
      let quarter = v /. 4. in
      couplers := (i, j, quarter) :: !couplers;
      h.(i) <- h.(i) +. quarter;
      h.(j) <- h.(j) +. quarter;
      offset := !offset +. quarter);
  let degree = Array.make n 0 in
  List.iter
    (fun (i, j, _) ->
      degree.(i) <- degree.(i) + 1;
      degree.(j) <- degree.(j) + 1)
    !couplers;
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + degree.(i)
  done;
  let nnz = row_ptr.(n) in
  let col = Array.make nnz 0 in
  let value = Array.make nnz 0. in
  let cursor = Array.copy row_ptr in
  List.iter
    (fun (i, j, v) ->
      col.(cursor.(i)) <- j;
      value.(cursor.(i)) <- v;
      cursor.(i) <- cursor.(i) + 1;
      col.(cursor.(j)) <- i;
      value.(cursor.(j)) <- v;
      cursor.(j) <- cursor.(j) + 1)
    !couplers;
  { n; i_offset = !offset; h; row_ptr; col; value }

let num_spins t = t.n
let offset t = t.i_offset
let field t i = t.h.(i)

let iter_couplings t f =
  for i = 0 to t.n - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col.(k) in
      if i < j then f i j t.value.(k)
    done
  done

let couplings t =
  let acc = ref [] in
  iter_couplings t (fun i j v -> acc := (i, j, v) :: !acc);
  List.sort compare !acc

let degree t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

let neighbors t i =
  List.init (degree t i) (fun k ->
      let idx = t.row_ptr.(i) + k in
      (t.col.(idx), t.value.(idx)))

let iter_neighbors t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col.(k) t.value.(k)
  done

let csr t = (t.row_ptr, t.col, t.value)

let to_qubo t =
  (* s_i = 2 x_i - 1:
       h_i s_i       -> 2 h_i x_i - h_i
       J s_i s_j     -> 4J x_i x_j - 2J x_i - 2J x_j + J *)
  let b = Qubo.builder () in
  let offset = ref t.i_offset in
  Array.iteri
    (fun i hi ->
      if hi <> 0. then Qubo.add b i i (2. *. hi);
      offset := !offset -. hi)
    t.h;
  iter_couplings t (fun i j v ->
      Qubo.add b i j (4. *. v);
      Qubo.add b i i (-2. *. v);
      Qubo.add b j j (-2. *. v);
      offset := !offset +. v);
  Qubo.set_offset b !offset;
  Qubo.freeze ~num_vars:t.n b

let spin_sign s i = if Bitvec.get s i then 1. else -1.

let energy t s =
  if Bitvec.length s <> t.n then
    invalid_arg
      (Printf.sprintf "Ising.energy: assignment has %d spins, problem has %d" (Bitvec.length s) t.n);
  let e = ref t.i_offset in
  for i = 0 to t.n - 1 do
    let si = spin_sign s i in
    e := !e +. (t.h.(i) *. si);
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col.(k) in
      if j > i then e := !e +. (t.value.(k) *. si *. spin_sign s j)
    done
  done;
  !e

let local_field t s i =
  let f = ref t.h.(i) in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f := !f +. (t.value.(k) *. spin_sign s t.col.(k))
  done;
  !f

let flip_delta t s i = -2. *. spin_sign s i *. local_field t s i
let spins_of_bits x = x
let bits_of_spins s = s

let max_abs_field t =
  let m = ref 0. in
  Array.iter (fun v -> m := Float.max !m (Float.abs v)) t.h;
  Array.iter (fun v -> m := Float.max !m (Float.abs v)) t.value;
  !m

let min_abs_nonzero t =
  let m = ref infinity in
  let consider v = if v <> 0. then m := Float.min !m (Float.abs v) in
  Array.iter consider t.h;
  Array.iter consider t.value;
  if !m = infinity then 1. else !m

let pp ppf t =
  Format.fprintf ppf "ising(spins=%d, couplings=%d, offset=%g)" t.n
    (Array.length t.col / 2) t.i_offset
