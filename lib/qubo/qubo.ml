module Bitvec = Qsmt_util.Bitvec

type key = int * int (* (i, j) with i <= j *)

type builder = {
  entries : (key, float) Hashtbl.t;
  mutable b_offset : float;
  mutable max_index : int; (* -1 when empty *)
}

type t = {
  n : int;
  t_offset : float;
  lin : float array; (* diagonal, length n *)
  (* CSR adjacency over couplers only; every coupler (i, j, q) appears in
     row i as (j, q) and in row j as (i, q). *)
  row_ptr : int array; (* length n + 1 *)
  col : int array;
  value : float array;
}

let normalize i j = if i <= j then (i, j) else (j, i)

let check_indices i j =
  if i < 0 || j < 0 then invalid_arg "Qubo: negative variable index"

let builder () = { entries = Hashtbl.create 64; b_offset = 0.; max_index = -1 }

let touch b i j = if max i j > b.max_index then b.max_index <- max i j

type overwrite = { ov_i : int; ov_j : int; old_value : float; new_value : float }

(* Innermost [with_overwrite_log] scope; [None] outside any scope, so a
   plain [set] pays one reference read. Not domain-safe by design — the
   linter's compile step is single-threaded. *)
let overwrite_log : overwrite list ref option ref = ref None

let with_overwrite_log f =
  let saved = !overwrite_log in
  let log = ref [] in
  overwrite_log := Some log;
  Fun.protect
    ~finally:(fun () -> overwrite_log := saved)
    (fun () ->
      let result = f () in
      (result, List.rev !log))

let set b i j q =
  check_indices i j;
  touch b i j;
  let key = normalize i j in
  (match !overwrite_log with
  | Some log -> begin
    match Hashtbl.find_opt b.entries key with
    | Some old when old <> q ->
      let ov_i, ov_j = key in
      log := { ov_i; ov_j; old_value = old; new_value = q } :: !log
    | _ -> ()
  end
  | None -> ());
  Hashtbl.replace b.entries key q

let get b i j =
  check_indices i j;
  match Hashtbl.find_opt b.entries (normalize i j) with
  | Some q -> q
  | None -> 0.

let add b i j q =
  check_indices i j;
  touch b i j;
  let key = normalize i j in
  let cur = match Hashtbl.find_opt b.entries key with Some v -> v | None -> 0. in
  Hashtbl.replace b.entries key (cur +. q)

let add_offset b x = b.b_offset <- b.b_offset +. x
let set_offset b x = b.b_offset <- x

let merge ~into src =
  Hashtbl.iter (fun (i, j) q -> add into i j q) src.entries;
  add_offset into src.b_offset

let freeze ?num_vars b =
  let n =
    match num_vars with
    | None -> b.max_index + 1
    | Some n ->
      if n < b.max_index + 1 then
        invalid_arg
          (Printf.sprintf "Qubo.freeze: num_vars %d < highest index + 1 (%d)" n (b.max_index + 1));
      n
  in
  let lin = Array.make n 0. in
  let degree = Array.make n 0 in
  let couplers = ref [] in
  Hashtbl.iter
    (fun (i, j) q ->
      if q <> 0. then
        if i = j then lin.(i) <- q
        else begin
          couplers := (i, j, q) :: !couplers;
          degree.(i) <- degree.(i) + 1;
          degree.(j) <- degree.(j) + 1
        end)
    b.entries;
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + degree.(i)
  done;
  let nnz = row_ptr.(n) in
  let col = Array.make nnz 0 in
  let value = Array.make nnz 0. in
  let cursor = Array.copy row_ptr in
  List.iter
    (fun (i, j, q) ->
      col.(cursor.(i)) <- j;
      value.(cursor.(i)) <- q;
      cursor.(i) <- cursor.(i) + 1;
      col.(cursor.(j)) <- i;
      value.(cursor.(j)) <- q;
      cursor.(j) <- cursor.(j) + 1)
    !couplers;
  (* Sort each row by column for deterministic iteration order. *)
  for i = 0 to n - 1 do
    let lo = row_ptr.(i) and hi = row_ptr.(i + 1) in
    let pairs = Array.init (hi - lo) (fun k -> (col.(lo + k), value.(lo + k))) in
    Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
    Array.iteri
      (fun k (c, v) ->
        col.(lo + k) <- c;
        value.(lo + k) <- v)
      pairs
  done;
  { n; t_offset = b.b_offset; lin; row_ptr; col; value }

let num_vars t = t.n
let offset t = t.t_offset
let linear t i = t.lin.(i)

let iter_quadratic t f =
  for i = 0 to t.n - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col.(k) in
      if i < j then f i j t.value.(k)
    done
  done

let iter_linear t f =
  for i = 0 to t.n - 1 do
    if t.lin.(i) <> 0. then f i t.lin.(i)
  done

let quadratic t =
  let acc = ref [] in
  iter_quadratic t (fun i j q -> acc := (i, j, q) :: !acc);
  List.rev !acc

let num_interactions t = Array.length t.col / 2
let degree t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

let neighbors t i =
  List.init (degree t i) (fun k ->
      let idx = t.row_ptr.(i) + k in
      (t.col.(idx), t.value.(idx)))

let energy t x =
  if Bitvec.length x <> t.n then
    invalid_arg
      (Printf.sprintf "Qubo.energy: assignment has %d bits, problem has %d vars" (Bitvec.length x)
         t.n);
  let e = ref t.t_offset in
  for i = 0 to t.n - 1 do
    if Bitvec.get x i then begin
      e := !e +. t.lin.(i);
      (* Count each coupler once by only taking j > i. *)
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = t.col.(k) in
        if j > i && Bitvec.get x j then e := !e +. t.value.(k)
      done
    end
  done;
  !e

let flip_delta t x i =
  (* Local field: lin_i + sum over set neighbors of the coupler value. *)
  let field = ref t.lin.(i) in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    if Bitvec.get x t.col.(k) then field := !field +. t.value.(k)
  done;
  if Bitvec.get x i then -. !field else !field

let scale t c =
  {
    t with
    t_offset = t.t_offset *. c;
    lin = Array.map (fun v -> v *. c) t.lin;
    value = Array.map (fun v -> v *. c) t.value;
  }

let relabel t f ~num_vars:n =
  let b = builder () in
  let seen = Hashtbl.create t.n in
  let rename i =
    let j = f i in
    if j < 0 || j >= n then
      invalid_arg (Printf.sprintf "Qubo.relabel: variable %d mapped outside [0,%d)" i n);
    (match Hashtbl.find_opt seen j with
    | Some i0 when i0 <> i -> invalid_arg "Qubo.relabel: mapping not injective"
    | _ -> Hashtbl.replace seen j i);
    j
  in
  Array.iteri (fun i v -> if v <> 0. then set b (rename i) (rename i) v) t.lin;
  iter_quadratic t (fun i j q -> set b (rename i) (rename j) q);
  set_offset b t.t_offset;
  freeze ~num_vars:n b

let to_dense t =
  let m = Array.make_matrix t.n t.n 0. in
  Array.iteri (fun i v -> m.(i).(i) <- v) t.lin;
  iter_quadratic t (fun i j q -> m.(i).(j) <- q);
  m

let of_dense m =
  let n = Array.length m in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Qubo.of_dense: not square") m;
  let b = builder () in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if m.(i).(j) <> 0. then add b i j m.(i).(j)
    done
  done;
  freeze ~num_vars:n b

let same_structure a b = a.n = b.n && a.row_ptr = b.row_ptr && a.col = b.col

(* Binary search for column [j] within row [i]; rows are sorted by
   [freeze]. Returns the CSR slot or -1 when the coupler is absent. *)
let find_slot t i j =
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col.(mid) in
    if c = j then found := mid else if c < j then lo := mid + 1 else hi := mid - 1
  done;
  !found

exception Unpatchable

let patch_parts t parts =
  (* Adds each part's coefficients onto copies of [t]'s arrays, in part
     order. Because frozen values are verbatim builder accumulations and
     builder [add] is a left-fold per key, patching part k+1..m onto the
     frozen merge of parts 1..k performs float additions in exactly the
     order a full re-merge of parts 1..m would — so the result is
     bit-exact, not just approximately equal. Declined (None) whenever
     that guarantee would break: a part coupler with no slot in [t]'s CSR
     structure (freeze would have to re-allocate), or a patched coupler
     landing on exactly [0.] (freeze would drop it). *)
  let lin = Array.copy t.lin in
  let value = Array.copy t.value in
  let offset = ref t.t_offset in
  let patched = ref 0 in
  try
    List.iter
      (fun p ->
        if p.n > t.n then raise Unpatchable;
        iter_linear p (fun i q ->
            lin.(i) <- lin.(i) +. q;
            incr patched);
        iter_quadratic p (fun i j q ->
            let ki = find_slot t i j and kj = find_slot t j i in
            if ki < 0 || kj < 0 then raise Unpatchable;
            let v = value.(ki) +. q in
            if v = 0. then raise Unpatchable;
            value.(ki) <- v;
            value.(kj) <- v;
            incr patched);
        offset := !offset +. p.t_offset)
      parts;
    Some ({ t with t_offset = !offset; lin; value }, !patched)
  with Unpatchable -> None

let max_abs_coefficient t =
  let m = ref 0. in
  Array.iter (fun v -> m := Float.max !m (Float.abs v)) t.lin;
  Array.iter (fun v -> m := Float.max !m (Float.abs v)) t.value;
  !m

let equal a b =
  a.n = b.n && a.t_offset = b.t_offset
  && Array.for_all2 ( = ) a.lin b.lin
  && quadratic a = quadratic b

let pp ppf t =
  Format.fprintf ppf "qubo(vars=%d, interactions=%d, offset=%g)" t.n (num_interactions t) t.t_offset
