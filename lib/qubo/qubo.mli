(** Quadratic Unconstrained Binary Optimization problems.

    A QUBO instance over binary variables [x_0 .. x_{n-1}] is

    {v E(x) = offset + sum_{i} Q_ii x_i + sum_{i<j} Q_ij x_i x_j v}

    Diagonal entries are the linear terms (since [x^2 = x]); off-diagonal
    entries are couplers, stored upper-triangular: [(i, j)] with [i < j]
    and [(j, i)] refer to the same coefficient.

    Construction goes through a mutable {!builder} — string-constraint
    encoders write entries one at a time, sometimes overwriting earlier
    ones (the paper's substring-matching semantics, §4.3) — which is then
    {!freeze}-d into an immutable CSR form that samplers evaluate against
    millions of times. *)

type builder
(** Mutable under-construction QUBO. *)

type t
(** Frozen (immutable) QUBO. *)

(** {1 Building} *)

val builder : unit -> builder
(** Fresh empty builder. The variable count is the highest index touched
    plus one (or the value forced by {!freeze}'s [?num_vars]). *)

val set : builder -> int -> int -> float -> unit
(** [set b i j q] overwrites coefficient [(min i j, max i j)] with [q].
    Paper-faithful "last write wins" semantics.
    @raise Invalid_argument on negative indices. *)

val add : builder -> int -> int -> float -> unit
(** [add b i j q] adds [q] to the current coefficient (0 if absent). *)

val get : builder -> int -> int -> float
(** Current coefficient, [0.] if never written. *)

val add_offset : builder -> float -> unit
val set_offset : builder -> float -> unit

val merge : into:builder -> builder -> unit
(** [merge ~into src] adds every coefficient and the offset of [src] into
    [into] (summing semantics). *)

(** {1 Write provenance} *)

type overwrite = {
  ov_i : int;
  ov_j : int;  (** normalized: [ov_i <= ov_j] *)
  old_value : float;
  new_value : float;
}
(** One value-changing {!set} collision: the entry already held
    [old_value] and was overwritten with the different [new_value].
    Re-writing the value already present is not a collision. *)

val with_overwrite_log : (unit -> 'a) -> 'a * overwrite list
(** [with_overwrite_log f] records, for every builder touched while [f]
    runs, each value-changing [set] overwrite, in program order. The
    paper's substring encoding (§4.3) relies on last-write-wins
    semantics, so collisions are not errors — the static analyzer
    ({!Analyze}) surfaces them as findings instead of letting them stay
    tribal knowledge. Recording is process-global and not domain-safe:
    run it single-threaded (the linter's compile step is). Nested calls
    log to the innermost scope. When no scope is active (the default),
    {!set} pays one reference read and no allocation. *)

(** {1 Freezing and inspection} *)

val freeze : ?num_vars:int -> builder -> t
(** [freeze ?num_vars b] compiles [b] to CSR. [num_vars] forces the
    variable count (useful when trailing variables are unconstrained, as
    in the paper's substring encodings); it must be at least the highest
    index touched plus one. Entries that are exactly [0.] are dropped —
    including negative zero ([-0. = 0.] under float comparison), so a
    coefficient overwritten to zero is indistinguishable from one never
    written. {!Analyze}'s dead-variable check relies on exactly this: a
    variable whose every entry was dropped has no terms at all in the
    frozen problem. Nonzero entries are copied verbatim (bit-exact, no
    rounding), so [builder] values round-trip through [freeze]
    unchanged. The builder remains usable afterwards. *)

val num_vars : t -> int
val offset : t -> float

val linear : t -> int -> float
(** [linear q i] is [Q_ii]. *)

val quadratic : t -> (int * int * float) list
(** All nonzero couplers as [(i, j, q)] with [i < j], ascending. *)

val num_interactions : t -> int
(** Number of nonzero couplers. *)

val degree : t -> int -> int
(** Number of distinct variables coupled to [i]. *)

val neighbors : t -> int -> (int * float) list
(** [(j, Q_ij)] for every coupler touching [i]. *)

val iter_linear : t -> (int -> float -> unit) -> unit
(** Visits every nonzero diagonal entry. *)

val iter_quadratic : t -> (int -> int -> float -> unit) -> unit
(** Visits every nonzero coupler once, with [i < j]. *)

(** {1 Evaluation} *)

val energy : t -> Qsmt_util.Bitvec.t -> float
(** [energy q x] is [E(x)].
    @raise Invalid_argument if [x] has the wrong length. *)

val flip_delta : t -> Qsmt_util.Bitvec.t -> int -> float
(** [flip_delta q x i] is [E(x with bit i flipped) - E(x)], computed in
    O(degree i). This is the inner loop of every sampler. *)

(** {1 Transformations} *)

val scale : t -> float -> t
(** Multiplies every coefficient and the offset. *)

val relabel : t -> (int -> int) -> num_vars:int -> t
(** [relabel q f ~num_vars] renames variable [i] to [f i]. [f] must be
    injective on the variables of [q] and map into [\[0, num_vars)].
    @raise Invalid_argument if two variables collide. *)

val to_dense : t -> float array array
(** Symmetric-upper-triangular dense matrix: [m.(i).(j)] for [i <= j]
    holds the coefficient; entries below the diagonal are [0.]. Intended
    for small matrices (printing, tests). *)

val of_dense : float array array -> t
(** Inverse of {!to_dense}; reads the upper triangle including the
    diagonal, adds lower-triangle entries into their mirrored position.
    @raise Invalid_argument if the matrix is not square. *)

(** {1 Incremental patching} *)

val same_structure : t -> t -> bool
(** Same variable count and the same CSR adjacency (identical interaction
    graph, coefficients ignored). When two frozen problems share their
    structure, a minor embedding computed for one is valid for the
    other — this is the incremental solver's embedding-reuse test. *)

val patch_parts : t -> t list -> (t * int) option
(** [patch_parts q parts] adds every coefficient and the offset of each
    part onto a copy of the frozen [q], in part order, without
    re-freezing. Intended for incremental solving: when [q] is the frozen
    merge of conjunct encodings [p1 .. pk] and [parts] is [p(k+1) .. pm],
    the result is {b bit-exact} equal to re-merging [p1 .. pm] from
    scratch — the float additions happen in the same left-fold order the
    builder would use. Returns the patched problem and the number of
    patched coefficients, or [None] when patching cannot preserve that
    guarantee: a part touches a coupler absent from [q]'s CSR structure,
    a patched coupler lands on exactly [0.] (a fresh {!freeze} would drop
    it), or a part has more variables than [q]. [None] is not an error —
    the caller falls back to a full merge. *)

val max_abs_coefficient : t -> float
(** Largest absolute value over linear and quadratic coefficients;
    [0.] for an empty problem. Drives default temperature schedules. *)

val equal : t -> t -> bool
(** Same variable count, offset, and coefficients. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: variable count, interaction count, offset. *)
