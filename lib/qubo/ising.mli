(** Ising-model view of a QUBO.

    Annealers (simulated and quantum alike) natively work on spins
    [s_i ∈ {-1,+1}] with Hamiltonian

    {v H(s) = offset + sum_i h_i s_i + sum_{i<j} J_ij s_i s_j v}

    The standard change of variables [x_i = (1 + s_i) / 2] maps a QUBO to
    an Ising instance with identical energy landscape ({!of_qubo} /
    {!to_qubo} round-trip preserves energies exactly, offset included).
    The frozen form mirrors {!Qubo.t}'s CSR layout so the Metropolis inner
    loop is a couple of array reads per neighbor. *)

type t

type spins = Qsmt_util.Bitvec.t
(** Spin assignments are packed bit vectors: bit set = spin up (+1),
    clear = spin down (-1). *)

val of_qubo : Qubo.t -> t
(** Exact transformation; variable indices are preserved. *)

val to_qubo : t -> Qubo.t
(** Inverse of {!of_qubo} (up to float rounding). *)

val num_spins : t -> int
val offset : t -> float
val field : t -> int -> float
(** [field t i] is [h_i]. *)

val couplings : t -> (int * int * float) list
(** Nonzero [J_ij] as [(i, j, J)] with [i < j], ascending. *)

val neighbors : t -> int -> (int * float) list
val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
(** [iter_neighbors t i f] calls [f j J_ij] for every coupler touching
    [i], in CSR order, without allocating the {!neighbors} list. *)

val csr : t -> int array * int array * float array
(** [(row_ptr, col, value)]: the raw CSR adjacency. Row [i]'s couplers
    occupy indices [row_ptr.(i) .. row_ptr.(i+1) - 1] of [col]/[value];
    every coupler appears in both endpoints' rows. The arrays are
    physically shared with the problem — treat them as read-only. This is
    the escape hatch for allocation-free inner loops ({!Fields}, schedule
    derivation). *)

val energy : t -> spins -> float
(** [energy t s] is [H(s)].
    @raise Invalid_argument on length mismatch. *)

val local_field : t -> spins -> int -> float
(** [local_field t s i] is [h_i + sum_j J_ij s_j]: the energy cost of spin
    [i] being up rather than down is [2 * local_field]. O(degree i). *)

val flip_delta : t -> spins -> int -> float
(** [flip_delta t s i] is [H(s with spin i flipped) - H(s)]. *)

val spins_of_bits : Qsmt_util.Bitvec.t -> spins
(** Identity on the representation: [x_i = 1] means spin up. Provided for
    intent at call sites. *)

val bits_of_spins : spins -> Qsmt_util.Bitvec.t
(** Inverse of {!spins_of_bits}. *)

val max_abs_field : t -> float
(** Largest [|h_i|] or [|J_ij|]; drives default β schedules. *)

val min_abs_nonzero : t -> float
(** Smallest nonzero [|h_i|] or [|J_ij|]; [1.] for an all-zero problem. *)

val pp : Format.formatter -> t -> unit
