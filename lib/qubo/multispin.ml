module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng

let max_lanes = 64

(* The packed words are stored as PAIRS of native ints — low 32 lanes
   and high 32 lanes — rather than int64s: OCaml boxes int64 values, so
   an int64-typed sweep loop allocates on every logical op, which costs
   more than the float work it orchestrates. Native-int halves keep the
   whole hot path allocation-free; the public (int64) word/mask API
   splits and joins at the boundary only. *)

type t = {
  ising : Ising.t;
  row_ptr : int array;
  col : int array;
  value : float array;
  n : int;
  lanes : int;
  lane_lo : int; (* low-half lane mask: bits 0..min(lanes,32)-1 *)
  lane_hi : int; (* high-half lane mask: bits 0..lanes-33 when lanes > 32 *)
  words : int array; (* 2 per site: [2i] = low 32 lanes, [2i+1] = high 32 *)
  field : float array; (* lane-major per site: f_L(i) at [i * lanes + L] *)
  energy : float array; (* one tracked H(s) per lane *)
  refresh_every : int; (* accepted lane-flips between refreshes; 0 = never *)
  mutable flips : int;
  (* Per-state scratch (a state lives on one domain, like Fields): *)
  lane_buf : int array; (* decomposed mask bits, ascending lanes *)
  sign_buf : float array; (* 2 * new_sign per decomposed lane *)
  x_buf : float array; (* per-lane scaled delta beta*delta, bucketed accept only *)
}

(* ------------------------------------------------------------------ *)
(* Bit twiddling on 32-bit halves held in native ints *)

let half_mask = 0xFFFFFFFF

(* Index of the lowest set bit of a 32-bit value via de Bruijn
   multiplication — no ctz intrinsic in the stdlib, and a shift-probe
   loop per neighbor would dominate the flip loop. The multiply is done
   in 63-bit native arithmetic, so the truncation the classic 32-bit
   trick relies on is an explicit mask. *)
let db32 = 0x077CB531

let ntz32_table =
  let tbl = Array.make 32 0 in
  for i = 0 to 31 do
    tbl.(((1 lsl i) * db32 land half_mask) lsr 27) <- i
  done;
  tbl

let ntz32 v = Array.unsafe_get ntz32_table (((v land -v) * db32 land half_mask) lsr 27)

(* Appends the set-bit positions of half [v], offset by [base] lanes,
   to [buf] starting at [c]; returns the new count. Ascending order. *)
let decompose_half v base buf c =
  let c = ref c in
  let m = ref v in
  while !m <> 0 do
    buf.(!c) <- base + ntz32 !m;
    incr c;
    m := !m land (!m - 1)
  done;
  !c

let split64 w = (Int64.to_int (Int64.logand w 0xFFFFFFFFL), Int64.to_int (Int64.shift_right_logical w 32))
let join64 lo hi = Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

(* ------------------------------------------------------------------ *)
(* Construction and refresh *)

let word t i = join64 t.words.(2 * i) t.words.((2 * i) + 1)

(* lane sign as a float, from the two halves of a word *)
let sign_of lo hi l =
  let b = if l < 32 then (lo lsr l) land 1 else (hi lsr (l - 32)) land 1 in
  if b = 1 then 1. else -1.

(* Per-lane float-operation order matches the scalar kernel exactly:
   fields fold h_i then the CSR row in k order (Ising.local_field),
   energies fold h_i s_i then the j > i couplers in CSR order
   (Ising.energy). Each lane therefore tracks the very same float values
   a scalar Fields state over that lane's spins would. *)
let recompute t =
  let lanes = t.lanes in
  let off = Ising.offset t.ising in
  for l = 0 to lanes - 1 do
    t.energy.(l) <- off
  done;
  for i = 0 to t.n - 1 do
    let base = i * lanes in
    let h = Ising.field t.ising i in
    let ilo = t.words.(2 * i) and ihi = t.words.((2 * i) + 1) in
    for l = 0 to lanes - 1 do
      t.field.(base + l) <- h;
      t.energy.(l) <- t.energy.(l) +. (h *. sign_of ilo ihi l)
    done;
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col.(k) in
      let v = t.value.(k) in
      let jlo = t.words.(2 * j) and jhi = t.words.((2 * j) + 1) in
      for l = 0 to lanes - 1 do
        t.field.(base + l) <- t.field.(base + l) +. (v *. sign_of jlo jhi l)
      done;
      if j > i then begin
        (* s_i s_j = +1 iff the bits agree *)
        let aglo = lnot (ilo lxor jlo) and aghi = lnot (ihi lxor jhi) in
        for l = 0 to lanes - 1 do
          let a = if l < 32 then (aglo lsr l) land 1 else (aghi lsr (l - 32)) land 1 in
          t.energy.(l) <- t.energy.(l) +. (if a = 1 then v else -.v)
        done
      end
    done
  done;
  t.flips <- 0

let pack t spins_array =
  Array.iteri
    (fun l s ->
      if Bitvec.length s <> t.n then
        invalid_arg
          (Printf.sprintf "Multispin: lane %d has %d spins, problem has %d" l (Bitvec.length s)
             t.n))
    spins_array;
  Array.fill t.words 0 (Array.length t.words) 0;
  for i = 0 to t.n - 1 do
    let lo = ref 0 and hi = ref 0 in
    Array.iteri
      (fun l s ->
        if Bitvec.get s i then
          if l < 32 then lo := !lo lor (1 lsl l) else hi := !hi lor (1 lsl (l - 32)))
      spins_array;
    t.words.(2 * i) <- !lo;
    t.words.((2 * i) + 1) <- !hi
  done

let create ?(refresh_every = 0) ising spins_array =
  if refresh_every < 0 then
    invalid_arg
      (Printf.sprintf "Multispin: refresh_every %d is negative (0 means never refresh)"
         refresh_every);
  let lanes = Array.length spins_array in
  if lanes < 1 || lanes > max_lanes then
    invalid_arg (Printf.sprintf "Multispin: %d lanes outside [1,%d]" lanes max_lanes);
  let n = Ising.num_spins ising in
  let row_ptr, col, value = Ising.csr ising in
  let t =
    {
      ising;
      row_ptr;
      col;
      value;
      n;
      lanes;
      lane_lo = (if lanes >= 32 then half_mask else (1 lsl lanes) - 1);
      lane_hi = (if lanes <= 32 then 0 else (1 lsl (lanes - 32)) - 1);
      words = Array.make (max 1 (2 * n)) 0;
      field = Array.make (max 1 (n * lanes)) 0.;
      energy = Array.make lanes 0.;
      refresh_every;
      flips = 0;
      lane_buf = Array.make lanes 0;
      sign_buf = Array.make lanes 0.;
      x_buf = Array.make lanes 0.;
    }
  in
  pack t spins_array;
  recompute t;
  t

let problem t = t.ising
let num_spins t = t.n
let lanes t = t.lanes
let lane_mask t = join64 t.lane_lo t.lane_hi
let energy t l = t.energy.(l)
let energies t = Array.copy t.energy
let field t i l = t.field.((i * t.lanes) + l)

let best_lane t =
  let best = ref 0 in
  for l = 1 to t.lanes - 1 do
    if t.energy.(l) < t.energy.(!best) then best := l
  done;
  !best

let lane_spins t l =
  if l < 0 || l >= t.lanes then
    invalid_arg (Printf.sprintf "Multispin.lane_spins: lane %d outside [0,%d)" l t.lanes);
  if l < 32 then Bitvec.init t.n (fun i -> (t.words.(2 * i) lsr l) land 1 = 1)
  else Bitvec.init t.n (fun i -> (t.words.((2 * i) + 1) lsr (l - 32)) land 1 = 1)

let reset t spins_array =
  if Array.length spins_array <> t.lanes then
    invalid_arg
      (Printf.sprintf "Multispin.reset: %d assignments for %d lanes" (Array.length spins_array)
         t.lanes);
  pack t spins_array;
  recompute t

let refresh t = recompute t

(* Same expression shape as Fields.delta so a lane and a scalar kernel
   over the same trajectory agree bit-for-bit. *)
let delta t i l =
  -2. *. sign_of t.words.(2 * i) t.words.((2 * i) + 1) l *. t.field.((i * t.lanes) + l)

let deltas t i buf =
  let lanes = t.lanes in
  let base = i * lanes in
  let lo = t.words.(2 * i) and hi = t.words.((2 * i) + 1) in
  let top = if lanes < 32 then lanes - 1 else 31 in
  for l = 0 to top do
    let s = if (lo lsr l) land 1 = 1 then 2. else -2. in
    Array.unsafe_set buf l (-.s *. Array.unsafe_get t.field (base + l))
  done;
  for l = 32 to lanes - 1 do
    let s = if (hi lsr (l - 32)) land 1 = 1 then 2. else -2. in
    Array.unsafe_set buf l (-.s *. Array.unsafe_get t.field (base + l))
  done

let drift t =
  let worst = ref 0. in
  for l = 0 to t.lanes - 1 do
    let e = Ising.energy t.ising (lane_spins t l) in
    worst := Float.max !worst (Float.abs (t.energy.(l) -. e))
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Word-wide flip *)

(* Applies a native-halves flip mask at site [i]; returns the number of
   flipped lanes. The masks must already be restricted to live lanes. *)
let flip_halves t i mlo mhi =
  if mlo lor mhi = 0 then 0
  else begin
    let lanes = t.lanes in
    let base = i * lanes in
    let ilo = t.words.(2 * i) and ihi = t.words.((2 * i) + 1) in
    let c = decompose_half mhi 32 t.lane_buf (decompose_half mlo 0 t.lane_buf 0) in
    for idx = 0 to c - 1 do
      let l = Array.unsafe_get t.lane_buf idx in
      let s = sign_of ilo ihi l in
      t.energy.(l) <- t.energy.(l) +. (-2. *. s *. Array.unsafe_get t.field (base + l));
      (* the new sign is -s; neighbors add J_ij * 2 * new_s_i *)
      Array.unsafe_set t.sign_buf idx (2. *. -.s)
    done;
    t.words.(2 * i) <- ilo lxor mlo;
    t.words.((2 * i) + 1) <- ihi lxor mhi;
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let jbase = Array.unsafe_get t.col k * lanes in
      let v = Array.unsafe_get t.value k in
      for idx = 0 to c - 1 do
        let slot = jbase + Array.unsafe_get t.lane_buf idx in
        Array.unsafe_set t.field slot
          (Array.unsafe_get t.field slot +. (v *. Array.unsafe_get t.sign_buf idx))
      done
    done;
    t.flips <- t.flips + c;
    if t.refresh_every > 0 && t.flips >= t.refresh_every then recompute t;
    c
  end

let flip t i mask =
  let mlo, mhi = split64 mask in
  ignore (flip_halves t i (mlo land t.lane_lo) (mhi land t.lane_hi))

(* ------------------------------------------------------------------ *)
(* Bulk Metropolis acceptance *)

let ln2 = Float.log 2.

(* Exact Metropolis for all lanes from O(log lanes) PRNG words: classify
   each positive scaled delta x = beta * delta into its octave
   m = floor(x / ln 2), so the acceptance probability p = exp(-x) lies in
   (2^-(m+1), 2^-m]. The uniform u each lane would compare against is
   materialized lazily, one binary digit for every lane at once per
   bits64 draw: lane L's first set bit at draw g means u in
   [2^-(g+1), 2^-g). Then g > m accepts outright, g < m rejects outright,
   and only the boundary octave g = m pays a float draw and an exp — one
   compare per settled lane instead of one draw and one exp per lane.
   The accept distribution is exactly the scalar kernel's; only the PRNG
   consumption pattern differs. *)
(* g * ln2 for g in 0..63, so settle rounds compare x against octave
   boundaries with a table load instead of an int_of_float in the per
   lane phase-1 loop. *)
let ln2_steps = Array.init 64 (fun g -> float_of_int g *. ln2)

(* Bulk-draw state: a nested xoshiro128++ held in four native ints.
   [Prng.t] is xoshiro256** over boxed int64s, and one [Prng.bits64]
   call costs ~18ns in allocation and boxing alone — the bucketed
   accept path needs one 64-bit word per geometric round per SITE, so
   drawing from the boxed generator would dominate the whole sweep. The
   nested generator is seeded from the caller's [Prng.t] (two bits64
   draws), keeping runs deterministic in the usual stream discipline,
   and every subsequent draw is allocation-free 32-bit native
   arithmetic. *)
type draws = { mutable d0 : int; mutable d1 : int; mutable d2 : int; mutable d3 : int }

let draws rng =
  let w0 = Prng.bits64 rng and w1 = Prng.bits64 rng in
  let lo w = Int64.to_int (Int64.logand w 0xFFFFFFFFL) in
  let hi w = Int64.to_int (Int64.shift_right_logical w 32) in
  let d = { d0 = lo w0; d1 = hi w0; d2 = lo w1; d3 = hi w1 } in
  (* xoshiro needs a nonzero state *)
  if d.d0 lor d.d1 lor d.d2 lor d.d3 = 0 then d.d3 <- 1;
  d

let rotl32 x k = ((x lsl k) lor (x lsr (32 - k))) land half_mask

let next32 d =
  let result = (rotl32 ((d.d0 + d.d3) land half_mask) 7 + d.d0) land half_mask in
  let t = (d.d1 lsl 9) land half_mask in
  d.d2 <- d.d2 lxor d.d0;
  d.d3 <- d.d3 lxor d.d1;
  d.d1 <- d.d1 lxor d.d2;
  d.d0 <- d.d0 lxor d.d3;
  d.d2 <- d.d2 lxor t;
  d.d3 <- rotl32 d.d3 11;
  result

(* 53-bit uniform in [0,1) from two 32-bit words: 27 high + 26 low. *)
let float53 d =
  let a = next32 d in
  let b = next32 d in
  float_of_int (((a lsr 5) * 67108864) + (b lsr 6)) *. 0x1.0p-53

(* Phase 2 of the bucketed decision: reveal each undecided lane's
   uniform one octave per round word — every lane settles at its first
   set bit, at round g meaning u in [2^-(g+1), 2^-g). Scaled deltas come
   from [x_buf] (phase 1 fills it, along with their minimum [min_x]);
   [acc_lo]/[acc_hi] carry the already-settled downhill accepts in.
   Returns the final accept halves. The settled decision: x <= g ln2
   (p >= 2^-g > u) accepts, x >= (g+1) ln2 (p <= 2^-(g+1) <= u) rejects,
   and the boundary octave pays one float draw and one exp. The refine
   inequality v < p 2^(g+1) - 1 is the exact accept condition for ANY u
   in the octave, so the threshold compares are shortcuts, not
   approximations — and when even the smallest x exceeds the round's
   upper boundary every hit lane rejects, so the whole per-lane pass is
   skipped (the common case once the system is cold). *)
let settle_geometric t ~d ~min_x ~rem_lo ~rem_hi ~acc_lo ~acc_hi =
  let rem_lo = ref rem_lo and rem_hi = ref rem_hi in
  let acc_lo = ref acc_lo and acc_hi = ref acc_hi in
  let g = ref 0 in
  while !rem_lo lor !rem_hi <> 0 do
    if !g >= 62 then begin
      (* The remaining lanes' uniforms are conditionally below 2^-62;
         finish each with one exact conditional draw. *)
      let c = decompose_half !rem_hi 32 t.lane_buf (decompose_half !rem_lo 0 t.lane_buf 0) in
      for idx = 0 to c - 1 do
        let l = t.lane_buf.(idx) in
        if float53 d < Float.exp ((float_of_int !g *. ln2) -. t.x_buf.(l)) then
          if l < 32 then acc_lo := !acc_lo lor (1 lsl l)
          else acc_hi := !acc_hi lor (1 lsl (l - 32))
      done;
      rem_lo := 0;
      rem_hi := 0
    end
    else begin
      let wlo = next32 d in
      let whi = if !rem_hi <> 0 then next32 d else 0 in
      let hi_step = Array.unsafe_get ln2_steps (!g + 1) in
      if min_x < hi_step then begin
        let lo_step = Array.unsafe_get ln2_steps !g in
        let m = ref (!rem_lo land wlo) in
        while !m <> 0 do
          let l = ntz32 !m in
          m := !m land (!m - 1);
          let x = Array.unsafe_get t.x_buf l in
          if x <= lo_step then acc_lo := !acc_lo lor (1 lsl l)
          else if x < hi_step then begin
            (* u = 2^-(g+1) (1 + v) with v uniform: accept iff
               v < p * 2^(g+1) - 1 *)
            if float53 d < (Float.exp (-.x) *. Float.ldexp 1. (!g + 1)) -. 1. then
              acc_lo := !acc_lo lor (1 lsl l)
          end
        done;
        let m = ref (!rem_hi land whi) in
        while !m <> 0 do
          let b = ntz32 !m in
          m := !m land (!m - 1);
          let x = Array.unsafe_get t.x_buf (b + 32) in
          if x <= lo_step then acc_hi := !acc_hi lor (1 lsl b)
          else if x < hi_step then begin
            if float53 d < (Float.exp (-.x) *. Float.ldexp 1. (!g + 1)) -. 1. then
              acc_hi := !acc_hi lor (1 lsl b)
          end
        done
      end;
      (* whether or not any lane could accept, every hit lane's fate is
         sealed this round (x >= hi_step for all of them when the pass
         was skipped -> reject) *)
      rem_lo := !rem_lo land lnot wlo;
      rem_hi := !rem_hi land lnot whi;
      incr g
    end
  done;
  (!acc_lo, !acc_hi)

let accept_mask t ~draws:d ?only ~betas deltas =
  let lanes = t.lanes in
  let only_lo, only_hi =
    match only with
    | None -> (t.lane_lo, t.lane_hi)
    | Some m ->
      let lo, hi = split64 m in
      (lo land t.lane_lo, hi land t.lane_hi)
  in
  let acc_lo = ref 0 and acc_hi = ref 0 in
  let rem_lo = ref 0 and rem_hi = ref 0 in
  let min_x = ref infinity in
  (* Phase 1: settle downhill lanes, stash the scaled uphill deltas. *)
  let top = if lanes < 32 then lanes - 1 else 31 in
  for l = 0 to top do
    if (only_lo lsr l) land 1 = 1 then begin
      let x = Array.unsafe_get betas l *. Array.unsafe_get deltas l in
      if x <= 0. then acc_lo := !acc_lo lor (1 lsl l)
      else begin
        Array.unsafe_set t.x_buf l x;
        min_x := Float.min !min_x x;
        rem_lo := !rem_lo lor (1 lsl l)
      end
    end
  done;
  for l = 32 to lanes - 1 do
    if (only_hi lsr (l - 32)) land 1 = 1 then begin
      let x = Array.unsafe_get betas l *. Array.unsafe_get deltas l in
      if x <= 0. then acc_hi := !acc_hi lor (1 lsl (l - 32))
      else begin
        Array.unsafe_set t.x_buf l x;
        min_x := Float.min !min_x x;
        rem_hi := !rem_hi lor (1 lsl (l - 32))
      end
    end
  done;
  let acc_lo, acc_hi =
    settle_geometric t ~d ~min_x:!min_x ~rem_lo:!rem_lo ~rem_hi:!rem_hi ~acc_lo:!acc_lo
      ~acc_hi:!acc_hi
  in
  join64 acc_lo acc_hi

(* Branchless per-lane sign select: indexing a 2-entry float array by
   the spin bit avoids a data-dependent branch the predictor cannot
   learn (the pattern is the spin configuration itself). *)
let neg2_of_bit = [| 2.; -2. |]

(* Whole-sweep fused path: deltas, bucketed acceptance and the flip are
   one pass per site with no packing/unpacking at the API boundary and
   no intermediate delta buffer — what [Sa.run_packed]'s fast path runs.
   Uniform beta across lanes (a β schedule step). Returns accepted
   lane-flips. *)
let metropolis_sweep t ~draws:d ~beta =
  let lanes = t.lanes in
  let accepted = ref 0 in
  let top = if lanes < 32 then lanes - 1 else 31 in
  for i = 0 to t.n - 1 do
    let base = i * lanes in
    let ilo = Array.unsafe_get t.words (2 * i) and ihi = Array.unsafe_get t.words ((2 * i) + 1) in
    let acc_lo = ref 0 and acc_hi = ref 0 in
    let rem_lo = ref 0 and rem_hi = ref 0 in
    let min_x = ref infinity in
    for l = 0 to top do
      (* -2s, branchlessly: bit 1 -> -2., bit 0 -> +2. *)
      let ns = Array.unsafe_get neg2_of_bit ((ilo lsr l) land 1) in
      let x = beta *. (ns *. Array.unsafe_get t.field (base + l)) in
      if x <= 0. then acc_lo := !acc_lo lor (1 lsl l)
      else begin
        Array.unsafe_set t.x_buf l x;
        min_x := Float.min !min_x x;
        rem_lo := !rem_lo lor (1 lsl l)
      end
    done;
    for l = 32 to lanes - 1 do
      let ns = Array.unsafe_get neg2_of_bit ((ihi lsr (l - 32)) land 1) in
      let x = beta *. (ns *. Array.unsafe_get t.field (base + l)) in
      if x <= 0. then acc_hi := !acc_hi lor (1 lsl (l - 32))
      else begin
        Array.unsafe_set t.x_buf l x;
        min_x := Float.min !min_x x;
        rem_hi := !rem_hi lor (1 lsl (l - 32))
      end
    done;
    let acc_lo, acc_hi =
      settle_geometric t ~d ~min_x:!min_x ~rem_lo:!rem_lo ~rem_hi:!rem_hi ~acc_lo:!acc_lo
        ~acc_hi:!acc_hi
    in
    accepted := !accepted + flip_halves t i acc_lo acc_hi
  done;
  !accepted

(* Lockstep acceptance: lane L consumes draws from rngs.(L) with exactly
   the scalar sweep's conditional-draw discipline and float expressions,
   so a lane's trajectory is bit-identical to a scalar read running on
   Fields with the same stream. *)
let accept_mask_lockstep t ~rngs ~betas deltas =
  let lanes = t.lanes in
  let acc_lo = ref 0 and acc_hi = ref 0 in
  let top = if lanes < 32 then lanes - 1 else 31 in
  for l = 0 to top do
    let d = deltas.(l) in
    if d <= 0. || Prng.float rngs.(l) < Float.exp (-.betas.(l) *. d) then
      acc_lo := !acc_lo lor (1 lsl l)
  done;
  for l = 32 to lanes - 1 do
    let d = deltas.(l) in
    if d <= 0. || Prng.float rngs.(l) < Float.exp (-.betas.(l) *. d) then
      acc_hi := !acc_hi lor (1 lsl (l - 32))
  done;
  join64 !acc_lo !acc_hi
