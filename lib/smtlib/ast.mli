(** SMT-LIB abstract syntax (QF_S fragment plus extensions).

    Terms keep operator applications symbolic ([App]); {!Typecheck}
    validates them against the known signatures and {!Compile} interprets
    them. Two non-standard symbols extend the theory the way the paper
    does: [str.rev] (reversal, §4.9) and [str.palindrome] (palindrome
    predicate, §4.10) — both flagged in {!Typecheck.known_extensions}. *)

type sort = S_string | S_int | S_bool | S_reglan

type term =
  | Var of string
  | Str of string  (** string literal *)
  | Int of int
  | Bool of bool
  | App of string * term list  (** operator application *)

type command =
  | Set_logic of string
  | Set_info  (** contents ignored *)
  | Set_option  (** contents ignored *)
  | Declare_const of string * sort
  | Assert of term
  | Push of int
  | Pop of int
  | Check_sat
  | Check_sat_assuming of term list
      (** check under extra assumptions that are not added to the
          assertion stack *)
  | Get_model
  | Get_value of term list
  | Echo of string
  | Exit

val sort_of_string : string -> sort option
val string_of_sort : sort -> string
val pp_term : Format.formatter -> term -> unit
val pp_command : Format.formatter -> command -> unit
val term_to_string : term -> string
