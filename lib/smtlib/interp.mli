(** SMT-LIB script interpreter.

    Executes a command list the way an SMT solver's REPL would:
    declarations build the sort environment, assertions accumulate (and
    are sort-checked on entry), [check-sat] compiles the assertion set
    and runs the annealing solver, [get-model] / [get-value] read the
    model produced by the last [check-sat]. Output is returned as lines
    (what a solver would print to stdout).

    Answer discipline: [sat] is only reported when the decoded model has
    been verified classically against every assertion; an annealer
    failure or an unsupported fragment yields [unknown], never a wrong
    [sat]/[unsat]. *)

type state

type solve_result = [ `Value of Eval.value | `Unsat | `Unknown ]
(** Verdict of a theory backend on one compiled problem. [`Unsat] must
    only be returned when it is a proof (a complete solver refuted the
    cube); heuristic failure is [`Unknown]. *)

type backend = {
  backend_name : string;
  solve_generate : Qsmt_strtheory.Constr.t -> solve_result;
      (** decide a single [Generate]/[Locate] constraint *)
  solve_joint : Qsmt_strtheory.Constr.t list -> solve_result;
      (** decide a conjunction of constraints on one string variable *)
}
(** Theory solver plugged under the boolean (DNF) layer. The default is
    {!annealing_backend}; the CLI injects a classical CDCL bit-blasting
    backend for [--sampler classical] — which is why this is a record
    and not a hard dependency on either solver family. *)

val annealing_backend :
  ?params:Qsmt_strtheory.Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?absint:Qsmt_strtheory.Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  unit ->
  backend
(** QUBO compile + sampler backend. Sampling is incomplete, so sampler
    failure is [`Unknown]; the only [`Unsat] answers are static proofs
    from the pre-encode abstract interpreter ([absint], default [`On] —
    re-run on every query, so [push]/[pop] deltas get fresh verdicts;
    [`Off] restores the never-[`Unsat] behavior). The sampler defaults
    to {!Qsmt_strtheory.Solver.default_sampler} with seed 0. [telemetry]
    is handed to every {!Qsmt_strtheory.Solver.solve} /
    {!Qsmt_strtheory.Joint.solve} the backend performs. *)

val create :
  ?params:Qsmt_strtheory.Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?backend:backend ->
  ?absint:Qsmt_strtheory.Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  unit ->
  state
(** [backend] wins when given; otherwise [annealing_backend ?params
    ?sampler ~telemetry ()]. The state also uses [telemetry] itself: an
    [smtlib.assertions] counter and one [smtlib.check_sat] span (with an
    [smtlib.verdict] event) per [check-sat]. *)

val exec : state -> Ast.command -> (string list, string) result
(** Output lines of one command. [Error] is a solver-level error
    (redeclaration, sort error, get-model before check-sat, ...). *)

val run_script : state -> Ast.command list -> (string list, string) result
(** Executes until the end or the first [Exit]; concatenates output.
    Stops at the first error. *)

val run_string :
  ?params:Qsmt_strtheory.Params.t ->
  ?sampler:Qsmt_anneal.Sampler.t ->
  ?backend:backend ->
  ?absint:Qsmt_strtheory.Absint.gate ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  string ->
  (string list, string) result
(** Parse and run a whole script from source text. Optional arguments as
    in {!create}; parsing is additionally bracketed in an [smtlib.parse]
    span. *)

val model : state -> (string * Eval.value) list option
(** Model from the last [check-sat], if it answered [sat]. *)
