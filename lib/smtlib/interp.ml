module Constr = Qsmt_strtheory.Constr
module Solver = Qsmt_strtheory.Solver
module Telemetry = Qsmt_util.Telemetry

let ( let* ) = Result.bind

type solve_result = [ `Value of Eval.value | `Unsat | `Unknown ]

type backend = {
  backend_name : string;
  solve_generate : Constr.t -> solve_result;
  solve_joint : Constr.t list -> solve_result;
}

type state = {
  backend : backend;
  telemetry : Telemetry.t;
  mutable env : Typecheck.env;
  mutable assertions : Ast.term list; (* newest first *)
  mutable last_model : (string * Eval.value) list option;
  mutable stack : (Typecheck.env * Ast.term list) list; (* push/pop frames *)
  mutable exited : bool;
}

let value_of_constr_value = function
  | Constr.Str s -> Some (Eval.V_str s)
  | Constr.Pos (Some i) -> Some (Eval.V_int i)
  | Constr.Pos None -> None

(* A statically-refuted outcome is a proof (the abstract interpreter's
   transfer functions only remove characters no satisfying string can
   use), so — unlike ordinary sampler failure — it may answer `Unsat. *)
let statically_unsat = function
  | Some { Qsmt_strtheory.Absint.verdict = Qsmt_strtheory.Absint.V_unsat _; _ } -> true
  | _ -> false

let annealing_backend ?params ?sampler ?absint ?(telemetry = Telemetry.null) () =
  (* One incremental session per backend: repeated queries over a
     push/pop session reuse cached encodings, delta-patch the merged
     QUBO, and warm-start the anneal from the previous best sample. A
     cold first query behaves exactly like [Solver.solve] /
     [Joint.solve]. The session re-runs the abstract interpreter on
     every query, so push/pop deltas get fresh static verdicts. *)
  let session = Qsmt_strtheory.Incremental.create ?params ?sampler ?absint ~telemetry () in
  {
    backend_name = "annealing";
    (* A sampler is incomplete: it can certify sat (the decode verifies)
       but never unsat, so sampling failure is `Unknown — only a static
       refutation upgrades to `Unsat. *)
    solve_generate =
      (fun constr ->
        let outcome = Qsmt_strtheory.Incremental.solve_generate session constr in
        match (outcome.Solver.satisfied, value_of_constr_value outcome.Solver.value) with
        | true, Some v -> `Value v
        | _, _ -> if statically_unsat outcome.Solver.decided then `Unsat else `Unknown);
    solve_joint =
      (fun conjuncts ->
        match Qsmt_strtheory.Incremental.solve_joint session conjuncts with
        | Error _ -> `Unknown
        | Ok outcome ->
          if outcome.Qsmt_strtheory.Joint.satisfied then
            `Value (Eval.V_str outcome.Qsmt_strtheory.Joint.value)
          else if statically_unsat outcome.Qsmt_strtheory.Joint.decided then `Unsat
          else `Unknown);
  }

let create ?params ?sampler ?backend ?absint ?(telemetry = Telemetry.null) () =
  let backend =
    match backend with
    | Some b -> b
    | None -> annealing_backend ?params ?sampler ?absint ~telemetry ()
  in
  {
    backend;
    telemetry;
    env = Typecheck.empty_env;
    assertions = [];
    last_model = None;
    stack = [];
    exited = false;
  }

let model st = st.last_model

(* Default values for declared-but-unconstrained variables, so a model
   always covers every declaration. *)
let default_value = function
  | Ast.S_string -> Some (Eval.V_str "")
  | Ast.S_int -> Some (Eval.V_int 0)
  | Ast.S_bool -> Some (Eval.V_bool true)
  | Ast.S_reglan -> None

let complete_model st partial =
  List.filter_map
    (fun (name, sort) ->
      match List.assoc_opt name partial with
      | Some v -> Some (name, v)
      | None -> Option.map (fun v -> (name, v)) (default_value sort))
    (Typecheck.declared st.env)

(* Classical double-check of a candidate model against every assertion. *)
let model_satisfies st model =
  List.for_all
    (fun a -> match Eval.term ~model a with Ok (Eval.V_bool true) -> true | _ -> false)
    (List.rev st.assertions)

(* Attempt one conjunction of atoms (a DNF cube). `Unsat is only
   reported when it is a proof — trivially false, or a complete backend
   (CDCL bit-blasting) refuting the cube; heuristic failure is
   `Unknown. *)
let attempt_cube st terms =
  match Compile.compile st.env terms with
  | Error _ -> `Unknown
  | Ok (Compile.Trivial false) -> `Unsat
  | Ok (Compile.Trivial true) -> `Sat (complete_model st [])
  | Ok (Compile.Solved { var; value }) ->
    let candidate = complete_model st [ (var, value) ] in
    (* verify against the cube, not the full boolean assertion set: the
       cube is what this branch claims *)
    if List.for_all (fun t -> Eval.term ~model:candidate t = Ok (Eval.V_bool true)) terms then
      `Sat candidate
    else `Unknown
  | Ok (Compile.Generate_joint { var; conjuncts }) -> begin
    match st.backend.solve_joint conjuncts with
    | `Value v -> `Sat (complete_model st [ (var, v) ])
    | `Unsat -> `Unsat
    | `Unknown -> `Unknown
  end
  | Ok (Compile.Generate { var; constr } | Compile.Locate { var; constr }) -> begin
    match st.backend.solve_generate constr with
    | `Value v -> `Sat (complete_model st [ (var, v) ])
    | `Unsat -> `Unsat
    | `Unknown -> `Unknown
  end

let check_sat st =
  st.last_model <- None;
  (* DPLL(T)-style split: expand the boolean structure into cubes, then
     decide each conjunction with the theory (annealing) backend. *)
  match Dnf.expand (List.rev st.assertions) with
  | Error _ -> [ "unknown" ]
  | Ok [] -> [ "unsat" ]
  | Ok cubes ->
    let rec try_cubes saw_unknown = function
      | [] -> if saw_unknown then [ "unknown" ] else [ "unsat" ]
      | cube :: rest -> begin
        match Dnf.cube_terms cube with
        | Error _ -> try_cubes true rest
        | Ok terms -> begin
          match attempt_cube st terms with
          | `Sat candidate ->
            (* final word: the model must satisfy the *original*
               assertions (Eval handles and/or/not) *)
            if model_satisfies st candidate then begin
              st.last_model <- Some candidate;
              [ "sat" ]
            end
            else try_cubes true rest
          | `Unsat -> try_cubes saw_unknown rest
          | `Unknown -> try_cubes true rest
        end
      end
    in
    try_cubes false cubes

let sort_of_value = function
  | Eval.V_str _ -> Ast.S_string
  | Eval.V_int _ -> Ast.S_int
  | Eval.V_bool _ -> Ast.S_bool

let exec st command =
  if st.exited then Error "solver has exited"
  else begin
    match command with
    | Ast.Set_logic _ | Ast.Set_info | Ast.Set_option -> Ok []
    | Ast.Declare_const (name, sort) ->
      let* env = Typecheck.declare st.env name sort in
      st.env <- env;
      Ok []
    | Ast.Assert term ->
      let* () = Typecheck.check_assertion st.env term in
      st.assertions <- term :: st.assertions;
      Telemetry.count st.telemetry "smtlib.assertions" 1;
      Ok []
    | Ast.Push n ->
      for _ = 1 to n do
        st.stack <- (st.env, st.assertions) :: st.stack
      done;
      Ok []
    | Ast.Pop n ->
      let rec pop k =
        if k = 0 then Ok []
        else begin
          match st.stack with
          | [] -> Error "pop without matching push"
          | (env, assertions) :: rest ->
            st.env <- env;
            st.assertions <- assertions;
            st.stack <- rest;
            pop (k - 1)
        end
      in
      pop n
    | Ast.Check_sat ->
      Ok
        (Telemetry.with_span st.telemetry "smtlib.check_sat" (fun span ->
             let lines = Telemetry.with_gc_probe st.telemetry ~span (fun () -> check_sat st) in
             (match lines with
             | [ verdict ] ->
               Telemetry.emit st.telemetry ~span "smtlib.verdict"
                 [ ("result", Telemetry.Str verdict) ]
             | _ -> ());
             lines))
    | Ast.Check_sat_assuming assumptions ->
      let* () =
        List.fold_left
          (fun acc a ->
            let* () = acc in
            Typecheck.check_assertion st.env a)
          (Ok ()) assumptions
      in
      (* Assumptions join the assertions for this one query only; the
         stack, environment and assertion list are untouched afterwards.
         A model found under assumptions stays available to (get-model),
         matching how (check-sat) leaves its model behind. *)
      let saved = st.assertions in
      st.assertions <- List.rev_append (List.rev assumptions) st.assertions;
      Telemetry.count st.telemetry "smtlib.assumptions" (List.length assumptions);
      Fun.protect
        ~finally:(fun () -> st.assertions <- saved)
        (fun () ->
          Ok
            (Telemetry.with_span st.telemetry "smtlib.check_sat_assuming" (fun span ->
                 let lines =
                   Telemetry.with_gc_probe st.telemetry ~span (fun () -> check_sat st)
                 in
                 (match lines with
                 | [ verdict ] ->
                   Telemetry.emit st.telemetry ~span "smtlib.verdict"
                     [ ("result", Telemetry.Str verdict) ]
                 | _ -> ());
                 lines)))
    | Ast.Get_model -> begin
      match st.last_model with
      | None -> Error "no model available (run (check-sat) first, it must answer sat)"
      | Some model ->
        let lines =
          List.map
            (fun (name, v) ->
              Format.asprintf "(define-fun %s () %s %a)" name
                (Ast.string_of_sort (sort_of_value v))
                Eval.pp_value v)
            model
        in
        Ok (("(" :: List.map (fun l -> "  " ^ l) lines) @ [ ")" ])
    end
    | Ast.Get_value targets -> begin
      match st.last_model with
      | None -> Error "no model available (run (check-sat) first, it must answer sat)"
      | Some model ->
        let* pairs =
          List.fold_left
            (fun acc t ->
              let* acc = acc in
              let* v = Eval.term ~model t in
              Ok ((t, v) :: acc))
            (Ok []) targets
        in
        let rendered =
          List.rev_map
            (fun (t, v) -> Format.asprintf "(%s %a)" (Ast.term_to_string t) Eval.pp_value v)
            pairs
        in
        Ok [ "(" ^ String.concat " " rendered ^ ")" ]
    end
    | Ast.Echo s -> Ok [ s ]
    | Ast.Exit ->
      st.exited <- true;
      Ok []
  end

let run_script st commands =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | cmd :: rest ->
      if st.exited then Ok (List.concat (List.rev acc))
      else begin
        match exec st cmd with
        | Error _ as e -> e
        | Ok lines -> go (lines :: acc) rest
      end
  in
  go [] commands

let run_string ?params ?sampler ?backend ?absint ?(telemetry = Telemetry.null) source =
  let* commands =
    Telemetry.with_span telemetry "smtlib.parse" (fun _ -> Parser.parse_script source)
  in
  run_script (create ?params ?sampler ?backend ?absint ~telemetry ()) commands
