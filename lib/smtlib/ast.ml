type sort = S_string | S_int | S_bool | S_reglan

type term =
  | Var of string
  | Str of string
  | Int of int
  | Bool of bool
  | App of string * term list

type command =
  | Set_logic of string
  | Set_info
  | Set_option
  | Declare_const of string * sort
  | Assert of term
  | Push of int
  | Pop of int
  | Check_sat
  | Check_sat_assuming of term list
  | Get_model
  | Get_value of term list
  | Echo of string
  | Exit

let sort_of_string = function
  | "String" -> Some S_string
  | "Int" -> Some S_int
  | "Bool" -> Some S_bool
  | "RegLan" -> Some S_reglan
  | _ -> None

let string_of_sort = function
  | S_string -> "String"
  | S_int -> "Int"
  | S_bool -> "Bool"
  | S_reglan -> "RegLan"

let rec pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Str s -> Format.fprintf ppf "%S" s
  | Int n -> Format.pp_print_int ppf n
  | Bool b -> Format.pp_print_bool ppf b
  | App (op, args) ->
    Format.fprintf ppf "(%s" op;
    List.iter (fun a -> Format.fprintf ppf " %a" pp_term a) args;
    Format.pp_print_char ppf ')'

let pp_command ppf = function
  | Set_logic l -> Format.fprintf ppf "(set-logic %s)" l
  | Set_info -> Format.fprintf ppf "(set-info ...)"
  | Set_option -> Format.fprintf ppf "(set-option ...)"
  | Declare_const (name, sort) ->
    Format.fprintf ppf "(declare-const %s %s)" name (string_of_sort sort)
  | Assert t -> Format.fprintf ppf "(assert %a)" pp_term t
  | Push n -> Format.fprintf ppf "(push %d)" n
  | Pop n -> Format.fprintf ppf "(pop %d)" n
  | Check_sat -> Format.fprintf ppf "(check-sat)"
  | Check_sat_assuming ts ->
    Format.fprintf ppf "(check-sat-assuming (%a))"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_term)
      ts
  | Get_model -> Format.fprintf ppf "(get-model)"
  | Get_value ts ->
    Format.fprintf ppf "(get-value (%a))"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_term)
      ts
  | Echo s -> Format.fprintf ppf "(echo %S)" s
  | Exit -> Format.fprintf ppf "(exit)"

let term_to_string t = Format.asprintf "%a" pp_term t
