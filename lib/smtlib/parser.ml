let ( let* ) = Result.bind

let rec term_of_sexp = function
  | Sexp.String s -> Ok (Ast.Str s)
  | Sexp.Atom "true" -> Ok (Ast.Bool true)
  | Sexp.Atom "false" -> Ok (Ast.Bool false)
  | Sexp.Atom a -> begin
    match int_of_string_opt a with Some n -> Ok (Ast.Int n) | None -> Ok (Ast.Var a)
  end
  | Sexp.List (Sexp.Atom "-" :: [ Sexp.Atom a ]) -> begin
    (* (- 3) negative numeral *)
    match int_of_string_opt a with
    | Some n -> Ok (Ast.Int (-n))
    | None -> Error "expected a numeral after unary -"
  end
  | Sexp.List (Sexp.List (Sexp.Atom "_" :: Sexp.Atom op :: indices) :: operands) ->
    (* indexed identifier, e.g. ((_ re.loop 2 4) r): indices become
       leading integer arguments *)
    let* index_terms =
      List.fold_left
        (fun acc idx ->
          let* acc = acc in
          match idx with
          | Sexp.Atom a -> begin
            match int_of_string_opt a with
            | Some n -> Ok (Ast.Int n :: acc)
            | None -> Error "indexed identifier indices must be numerals"
          end
          | Sexp.String _ | Sexp.List _ -> Error "indexed identifier indices must be numerals")
        (Ok []) indices
    in
    let* operand_terms =
      List.fold_left
        (fun acc arg ->
          let* acc = acc in
          let* t = term_of_sexp arg in
          Ok (t :: acc))
        (Ok []) operands
    in
    Ok (Ast.App (op, List.rev index_terms @ List.rev operand_terms))
  | Sexp.List (Sexp.Atom op :: args) ->
    let* args =
      List.fold_left
        (fun acc arg ->
          let* acc = acc in
          let* t = term_of_sexp arg in
          Ok (t :: acc))
        (Ok []) args
    in
    Ok (Ast.App (op, List.rev args))
  | Sexp.List _ -> Error "expected an operator application"

let command_of_sexp sexp =
  match sexp with
  | Sexp.List [ Sexp.Atom "set-logic"; Sexp.Atom logic ] -> Ok (Ast.Set_logic logic)
  | Sexp.List (Sexp.Atom "set-info" :: _) -> Ok Ast.Set_info
  | Sexp.List (Sexp.Atom "set-option" :: _) -> Ok Ast.Set_option
  | Sexp.List [ Sexp.Atom "declare-const"; Sexp.Atom name; Sexp.Atom sort ] -> begin
    match Ast.sort_of_string sort with
    | Some s -> Ok (Ast.Declare_const (name, s))
    | None -> Error (Printf.sprintf "unknown sort %s" sort)
  end
  | Sexp.List [ Sexp.Atom "declare-fun"; Sexp.Atom name; Sexp.List []; Sexp.Atom sort ] -> begin
    (* nullary declare-fun is declare-const *)
    match Ast.sort_of_string sort with
    | Some s -> Ok (Ast.Declare_const (name, s))
    | None -> Error (Printf.sprintf "unknown sort %s" sort)
  end
  | Sexp.List [ Sexp.Atom "assert"; body ] ->
    let* t = term_of_sexp body in
    Ok (Ast.Assert t)
  | Sexp.List [ Sexp.Atom "push" ] -> Ok (Ast.Push 1)
  | Sexp.List [ Sexp.Atom "push"; Sexp.Atom n ] -> begin
    match int_of_string_opt n with
    | Some n when n >= 0 -> Ok (Ast.Push n)
    | _ -> Error "push expects a non-negative numeral"
  end
  | Sexp.List [ Sexp.Atom "pop" ] -> Ok (Ast.Pop 1)
  | Sexp.List [ Sexp.Atom "pop"; Sexp.Atom n ] -> begin
    match int_of_string_opt n with
    | Some n when n >= 0 -> Ok (Ast.Pop n)
    | _ -> Error "pop expects a non-negative numeral"
  end
  | Sexp.List [ Sexp.Atom "check-sat" ] -> Ok Ast.Check_sat
  | Sexp.List [ Sexp.Atom "check-sat-assuming"; Sexp.List lits ] ->
    let* ts =
      List.fold_left
        (fun acc lit ->
          let* acc = acc in
          let* t = term_of_sexp lit in
          Ok (t :: acc))
        (Ok []) lits
    in
    Ok (Ast.Check_sat_assuming (List.rev ts))
  | Sexp.List [ Sexp.Atom "get-model" ] -> Ok Ast.Get_model
  | Sexp.List [ Sexp.Atom "get-value"; Sexp.List targets ] ->
    let* ts =
      List.fold_left
        (fun acc target ->
          let* acc = acc in
          let* t = term_of_sexp target in
          Ok (t :: acc))
        (Ok []) targets
    in
    Ok (Ast.Get_value (List.rev ts))
  | Sexp.List [ Sexp.Atom "echo"; Sexp.String s ] -> Ok (Ast.Echo s)
  | Sexp.List [ Sexp.Atom "exit" ] -> Ok Ast.Exit
  | Sexp.List (Sexp.Atom cmd :: _) -> Error (Printf.sprintf "unsupported command %s" cmd)
  | Sexp.Atom a -> Error (Printf.sprintf "expected a command, got atom %s" a)
  | Sexp.String _ -> Error "expected a command, got a string"
  | Sexp.List [] -> Error "empty command"
  | Sexp.List ((Sexp.String _ | Sexp.List _) :: _) -> Error "command must start with a symbol"

let parse_script input =
  let* sexps = Sexp.parse_all input in
  List.fold_left
    (fun acc sexp ->
      let* acc = acc in
      let* cmd = command_of_sexp sexp in
      Ok (cmd :: acc))
    (Ok []) sexps
  |> Result.map List.rev
