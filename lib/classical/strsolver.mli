(** Classical string-constraint solver (the z3 stand-in).

    Same input language and output contract as the annealing
    {!Qsmt_strtheory.Solver}, but complete: bit-blast to CNF, run CDCL,
    decode the model. [`Unsat] is a real proof (the annealer can never
    say that), [`Unknown] only appears when a conflict budget is set. *)

type outcome = {
  constr : Qsmt_strtheory.Constr.t;
  result : [ `Sat | `Unsat | `Unknown ];
  value : Qsmt_strtheory.Constr.value option;  (** decoded model when [`Sat] *)
  satisfied : bool;  (** classical verification of [value] *)
  sat_stats : Cdcl.stats;
  cnf_vars : int;
  cnf_clauses : int;
}

val solve : ?conflict_budget:int -> Qsmt_strtheory.Constr.t -> outcome

(** Incremental classical solving across a query sequence.

    The SMT-LIB front-end's push/pop sessions re-check near-identical
    queries; a session keeps (a) a per-constraint outcome cache (the
    pipeline is deterministic, so a repeat is a lookup) and (b) one
    {!Cdcl.Incremental} instance for conjunctions, where every conjunct
    ever seen lives behind an activation literal over shared string
    bits. Re-querying any subset of known conjuncts reuses all learned
    clauses; a CDCL [Unsat] under the activation assumptions is a real
    refutation of that conjunction (the guarded encodings are exact). *)
module Session : sig
  type t

  val create : ?conflict_budget:int -> unit -> t
  val reset : t -> unit

  val solve : t -> Qsmt_strtheory.Constr.t -> outcome
  (** Cached {!Strsolver.solve}. *)

  val solve_joint :
    t ->
    Qsmt_strtheory.Constr.t list ->
    ([ `Sat of string | `Unsat | `Unknown ] * Cdcl.stats, string) result
  (** Exact conjunction solving over the shared [7·L] string bits
      (unlike the annealer's additive QUBO merge, this is complete).
      [Error] mirrors {!Qsmt_strtheory.Joint.common_length}: empty list,
      an [Includes], disagreeing lengths, or a conjunct outside the
      joint-encodable fragment. *)
end

val solve_pipeline :
  ?conflict_budget:int -> Qsmt_strtheory.Pipeline.t -> outcome list
(** Sequential composition, mirroring the annealing solver's §4.12
    treatment. A stage whose model is missing feeds [""] onward. *)
