module Constr = Qsmt_strtheory.Constr
module Pipeline = Qsmt_strtheory.Pipeline
module Joint = Qsmt_strtheory.Joint
module Bitvec = Qsmt_util.Bitvec
module Ascii7 = Qsmt_util.Ascii7

type outcome = {
  constr : Constr.t;
  result : [ `Sat | `Unsat | `Unknown ];
  value : Constr.value option;
  satisfied : bool;
  sat_stats : Cdcl.stats;
  cnf_vars : int;
  cnf_clauses : int;
}

let solve ?conflict_budget constr =
  let cnf = Bitblast.encode constr in
  let result, sat_stats = Cdcl.solve ?conflict_budget cnf in
  let result, value =
    match result with
    | Cdcl.Sat model -> (`Sat, Some (Bitblast.decode constr model))
    | Cdcl.Unsat -> (`Unsat, None)
    | Cdcl.Unknown -> (`Unknown, None)
  in
  let satisfied = match value with Some v -> Constr.verify constr v | None -> false in
  {
    constr;
    result;
    value;
    satisfied;
    sat_stats;
    cnf_vars = cnf.Cnf.num_vars;
    cnf_clauses = Cnf.num_clauses cnf;
  }

module Session = struct
  (* Conjunctions share one incremental CDCL instance. Variable layout:
     the common string's 7L bits first (every joint-encodable conjunct's
     CNF puts its string bits there too, so they unify by renumbering
     nothing), then per-conjunct blocks of auxiliary variables (selector
     / DFA-state vars, shifted up from their local positions), then one
     activation variable per conjunct. Each clause of conjunct [c] is
     guarded as [¬g_c ∨ ...]; a query over conjuncts [cs] assumes
     exactly their activation literals, so any subset of ever-seen
     conjuncts can be (re-)queried — push/pop and check-sat-assuming
     come for free, and learned clauses carry over. *)
  type joint_state = {
    length : int;
    sat : Cdcl.Incremental.t;
    guards : (Constr.t, int) Hashtbl.t; (* conjunct -> activation var *)
    mutable next_var : int; (* next free variable above 7L *)
  }

  type t = {
    conflict_budget : int option;
    outcomes : (Constr.t, outcome) Hashtbl.t;
    mutable joint : joint_state option; (* keyed by the common length *)
  }

  let create ?conflict_budget () =
    { conflict_budget; outcomes = Hashtbl.create 16; joint = None }

  let reset t =
    Hashtbl.reset t.outcomes;
    t.joint <- None

  (* Bit-blasting and CDCL are deterministic, so a repeated single
     constraint (the common case across push/pop re-checks) is a table
     lookup. *)
  let solve t constr =
    match Hashtbl.find_opt t.outcomes constr with
    | Some o -> o
    | None ->
      let o = solve ?conflict_budget:t.conflict_budget constr in
      Hashtbl.add t.outcomes constr o;
      o

  let joint_state t length =
    match t.joint with
    | Some js when js.length = length -> js
    | Some _ | None ->
      (* a different common length means a different shared-bit block;
         start over (learned clauses about other lengths don't apply) *)
      let js =
        {
          length;
          sat =
            Cdcl.Incremental.create
              ?conflict_budget:t.conflict_budget
              ~num_vars:(7 * length) ();
          guards = Hashtbl.create 16;
          next_var = 7 * length;
        }
      in
      t.joint <- Some js;
      js

  (* Load a conjunct's guarded clauses once, returning its activation
     variable. *)
  let guard_of js constr =
    match Hashtbl.find_opt js.guards constr with
    | Some g -> g
    | None ->
      let cnf = Bitblast.encode constr in
      let shared = 7 * js.length in
      let aux_base = js.next_var in
      let aux_count = max 0 (cnf.Cnf.num_vars - shared) in
      let g = aux_base + aux_count in
      js.next_var <- g + 1;
      Cdcl.Incremental.ensure_vars js.sat js.next_var;
      let map_lit lit =
        let v = Cnf.var_of lit in
        let v = if v < shared then v else aux_base + (v - shared) in
        if Cnf.is_pos lit then Cnf.pos v else Cnf.neg v
      in
      let clauses =
        List.map (fun cl -> Cnf.neg g :: List.map map_lit cl) cnf.Cnf.clauses
      in
      Cdcl.Incremental.add_clauses js.sat clauses;
      Hashtbl.add js.guards constr g;
      g

  let solve_joint t cs =
    match Joint.common_length cs with
    | Error e -> Error e
    | Ok length ->
      let js = joint_state t length in
      let assumptions = List.map (fun c -> Cnf.pos (guard_of js c)) cs in
      let result, sat_stats = Cdcl.Incremental.solve ~assumptions js.sat in
      Ok
        (match result with
        | Cdcl.Sat model ->
          let s = Ascii7.decode (Bitvec.init (7 * length) (Bitvec.get model)) in
          if List.for_all (fun c -> Constr.verify c (Constr.Str s)) cs then
            (`Sat s, sat_stats)
          else (`Unknown, sat_stats) (* defensive: encodings are exact *)
        | Cdcl.Unsat ->
          (* a real proof: the active clauses are exactly the conjuncts'
             (complete) encodings over the shared bits *)
          (`Unsat, sat_stats)
        | Cdcl.Unknown -> (`Unknown, sat_stats))
end

let solve_pipeline ?conflict_budget pipeline =
  let first = solve ?conflict_budget pipeline.Pipeline.initial in
  let string_of o =
    match o.value with Some (Constr.Str s) -> s | Some (Constr.Pos _) | None -> ""
  in
  let _, outcomes =
    List.fold_left
      (fun (input, acc) stage ->
        let constr = Pipeline.constraint_for stage ~input in
        let o = solve ?conflict_budget constr in
        (string_of o, o :: acc))
      (string_of first, [ first ])
      pipeline.Pipeline.stages
  in
  List.rev outcomes
