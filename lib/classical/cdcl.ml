module Bitvec = Qsmt_util.Bitvec

type result = Sat of Bitvec.t | Unsat | Unknown

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  restarts : int;
  time_s : float;
}

let pp_stats ppf s =
  Format.fprintf ppf "decisions=%d conflicts=%d props=%d learned=%d restarts=%d time=%.3fs"
    s.decisions s.conflicts s.propagations s.learned s.restarts s.time_s

(* Literal encoding follows Cnf: 2v positive, 2v+1 negative. *)
let var_of = Cnf.var_of
let negate = Cnf.negate

(* Per-variable arrays are capacity-sized (>= nvars) so the incremental
   interface can grow the variable set without rebuilding the solver;
   every loop bounds itself by [nvars], never by array length. *)
type solver = {
  mutable nvars : int;
  mutable clauses : int array array; (* grows; learned clauses appended *)
  mutable nclauses : int;
  mutable watches : int list array; (* per literal: clause indices watching it *)
  mutable assign : int array; (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array; (* clause index or -1 *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable qhead : int;
  mutable lim : int array; (* trail size at each decision level; lim.(0) unused *)
  mutable decision_level : int;
  mutable activity : float array;
  mutable var_inc : float;
  mutable phase : bool array;
  mutable seen : bool array;
  mutable dead : bool; (* level-0 contradiction derived: permanently unsat *)
  mutable s_decisions : int;
  mutable s_conflicts : int;
  mutable s_propagations : int;
  mutable s_learned : int;
  mutable s_restarts : int;
}

let lit_value s lit =
  let a = s.assign.(var_of lit) in
  if a < 0 then -1 else if (a = 1) = Cnf.is_pos lit then 1 else 0

let make_solver n =
  {
    nvars = n;
    clauses = Array.make 16 [||];
    nclauses = 0;
    watches = Array.make (max 1 (2 * n)) [];
    assign = Array.make (max 1 n) (-1);
    level = Array.make (max 1 n) 0;
    reason = Array.make (max 1 n) (-1);
    trail = Array.make (max 1 n) 0;
    trail_size = 0;
    qhead = 0;
    lim = Array.make (max 1 (n + 1)) 0;
    decision_level = 0;
    activity = Array.make (max 1 n) 0.;
    var_inc = 1.;
    phase = Array.make (max 1 n) false;
    seen = Array.make (max 1 n) false;
    dead = false;
    s_decisions = 0;
    s_conflicts = 0;
    s_propagations = 0;
    s_learned = 0;
    s_restarts = 0;
  }

let grow_vars s n =
  if n > Array.length s.assign then begin
    let cap = max n (2 * Array.length s.assign) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    s.assign <- grow s.assign (-1);
    s.level <- grow s.level 0;
    s.reason <- grow s.reason (-1);
    s.trail <- grow s.trail 0;
    s.activity <- grow s.activity 0.;
    s.phase <- grow s.phase false;
    s.seen <- grow s.seen false;
    let w = Array.make (2 * cap) [] in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end;
  if n > s.nvars then s.nvars <- n

(* [lim] needs one slot per possible decision level; with assumptions
   there can be more levels than variables (already-true assumptions
   still open an empty level each). *)
let ensure_levels s levels =
  if Array.length s.lim < levels + 1 then begin
    let l = Array.make (max (levels + 1) (2 * Array.length s.lim)) 0 in
    Array.blit s.lim 0 l 0 (Array.length s.lim);
    s.lim <- l
  end

let enqueue s lit reason =
  let v = var_of lit in
  s.assign.(v) <- (if Cnf.is_pos lit then 1 else 0);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.phase.(v) <- Cnf.is_pos lit;
  s.trail.(s.trail_size) <- lit;
  s.trail_size <- s.trail_size + 1

let grow_clauses s =
  if s.nclauses = Array.length s.clauses then begin
    let bigger = Array.make (2 * max 1 (Array.length s.clauses)) [||] in
    Array.blit s.clauses 0 bigger 0 s.nclauses;
    s.clauses <- bigger
  end

(* Add a clause with >= 2 literals; the first two become the watches. *)
let attach_clause s lits =
  grow_clauses s;
  let idx = s.nclauses in
  s.clauses.(idx) <- lits;
  s.nclauses <- s.nclauses + 1;
  s.watches.(lits.(0)) <- idx :: s.watches.(lits.(0));
  s.watches.(lits.(1)) <- idx :: s.watches.(lits.(1));
  idx

(* Add an input clause at decision level 0, simplifying against the root
   assignment: satisfied clauses are dropped, root-false literals removed.
   The simplification is what makes late additions sound — a clause whose
   literals are all already false would otherwise be attached with stale
   watches and its conflict silently missed (watches only fire on new
   assignments). *)
let add_root_clause s clause =
  if not s.dead then begin
    List.iter
      (fun lit ->
        if var_of lit >= s.nvars then
          invalid_arg "Cdcl: clause literal out of variable range")
      clause;
    if not (List.exists (fun lit -> lit_value s lit = 1) clause) then begin
      match List.filter (fun lit -> lit_value s lit <> 0) clause with
      | [] -> s.dead <- true
      | [ lit ] -> enqueue s lit (-1)
      | lits -> ignore (attach_clause s (Array.of_list lits))
    end
  end

exception Conflict of int (* clause index *)

(* Propagate all queued assignments; raises Conflict. *)
let propagate s =
  while s.qhead < s.trail_size do
    let lit = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.s_propagations <- s.s_propagations + 1;
    let false_lit = negate lit in
    let watching = s.watches.(false_lit) in
    s.watches.(false_lit) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest ->
        let lits = s.clauses.(ci) in
        (* normalize: false_lit at position 1 *)
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        if lit_value s lits.(0) = 1 then begin
          (* clause already satisfied; keep watching *)
          s.watches.(false_lit) <- ci :: s.watches.(false_lit);
          process rest
        end
        else begin
          (* look for a new watch *)
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < Array.length lits do
            if lit_value s lits.(!k) <> 0 then begin
              let w = lits.(!k) in
              lits.(!k) <- lits.(1);
              lits.(1) <- w;
              s.watches.(w) <- ci :: s.watches.(w);
              found := true
            end;
            incr k
          done;
          if !found then process rest
          else begin
            (* unit or conflict *)
            s.watches.(false_lit) <- ci :: s.watches.(false_lit);
            if lit_value s lits.(0) = 0 then begin
              (* restore remaining watches before raising *)
              List.iter (fun cj -> s.watches.(false_lit) <- cj :: s.watches.(false_lit)) rest;
              raise (Conflict ci)
            end
            else begin
              enqueue s lits.(0) ci;
              process rest
            end
          end
        end
    in
    process watching
  done

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

(* First-UIP analysis. Returns (learnt clause with asserting literal
   first, backjump level). *)
let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let lits = s.clauses.(!confl) in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            bump s v;
            if s.level.(v) = s.decision_level then incr counter
            else learnt := q :: !learnt
          end
        end)
      lits;
    (* next literal to resolve on: most recent seen trail entry *)
    while not s.seen.(var_of s.trail.(!index)) do
      decr index
    done;
    p := s.trail.(!index);
    s.seen.(var_of !p) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else begin
      confl := s.reason.(var_of !p);
      decr index
    end
  done;
  let clause = negate !p :: !learnt in
  List.iter (fun q -> s.seen.(var_of q) <- false) !learnt;
  let backjump =
    List.fold_left (fun acc q -> max acc (s.level.(var_of q))) 0 !learnt
  in
  (clause, backjump)

let cancel_until s target =
  if s.decision_level > target then begin
    let keep = s.lim.(target + 1) in
    for i = s.trail_size - 1 downto keep do
      let v = var_of s.trail.(i) in
      s.assign.(v) <- -1;
      s.reason.(v) <- -1
    done;
    s.trail_size <- keep;
    s.qhead <- keep;
    s.decision_level <- target
  end

let decide s =
  let best = ref (-1) and best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  if !best < 0 then None
  else begin
    s.s_decisions <- s.s_decisions + 1;
    s.decision_level <- s.decision_level + 1;
    s.lim.(s.decision_level) <- s.trail_size;
    let v = !best in
    Some (if s.phase.(v) then Cnf.pos v else Cnf.neg v)
  end

let add_learnt s clause =
  s.s_learned <- s.s_learned + 1;
  match clause with
  | [] -> `Unsat
  | [ lit ] ->
    cancel_until s 0;
    if lit_value s lit = 0 then `Unsat
    else begin
      if lit_value s lit < 0 then enqueue s lit (-1);
      `Ok
    end
  | first :: _ ->
    (* put a literal of the backjump level second so watches are sane *)
    let arr = Array.of_list clause in
    (* after cancel_until the asserting literal (first) is unassigned;
       pick as second watch the literal with the highest level *)
    let best = ref 1 in
    for k = 2 to Array.length arr - 1 do
      if s.level.(var_of arr.(k)) > s.level.(var_of arr.(!best)) then best := k
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let ci = attach_clause s arr in
    enqueue s first ci;
    `Ok

let extract_model s =
  Bitvec.init s.nvars (fun v -> s.assign.(v) = 1)

(* MiniSat-style search loop shared by one-shot and incremental solving.
   Assumptions are established as their own decision levels, one per
   assumption in list order — opened even when the assumption already
   holds, so the level count always matches the assumption index. A
   conflict at level 0 is a permanent contradiction ([dead]); an
   assumption found false under the root assignment plus the earlier
   assumptions is unsat only under these assumptions. Restarts cancel to
   level 0 and the loop re-establishes the assumption levels on the way
   back down. *)
let search s ~assumptions ~conflict_budget =
  let num_assumptions = Array.length assumptions in
  ensure_levels s (s.nvars + num_assumptions);
  let budget_left = ref conflict_budget in
  let restart_limit = ref 100 in
  let conflicts_since_restart = ref 0 in
  let rec loop () =
    match propagate s with
    | () ->
      if s.decision_level < num_assumptions then begin
        let a = assumptions.(s.decision_level) in
        match lit_value s a with
        | 0 -> `Unsat_assumptions
        | v ->
          s.decision_level <- s.decision_level + 1;
          s.lim.(s.decision_level) <- s.trail_size;
          if v < 0 then enqueue s a (-1);
          loop ()
      end
      else begin
        match decide s with
        | None -> `Sat
        | Some lit ->
          enqueue s lit (-1);
          loop ()
      end
    | exception Conflict ci ->
      s.s_conflicts <- s.s_conflicts + 1;
      incr conflicts_since_restart;
      decr budget_left;
      if s.decision_level = 0 then begin
        s.dead <- true;
        `Unsat
      end
      else if !budget_left <= 0 then `Unknown
      else begin
        let clause, backjump = analyze s ci in
        cancel_until s backjump;
        match add_learnt s clause with
        | `Unsat ->
          s.dead <- true;
          `Unsat
        | `Ok ->
          decay s;
          if !conflicts_since_restart >= !restart_limit then begin
            s.s_restarts <- s.s_restarts + 1;
            conflicts_since_restart := 0;
            restart_limit := !restart_limit * 3 / 2;
            cancel_until s 0
          end;
          loop ()
      end
  in
  if s.dead then `Unsat else loop ()

let solve ?(conflict_budget = max_int) (cnf : Cnf.t) =
  let start = Unix.gettimeofday () in
  let s = make_solver cnf.Cnf.num_vars in
  List.iter (add_root_clause s) cnf.Cnf.clauses;
  let result =
    match search s ~assumptions:[||] ~conflict_budget with
    | `Sat -> Sat (extract_model s)
    | `Unsat | `Unsat_assumptions -> Unsat
    | `Unknown -> Unknown
  in
  ( result,
    {
      decisions = s.s_decisions;
      conflicts = s.s_conflicts;
      propagations = s.s_propagations;
      learned = s.s_learned;
      restarts = s.s_restarts;
      time_s = Unix.gettimeofday () -. start;
    } )

module Incremental = struct
  type t = { s : solver; conflict_budget : int }

  let create ?(conflict_budget = max_int) ~num_vars () =
    if num_vars < 0 then invalid_arg "Cdcl.Incremental.create: num_vars < 0";
    { s = make_solver num_vars; conflict_budget }

  let num_vars t = t.s.nvars
  let ensure_vars t n = if n > t.s.nvars then grow_vars t.s n

  let add_clauses t clauses =
    cancel_until t.s 0;
    List.iter (add_root_clause t.s) clauses

  let solve ?(assumptions = []) t =
    let start = Unix.gettimeofday () in
    let s = t.s in
    cancel_until s 0;
    List.iter
      (fun a ->
        if var_of a >= s.nvars then
          invalid_arg "Cdcl.Incremental.solve: assumption out of variable range")
      assumptions;
    let d0 = s.s_decisions
    and c0 = s.s_conflicts
    and p0 = s.s_propagations
    and l0 = s.s_learned
    and r0 = s.s_restarts in
    let result =
      match
        search s ~assumptions:(Array.of_list assumptions)
          ~conflict_budget:t.conflict_budget
      with
      | `Sat -> Sat (extract_model s)
      | `Unsat | `Unsat_assumptions -> Unsat
      | `Unknown -> Unknown
    in
    ( result,
      {
        decisions = s.s_decisions - d0;
        conflicts = s.s_conflicts - c0;
        propagations = s.s_propagations - p0;
        learned = s.s_learned - l0;
        restarts = s.s_restarts - r0;
        time_s = Unix.gettimeofday () -. start;
      } )
end
