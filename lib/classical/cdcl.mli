(** CDCL SAT solver.

    A conflict-driven clause-learning solver with the standard modern
    kernel: two-watched-literal propagation, first-UIP conflict analysis
    with clause learning and non-chronological backjumping, VSIDS-style
    activity ordering with phase saving, and geometric restarts. It is
    the SAT core of the classical baseline ("z3 stand-in") that the
    annealing solver is benchmarked against, and is complete: given
    enough budget it answers Sat or Unsat, never silently wrong.

    Sizes here are small (thousands of variables at most), so the
    implementation favors clarity over heap-ordered decision queues —
    decisions scan for the max-activity unassigned variable. *)

type result =
  | Sat of Qsmt_util.Bitvec.t  (** satisfying total assignment *)
  | Unsat
  | Unknown  (** conflict budget exhausted *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  learned : int;
  restarts : int;
  time_s : float;
}

val solve : ?conflict_budget:int -> Cnf.t -> result * stats
(** [conflict_budget] (default unlimited) bounds the number of conflicts
    before answering [Unknown]. Deterministic: no randomized decisions. *)

val pp_stats : Format.formatter -> stats -> unit

(** Incremental interface (MiniSat-style [solve] with assumptions).

    One solver instance accumulates clauses across calls; everything
    learned — conflict clauses, variable activities, saved phases —
    survives to the next [solve], which is what makes re-solving a
    lightly modified query cheap. Retraction is expressed with
    {e assumption literals}: clauses are added permanently, so encode
    each retractable group with a fresh activation variable [g] (clauses
    of the form [¬g ∨ ...]) and pass [g] positively in [assumptions]
    when the group is active. *)
module Incremental : sig
  type t

  val create : ?conflict_budget:int -> num_vars:int -> unit -> t
  (** Fresh solver over [num_vars] variables and no clauses.
      [conflict_budget] applies to each {!solve} call separately.
      @raise Invalid_argument if [num_vars] is negative. *)

  val num_vars : t -> int

  val ensure_vars : t -> int -> unit
  (** Grow the variable set to at least the given size (no-op if already
      large enough). New variables start unassigned and unconstrained. *)

  val add_clauses : t -> Cnf.clause list -> unit
  (** Add clauses permanently, simplifying against the root-level
      assignment. An empty (or root-falsified) clause marks the solver
      permanently unsat.
      @raise Invalid_argument if a literal's variable is out of range. *)

  val solve : ?assumptions:Cnf.literal list -> t -> result * stats
  (** Solve the accumulated clauses under the given assumption literals.
      Each assumption opens its own decision level (in list order, even
      when already implied). [Unsat] with assumptions means
      unsatisfiable {e under these assumptions} unless a root-level
      contradiction was derived, in which case every later call answers
      [Unsat] immediately. [stats] are per-call deltas. *)
end
