module Ising = Qsmt_qubo.Ising

type kind = Geometric | Linear
type t = { kind : kind; betas : float array }

let make ?(kind = Geometric) ~beta_hot ~beta_cold ~sweeps () =
  if sweeps < 1 then invalid_arg "Schedule.make: sweeps < 1";
  if beta_hot <= 0. || beta_cold <= 0. then invalid_arg "Schedule.make: beta must be positive";
  if beta_hot > beta_cold then invalid_arg "Schedule.make: beta_hot > beta_cold";
  let betas =
    if sweeps = 1 then [| beta_cold |]
    else begin
      let steps = float_of_int (sweeps - 1) in
      match kind with
      | Geometric ->
        let ratio = (beta_cold /. beta_hot) ** (1. /. steps) in
        Array.init sweeps (fun k -> beta_hot *. (ratio ** float_of_int k))
      | Linear ->
        let step = (beta_cold -. beta_hot) /. steps in
        Array.init sweeps (fun k -> beta_hot +. (step *. float_of_int k))
    end
  in
  { kind; betas }

let default_beta_range ising =
  let n = Ising.num_spins ising in
  if n = 0 then (0.1, 10.)
  else begin
    (* Largest possible |ΔE| for one spin flip: 2(|h_i| + Σ_j |J_ij|),
       maximized over i. Smallest: twice the smallest nonzero coefficient.
       Folds straight over the CSR row so deriving a schedule allocates
       nothing (no per-spin neighbor lists). *)
    let row_ptr, _, value = Ising.csr ising in
    let max_delta = ref 0. in
    for i = 0 to n - 1 do
      let reach = ref (Float.abs (Ising.field ising i)) in
      for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        reach := !reach +. Float.abs value.(k)
      done;
      max_delta := Float.max !max_delta (2. *. !reach)
    done;
    if !max_delta = 0. then
      (* Every field and coupler is zero: flips never change the energy,
         so no schedule can be derived from the problem — keep the
         historical fallback. A coupler-only model (all fields zero but
         couplers present) does NOT land here: its row sums give a
         perfectly usable range. *)
      (0.1, 10.)
    else begin
      let min_delta = 2. *. Ising.min_abs_nonzero ising in
      let beta_hot = Float.log 2. /. !max_delta in
      let beta_cold = Float.log 100. /. min_delta in
      if beta_hot < beta_cold then (beta_hot, beta_cold) else (beta_cold /. 2., beta_cold)
    end
  end

let auto ?kind ~sweeps ising =
  let beta_hot, beta_cold = default_beta_range ising in
  make ?kind ~beta_hot ~beta_cold ~sweeps ()

let sweeps t = Array.length t.betas
let beta t k = t.betas.(k)
let betas t = Array.copy t.betas
let kind t = t.kind

let pp ppf t =
  let name = match t.kind with Geometric -> "geometric" | Linear -> "linear" in
  Format.fprintf ppf "%s schedule: %d sweeps, beta %.4g -> %.4g" name (sweeps t) t.betas.(0)
    t.betas.(Array.length t.betas - 1)
