module Bitvec = Qsmt_util.Bitvec
module Parallel = Qsmt_util.Parallel
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo

type member =
  | M_sa of Sa.params
  | M_sa_packed of Sa.params
  | M_sqa of Sqa.params
  | M_tabu of Tabu.params
  | M_pt of Pt.params
  | M_greedy of Greedy.params
  | M_exact of int option
  | M_hardware of Hardware.params

type params = {
  members : member list;
  jobs : int;
  budget : float option;
}

type member_report = {
  member_name : string;
  samples : Sampleset.t;
  elapsed : float;
  cancelled : bool;
  failed : string option;
  hardware : Hardware.stats option;
}

type result = {
  merged : Sampleset.t;
  winner : (string * Bitvec.t) option;
  reports : member_report list;
  wall_time : float;
}

let member_name = function
  | M_sa _ -> "sa"
  | M_sa_packed _ -> "sa_packed"
  | M_sqa _ -> "sqa"
  | M_tabu _ -> "tabu"
  | M_pt _ -> "pt"
  | M_greedy _ -> "greedy"
  | M_exact _ -> "exact"
  | M_hardware _ -> "hardware"

(* Portfolio members run one per job slot, so their internal read
   parallelism stays off ([domains = 1]) — the concurrency budget is
   spent across members, not within them. *)
let member_with_seed seed = function
  | M_sa p -> M_sa { p with Sa.seed; domains = 1 }
  | M_sa_packed p -> M_sa_packed { p with Sa.seed; domains = 1 }
  | M_sqa p -> M_sqa { p with Sqa.seed; domains = 1 }
  | M_tabu p -> M_tabu { p with Tabu.seed; domains = 1 }
  | M_pt p -> M_pt { p with Pt.seed; domains = 1 }
  | M_greedy p -> M_greedy { p with Greedy.seed; domains = 1 }
  | M_exact _ as m -> m
  | M_hardware p ->
    M_hardware { p with Hardware.anneal = { p.Hardware.anneal with Sa.seed; domains = 1 } }

let default_members ~seed =
  List.map (member_with_seed seed)
    [
      M_sa Sa.default;
      M_sqa Sqa.default;
      M_pt Pt.default;
      M_tabu Tabu.default;
      M_greedy Greedy.default;
    ]

let default = { members = default_members ~seed:0; jobs = 0; budget = None }

let reseed params seed = { params with members = List.map (member_with_seed seed) params.members }

(* Returns the member's samples plus the hardware diagnostics when the
   member is the QPU-workflow emulation (its [on_read] already sees
   logical bits, so the shared verifier applies unchanged). *)
let run_member ?init ~stop ~on_read ~telemetry member q =
  match member with
  | M_sa params -> (Sa.sample ~params ?init ~stop ~on_read ~telemetry q, None)
  | M_sa_packed params -> (Sa.run_packed ~params ?init ~stop ~on_read ~telemetry q, None)
  | M_sqa params -> (Sqa.sample ~params ?init ~stop ~on_read ~telemetry q, None)
  | M_tabu params -> (Tabu.sample ~params ?init ~stop ~on_read ~telemetry q, None)
  | M_pt params -> (Pt.sample ~params ?init ~stop ~on_read ~telemetry q, None)
  | M_greedy params -> (Greedy.sample ~params ?init ~stop ~on_read ~telemetry q, None)
  | M_exact keep -> (Exact.solve ?keep ~stop q, None)
  | M_hardware params ->
    (* The hardware path samples over physical qubits behind a minor
       embedding; a logical warm start has no direct physical image, so
       it is ignored rather than guessed. *)
    let r = Hardware.sample ~params ~stop ~on_read ~telemetry q in
    (r.Hardware.samples, Some r.Hardware.stats)

let run ?(params = default) ?init ?verify ?(telemetry = Telemetry.null) q =
  if params.members = [] then invalid_arg "Portfolio.run: no members";
  (match params.budget with
  | Some b when b <= 0. -> invalid_arg "Portfolio.run: budget <= 0"
  | _ -> ());
  let members = Array.of_list params.members in
  let n = Array.length members in
  let jobs =
    if params.jobs > 0 then min params.jobs n else min (Parallel.recommended_domains ()) n
  in
  let t0 = Unix.gettimeofday () in
  (* Set once a verified sample is found (or, defensively, never): every
     member's stop closure reads it, so one member's win cancels the rest
     at their next poll point. *)
  let stop_all = Atomic.make false in
  let winner = Atomic.make None in
  let tracked = Telemetry.enabled telemetry in
  let try_win name bits =
    (* Copy before publishing: heuristic reads hand us their live buffer. *)
    if Atomic.compare_and_set winner None (Some (name, Bitvec.copy bits)) then begin
      Atomic.set stop_all true;
      if tracked then
        Telemetry.emit telemetry "portfolio.winner"
          [
            ("member", Telemetry.Str name);
            ("elapsed_s", Telemetry.Float (Unix.gettimeofday () -. t0));
          ]
    end
  in
  let reports = Array.make n None in
  let run_one k =
    let m = members.(k) in
    let name = member_name m in
    if tracked then
      Telemetry.emit telemetry "portfolio.member.start"
        [ ("member", Telemetry.Str name); ("index", Telemetry.Int k) ];
    let started = Unix.gettimeofday () in
    let deadline =
      match params.budget with Some b -> Some (started +. b) | None -> None
    in
    let stop () =
      Atomic.get stop_all
      || match deadline with Some d -> Unix.gettimeofday () > d | None -> false
    in
    let on_read bits =
      match verify with
      | Some ok -> if ok bits then try_win name bits
      | None -> ()
    in
    (* The whole member — its sampler run AND the verify scan below (the
       predicate is caller code and may raise too) — reports failure as
       data, never as an exception: one crashed member must not abort the
       race, the survivors keep running and the caller reads the typed
       [failed] field. *)
    let samples, hardware, failed =
      if Atomic.get stop_all then (Sampleset.empty, None, None)
      else
        match run_member ?init ~stop ~on_read ~telemetry m q with
        | samples, hardware ->
          (* Heuristic members verify through [on_read]; [Exact] only
             yields a sample set at the end, so scan it here. Re-scanning
             a heuristic's set is a harmless no-op once a winner exists. *)
          (match verify with
          | Some ok ->
            (match
               List.iter
                 (fun e ->
                   if Atomic.get winner = None && ok e.Sampleset.bits then
                     try_win name e.Sampleset.bits)
                 (Sampleset.entries samples)
             with
            | () -> (samples, hardware, None)
            | exception e -> (samples, hardware, Some (Printexc.to_string e)))
          | None -> (samples, hardware, None))
        | exception e -> (Sampleset.empty, None, Some (Printexc.to_string e))
    in
    if failed <> None then Telemetry.count telemetry "portfolio.member_failed" 1;
    let finished = Unix.gettimeofday () in
    let cancelled =
      (Atomic.get stop_all || match deadline with Some d -> finished > d | None -> false)
      && failed = None
    in
    if tracked then
      Telemetry.emit telemetry "portfolio.member.done"
        [
          ("member", Telemetry.Str name);
          ("index", Telemetry.Int k);
          ("elapsed_s", Telemetry.Float (finished -. started));
          ("reads", Telemetry.Int (Sampleset.total_reads samples));
          ("cancelled", Telemetry.Bool cancelled);
          ("failed", Telemetry.Bool (failed <> None));
        ];
    reports.(k) <-
      Some
        { member_name = name; samples; elapsed = finished -. started; cancelled; failed; hardware }
  in
  (* Cap concurrency at [jobs] by folding members into that many
     sequential chains; the pool schedules the chains over idle workers
     plus this domain. *)
  let chains =
    List.map
      (fun (lo, size) () ->
        for k = lo to lo + size - 1 do
          run_one k
        done)
      (Parallel.partition n jobs)
  in
  Parallel.Pool.run_list ~telemetry (Parallel.Pool.global ()) chains;
  (* [run_one] is total, so every slot should be filled; if a worker job
     nevertheless died before reaching member [k] (a pool-level failure,
     not a member exception), the member surfaces as a typed per-member
     failure rather than aborting the whole race. *)
  let reports =
    Array.to_list reports
    |> List.mapi (fun k -> function
         | Some r -> r
         | None ->
           Telemetry.count telemetry "portfolio.member_failed" 1;
           {
             member_name = member_name members.(k);
             samples = Sampleset.empty;
             elapsed = 0.;
             cancelled = false;
             failed = Some "member produced no result (worker job aborted)";
             hardware = None;
           })
  in
  let merged =
    List.fold_left (fun acc r -> Sampleset.merge acc r.samples) Sampleset.empty reports
  in
  {
    merged;
    winner = Atomic.get winner;
    reports;
    wall_time = Unix.gettimeofday () -. t0;
  }
