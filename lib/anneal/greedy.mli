(** Steepest-descent sampler / post-processor.

    From each of [restarts] random starts, repeatedly flips the variable
    with the most negative energy delta until the assignment is a local
    minimum. Fast and deterministic given the seed; the baseline that any
    annealer has to beat, and the post-processing step used by the
    hardware model after chain-break repair. *)

type params = {
  restarts : int;  (** random restarts (default 32) *)
  seed : int;  (** master PRNG seed (default 0) *)
  domains : int;  (** parallel domains (default 1) *)
}

val default : params

val sample :
  ?params:params ->
  ?init:Qsmt_util.Bitvec.t ->
  ?stop:(unit -> bool) ->
  ?on_read:(Qsmt_util.Bitvec.t -> unit) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Qsmt_qubo.Qubo.t ->
  Sampleset.t
(** One entry per restart: the local minimum reached by steepest descent
    from a random start. [init] replaces restart 0's random start with
    the given assignment (see {!Sa.sample}). [stop] and [on_read] follow the cooperative
    cancellation contract documented at {!Sa.sample} (descents are not
    interrupted mid-run; [stop] skips remaining restarts). [telemetry]
    records [greedy.reads] and a [greedy.read_energy] histogram. *)

val descend : Qsmt_qubo.Qubo.t -> Qsmt_util.Bitvec.t -> Qsmt_util.Bitvec.t
(** [descend q x] runs steepest descent from [x] (not mutated) and
    returns the reached local minimum. *)
