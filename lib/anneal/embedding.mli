(** Minor embedding of problem graphs into hardware graphs.

    A hardware annealer can only realize couplers along its wiring graph;
    a logical problem variable is therefore represented by a *chain* of
    physical qubits tied together ferromagnetically. An embedding maps
    each problem vertex to a chain such that (1) chains are vertex
    disjoint, (2) each chain is connected in hardware, and (3) every
    problem edge has at least one hardware edge between the two chains.

    {!find} is a greedy BFS heuristic in the spirit of minorminer's
    initialization: place variables in decreasing-degree order; for each,
    pick the free qubit minimizing total hop distance to the chains of
    its already-placed neighbors, then claim the connecting paths into
    the new chain. Randomized retries with shuffled tie-breaking recover
    from unlucky placements. *)

type t
(** A validated embedding. *)

val find :
  ?seed:int ->
  ?tries:int ->
  problem:Qsmt_qubo.Qgraph.t ->
  hardware:Qsmt_qubo.Qgraph.t ->
  unit ->
  t option
(** [find ~problem ~hardware ()] searches for an embedding; [tries]
    (default 16) randomized attempts before giving up (each attempt draws
    its stream via {!Qsmt_util.Prng.stream}, so tries are decorrelated
    even for adjacent seeds). Returns [None] if every attempt fails. An
    embedding of the empty problem graph is the empty embedding. *)

val find_detailed :
  ?seed:int ->
  ?tries:int ->
  problem:Qsmt_qubo.Qgraph.t ->
  hardware:Qsmt_qubo.Qgraph.t ->
  unit ->
  (t * int) option
(** Like {!find} but also reports how many randomized attempts were spent
    (1-based; [0] for the empty problem, which needs no attempt). Feeds
    the hardware sampler's [embed_tries_used] statistic. *)

val of_chains : int list array -> t
(** Wrap explicit chains (vertex [i] ↦ [chains.(i)], deduplicated and
    sorted). Not validated — call {!validate}. *)

val identity : int -> t
(** [identity n] maps vertex [i] to chain [\[i\]] — valid into any
    hardware graph whose first [n] vertices induce a supergraph of the
    problem (e.g. a complete topology). Not validated against hardware;
    use {!validate} if in doubt. *)

val chain : t -> int -> int list
(** [chain t v] is the physical qubits representing problem vertex [v],
    ascending. *)

val num_problem_vars : t -> int
val chains : t -> int list array
val max_chain_length : t -> int
val total_qubits_used : t -> int

val validate : problem:Qsmt_qubo.Qgraph.t -> hardware:Qsmt_qubo.Qgraph.t -> t -> (unit, string) result
(** Checks the three embedding conditions; [Error] explains the first
    violation found. *)

val trim : problem:Qsmt_qubo.Qgraph.t -> hardware:Qsmt_qubo.Qgraph.t -> t -> t
(** Post-optimization: repeatedly drops chain qubits that are redundant —
    removal keeps the chain connected and every incident problem edge
    still realized — until no chain can shrink. Shorter chains mean
    fewer physical qubits, weaker chain penalties, and fewer breaks; the
    greedy router's path-per-neighbor construction routinely leaves such
    slack. The result is validated-by-construction if the input was
    valid. *)

val pp : Format.formatter -> t -> unit
