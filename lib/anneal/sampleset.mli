(** Collections of solver samples.

    Mirrors dimod's [SampleSet]: every sampler returns one of these —
    assignments with their energies and occurrence counts, ordered by
    ascending energy, identical assignments aggregated. *)

type entry = {
  bits : Qsmt_util.Bitvec.t; (** variable assignment *)
  energy : float; (** QUBO energy including offset *)
  occurrences : int; (** how many reads produced this assignment *)
}

type t

val of_bits : Qsmt_qubo.Qubo.t -> Qsmt_util.Bitvec.t list -> t
(** [of_bits q samples] computes each sample's energy under [q],
    aggregates duplicates, sorts ascending by energy. *)

val of_entries : entry list -> t
(** Aggregates duplicate assignments, sorts ascending by energy. When
    duplicates disagree on energy (possible when noisy hardware-model
    reads merge with exact ones) the minimum is kept — order-independent,
    unlike the first-seen energy an earlier revision silently kept. *)

val of_tracked : Qsmt_qubo.Qubo.t -> (Qsmt_util.Bitvec.t * float) list -> t
(** [of_tracked q samples] builds a set from [(bits, energy)] pairs whose
    energies the sampler already knows (incrementally tracked during the
    sweep loop), skipping {!of_bits}'s per-read [Qubo.energy] recompute.
    Energies must be [q]-energies (offset included); samplers guarantee
    agreement with full recomputation to ~1e-9 (tested).
    @raise Invalid_argument if any assignment has the wrong length. *)

val of_multispin : Qsmt_qubo.Qubo.t -> Qsmt_qubo.Multispin.t -> t
(** [of_multispin q ms] decodes every lane of a packed multi-replica
    state into one read each, using the lanes' tracked energies (which
    are [q]-energies, offset included, when [ms] was built over
    [Ising.of_qubo q]) — {!of_tracked} over a gathered {!Qsmt_qubo.Multispin.t}.
    @raise Invalid_argument if the lane length does not match [q]. *)

val empty : t
val is_empty : t -> bool

val size : t -> int
(** Number of distinct assignments. *)

val total_reads : t -> int
(** Sum of occurrence counts. *)

val best : t -> entry
(** Lowest-energy entry. @raise Invalid_argument if empty. *)

val best_opt : t -> entry option
val entries : t -> entry list
(** Ascending energy. *)

val lowest_energy : t -> float
(** @raise Invalid_argument if empty. *)

val energies : t -> float array
(** One energy per read (entries expanded by occurrence count),
    ascending. *)

val filter : (entry -> bool) -> t -> t
val merge : t -> t -> t
(** Re-aggregates entries from both sets; duplicate assignments sum their
    occurrences and keep the minimum energy (see {!of_entries}). *)

val truncate : int -> t -> t
(** Keeps the [k] lowest-energy entries. *)

val ground_probability : t -> tol:float -> float
(** Fraction of reads whose energy is within [tol] of the set's lowest
    energy — the per-read success estimate the annealing literature
    reports. [0.] if empty. *)

val pp : Format.formatter -> t -> unit
(** Tabular rendering, best first, capped at 10 rows. *)
