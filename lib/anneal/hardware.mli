(** Hardware-model sampler: the full QPU workflow in simulation.

    Reproduces the pipeline a real annealer submission goes through —
    minor-embed the logical problem into a fixed topology (then trim the
    chains, {!Embedding.trim}), rewrite it onto physical qubits with
    chain penalties, optionally perturb the physical coefficients with
    Gaussian control noise (integrated control errors, a dominant
    imperfection of analog annealers), anneal the physical problem, then
    majority-vote broken chains back to logical assignments.

    Two batch-workload mechanisms sit on top of the seed pipeline:

    - an {e embedding cache} keyed by the problem's adjacency structure
      and the topology name. Table 1 constraints of the same shape
      compile to structurally identical QUBOs, so repeated solves skip
      the (dominant) routing cost; {!stats.embedding_cache_hit} reports
      reuse. The cache is process-global and thread-safe.
    - an {e adaptive chain-strength loop}: after each read batch the mean
      chain-break fraction is measured; if it exceeds
      [params.max_break_fraction], the strength is escalated
      geometrically ([strength_growth], at most [max_escalations] times)
      and the batch re-annealed. A batch still broken after the last
      escalation is returned with a typed {!degradation} record in
      {!stats.degraded} instead of being silently handed back as if the
      majority-vote repairs were trustworthy samples.

    This is the substrate for the paper's "testing these formulations on
    a real quantum computer" future work: the same QUBO formulations run
    unchanged, and the experiment harness measures what embedding and
    noise cost them. *)

type params = {
  topology : Topology.t;
  chain_strength : float option;
      (** starting strength; [None] (default) uses
          {!Chain.default_strength} of the logical problem. The adaptive
          loop may escalate from here. *)
  noise_sigma : float;
      (** std-dev of Gaussian noise added to every physical coefficient,
          relative to the largest |coefficient| (default 0. = ideal
          hardware) *)
  embed_tries : int;  (** randomized embedding attempts (default 16) *)
  anneal : Sa.params;  (** annealer run on the physical problem *)
  max_break_fraction : float;
      (** mean chain-break fraction above which a batch is rejected and
          the strength escalated (default 0.25; must be in (0, 1]) *)
  strength_growth : float;
      (** geometric escalation factor (default 2.; must be > 1 when
          [max_escalations > 0]) *)
  max_escalations : int;
      (** bound on strength escalations (default 3; 0 pins the strength
          and turns high-break batches directly into degradations) *)
  use_cache : bool;  (** consult/populate the embedding cache (default true) *)
}

val default_params : Topology.t -> params

type degradation = {
  break_fraction : float;  (** mean chain-break fraction of the final batch *)
  threshold : float;  (** the [max_break_fraction] it exceeded *)
  escalations : int;  (** escalations spent before giving up *)
}
(** The typed "this answer is untrustworthy" signal: every escalation was
    spent and chains still break more often than the configured
    threshold, so the returned samples are majority-vote guesses rather
    than faithful reads of the logical problem. *)

type stats = {
  topology : string;
  hardware_qubits : int;  (** qubits of the whole topology graph *)
  qubits_used : int;
      (** {!Embedding.total_qubits_used} — what the embedding actually
          occupies (the seed revision misreported the whole graph size
          here) *)
  max_chain_length : int;
  mean_chain_break_fraction : float;  (** of the final batch, averaged over reads *)
  embed_tries_used : int;  (** randomized attempts the embedding took (0 = cached/empty) *)
  embedding_cache_hit : bool;
  chain_strength : float;  (** final (possibly escalated) strength *)
  escalations : int;
  degraded : degradation option;  (** [Some] iff the final batch is untrustworthy *)
}

type result = {
  samples : Sampleset.t;
      (** logical samples from every batch (escalation retries included),
          energies under the logical QUBO *)
  embedding : Embedding.t;
  stats : stats;
}

exception Embedding_failed of string
(** Raised when no embedding is found within [embed_tries] attempts. *)

val sample :
  ?params:params ->
  ?stop:(unit -> bool) ->
  ?on_read:(Qsmt_util.Bitvec.t -> unit) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Qsmt_qubo.Qubo.t ->
  result
(** [stop] and [on_read] have {!Sa.sample} semantics — [on_read] observes
    each completed read already projected to {e logical} bits (majority
    vote, seeded tie-breaks), which is what the portfolio's verifier
    needs; [stop] also aborts pending escalation retries.

    [telemetry] records the QPU workflow as events: [hardware.embed]
    (topology, cache_hit, tries, qubits_used, max_chain) once per call,
    [hardware.attempt] (attempt, strength, break_fraction, reads) per
    read batch, [hardware.escalate] + a [hardware.escalations] counter
    each time the chain strength is raised, and [hardware.degraded] when
    the final batch still exceeds the break threshold. The inner annealer
    shares the handle, so its [sa.sweep] stream is interleaved (its
    energies are of the {e physical} embedded problem).
    @raise Embedding_failed if the problem does not fit the topology.
    @raise Invalid_argument on nonsensical parameters. *)

type topology_kind = [ `Chimera | `King | `Complete ]

val auto_topology :
  ?seed:int -> ?tries:int -> kind:topology_kind -> Qsmt_qubo.Qubo.t -> Topology.t
(** Smallest square topology of the given family that the problem embeds
    into: [`Complete] is exact (one qubit per variable); [`Chimera] /
    [`King] grow the grid until a probe embedding succeeds ([tries]
    attempts per size, default 8). Probes go through the embedding cache,
    so the routing work is reused by the {!sample} call that follows.
    @raise Embedding_failed if nothing up to 4096 qubits fits. *)

val clear_embedding_cache : unit -> unit
(** Drops every cached embedding (tests; long-lived processes whose
    workload shape changed). *)

val embedding_cache_size : unit -> int
(** Number of distinct (topology, problem-structure) keys cached. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering, with a [DEGRADED] suffix when applicable. *)
