(** Tabu-search sampler.

    A deterministic-given-seed local search baseline in the spirit of
    D-Wave's [TabuSampler]: best-improvement moves with a recency-based
    tabu list, aspiration (a tabu move is allowed if it beats the best
    energy seen), and random restarts. Often stronger than plain greedy
    descent on frustrated landscapes, cheaper than a long anneal. *)

type params = {
  restarts : int;  (** independent searches (default 8) *)
  iterations : int;  (** moves per search (default 500) *)
  tenure : int option;
      (** sweeps a flipped variable stays tabu; [None] (default) picks
          [min (n/4 + 1) 20] for an [n]-variable problem *)
  seed : int;
  domains : int;  (** parallel domains (default 1) *)
}

val default : params

val sample :
  ?params:params ->
  ?init:Qsmt_util.Bitvec.t ->
  ?stop:(unit -> bool) ->
  ?on_read:(Qsmt_util.Bitvec.t -> unit) ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  Qsmt_qubo.Qubo.t ->
  Sampleset.t
(** Returns the best assignment found by each restart. [init] warm-starts
    restart 0 from the given assignment (see {!Sa.sample}). [stop] and
    [on_read] follow the cooperative cancellation contract documented at
    {!Sa.sample} ([stop] is polled every 64 iterations inside a
    restart). [telemetry] streams strided [tabu.iter] events (restart,
    iteration, current and best energy) plus [tabu.aspirations] /
    [tabu.kicks] counters (tenure overridden by aspiration; random kick
    when every move is tabu) and [tabu.reads] / [tabu.read_energy]. *)
