module Bitvec = Qsmt_util.Bitvec
module Prng = Qsmt_util.Prng
module Telemetry = Qsmt_util.Telemetry
module Qubo = Qsmt_qubo.Qubo
module Qgraph = Qsmt_qubo.Qgraph

type params = {
  topology : Topology.t;
  chain_strength : float option;
  noise_sigma : float;
  embed_tries : int;
  anneal : Sa.params;
  max_break_fraction : float;
  strength_growth : float;
  max_escalations : int;
  use_cache : bool;
}

let default_params topology =
  {
    topology;
    chain_strength = None;
    noise_sigma = 0.;
    embed_tries = 16;
    anneal = Sa.default;
    max_break_fraction = 0.25;
    strength_growth = 2.;
    max_escalations = 3;
    use_cache = true;
  }

type degradation = { break_fraction : float; threshold : float; escalations : int }

type stats = {
  topology : string;
  hardware_qubits : int;
  qubits_used : int;
  max_chain_length : int;
  mean_chain_break_fraction : float;
  embed_tries_used : int;
  embedding_cache_hit : bool;
  chain_strength : float;
  escalations : int;
  degraded : degradation option;
}

type result = { samples : Sampleset.t; embedding : Embedding.t; stats : stats }

exception Embedding_failed of string

(* ------------------------------------------------------------------ *)
(* Embedding cache.

   Table 1 constraints of the same shape compile to QUBOs with identical
   adjacency structure (coefficients differ, couplers don't), and minor
   embedding only looks at structure — so batch workloads re-solving the
   same shape should pay for routing once. The key is the topology name
   (unique per generated shape) plus the problem's edge list; the mutex
   makes the cache safe under the portfolio's parallel domains. *)

let cache : (string, Embedding.t * int) Hashtbl.t = Hashtbl.create 32
let cache_mutex = Mutex.create ()

let with_cache_lock f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let clear_embedding_cache () = with_cache_lock (fun () -> Hashtbl.reset cache)
let embedding_cache_size () = with_cache_lock (fun () -> Hashtbl.length cache)

let structure_key topology problem =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Topology.name topology);
  Buffer.add_char buf '|';
  Buffer.add_string buf (string_of_int (Qgraph.num_vertices problem));
  Qgraph.iter_edges problem (fun i j ->
      Buffer.add_char buf ';';
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int j));
  Buffer.contents buf

(* (embedding, tries used, cache hit) — [None] when no embedding exists
   within [tries] attempts. Cached embeddings are already trimmed. *)
let cached_embedding ~use_cache ~seed ~tries ~topology ~problem =
  let hardware = Topology.graph topology in
  let key = if use_cache then Some (structure_key topology problem) else None in
  let hit =
    match key with
    | Some k -> with_cache_lock (fun () -> Hashtbl.find_opt cache k)
    | None -> None
  in
  match hit with
  | Some (e, tries_used) -> Some (e, tries_used, true)
  | None -> begin
    match Embedding.find_detailed ~seed ~tries ~problem ~hardware () with
    | None -> None
    | Some (e, tries_used) ->
      let e = Embedding.trim ~problem ~hardware e in
      (match key with
      | Some k -> with_cache_lock (fun () -> Hashtbl.replace cache k (e, tries_used))
      | None -> ());
      Some (e, tries_used, false)
  end

(* ------------------------------------------------------------------ *)
(* Topology auto-sizing. *)

type topology_kind = [ `Chimera | `King | `Complete ]

let auto_topology ?(seed = 0) ?(tries = 8) ~kind q =
  let n = Qubo.num_vars q in
  match kind with
  | `Complete -> Topology.complete (max n 1)
  | (`Chimera | `King) as kind ->
    let problem = Qgraph.of_qubo q in
    let make size =
      match kind with
      | `Chimera -> Topology.chimera ~m:size ()
      | `King -> Topology.king ~rows:size ~cols:size
    in
    let rec grow size =
      let topology = make size in
      let qubits = Topology.num_qubits topology in
      if qubits > 4096 then
        raise
          (Embedding_failed
             (Printf.sprintf
                "auto_topology: no %s up to 4096 qubits embeds the %d-variable problem"
                (match kind with `Chimera -> "chimera" | `King -> "king")
                n))
      else if qubits < n then grow (size + 1)
      else begin
        (* Probe through the cache so the routing work a successful probe
           does is reused verbatim by the sample call that follows. *)
        match cached_embedding ~use_cache:true ~seed ~tries ~topology ~problem with
        | Some _ -> topology
        | None -> grow (size + 1)
      end
    in
    grow 1

(* ------------------------------------------------------------------ *)
(* Gaussian control noise. *)

(* Box-Muller; one normal deviate per call is plenty here. *)
let gaussian rng =
  let u1 = Float.max 1e-12 (Prng.float rng) in
  let u2 = Prng.float rng in
  sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let add_noise ~rng ~sigma q =
  if sigma <= 0. then q
  else begin
    let scale = Qubo.max_abs_coefficient q *. sigma in
    let b = Qubo.builder () in
    Qubo.iter_linear q (fun i v -> Qubo.add b i i (v +. (scale *. gaussian rng)));
    Qubo.iter_quadratic q (fun i j v -> Qubo.add b i j (v +. (scale *. gaussian rng)));
    Qubo.add_offset b (Qubo.offset q);
    Qubo.freeze ~num_vars:(Qubo.num_vars q) b
  end

(* ------------------------------------------------------------------ *)
(* Sampling with adaptive chain strength. *)

let validate_params p =
  if p.noise_sigma < 0. then invalid_arg "Hardware.sample: negative noise_sigma";
  if p.max_break_fraction <= 0. || p.max_break_fraction > 1. then
    invalid_arg "Hardware.sample: max_break_fraction must be in (0, 1]";
  if p.max_escalations < 0 then invalid_arg "Hardware.sample: negative max_escalations";
  if p.max_escalations > 0 && p.strength_growth <= 1. then
    invalid_arg "Hardware.sample: strength_growth must be > 1 when escalation is enabled"

let sample ?params ?stop ?on_read ?(telemetry = Telemetry.null) q =
  let params =
    match params with
    | Some p -> p
    | None -> invalid_arg "Hardware.sample: params required (a topology must be chosen)"
  in
  validate_params params;
  let tracked = Telemetry.enabled telemetry in
  let hardware = Topology.graph params.topology in
  let problem = Qgraph.of_qubo q in
  let seed = params.anneal.Sa.seed in
  let embedding, embed_tries_used, embedding_cache_hit =
    match
      cached_embedding ~use_cache:params.use_cache ~seed ~tries:params.embed_tries
        ~topology:params.topology ~problem
    with
    | Some r -> r
    | None ->
      raise
        (Embedding_failed
           (Printf.sprintf "no embedding of %d-variable problem into %s after %d tries"
              (Qubo.num_vars q) (Topology.name params.topology) params.embed_tries))
  in
  if tracked then
    Telemetry.emit telemetry "hardware.embed"
      [
        ("topology", Telemetry.Str (Topology.name params.topology));
        ("cache_hit", Telemetry.Bool embedding_cache_hit);
        ("tries", Telemetry.Int embed_tries_used);
        ("qubits_used", Telemetry.Int (Embedding.total_qubits_used embedding));
        ("max_chain", Telemetry.Int (Embedding.max_chain_length embedding));
      ];
  let base_strength =
    match params.chain_strength with Some c -> c | None -> Chain.default_strength q
  in
  (* Independent per-attempt streams: index 4k is the escalated anneal
     seed, 4k+1 the control noise, 4k+2 majority-vote tie breaks on the
     returned batch, 4k+3 tie breaks inside the on_read projection. *)
  let derived k j = Prng.stream ~seed ((4 * k) + j) in
  let stopped () = match stop with Some s -> s () | None -> false in
  (* One attempt = embed at the current strength, anneal a read batch,
     project back to logical space. If too many chains come back broken,
     escalate the strength geometrically and retry — broken-chain reads
     are majority-vote guesses, not samples of the logical problem, and
     the seed revision handed them back silently. *)
  let rec attempt k strength acc =
    let physical = Chain.embed_qubo q ~embedding ~hardware ~chain_strength:strength in
    let physical = add_noise ~rng:(derived k 1) ~sigma:params.noise_sigma physical in
    let anneal_params =
      if k = 0 then params.anneal
      else { params.anneal with Sa.seed = Int64.to_int (Prng.bits64 (derived k 0)) land max_int }
    in
    let on_read =
      match on_read with
      | None -> None
      | Some f ->
        let tie_rng = derived k 3 in
        Some (fun bits -> f (Chain.unembed ~rng:tie_rng ~embedding bits))
    in
    let physical_set = Sa.sample ~params:anneal_params ?stop ?on_read ~telemetry physical in
    (* Project each *distinct* physical read once (the seed revision
       re-ran the majority vote per occurrence), weighting the break
       statistic by occurrence count. *)
    let tie_rng = derived k 2 in
    let breaks = ref 0. and reads = ref 0 in
    let logical =
      List.map
        (fun e ->
          let occ = e.Sampleset.occurrences in
          breaks :=
            !breaks +. (Chain.chain_break_fraction ~embedding e.Sampleset.bits *. float_of_int occ);
          reads := !reads + occ;
          let bits = Chain.unembed ~rng:tie_rng ~embedding e.Sampleset.bits in
          { Sampleset.bits; energy = Qubo.energy q bits; occurrences = occ })
        (Sampleset.entries physical_set)
    in
    let break_fraction = if !reads = 0 then 0. else !breaks /. float_of_int !reads in
    if tracked then
      Telemetry.emit telemetry "hardware.attempt"
        [
          ("attempt", Telemetry.Int k);
          ("strength", Telemetry.Float strength);
          ("break_fraction", Telemetry.Float break_fraction);
          ("reads", Telemetry.Int !reads);
        ];
    let acc = List.rev_append logical acc in
    if
      break_fraction > params.max_break_fraction
      && k < params.max_escalations
      && not (stopped ())
    then begin
      if tracked then begin
        Telemetry.count telemetry "hardware.escalations" 1;
        Telemetry.emit telemetry "hardware.escalate"
          [
            ("attempt", Telemetry.Int (k + 1));
            ("strength", Telemetry.Float (strength *. params.strength_growth));
            ("break_fraction", Telemetry.Float break_fraction);
          ]
      end;
      attempt (k + 1) (strength *. params.strength_growth) acc
    end
    else (k, strength, break_fraction, acc)
  in
  let escalations, chain_strength, break_fraction, entries = attempt 0 base_strength [] in
  let degraded =
    if break_fraction > params.max_break_fraction then
      Some { break_fraction; threshold = params.max_break_fraction; escalations }
    else None
  in
  if tracked && degraded <> None then
    Telemetry.emit telemetry "hardware.degraded"
      [
        ("break_fraction", Telemetry.Float break_fraction);
        ("threshold", Telemetry.Float params.max_break_fraction);
        ("escalations", Telemetry.Int escalations);
      ];
  {
    samples = Sampleset.of_entries entries;
    embedding;
    stats =
      {
        topology = Topology.name params.topology;
        hardware_qubits = Topology.num_qubits params.topology;
        qubits_used = Embedding.total_qubits_used embedding;
        max_chain_length = Embedding.max_chain_length embedding;
        mean_chain_break_fraction = break_fraction;
        embed_tries_used;
        embedding_cache_hit;
        chain_strength;
        escalations;
        degraded;
      };
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%s: %d/%d qubits, max chain %d, breaks %.1f%%, strength %g, embed tries %d (cache %s), \
     escalations %d"
    s.topology s.qubits_used s.hardware_qubits s.max_chain_length
    (100. *. s.mean_chain_break_fraction)
    s.chain_strength s.embed_tries_used
    (if s.embedding_cache_hit then "hit" else "miss")
    s.escalations;
  match s.degraded with
  | None -> ()
  | Some d ->
    Format.fprintf ppf "@ DEGRADED: %.1f%% of chains still broken (threshold %.1f%%)"
      (100. *. d.break_fraction) (100. *. d.threshold)
