(** Uniform sampler interface.

    The string-theory solver and the benchmark harness are parametric in
    the sampler; this type is the common currency. Constructors wrap
    each concrete sampler with its parameter record baked in. *)

type t

val name : t -> string

val run :
  ?verify:(Qsmt_util.Bitvec.t -> bool) ->
  ?init:Qsmt_util.Bitvec.t ->
  ?early_exit:bool ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  t ->
  Qsmt_qubo.Qubo.t ->
  Sampleset.t
(** May raise the underlying sampler's exceptions (e.g.
    {!Hardware.Embedding_failed}, {!Exact}'s size cap).

    [verify] by itself is consumed only by {!portfolio} samplers (see
    {!Portfolio.run}); every other sampler ignores it, keeping their
    output deterministic. With [early_exit] (default [false]) the
    heuristic samplers (SA, SQA, PT, tabu, greedy) additionally stop at
    their next poll point once any read verifies — the incremental
    solver's warm re-solves opt in, cold solves keep the exhaustive
    deterministic sample sets.

    [init] seeds the first read/restart of the heuristic samplers with
    the given assignment (reverse-anneal-style warm start, see
    {!Sa.sample}); exact, hardware and custom samplers ignore it.

    [telemetry] is handed to the underlying sampler
    (ignored by {!exact} and {!make} samplers); instrumentation never
    consumes PRNG values, so samples are identical with or without it. *)

val run_detailed :
  ?verify:(Qsmt_util.Bitvec.t -> bool) ->
  ?init:Qsmt_util.Bitvec.t ->
  ?early_exit:bool ->
  ?telemetry:Qsmt_util.Telemetry.t ->
  t ->
  Qsmt_qubo.Qubo.t ->
  Sampleset.t * Hardware.stats option
(** {!run} plus the hardware diagnostics when the sampler went through
    the hardware-emulation path: a {!hardware} / {!hardware_auto} sampler
    always yields [Some], a {!portfolio} yields the first hardware
    member's stats (if it has one), everything else [None]. This is how
    the string solver surfaces chain-break fractions, embedding-cache
    hits, and {!Hardware.degradation} in its outcomes. *)

val make : name:string -> (Qsmt_qubo.Qubo.t -> Sampleset.t) -> t
(** Wrap an arbitrary sampling function (used by tests to inject oracles
    and failure modes). {!with_seed} leaves such samplers unchanged. *)

val simulated_annealing : ?params:Sa.params -> unit -> t

val simulated_annealing_packed : ?params:Sa.params -> unit -> t
(** {!Sa.run_packed}: the same multi-read SA through the bit-parallel
    multi-spin kernel — reads are packed 64 to a word, so high-reads
    workloads pay one CSR pass per site per sweep for the whole group.
    Named ["sa_packed"]. *)

val simulated_quantum_annealing : ?params:Sqa.params -> unit -> t
val tabu : ?params:Tabu.params -> unit -> t
val parallel_tempering : ?params:Pt.params -> unit -> t
val greedy : ?params:Greedy.params -> unit -> t
val exact : ?keep:int -> unit -> t
val hardware : params:Hardware.params -> t
(** The full QPU-workflow sampler. Chain statistics, cache hits and
    degradation travel through {!run_detailed}; {!run} keeps only the
    samples. *)

val hardware_auto : (Qsmt_qubo.Qubo.t -> Hardware.params) -> t
(** Like {!hardware}, but the parameters (typically the topology, via
    {!Hardware.auto_topology}) are derived from each problem at sampling
    time — what the CLI uses so one [--sampler hardware] flag serves
    problems of any size. *)

val portfolio : ?params:Portfolio.params -> unit -> t
(** Races several samplers concurrently and merges their sample sets;
    honors {!run}'s [verify] for early exit. Use {!Portfolio.run}
    directly when you need per-member reports. *)

val decomposed : ?params:Qsmt_qubo.Decompose.params -> t -> t
(** [decomposed ~params inner] solves through
    {!Qsmt_qubo.Decompose.solve}, using [inner] (reseeded per
    shard-and-round from [params.seed]) as the shard solver and taking
    each shard's best read as its proposal. The sample set is the single
    stitched assignment with its whole-problem re-priced energy. Named
    ["<inner>+decompose"].

    Problems no larger than [params.subsize] fit one embedding, so they
    {e bypass} decomposition entirely: the call delegates to [inner] with
    the caller's exact arguments (bit-identical samples) and bumps the
    [decomp.fallback] counter. On the decomposition path [init]
    warm-starts the global assignment, while [verify]/[early_exit] are
    not consumed (the stitched assignment only exists once stitching
    finishes; constraint-level verification happens in the solver's
    decode scan as usual).

    Per-shard hardware diagnostics (when [inner] samples through the
    hardware emulation) aggregate into the [decomp.chain_break_fraction]
    histogram and the [decomp.shard_degraded] counter, and
    {!run_detailed} returns the worst shard's stats (highest chain-break
    fraction) as the representative. *)

val with_seed : t -> int -> t
(** A sampler identical to the input but reseeded. Samplers without a
    seed ({!exact}, {!make}) are returned unchanged. *)

val default_suite : seed:int -> t list
(** The ablation suite: SA, SQA, parallel tempering, tabu, greedy —
    everything that scales past {!Exact.max_vars} — with matching
    seeds. *)
